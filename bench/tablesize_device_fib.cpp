// Reproduces the §6.2 "Forwarding table size" analysis empirically: the
// number of extra (displaced) per-device forwarding entries each router
// would carry under pure name-based routing, sampled over time — the
// measured counterpart of the paper's 3% x 30% ~= 1% back-of-the-envelope.

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <iostream>

#include "common.hpp"
#include "lina/core/fib_size.hpp"
#include "lina/obs/metrics.hpp"
#include "lina/snap/store.hpp"

using namespace lina;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "tablesize_device_fib");
  bench::print_figure_header(
      "Table size — displaced-device forwarding entries (§6.2)",
      "a typical router maintains extra entries for ~1% of all devices "
      "displaced with respect to it at any given time (update likelihood "
      "x time away from the dominant address).");

  const auto& internet = bench::paper_internet();
  const auto& traces = bench::paper_device_traces();

  const auto timelines =
      core::evaluate_displaced_entries(internet.vantages(), traces, 1.0);
  const core::DeviceUpdateCostEvaluator update_eval(internet.vantages());
  const auto update_stats = update_eval.evaluate(traces);
  const auto extent = core::analyze_extent(traces);
  const double away = 1.0 - extent.dominant_ip_share.quantile(0.5);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"router", "mean displaced", "peak", "mean fraction",
                  "BoE estimate", "entries @2B devices"});
  for (std::size_t i = 0; i < timelines.size(); ++i) {
    const auto& t = timelines[i];
    rows.push_back(
        {t.router,
         stats::fmt(t.mean_fraction * static_cast<double>(t.device_count),
                    1),
         std::to_string(t.peak), stats::pct(t.mean_fraction, 2),
         stats::pct(core::displaced_entry_fraction(update_stats[i].rate(),
                                                   away),
                    2),
         stats::fmt(t.projected_extra_entries(2e9) / 1e6, 1) + "M"});
  }
  std::cout << stats::text_table(rows) << "\n";

  // A small diurnal excerpt at the busiest router.
  const auto busiest = std::max_element(
      timelines.begin(), timelines.end(),
      [](const auto& a, const auto& b) {
        return a.mean_fraction < b.mean_fraction;
      });
  std::cout << "Hourly displaced-entry counts at " << busiest->router
            << " (first 48h):\n";
  std::vector<std::pair<std::string, double>> bars;
  for (std::size_t s = 0; s < std::min<std::size_t>(48, busiest->samples.size());
       s += 4) {
    bars.emplace_back("h" + std::to_string(static_cast<int>(
                                busiest->samples[s].first)),
                      static_cast<double>(busiest->samples[s].second));
  }
  std::cout << stats::bar_chart(bars, " devices") << "\n";
  std::cout << "Reading: the empirical mean fraction tracks the paper's "
               "update-rate x away-share product router by router; "
               "address-routed architectures carry none of this state.\n";

  // Machine-readable headline: the displaced-entry fractions plus the
  // vantage IP FIBs' deterministic live-table footprint (live nodes x node
  // size — independent of allocator growth, so comparable across runs).
  double mean_fraction_sum = 0.0;
  double peak_fraction = 0.0;
  for (const auto& t : timelines) {
    mean_fraction_sum += t.mean_fraction;
    peak_fraction = std::max(
        peak_fraction, static_cast<double>(t.peak) /
                           static_cast<double>(t.device_count));
  }
  harness.result("mean_displaced_fraction",
                 mean_fraction_sum / static_cast<double>(timelines.size()));
  harness.result("peak_displaced_fraction", peak_fraction);
  double fib_table_bytes = 0.0;
  std::size_t fib_entries = 0;
  for (const auto& vantage : internet.vantages()) {
    fib_table_bytes += static_cast<double>(vantage.fib().table_bytes());
    fib_entries += vantage.fib().size();
    obs::metric::fib_arena_bytes().set(
        static_cast<double>(vantage.fib().arena_bytes()));
  }
  harness.result("ip_fib_entries_total", static_cast<double>(fib_entries));
  harness.result("ip_fib_table_bytes_total", fib_table_bytes);

  // Durable-snapshot footprint and warm-start cost (lina::snap): persist
  // every vantage FIB, then load them all back. Snapshot bytes are
  // deterministic (bit-packed frozen arenas), so bytes/entry is a gated
  // headline; the load time is a reported timing.
  harness.phase("snapshot");
  {
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() /
        ("lina-snap-bench-tablesize-" + std::to_string(::getpid()));
    fs::remove_all(dir);
    std::uint64_t snapshot_bytes = 0;
    {
      snap::SnapshotStore store(dir);
      for (const auto& vantage : internet.vantages()) {
        snapshot_bytes +=
            store.save_ip_fib(std::string(vantage.name()),
                              vantage.fib().freeze())
                .bytes;
      }
    }
    const auto start = std::chrono::steady_clock::now();
    std::size_t loaded_entries = 0;
    {
      const snap::SnapshotStore store(dir);
      for (const auto& vantage : internet.vantages()) {
        loaded_entries +=
            store.load_ip_fib(std::string(vantage.name())).size();
      }
    }
    const double load_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (loaded_entries != fib_entries) {
      std::cerr << "snapshot reload lost entries: " << loaded_entries
                << " != " << fib_entries << "\n";
      return 1;
    }
    harness.result("snapshot_bytes_per_entry",
                   static_cast<double>(snapshot_bytes) /
                       static_cast<double>(fib_entries));
    harness.result("snapshot_load_ms", load_ms);
    std::cout << "snapshot: " << internet.vantages().size()
              << " vantage FIBs, " << snapshot_bytes << " bytes ("
              << stats::fmt(static_cast<double>(snapshot_bytes) /
                                static_cast<double>(fib_entries),
                            2)
              << " B/entry vs " << stats::fmt(fib_table_bytes /
                                                  static_cast<double>(
                                                      fib_entries),
                                              2)
              << " B/entry live), reloaded in " << stats::fmt(load_ms, 2)
              << " ms\n";
    std::error_code ignored;
    fs::remove_all(dir, ignored);
  }
  return 0;
}
