// Ablations for the design choices DESIGN.md §4 calls out:
//   A. forwarding strategy (best-port vs controlled flooding vs the §3.3.3
//      history-union strategy) on both workload classes;
//   B. port granularity for the §6.2.2 next-hop-as-port proxy;
//   C. route-ranking rules (relationship-first vs path-length-first);
//   D. mobility-intensity perturbation (×1/4 ... ×4, §8's robustness claim).

#include <algorithm>
#include <iostream>
#include <map>

#include "common.hpp"
#include "lina/strategy/port_oracle.hpp"

using namespace lina;

namespace {

double max_rate(const std::vector<core::RouterUpdateStats>& stats) {
  double rate = 0.0;
  for (const auto& s : stats) rate = std::max(rate, s.rate());
  return rate;
}

double median_rate(std::vector<core::RouterUpdateStats> stats) {
  std::vector<double> rates;
  for (const auto& s : stats) rates.push_back(s.rate());
  std::sort(rates.begin(), rates.end());
  return rates[rates.size() / 2];
}

void ablation_strategy() {
  std::cout << stats::heading("A. Forwarding strategy (content workloads)");
  const core::ContentUpdateCostEvaluator evaluator(
      bench::paper_internet().vantages());
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"strategy", "popular max", "popular median",
                  "unpopular max", "unpopular median"});
  for (const auto kind : {strategy::StrategyKind::kControlledFlooding,
                          strategy::StrategyKind::kBestPort,
                          strategy::StrategyKind::kHistoryUnion}) {
    const auto pop = evaluator.evaluate(
        bench::paper_content_catalog().popular, kind);
    const auto unpop = evaluator.evaluate(
        bench::paper_content_catalog().unpopular, kind);
    rows.push_back({std::string(strategy::strategy_name(kind)),
                    stats::pct(max_rate(pop), 2),
                    stats::pct(median_rate(pop), 2),
                    stats::pct(max_rate(unpop), 3),
                    stats::pct(median_rate(unpop), 3)});
  }
  std::cout << stats::text_table(rows)
            << "\n  history-union trades forwarding traffic for updates "
               "(§3.3.3): revisited locations are free, so its rates fall "
               "at or below best-port despite flooding-like port sets.\n";
}

void ablation_port_granularity() {
  std::cout << stats::heading(
      "B. Port-proxy granularity (device update cost at Oregon-1)");
  // The §6.2.2 proxy equates ports with next-hop ASes. Compare against a
  // coarser proxy (route class only: 3 "ports") and a finer one (next hop
  // + path length), bounding the proxy's under/over-estimation.
  const auto& vantage = bench::paper_internet().vantage("Oregon-1");
  const strategy::CachingFibOracle oracle(vantage.fib());
  std::size_t events = 0;
  std::map<std::string, std::size_t> updates;
  for (const auto& trace : bench::paper_device_traces()) {
    for (const auto& event : trace.events()) {
      const auto before = oracle.entry_for(event.from);
      const auto after = oracle.entry_for(event.to);
      ++events;
      if (!before.has_value() || !after.has_value()) continue;
      if (before->route_class != after->route_class) {
        ++updates["route-class only (coarser)"];
      }
      if (before->port != after->port) {
        ++updates["next-hop AS (paper's proxy)"];
      }
      if (before->port != after->port ||
          before->path_length != after->path_length) {
        ++updates["next hop + path length (finer)"];
      }
    }
  }
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"port definition", "update rate"});
  for (const auto& [name, count] : updates) {
    rows.push_back({name, stats::pct(static_cast<double>(count) /
                                         static_cast<double>(events),
                                     2)});
  }
  std::cout << stats::text_table(rows)
            << "\n  The proxy's rate is bracketed by the coarser and finer "
               "definitions, as §6.2.2 argues (\"we may under- or "
               "over-estimate the actual update cost\").\n";
}

void ablation_ranking() {
  std::cout << stats::heading(
      "C. Route-ranking rules (relationship-first vs length-first)");
  // Re-rank every vantage RIB with path length taking precedence over the
  // customer > peer > provider rule, rebuild FIBs, re-measure Figure 8.
  const auto& internet = bench::paper_internet();
  std::vector<routing::VantageRouter> reranked;
  for (const auto& vantage : internet.vantages()) {
    routing::VantageRouter copy(std::string(vantage.name()),
                                vantage.as_number(), vantage.location());
    for (const auto& prefix : vantage.rib().prefixes()) {
      for (routing::RibRoute route : vantage.rib().candidates(prefix)) {
        // Encode shorter-path-first into local_pref, which outranks the
        // relationship class in route_preferred().
        route.local_pref = 1000u - static_cast<std::uint32_t>(
                                       route.as_path.length());
        copy.install(std::move(route));
      }
    }
    reranked.push_back(std::move(copy));
  }
  const core::DeviceUpdateCostEvaluator base_eval(internet.vantages());
  const core::DeviceUpdateCostEvaluator alt_eval(reranked);
  const auto base = base_eval.evaluate(bench::paper_device_traces());
  const auto alt = alt_eval.evaluate(bench::paper_device_traces());
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"router", "relationship-first (paper)", "length-first"});
  for (std::size_t i = 0; i < base.size(); ++i) {
    rows.push_back({base[i].router, stats::pct(base[i].rate(), 2),
                    stats::pct(alt[i].rate(), 2)});
  }
  std::cout << stats::text_table(rows)
            << "\n  The ranking rule shifts individual routers but not the "
               "cross-router pattern: update cost is driven by topology, "
               "not by the tie-breaking policy.\n";
}

void ablation_intensity() {
  std::cout << stats::heading(
      "D. Mobility-intensity perturbation (§8 robustness)");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"intensity", "median daily transitions", "Fig8 max",
                  "Fig8 median"});
  for (const double factor : {0.25, 1.0, 4.0}) {
    mobility::DeviceWorkloadConfig config;
    config.user_count = 186;
    config.days = 10;
    config.median_daily_transitions *= factor;
    const auto traces =
        mobility::DeviceWorkloadGenerator(bench::paper_internet(), config)
            .generate();
    const core::DeviceUpdateCostEvaluator evaluator(
        bench::paper_internet().vantages());
    const auto stats_by_router = evaluator.evaluate(traces);
    const auto extent = core::analyze_extent(traces);
    rows.push_back({"x" + stats::fmt(factor, 2),
                    stats::fmt(
                        extent.ip_transitions_per_day.quantile(0.5), 2),
                    stats::pct(max_rate(stats_by_router), 1),
                    stats::pct(median_rate(stats_by_router), 1)});
  }
  std::cout << stats::text_table(rows)
            << "\n  Per-event update rates barely move when the volume of "
               "mobility changes by 16x — the paper's qualitative-"
               "stability claim (§8).\n";
}

void ablation_mobility_model() {
  std::cout << stats::heading(
      "E. Mobility law (analytic model, 63-node chain and 8x8 grid)");
  // The paper's §5 model teleports endpoints uniformly. Swap in stickier
  // and more local laws and watch the per-event name-based update cost.
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"mobility model", "chain update cost", "grid update cost"});
  const auto chain = topology::make_chain(63);
  const auto grid = topology::make_grid(8, 8);
  const analytic::TradeoffAnalyzer chain_analyzer(chain);
  const analytic::TradeoffAnalyzer grid_analyzer(grid);
  stats::Rng rng(63, "ablation-mobility");

  const auto run = [&](const analytic::MobilityModel& model) {
    const auto c = chain_analyzer.simulate_with(model, 30000, rng);
    const auto g = grid_analyzer.simulate_with(model, 30000, rng);
    rows.push_back({std::string(model.name()),
                    stats::fmt(c.name_based_update_cost, 4),
                    stats::fmt(g.name_based_update_cost, 4)});
  };
  run(*analytic::make_uniform_jump_model());
  run(*analytic::make_sticky_model(0.7));
  run(*analytic::make_preferential_model(1.2));
  const auto chain_walk = analytic::make_neighbor_walk_model(chain);
  const auto grid_walk = analytic::make_neighbor_walk_model(grid);
  const auto cw = chain_analyzer.simulate_with(*chain_walk, 30000, rng);
  const auto gw = grid_analyzer.simulate_with(*grid_walk, 30000, rng);
  rows.push_back({"neighbor-walk", stats::fmt(cw.name_based_update_cost, 4),
                  stats::fmt(gw.name_based_update_cost, 4)});
  std::cout << stats::text_table(rows)
            << "\n  Local and revisit-heavy mobility laws lower the "
               "per-event cost, but never to the O(1/n) level of the "
               "indirection/resolution designs — the paper's conclusion "
               "is robust to the mobility model.\n";
}

void ablation_multihoming() {
  std::cout << stats::heading(
      "F. Device multihoming (make-before-break handoffs, §3.3)");
  // The same population evaluated as address-set traces: zero overlap
  // (break-before-make singletons) vs 15-minute interface overlap.
  const core::MultihomedDeviceUpdateCostEvaluator evaluator(
      bench::paper_internet().vantages());
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"view", "strategy", "max router", "median router"});
  for (const double overlap : {0.0, 0.25}) {
    const auto views =
        mobility::multihomed_views(bench::paper_device_traces(), overlap);
    for (const auto kind : {strategy::StrategyKind::kBestPort,
                            strategy::StrategyKind::kControlledFlooding}) {
      const auto stats_by_router = evaluator.evaluate(views, kind);
      std::vector<double> rates;
      for (const auto& s : stats_by_router) rates.push_back(s.rate());
      std::sort(rates.begin(), rates.end());
      rows.push_back(
          {overlap == 0.0 ? "break-before-make" : "15-min overlap",
           std::string(strategy::strategy_name(kind)),
           stats::pct(rates.back(), 1),
           stats::pct(rates[rates.size() / 2], 1)});
    }
  }
  std::cout << stats::text_table(rows)
            << "\n  Overlapping interfaces double the event count (attach "
               "+ detach) but halve the per-event best-port rate: the "
               "preferred port often survives the handoff window — "
               "multihoming converts device mobility toward the content-"
               "mobility regime.\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "ablation_strategies");
  bench::print_figure_header(
      "Ablations — design choices behind the headline results",
      "(not a paper figure; DESIGN.md §4 ablation index)");
  ablation_strategy();
  ablation_port_granularity();
  ablation_ranking();
  ablation_intensity();
  ablation_mobility_model();
  ablation_multihoming();
  return 0;
}
