#pragma once

// Shared harness for the figure/table reproduction benches.
//
// Fixtures: the full-scale synthetic Internet and the paper-scale
// workloads (372 users, 500 + 500 domains, hourly resolution over three
// weeks). Each bench binary is its own process; fixtures are built once
// per process on first use, and every build is timed into the dedicated
// "fixtures" phase so fixture construction never pollutes a measured
// phase.
//
// Telemetry: every bench accepts the shared flags
//     --json <path>    write the machine-readable run record (metrics
//                      registry snapshot + per-phase wall time + headline
//                      results) — the BENCH_*.json perf-trajectory format
//     --csv <path>     flat CSV of the metrics snapshot
//     --trace <path>   JSONL event trace from the obs ring buffer
//     --threads <n>    lina::exec worker count for parallel phases
//                      (default: hardware concurrency; results are
//                      bit-identical at any value — see DESIGN.md §4c)
//     --out-dir <dir>  where generated artifacts (the shared trace-shard
//                      cache) are written; default ./trace-cache
//     --trace-in <dir> replay an existing shard directory instead of
//                      generating (validated; mismatches are fatal)
//     --profile <path> record a lina::prof span profile and write it as
//                      Chrome trace-event JSON (Perfetto-loadable); the
//                      export is parse-back validated before the bench
//                      exits. Enables the obs registry too, so spans
//                      carry counter deltas.
//     --folded <path>  also write the profile as folded-stack text for
//                      flamegraph.pl / speedscope
// Passing --json/--csv/--trace enables the lina::obs registry for the
// process; without them instrumentation stays disabled (no-op) and the
// bench prints exactly its usual text output. The resolved thread count,
// --out-dir/--trace-in and any bench-specific extra flags are recorded in
// the run record's config block (never in results, so serial and parallel
// runs — and generated vs replayed workloads — stay headline-comparable).
// Every output path (and --out-dir) is probed for writability up front,
// so a typo fails the run immediately instead of after the measured
// phases. Profiling never changes results: headline numbers are
// bit-identical with --profile on or off (tests/prof/bit_identity_test).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lina/core/lina.hpp"
#include "lina/trace/replay.hpp"
#include "lina/exec/thread_pool.hpp"
#include "lina/obs/export.hpp"
#include "lina/obs/metrics.hpp"
#include "lina/obs/registry.hpp"
#include "lina/obs/timer.hpp"
#include "lina/obs/trace.hpp"
#include "lina/prof/export.hpp"
#include "lina/prof/prof.hpp"

namespace lina::bench {

/// Per-bench run harness: construct first thing in main(), then mark
/// phases with phase("...") and record headline numbers with
/// result("...", v). The destructor closes the last phase and writes
/// whichever outputs were requested on the command line.
class Harness {
 public:
  using Clock = std::chrono::steady_clock;

  /// A bench-specific command-line flag: `--<name> <value>` when `value`
  /// points at a string, a bare `--<name>` switch when `present` points at
  /// a bool. Consumed flags are recorded in the config block.
  struct ExtraFlag {
    std::string_view name;
    std::string* value = nullptr;
    bool* present = nullptr;
  };

  Harness(int argc, char** argv, std::string name,
          const std::vector<ExtraFlag>& extra = {})
      : name_(std::move(name)) {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      const auto take_value = [&]() -> std::string {
        if (i + 1 >= argc) {
          std::cerr << name_ << ": missing value for " << arg << "\n";
          return {};
        }
        return argv[++i];
      };
      if (arg == "--json") {
        json_path_ = take_value();
      } else if (arg == "--csv") {
        csv_path_ = take_value();
      } else if (arg == "--trace") {
        trace_path_ = take_value();
      } else if (arg == "--threads") {
        const std::string value = take_value();
        try {
          exec::set_default_threads(std::stoul(value));
        } catch (const std::exception&) {
          std::cerr << name_ << ": bad --threads value '" << value
                    << "' (want a non-negative integer; 0 = hardware)\n";
        }
      } else if (arg == "--out-dir") {
        out_dir_ = take_value();
      } else if (arg == "--trace-in") {
        trace_in_ = take_value();
      } else if (arg == "--profile") {
        profile_path_ = take_value();
      } else if (arg == "--folded") {
        folded_path_ = take_value();
      } else {
        bool consumed = false;
        for (const ExtraFlag& flag : extra) {
          if (arg != flag.name) continue;
          if (flag.value != nullptr) {
            *flag.value = take_value();
            note(std::string(arg.substr(2)), *flag.value);
          } else if (flag.present != nullptr) {
            *flag.present = true;
            note(std::string(arg.substr(2)), "true");
          }
          consumed = true;
          break;
        }
        if (!consumed) {
          std::cerr << name_ << ": ignoring unknown argument '" << arg
                    << "' (supported: --json <path> --csv <path> --trace "
                       "<path> --threads <n> --out-dir <dir> --trace-in "
                       "<dir> --profile <path> --folded <path>";
          for (const ExtraFlag& flag : extra) {
            std::cerr << ' ' << flag.name
                      << (flag.value != nullptr ? " <value>" : "");
          }
          std::cerr << ")\n";
        }
      }
    }
    note("threads", std::to_string(exec::default_threads()));
    note("hardware_threads", std::to_string(exec::hardware_threads()));
    if (!out_dir_.empty()) note("out_dir", out_dir_);
    if (!trace_in_.empty()) note("trace_in", trace_in_);
    if (!profile_path_.empty()) note("profile", profile_path_);
    if (!folded_path_.empty()) note("folded", folded_path_);
    // Fail fast on unwritable destinations: a typo'd path should abort
    // here, not after the measured phases have run to completion.
    probe_writable("--json", json_path_);
    probe_writable("--csv", csv_path_);
    probe_writable("--trace", trace_path_);
    probe_writable("--profile", profile_path_);
    probe_writable("--folded", folded_path_);
    probe_out_dir();
    if (wants_output() || wants_profile()) {
      obs::Registry::instance().reset();
      obs::Registry::instance().enable(true);
      obs::TraceRing::instance().clear();
    }
    if (wants_profile()) {
      prof::Profiler::instance().reset();
      prof::Profiler::instance().enable(true);
    }
    active_ = this;
    open_phase("main");
  }

  ~Harness() {
    close_phase();
    if (active_ == this) active_ = nullptr;
    if (!wants_output() && !wants_profile()) return;
    if (wants_profile()) prof::Profiler::instance().enable(false);
    // Self-accounting gauges go in while the registry still records, so
    // the snapshot shows whether the trace ring or span rings truncated.
    obs::metric::trace_ring_events().set(
        static_cast<double>(obs::TraceRing::instance().size()));
    obs::metric::trace_ring_dropped().set(
        static_cast<double>(obs::TraceRing::instance().dropped()));
    if (wants_profile()) {
      const auto threads = prof::Profiler::instance().thread_profiles();
      std::uint64_t recorded = 0;
      std::uint64_t dropped = 0;
      for (const prof::ThreadProfile& t : threads) {
        recorded += t.recorded;
        dropped += t.dropped;
      }
      obs::metric::prof_spans_recorded().set(static_cast<double>(recorded));
      obs::metric::prof_spans_dropped().set(static_cast<double>(dropped));
      obs::metric::prof_threads().set(static_cast<double>(threads.size()));
      // Per-thread drop gauges only for threads that actually truncated,
      // so a clean run's snapshot stays free of N empty entries.
      for (const prof::ThreadProfile& t : threads) {
        if (t.dropped == 0) continue;
        obs::Registry::instance()
            .gauge("lina.prof.thread." + std::to_string(t.thread) +
                   ".dropped")
            .set(static_cast<double>(t.dropped));
      }
    }
    obs::Registry::instance().enable(false);
    try {
      write_outputs();
    } catch (const std::exception& error) {
      std::cerr << name_ << ": telemetry write failed: " << error.what()
                << "\n";
    }
  }

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  /// Closes the current phase and opens `name`; per-phase wall time lands
  /// in the JSON record.
  void phase(std::string name) {
    close_phase();
    open_phase(std::move(name));
  }

  /// Free-form config context for the run record (seed knobs, sweep
  /// parameters, ...).
  void note(std::string key, std::string value) {
    info_.config.emplace_back(std::move(key), std::move(value));
  }
  void seed(std::uint64_t seed) { info_.seed = seed; }

  /// A headline scalar result (median stretch, delivery ratio, ...).
  void result(std::string key, double value) {
    info_.results.emplace_back(std::move(key), value);
  }

  [[nodiscard]] static Harness* active() { return active_; }

  /// --out-dir (artifact root, e.g. the shared trace-shard cache); empty
  /// means the default ./trace-cache.
  [[nodiscard]] const std::string& out_dir() const { return out_dir_; }

  /// --trace-in (an existing shard directory to replay); empty means
  /// generate-or-reuse the cache.
  [[nodiscard]] const std::string& trace_in() const { return trace_in_; }

  /// Runs `build` and attributes its wall time to the "fixtures" phase
  /// (and the lina.bench.fixture.build_ms histogram) instead of whatever
  /// phase is open — fixture construction is reported separately from
  /// every measured phase.
  template <typename F>
  static auto timed_fixture(const char* what, F&& build) {
    const Clock::time_point start = Clock::now();
    auto result = build();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    obs::metric::fixture_build_ms().record(ms);
    if (active_ != nullptr) active_->account_fixture(what, ms);
    return result;
  }

 private:
  [[nodiscard]] bool wants_output() const {
    return !json_path_.empty() || !csv_path_.empty() ||
           !trace_path_.empty();
  }

  [[nodiscard]] bool wants_profile() const {
    return !profile_path_.empty() || !folded_path_.empty();
  }

  /// Aborts the run (exit code 2) if `path` cannot be opened for writing.
  /// Append mode so probing an existing file never truncates it.
  void probe_writable(const char* flag, const std::string& path) {
    if (path.empty()) return;
    std::ofstream probe(path, std::ios::app);
    if (!probe) {
      std::cerr << name_ << ": " << flag << " path '" << path
                << "' is not writable\n";
      std::exit(2);
    }
  }

  void probe_out_dir() {
    if (out_dir_.empty()) return;
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(out_dir_, ec);
    const fs::path probe_path =
        fs::path(out_dir_) / ".lina-write-probe";
    std::ofstream probe(probe_path);
    if (ec || !probe) {
      std::cerr << name_ << ": --out-dir '" << out_dir_
                << "' is not writable\n";
      std::exit(2);
    }
    probe.close();
    fs::remove(probe_path, ec);
  }

  /// Phase names are dynamic strings but span names must outlive the
  /// export, so they are interned in a stable deque for the process
  /// lifetime.
  [[nodiscard]] const char* intern_phase_span_name(
      const std::string& phase) {
    interned_names_.push_back("lina.bench.phase." + phase);
    return interned_names_.back().c_str();
  }

  void open_phase(std::string name) {
    phase_name_ = std::move(name);
    if (wants_profile())
      phase_span_.begin(intern_phase_span_name(phase_name_));
    phase_start_ = Clock::now();
    phase_fixture_ms_ = 0.0;
  }

  void close_phase() {
    if (phase_name_.empty()) return;
    const double ms = std::chrono::duration<double, std::milli>(
                          Clock::now() - phase_start_)
                          .count();
    phase_span_.end();
    info_.phases.emplace_back(phase_name_,
                              std::max(0.0, ms - phase_fixture_ms_));
    phase_name_.clear();
  }

  void account_fixture(const char* what, double ms) {
    phase_fixture_ms_ += ms;
    fixtures_ms_ += ms;
    info_.config.emplace_back(std::string("fixture.") + what,
                              stats::fmt(ms, 1) + " ms");
  }

  void write_outputs() {
    info_.name = name_;
    if (fixtures_ms_ > 0.0)
      info_.phases.emplace_back("fixtures", fixtures_ms_);
    const obs::Snapshot snapshot = obs::Registry::instance().snapshot();
    if (!json_path_.empty()) {
      obs::write_text_file(json_path_, obs::export_json(info_, snapshot));
      std::cout << "[obs] wrote " << json_path_ << "\n";
    }
    if (!csv_path_.empty()) {
      obs::write_text_file(csv_path_, obs::export_csv(snapshot));
      std::cout << "[obs] wrote " << csv_path_ << "\n";
    }
    if (!trace_path_.empty()) {
      const auto events = obs::TraceRing::instance().events();
      obs::write_text_file(trace_path_, obs::export_trace_jsonl(events));
      std::cout << "[obs] wrote " << trace_path_ << " (" << events.size()
                << " events, " << obs::TraceRing::instance().dropped()
                << " dropped)\n";
    }
    if (wants_profile()) write_profile();
  }

  void write_profile() {
    const prof::ProfileReport report = prof::collect();
    if (!profile_path_.empty()) {
      const std::string trace = prof::export_chrome_trace(report);
      // Parse-back self-check: an export that chrome://tracing or
      // Perfetto would reject fails the bench loudly, right here.
      const std::size_t validated = prof::validate_chrome_trace(trace);
      obs::write_text_file(profile_path_, trace);
      std::cout << "[prof] wrote " << profile_path_ << " (" << validated
                << " spans across " << report.threads.size()
                << " threads, " << report.dropped_total()
                << " dropped)\n";
    }
    if (!folded_path_.empty()) {
      obs::write_text_file(folded_path_, prof::export_folded(report));
      std::cout << "[prof] wrote " << folded_path_ << "\n";
    }
  }

  inline static Harness* active_ = nullptr;

  std::string name_;
  std::string json_path_;
  std::string csv_path_;
  std::string trace_path_;
  std::string out_dir_;
  std::string trace_in_;
  std::string profile_path_;
  std::string folded_path_;
  obs::RunInfo info_;
  std::string phase_name_;
  prof::Span phase_span_;
  std::deque<std::string> interned_names_;  // stable span-name storage
  Clock::time_point phase_start_{};
  double phase_fixture_ms_ = 0.0;
  double fixtures_ms_ = 0.0;
};

inline const routing::SyntheticInternet& paper_internet() {
  static const routing::SyntheticInternet instance =
      Harness::timed_fixture("internet", [] {
        return routing::SyntheticInternet{routing::SyntheticInternetConfig{}};
      });
  return instance;
}

/// 372 users for 30 days (the paper observed users for months; 30 days of
/// synthetic trace gives stable per-user daily statistics).
inline const std::vector<mobility::DeviceTrace>& paper_device_traces() {
  // Built (and timed) before entering the trace fixture so nested builds
  // never double-count in the "fixtures" phase.
  const auto& internet = paper_internet();
  static const std::vector<mobility::DeviceTrace> traces =
      Harness::timed_fixture("device_traces", [&internet] {
        mobility::DeviceWorkloadConfig config;  // paper-calibrated defaults
        config.days = 30;
        return mobility::DeviceWorkloadGenerator(internet, config)
            .generate();
      });
  return traces;
}

/// The same 372×30 workload as paper_device_traces(), but as a validated
/// shard set on disk: generated once into a cache directory keyed by
/// format version, seed, user count and day count, then reused by every
/// figure that replays it (the reuse decision lands in the config block
/// as trace.reuse=hit|miss|pinned). --trace-in pins an existing shard
/// directory (mismatches are fatal); --out-dir moves the cache root.
/// Streamed replay of this set is bit-identical to the resident vector.
inline const trace::ShardSet& paper_trace_shards() {
  const auto& internet = paper_internet();
  static const trace::ShardSet set = Harness::timed_fixture(
      "trace_shards", [&internet]() -> trace::ShardSet {
        namespace fs = std::filesystem;
        mobility::DeviceWorkloadConfig config;  // paper-calibrated defaults
        config.days = 30;
        Harness* harness = Harness::active();
        const auto note = [&](std::string key, std::string value) {
          if (harness != nullptr)
            harness->note(std::move(key), std::move(value));
        };
        if (harness != nullptr && !harness->trace_in().empty()) {
          trace::ShardSet pinned =
              trace::ShardSet::discover(harness->trace_in());
          note("trace.dir", harness->trace_in());
          note("trace.reuse", "pinned");
          return pinned;
        }
        const fs::path base =
            (harness != nullptr && !harness->out_dir().empty())
                ? fs::path(harness->out_dir())
                : fs::path("trace-cache");
        const fs::path dir =
            base / ("device-v" + std::to_string(trace::kFormatVersion) +
                    "-seed" + std::to_string(config.seed) + "-u" +
                    std::to_string(config.user_count) + "-d" +
                    std::to_string(config.days));
        note("trace.dir", dir.string());
        std::error_code ignored;
        if (fs::exists(dir / trace::shard_file_name(0), ignored)) {
          try {
            trace::ShardSet cached = trace::ShardSet::discover(dir);
            if (cached.seed() == config.seed &&
                cached.user_count() == config.user_count &&
                cached.day_count() == config.days) {
              note("trace.reuse", "hit");
              return cached;
            }
          } catch (const trace::TraceFormatError&) {
            // Damaged or stale cache: wipe the shards and regenerate.
          }
          for (const auto& entry : fs::directory_iterator(dir)) {
            if (entry.path().extension() == ".ltrc")
              fs::remove(entry.path(), ignored);
          }
        }
        note("trace.reuse", "miss");
        const mobility::DeviceWorkloadGenerator generator(internet, config);
        trace::StreamingWorkloadConfig stream_config;
        // Small shards so even the paper-scale set exercises the k-way
        // merge (372 users -> 3 shards).
        stream_config.users_per_shard = 128;
        return trace::StreamingWorkload(generator, stream_config)
            .write_shards(dir);
      });
  return set;
}

/// 500 popular + 500 unpopular domains, 21 days of hourly resolution from
/// 74 vantage points (§7.1).
inline const mobility::ContentCatalog& paper_content_catalog() {
  const auto& internet = paper_internet();
  static const mobility::ContentCatalog catalog =
      Harness::timed_fixture("content_catalog", [&internet] {
        return mobility::ContentWorkloadGenerator(
                   internet, mobility::ContentWorkloadConfig{})
            .generate();
      });
  return catalog;
}

/// Prints a heading plus the paper's reported anchor for a figure.
inline void print_figure_header(const std::string& figure,
                                const std::string& paper_reports) {
  std::cout << stats::heading(figure);
  std::cout << "Paper reports: " << paper_reports << "\n\n";
}

/// Renders per-router update-rate stats as the bar chart the paper plots.
inline void print_router_rates(const std::vector<core::RouterUpdateStats>&
                                   router_stats,
                               const std::string& unit_note) {
  std::vector<std::pair<std::string, double>> rows;
  rows.reserve(router_stats.size());
  for (const core::RouterUpdateStats& s : router_stats) {
    rows.emplace_back(s.router, s.rate() * 100.0);
  }
  std::cout << stats::bar_chart(rows, "%") << "\n" << unit_note << "\n";
}

}  // namespace lina::bench
