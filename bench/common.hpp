#pragma once

// Shared fixtures for the figure/table reproduction harnesses: the
// full-scale synthetic Internet and the paper-scale workloads (372 users,
// 500 + 500 domains, hourly resolution over three weeks). Each bench binary
// is its own process; fixtures are built once per process on first use.

#include <iostream>
#include <string>
#include <vector>

#include "lina/core/lina.hpp"

namespace lina::bench {

inline const routing::SyntheticInternet& paper_internet() {
  static const routing::SyntheticInternet instance{
      routing::SyntheticInternetConfig{}};
  return instance;
}

/// 372 users for 30 days (the paper observed users for months; 30 days of
/// synthetic trace gives stable per-user daily statistics).
inline const std::vector<mobility::DeviceTrace>& paper_device_traces() {
  static const std::vector<mobility::DeviceTrace> traces = [] {
    mobility::DeviceWorkloadConfig config;  // paper-calibrated defaults
    config.days = 30;
    return mobility::DeviceWorkloadGenerator(paper_internet(), config)
        .generate();
  }();
  return traces;
}

/// 500 popular + 500 unpopular domains, 21 days of hourly resolution from
/// 74 vantage points (§7.1).
inline const mobility::ContentCatalog& paper_content_catalog() {
  static const mobility::ContentCatalog catalog =
      mobility::ContentWorkloadGenerator(paper_internet(),
                                         mobility::ContentWorkloadConfig{})
          .generate();
  return catalog;
}

/// Prints a heading plus the paper's reported anchor for a figure.
inline void print_figure_header(const std::string& figure,
                                const std::string& paper_reports) {
  std::cout << stats::heading(figure);
  std::cout << "Paper reports: " << paper_reports << "\n\n";
}

/// Renders per-router update-rate stats as the bar chart the paper plots.
inline void print_router_rates(const std::vector<core::RouterUpdateStats>&
                                   router_stats,
                               const std::string& unit_note) {
  std::vector<std::pair<std::string, double>> rows;
  rows.reserve(router_stats.size());
  for (const core::RouterUpdateStats& s : router_stats) {
    rows.emplace_back(s.router, s.rate() * 100.0);
  }
  std::cout << stats::bar_chart(rows, "%") << "\n" << unit_note << "\n";
}

}  // namespace lina::bench
