// Scale experiment (not a paper figure): the paper's methodology observed
// 372 users; this bench runs the same pipeline out-of-core at millions of
// users. The population is generated straight to trace shards (never
// resident), then replayed twice — per-user traces in batches and the
// global attachment-event stream through the k-way merge cursor — while
// peak RSS stays bounded by one shard plus one batch. Headline results:
// peak RSS, generate/replay records per second, and order-independent
// digests that tie the two replay paths to the same byte stream.

#include <sys/resource.h>

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>

#include "common.hpp"
#include "lina/des/replay.hpp"
#include "lina/snap/store.hpp"
#include "lina/trace/cursor.hpp"
#include "lina/trace/replay.hpp"

using namespace lina;
namespace fs = std::filesystem;

namespace {

/// Linux reports ru_maxrss in KiB.
double peak_rss_mib() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// FNV-1a style mix; order-sensitive, so equal digests mean equal streams.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 1099511628211ULL;
}

std::uint64_t parse_count(const std::string& text, std::uint64_t fallback,
                          const char* what) {
  if (text.empty()) return fallback;
  try {
    const std::uint64_t value = std::stoull(text);
    if (value > 0) return value;
  } catch (const std::exception&) {
  }
  std::cerr << "scale_million_users: bad " << what << " '" << text
            << "', using " << fallback << "\n";
  return fallback;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string users_text, days_text, shard_users_text;
  std::string des_shards_text = "16";
  std::string des_window_text = "0";
  std::string des_sync_text = "both";
  bool verify = false;
  bool keep = false;
  bench::Harness harness(
      argc, argv, "scale_million_users",
      {{"--users", &users_text},
       {"--days", &days_text},
       {"--shard-users", &shard_users_text},
       {"--des-shards", &des_shards_text},
       {"--des-window-ms", &des_window_text},
       {"--des-sync", &des_sync_text},
       {"--verify", nullptr, &verify},
       {"--keep", nullptr, &keep}});

  const std::uint64_t users = parse_count(users_text, 1'000'000, "--users");
  const std::uint64_t days = parse_count(days_text, 30, "--days");
  const std::uint64_t shard_users =
      parse_count(shard_users_text, 8192, "--shard-users");

  // Fail fast on a bad packet-engine configuration, before any measured
  // phase — the same contract as the harness's output-path probes.
  std::size_t des_shards = 0;
  try {
    des_shards = std::stoul(des_shards_text);
  } catch (const std::exception&) {
  }
  if (des_shards == 0) {
    std::cerr << "scale_million_users: bad --des-shards value '"
              << des_shards_text << "' (want a positive integer)\n";
    std::exit(2);
  }
  double des_window_ms = -1.0;
  try {
    des_window_ms = std::stod(des_window_text);
  } catch (const std::exception&) {
  }
  if (!(des_window_ms >= 0.0) || !std::isfinite(des_window_ms)) {
    std::cerr << "scale_million_users: bad --des-window-ms value '"
              << des_window_text
              << "' (want a finite non-negative number; 0 = auto)\n";
    std::exit(2);
  }
  std::vector<std::pair<std::string, des::SyncMode>> des_sync_arms;
  if (des_sync_text == "conservative" || des_sync_text == "both") {
    des_sync_arms.emplace_back("conservative",
                               des::SyncMode::kConservative);
  }
  if (des_sync_text == "optimistic" || des_sync_text == "both") {
    des_sync_arms.emplace_back("optimistic", des::SyncMode::kOptimistic);
  }
  if (des_sync_arms.empty()) {
    std::cerr << "scale_million_users: bad --des-sync value '"
              << des_sync_text
              << "' (want conservative | optimistic | both)\n";
    std::exit(2);
  }

  bench::print_figure_header(
      "Scale — out-of-core generate + replay at " + std::to_string(users) +
          " users",
      "(not a paper figure) the 372-user methodology, run out-of-core: "
      "shard generation and bounded-memory replay keep peak RSS flat while "
      "the population scales by four orders of magnitude.");

  const auto& internet = bench::paper_internet();
  mobility::DeviceWorkloadConfig config;  // paper-calibrated defaults
  config.user_count = users;
  config.days = days;
  harness.seed(config.seed);

  trace::ShardSet set = [&] {
    if (!harness.trace_in().empty()) {
      // Replay an existing set (generation cost already paid elsewhere).
      harness.phase("discover");
      return trace::ShardSet::discover(harness.trace_in());
    }
    const fs::path base = harness.out_dir().empty()
                              ? fs::path("trace-cache")
                              : fs::path(harness.out_dir());
    const fs::path dir =
        base / ("scale-u" + std::to_string(users) + "-d" +
                std::to_string(days) + "-s" + std::to_string(shard_users));
    std::error_code ignored;
    if (fs::exists(dir, ignored)) {
      for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".ltrc")
          fs::remove(entry.path(), ignored);
      }
    }
    harness.phase("generate");
    const auto start = std::chrono::steady_clock::now();
    const mobility::DeviceWorkloadGenerator generator(internet, config);
    trace::StreamingWorkloadConfig stream_config;
    stream_config.users_per_shard = shard_users;
    stream_config.verify_after_write = verify;
    trace::ShardSet written =
        trace::StreamingWorkload(generator, stream_config).write_shards(dir);
    const double elapsed = seconds_since(start);
    harness.result("generate_users_per_sec",
                   static_cast<double>(users) / elapsed);
    std::cout << "generate: " << users << " users -> "
              << written.shards().size() << " shards, "
              << written.visit_count() << " visits, "
              << written.event_count() << " events in "
              << stats::fmt(elapsed, 1) << " s\n";
    return written;
  }();

  harness.result("shards", static_cast<double>(set.shards().size()));
  std::uint64_t bytes = 0;
  for (const trace::ShardInfo& shard : set.shards()) {
    std::error_code ignored;
    bytes += fs::file_size(shard.path, ignored);
  }
  harness.result("shard_bytes", static_cast<double>(bytes));
  harness.result("bytes_per_visit",
                 static_cast<double>(bytes) /
                     static_cast<double>(set.visit_count()));

  // Per-user trace replay: the figs 6-9 consumption pattern, batched.
  harness.phase("replay_traces");
  {
    const auto start = std::chrono::steady_clock::now();
    trace::DeviceTraceStream stream(set);
    std::uint64_t digest = 1469598103934665603ULL;
    std::uint64_t visits = 0;
    while (!stream.done()) {
      for (const mobility::DeviceTrace& trace :
           stream.next_batch(trace::kDefaultBatchUsers)) {
        for (const mobility::DeviceVisit& visit : trace.visits()) {
          digest = mix(digest, std::bit_cast<std::uint64_t>(visit.start_hour));
          digest = mix(digest, visit.address.value());
          digest = mix(digest, visit.as);
          ++visits;
        }
      }
    }
    const double elapsed = seconds_since(start);
    harness.result("trace_replay_visits_per_sec",
                   static_cast<double>(visits) / elapsed);
    harness.result("trace_replay_digest", static_cast<double>(digest >> 32));
    std::cout << "replay_traces: " << visits << " visits in "
              << stats::fmt(elapsed, 1) << " s ("
              << stats::fmt(static_cast<double>(visits) / elapsed / 1e6, 2)
              << " M visits/s), digest " << (digest >> 32) << "\n";
  }

  // Global event replay: the k-way merge across every shard at once.
  harness.phase("replay_events");
  {
    const auto start = std::chrono::steady_clock::now();
    trace::TraceCursor cursor(set);
    std::uint64_t digest = 1469598103934665603ULL;
    trace::TraceEvent event;
    while (cursor.next(event)) {
      digest = mix(digest, std::bit_cast<std::uint64_t>(event.hour));
      digest = mix(digest, event.user);
      digest = mix(digest, event.address.value());
    }
    const double elapsed = seconds_since(start);
    harness.result("event_replay_events_per_sec",
                   static_cast<double>(cursor.events_replayed()) / elapsed);
    harness.result("event_replay_digest", static_cast<double>(digest >> 32));
    std::cout << "replay_events: " << cursor.events_replayed()
              << " events across " << set.shards().size() << " shards in "
              << stats::fmt(elapsed, 1) << " s ("
              << stats::fmt(static_cast<double>(cursor.events_replayed()) /
                                elapsed / 1e6,
                            2)
              << " M events/s), digest " << (digest >> 32) << "\n";
  }

  // FIB replay: stream every visit address through a frozen snapshot of
  // the first vantage router's FIB with batched (prefetched) LPM lookups —
  // the forwarding-plane half of the scale story. The port digest is
  // order-sensitive and architecture-independent, so it pins the lookup
  // results bit-for-bit across runs and thread counts.
  harness.phase("replay_fib");
  // Streams every visit address through the given frozen FIB with batched
  // (prefetched) LPM lookups; returns {digest, lookups}. The digest is
  // order-sensitive, so equal digests mean bit-identical lookup results.
  const auto fib_replay = [&set](const routing::FrozenFib& fib) {
    trace::DeviceTraceStream stream(set);
    std::uint64_t digest = 1469598103934665603ULL;
    std::uint64_t lookups = 0;
    std::vector<net::Ipv4Address> addrs;
    std::vector<const routing::FibEntry*> hits;
    while (!stream.done()) {
      addrs.clear();
      for (const mobility::DeviceTrace& trace :
           stream.next_batch(trace::kDefaultBatchUsers)) {
        for (const mobility::DeviceVisit& visit : trace.visits()) {
          addrs.push_back(visit.address);
        }
      }
      hits.resize(addrs.size());
      fib.entries_for_many(addrs, hits);
      for (const routing::FibEntry* entry : hits) {
        digest = mix(digest, entry == nullptr ? 0xffffffffULL : entry->port);
      }
      lookups += addrs.size();
    }
    return std::pair<std::uint64_t, std::uint64_t>{digest, lookups};
  };
  std::uint64_t fib_digest = 0;
  {
    const auto start = std::chrono::steady_clock::now();
    const routing::FrozenFib fib = internet.vantages().front().fib().freeze();
    const auto [digest, lookups] = fib_replay(fib);
    fib_digest = digest;
    const double elapsed = seconds_since(start);
    harness.result("fib_lookups_per_sec",
                   static_cast<double>(lookups) / elapsed);
    harness.result("fib_replay_digest", static_cast<double>(digest >> 32));
    harness.result("fib_table_bytes",
                   static_cast<double>(
                       internet.vantages().front().fib().table_bytes()));
    std::cout << "replay_fib: " << lookups << " batched LPM lookups in "
              << stats::fmt(elapsed, 1) << " s ("
              << stats::fmt(static_cast<double>(lookups) / elapsed / 1e6, 2)
              << " M lookups/s), digest " << (digest >> 32) << "\n";
  }

  // Warm start: persist the vantage FIB with lina::snap, reload it, and
  // replay the same address stream through the loaded copy. The digest
  // must match replay_fib bit-for-bit — a snapshot that forwards even one
  // packet differently is a failure, not a drift.
  harness.phase("warm_start");
  {
    const fs::path dir =
        (harness.out_dir().empty() ? fs::temp_directory_path()
                                   : fs::path(harness.out_dir())) /
        ("scale-snap-" + std::to_string(users));
    std::error_code ignored;
    fs::remove_all(dir, ignored);
    std::uint64_t snapshot_bytes = 0;
    {
      snap::SnapshotStore store(dir);
      snapshot_bytes =
          store
              .save_ip_fib("vantage-0",
                           internet.vantages().front().fib().freeze())
              .bytes;
    }
    const auto load_start = std::chrono::steady_clock::now();
    const routing::FrozenFib loaded = [&] {
      const snap::SnapshotStore store(dir);
      return store.load_ip_fib("vantage-0");
    }();
    const double load_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - load_start)
            .count();
    const auto [digest, lookups] = fib_replay(loaded);
    if (digest != fib_digest) {
      std::cerr << "warm_start: reloaded FIB digest " << (digest >> 32)
                << " != live digest " << (fib_digest >> 32) << "\n";
      return 1;
    }
    harness.result("warm_start_digest", static_cast<double>(digest >> 32));
    harness.result("snapshot_bytes_per_entry",
                   static_cast<double>(snapshot_bytes) /
                       static_cast<double>(loaded.size()));
    harness.result("snapshot_load_ms", load_ms);
    std::cout << "warm_start: " << snapshot_bytes << " snapshot bytes, "
              << "loaded in " << stats::fmt(load_ms, 2) << " ms, " << lookups
              << " lookups re-verified, digest matches live FIB\n";
    fs::remove_all(dir, ignored);
  }

  // Packet-level replay: every user's first 24 trace hours becomes a CBR
  // session through the lina::des sharded engine, streamed in bounded
  // batches — the packet-forwarding half of the scale story runs
  // out-of-core too, and its digest is invariant across shard count,
  // thread count, and batch size (tests/des), so it gates determinism in
  // the perf trajectory.
  harness.phase("packet");
  {
    harness.note("des.shards", std::to_string(des_shards));
    harness.note("des.window_ms", stats::fmt(des_window_ms, 3));
    harness.note("des.sync", des_sync_text);
    const sim::ForwardingFabric packet_fabric(internet);
    bool first_arm = true;
    des::DeliveryDigest first_digest;
    for (const auto& [sync_key, sync_mode] : des_sync_arms) {
      des::PacketReplayConfig packet_config;
      packet_config.architecture = sim::SimArchitecture::kIndirection;
      packet_config.hours = 24.0;
      packet_config.interval_ms = 1000.0;
      packet_config.correspondent = internet.edge_ases()[0];
      packet_config.batch_users = shard_users;
      packet_config.engine.shard_count = des_shards;
      packet_config.engine.window_ms = des_window_ms;
      packet_config.engine.sync = sync_mode;
      const auto start = std::chrono::steady_clock::now();
      const des::PacketReplayStats packets =
          des::replay_packets_streamed(packet_fabric, set, packet_config);
      const double elapsed = seconds_since(start);
      if (first_arm) {
        // Digest / count keys are mode-invariant (tests/des pins both
        // modes to the serial reference), so they are emitted once and
        // stay gated in compare_runs.py.
        first_digest = packets.digest;
        harness.result("packet_sessions",
                       static_cast<double>(packets.sessions));
        harness.result("packet_sent",
                       static_cast<double>(packets.digest.sent));
        harness.result("packet_delivered",
                       static_cast<double>(packets.digest.delivered));
        harness.result("packet_digest",
                       static_cast<double>(packets.digest.fingerprint() &
                                           0xffffffffULL));
        // Deterministic load-balance / comms shape (thread-invariant):
        // gated, so skew or bundling drift shows up as a failure.
        harness.result("des_shard_imbalance",
                       std::round(packets.shard_imbalance * 1000.0) /
                           1000.0);
        harness.result("des_bundles",
                       static_cast<double>(packets.bundles));
      } else if (packets.digest != first_digest) {
        std::cerr << "scale_million_users: " << sync_key
                  << " digest diverged from the first sync arm (fp "
                  << (packets.digest.fingerprint() & 0xffffffffULL)
                  << " vs "
                  << (first_digest.fingerprint() & 0xffffffffULL)
                  << ") — the bit-identity contract is broken\n";
        return 1;
      }
      first_arm = false;
      harness.result("des_" + sync_key + "_events_per_sec",
                     static_cast<double>(packets.events) / elapsed);
      if (sync_mode == des::SyncMode::kConservative) {
        harness.result("des_conservative_redrain_passes",
                       static_cast<double>(packets.redrain_passes));
      } else {
        harness.result("des_optimistic_rollbacks",
                       static_cast<double>(packets.rollbacks));
        harness.result("des_optimistic_rolled_back_events",
                       static_cast<double>(packets.rolled_back_events));
      }
      std::cout << "packet[" << sync_key << "]: " << packets.sessions
                << " sessions, " << packets.events << " events across "
                << des_shards << " shards in " << stats::fmt(elapsed, 1)
                << " s ("
                << stats::fmt(static_cast<double>(packets.events) /
                                  elapsed / 1e6,
                              2)
                << " M events/s, imbalance "
                << stats::fmt(packets.shard_imbalance, 2) << ", "
                << packets.bundles << " bundles, " << packets.rollbacks
                << " rollbacks), " << packets.digest.delivered << "/"
                << packets.digest.sent << " delivered, digest "
                << (packets.digest.fingerprint() & 0xffffffffULL) << "\n";
    }
  }

  harness.result("peak_rss_mib", peak_rss_mib());
  std::cout << "peak RSS " << stats::fmt(peak_rss_mib(), 1) << " MiB, "
            << stats::fmt(static_cast<double>(bytes) / (1024.0 * 1024.0), 1)
            << " MiB on disk\n";

  if (!keep && harness.trace_in().empty()) {
    harness.phase("cleanup");
    std::error_code ignored;
    for (const trace::ShardInfo& shard : set.shards()) {
      fs::remove(shard.path, ignored);
    }
  }
  return 0;
}
