// Reproduces Figure 9 (§6.3.1): CDF across all users and days of the
// fraction of time spent at the dominant network location.

#include <iostream>

#include "common.hpp"

using namespace lina;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "fig9_dominant_location");
  bench::print_figure_header(
      "Figure 9 — time share at the dominant location (per user-day)",
      "over 40% of users spend around 70% of their day at the dominant IP "
      "address and around 85% at the dominant AS; users typically spend "
      "~30% of a day away from the dominant IP address.");

  // Replays the shard cache shared with figs 6 and 7 (see common.hpp).
  const auto extent =
      trace::analyze_extent_streamed(bench::paper_trace_shards());

  const std::vector<std::pair<std::string, const stats::EmpiricalCdf*>>
      series{{"IP addresses", &extent.dominant_ip_share},
             {"IP prefixes", &extent.dominant_prefix_share},
             {"ASes", &extent.dominant_as_share}};
  std::cout << stats::multi_cdf_table(series, "time share") << "\n";

  std::cout << "Measured medians: dominant IP "
            << stats::pct(extent.dominant_ip_share.quantile(0.5), 1)
            << ", dominant prefix "
            << stats::pct(extent.dominant_prefix_share.quantile(0.5), 1)
            << ", dominant AS "
            << stats::pct(extent.dominant_as_share.quantile(0.5), 1)
            << " of the day (" << extent.dominant_ip_share.size()
            << " user-days).\n";
  std::cout << "Fraction of users below 70% at dominant IP: "
            << stats::pct(extent.dominant_ip_share.at(0.7), 1)
            << "; below 85% at dominant AS: "
            << stats::pct(extent.dominant_as_share.at(0.85), 1) << ".\n";
  return 0;
}
