// Google-benchmark microbenchmarks for the hot data structures: the IP LPM
// trie, the hierarchical name trie, route selection, the policy-routing
// engine, and the shortest-path kernels. These bound the cost of scaling
// the reproduction up.

#include <benchmark/benchmark.h>

#include <vector>

#include "lina/cache/mapping_cache.hpp"
#include "lina/des/bundle.hpp"
#include "lina/exec/thread_pool.hpp"
#include "lina/names/name_trie.hpp"
#include "lina/prof/prof.hpp"
#include "lina/net/ip_trie.hpp"
#include "reference_tries.hpp"
#include "lina/routing/policy_routing.hpp"
#include "lina/routing/rib.hpp"
#include "lina/stats/rng.hpp"
#include "lina/topology/as_graph.hpp"
#include "lina/topology/graph.hpp"
#include "lina/topology/shortest_paths.hpp"

namespace {

using namespace lina;

std::vector<net::Prefix> random_prefixes(std::size_t count,
                                         stats::Rng& rng) {
  std::vector<net::Prefix> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto addr = net::Ipv4Address(
        static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffff)));
    out.emplace_back(addr, 8 + static_cast<unsigned>(rng.index(17)));
  }
  return out;
}

void BM_IpTrieInsert(benchmark::State& state) {
  stats::Rng rng(1);
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    net::IpTrie<int> trie;
    int value = 0;
    for (const auto& prefix : prefixes) trie.insert(prefix, value++);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IpTrieInsert)->Range(1 << 8, 1 << 14);

void BM_IpTrieLookup(benchmark::State& state) {
  stats::Rng rng(2);
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), rng);
  net::IpTrie<int> trie;
  int value = 0;
  for (const auto& prefix : prefixes) trie.insert(prefix, value++);
  std::vector<net::Ipv4Address> queries;
  for (int i = 0; i < 1024; ++i) {
    queries.push_back(net::Ipv4Address(
        static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffff))));
  }
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.lookup(queries[q++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IpTrieLookup)->Range(1 << 8, 1 << 16);

void BM_NameTrieLookup(benchmark::State& state) {
  stats::Rng rng(3);
  names::NameTrie<int> trie;
  std::vector<names::ContentName> names;
  const auto count = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < count; ++i) {
    names::ContentName name({"com", "d" + std::to_string(rng.index(count))});
    if (rng.chance(0.7)) name = name.child("s" + std::to_string(rng.index(40)));
    trie.insert(name, static_cast<int>(i));
    names.push_back(std::move(name));
  }
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.lookup(names[q++ % names.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NameTrieLookup)->Range(1 << 8, 1 << 14);

// "Legacy*" benchmarks run the pre-arena reference implementations
// (tests/support/reference_tries.hpp) over identical seeds and shapes, so
// a single JSON run carries the old-vs-new comparison.

void BM_LegacyIpTrieInsert(benchmark::State& state) {
  stats::Rng rng(1);
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    testref::LegacyIpTrie<int> trie;
    int value = 0;
    for (const auto& prefix : prefixes) trie.insert(prefix, value++);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LegacyIpTrieInsert)->Range(1 << 8, 1 << 14);

void BM_LegacyIpTrieLookup(benchmark::State& state) {
  stats::Rng rng(2);
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), rng);
  testref::LegacyIpTrie<int> trie;
  int value = 0;
  for (const auto& prefix : prefixes) trie.insert(prefix, value++);
  std::vector<net::Ipv4Address> queries;
  for (int i = 0; i < 1024; ++i) {
    queries.push_back(net::Ipv4Address(
        static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffff))));
  }
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.lookup(queries[q++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LegacyIpTrieLookup)->Range(1 << 8, 1 << 16);

void BM_IpTrieErase(benchmark::State& state) {
  stats::Rng rng(8);
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    state.PauseTiming();
    net::IpTrie<int> trie;
    int value = 0;
    for (const auto& prefix : prefixes) trie.insert(prefix, value++);
    state.ResumeTiming();
    for (const auto& prefix : prefixes) trie.erase(prefix);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IpTrieErase)->Range(1 << 8, 1 << 14);

void BM_LegacyIpTrieErase(benchmark::State& state) {
  stats::Rng rng(8);
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    state.PauseTiming();
    testref::LegacyIpTrie<int> trie;
    int value = 0;
    for (const auto& prefix : prefixes) trie.insert(prefix, value++);
    state.ResumeTiming();
    for (const auto& prefix : prefixes) trie.erase(prefix);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LegacyIpTrieErase)->Range(1 << 8, 1 << 14);

void BM_IpTrieFreeze(benchmark::State& state) {
  stats::Rng rng(9);
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), rng);
  net::IpTrie<int> trie;
  int value = 0;
  for (const auto& prefix : prefixes) trie.insert(prefix, value++);
  for (auto _ : state) {
    const auto frozen = trie.freeze();
    benchmark::DoNotOptimize(frozen.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IpTrieFreeze)->Range(1 << 8, 1 << 14);

void BM_IpTrieFrozenLookupMany(benchmark::State& state) {
  stats::Rng rng(2);  // same table/query stream as BM_IpTrieLookup
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), rng);
  net::IpTrie<int> trie;
  int value = 0;
  for (const auto& prefix : prefixes) trie.insert(prefix, value++);
  const auto frozen = trie.freeze();
  std::vector<net::Ipv4Address> queries;
  for (int i = 0; i < 1024; ++i) {
    queries.push_back(net::Ipv4Address(
        static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffff))));
  }
  std::vector<const int*> hits(queries.size());
  for (auto _ : state) {
    frozen.lookup_many(queries, hits);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(queries.size()));
}
BENCHMARK(BM_IpTrieFrozenLookupMany)->Range(1 << 8, 1 << 16);

void BM_IpTrieCompressedSize(benchmark::State& state) {
  stats::Rng rng(10);
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), rng);
  net::IpTrie<int> trie;
  for (const auto& prefix : prefixes) {
    trie.insert(prefix, static_cast<int>(rng.index(4)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.lpm_compressed_size());  // O(1) read
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IpTrieCompressedSize)->Range(1 << 8, 1 << 14);

void BM_LegacyIpTrieCompressedSize(benchmark::State& state) {
  stats::Rng rng(10);
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), rng);
  testref::LegacyIpTrie<int> trie;
  for (const auto& prefix : prefixes) {
    trie.insert(prefix, static_cast<int>(rng.index(4)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.lpm_compressed_size());  // full recount
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LegacyIpTrieCompressedSize)->Range(1 << 8, 1 << 14);

std::vector<names::ContentName> bench_names(std::size_t count,
                                            stats::Rng& rng) {
  std::vector<names::ContentName> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    names::ContentName name({"com", "d" + std::to_string(rng.index(count))});
    if (rng.chance(0.7)) name = name.child("s" + std::to_string(rng.index(40)));
    out.push_back(std::move(name));
  }
  return out;
}

void BM_NameTrieInsert(benchmark::State& state) {
  stats::Rng rng(3);
  const auto names_list =
      bench_names(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    names::NameTrie<int> trie;
    int value = 0;
    for (const auto& name : names_list) trie.insert(name, value++);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NameTrieInsert)->Range(1 << 8, 1 << 14);

void BM_LegacyNameTrieInsert(benchmark::State& state) {
  stats::Rng rng(3);
  const auto names_list =
      bench_names(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    testref::LegacyNameTrie<int> trie;
    int value = 0;
    for (const auto& name : names_list) trie.insert(name, value++);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LegacyNameTrieInsert)->Range(1 << 8, 1 << 14);

void BM_NameTrieLookupValue(benchmark::State& state) {
  stats::Rng rng(3);  // same table/query stream as BM_NameTrieLookup
  names::NameTrie<int> trie;
  const auto names_list =
      bench_names(static_cast<std::size_t>(state.range(0)), rng);
  int value = 0;
  for (const auto& name : names_list) trie.insert(name, value++);
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.lookup_value(names_list[q++ % names_list.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NameTrieLookupValue)->Range(1 << 8, 1 << 14);

void BM_LegacyNameTrieLookup(benchmark::State& state) {
  stats::Rng rng(3);
  testref::LegacyNameTrie<int> trie;
  const auto names_list =
      bench_names(static_cast<std::size_t>(state.range(0)), rng);
  int value = 0;
  for (const auto& name : names_list) trie.insert(name, value++);
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trie.lookup_value(names_list[q++ % names_list.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LegacyNameTrieLookup)->Range(1 << 8, 1 << 14);

void BM_NameTrieFrozenLookupMany(benchmark::State& state) {
  stats::Rng rng(3);
  names::NameTrie<int> trie;
  const auto names_list =
      bench_names(static_cast<std::size_t>(state.range(0)), rng);
  int value = 0;
  for (const auto& name : names_list) trie.insert(name, value++);
  const auto frozen = trie.freeze();
  std::vector<const int*> hits(names_list.size());
  for (auto _ : state) {
    frozen.lookup_many(names_list, hits);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(names_list.size()));
}
BENCHMARK(BM_NameTrieFrozenLookupMany)->Range(1 << 8, 1 << 14);

void BM_RouteSelection(benchmark::State& state) {
  stats::Rng rng(4);
  routing::Rib rib;
  const net::Prefix prefix = net::Prefix::parse("10.0.0.0/16");
  const auto candidates = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < candidates; ++i) {
    rib.add(routing::RibRoute{
        .prefix = prefix,
        .as_path = routing::AsPath(
            {static_cast<topology::AsId>(i + 1),
             static_cast<topology::AsId>(1000 + rng.index(50)), 9999}),
        .route_class = static_cast<routing::RouteClass>(rng.index(3)),
        .local_pref = 0,
        .med = static_cast<std::uint32_t>(rng.index(10))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rib.best(prefix));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RouteSelection)->Range(2, 256);

void BM_PolicyRoutes(benchmark::State& state) {
  stats::Rng rng(5);
  topology::InternetConfig config;
  config.tier1_count = 10;
  config.tier2_count = static_cast<std::size_t>(state.range(0)) / 8;
  config.stub_count = static_cast<std::size_t>(state.range(0));
  const auto graph = topology::make_hierarchical_internet(config, rng);
  topology::AsId destination = static_cast<topology::AsId>(
      graph.as_count() - 1);
  for (auto _ : state) {
    const routing::PolicyRoutes routes(graph, destination);
    benchmark::DoNotOptimize(routes.best_distance(0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(graph.as_count()));
}
BENCHMARK(BM_PolicyRoutes)->Range(128, 2048);

/// A connected sparse random graph of the shape the AS-level analyses walk
/// (mean degree ~4, unit weights plus jitter so the PQ sees real ordering
/// work, not all-equal keys).
topology::Graph random_sparse_graph(std::size_t nodes, stats::Rng& rng) {
  topology::Graph graph(nodes);
  for (std::size_t v = 1; v < nodes; ++v) {
    // Spanning-tree edge keeps the graph connected.
    graph.add_edge(static_cast<topology::NodeId>(v),
                   static_cast<topology::NodeId>(rng.index(v)),
                   1.0 + rng.uniform());
  }
  const std::size_t extra = nodes;  // ~2 edges per node total
  for (std::size_t i = 0; i < extra; ++i) {
    const auto a = static_cast<topology::NodeId>(rng.index(nodes));
    const auto b = static_cast<topology::NodeId>(rng.index(nodes));
    if (a == b || graph.has_edge(a, b)) continue;
    graph.add_edge(a, b, 1.0 + rng.uniform());
  }
  return graph;
}

// Covers the Dijkstra micro-opts (uint8_t done flags, reserved PQ backing,
// stale-entry skip). Compare against historical BENCH numbers to see the
// effect; items/sec counts settled nodes.
void BM_Dijkstra(benchmark::State& state) {
  stats::Rng rng(6);
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto graph = random_sparse_graph(nodes, rng);
  for (auto _ : state) {
    const auto tree = dijkstra(graph, 0);
    benchmark::DoNotOptimize(tree.distance.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Dijkstra)->Range(1 << 8, 1 << 13);

// All-pairs build = one Dijkstra per source, fanned across the lina::exec
// pool. Run once with --threads-style env control via exec defaults; the
// 1-thread arm is the serial baseline for the parallel layer's speedup.
void BM_AllPairsShortestPaths(benchmark::State& state) {
  stats::Rng rng(7);
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto graph = random_sparse_graph(nodes, rng);
  const auto threads = static_cast<std::size_t>(state.range(1));
  exec::set_default_threads(threads);
  for (auto _ : state) {
    const topology::AllPairsShortestPaths table(graph);
    benchmark::DoNotOptimize(table.node_count());
  }
  exec::set_default_threads(0);
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_AllPairsShortestPaths)
    ->ArgsProduct({{256, 512, 1024}, {1, 8}});

// Mapping-cache micros: steady-state probe hit, probe miss, and the full
// insert-evict cycle, for each replacement policy. Arg 1 selects the
// policy (0 = TTL+LRU, 1 = LFU, 2 = 2Q); items/sec counts operations.

cache::CacheConfig micro_cache_config(std::int64_t policy_arg,
                                      std::size_t capacity) {
  cache::CacheConfig config;
  config.policy = policy_arg == 0   ? cache::Policy::kTtlLru
                  : policy_arg == 1 ? cache::Policy::kLfu
                                    : cache::Policy::kTwoQ;
  config.capacity = capacity;
  return config;
}

void BM_MappingCacheHit(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  cache::MappingCache<std::uint64_t, std::uint32_t> cache(
      micro_cache_config(state.range(1), capacity));
  for (std::uint64_t k = 0; k < capacity; ++k) {
    cache.insert(k, static_cast<std::uint32_t>(k), 0.0);
  }
  // Skewed resident stream: hot keys dominate, as on the resolution path.
  stats::Rng rng(11);
  std::vector<std::uint64_t> keys(1024);
  for (auto& key : keys) {
    key = static_cast<std::uint64_t>(rng.index(capacity)) / 2;
  }
  std::size_t q = 0;
  double now = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.probe(keys[q++ & 1023], now));
    now += 0.001;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MappingCacheHit)
    ->ArgsProduct({{1 << 8, 1 << 12, 1 << 16}, {0, 1, 2}});

void BM_MappingCacheMiss(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  cache::MappingCache<std::uint64_t, std::uint32_t> cache(
      micro_cache_config(state.range(1), capacity));
  for (std::uint64_t k = 0; k < capacity; ++k) {
    cache.insert(k, static_cast<std::uint32_t>(k), 0.0);
  }
  std::uint64_t q = 0;
  for (auto _ : state) {
    // Keys above the resident range: every probe walks the table and
    // misses.
    benchmark::DoNotOptimize(cache.probe(capacity + (q++ & 1023), 1.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MappingCacheMiss)
    ->ArgsProduct({{1 << 8, 1 << 12, 1 << 16}, {0, 1, 2}});

void BM_MappingCacheEvict(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  cache::MappingCache<std::uint64_t, std::uint32_t> cache(
      micro_cache_config(state.range(1), capacity));
  for (std::uint64_t k = 0; k < capacity; ++k) {
    cache.insert(k, static_cast<std::uint32_t>(k), 0.0);
  }
  // Every insert is a fresh key into a full cache: probe-miss + victim
  // selection + backward-shift erase + insert, the worst-case write.
  std::uint64_t next = capacity;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.insert(next, static_cast<std::uint32_t>(next), 1.0));
    ++next;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MappingCacheEvict)
    ->ArgsProduct({{1 << 8, 1 << 12, 1 << 16}, {0, 1, 2}});

// Cross-shard mailbox micros for the lina::des engine (DESIGN.md §4j):
// the writer-side handoff (per-event vector push_back vs bundled append
// into the recycled 1 KiB arena) and the full append+drain round trip a
// window barrier performs. Arg 0 is records per window; arg 1 selects the
// container (0 = plain std::vector mailbox — the PR 9 shape — 1 =
// BundleChain). Items/sec counts records. Both measure the *steady
// state*: the first window's allocations happen outside the timed loop.

des::EventRecord mailbox_record(std::uint32_t i) {
  des::EventRecord r;
  r.time_ms = static_cast<double>(i) * 0.125;
  r.sent_ms = r.time_ms;
  r.session = i & 1023;
  r.packet = i;
  r.at = i % 197;
  r.dest = (i * 7) % 197;
  r.hops = static_cast<std::uint16_t>(i % 13);
  r.type = des::EventType::kHop;
  return r;
}

void BM_MailboxAppend(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const bool bundled = state.range(1) != 0;
  std::vector<des::EventRecord> vec;
  des::BundleChain chain;
  // Warm one window so both containers reach their high-water mark.
  for (std::uint32_t i = 0; i < n; ++i) {
    if (bundled) chain.append(mailbox_record(i));
    else vec.push_back(mailbox_record(i));
  }
  if (bundled) chain.drain([](const des::EventRecord&) {});
  else vec.clear();
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < n; ++i) {
      if (bundled) chain.append(mailbox_record(i));
      else vec.push_back(mailbox_record(i));
    }
    if (bundled) {
      benchmark::DoNotOptimize(chain.pending_records());
      chain.drain([](const des::EventRecord&) {});
    } else {
      benchmark::DoNotOptimize(vec.size());
      vec.clear();
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MailboxAppend)
    ->ArgsProduct({{1 << 6, 1 << 10, 1 << 14}, {0, 1}});

void BM_BundleDrain(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const bool bundled = state.range(1) != 0;
  std::vector<des::EventRecord> vec;
  des::BundleChain chain;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (std::uint32_t i = 0; i < n; ++i) {
      if (bundled) chain.append(mailbox_record(i));
      else vec.push_back(mailbox_record(i));
    }
    state.ResumeTiming();
    // The barrier's reader side: visit every record, then reset keeping
    // the arena — what shards_[dst] does per window.
    if (bundled) {
      chain.drain([&](const des::EventRecord& r) { sink += r.packet; });
    } else {
      for (const des::EventRecord& r : vec) sink += r.packet;
      vec.clear();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BundleDrain)
    ->ArgsProduct({{1 << 6, 1 << 10, 1 << 14}, {0, 1}});

// Span-overhead pins for the lina::prof contract: a disabled PROF_SPAN
// must cost <= ~2ns (one relaxed atomic load + branch), an enabled span
// recorded into a non-saturated ring <= ~40ns on native hardware (one
// calibrated TSC read per boundary, eight counter samples, one ring slot
// write). VMs that virtualize rdtsc (~15ns/read) roughly double that —
// compare trends across runs on the same box, not the absolute ceiling.

void BM_ProfSpanDisabled(benchmark::State& state) {
  prof::Profiler::instance().enable(false);
  prof::Profiler::instance().reset();
  for (auto _ : state) {
    PROF_SPAN("lina.bench.noop");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfSpanDisabled);

void BM_ProfSpanEnabled(benchmark::State& state) {
  auto& profiler = prof::Profiler::instance();
  profiler.enable(false);
  profiler.set_ring_capacity(1 << 16);
  profiler.reset();
  profiler.enable(true);
  // Drain the ring before it saturates so the benchmark measures the
  // record path, not the cheaper drop-and-count path.
  const std::size_t budget = profiler.ring_capacity() - 8;
  std::size_t since_reset = 0;
  for (auto _ : state) {
    if (++since_reset >= budget) {
      state.PauseTiming();
      profiler.reset();
      since_reset = 0;
      state.ResumeTiming();
    }
    PROF_SPAN("lina.bench.recorded");
    benchmark::ClobberMemory();
  }
  profiler.enable(false);
  profiler.reset();
  profiler.set_ring_capacity(prof::Profiler::kDefaultRingCapacity);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfSpanEnabled);

}  // namespace

BENCHMARK_MAIN();
