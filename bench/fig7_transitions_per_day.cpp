// Reproduces Figure 7 (§6.1): CDF across users of the average number of
// transitions across network locations per day.

#include <iostream>

#include "common.hpp"

using namespace lina;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "fig7_transitions_per_day");
  bench::print_figure_header(
      "Figure 7 — transitions across network locations per user per day",
      "median user: ~3 IP-address and ~1 AS transition/day; over 20% of "
      "users change IP address more than 10 times a day; max average AS "
      "transition rate 31.6/day, min 0.25/day.");

  // Replays the shard cache shared with figs 6 and 9 (see common.hpp).
  const auto extent =
      trace::analyze_extent_streamed(bench::paper_trace_shards());

  const std::vector<std::pair<std::string, const stats::EmpiricalCdf*>>
      series{{"IP addresses", &extent.ip_transitions_per_day},
             {"IP prefixes", &extent.prefix_transitions_per_day},
             {"ASes", &extent.as_transitions_per_day}};
  std::cout << stats::multi_cdf_table(series, "transitions/day") << "\n";

  std::cout << "Measured: median "
            << stats::fmt(extent.ip_transitions_per_day.quantile(0.5), 2)
            << " IP and "
            << stats::fmt(extent.as_transitions_per_day.quantile(0.5), 2)
            << " AS transitions/day; "
            << stats::pct(
                   extent.ip_transitions_per_day.fraction_above(10.0), 1)
            << " of users exceed 10 IP transitions/day; AS transition "
               "range ["
            << stats::fmt(extent.as_transitions_per_day.min(), 2) << ", "
            << stats::fmt(extent.as_transitions_per_day.max(), 1) << "].\n";
  return 0;
}
