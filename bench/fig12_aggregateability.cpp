// Reproduces Figure 12 (§7.3): FIB aggregateability of popular content —
// the ratio of the complete name table to its LPM-compressed size — at
// each vantage router, and the contrast with unpopular content.

#include <iostream>

#include "common.hpp"
#include "lina/names/interner.hpp"
#include "lina/obs/metrics.hpp"

using namespace lina;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "fig12_aggregateability");
  bench::print_figure_header(
      "Figure 12 — FIB aggregateability of popular content",
      "aggregateability between 2x and 16x across routers; unpopular "
      "domains have hardly any subdomains, so the long tail stores one "
      "entry per name.");

  const auto& catalog = bench::paper_content_catalog();
  const auto popular = core::evaluate_aggregateability(
      bench::paper_internet().vantages(), catalog.popular);
  const auto unpopular = core::evaluate_aggregateability(
      bench::paper_internet().vantages(), catalog.unpopular);

  std::vector<std::pair<std::string, double>> rows;
  for (const auto& r : popular) rows.emplace_back(r.router, r.ratio());
  std::cout << stats::bar_chart(rows, "x") << "\n";

  stats::Table table;
  table.header({"router", "complete", "LPM", "ratio (popular)",
                "ratio (unpopular)"});
  for (std::size_t i = 0; i < popular.size(); ++i) {
    const double cells[] = {static_cast<double>(popular[i].complete_entries),
                            static_cast<double>(popular[i].lpm_entries),
                            popular[i].ratio(), unpopular[i].ratio()};
    table.append_row(popular[i].router, cells, 2);
  }
  std::cout << table.str() << "\n";

  double lo = 1e9, hi = 0.0;
  for (const auto& r : popular) {
    lo = std::min(lo, r.ratio());
    hi = std::max(hi, r.ratio());
  }
  harness.result("aggregateability_min", lo);
  harness.result("aggregateability_max", hi);

  // Storage-footprint headline: deterministic live-table bytes summed over
  // vantages, plus the shared component-interner vocabulary. The byte
  // figures derive from live node counts (not allocator capacities), so
  // they are stable across runs and machines.
  double popular_bytes = 0.0;
  for (const auto& r : popular) {
    popular_bytes += static_cast<double>(r.table_bytes);
  }
  harness.result("popular_name_table_bytes_total", popular_bytes);
  const auto& interner = names::ComponentInterner::global();
  harness.result("interner_components",
                 static_cast<double>(interner.size()));
  obs::metric::name_interner_entries().set(
      static_cast<double>(interner.size()));
  obs::metric::name_interner_bytes().set(
      static_cast<double>(interner.bytes()));
  std::cout << "Measured popular aggregateability range: "
            << stats::fmt(lo, 1) << "x - " << stats::fmt(hi, 1)
            << "x (paper: 2x - 16x); unpopular stays near 1x as the tail "
               "has no hierarchy to compress.\n";
  return 0;
}
