// Reproduces Figure 12 (§7.3): FIB aggregateability of popular content —
// the ratio of the complete name table to its LPM-compressed size — at
// each vantage router, and the contrast with unpopular content.

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <iostream>

#include "common.hpp"
#include "lina/names/interner.hpp"
#include "lina/obs/metrics.hpp"
#include "lina/snap/store.hpp"

using namespace lina;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "fig12_aggregateability");
  bench::print_figure_header(
      "Figure 12 — FIB aggregateability of popular content",
      "aggregateability between 2x and 16x across routers; unpopular "
      "domains have hardly any subdomains, so the long tail stores one "
      "entry per name.");

  const auto& catalog = bench::paper_content_catalog();
  const auto popular = core::evaluate_aggregateability(
      bench::paper_internet().vantages(), catalog.popular);
  const auto unpopular = core::evaluate_aggregateability(
      bench::paper_internet().vantages(), catalog.unpopular);

  std::vector<std::pair<std::string, double>> rows;
  for (const auto& r : popular) rows.emplace_back(r.router, r.ratio());
  std::cout << stats::bar_chart(rows, "x") << "\n";

  stats::Table table;
  table.header({"router", "complete", "LPM", "ratio (popular)",
                "ratio (unpopular)"});
  for (std::size_t i = 0; i < popular.size(); ++i) {
    const double cells[] = {static_cast<double>(popular[i].complete_entries),
                            static_cast<double>(popular[i].lpm_entries),
                            popular[i].ratio(), unpopular[i].ratio()};
    table.append_row(popular[i].router, cells, 2);
  }
  std::cout << table.str() << "\n";

  double lo = 1e9, hi = 0.0;
  for (const auto& r : popular) {
    lo = std::min(lo, r.ratio());
    hi = std::max(hi, r.ratio());
  }
  harness.result("aggregateability_min", lo);
  harness.result("aggregateability_max", hi);

  // Storage-footprint headline: deterministic live-table bytes summed over
  // vantages, plus the shared component-interner vocabulary. The byte
  // figures derive from live node counts (not allocator capacities), so
  // they are stable across runs and machines.
  double popular_bytes = 0.0;
  for (const auto& r : popular) {
    popular_bytes += static_cast<double>(r.table_bytes);
  }
  harness.result("popular_name_table_bytes_total", popular_bytes);
  const auto& interner = names::ComponentInterner::global();
  harness.result("interner_components",
                 static_cast<double>(interner.size()));
  obs::metric::name_interner_entries().set(
      static_cast<double>(interner.size()));
  obs::metric::name_interner_bytes().set(
      static_cast<double>(interner.bytes()));
  std::cout << "Measured popular aggregateability range: "
            << stats::fmt(lo, 1) << "x - " << stats::fmt(hi, 1)
            << "x (paper: 2x - 16x); unpopular stays near 1x as the tail "
               "has no hierarchy to compress.\n";

  // Durable-snapshot footprint of the popular-name table (lina::snap):
  // persist the first vantage's name FIB — names resolved to ports over
  // the catalog's final address sets — and reload it. Snapshot bytes are
  // deterministic (spelling-sorted component ids), so bytes/entry is a
  // gated headline; the load time is a reported timing.
  harness.phase("snapshot");
  {
    namespace fs = std::filesystem;
    const auto& vantage = bench::paper_internet().vantages().front();
    routing::NameFib name_fib;
    for (const auto& trace : catalog.popular) {
      const auto addrs = trace.final_addresses();
      if (addrs.empty()) continue;
      const auto port = vantage.port_for(addrs.front());
      if (port.has_value()) name_fib.announce(trace.name(), *port);
    }
    const fs::path dir =
        fs::temp_directory_path() /
        ("lina-snap-bench-fig12-" + std::to_string(::getpid()));
    fs::remove_all(dir);
    std::uint64_t snapshot_bytes = 0;
    {
      snap::SnapshotStore store(dir);
      snapshot_bytes = store.save_name_fib("popular", name_fib.freeze()).bytes;
    }
    const auto start = std::chrono::steady_clock::now();
    std::size_t loaded_entries = 0;
    {
      const snap::SnapshotStore store(dir);
      loaded_entries = store.load_name_fib("popular").size();
    }
    const double load_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (loaded_entries != name_fib.size()) {
      std::cerr << "name snapshot reload lost entries: " << loaded_entries
                << " != " << name_fib.size() << "\n";
      return 1;
    }
    harness.result("snapshot_name_entries",
                   static_cast<double>(name_fib.size()));
    harness.result("snapshot_bytes_per_entry",
                   static_cast<double>(snapshot_bytes) /
                       static_cast<double>(name_fib.size()));
    harness.result("snapshot_load_ms", load_ms);
    std::cout << "snapshot: popular name FIB at " << vantage.name() << ", "
              << name_fib.size() << " entries, " << snapshot_bytes
              << " bytes ("
              << stats::fmt(static_cast<double>(snapshot_bytes) /
                                static_cast<double>(name_fib.size()),
                            2)
              << " B/entry), reloaded in " << stats::fmt(load_ms, 2)
              << " ms\n";
    std::error_code ignored;
    fs::remove_all(dir, ignored);
  }
  return 0;
}
