// Reproduces Figure 12 (§7.3): FIB aggregateability of popular content —
// the ratio of the complete name table to its LPM-compressed size — at
// each vantage router, and the contrast with unpopular content.

#include <iostream>

#include "common.hpp"

using namespace lina;

int main() {
  bench::print_figure_header(
      "Figure 12 — FIB aggregateability of popular content",
      "aggregateability between 2x and 16x across routers; unpopular "
      "domains have hardly any subdomains, so the long tail stores one "
      "entry per name.");

  const auto& catalog = bench::paper_content_catalog();
  const auto popular = core::evaluate_aggregateability(
      bench::paper_internet().vantages(), catalog.popular);
  const auto unpopular = core::evaluate_aggregateability(
      bench::paper_internet().vantages(), catalog.unpopular);

  std::vector<std::pair<std::string, double>> rows;
  for (const auto& r : popular) rows.emplace_back(r.router, r.ratio());
  std::cout << stats::bar_chart(rows, "x") << "\n";

  std::vector<std::vector<std::string>> table;
  table.push_back({"router", "complete", "LPM", "ratio (popular)",
                   "ratio (unpopular)"});
  for (std::size_t i = 0; i < popular.size(); ++i) {
    table.push_back({popular[i].router,
                     std::to_string(popular[i].complete_entries),
                     std::to_string(popular[i].lpm_entries),
                     stats::fmt(popular[i].ratio(), 2),
                     stats::fmt(unpopular[i].ratio(), 2)});
  }
  std::cout << stats::text_table(table) << "\n";

  double lo = 1e9, hi = 0.0;
  for (const auto& r : popular) {
    lo = std::min(lo, r.ratio());
    hi = std::max(hi, r.ratio());
  }
  std::cout << "Measured popular aggregateability range: "
            << stats::fmt(lo, 1) << "x - " << stats::fmt(hi, 1)
            << "x (paper: 2x - 16x); unpopular stays near 1x as the tail "
               "has no hierarchy to compress.\n";
  return 0;
}
