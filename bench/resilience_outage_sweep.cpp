// Extension experiment (not a paper figure): resilience of the four
// location-independence architectures when their control plane breaks.
// A FailurePlan injects the failure that targets each architecture's
// weak point — the home agent for indirection, the resolver for (single
// and replicated) resolution, a transit AS for name-based routing — and
// the sweep varies outage duration and failure kind. Deterministic under
// the fixed seed below.

#include <cstddef>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "lina/exec/parallel.hpp"
#include "lina/sim/failure_plan.hpp"
#include "lina/sim/resolver_pool.hpp"
#include "lina/sim/session.hpp"

using namespace lina;
using topology::AsId;

namespace {

constexpr std::uint64_t kSeed = 42;
constexpr double kOutageStartMs = 2000.0;

struct Scenario {
  sim::SimArchitecture arch;
  std::string label;
};

/// The middle AS of the policy route correspondent -> device, i.e. a
/// transit AS whose outage forces the data plane to reroute.
AsId mid_route_transit(const sim::ForwardingFabric& fabric, AsId from,
                       AsId to) {
  std::vector<AsId> route{from};
  AsId current = from;
  while (current != to) {
    current = *fabric.next_hop(current, to);
    route.push_back(current);
  }
  return route[route.size() / 2];
}

sim::SessionConfig base_config(const routing::SyntheticInternet& internet,
                               const std::vector<AsId>& replicas) {
  sim::SessionConfig config;
  config.correspondent = internet.edge_ases()[0];
  config.schedule = {{0.0, internet.edge_ases()[25]},
                     {3000.0, internet.edge_ases()[26]}};
  config.packet_interval_ms = 50.0;
  config.duration_ms = 10000.0;
  config.resolver_ttl_ms = 300.0;
  config.home_as = internet.edge_ases()[100];
  config.resolver_as = replicas.front();
  config.resolver_replicas = replicas;
  return config;
}

/// The fault aimed at this architecture's control plane (or, for
/// name-based routing which has no control-plane server, at a transit AS
/// of its data path).
sim::FailurePlan targeted_plan(sim::SimArchitecture arch,
                               const sim::SessionConfig& config,
                               const sim::ForwardingFabric& fabric,
                               const sim::ResolverPool& pool,
                               double duration_ms) {
  sim::FailurePlan plan(kSeed);
  const double end = kOutageStartMs + duration_ms;
  switch (arch) {
    case sim::SimArchitecture::kIndirection:
      plan.home_agent_crash(*config.home_as, kOutageStartMs, end);
      break;
    case sim::SimArchitecture::kNameResolution:
      plan.resolver_crash(*config.resolver_as, kOutageStartMs, end);
      break;
    case sim::SimArchitecture::kReplicatedResolution:
      plan.resolver_crash(pool.nearest_replica(config.correspondent),
                          kOutageStartMs, end);
      break;
    case sim::SimArchitecture::kNameBased:
      plan.as_outage(mid_route_transit(fabric, config.correspondent,
                                       config.schedule.front().as),
                     kOutageStartMs, end);
      break;
  }
  return plan;
}

std::string fmt_recovery(const stats::EmpiricalCdf& recovery) {
  return recovery.empty() ? "-" : stats::fmt(recovery.quantile(0.5), 0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "resilience_outage_sweep");
  bench::print_figure_header(
      "Resilience sweep — architectures under control-plane failure "
      "(extension)",
      "(not a paper figure) indirection should lose packets for the whole "
      "home-agent outage, single resolution should serve stale bindings "
      "until repair, replicated resolution should fail over within one "
      "retry backoff, and name-based routing should degrade only by "
      "stretch while the data plane reroutes.");

  harness.seed(kSeed);
  const auto& internet = bench::paper_internet();
  const sim::ForwardingFabric fabric(internet);
  const auto replicas = sim::ResolverPool::metro_placement(internet, 8);
  const sim::ResolverPool pool(fabric, replicas);

  const std::vector<Scenario> scenarios{
      {sim::SimArchitecture::kIndirection, "indirection (home agent)"},
      {sim::SimArchitecture::kNameResolution, "name resolution (1 resolver)"},
      {sim::SimArchitecture::kReplicatedResolution,
       "replicated resolution (8)"},
      {sim::SimArchitecture::kNameBased, "name-based routing"},
  };

  // ---- Canonical scenario: 4 s targeted outage spanning a move. ----
  // Each cell of this bench (scenario, or scenario x sweep point) builds
  // its own config/plan/session, so cells fan out across the lina::exec
  // pool and come back in grid order — output identical to the serial
  // loops at any --threads value.
  std::cout << stats::heading("Targeted 4 s outage across a move");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"architecture", "delivery", "loss in window",
                  "median recovery (ms)", "retries", "ctrl msgs"});
  std::vector<sim::SessionStats> canonical =
      exec::parallel_map(scenarios.size(), [&](std::size_t s) {
        auto config = base_config(internet, replicas);
        const auto plan =
            targeted_plan(scenarios[s].arch, config, fabric, pool, 4000.0);
        config.failures = &plan;
        return sim::simulate_session(fabric, scenarios[s].arch, config);
      });
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const sim::SessionStats& result = canonical[s];
    harness.result(
        std::string("delivery.") +
            std::string(sim::sim_architecture_name(scenarios[s].arch)),
        result.delivery_ratio());
    rows.push_back({scenarios[s].label,
                    stats::pct(result.delivery_ratio(), 1),
                    stats::pct(result.failure_loss_fraction(), 1),
                    fmt_recovery(result.recovery_ms),
                    std::to_string(result.control_retries),
                    std::to_string(result.control_messages)});
  }
  std::cout << stats::text_table(rows) << "\n";

  std::vector<std::pair<std::string, const stats::EmpiricalCdf*>> series;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (!canonical[i].stretch_degraded.empty())
      series.emplace_back(scenarios[i].label, &canonical[i].stretch_degraded);
  }
  std::cout << "Stretch of packets delivered while the fault was active\n"
            << stats::multi_cdf_table(series, "stretch") << "\n";

  // ---- Sweep: outage duration x failure kind. ----
  harness.phase("duration_sweep");
  std::cout << stats::heading("Outage-duration sweep (delivery ratio)");
  const std::vector<double> durations{500.0, 1000.0, 2000.0, 4000.0};
  rows.clear();
  {
    std::vector<std::string> header{"architecture \\ outage"};
    for (const double d : durations)
      header.push_back(stats::fmt(d, 0) + " ms");
    rows.push_back(std::move(header));
  }
  {
    // Flattened scenario x duration grid, one session per cell.
    const std::vector<std::string> cells = exec::parallel_map(
        scenarios.size() * durations.size(), [&](std::size_t i) {
          const Scenario& scenario = scenarios[i / durations.size()];
          const double d = durations[i % durations.size()];
          auto config = base_config(internet, replicas);
          const auto plan =
              targeted_plan(scenario.arch, config, fabric, pool, d);
          config.failures = &plan;
          const auto result =
              sim::simulate_session(fabric, scenario.arch, config);
          return stats::pct(result.delivery_ratio(), 1);
        });
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      std::vector<std::string> row{scenarios[s].label};
      for (std::size_t d = 0; d < durations.size(); ++d) {
        row.push_back(cells[s * durations.size() + d]);
      }
      rows.push_back(std::move(row));
    }
  }
  std::cout << stats::text_table(rows) << "\n";

  // ---- Sweep: failure kinds at a fixed 2 s window. ----
  harness.phase("kind_sweep");
  std::cout << stats::heading("Failure-kind sweep (2 s window, delivery)");
  struct Kind {
    std::string label;
    // Builds the plan for this kind; nullopt label cells mean "does not
    // apply to this architecture" (e.g. a home-agent crash only matters
    // to indirection).
    std::optional<sim::FailurePlan> (*build)(const sim::SessionConfig&,
                                             const sim::ForwardingFabric&,
                                             const sim::ResolverPool&);
  };
  const std::vector<Kind> kinds{
      {"targeted crash",
       [](const sim::SessionConfig&, const sim::ForwardingFabric&,
          const sim::ResolverPool&) {
         return std::optional<sim::FailurePlan>();  // filled per-arch below
       }},
      {"transit AS outage",
       [](const sim::SessionConfig& config, const sim::ForwardingFabric& f,
          const sim::ResolverPool&) {
         sim::FailurePlan plan(kSeed);
         plan.as_outage(mid_route_transit(f, config.correspondent,
                                          config.schedule.front().as),
                        kOutageStartMs, kOutageStartMs + 2000.0);
         return std::optional<sim::FailurePlan>(std::move(plan));
       }},
      {"first-hop link cut",
       [](const sim::SessionConfig& config, const sim::ForwardingFabric& f,
          const sim::ResolverPool&) {
         sim::FailurePlan plan(kSeed);
         const AsId hop = *f.next_hop(config.correspondent,
                                      config.schedule.front().as);
         plan.link_cut(config.correspondent, hop, kOutageStartMs,
                       kOutageStartMs + 2000.0);
         return std::optional<sim::FailurePlan>(std::move(plan));
       }},
      {"50% update loss",
       [](const sim::SessionConfig&, const sim::ForwardingFabric&,
          const sim::ResolverPool&) {
         sim::FailurePlan plan(kSeed);
         plan.update_loss(0.5, kOutageStartMs, kOutageStartMs + 2000.0);
         return std::optional<sim::FailurePlan>(std::move(plan));
       }},
  };
  rows.clear();
  {
    std::vector<std::string> header{"architecture \\ failure"};
    for (const Kind& kind : kinds) header.push_back(kind.label);
    rows.push_back(std::move(header));
  }
  {
    // Flattened scenario x failure-kind grid.
    const std::vector<std::string> cells = exec::parallel_map(
        scenarios.size() * kinds.size(), [&](std::size_t i) {
          const Scenario& scenario = scenarios[i / kinds.size()];
          const Kind& kind = kinds[i % kinds.size()];
          auto config = base_config(internet, replicas);
          auto plan = kind.build(config, fabric, pool);
          if (!plan.has_value())
            plan = targeted_plan(scenario.arch, config, fabric, pool, 2000.0);
          config.failures = &*plan;
          const auto result =
              sim::simulate_session(fabric, scenario.arch, config);
          return stats::pct(result.delivery_ratio(), 1);
        });
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      std::vector<std::string> row{scenarios[s].label};
      for (std::size_t k = 0; k < kinds.size(); ++k) {
        row.push_back(cells[s * kinds.size() + k]);
      }
      rows.push_back(std::move(row));
    }
  }
  std::cout << stats::text_table(rows) << "\n";

  std::cout
      << "Reading: the single points of failure show up as architecture-"
         "shaped holes — indirection's delivery falls roughly linearly "
         "with home-agent downtime because every packet triangles through "
         "the dead agent, single resolution keeps streaming to the stale "
         "attachment until the resolver returns, the replicated pool "
         "masks the same crash within one retry backoff by failing over "
         "to the next-nearest replica, and name-based routing rides out "
         "a transit outage on reconverged (longer) valley-free routes, "
         "paying stretch instead of loss.\n";
  return 0;
}
