// Reproduces Figure 11(c) (§7.2): fraction of unpopular-content mobility
// events inducing a router update — the long tail barely moves routers.

#include <algorithm>
#include <iostream>

#include "common.hpp"

using namespace lina;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "fig11c_unpopular_update_cost");
  bench::print_figure_header(
      "Figure 11(c) — unpopular content mobility inducing router updates",
      "at most 1% of events even with controlled flooding; with best-port "
      "forwarding almost no router updates (median 0.08%); only 1.6% of "
      "unpopular domains are CDN-delegated vs 24.5% of popular ones.");

  const core::ContentUpdateCostEvaluator evaluator(
      bench::paper_internet().vantages());
  const auto& catalog = bench::paper_content_catalog();

  const auto flooding = evaluator.evaluate(
      catalog.unpopular, strategy::StrategyKind::kControlledFlooding);
  const auto best =
      evaluator.evaluate(catalog.unpopular, strategy::StrategyKind::kBestPort);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"router", "controlled flooding", "best-port"});
  std::vector<double> best_rates;
  double flood_max = 0.0;
  for (std::size_t i = 0; i < flooding.size(); ++i) {
    rows.push_back({flooding[i].router, stats::pct(flooding[i].rate(), 3),
                    stats::pct(best[i].rate(), 3)});
    flood_max = std::max(flood_max, flooding[i].rate());
    best_rates.push_back(best[i].rate());
  }
  std::cout << stats::text_table(rows) << "\n";
  std::sort(best_rates.begin(), best_rates.end());
  std::cout << "Measured: flooding max " << stats::pct(flood_max, 2)
            << " (paper <= 1%); best-port median "
            << stats::pct(best_rates[best_rates.size() / 2], 3)
            << " (paper 0.08%) over " << flooding.front().events
            << " events.\n";

  // CDN delegation split (§7.2's explanation).
  double cdn = 0.0, total = 0.0;
  for (const auto& trace : catalog.unpopular) {
    if (trace.name().depth() != 2) continue;
    ++total;
    if (trace.cdn_backed()) ++cdn;
  }
  std::cout << "CDN-delegated unpopular domains: " << stats::pct(cdn / total, 1)
            << " (paper: 1.6%; popular: 24.5%).\n";
  return 0;
}
