// §2.1 context experiment: the compact-routing point in the stretch /
// table-size / update-cost design space, beside the paper's Table 1
// extremes. "For example, with N flat identifiers, to be within 3x stretch
// of shortest-path, each router needs Ω(N) forwarding entries; for up to
// 5x stretch, it is Ω(√N)."

#include <cmath>
#include <iostream>

#include "common.hpp"
#include "lina/analytic/compact_routing.hpp"

using namespace lina;

namespace {

void run_topology(const std::string& name, const topology::Graph& graph) {
  std::cout << stats::heading(name + " (n = " +
                              std::to_string(graph.node_count()) + ")");
  const std::size_t n = graph.node_count();
  stats::Rng rng(2014, "compact-" + name);

  // The two Table-1 extremes on this graph.
  const analytic::TradeoffAnalyzer analyzer(graph);
  const auto exact = analyzer.exact();

  // The compact middle point.
  const analytic::CompactRoutingScheme scheme(graph);
  const auto compact = scheme.evaluate(2000, rng);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"design", "table entries/router", "stretch",
                  "routers updated/event"});
  rows.push_back({"indirection (home agent)", "O(prefixes)",
                  stats::fmt(exact.indirection_stretch, 2) + " extra hops",
                  "1 (" + stats::fmt(1.0 / static_cast<double>(n), 4) +
                      " of routers)"});
  rows.push_back(
      {"name-based (shortest path)", std::to_string(n) + " (one per name)",
       "0",
       stats::fmt(exact.name_based_update_cost *
                      static_cast<double>(n),
                  1) +
           " (" + stats::fmt(exact.name_based_update_cost, 3) +
           " of routers)"});
  rows.push_back(
      {"compact (stretch-3 landmarks)",
       stats::fmt(compact.avg_table_size, 1) + " avg / " +
           std::to_string(compact.max_table_size) + " max",
       stats::fmt(compact.avg_stretch, 2) + "x avg, " +
           stats::fmt(compact.max_stretch, 2) + "x max",
       stats::fmt(compact.avg_update_fraction * static_cast<double>(n), 1) +
           " (" + stats::fmt(compact.avg_update_fraction, 3) +
           " of routers)"});
  std::cout << stats::text_table(rows);
  std::cout << "  landmarks: " << scheme.landmarks().size() << " (~sqrt(n ln n) = "
            << stats::fmt(std::sqrt(static_cast<double>(n) *
                                    std::log(static_cast<double>(n))),
                          1)
            << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "compact_routing_tradeoff");
  bench::print_figure_header(
      "Compact routing — the §2.1 stretch/state/update middle ground",
      "(context for Table 1) compact routing bounds stretch by 3x with "
      "~sqrt(n log n) entries and sub-linear update cost — between the "
      "home agent's (stretch, 1 update) and pure name-based routing's "
      "(0 stretch, Θ(n) updates).");

  stats::Rng rng(7, "compact-graphs");
  run_topology("grid 16x16", topology::make_grid(16, 16));
  run_topology("Barabasi-Albert m=2",
               topology::make_barabasi_albert(256, 2, rng));
  run_topology("Erdos-Renyi p=0.03",
               topology::make_erdos_renyi(256, 0.03, rng));
  return 0;
}
