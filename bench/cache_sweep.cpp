// Extension experiment (not a paper figure): loc/ID mapping caches on the
// resolution hot path. Three phases:
//
//   model_validation  drives a MappingCache directly with a Poisson/IRM
//                     Zipf request stream plus per-mapping Poisson churn
//                     and compares the measured TTL+LRU hit rate against
//                     the Coras-style characteristic-time prediction
//                     (lina::analytic::lru_cache_model), with LFU and 2Q
//                     measured alongside on the identical stream.
//   session_cache     runs the indirection / resolution / replicated-
//                     resolution packet simulations with the correspondent
//                     mapping cache off vs on and reports the delivery,
//                     stretch and control-message (update-cost) deltas.
//   content_cache     sweeps the consumer FIB-miss cache capacity in the
//                     content-retrieval simulation.
//
// Bench-specific flags (recorded in the JSON config block, never in
// results): --cache-entries <n> and --cache-policy {lru,lfu,2q,off}
// configure the session/content cache arms; an unknown policy fails fast
// with exit code 2 before any phase runs. Deterministic under the fixed
// seed at any --threads value.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <queue>
#include <string>
#include <vector>

#include "common.hpp"
#include "lina/analytic/cache_model.hpp"
#include "lina/cache/mapping_cache.hpp"
#include "lina/exec/parallel.hpp"
#include "lina/sim/content_session.hpp"
#include "lina/sim/resolver_pool.hpp"
#include "lina/sim/session.hpp"
#include "lina/stats/distributions.hpp"

using namespace lina;
using topology::AsId;

namespace {

constexpr std::uint64_t kSeed = 77;

// ---- Phase 1: synthetic IRM stream against the analytic model. ----

struct StreamInput {
  cache::Policy policy = cache::Policy::kTtlLru;
  std::size_t capacity = 0;
  double ttl_ms = std::numeric_limits<double>::infinity();
  std::size_t catalog = 4096;
  double zipf_exponent = 1.0;
  double request_rate_per_ms = 1.0;
  double churn_rate_per_ms = 2e-5;  // per mapping
  std::size_t requests = 200000;
};

/// One Poisson/IRM cell: every mapping churns (is invalidated) at its own
/// Poisson rate whether cached or not, exactly the process the analytic
/// model assumes. Returns the measured cache counters.
cache::CacheStats run_stream(const StreamInput& input, stats::Rng rng) {
  cache::CacheConfig config;
  config.policy = input.policy;
  config.capacity = input.capacity;
  config.ttl_ms = input.ttl_ms;
  cache::MappingCache<std::uint64_t, std::uint32_t> mapping(config);
  const stats::Zipf zipf(input.catalog, input.zipf_exponent);

  using Event = std::pair<double, std::uint64_t>;  // (time, key)
  std::priority_queue<Event, std::vector<Event>, std::greater<>> churn;
  if (input.churn_rate_per_ms > 0.0) {
    for (std::uint64_t key = 1; key <= input.catalog; ++key) {
      churn.emplace(rng.exponential(input.churn_rate_per_ms), key);
    }
  }

  double now = 0.0;
  for (std::size_t n = 0; n < input.requests; ++n) {
    now += rng.exponential(input.request_rate_per_ms);
    while (!churn.empty() && churn.top().first <= now) {
      const auto [at, key] = churn.top();
      churn.pop();
      mapping.invalidate(key);
      churn.emplace(at + rng.exponential(input.churn_rate_per_ms), key);
    }
    const auto key = static_cast<std::uint64_t>(zipf.sample(rng));
    if (!mapping.probe(key, now).has_value()) {
      mapping.insert(key, 0, now);
    }
  }
  return mapping.stats();
}

analytic::CacheModelResult model_for(const StreamInput& input) {
  analytic::CacheModelInput model;
  model.catalog = input.catalog;
  model.zipf_exponent = input.zipf_exponent;
  model.capacity = input.capacity;
  model.ttl_ms = input.ttl_ms;
  model.request_rate_per_ms = input.request_rate_per_ms;
  model.churn_rate_per_ms = input.churn_rate_per_ms;
  return analytic::lru_cache_model(model);
}

// ---- Phases 2/3: simulated sessions, cache off vs on. ----

sim::SessionConfig session_config(const routing::SyntheticInternet& internet,
                                  const std::vector<AsId>& replicas) {
  sim::SessionConfig config;
  config.correspondent = internet.edge_ases()[0];
  // A move every 2 s: enough churn that staleness and the notification
  // stream both matter.
  config.schedule = {{0.0, internet.edge_ases()[25]},
                     {2000.0, internet.edge_ases()[26]},
                     {4000.0, internet.edge_ases()[27]},
                     {6000.0, internet.edge_ases()[28]},
                     {8000.0, internet.edge_ases()[29]}};
  config.packet_interval_ms = 20.0;
  config.duration_ms = 12000.0;
  config.resolver_ttl_ms = 300.0;
  config.home_as = internet.edge_ases()[100];
  config.resolver_as = replicas.front();
  config.resolver_replicas = replicas;
  return config;
}

std::string fmt_quantile(const stats::EmpiricalCdf& cdf, double q) {
  return cdf.empty() ? "-" : stats::fmt(cdf.quantile(q), 3);
}

}  // namespace

int main(int argc, char** argv) {
  std::string entries_flag = "8";
  std::string policy_flag = "lru";
  bench::Harness harness(
      argc, argv, "cache_sweep",
      {{"--cache-entries", &entries_flag, nullptr},
       {"--cache-policy", &policy_flag, nullptr}});

  // Fail fast on a bad cache configuration, before any measured phase —
  // the same contract as the harness's output-path probes (exit code 2).
  const auto policy = cache::parse_policy(policy_flag);
  if (!policy.has_value()) {
    std::cerr << "cache_sweep: unknown --cache-policy '" << policy_flag
              << "' (known: " << cache::known_policies() << ")\n";
    std::exit(2);  // like the harness's output probes: no record written
  }
  std::size_t entries = 0;
  try {
    entries = std::stoul(entries_flag);
  } catch (const std::exception&) {
    std::cerr << "cache_sweep: bad --cache-entries value '" << entries_flag
              << "' (want a non-negative integer)\n";
    std::exit(2);
  }
  cache::CacheConfig session_cache;
  session_cache.policy = *policy;
  session_cache.capacity = entries;
  session_cache.ttl_ms = 2000.0;
  const bool cache_on = session_cache.enabled();

  bench::print_figure_header(
      "Mapping-cache sweep — hit rate vs the analytic model (extension)",
      "(not a paper figure) the Che/Coras characteristic-time model should "
      "predict the TTL+LRU hit rate within a few percent absolute across "
      "the capacity grid; LFU should edge out LRU on the static Zipf "
      "stream; caching should cut resolution stretch and shift control "
      "cost from periodic re-resolution to churn notifications.");
  harness.seed(kSeed);

  // ---- Phase 1: model validation on the synthetic IRM stream. ----
  std::cout << stats::heading("Hit rate vs analytic prediction (IRM)");
  const std::vector<std::size_t> capacities{64, 256, 1024};
  const std::vector<std::pair<cache::Policy, std::string>> policies{
      {cache::Policy::kTtlLru, "lru"},
      {cache::Policy::kLfu, "lfu"},
      {cache::Policy::kTwoQ, "2q"},
  };
  const stats::Rng stream_rng(kSeed, "cache-sweep-irm");
  // Flattened capacity x policy grid; each cell replays an identical
  // Poisson/IRM stream (same split index per cell at any --threads).
  const std::vector<cache::CacheStats> grid = exec::parallel_map(
      capacities.size() * policies.size(), [&](std::size_t i) {
        StreamInput input;
        input.capacity = capacities[i / policies.size()];
        input.policy = policies[i % policies.size()].first;
        return run_stream(input, stream_rng.split(i));
      });
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"capacity", "model (lru)", "lru", "|err|", "lfu", "2q"});
  for (std::size_t c = 0; c < capacities.size(); ++c) {
    StreamInput input;
    input.capacity = capacities[c];
    const auto model = model_for(input);
    std::vector<std::string> row{std::to_string(capacities[c]),
                                 stats::pct(model.hit_rate, 2)};
    double lru_err = 0.0;
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const double hit = grid[c * policies.size() + p].hit_rate();
      harness.result("hit." + policies[p].second + ".c" +
                         std::to_string(capacities[c]),
                     hit);
      if (p == 0) {
        lru_err = std::abs(hit - model.hit_rate);
        row.push_back(stats::pct(hit, 2));
        row.push_back(stats::pct(lru_err, 2));
      } else {
        row.push_back(stats::pct(hit, 2));
      }
    }
    harness.result("model.lru.c" + std::to_string(capacities[c]),
                   model.hit_rate);
    harness.result("model_abs_err.c" + std::to_string(capacities[c]),
                   lru_err);
    rows.push_back(std::move(row));
  }
  std::cout << stats::text_table(rows) << "\n";

  // TTL arm: a finite sliding TTL at fixed capacity; the model's
  // min(T_C, TTL) lifetime should track the measured curve.
  std::cout << stats::heading("Sliding-TTL arm (capacity 256, lru)");
  const std::vector<double> ttls{50.0, 200.0, 1000.0};
  const std::vector<cache::CacheStats> ttl_grid =
      exec::parallel_map(ttls.size(), [&](std::size_t i) {
        StreamInput input;
        input.capacity = 256;
        input.ttl_ms = ttls[i];
        return run_stream(input, stream_rng.split(100 + i));
      });
  rows.clear();
  rows.push_back({"ttl (ms)", "model", "measured", "|err|", "expiries"});
  for (std::size_t i = 0; i < ttls.size(); ++i) {
    StreamInput input;
    input.capacity = 256;
    input.ttl_ms = ttls[i];
    const auto model = model_for(input);
    const double hit = ttl_grid[i].hit_rate();
    const double err = std::abs(hit - model.hit_rate);
    harness.result("hit.lru.ttl" + stats::fmt(ttls[i], 0), hit);
    harness.result("model.lru.ttl" + stats::fmt(ttls[i], 0),
                   model.hit_rate);
    rows.push_back({stats::fmt(ttls[i], 0), stats::pct(model.hit_rate, 2),
                    stats::pct(hit, 2), stats::pct(err, 2),
                    std::to_string(ttl_grid[i].ttl_expiries)});
  }
  std::cout << stats::text_table(rows) << "\n";

  // ---- Phase 2: packet sessions, cache off vs on. ----
  harness.phase("session_cache");
  std::cout << stats::heading(
      "Correspondent mapping cache in the packet simulations (" +
      std::string(cache::policy_name(session_cache.policy)) + ", " +
      std::to_string(entries) + " entries)");
  const auto& internet = bench::paper_internet();
  const sim::ForwardingFabric fabric(internet);
  const auto replicas = sim::ResolverPool::metro_placement(internet, 8);

  const std::vector<std::pair<sim::SimArchitecture, std::string>> archs{
      {sim::SimArchitecture::kIndirection, "indirection"},
      {sim::SimArchitecture::kNameResolution, "resolution"},
      {sim::SimArchitecture::kReplicatedResolution, "replicated"},
  };
  // Flattened architecture x {off, on} grid.
  const std::size_t session_arms = cache_on ? 2 : 1;
  const std::vector<sim::SessionStats> sessions = exec::parallel_map(
      archs.size() * session_arms, [&](std::size_t i) {
        auto config = session_config(internet, replicas);
        if (i % session_arms == 1) config.mapping_cache = session_cache;
        return sim::simulate_session(fabric, archs[i / session_arms].first,
                                     config);
      });
  rows.clear();
  rows.push_back({"architecture", "arm", "delivery", "stretch p50",
                  "ctrl msgs", "cache hits", "invalidations"});
  for (std::size_t a = 0; a < archs.size(); ++a) {
    for (std::size_t arm = 0; arm < session_arms; ++arm) {
      const sim::SessionStats& result = sessions[a * session_arms + arm];
      const std::string mode = arm == 0 ? "off" : "cached";
      const std::string key = archs[a].second + "." + mode;
      harness.result("delivery." + key, result.delivery_ratio());
      harness.result("ctrl." + key,
                     static_cast<double>(result.control_messages));
      harness.result("stretch_p50." + key,
                     result.stretch.empty() ? 0.0
                                            : result.stretch.quantile(0.5));
      if (arm == 1) {
        harness.result("cache_hit." + archs[a].second,
                       result.mapping_cache.hit_rate());
      }
      rows.push_back({archs[a].second, mode,
                      stats::pct(result.delivery_ratio(), 1),
                      fmt_quantile(result.stretch, 0.5),
                      std::to_string(result.control_messages),
                      std::to_string(result.mapping_cache.hits),
                      std::to_string(result.mapping_cache.invalidations)});
    }
  }
  std::cout << stats::text_table(rows) << "\n";

  // ---- Phase 3: consumer FIB-miss cache in content retrieval. ----
  harness.phase("content_cache");
  std::cout << stats::heading("Consumer FIB-miss cache (content retrieval)");
  sim::ContentSessionConfig content;
  content.consumer = internet.edge_ases()[0];
  content.publisher_schedule = {{0.0, internet.edge_ases()[40]},
                                {5000.0, internet.edge_ases()[41]},
                                {10000.0, internet.edge_ases()[42]},
                                {15000.0, internet.edge_ases()[43]}};
  content.catalog_segments = 1000;
  content.request_interval_ms = 10.0;
  content.duration_ms = 20000.0;
  content.cache_capacity = 64;
  content.seed = kSeed;

  std::vector<std::size_t> fib_capacities{0};
  if (cache_on) {
    fib_capacities.insert(fib_capacities.end(), {16, 64, 256});
  }
  const std::vector<sim::ContentSessionStats> retrievals =
      exec::parallel_map(fib_capacities.size(), [&](std::size_t i) {
        auto config = content;
        if (fib_capacities[i] > 0) {
          config.mapping_cache = session_cache;
          config.mapping_cache.capacity = fib_capacities[i];
        }
        return sim::simulate_content_session(fabric, config);
      });
  rows.clear();
  rows.push_back({"fib cache", "reachability", "from store", "guided",
                  "fib hit rate", "p50 delay (ms)"});
  for (std::size_t i = 0; i < fib_capacities.size(); ++i) {
    const sim::ContentSessionStats& result = retrievals[i];
    const std::string label =
        fib_capacities[i] == 0 ? "off"
                               : "c" + std::to_string(fib_capacities[i]);
    harness.result("reach.content." + label, result.reachability());
    harness.result("guided.content." + label,
                   static_cast<double>(result.cache_guided_interests));
    if (fib_capacities[i] > 0) {
      harness.result("fib_hit." + label, result.mapping_cache.hit_rate());
    }
    rows.push_back({label, stats::pct(result.reachability(), 1),
                    stats::pct(result.cache_hit_ratio(), 1),
                    std::to_string(result.cache_guided_interests),
                    fib_capacities[i] == 0
                        ? "-"
                        : stats::pct(result.mapping_cache.hit_rate(), 1),
                    fmt_quantile(result.retrieval_delay_ms, 0.5)});
  }
  std::cout << stats::text_table(rows) << "\n";

  std::cout
      << "Reading: the characteristic-time prediction tracks the measured "
         "TTL+LRU hit rate across the grid; LFU beats LRU on the static "
         "Zipf stream while 2Q lands between them; in the packet "
         "simulations the binding cache converts indirection's triangle "
         "into a direct path after the first miss (stretch toward 1) and "
         "replaces the resolvers' periodic re-resolution clock with "
         "demand misses plus churn notifications; the consumer FIB cache "
         "steers interests without waiting for belief convergence.\n";
  return 0;
}
