// Reproduces Figure 11(b) (§7.2): fraction of popular-content mobility
// events inducing a router update, under controlled flooding and best-port
// forwarding, plus the §7.3 back-of-the-envelope projection.

#include <algorithm>
#include <iostream>

#include "common.hpp"

using namespace lina;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "fig11b_popular_update_cost");
  bench::print_figure_header(
      "Figure 11(b) — popular content mobility inducing router updates",
      "up to 13% of events with controlled flooding; at most 6% with "
      "best-port forwarding — the closest address rarely changes even when "
      "the set churns.");

  const core::ContentUpdateCostEvaluator evaluator(
      bench::paper_internet().vantages());
  const auto& popular = bench::paper_content_catalog().popular;

  const auto flooding = evaluator.evaluate(
      popular, strategy::StrategyKind::kControlledFlooding);
  const auto best =
      evaluator.evaluate(popular, strategy::StrategyKind::kBestPort);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"router", "controlled flooding", "best-port"});
  double flood_max = 0.0, best_max = 0.0;
  for (std::size_t i = 0; i < flooding.size(); ++i) {
    rows.push_back({flooding[i].router, stats::pct(flooding[i].rate(), 2),
                    stats::pct(best[i].rate(), 2)});
    flood_max = std::max(flood_max, flooding[i].rate());
    best_max = std::max(best_max, best[i].rate());
  }
  std::cout << stats::text_table(rows) << "\n";
  std::cout << "Measured: flooding max " << stats::pct(flood_max, 1)
            << " (paper <= 13%); best-port max " << stats::pct(best_max, 1)
            << " (paper <= 6%) over " << flooding.front().events
            << " events.\n";

  // §7.3 back-of-the-envelope.
  std::cout << stats::heading("Back-of-the-envelope (§7.3)");
  stats::EmpiricalCdf events_per_day;
  for (const auto& trace : popular) events_per_day.add(trace.events_per_day());
  std::vector<double> best_rates;
  for (const auto& s : best) best_rates.push_back(s.rate());
  std::sort(best_rates.begin(), best_rates.end());
  const double best_median = best_rates[best_rates.size() / 2];
  const auto load = core::content_scale_estimate(
      1e9, events_per_day.quantile(0.5), best_median);
  std::cout << "1B names x " << stats::fmt(events_per_day.quantile(0.5), 1)
            << " moves/day x " << stats::pct(best_median, 2)
            << " (median router, best-port) -> "
            << stats::fmt(load.updates_per_second(), 0)
            << " updates/sec (paper: at most ~100/sec at 2/day and "
               "0.5%).\n";
  return 0;
}
