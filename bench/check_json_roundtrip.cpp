// Python-free telemetry self-check: drive a small instrumented run,
// export the full BENCH_*.json record plus the CSV and JSONL trace, then
// load the JSON back through the obs parser and verify every metric
// survives the round trip. Exits non-zero (with a message) on the first
// mismatch, so it runs as a plain ctest entry under the `obs` label.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "lina/obs/export.hpp"
#include "lina/obs/json.hpp"
#include "lina/obs/registry.hpp"
#include "lina/obs/timer.hpp"
#include "lina/obs/trace.hpp"

namespace {

int failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    std::cerr << "FAIL: " << what << "\n";
    ++failures;
  }
}

void check_close(double a, double b, const std::string& what) {
  check(std::abs(a - b) <= 1e-9 * std::max({1.0, std::abs(a), std::abs(b)}),
        what + " (" + std::to_string(a) + " vs " + std::to_string(b) + ")");
}

}  // namespace

int main() {
  using namespace lina::obs;

  Registry::instance().reset();
  TraceRing::instance().clear();
  EnabledScope scope;

  // A miniature instrumented "run" touching every metric shape.
  Counter packets = Registry::instance().counter("check.packets");
  Gauge depth = Registry::instance().gauge("check.queue_depth");
  Histogram delay = Registry::instance().histogram("check.delay_ms");
  packets.add(12345);
  depth.set(7.0);
  depth.set(3.0);
  for (int i = 1; i <= 100; ++i) delay.record(0.25 * i);
  { ScopedTimer timer(delay); }
  TraceRing::instance().record("check.event", 1.5, 42.0);

  RunInfo info;
  info.name = "check_json_roundtrip";
  info.seed = 1;
  info.config.emplace_back("mode", "self-check");
  info.phases.emplace_back("main", 0.5);
  info.results.emplace_back("ok", 1.0);

  const Snapshot before = Registry::instance().snapshot();
  const std::string text = export_json(info, before);

  // 1. The emitted record must parse as JSON at all.
  Json doc;
  try {
    doc = Json::parse(text);
  } catch (const std::exception& error) {
    std::cerr << "FAIL: emitted JSON does not parse: " << error.what()
              << "\n";
    return EXIT_FAILURE;
  }

  // 2. Envelope fields.
  check(doc.at("schema_version").as_number() == 1.0, "schema_version == 1");
  check(doc.at("name").as_string() == info.name, "name round trip");
  check(doc.at("seed").as_number() == 1.0, "seed round trip");
  check(doc.at("config").at("mode").as_string() == "self-check",
        "config round trip");
  check(doc.at("results").at("ok").as_number() == 1.0, "results round trip");

  // 3. Every metric survives parse_snapshot.
  Snapshot after;
  try {
    after = parse_snapshot(doc);
  } catch (const std::exception& error) {
    std::cerr << "FAIL: parse_snapshot rejected own export: "
              << error.what() << "\n";
    return EXIT_FAILURE;
  }
  check(after.counters == before.counters, "counters round trip");
  check(after.gauges.size() == before.gauges.size(), "gauge count");
  for (std::size_t i = 0;
       i < std::min(after.gauges.size(), before.gauges.size()); ++i) {
    check_close(after.gauges[i].second.first, before.gauges[i].second.first,
                "gauge value " + before.gauges[i].first);
    check_close(after.gauges[i].second.second,
                before.gauges[i].second.second,
                "gauge max " + before.gauges[i].first);
  }
  check(after.histograms.size() == before.histograms.size(),
        "histogram count");
  for (std::size_t i = 0;
       i < std::min(after.histograms.size(), before.histograms.size());
       ++i) {
    const auto& [name_b, hb] = before.histograms[i];
    const auto& [name_a, ha] = after.histograms[i];
    check(name_a == name_b, "histogram name order");
    check(ha.count == hb.count, name_b + " count");
    check_close(ha.sum, hb.sum, name_b + " sum");
    check_close(ha.min, hb.min, name_b + " min");
    check_close(ha.max, hb.max, name_b + " max");
    check(ha.buckets == hb.buckets, name_b + " buckets");
    check(ha.upper_bounds == hb.upper_bounds, name_b + " bounds");
    for (const double q : {0.5, 0.9, 0.99}) {
      check_close(ha.quantile(q), hb.quantile(q),
                  name_b + " q" + std::to_string(q));
    }
  }

  // 4. The CSV mentions every metric exactly as named.
  const std::string csv = export_csv(before);
  for (const std::string metric :
       {"check.packets", "check.queue_depth", "check.delay_ms"}) {
    check(csv.find(metric) != std::string::npos, "csv carries " + metric);
  }

  // 5. Every trace line is itself a valid JSON object.
  const std::string jsonl =
      export_trace_jsonl(TraceRing::instance().events());
  std::istringstream is(jsonl);
  std::string line;
  std::size_t events = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    try {
      const Json event = Json::parse(line);
      check(event.at("event").is_string(), "trace line has event name");
      check(event.at("t_ms").is_number(), "trace line has timestamp");
      ++events;
    } catch (const std::exception& error) {
      std::cerr << "FAIL: trace line does not parse: " << error.what()
                << "\n";
      ++failures;
    }
  }
  check(events == 1, "one trace event emitted");

  if (failures != 0) {
    std::cerr << failures << " check(s) failed\n";
    return EXIT_FAILURE;
  }
  std::cout << "check_json_roundtrip: all checks passed ("
            << before.counters.size() << " counters, "
            << before.gauges.size() << " gauges, "
            << before.histograms.size() << " histograms)\n";
  return EXIT_SUCCESS;
}
