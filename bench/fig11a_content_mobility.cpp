// Reproduces Figure 11(a) (§7.2): CDF across popular subdomains of the
// number of content mobility events (merged address-set changes) per day.

#include <iostream>

#include "common.hpp"

using namespace lina;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "fig11a_content_mobility");
  bench::print_figure_header(
      "Figure 11(a) — content mobility events per day (popular content)",
      "median 2 changes/day in the resolved address set; maximum bounded "
      "at 24 by the hourly measurement procedure.");

  const auto& catalog = bench::paper_content_catalog();

  stats::EmpiricalCdf popular_events, cdn_events, origin_events;
  for (const auto& trace : catalog.popular) {
    popular_events.add(trace.events_per_day());
    (trace.cdn_backed() ? cdn_events : origin_events)
        .add(trace.events_per_day());
  }

  std::cout << "All " << popular_events.size() << " popular names:\n"
            << stats::cdf_table(popular_events, "events/day", 12) << "\n";

  const std::vector<std::pair<std::string, const stats::EmpiricalCdf*>>
      split{{"CDN-aliased", &cdn_events}, {"origin-served", &origin_events}};
  std::cout << "By delegation:\n"
            << stats::multi_cdf_table(split, "events/day", 9) << "\n";

  std::cout << "Measured: median "
            << stats::fmt(popular_events.quantile(0.5), 2)
            << " events/day, max "
            << stats::fmt(popular_events.max(), 1)
            << " (cap 24 from hourly sampling).\n";
  return 0;
}
