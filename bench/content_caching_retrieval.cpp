// Extension experiment for §8's strategy-layer discussion: NDN-style
// content retrieval with on-path LRU caching under publisher mobility.
// Sweeps cache capacity and update-propagation speed; reports reachability,
// cache hit ratio, publisher offload, and retrieval delay — quantifying
// "on-path content caching ... does not suffice to ensure reachability to
// at least one copy of the requested content".

#include <iostream>

#include "common.hpp"
#include "lina/sim/content_session.hpp"

using namespace lina;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "content_caching_retrieval");
  bench::print_figure_header(
      "Content retrieval with on-path caching (extension, §8)",
      "(not a paper figure) caching absorbs the popular head and offloads "
      "the publisher, but uncached content is unreachable while router "
      "beliefs are stale after publisher mobility.");

  const auto& internet = bench::paper_internet();
  const sim::ForwardingFabric fabric(internet);

  const auto consumer = internet.edge_ases()[0];
  const auto make_config = [&](std::size_t cache, double update_hop_ms,
                               bool mobile) {
    sim::ContentSessionConfig config;
    config.consumer = consumer;
    config.publisher_schedule = {{0.0, internet.edge_ases()[40]}};
    if (mobile) {
      config.publisher_schedule.push_back({4000.0, internet.edge_ases()[90]});
      config.publisher_schedule.push_back({8000.0, internet.edge_ases()[140]});
    }
    config.catalog_segments = 2000;
    config.zipf_exponent = 1.0;
    config.request_interval_ms = 5.0;
    config.duration_ms = 12000.0;
    config.cache_capacity = cache;
    config.update_hop_ms = update_hop_ms;
    return config;
  };

  std::cout << stats::heading("Cache-capacity sweep (stationary publisher)");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"cache entries/router", "hit ratio", "publisher load",
                  "median delay (ms)"});
  for (const std::size_t cache : {0u, 16u, 64u, 256u, 1024u}) {
    const auto stats_out = sim::simulate_content_session(
        fabric, make_config(cache, 5.0, /*mobile=*/false));
    rows.push_back(
        {std::to_string(cache), stats::pct(stats_out.cache_hit_ratio(), 1),
         stats::pct(static_cast<double>(stats_out.satisfied_from_publisher) /
                        static_cast<double>(stats_out.interests_sent),
                    1),
         stats::fmt(stats_out.retrieval_delay_ms.quantile(0.5), 1)});
  }
  std::cout << stats::text_table(rows);

  std::cout << stats::heading(
      "Publisher mobility x update speed (cache 64/router)");
  rows.clear();
  rows.push_back({"update wavefront (ms/hop)", "reachability", "hit ratio",
                  "unsatisfied interests"});
  for (const double hop_ms : {1.0, 20.0, 80.0}) {
    const auto stats_out = sim::simulate_content_session(
        fabric, make_config(64, hop_ms, /*mobile=*/true));
    rows.push_back({stats::fmt(hop_ms, 0),
                    stats::pct(stats_out.reachability(), 2),
                    stats::pct(stats_out.cache_hit_ratio(), 1),
                    std::to_string(stats_out.unsatisfied)});
  }
  std::cout << stats::text_table(rows) << "\n";
  std::cout
      << "Reading: caching cuts publisher load and delay sharply for the "
         "Zipf head, but as update propagation slows, unsatisfied "
         "interests grow — exactly the paper's argument that caching "
         "complements but cannot replace mobility support in the routing "
         "or resolution plane.\n";
  return 0;
}
