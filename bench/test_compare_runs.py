#!/usr/bin/env python3
"""Unit tests for compare_runs.py's gate and its one-line diagnostics:
the schema_version mismatch check alongside the existing missing-file /
unparseable-JSON / non-record paths. Stdlib only; registered in ctest as
`compare_runs_py` (label des)."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "compare_runs.py")


def record(name="scale_million_users", schema=1, results=None, threads=1):
    return {
        "name": name,
        "schema_version": schema,
        "config": {"threads": threads},
        "results": results if results is not None else {"packet_digest": 7},
        "phases": [{"phase": "packet", "wall_ms": 10.0}],
    }


class CompareRunsTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def path(self, name, payload):
        path = os.path.join(self._dir.name, name)
        with open(path, "w", encoding="utf-8") as fh:
            if isinstance(payload, str):
                fh.write(payload)
            else:
                json.dump(payload, fh)
        return path

    def run_compare(self, *argv):
        return subprocess.run(
            [sys.executable, SCRIPT, *argv],
            capture_output=True,
            text=True,
        )

    def test_identical_records_pass(self):
        a = self.path("a.json", record())
        b = self.path("b.json", record(threads=8))
        proc = self.run_compare(a, b)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("headline results identical", proc.stdout)

    def test_headline_drift_fails(self):
        a = self.path("a.json", record(results={"packet_digest": 7}))
        b = self.path("b.json", record(results={"packet_digest": 8}))
        proc = self.run_compare(a, b)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("HEADLINE DRIFT", proc.stdout)

    def test_timing_keys_are_not_gated(self):
        a = self.path(
            "a.json",
            record(results={"packet_digest": 7,
                            "des_conservative_events_per_sec": 1e6}),
        )
        b = self.path(
            "b.json",
            record(results={"packet_digest": 7,
                            "des_conservative_events_per_sec": 2e6}),
        )
        proc = self.run_compare(a, b)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("informational", proc.stdout)

    def test_schema_version_mismatch_is_one_line_diagnostic(self):
        a = self.path("a.json", record(schema=1))
        b = self.path("b.json", record(schema=2))
        proc = self.run_compare(a, b)
        self.assertNotEqual(proc.returncode, 0)
        message = proc.stderr.strip()
        self.assertEqual(len(message.splitlines()), 1, message)
        self.assertIn("schema_version mismatch", message)
        # Both versions and the stale file must be named.
        self.assertIn("1", message)
        self.assertIn("2", message)
        self.assertIn(os.path.basename(a), message)
        # The mismatch must NOT fall through to the key-by-key diff.
        self.assertNotIn("HEADLINE DRIFT", proc.stdout)

    def test_absent_schema_version_on_one_side_mismatches(self):
        stale = record()
        del stale["schema_version"]
        a = self.path("a.json", stale)
        b = self.path("b.json", record(schema=1))
        proc = self.run_compare(a, b)
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("schema_version mismatch", proc.stderr)

    def test_missing_file_diagnostic(self):
        a = self.path("a.json", record())
        missing = os.path.join(self._dir.name, "nope.json")
        proc = self.run_compare(a, missing)
        self.assertNotEqual(proc.returncode, 0)
        self.assertEqual(len(proc.stderr.strip().splitlines()), 1)
        self.assertIn("cannot read run record", proc.stderr)

    def test_unparseable_json_diagnostic(self):
        a = self.path("a.json", record())
        b = self.path("b.json", "{not json")
        proc = self.run_compare(a, b)
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("not valid JSON", proc.stderr)

    def test_non_record_json_diagnostic(self):
        a = self.path("a.json", record())
        b = self.path("b.json", {"name": "x", "results": {}})  # no phases
        proc = self.run_compare(a, b)
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("missing 'phases'", proc.stderr)
        proc = self.run_compare(a, self.path("c.json", [1, 2]))
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("top level is not an object", proc.stderr)

    def test_different_bench_names_refused(self):
        a = self.path("a.json", record(name="bench_a"))
        b = self.path("b.json", record(name="bench_b"))
        proc = self.run_compare(a, b)
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("refusing to compare different benches", proc.stderr)


if __name__ == "__main__":
    unittest.main()
