#!/usr/bin/env python3
"""Compare BENCH_*.json run records.

Usage: compare_runs.py BASELINE.json CANDIDATE.json
       compare_runs.py --summary-md RECORD.json [RECORD.json ...]

Two-file mode: exit status 0 when the candidate's headline `results`
block matches the baseline exactly (the lina::exec determinism contract:
the same bench at any --threads value must produce byte-identical
headline numbers); 1 on any drift, with a per-key report. Per-phase wall
times are expected to differ — they are reported as a speedup table,
never compared. Result keys that are themselves timings or
machine-dependent rates (suffixes `_ms`, `_per_sec`, `_mib` — e.g.
snapshot_load_ms, peak_rss_mib) are likewise reported but never gated.

--summary-md mode: emits a markdown perf-trend table over any number of
run records (committed baselines plus fresh runs) — one overview table
and one per-bench result table with timing keys marked (*) as ungated.
This is the bench trajectory artifact CI appends to the job summary.

Stdlib only, so the check runs anywhere the repo builds.
"""

import json
import sys

# Headline keys with these suffixes measure wall time, throughput, or
# memory — legitimate run-to-run variation, never byte-identical. They
# are shown for information and excluded from the drift gate.
TIMING_SUFFIXES = ("_ms", "_per_sec", "_mib")


def is_timing_key(key):
    return key.endswith(TIMING_SUFFIXES)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            record = json.load(fh)
    except OSError as error:
        sys.exit(f"{path}: cannot read run record: {error.strerror or error}")
    except json.JSONDecodeError as error:
        sys.exit(f"{path}: not valid JSON: {error}")
    if not isinstance(record, dict):
        sys.exit(f"{path}: not a bench run record (top level is not an object)")
    for key in ("name", "results", "phases"):
        if key not in record:
            sys.exit(f"{path}: not a bench run record (missing '{key}')")
    return record


def compare_results(base, cand):
    drift, timing = [], []
    for key in sorted(set(base) | set(cand)):
        if is_timing_key(key):
            timing.append(
                f"  . {key}: {base.get(key, '-')!r} vs {cand.get(key, '-')!r}"
            )
        elif key not in base:
            drift.append(f"  + {key} = {cand[key]!r} (absent in baseline)")
        elif key not in cand:
            drift.append(f"  - {key} = {base[key]!r} (absent in candidate)")
        elif base[key] != cand[key]:
            drift.append(f"  ~ {key}: {base[key]!r} -> {cand[key]!r}")
    return drift, timing


def phase_table(base, cand):
    base_ms = {p["phase"]: p["wall_ms"] for p in base}
    cand_ms = {p["phase"]: p["wall_ms"] for p in cand}
    rows = []
    for phase in base_ms:
        if phase not in cand_ms:
            continue
        b, c = base_ms[phase], cand_ms[phase]
        speedup = b / c if c > 0 else float("inf")
        rows.append((phase, b, c, speedup))
    return rows


def format_value(value):
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def summary_md(paths):
    """Markdown perf-trend tables over any number of run records."""
    if not paths:
        sys.exit("--summary-md: need at least one run record")
    records = [(path, load(path)) for path in paths]

    lines = ["## Bench perf trend", ""]
    lines += [
        "| bench | record | threads | total wall ms | results |",
        "|---|---|---:|---:|---:|",
    ]
    for path, record in records:
        total_ms = sum(p.get("wall_ms", 0.0) for p in record["phases"])
        threads = record.get("config", {}).get("threads", "?")
        lines.append(
            f"| {record['name']} | `{path}` | {threads} "
            f"| {total_ms:.1f} | {len(record['results'])} |"
        )
    lines.append("")

    by_bench = {}
    for path, record in records:
        by_bench.setdefault(record["name"], []).append((path, record))
    for bench in sorted(by_bench):
        runs = by_bench[bench]
        keys = sorted({k for _, r in runs for k in r["results"]})
        if not keys:
            continue
        lines.append(f"### {bench}")
        lines.append("")
        header = "| result | " + " | ".join(
            f"`{path}`" for path, _ in runs
        ) + " |"
        lines.append(header)
        lines.append("|---|" + "---:|" * len(runs))
        for key in keys:
            marker = " (*)" if is_timing_key(key) else ""
            cells = " | ".join(
                format_value(r["results"].get(key, "—")) for _, r in runs
            )
            lines.append(f"| {key}{marker} | {cells} |")
        lines.append("")
    lines.append(
        "(*) timing/rate key — informational, excluded from the drift gate"
    )
    print("\n".join(lines))
    return 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "--summary-md":
        return summary_md(argv[2:])
    if len(argv) != 3:
        sys.exit(__doc__.strip())
    base = load(argv[1])
    cand = load(argv[2])
    if base["name"] != cand["name"]:
        sys.exit(
            f"refusing to compare different benches: "
            f"{base['name']!r} vs {cand['name']!r}"
        )
    base_schema = base.get("schema_version")
    cand_schema = cand.get("schema_version")
    if base_schema != cand_schema:
        # A schema bump means the records' shapes differ by design; a raw
        # key-by-key diff would report it as spurious headline drift.
        sys.exit(
            f"schema_version mismatch: baseline {argv[1]} has "
            f"{base_schema!r}, candidate {argv[2]} has {cand_schema!r} "
            f"— regenerate the baseline with the current binary"
        )

    threads = lambda r: r.get("config", {}).get("threads", "?")
    print(
        f"{base['name']}: baseline threads={threads(base)} vs "
        f"candidate threads={threads(cand)}"
    )
    rows = phase_table(base["phases"], cand["phases"])
    if rows:
        print(f"  {'phase':<16} {'base ms':>10} {'cand ms':>10} {'speedup':>8}")
        for phase, b, c, s in rows:
            print(f"  {phase:<16} {b:>10.1f} {c:>10.1f} {s:>7.2f}x")

    drift, timing = compare_results(base["results"], cand["results"])
    if timing:
        print("timing/rate keys (informational, never gated):")
        print("\n".join(timing))
    if drift:
        print("HEADLINE DRIFT — results blocks differ:")
        print("\n".join(drift))
        return 1
    gated = sum(1 for k in base["results"] if not is_timing_key(k))
    print(f"headline results identical ({gated} gated keys)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
