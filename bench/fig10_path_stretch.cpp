// Reproduces Figure 10 (§6.3.2): the displacement of mobile users from
// their dominant ("home agent") location — the path stretch indirection
// routing pays — via the iPlane-substitute latency model, plus the
// AS-hop lower bound and the away-time share (key finding 2).

#include <iostream>

#include "common.hpp"

using namespace lina;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "fig10_path_stretch");
  bench::print_figure_header(
      "Figure 10 — one-way delay from the home (dominant) location",
      "median displacement delay ~50 ms over predicted routes with ~4 AS "
      "hops (iPlane, 5% pair coverage); shortest physical AS path median 2 "
      "hops; median user spends ~25% of the day at ASes >= 2 AS hops from "
      "the dominant AS.");

  const core::LatencyModel model(bench::paper_internet());
  stats::Rng rng(10, "fig10");
  const auto result = core::evaluate_indirection_stretch(
      bench::paper_device_traces(), model, /*coverage=*/0.05, rng);

  std::cout << "Sampled " << result.pairs_sampled << " of "
            << result.pairs_total
            << " dominant-to-current address pairs ("
            << stats::pct(static_cast<double>(result.pairs_sampled) /
                              static_cast<double>(result.pairs_total),
                          1)
            << " coverage, mirroring iPlane's ~5%).\n\n";

  std::cout << "One-way H->M delay (ms):\n"
            << stats::cdf_table(result.delay_ms, "delay (ms)", 12) << "\n";

  const std::vector<std::pair<std::string, const stats::EmpiricalCdf*>>
      hops{{"policy route", &result.policy_hops},
           {"physical shortest", &result.physical_hops}};
  std::cout << "AS-hop displacement from home:\n"
            << stats::multi_cdf_table(hops, "AS hops", 9) << "\n";

  harness.result("median_delay_ms", result.delay_ms.quantile(0.5));
  harness.result("median_policy_hops", result.policy_hops.quantile(0.5));
  harness.result("median_physical_hops",
                 result.physical_hops.quantile(0.5));
  harness.result("median_away_time_share",
                 result.away_time_share.quantile(0.5));
  std::cout << "Measured medians: delay "
            << stats::fmt(result.delay_ms.quantile(0.5), 1)
            << " ms; policy-route hops "
            << stats::fmt(result.policy_hops.quantile(0.5), 1)
            << "; physical lower bound "
            << stats::fmt(result.physical_hops.quantile(0.5), 1) << ".\n";
  std::cout << "Median time share at ASes >= 2 hops from home: "
            << stats::pct(result.away_time_share.quantile(0.5), 1)
            << "  (paper: ~25%).\n";
  std::cout << "\nNote: absolute delays run below the paper's 50 ms because "
               "the synthetic metro-clustered topology is shallower than "
               "the measured Internet; the CDF shape and the hop-count "
               "ordering (policy >= physical) are the reproduced "
               "quantities (see EXPERIMENTS.md).\n";
  return 0;
}
