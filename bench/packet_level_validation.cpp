// Extension experiment (not a paper figure): validates the §2/§5 trade-offs
// dynamically by forwarding packets. A remote correspondent streams CBR
// traffic at a mobile device roaming per the NomadLog-substitute model;
// the three architectures are compared on delivery ratio, data-path
// stretch, handoff outage, and control-message volume.

#include <iostream>

#include "common.hpp"
#include "lina/exec/parallel.hpp"
#include "lina/sim/resolver_pool.hpp"
#include "lina/sim/session.hpp"
#include "lina/trace/replay.hpp"

using namespace lina;

namespace {

/// Converts the first hours of a device trace into a sped-up AS-level
/// mobility schedule (1 simulated second per trace hour). The schedule
/// itself comes from the shared trace-replay helper so the streamed
/// session driver (trace::simulate_sessions_streamed) runs the exact same
/// sessions.
sim::SessionConfig session_from_trace(const mobility::DeviceTrace& trace,
                                      topology::AsId correspondent,
                                      double hours) {
  sim::SessionConfig config;
  config.correspondent = correspondent;
  config.duration_ms = hours * 1000.0;
  config.packet_interval_ms = 25.0;
  config.resolver_ttl_ms = 200.0;
  config.schedule = trace::session_schedule_from_trace(trace, hours);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "packet_level_validation");
  bench::print_figure_header(
      "Packet-level validation — forwarding under mobility (extension)",
      "(not a paper figure) indirection should pay stretch but converge "
      "fast; name resolution should pay staleness; name-based routing "
      "should pay convergence-time outages and flooding control cost but "
      "no steady-state stretch.");

  const auto& internet = bench::paper_internet();
  const sim::ForwardingFabric fabric(internet);

  // Aggregate over the 24 most mobile users' first 3 days.
  std::vector<const mobility::DeviceTrace*> mobile_users;
  for (const auto& trace : bench::paper_device_traces()) {
    mobile_users.push_back(&trace);
  }
  std::sort(mobile_users.begin(), mobile_users.end(),
            [](const auto* a, const auto* b) {
              return a->events().size() > b->events().size();
            });
  mobile_users.resize(24);

  const topology::AsId correspondent = internet.edge_ases()[0];

  const auto replicas = sim::ResolverPool::metro_placement(internet, 8);

  struct Variant {
    std::string label;
    sim::SimArchitecture arch;
    std::size_t scope;  // SIZE_MAX = global
    bool replicated;
  };
  const std::vector<Variant> variants{
      {"indirection (home agent)", sim::SimArchitecture::kIndirection,
       SIZE_MAX, false},
      {"name resolution (resolver)", sim::SimArchitecture::kNameResolution,
       SIZE_MAX, false},
      {"replicated resolution (GNS, 8 replicas)",
       sim::SimArchitecture::kReplicatedResolution, SIZE_MAX, true},
      {"name-based routing (global flooding)",
       sim::SimArchitecture::kNameBased, SIZE_MAX, false},
      {"name-based routing (scope 3 hops, §8 hybrid)",
       sim::SimArchitecture::kNameBased, 3, false},
  };

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"architecture", "delivery", "median stretch",
                  "median outage (ms)", "control msgs"});
  for (const Variant& variant : variants) {
    // One session per user, fanned across the pool; the aggregation below
    // runs serially over the user-ordered results, so totals and CDFs
    // match the serial loop exactly at any --threads value.
    const std::vector<sim::SessionStats> sessions =
        exec::parallel_map(mobile_users.size(), [&](std::size_t u) {
          auto config =
              session_from_trace(*mobile_users[u], correspondent, 72.0);
          config.update_scope_hops = variant.scope;
          // Fair comparison: the single resolver sits where the GNS
          // pool's first replica sits (not conveniently next to the
          // correspondent).
          config.resolver_as = replicas.front();
          if (variant.replicated) config.resolver_replicas = replicas;
          return sim::simulate_session(fabric, variant.arch, config);
        });
    std::size_t sent = 0, delivered = 0, control = 0;
    stats::EmpiricalCdf stretch, outage;
    for (const sim::SessionStats& result : sessions) {
      sent += result.packets_sent;
      delivered += result.packets_delivered;
      control += result.control_messages;
      if (!result.stretch.empty()) stretch.add(result.stretch.quantile(0.5));
      if (!result.outage_ms.empty()) {
        outage.add(result.outage_ms.quantile(0.5));
      }
    }
    rows.push_back(
        {variant.label,
         stats::pct(static_cast<double>(delivered) /
                        static_cast<double>(sent),
                    2),
         stats::fmt(stretch.quantile(0.5), 3),
         outage.empty() ? "-" : stats::fmt(outage.quantile(0.5), 1),
         std::to_string(control)});
  }
  std::cout << stats::text_table(rows) << "\n";
  std::cout
      << "Reading: the static methodology's cost columns show up as live "
         "behaviour — name-based routing converges fastest but floods "
         "orders of magnitude more control traffic (scoping recovers most "
         "of that at almost no delivery cost), replication cuts the "
         "resolution architecture's staleness relative to one distant "
         "resolver, and indirection trades per-packet stretch for the "
         "cheapest control plane.\n";
  return 0;
}
