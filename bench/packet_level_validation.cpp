// Extension experiment (not a paper figure): validates the §2/§5 trade-offs
// dynamically by forwarding packets. A remote correspondent streams CBR
// traffic at a mobile device roaming per the NomadLog-substitute model;
// the architectures are compared on delivery ratio, data-path stretch,
// handoff outage, and control-message volume. The mobile population now
// streams out of the shared trace-shard cache (the same fixture every
// replay figure uses, so the run record carries trace.reuse), and a
// second phase drives the same sessions through the lina::des sharded
// packet engine, cross-checking its delivered-packet digest against the
// serial reference — a digest mismatch fails the bench (exit 1).
//
// Bench-specific flags (config block only, never results):
//     --des-shards <n>      engine shard count (default 8)
//     --des-window-ms <x>   lookahead override (default 0 = auto)
//     --des-sync <mode>     conservative | optimistic | both (default both)

#include <chrono>
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "lina/des/engine.hpp"
#include "lina/exec/parallel.hpp"
#include "lina/sim/resolver_pool.hpp"
#include "lina/sim/session.hpp"
#include "lina/trace/replay.hpp"
#include "lina/trace/streaming.hpp"

using namespace lina;

namespace {

/// Converts the first hours of a device trace into a sped-up AS-level
/// mobility schedule (1 simulated second per trace hour). The schedule
/// itself comes from the shared trace-replay helper so the streamed
/// session driver (trace::simulate_sessions_streamed) runs the exact same
/// sessions.
sim::SessionConfig session_from_trace(const mobility::DeviceTrace& trace,
                                      topology::AsId correspondent,
                                      double hours) {
  sim::SessionConfig config;
  config.correspondent = correspondent;
  config.duration_ms = hours * 1000.0;
  config.packet_interval_ms = 25.0;
  config.resolver_ttl_ms = 200.0;
  config.schedule = trace::session_schedule_from_trace(trace, hours);
  return config;
}

/// Streams the whole shard set and keeps the `keep` most mobile users
/// (event count descending, user index ascending on ties — fully
/// deterministic), bounded by one batch plus `keep` resident traces.
std::vector<mobility::DeviceTrace> most_mobile_streamed(
    const trace::ShardSet& set, std::size_t keep) {
  struct Ranked {
    std::size_t user;
    mobility::DeviceTrace trace;
  };
  std::vector<Ranked> top;
  trace::DeviceTraceStream stream(set);
  while (!stream.done()) {
    std::vector<mobility::DeviceTrace> batch = stream.next_batch(64);
    if (batch.empty()) break;
    const std::size_t first = stream.next_index() - batch.size();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      top.push_back({first + i, std::move(batch[i])});
    }
    std::sort(top.begin(), top.end(), [](const Ranked& a, const Ranked& b) {
      if (a.trace.events().size() != b.trace.events().size())
        return a.trace.events().size() > b.trace.events().size();
      return a.user < b.user;
    });
    if (top.size() > keep)
      top.erase(top.begin() + static_cast<std::ptrdiff_t>(keep), top.end());
  }
  std::vector<mobility::DeviceTrace> traces;
  traces.reserve(top.size());
  for (Ranked& r : top) traces.push_back(std::move(r.trace));
  return traces;
}

}  // namespace

int main(int argc, char** argv) {
  std::string shards_flag = "8";
  std::string window_flag = "0";
  std::string sync_flag = "both";
  bench::Harness harness(argc, argv, "packet_level_validation",
                         {{"--des-shards", &shards_flag, nullptr},
                          {"--des-window-ms", &window_flag, nullptr},
                          {"--des-sync", &sync_flag, nullptr}});

  // Fail fast on a bad engine configuration, before any measured phase —
  // the same contract as the harness's output-path probes (exit code 2).
  std::size_t des_shards = 0;
  try {
    des_shards = std::stoul(shards_flag);
  } catch (const std::exception&) {
    std::cerr << "packet_level_validation: bad --des-shards value '"
              << shards_flag << "' (want a positive integer)\n";
    std::exit(2);
  }
  if (des_shards == 0) {
    std::cerr << "packet_level_validation: --des-shards must be >= 1\n";
    std::exit(2);
  }
  double des_window_ms = 0.0;
  try {
    des_window_ms = std::stod(window_flag);
  } catch (const std::exception&) {
    std::cerr << "packet_level_validation: bad --des-window-ms value '"
              << window_flag << "' (want a non-negative number)\n";
    std::exit(2);
  }
  if (!(des_window_ms >= 0.0) || !std::isfinite(des_window_ms)) {
    std::cerr << "packet_level_validation: --des-window-ms must be a "
                 "finite non-negative number (0 = auto lookahead)\n";
    std::exit(2);
  }
  struct SyncArm {
    std::string key;
    des::SyncMode mode;
  };
  std::vector<SyncArm> sync_arms;
  if (sync_flag == "conservative" || sync_flag == "both") {
    sync_arms.push_back({"conservative", des::SyncMode::kConservative});
  }
  if (sync_flag == "optimistic" || sync_flag == "both") {
    sync_arms.push_back({"optimistic", des::SyncMode::kOptimistic});
  }
  if (sync_arms.empty()) {
    std::cerr << "packet_level_validation: bad --des-sync value '"
              << sync_flag
              << "' (want conservative | optimistic | both)\n";
    std::exit(2);
  }

  bench::print_figure_header(
      "Packet-level validation — forwarding under mobility (extension)",
      "(not a paper figure) indirection should pay stretch but converge "
      "fast; name resolution should pay staleness; name-based routing "
      "should pay convergence-time outages and flooding control cost but "
      "no steady-state stretch.");

  const auto& internet = bench::paper_internet();
  const sim::ForwardingFabric fabric(internet);

  // Aggregate over the 24 most mobile users' first 3 days, streamed out
  // of the shared trace-shard cache (records trace.reuse in the config
  // block) instead of a resident 372-user vector.
  const std::vector<mobility::DeviceTrace> mobile_users =
      most_mobile_streamed(bench::paper_trace_shards(), 24);

  const topology::AsId correspondent = internet.edge_ases()[0];

  const auto replicas = sim::ResolverPool::metro_placement(internet, 8);

  struct Variant {
    std::string label;
    std::string key;  // result-block slug
    sim::SimArchitecture arch;
    std::size_t scope;  // SIZE_MAX = global
    bool replicated;
  };
  const std::vector<Variant> variants{
      {"indirection (home agent)", "indirection",
       sim::SimArchitecture::kIndirection, SIZE_MAX, false},
      {"name resolution (resolver)", "resolution",
       sim::SimArchitecture::kNameResolution, SIZE_MAX, false},
      {"replicated resolution (GNS, 8 replicas)", "gns",
       sim::SimArchitecture::kReplicatedResolution, SIZE_MAX, true},
      {"name-based routing (global flooding)", "namebased",
       sim::SimArchitecture::kNameBased, SIZE_MAX, false},
      {"name-based routing (scope 3 hops, §8 hybrid)", "scoped",
       sim::SimArchitecture::kNameBased, 3, false},
  };

  harness.phase("sessions");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"architecture", "delivery", "median stretch",
                  "median outage (ms)", "control msgs"});
  for (const Variant& variant : variants) {
    // One session per user, fanned across the pool; the aggregation below
    // runs serially over the user-ordered results, so totals and CDFs
    // match the serial loop exactly at any --threads value.
    const std::vector<sim::SessionStats> sessions =
        exec::parallel_map(mobile_users.size(), [&](std::size_t u) {
          auto config =
              session_from_trace(mobile_users[u], correspondent, 72.0);
          config.update_scope_hops = variant.scope;
          // Fair comparison: the single resolver sits where the GNS
          // pool's first replica sits (not conveniently next to the
          // correspondent).
          config.resolver_as = replicas.front();
          if (variant.replicated) config.resolver_replicas = replicas;
          return sim::simulate_session(fabric, variant.arch, config);
        });
    std::size_t sent = 0, delivered = 0, control = 0;
    stats::EmpiricalCdf stretch, outage;
    for (const sim::SessionStats& result : sessions) {
      sent += result.packets_sent;
      delivered += result.packets_delivered;
      control += result.control_messages;
      if (!result.stretch.empty()) stretch.add(result.stretch.quantile(0.5));
      if (!result.outage_ms.empty()) {
        outage.add(result.outage_ms.quantile(0.5));
      }
    }
    rows.push_back(
        {variant.label,
         stats::pct(static_cast<double>(delivered) /
                        static_cast<double>(sent),
                    2),
         stats::fmt(stretch.quantile(0.5), 3),
         outage.empty() ? "-" : stats::fmt(outage.quantile(0.5), 1),
         std::to_string(control)});
  }
  std::cout << stats::text_table(rows) << "\n";
  std::cout
      << "Reading: the static methodology's cost columns show up as live "
         "behaviour — name-based routing converges fastest but floods "
         "orders of magnitude more control traffic (scoping recovers most "
         "of that at almost no delivery cost), replication cuts the "
         "resolution architecture's staleness relative to one distant "
         "resolver, and indirection trades per-packet stretch for the "
         "cheapest control plane.\n\n";

  // Same sessions through the sharded packet engine: the delivered-packet
  // digest must match the serial sim::EventQueue reference bit-for-bit
  // for every variant, at whatever shard count / window the flags chose.
  harness.phase("packet-engine");
  harness.note("des.shards", std::to_string(des_shards));
  harness.note("des.window_ms", stats::fmt(des_window_ms, 3));
  harness.note("des.sync", sync_flag);
  const des::ShardMap map = des::ShardMap::from_topology(internet,
                                                         des_shards);
  std::vector<std::vector<std::string>> engine_rows;
  engine_rows.push_back({"architecture", "sync", "events", "events/sec",
                         "windows", "rollbacks", "digest"});
  for (const Variant& variant : variants) {
    des::PacketModel model(fabric, variant.arch);
    for (const mobility::DeviceTrace& trace : mobile_users) {
      des::SessionParams params;
      params.correspondent = correspondent;
      params.schedule = trace::session_schedule_from_trace(trace, 72.0);
      params.duration_ms = 72.0 * 1000.0;
      params.interval_ms = 25.0;
      params.resolver_ttl_ms = 200.0;
      params.resolver_as = replicas.front();
      if (variant.replicated) params.resolver_replicas = replicas;
      params.update_scope_hops = variant.scope;
      model.add_session(params);
    }
    const des::RunStats serial = des::run_serial(model);
    harness.result("des_" + variant.key + "_delivered",
                   static_cast<double>(serial.digest.delivered));
    harness.result("des_" + variant.key + "_fingerprint_lo32",
                   static_cast<double>(serial.digest.fingerprint() &
                                       0xffffffffULL));
    for (const SyncArm& arm : sync_arms) {
      des::EngineConfig engine_config;
      engine_config.shard_count = des_shards;
      engine_config.window_ms = des_window_ms;
      engine_config.sync = arm.mode;
      const auto start = std::chrono::steady_clock::now();
      des::ShardedEngine engine(model, map, engine_config);
      const des::RunStats sharded = engine.run();
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (sharded.digest != serial.digest ||
          sharded.events != serial.events) {
        std::cerr << "packet_level_validation: sharded engine digest "
                     "mismatch for "
                  << variant.label << " (" << arm.key << ", serial fp "
                  << serial.digest.fingerprint() << ", sharded fp "
                  << sharded.digest.fingerprint()
                  << ") — the bit-identity contract is broken\n";
        return 1;
      }
      const double events_per_sec =
          seconds > 0.0 ? static_cast<double>(sharded.events) / seconds
                        : 0.0;
      engine_rows.push_back(
          {variant.label, arm.key, std::to_string(sharded.events),
           stats::fmt(events_per_sec / 1e6, 2) + "M",
           std::to_string(sharded.windows),
           std::to_string(sharded.rollbacks),
           "ok (fp " + std::to_string(sharded.digest.fingerprint() &
                                      0xffffffffULL) +
               ")"});
      harness.result("des_" + variant.key + "_" + arm.key +
                         "_events_per_sec",
                     events_per_sec);
    }
  }
  std::cout << stats::heading(
      "Sharded packet engine (lina::des) vs serial reference");
  std::cout << stats::text_table(engine_rows) << "\n";
  std::cout << "Every digest matches the serial sim::EventQueue loop "
               "bit-for-bit ("
            << des_shards << " shards, "
            << (des_window_ms > 0.0 ? stats::fmt(des_window_ms, 3) + " ms "
                                          "window"
                                    : std::string("auto lookahead"))
            << ", sync " << sync_flag << ").\n";
  return 0;
}
