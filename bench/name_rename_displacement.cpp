// Figure 2(b) methodology experiment: content renamed across the name
// hierarchy (distribution-rights transfers) displaces name-based routers
// exactly like devices crossing prefixes. The paper illustrates but does
// not measure this case; here the machinery is exercised end to end over
// the synthetic catalog.

#include <iostream>

#include "common.hpp"
#include "lina/core/name_displacement.hpp"

using namespace lina;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "name_rename_displacement");
  bench::print_figure_header(
      "Name renaming — Figure 2(b) displacement across hierarchies",
      "(methodology exercise; the paper's /20thCenturyFox/StarWarsIV -> "
      "/Disney/StarWarsIV example) a router updates iff its LPM ports for "
      "the old and new names differ; each displaced rename pins one "
      "exception entry.");

  const auto& catalog = bench::paper_content_catalog().popular;
  stats::Rng rng(2626, "renames");
  const auto events = core::generate_rename_events(catalog, 1000, rng);
  std::cout << "Generated " << events.size()
            << " cross-hierarchy renames over " << catalog.size()
            << " popular names.\n\n";

  const auto results = core::evaluate_rename_displacement(
      bench::paper_internet().vantages(), catalog, events);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"router", "renames displacing it", "exception entries",
                  "FIB growth"});
  for (const auto& r : results) {
    rows.push_back(
        {r.updates.router, stats::pct(r.updates.rate(), 1),
         std::to_string(r.fib_entries_after - r.fib_entries_before),
         stats::pct(static_cast<double>(r.fib_entries_after -
                                        r.fib_entries_before) /
                        static_cast<double>(r.fib_entries_before),
                    2)});
  }
  std::cout << stats::text_table(rows) << "\n";
  std::cout
      << "Reading: renames are content mobility in the *name* dimension — "
         "their per-router displacement pattern mirrors Figure 8's (port-"
         "diverse cores displaced often, remote edges rarely), and every "
         "displaced rename permanently grows the table until the namespace "
         "is re-aggregated.\n";
  return 0;
}
