// Reproduces Figure 6 (§6.1): CDF across users of the average number of
// distinct network locations (IP addresses, IP prefixes, ASes) visited per
// day, on the NomadLog-substitute device workload.

#include <iostream>

#include "common.hpp"

using namespace lina;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "fig6_locations_per_day");
  bench::print_figure_header(
      "Figure 6 — distinct network locations per user per day",
      "medians 3 IP addresses, 2 prefixes, 2 ASes per day; consistent with "
      "users moving across a cellular, home and work address daily.");

  // Figures 6, 7 and 9 share one on-disk workload: the shard cache is
  // generated once and replayed (bit-identically) by all three binaries.
  const auto extent =
      trace::analyze_extent_streamed(bench::paper_trace_shards());

  const std::vector<std::pair<std::string, const stats::EmpiricalCdf*>>
      series{{"IP addresses", &extent.ips_per_day},
             {"IP prefixes", &extent.prefixes_per_day},
             {"ASes", &extent.ases_per_day}};
  std::cout << stats::multi_cdf_table(series, "locations/day") << "\n";

  harness.result("median_ips_per_day", extent.ips_per_day.quantile(0.5));
  harness.result("median_prefixes_per_day",
                 extent.prefixes_per_day.quantile(0.5));
  harness.result("median_ases_per_day", extent.ases_per_day.quantile(0.5));
  std::cout << "Measured medians: "
            << stats::fmt(extent.ips_per_day.quantile(0.5), 2) << " IPs, "
            << stats::fmt(extent.prefixes_per_day.quantile(0.5), 2)
            << " prefixes, "
            << stats::fmt(extent.ases_per_day.quantile(0.5), 2)
            << " ASes per day across "
            << extent.ips_per_day.size() << " users.\n";
  return 0;
}
