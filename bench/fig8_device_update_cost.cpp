// Reproduces Figure 8 (§6.2.2) plus the §6.2 sensitivity analyses and
// back-of-the-envelope projections:
//   1. fraction of device mobility events inducing a forwarding update at
//      each of the 12 Routeviews-like vantage routers;
//   2. day-over-day stability of those rates (paper: stddev < 0.5%);
//   3. a RIPE-like second router set (paper: median 2.74%, max 11.3%);
//   4. correlation of per-router rates under an independent second
//      workload (paper: 0.88 against the UMass IMAP traces);
//   5. the §6.2 absolute-scale estimates (2.1K-4.8K updates/sec; ~1% extra
//      FIB entries).

#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "lina/stats/correlation.hpp"
#include "lina/stats/summary.hpp"

using namespace lina;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "fig8_device_update_cost");
  bench::print_figure_header(
      "Figure 8 — device mobility events inducing a router update",
      "up to 14% at some routers; median router ~3.15%; Mauritius and "
      "Tokyo hardly impacted; Georgia low due to low next-hop degree.");

  const auto& internet = bench::paper_internet();
  const auto& traces = bench::paper_device_traces();
  const core::DeviceUpdateCostEvaluator evaluator(internet.vantages());
  const auto router_stats = evaluator.evaluate(traces);
  bench::print_router_rates(router_stats,
                            "(fraction of all device mobility events that "
                            "change the router's LPM port)");

  std::vector<double> rates;
  for (const auto& s : router_stats) rates.push_back(s.rate());
  std::sort(rates.begin(), rates.end());
  harness.result("max_update_rate", rates.back());
  harness.result("median_update_rate", rates[rates.size() / 2]);
  std::cout << "Measured: max " << stats::pct(rates.back(), 1) << ", median "
            << stats::pct(rates[rates.size() / 2], 1) << " across "
            << router_stats.front().events << " events.\n";

  // Next-hop degree, the paper's explanatory variable.
  std::cout << stats::heading("Next-hop degree per router (explains spread)");
  std::vector<std::pair<std::string, double>> degree_rows;
  for (const auto& v : internet.vantages()) {
    degree_rows.emplace_back(std::string(v.name()),
                             static_cast<double>(v.next_hop_degree()));
  }
  std::cout << stats::bar_chart(degree_rows, " ports");

  // Sensitivity 1: time.
  harness.phase("day_sensitivity");
  std::cout << stats::heading("Sensitivity: per-day update-rate stability");
  std::vector<std::vector<std::string>> day_rows;
  day_rows.push_back({"router", "mean rate", "stddev (paper: <0.5%)"});
  for (std::size_t r = 0; r < internet.vantages().size(); ++r) {
    stats::RunningStats acc;
    for (std::size_t day = 0; day < traces.front().day_count(); ++day) {
      acc.add(evaluator.evaluate_day(traces, day)[r].rate());
    }
    day_rows.push_back({std::string(internet.vantages()[r].name()),
                        stats::pct(acc.mean(), 2),
                        stats::pct(acc.stddev(), 2)});
  }
  std::cout << stats::text_table(day_rows);

  // Sensitivity 2: a second (RIPE-like) router set.
  harness.phase("ripe_set");
  std::cout << stats::heading("Sensitivity: RIPE-like router set");
  const auto ripe = internet.build_vantages(routing::ripe_vantage_specs());
  const core::DeviceUpdateCostEvaluator ripe_evaluator(ripe);
  const auto ripe_stats = ripe_evaluator.evaluate(traces);
  bench::print_router_rates(ripe_stats, "");
  std::vector<double> ripe_rates;
  for (const auto& s : ripe_stats) ripe_rates.push_back(s.rate());
  std::sort(ripe_rates.begin(), ripe_rates.end());
  std::cout << "RIPE-like set: max " << stats::pct(ripe_rates.back(), 1)
            << ", median " << stats::pct(ripe_rates[ripe_rates.size() / 2], 1)
            << "  (paper: 11.3% / 2.74%)\n";

  // Sensitivity 3: an independent second workload.
  harness.phase("alt_workload");
  std::cout << stats::heading(
      "Sensitivity: correlation with an independent workload");
  mobility::DeviceWorkloadConfig alt;
  alt.seed = 20140331;
  alt.user_count = 372;
  alt.days = 14;
  alt.median_daily_transitions = 4.2;
  const auto alt_traces =
      mobility::DeviceWorkloadGenerator(internet, alt).generate();
  const auto alt_stats = evaluator.evaluate(alt_traces);
  std::vector<double> base_rates, alt_rates;
  for (const auto& s : router_stats) base_rates.push_back(s.rate());
  for (const auto& s : alt_stats) alt_rates.push_back(s.rate());
  std::cout << "Pearson correlation of per-router rates: "
            << stats::fmt(stats::pearson_correlation(base_rates, alt_rates),
                          3)
            << "  (paper: 0.88 between NomadLog and IMAP workloads)\n";

  // Back-of-the-envelope (§6.2).
  harness.phase("estimates");
  std::cout << stats::heading("Back-of-the-envelope (§6.2)");
  const auto extent = core::analyze_extent(traces);
  const double median_moves = extent.ip_transitions_per_day.quantile(0.5);
  const double typical_rate = rates[rates.size() / 2];
  const auto median_load =
      core::device_scale_estimate(2e9, median_moves, typical_rate);
  std::cout << "2B devices x " << stats::fmt(median_moves, 1)
            << " moves/day x " << stats::pct(typical_rate, 1) << " -> "
            << stats::fmt(median_load.updates_per_second(), 0)
            << " updates/sec at a typical router (paper: 2.1K/sec at 3 "
               "moves and 3%).\n";
  const double away = 1.0 - extent.dominant_ip_share.quantile(0.5);
  std::cout << "Displaced-entry fraction: "
            << stats::pct(core::displaced_entry_fraction(typical_rate, away),
                          2)
            << " of all devices need an extra entry at a typical router "
               "(paper: ~1%).\n";
  return 0;
}
