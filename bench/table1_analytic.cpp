// Reproduces Table 1 (§5): path stretch vs aggregate update cost for the
// four toy topologies under uniform random mobility, three ways —
//   1. the paper's published closed forms,
//   2. the library's exact expectation on the same graphs,
//   3. Monte-Carlo simulation of the Markov mobility model.

#include <cstddef>
#include <iostream>
#include <vector>

#include "common.hpp"

using namespace lina;

namespace {

struct NamedGraph {
  std::string name;
  topology::Graph graph;
};

void run_for_size(std::size_t n) {
  std::cout << stats::heading("Table 1 at n = " + std::to_string(n));

  const std::vector<NamedGraph> graphs = [n] {
    std::vector<NamedGraph> out;
    out.push_back({"chain", topology::make_chain(n)});
    out.push_back({"clique", topology::make_clique(std::min<std::size_t>(
                                 n, 64))});  // clique cost is O(n^2) edges
    out.push_back({"binary tree", topology::make_binary_tree(n)});
    out.push_back({"star", topology::make_star(n)});
    return out;
  }();
  const auto paper = analytic::paper_table1(n);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"topology", "ind.stretch (paper)", "ind.stretch (exact)",
                  "ind.stretch (sim)", "nbr.update (paper)",
                  "nbr.update (exact)", "nbr.update (sim)"});
  stats::Rng rng(2014, "table1");
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const analytic::TradeoffAnalyzer analyzer(graphs[i].graph);
    const auto exact = analyzer.exact();
    // Average several walks so the random home placement does not dominate.
    double sim_stretch = 0.0, sim_update = 0.0;
    const int walks = 8;
    for (int w = 0; w < walks; ++w) {
      const auto sim = analyzer.simulate(4000, rng);
      sim_stretch += sim.indirection_stretch;
      sim_update += sim.name_based_update_cost;
    }
    sim_stretch /= walks;
    sim_update /= walks;
    rows.push_back({graphs[i].name, stats::fmt(paper[i].indirection_stretch),
                    stats::fmt(exact.indirection_stretch),
                    stats::fmt(sim_stretch),
                    stats::fmt(paper[i].name_based_update_cost),
                    stats::fmt(exact.name_based_update_cost),
                    stats::fmt(sim_update)});
  }
  std::cout << stats::text_table(rows) << "\n";
  std::cout << "Indirection update cost is 1 router/event = "
            << stats::fmt(1.0 / static_cast<double>(n), 5)
            << " of routers; name-based stretch is 0 by construction "
               "(verified by forwarding-path checks in the test suite).\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "table1_analytic");
  bench::print_figure_header(
      "Table 1 — path stretch vs aggregate update cost (analytic)",
      "chain (n/3, 1/n, 0, 1/3); clique (1, 1/n, 0, 1); binary tree "
      "(2log2 n, 1/n, 0, 2log2 n/(n-1)); star (2, 1/n, 0, 1/(n+1)). "
      "Paper values are asymptotic; 'exact' columns are this library's "
      "non-asymptotic expectations under the same §5 mobility model (the "
      "star/tree rows differ from the paper where its approximation drops "
      "attachment-router terms; the chain matches to machine precision "
      "modulo a 1/n^2 erratum, see closed_forms.cpp).");
  for (const std::size_t n : {15u, 63u, 255u}) run_for_size(n);
  return 0;
}
