// Stream-identity self-check (CI's trace job, also `ctest -L trace`):
// generates the default paper workload (372 users x 30 days) in memory,
// writes it to trace shards, replays the shards through the streamed
// extent pipeline, and requires every CDF sample to match the in-memory
// pipeline bitwise. Exit status 0 on identity, 1 with a named mismatch
// otherwise.

#include <bit>
#include <cstdint>
#include <filesystem>
#include <iostream>

#include "common.hpp"
#include "lina/trace/replay.hpp"

using namespace lina;

namespace {

int failures = 0;

void check_samples(const stats::EmpiricalCdf& resident,
                   const stats::EmpiricalCdf& streamed, const char* what) {
  if (resident.size() != streamed.size()) {
    std::cerr << "MISMATCH " << what << ": " << resident.size() << " vs "
              << streamed.size() << " samples\n";
    ++failures;
    return;
  }
  const auto& a = resident.sorted_samples();
  const auto& b = streamed.sorted_samples();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i])) {
      std::cerr << "MISMATCH " << what << " sample " << i << ": " << a[i]
                << " vs " << b[i] << "\n";
      ++failures;
      return;
    }
  }
  std::cout << "ok " << what << " (" << a.size() << " samples)\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "check_stream_identity");

  const auto& traces = bench::paper_device_traces();
  const auto resident = core::analyze_extent(traces);

  // A scratch shard set, independent of the shared trace cache.
  const auto dir = std::filesystem::temp_directory_path() /
                   "lina-check-stream-identity";
  std::filesystem::remove_all(dir);
  mobility::DeviceWorkloadConfig config;  // paper-calibrated defaults
  config.days = 30;
  const mobility::DeviceWorkloadGenerator generator(bench::paper_internet(),
                                                    config);
  trace::StreamingWorkloadConfig stream_config;
  stream_config.users_per_shard = 128;  // 3 shards
  const trace::ShardSet set =
      trace::StreamingWorkload(generator, stream_config).write_shards(dir);
  const auto streamed = trace::analyze_extent_streamed(set);
  std::filesystem::remove_all(dir);

  check_samples(resident.ips_per_day, streamed.ips_per_day, "ips_per_day");
  check_samples(resident.prefixes_per_day, streamed.prefixes_per_day,
                "prefixes_per_day");
  check_samples(resident.ases_per_day, streamed.ases_per_day,
                "ases_per_day");
  check_samples(resident.ip_transitions_per_day,
                streamed.ip_transitions_per_day, "ip_transitions_per_day");
  check_samples(resident.prefix_transitions_per_day,
                streamed.prefix_transitions_per_day,
                "prefix_transitions_per_day");
  check_samples(resident.as_transitions_per_day,
                streamed.as_transitions_per_day, "as_transitions_per_day");
  check_samples(resident.dominant_ip_share, streamed.dominant_ip_share,
                "dominant_ip_share");
  check_samples(resident.dominant_prefix_share,
                streamed.dominant_prefix_share, "dominant_prefix_share");
  check_samples(resident.dominant_as_share, streamed.dominant_as_share,
                "dominant_as_share");

  if (failures != 0) {
    std::cerr << failures << " mismatching series — streamed replay is NOT "
              << "bit-identical to the in-memory pipeline\n";
    return 1;
  }
  std::cout << "streamed replay bit-identical to the in-memory pipeline "
            << "(372 users x 30 days)\n";
  return 0;
}
