#include "lina/sim/fabric.hpp"

#include <gtest/gtest.h>

#include "../support/fixtures.hpp"

namespace lina::sim {
namespace {

using lina::testing::shared_internet;
using topology::AsId;

const ForwardingFabric& fabric() {
  static const ForwardingFabric instance(shared_internet());
  return instance;
}

TEST(FabricTest, SelfNextHopIsSelf) {
  const AsId as = shared_internet().edge_ases()[0];
  EXPECT_EQ(fabric().next_hop(as, as), as);
  EXPECT_EQ(fabric().path_hops(as, as), 0u);
  EXPECT_DOUBLE_EQ(*fabric().path_delay_ms(as, as), 0.0);
}

TEST(FabricTest, NextHopIsAdjacent) {
  const auto& graph = shared_internet().graph();
  const AsId dest = shared_internet().edge_ases()[3];
  for (AsId u = 0; u < graph.as_count(); u += 17) {
    if (u == dest) continue;
    const auto hop = fabric().next_hop(u, dest);
    ASSERT_TRUE(hop.has_value()) << u;
    EXPECT_TRUE(graph.relationship(u, *hop).has_value()) << u;
  }
}

TEST(FabricTest, HopByHopReachesDestination) {
  const AsId src = shared_internet().edge_ases()[1];
  const AsId dest = shared_internet().edge_ases()[10];
  AsId current = src;
  std::size_t hops = 0;
  while (current != dest) {
    const auto next = fabric().next_hop(current, dest);
    ASSERT_TRUE(next.has_value());
    current = *next;
    ASSERT_LT(++hops, 32u);
  }
  EXPECT_EQ(fabric().path_hops(src, dest), hops);
}

TEST(FabricTest, PathDelayIsSumOfLinkDelays) {
  const AsId src = shared_internet().edge_ases()[2];
  const AsId dest = shared_internet().edge_ases()[20];
  double sum = 0.0;
  AsId current = src;
  while (current != dest) {
    const AsId next = *fabric().next_hop(current, dest);
    sum += fabric().link_delay_ms(current, next);
    current = next;
  }
  EXPECT_NEAR(*fabric().path_delay_ms(src, dest), sum, 1e-9);
}

TEST(FabricTest, LinkDelayPositiveAndSymmetricEnough) {
  const auto& graph = shared_internet().graph();
  const AsId a = 0;
  for (const auto& link : graph.links(a)) {
    const double forward = fabric().link_delay_ms(a, link.neighbor);
    const double backward = fabric().link_delay_ms(link.neighbor, a);
    EXPECT_GT(forward, 0.0);
    EXPECT_DOUBLE_EQ(forward, backward);
  }
}

TEST(FabricTest, PhysicalHopsLowerBoundsPolicyHops) {
  for (std::size_t i = 0; i + 5 < shared_internet().edge_ases().size();
       i += 11) {
    const AsId a = shared_internet().edge_ases()[i];
    const AsId b = shared_internet().edge_ases()[i + 5];
    const auto policy = fabric().path_hops(a, b);
    ASSERT_TRUE(policy.has_value());
    EXPECT_GE(*policy, fabric().physical_hops(a, b));
  }
}

TEST(FabricTest, OutOfRangeThrows) {
  EXPECT_THROW((void)fabric().next_hop(1u << 20, 0), std::out_of_range);
  EXPECT_THROW((void)fabric().physical_hops(0, 1u << 20),
               std::out_of_range);
}

}  // namespace
}  // namespace lina::sim
