// Consumer-side interest retransmission under injected faults: the
// retry backoff (shared lina::core::BackoffPolicy) probes outages and
// stale beliefs, but is strictly gated on a non-empty FailurePlan so
// failure-free content sessions stay bit-identical.

#include <gtest/gtest.h>

#include "../support/fixtures.hpp"
#include "lina/sim/content_session.hpp"
#include "lina/sim/failure_plan.hpp"

namespace lina::sim {
namespace {

using lina::testing::shared_internet;
using topology::AsId;

const ForwardingFabric& fabric() {
  static const ForwardingFabric instance(shared_internet());
  return instance;
}

AsId edge(std::size_t i) { return shared_internet().edge_ases()[i]; }

ContentSessionConfig base_config() {
  ContentSessionConfig config;
  config.consumer = edge(0);
  config.publisher_schedule = {{0.0, edge(40)}};
  config.duration_ms = 12000.0;
  config.cache_capacity = 64;
  return config;
}

TEST(ContentRetryTest, NoRetriesWithoutAPlan) {
  const auto stats = simulate_content_session(fabric(), base_config());
  EXPECT_EQ(stats.interest_retries, 0u);
}

TEST(ContentRetryTest, EmptyPlanNeverRetriesAndStaysBitIdentical) {
  ContentSessionConfig config = base_config();
  ContentSessionConfig with_plan = config;
  const FailurePlan empty_plan;
  with_plan.failures = &empty_plan;

  const auto a = simulate_content_session(fabric(), config);
  const auto b = simulate_content_session(fabric(), with_plan);
  EXPECT_EQ(b.interest_retries, 0u);
  EXPECT_EQ(a.interests_sent, b.interests_sent);
  EXPECT_EQ(a.satisfied_from_cache, b.satisfied_from_cache);
  EXPECT_EQ(a.satisfied_from_publisher, b.satisfied_from_publisher);
  EXPECT_EQ(a.unsatisfied, b.unsatisfied);
}

TEST(ContentRetryTest, RetransmissionProbesARepairedOutage) {
  // The publisher goes dark mid-session and comes back; retransmitted
  // interests issued during the hole can land after the repair.
  ContentSessionConfig config = base_config();
  FailurePlan plan;
  plan.as_outage(edge(40), 4000.0, 6000.0);
  config.failures = &plan;
  config.retry.backoff_ms = 500.0;
  config.retry.max_backoff_ms = 2000.0;
  config.retry.max_attempts = 6;

  ContentSessionConfig one_shot = config;
  one_shot.retry.max_attempts = 1;  // first transmission only

  const auto retried = simulate_content_session(fabric(), config);
  const auto single = simulate_content_session(fabric(), one_shot);

  EXPECT_EQ(single.interest_retries, 0u);
  EXPECT_GT(retried.interest_retries, 0u);
  // Retransmission can only add satisfied interests (same request
  // stream, same caches on the happy path).
  EXPECT_GE(retried.satisfied(), single.satisfied());
  EXPECT_GT(retried.reachability(), single.reachability());
  // Retries never inflate the demand denominator.
  EXPECT_EQ(retried.interests_sent, single.interests_sent);
}

TEST(ContentRetryTest, MalformedRetryPolicyIsRejected) {
  ContentSessionConfig config = base_config();
  config.retry.backoff_ms = 0.0;
  EXPECT_THROW((void)simulate_content_session(fabric(), config),
               std::invalid_argument);
}

}  // namespace
}  // namespace lina::sim
