#include "lina/sim/content_store.hpp"

#include <gtest/gtest.h>

namespace lina::sim {
namespace {

TEST(ContentStoreTest, InsertAndLookup) {
  ContentStore store(3);
  EXPECT_FALSE(store.lookup(1));
  store.insert(1);
  EXPECT_TRUE(store.lookup(1));
  EXPECT_TRUE(store.contains(1));
  EXPECT_EQ(store.size(), 1u);
}

TEST(ContentStoreTest, EvictsLeastRecentlyUsed) {
  ContentStore store(2);
  store.insert(1);
  store.insert(2);
  store.insert(3);  // evicts 1
  EXPECT_FALSE(store.contains(1));
  EXPECT_TRUE(store.contains(2));
  EXPECT_TRUE(store.contains(3));
  EXPECT_EQ(store.size(), 2u);
}

TEST(ContentStoreTest, LookupRefreshesRecency) {
  ContentStore store(2);
  store.insert(1);
  store.insert(2);
  EXPECT_TRUE(store.lookup(1));  // 1 becomes most recent
  store.insert(3);               // evicts 2
  EXPECT_TRUE(store.contains(1));
  EXPECT_FALSE(store.contains(2));
}

TEST(ContentStoreTest, InsertRefreshesRecency) {
  ContentStore store(2);
  store.insert(1);
  store.insert(2);
  store.insert(1);  // refresh, no growth
  EXPECT_EQ(store.size(), 2u);
  store.insert(3);  // evicts 2
  EXPECT_TRUE(store.contains(1));
  EXPECT_FALSE(store.contains(2));
}

TEST(ContentStoreTest, ZeroCapacityDisablesCaching) {
  ContentStore store(0);
  store.insert(1);
  EXPECT_FALSE(store.lookup(1));
  EXPECT_EQ(store.size(), 0u);
}

TEST(ContentStoreTest, ChurnNeverExceedsCapacity) {
  ContentStore store(16);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    store.insert(i % 37);
    EXPECT_LE(store.size(), 16u);
  }
}

}  // namespace
}  // namespace lina::sim
