#include "lina/sim/session.hpp"

#include <gtest/gtest.h>

#include "../support/fixtures.hpp"

namespace lina::sim {
namespace {

using lina::testing::shared_internet;
using topology::AsId;

const ForwardingFabric& fabric() {
  static const ForwardingFabric instance(shared_internet());
  return instance;
}

AsId edge(std::size_t i) { return shared_internet().edge_ases()[i]; }

SessionConfig stationary_config() {
  SessionConfig config;
  config.correspondent = edge(0);
  config.schedule = {{0.0, edge(25)}};
  config.packet_interval_ms = 50.0;
  config.duration_ms = 2000.0;
  return config;
}

SessionConfig mobile_config() {
  // Metro-local roaming (the measured common case): the device hops among
  // ASes near one anchor every two seconds while a remote correspondent
  // streams packets.
  static const std::vector<AsId> local =
      shared_internet().edge_ases_near(topology::metro_anchors()[0], 4);
  SessionConfig config;
  config.correspondent = edge(0);
  config.schedule = {{0.0, local[0]},
                     {2000.0, local[1]},
                     {4000.0, local[2]},
                     {6000.0, local[3]}};
  config.packet_interval_ms = 20.0;
  config.duration_ms = 8000.0;
  // Re-resolve well within the mobility timescale, as a deployed resolver
  // client would (low TTLs for mobile endpoints).
  config.resolver_ttl_ms = 150.0;
  return config;
}

constexpr SimArchitecture kAll[] = {SimArchitecture::kIndirection,
                                    SimArchitecture::kNameResolution,
                                    SimArchitecture::kNameBased};

TEST(SimSessionTest, NamesAreDistinct) {
  EXPECT_NE(sim_architecture_name(SimArchitecture::kIndirection),
            sim_architecture_name(SimArchitecture::kNameBased));
}

TEST(SimSessionTest, ValidatesConfig) {
  SessionConfig config = stationary_config();
  config.schedule.clear();
  for (const auto arch : kAll) {
    EXPECT_THROW((void)simulate_session(fabric(), arch, config),
                 std::invalid_argument);
  }
  config = stationary_config();
  config.schedule.front().time_ms = 5.0;
  EXPECT_THROW((void)simulate_session(fabric(), kAll[0], config),
               std::invalid_argument);
  config = stationary_config();
  config.packet_interval_ms = 0.0;
  EXPECT_THROW((void)simulate_session(fabric(), kAll[0], config),
               std::invalid_argument);
  config = stationary_config();
  config.schedule.push_back({0.0, edge(1)});  // non-increasing times
  EXPECT_THROW((void)simulate_session(fabric(), kAll[0], config),
               std::invalid_argument);
}

TEST(SimSessionTest, StationaryDeviceFullDelivery) {
  for (const auto arch : kAll) {
    const SessionStats stats =
        simulate_session(fabric(), arch, stationary_config());
    EXPECT_EQ(stats.packets_sent, 40u);
    EXPECT_EQ(stats.packets_delivered, stats.packets_sent)
        << sim_architecture_name(arch);
    EXPECT_EQ(stats.packets_lost, 0u);
    EXPECT_TRUE(stats.outage_ms.empty());
  }
}

TEST(SimSessionTest, StationaryDirectArchitecturesHaveUnitStretch) {
  for (const auto arch :
       {SimArchitecture::kNameResolution, SimArchitecture::kNameBased}) {
    const SessionStats stats =
        simulate_session(fabric(), arch, stationary_config());
    EXPECT_NEAR(stats.stretch.quantile(0.5), 1.0, 1e-6)
        << sim_architecture_name(arch);
  }
}

TEST(SimSessionTest, IndirectionPaysTriangleStretch) {
  // Home far from both endpoints: the detour must show as stretch > 1.
  SessionConfig config = stationary_config();
  config.home_as = edge(100);  // somewhere else entirely
  const SessionStats via_far_home = simulate_session(
      fabric(), SimArchitecture::kIndirection, config);
  EXPECT_EQ(via_far_home.delivery_ratio(), 1.0);
  EXPECT_GT(via_far_home.stretch.quantile(0.5), 1.0);

  // Home co-located with the device: no detour on the second leg.
  config.home_as = config.schedule.front().as;
  const SessionStats via_device_home = simulate_session(
      fabric(), SimArchitecture::kIndirection, config);
  EXPECT_NEAR(via_device_home.stretch.quantile(0.5), 1.0, 1e-6);
}

TEST(SimSessionTest, MobilityCausesBoundedLoss) {
  for (const auto arch : kAll) {
    const SessionStats stats =
        simulate_session(fabric(), arch, mobile_config());
    EXPECT_EQ(stats.packets_sent, 400u);
    // Some packets are in flight to the old location at each of the three
    // moves, but the architectures must re-converge.
    EXPECT_GT(stats.delivery_ratio(), 0.8) << sim_architecture_name(arch);
    EXPECT_LT(stats.delivery_ratio(), 1.0) << sim_architecture_name(arch);
    EXPECT_FALSE(stats.outage_ms.empty());
  }
}

TEST(SimSessionTest, ControlMessageAccounting) {
  // 3 moves: indirection sends one registration per move; resolution sends
  // one registration per move plus periodic re-resolutions; name-based
  // floods every router per move.
  const auto moves = mobile_config().schedule.size() - 1;
  const SessionStats indirection = simulate_session(
      fabric(), SimArchitecture::kIndirection, mobile_config());
  EXPECT_EQ(indirection.control_messages, moves);

  const SessionStats resolution = simulate_session(
      fabric(), SimArchitecture::kNameResolution, mobile_config());
  EXPECT_GT(resolution.control_messages, moves);

  const SessionStats name_based = simulate_session(
      fabric(), SimArchitecture::kNameBased, mobile_config());
  EXPECT_EQ(name_based.control_messages,
            moves * shared_internet().graph().as_count());
}

TEST(SimSessionTest, FasterUpdatesShortenNameBasedOutage) {
  SessionConfig slow = mobile_config();
  slow.update_hop_ms = 50.0;
  SessionConfig fast = mobile_config();
  fast.update_hop_ms = 1.0;
  const SessionStats slow_stats =
      simulate_session(fabric(), SimArchitecture::kNameBased, slow);
  const SessionStats fast_stats =
      simulate_session(fabric(), SimArchitecture::kNameBased, fast);
  ASSERT_FALSE(slow_stats.outage_ms.empty());
  ASSERT_FALSE(fast_stats.outage_ms.empty());
  EXPECT_LE(fast_stats.outage_ms.quantile(0.5),
            slow_stats.outage_ms.quantile(0.5));
  EXPECT_GE(fast_stats.delivery_ratio(), slow_stats.delivery_ratio());
}

TEST(SimSessionTest, ShorterTtlImprovesResolutionFreshness) {
  SessionConfig stale = mobile_config();
  stale.resolver_ttl_ms = 4000.0;  // never re-resolves within the session
  SessionConfig fresh = mobile_config();
  fresh.resolver_ttl_ms = 100.0;
  const SessionStats stale_stats = simulate_session(
      fabric(), SimArchitecture::kNameResolution, stale);
  const SessionStats fresh_stats = simulate_session(
      fabric(), SimArchitecture::kNameResolution, fresh);
  EXPECT_GT(fresh_stats.delivery_ratio(), stale_stats.delivery_ratio());
  EXPECT_GT(fresh_stats.control_messages, stale_stats.control_messages);
}

TEST(SimSessionTest, NameBasedStretchStaysNearOneAfterConvergence) {
  const SessionStats stats =
      simulate_session(fabric(), SimArchitecture::kNameBased,
                       mobile_config());
  // Median packet travels a converged shortest policy path.
  EXPECT_NEAR(stats.stretch.quantile(0.5), 1.0, 0.05);
}

TEST(SimSessionTest, DeterministicAcrossRuns) {
  for (const auto arch : kAll) {
    const SessionStats a = simulate_session(fabric(), arch, mobile_config());
    const SessionStats b = simulate_session(fabric(), arch, mobile_config());
    EXPECT_EQ(a.packets_delivered, b.packets_delivered);
    EXPECT_EQ(a.control_messages, b.control_messages);
  }
}

}  // namespace
}  // namespace lina::sim
