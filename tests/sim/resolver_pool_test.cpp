#include "lina/sim/resolver_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "../support/fixtures.hpp"
#include "lina/sim/failure_plan.hpp"
#include "lina/sim/session.hpp"

namespace lina::sim {
namespace {

using lina::testing::shared_internet;
using topology::AsId;

const ForwardingFabric& fabric() {
  static const ForwardingFabric instance(shared_internet());
  return instance;
}

std::vector<AsId> replicas(std::size_t count) {
  return ResolverPool::metro_placement(shared_internet(), count);
}

TEST(ResolverPoolTest, Validation) {
  EXPECT_THROW(ResolverPool(fabric(), {}), std::invalid_argument);
  EXPECT_THROW(ResolverPool(fabric(), {1u << 20}), std::out_of_range);
}

TEST(ResolverPoolTest, MetroPlacementDistinct) {
  const auto placed = replicas(8);
  EXPECT_EQ(placed.size(), 8u);
  EXPECT_EQ(std::set<AsId>(placed.begin(), placed.end()).size(), 8u);
}

TEST(ResolverPoolTest, MetroPlacementZeroCountIsEmpty) {
  EXPECT_TRUE(replicas(0).empty());
}

TEST(ResolverPoolTest, MetroPlacementCapsAtAnnouncingAses) {
  // Asking for more replicas than there are announcing ASes must terminate
  // and return only distinct announcing ASes, not loop or repeat.
  const std::size_t available = shared_internet().edge_ases().size();
  const auto placed = replicas(available + 10);
  EXPECT_LE(placed.size(), available);
  EXPECT_GT(placed.size(), 0u);
  EXPECT_EQ(std::set<AsId>(placed.begin(), placed.end()).size(),
            placed.size());
  for (const AsId as : placed) {
    const auto& edges = shared_internet().edge_ases();
    EXPECT_NE(std::find(edges.begin(), edges.end(), as), edges.end());
  }
}

TEST(ResolverPoolTest, DuplicateReplicasDeduplicated) {
  const auto base = replicas(3);
  const ResolverPool pool(
      fabric(), {base[0], base[1], base[0], base[2], base[1]});
  ASSERT_EQ(pool.replicas().size(), 3u);
  EXPECT_EQ(pool.replicas()[0], base[0]);
  EXPECT_EQ(pool.replicas()[1], base[1]);
  EXPECT_EQ(pool.replicas()[2], base[2]);
  // One device->primary message plus two relays — duplicates no longer
  // inflate the update cost.
  EXPECT_EQ(pool.update_message_count(), 3u);
}

TEST(ResolverPoolTest, SingleReplicaUpdateCostsExactlyOneMessage) {
  const ResolverPool pool(fabric(), replicas(1));
  EXPECT_EQ(pool.update_message_count(), 1u);  // no relays to send
}

TEST(ResolverPoolTest, ReplicaIndexRoundTripsAndThrows) {
  const ResolverPool pool(fabric(), replicas(4));
  for (std::size_t i = 0; i < pool.replicas().size(); ++i) {
    EXPECT_EQ(pool.replica_index(pool.replicas()[i]), i);
  }
  AsId absent = 0;
  while (std::find(pool.replicas().begin(), pool.replicas().end(), absent) !=
         pool.replicas().end()) {
    ++absent;
  }
  EXPECT_THROW((void)pool.replica_index(absent), std::invalid_argument);
}

TEST(ResolverPoolTest, NearestLiveReplicaFailsOverToSecondNearest) {
  const ResolverPool pool(fabric(), replicas(6));
  const AsId client = shared_internet().edge_ases()[0];
  const AsId nearest = pool.nearest_replica(client);

  FailurePlan plan;
  plan.resolver_crash(nearest, 0.0, 1000.0);

  const auto live = pool.nearest_live_replica(client, plan, 500.0);
  ASSERT_TRUE(live.has_value());
  EXPECT_NE(*live, nearest);
  // It must be the best among the survivors.
  const double live_delay = *fabric().path_delay_ms(client, *live);
  for (const AsId replica : pool.replicas()) {
    if (replica == nearest) continue;
    EXPECT_LE(live_delay, *fabric().path_delay_ms(client, replica) + 1e-9);
  }
  // After the repair the preferred replica is live again.
  EXPECT_EQ(pool.nearest_live_replica(client, plan, 1500.0), nearest);
}

TEST(ResolverPoolTest, NearestLiveReplicaNoneWhenAllDown) {
  const auto base = replicas(3);
  const ResolverPool pool(fabric(), base);
  FailurePlan plan;
  for (const AsId replica : base) plan.resolver_crash(replica, 0.0, 1000.0);
  EXPECT_FALSE(pool.nearest_live_replica(shared_internet().edge_ases()[0],
                                         plan, 500.0)
                   .has_value());
}

TEST(ResolverPoolTest, NearestReplicaIsNearest) {
  const ResolverPool pool(fabric(), replicas(6));
  for (std::size_t i = 0; i < 40; i += 7) {
    const AsId client = shared_internet().edge_ases()[i];
    const AsId nearest = pool.nearest_replica(client);
    const double d = *fabric().path_delay_ms(client, nearest);
    for (const AsId replica : pool.replicas()) {
      EXPECT_LE(d, *fabric().path_delay_ms(client, replica) + 1e-9);
    }
    EXPECT_DOUBLE_EQ(pool.nearest_replica_delay_ms(client), d);
  }
}

TEST(ResolverPoolTest, MoreReplicasCutLookupLatency) {
  const ResolverPool small(fabric(), replicas(1));
  const ResolverPool large(fabric(), replicas(12));
  double small_sum = 0.0, large_sum = 0.0;
  for (std::size_t i = 0; i < 60; i += 3) {
    const AsId client = shared_internet().edge_ases()[i];
    small_sum += small.nearest_replica_delay_ms(client);
    large_sum += large.nearest_replica_delay_ms(client);
  }
  EXPECT_LT(large_sum, small_sum);
}

TEST(ResolverPoolTest, PropagationPrimaryFirst) {
  const ResolverPool pool(fabric(), replicas(6));
  const AsId device = shared_internet().edge_ases()[5];
  const auto times = pool.propagation_times_ms(device, 100.0);
  ASSERT_EQ(times.size(), 6u);
  const AsId primary = pool.nearest_replica(device);
  double primary_time = 0.0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (pool.replicas()[i] == primary) primary_time = times[i];
  }
  for (const double t : times) {
    EXPECT_GE(t, primary_time);
    EXPECT_GE(t, 100.0);
  }
  EXPECT_EQ(pool.update_message_count(), 6u);
}

TEST(ReplicatedResolutionTest, RequiresReplicas) {
  SessionConfig config;
  config.correspondent = shared_internet().edge_ases()[0];
  config.schedule = {{0.0, shared_internet().edge_ases()[10]}};
  EXPECT_THROW((void)simulate_session(
                   fabric(), SimArchitecture::kReplicatedResolution, config),
               std::invalid_argument);
}

TEST(ReplicatedResolutionTest, StationaryFullDelivery) {
  SessionConfig config;
  config.correspondent = shared_internet().edge_ases()[0];
  config.schedule = {{0.0, shared_internet().edge_ases()[10]}};
  config.duration_ms = 2000.0;
  config.packet_interval_ms = 50.0;
  config.resolver_replicas = replicas(6);
  const auto stats = simulate_session(
      fabric(), SimArchitecture::kReplicatedResolution, config);
  EXPECT_EQ(stats.packets_delivered, stats.packets_sent);
  EXPECT_NEAR(stats.stretch.quantile(0.5), 1.0, 1e-6);
}

TEST(ReplicatedResolutionTest, UpdatesCostOneMessagePerReplica) {
  SessionConfig config;
  config.correspondent = shared_internet().edge_ases()[0];
  config.schedule = {{0.0, shared_internet().edge_ases()[10]},
                     {1000.0, shared_internet().edge_ases()[20]}};
  config.duration_ms = 2000.0;
  config.resolver_ttl_ms = 5000.0;  // no periodic lookups in-window
  config.resolver_replicas = replicas(6);
  const auto stats = simulate_session(
      fabric(), SimArchitecture::kReplicatedResolution, config);
  EXPECT_EQ(stats.control_messages, 6u);  // one move x 6 replicas
}

TEST(ScopedNameBasedTest, ScopeCutsControlCost) {
  SessionConfig config;
  config.correspondent = shared_internet().edge_ases()[0];
  const auto local =
      shared_internet().edge_ases_near(topology::metro_anchors()[0], 3);
  config.schedule = {{0.0, local[0]}, {1000.0, local[1]},
                     {2000.0, local[2]}};
  config.duration_ms = 4000.0;
  config.packet_interval_ms = 20.0;

  const auto global =
      simulate_session(fabric(), SimArchitecture::kNameBased, config);
  config.update_scope_hops = 2;
  const auto scoped =
      simulate_session(fabric(), SimArchitecture::kNameBased, config);

  // The synthetic AS graph is shallow (diameter ~6), so even a 2-hop scope
  // reaches a sizable neighborhood; the claim is a substantial cut, not an
  // order of magnitude.
  EXPECT_LT(scoped.control_messages, global.control_messages / 2);
  // Metro-local mobility: delivery stays high because packets routed to
  // the initial attachment pass through the updated scope.
  EXPECT_GT(scoped.delivery_ratio(), 0.7);
}

TEST(ScopedNameBasedTest, ScopedStretchAtMostModest) {
  SessionConfig config;
  config.correspondent = shared_internet().edge_ases()[0];
  const auto local =
      shared_internet().edge_ases_near(topology::metro_anchors()[1], 2);
  config.schedule = {{0.0, local[0]}, {1500.0, local[1]}};
  config.duration_ms = 3000.0;
  config.update_scope_hops = 3;
  const auto stats =
      simulate_session(fabric(), SimArchitecture::kNameBased, config);
  // Packets may detour via the initial attachment's region: bounded
  // stretch, not collapse.
  EXPECT_GT(stats.delivery_ratio(), 0.7);
  EXPECT_LT(stats.stretch.quantile(0.5), 3.0);
}

}  // namespace
}  // namespace lina::sim
