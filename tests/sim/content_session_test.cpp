#include "lina/sim/content_session.hpp"

#include <gtest/gtest.h>

#include "../support/fixtures.hpp"

namespace lina::sim {
namespace {

using lina::testing::shared_internet;
using topology::AsId;

const ForwardingFabric& fabric() {
  static const ForwardingFabric instance(shared_internet());
  return instance;
}

AsId edge(std::size_t i) { return shared_internet().edge_ases()[i]; }

ContentSessionConfig base_config() {
  ContentSessionConfig config;
  config.consumer = edge(0);
  config.publisher_schedule = {{0.0, edge(30)}};
  config.catalog_segments = 200;
  config.zipf_exponent = 1.0;
  config.request_interval_ms = 10.0;
  config.duration_ms = 5000.0;
  config.cache_capacity = 64;
  return config;
}

TEST(ContentSessionTest, Validation) {
  ContentSessionConfig config = base_config();
  config.publisher_schedule.clear();
  EXPECT_THROW((void)simulate_content_session(fabric(), config),
               std::invalid_argument);
  config = base_config();
  config.catalog_segments = 0;
  EXPECT_THROW((void)simulate_content_session(fabric(), config),
               std::invalid_argument);
  config = base_config();
  config.request_interval_ms = 0.0;
  EXPECT_THROW((void)simulate_content_session(fabric(), config),
               std::invalid_argument);
}

TEST(ContentSessionTest, StationaryPublisherFullReachability) {
  const auto stats = simulate_content_session(fabric(), base_config());
  EXPECT_EQ(stats.interests_sent, 500u);
  EXPECT_EQ(stats.unsatisfied, 0u);
  EXPECT_NEAR(stats.reachability(), 1.0, 1e-9);
  EXPECT_GT(stats.satisfied_from_publisher, 0u);
}

TEST(ContentSessionTest, CachingAbsorbsTheZipfHead) {
  const auto cached = simulate_content_session(fabric(), base_config());
  ContentSessionConfig no_cache = base_config();
  no_cache.cache_capacity = 0;
  const auto uncached = simulate_content_session(fabric(), no_cache);

  EXPECT_GT(cached.cache_hit_ratio(), 0.3);
  EXPECT_EQ(uncached.satisfied_from_cache, 0u);
  // Cache hits terminate at (or near) the consumer: faster retrieval.
  EXPECT_LT(cached.retrieval_delay_ms.quantile(0.5),
            uncached.retrieval_delay_ms.quantile(0.5));
  // The publisher serves fewer interests.
  EXPECT_LT(cached.satisfied_from_publisher,
            uncached.satisfied_from_publisher);
}

TEST(ContentSessionTest, BiggerCachesHitMore) {
  ContentSessionConfig small = base_config();
  small.cache_capacity = 4;
  ContentSessionConfig large = base_config();
  large.cache_capacity = 128;
  const auto small_stats = simulate_content_session(fabric(), small);
  const auto large_stats = simulate_content_session(fabric(), large);
  EXPECT_GE(large_stats.cache_hit_ratio(), small_stats.cache_hit_ratio());
}

TEST(ContentSessionTest, PublisherMobilityBreaksUncachedReachability) {
  // §8: on-path caching "does not suffice to ensure reachability to at
  // least one copy" — while router beliefs are stale, only cached
  // segments survive.
  ContentSessionConfig config = base_config();
  config.publisher_schedule = {{0.0, edge(30)},
                               {1500.0, edge(80)},
                               {3000.0, edge(120)}};
  config.update_hop_ms = 60.0;  // slow convergence
  const auto stats = simulate_content_session(fabric(), config);
  EXPECT_GT(stats.unsatisfied, 0u);
  EXPECT_LT(stats.reachability(), 1.0);
  // But the cached head keeps serving: hits continue despite staleness.
  EXPECT_GT(stats.satisfied_from_cache, 0u);
}

TEST(ContentSessionTest, FastUpdatesRestoreReachability) {
  ContentSessionConfig slow = base_config();
  slow.publisher_schedule = {{0.0, edge(30)}, {2500.0, edge(80)}};
  slow.update_hop_ms = 80.0;
  ContentSessionConfig fast = slow;
  fast.update_hop_ms = 1.0;
  const auto slow_stats = simulate_content_session(fabric(), slow);
  const auto fast_stats = simulate_content_session(fabric(), fast);
  EXPECT_GE(fast_stats.reachability(), slow_stats.reachability());
}

TEST(ContentSessionTest, DeterministicForSeed) {
  const auto a = simulate_content_session(fabric(), base_config());
  const auto b = simulate_content_session(fabric(), base_config());
  EXPECT_EQ(a.satisfied_from_cache, b.satisfied_from_cache);
  EXPECT_EQ(a.satisfied_from_publisher, b.satisfied_from_publisher);
}

TEST(ContentSessionTest, SteeperPopularityCachesBetter) {
  ContentSessionConfig uniformish = base_config();
  uniformish.zipf_exponent = 0.2;
  ContentSessionConfig steep = base_config();
  steep.zipf_exponent = 1.4;
  const auto flat_stats = simulate_content_session(fabric(), uniformish);
  const auto steep_stats = simulate_content_session(fabric(), steep);
  EXPECT_GT(steep_stats.cache_hit_ratio(), flat_stats.cache_hit_ratio());
}

}  // namespace
}  // namespace lina::sim
