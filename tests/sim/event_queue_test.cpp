#include "lina/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace lina::sim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(5.0, [&] { order.push_back(2); });
  queue.schedule(1.0, [&] { order.push_back(1); });
  queue.schedule(9.0, [&] { order.push_back(3); });
  EXPECT_EQ(queue.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 9.0);
}

TEST(EventQueueTest, EqualTimesFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CallbacksCanScheduleMore) {
  EventQueue queue;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 4) queue.schedule_in(1.0, chain);
  };
  queue.schedule(0.0, chain);
  queue.run();
  EXPECT_EQ(fired, 4);
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueueTest, RejectsNaNAndInfiniteTimes) {
  // Regression: a NaN compares false against everything, so the old
  // `delay_ms < 0.0` guard let NaN through and silently corrupted the
  // heap order. Both entry points must reject it loudly.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EventQueue queue;
  EXPECT_THROW(queue.schedule_in(nan, [] {}), std::invalid_argument);
  EXPECT_THROW(queue.schedule_in(-nan, [] {}), std::invalid_argument);
  EXPECT_THROW(queue.schedule(nan, [] {}), std::invalid_argument);
  EXPECT_THROW(queue.schedule(inf, [] {}), std::invalid_argument);
  EXPECT_THROW(queue.schedule_in(inf, [] {}), std::invalid_argument);
  EXPECT_THROW(queue.schedule_in(-1e-9, [] {}), std::invalid_argument);
  // The queue stays usable (and ordered) after the rejections.
  std::vector<int> order;
  queue.schedule(2.0, [&] { order.push_back(2); });
  queue.schedule(1.0, [&] { order.push_back(1); });
  EXPECT_EQ(queue.run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, RejectsPastAndEmpty) {
  EventQueue queue;
  queue.schedule(5.0, [] {});
  queue.run();
  EXPECT_THROW(queue.schedule(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(queue.schedule_in(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(queue.schedule(10.0, nullptr), std::invalid_argument);
}

TEST(EventQueueTest, RunNextOnEmpty) {
  EventQueue queue;
  EXPECT_FALSE(queue.run_next());
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.run(), 0u);
}

TEST(EventQueueTest, MaxEventsBound) {
  EventQueue queue;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(static_cast<double>(i), [&] { ++fired; });
  }
  EXPECT_EQ(queue.run(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(queue.pending(), 7u);
}

}  // namespace
}  // namespace lina::sim
