// Resilience suite: fault injection through the fabric, the four
// architecture simulators, and the content-session simulator. Runs under
// the `resilience` ctest label (tier-1 includes it, sanitizer preset
// filters on it).

#include <gtest/gtest.h>

#include <vector>

#include "../support/fixtures.hpp"
#include "lina/sim/content_session.hpp"
#include "lina/sim/failure_plan.hpp"
#include "lina/sim/resolver_pool.hpp"
#include "lina/sim/session.hpp"
#include "lina/topology/graph.hpp"

namespace lina::sim {
namespace {

using lina::testing::shared_internet;
using topology::AsId;

const ForwardingFabric& fabric() {
  static const ForwardingFabric instance(shared_internet());
  return instance;
}

AsId edge(std::size_t i) { return shared_internet().edge_ases()[i]; }

/// The policy route as the sequence of ASes from `from` to `to`.
std::vector<AsId> policy_route(AsId from, AsId to) {
  std::vector<AsId> route{from};
  AsId current = from;
  while (current != to) {
    current = *fabric().next_hop(current, to);
    route.push_back(current);
  }
  return route;
}

SessionConfig stationary_config() {
  SessionConfig config;
  config.correspondent = edge(0);
  config.schedule = {{0.0, edge(25)}};
  config.packet_interval_ms = 50.0;
  config.duration_ms = 10000.0;
  return config;
}

void expect_identical(const SessionStats& a, const SessionStats& b) {
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.packets_lost, b.packets_lost);
  EXPECT_EQ(a.control_messages, b.control_messages);
  EXPECT_EQ(a.control_retries, b.control_retries);
  EXPECT_EQ(a.packets_sent_during_failure, b.packets_sent_during_failure);
  EXPECT_EQ(a.packets_delivered_during_failure,
            b.packets_delivered_during_failure);
  // Bit-identical sample sets, not just close: the fault layer must be
  // zero-cost when disabled.
  EXPECT_EQ(a.delivery_delay_ms.sorted_samples(),
            b.delivery_delay_ms.sorted_samples());
  EXPECT_EQ(a.stretch.sorted_samples(), b.stretch.sorted_samples());
  EXPECT_EQ(a.outage_ms.sorted_samples(), b.outage_ms.sorted_samples());
  EXPECT_TRUE(a.recovery_ms.empty());
  EXPECT_TRUE(b.recovery_ms.empty());
}

TEST(ResilienceRegressionTest, EmptyPlanIsBitIdenticalToNoPlan) {
  const auto local =
      shared_internet().edge_ases_near(topology::metro_anchors()[0], 4);
  SessionConfig config;
  config.correspondent = edge(0);
  config.schedule = {{0.0, local[0]},
                     {2000.0, local[1]},
                     {4000.0, local[2]},
                     {6000.0, local[3]}};
  config.packet_interval_ms = 20.0;
  config.duration_ms = 8000.0;
  config.resolver_ttl_ms = 150.0;
  config.resolver_replicas = ResolverPool::metro_placement(shared_internet(), 6);

  const FailurePlan empty_plan;
  for (const auto arch :
       {SimArchitecture::kIndirection, SimArchitecture::kNameResolution,
        SimArchitecture::kNameBased, SimArchitecture::kReplicatedResolution}) {
    SCOPED_TRACE(sim_architecture_name(arch));
    SessionConfig with_plan = config;
    with_plan.failures = &empty_plan;
    expect_identical(simulate_session(fabric(), arch, config),
                     simulate_session(fabric(), arch, with_plan));
  }
}

TEST(ResilienceRegressionTest, EmptyPlanContentSessionBitIdentical) {
  ContentSessionConfig config;
  config.consumer = edge(0);
  config.publisher_schedule = {{0.0, edge(40)}, {5000.0, edge(41)}};
  config.duration_ms = 10000.0;

  ContentSessionConfig with_plan = config;
  const FailurePlan empty_plan;
  with_plan.failures = &empty_plan;

  const auto a = simulate_content_session(fabric(), config);
  const auto b = simulate_content_session(fabric(), with_plan);
  EXPECT_EQ(a.interests_sent, b.interests_sent);
  EXPECT_EQ(a.satisfied_from_cache, b.satisfied_from_cache);
  EXPECT_EQ(a.satisfied_from_publisher, b.satisfied_from_publisher);
  EXPECT_EQ(a.unsatisfied, b.unsatisfied);
  EXPECT_EQ(a.retrieval_delay_ms.sorted_samples(),
            b.retrieval_delay_ms.sorted_samples());
}

TEST(FailureAwareFabricTest, ReroutesAroundDeadTransitAs) {
  const AsId from = edge(0);
  const AsId to = edge(25);
  const auto route = policy_route(from, to);
  ASSERT_GE(route.size(), 3u) << "need a transit AS to kill";
  const AsId dead = route[route.size() / 2];

  FailurePlan plan;
  plan.as_outage(dead, 1000.0, 2000.0);

  // Outside the window: identical to the base queries.
  EXPECT_EQ(fabric().path_delay_ms(from, to, plan, 500.0),
            fabric().path_delay_ms(from, to));
  EXPECT_EQ(fabric().next_hop(from, to, plan, 2500.0),
            fabric().next_hop(from, to));

  // Inside: a detour exists and never traverses the dead AS.
  ASSERT_TRUE(fabric().policy_path_impaired(from, to, plan, 1500.0));
  const auto detour_delay = fabric().path_delay_ms(from, to, plan, 1500.0);
  ASSERT_TRUE(detour_delay.has_value());
  EXPECT_GT(*detour_delay, 0.0);
  AsId current = from;
  std::size_t guard = 0;
  while (current != to) {
    const auto next = fabric().next_hop(current, to, plan, 1500.0);
    ASSERT_TRUE(next.has_value());
    EXPECT_NE(*next, dead);
    current = *next;
    ASSERT_LT(++guard, shared_internet().graph().as_count());
  }
}

TEST(FailureAwareFabricTest, DeadEndpointIsUnroutable) {
  const AsId from = edge(0);
  const AsId to = edge(25);
  FailurePlan plan;
  plan.as_outage(to, 0.0, 1000.0);
  EXPECT_FALSE(fabric().path_delay_ms(from, to, plan, 500.0).has_value());
  EXPECT_FALSE(fabric().next_hop(from, to, plan, 500.0).has_value());
  EXPECT_TRUE(fabric().path_delay_ms(from, to, plan, 1500.0).has_value());
}

TEST(FailureAwareFabricTest, RoutesAroundCutLastLink) {
  // A multihomed destination stub: cutting the link its best route enters
  // through forces a valley-free detour via another provider. (Cutting a
  // single-homed AS's only uplink is *correctly* unroutable under policy
  // reconvergence, so the scenario needs a stub with >= 2 providers.)
  const auto& graph = shared_internet().graph();
  const AsId from = edge(0);
  AsId to = topology::kNoNode;
  for (const AsId as : shared_internet().edge_ases()) {
    if (as != from && graph.tier(as) == topology::AsTier::kStub &&
        graph.degree(as) >= 2) {
      to = as;
      break;
    }
  }
  ASSERT_NE(to, topology::kNoNode);
  const auto route = policy_route(from, to);
  ASSERT_GE(route.size(), 2u);
  const AsId penultimate = route[route.size() - 2];
  FailurePlan plan;
  plan.link_cut(penultimate, to, 0.0, 1000.0);

  ASSERT_TRUE(fabric().path_delay_ms(from, to, plan, 500.0).has_value());
  // Hop-by-hop forwarding reaches the destination without ever crossing
  // the cut adjacency.
  AsId current = from;
  std::size_t guard = 0;
  while (current != to) {
    const auto next = fabric().next_hop(current, to, plan, 500.0);
    ASSERT_TRUE(next.has_value());
    EXPECT_FALSE(current == penultimate && *next == to);
    current = *next;
    ASSERT_LT(++guard, 300u);
  }
}

TEST(ResilienceSessionTest, IndirectionLosesPacketsForFullHomeOutage) {
  SessionConfig config = stationary_config();
  config.home_as = edge(100);  // far home: all packets triangle through it
  FailurePlan plan;
  plan.home_agent_crash(*config.home_as, 2000.0, 6000.0);
  config.failures = &plan;

  const auto stats =
      simulate_session(fabric(), SimArchitecture::kIndirection, config);
  // Packets sent during the outage die at the dead agent for the whole
  // window (no failover target exists); delivery resumes after repair.
  EXPECT_EQ(stats.packets_sent, 200u);
  EXPECT_GE(stats.packets_sent_during_failure, 78u);
  EXPECT_GT(stats.failure_loss_fraction(), 0.9);
  EXPECT_LT(stats.delivery_ratio(), 0.7);
  EXPECT_GT(stats.delivery_ratio(), 0.5);  // outside the window all deliver
  ASSERT_FALSE(stats.recovery_ms.empty());
  // Recovery is fast: the first packet sent after the repair gets through.
  EXPECT_LT(stats.recovery_ms.quantile(0.5), 1000.0);
}

TEST(ResilienceSessionTest, IndirectionRegistrationRetriesUntilRepair) {
  SessionConfig config = stationary_config();
  config.home_as = edge(100);
  config.schedule.push_back({3000.0, edge(26)});  // move during the outage
  FailurePlan plan;
  plan.home_agent_crash(*config.home_as, 2000.0, 6000.0);
  config.failures = &plan;

  const auto stats =
      simulate_session(fabric(), SimArchitecture::kIndirection, config);
  // The in-outage registration must be retransmitted with backoff until
  // the agent recovers; then delivery resumes to the new attachment.
  EXPECT_GT(stats.control_retries, 0u);
  EXPECT_GT(stats.control_messages, 1u);  // original + retries
  ASSERT_FALSE(stats.recovery_ms.empty());
  // Packets delivered after the repair (the tail of the session).
  EXPECT_GT(stats.packets_delivered, 100u);
}

TEST(ResilienceSessionTest, SingleResolverCrashCausesStaleLoss) {
  SessionConfig config = stationary_config();
  config.resolver_as = edge(50);
  config.resolver_ttl_ms = 300.0;
  config.schedule.push_back({3000.0, edge(26)});  // move during the outage

  SessionConfig healthy = config;
  FailurePlan plan;
  plan.resolver_crash(edge(50), 2000.0, 8000.0);
  config.failures = &plan;

  const auto broken =
      simulate_session(fabric(), SimArchitecture::kNameResolution, config);
  const auto baseline =
      simulate_session(fabric(), SimArchitecture::kNameResolution, healthy);
  // With the resolver dead across the move, the correspondent keeps
  // streaming to the stale attachment: much worse than healthy.
  EXPECT_LT(broken.delivery_ratio(), baseline.delivery_ratio() - 0.2);
  EXPECT_GT(broken.control_retries, 0u);  // lookups and the registration retry
  // After the repair the next lookup refreshes the cache and delivery
  // resumes.
  ASSERT_FALSE(broken.recovery_ms.empty());
}

TEST(ResilienceSessionTest, ReplicatedResolutionFailsOverWithinOneBackoff) {
  const auto replicas = ResolverPool::metro_placement(shared_internet(), 6);
  const ResolverPool pool(fabric(), replicas);

  SessionConfig config = stationary_config();
  config.resolver_replicas = replicas;
  config.resolver_ttl_ms = 300.0;
  config.schedule.push_back({3000.0, edge(26)});  // move during the outage

  // Kill the correspondent's preferred (nearest) replica across the move.
  const AsId preferred = pool.nearest_replica(config.correspondent);
  FailurePlan plan;
  plan.resolver_crash(preferred, 2000.0, 8000.0);
  config.failures = &plan;

  const auto stats = simulate_session(
      fabric(), SimArchitecture::kReplicatedResolution, config);
  // The first post-crash lookup times out, retries once with backoff, and
  // the retry lands on the next-nearest live replica — so the correspondent
  // keeps tracking the device and delivery stays high.
  EXPECT_GT(stats.control_retries, 0u);
  EXPECT_GT(stats.delivery_ratio(), 0.85);
  ASSERT_FALSE(stats.outage_ms.empty());
  // Post-move outage bounded by TTL + one backoff + round trips, far less
  // than the 5-second overlap of outage and move.
  EXPECT_LT(stats.outage_ms.max(), 2000.0);
}

TEST(ResilienceSessionTest, ReplicationBeatsSingleResolverUnderCrash) {
  const auto replicas = ResolverPool::metro_placement(shared_internet(), 6);
  const ResolverPool pool(fabric(), replicas);
  const AsId preferred = pool.nearest_replica(edge(0));

  SessionConfig config = stationary_config();
  config.resolver_ttl_ms = 300.0;
  config.schedule.push_back({3000.0, edge(26)});
  FailurePlan plan;
  plan.resolver_crash(preferred, 2000.0, 8000.0);
  config.failures = &plan;

  SessionConfig single = config;
  single.resolver_as = preferred;
  SessionConfig replicated = config;
  replicated.resolver_replicas = replicas;

  const auto single_stats =
      simulate_session(fabric(), SimArchitecture::kNameResolution, single);
  const auto replicated_stats = simulate_session(
      fabric(), SimArchitecture::kReplicatedResolution, replicated);
  EXPECT_GT(replicated_stats.delivery_ratio(),
            single_stats.delivery_ratio() + 0.1);
}

TEST(ResilienceSessionTest, NameBasedDegradesOnlyByStretchUnderAsOutage) {
  SessionConfig config = stationary_config();
  const auto route = policy_route(config.correspondent,
                                  config.schedule.front().as);
  ASSERT_GE(route.size(), 3u);
  FailurePlan plan;
  plan.as_outage(route[route.size() / 2], 2000.0, 8000.0);
  config.failures = &plan;

  const auto stats =
      simulate_session(fabric(), SimArchitecture::kNameBased, config);
  // No control element to crash: packets detour around the dead AS, so
  // delivery stays (near-)full — only the path degrades.
  EXPECT_GT(stats.delivery_ratio(), 0.95);
  EXPECT_GT(stats.packets_delivered_during_failure, 100u);
  ASSERT_FALSE(stats.stretch_degraded.empty());
  EXPECT_GT(stats.stretch_degraded.quantile(0.5), 1.0);
  EXPECT_TRUE(stats.recovery_ms.empty() ||
              stats.recovery_ms.quantile(0.5) < 500.0);
}

TEST(ResilienceSessionTest, UpdateLossDelaysConvergenceButRetriesRecover) {
  const auto local =
      shared_internet().edge_ases_near(topology::metro_anchors()[0], 3);
  SessionConfig config;
  config.correspondent = edge(0);
  config.schedule = {{0.0, local[0]}, {2000.0, local[1]}, {4000.0, local[2]}};
  config.packet_interval_ms = 20.0;
  config.duration_ms = 8000.0;
  config.resolver_as = edge(50);
  config.resolver_ttl_ms = 300.0;

  FailurePlan plan(99);
  plan.update_loss(0.9, 0.0, 8000.0);
  config.failures = &plan;

  const auto stats =
      simulate_session(fabric(), SimArchitecture::kNameResolution, config);
  // 90% of control messages vanish; exponential-backoff retransmission
  // still converges every registration and most lookups eventually.
  EXPECT_GT(stats.control_retries, 10u);
  EXPECT_GT(stats.delivery_ratio(), 0.5);
}

TEST(ResilienceContentTest, PublisherOutageDegradesUncachedTail) {
  ContentSessionConfig config;
  config.consumer = edge(0);
  config.publisher_schedule = {{0.0, edge(40)}};
  config.duration_ms = 16000.0;
  config.cache_capacity = 64;

  ContentSessionConfig broken = config;
  FailurePlan plan;
  plan.as_outage(edge(40), 8000.0, 16000.0);
  broken.failures = &plan;

  const auto healthy_stats = simulate_content_session(fabric(), config);
  const auto broken_stats = simulate_content_session(fabric(), broken);
  // The popular head keeps being served from on-path caches through the
  // outage; the uncached tail is lost — reachability drops but does not
  // collapse (§8: caching helps, yet "does not suffice").
  EXPECT_LT(broken_stats.reachability(), healthy_stats.reachability());
  EXPECT_GT(broken_stats.satisfied_from_cache, 0u);
  EXPECT_GT(broken_stats.reachability(), 0.2);
}

}  // namespace
}  // namespace lina::sim
