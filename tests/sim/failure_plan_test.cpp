#include "lina/sim/failure_plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lina::sim {
namespace {

TEST(FailurePlanTest, ValidatesWindows) {
  FailurePlan plan;
  EXPECT_THROW(plan.as_outage(1, 100.0, 100.0), std::invalid_argument);
  EXPECT_THROW(plan.as_outage(1, 200.0, 100.0), std::invalid_argument);
  EXPECT_THROW(plan.as_outage(1, -5.0, 100.0), std::invalid_argument);
  EXPECT_THROW(plan.link_cut(3, 3, 0.0, 100.0), std::invalid_argument);
  EXPECT_THROW(plan.update_loss(1.5, 0.0, 100.0), std::invalid_argument);
  EXPECT_THROW(plan.update_loss(-0.1, 0.0, 100.0), std::invalid_argument);
  EXPECT_TRUE(plan.empty());  // nothing invalid was recorded
}

TEST(FailurePlanTest, WindowSemantics) {
  FailurePlan plan;
  plan.as_outage(7, 100.0, 200.0);
  EXPECT_FALSE(plan.as_down(7, 99.9));
  EXPECT_TRUE(plan.as_down(7, 100.0));  // start inclusive
  EXPECT_TRUE(plan.as_down(7, 199.9));
  EXPECT_FALSE(plan.as_down(7, 200.0));  // end exclusive: repair instant
  EXPECT_FALSE(plan.as_down(8, 150.0));
  EXPECT_TRUE(plan.any_active(150.0));
  EXPECT_TRUE(plan.data_plane_impaired(150.0));
  EXPECT_FALSE(plan.data_plane_impaired(250.0));
}

TEST(FailurePlanTest, LinkCutIsBidirectional) {
  FailurePlan plan;
  plan.link_cut(3, 9, 0.0, 50.0);
  EXPECT_TRUE(plan.link_down(3, 9, 10.0));
  EXPECT_TRUE(plan.link_down(9, 3, 10.0));
  EXPECT_FALSE(plan.link_down(3, 8, 10.0));
  EXPECT_FALSE(plan.link_down(3, 9, 60.0));
}

TEST(FailurePlanTest, AsOutageImpliesProcessCrashes) {
  FailurePlan plan;
  plan.as_outage(5, 0.0, 100.0);
  EXPECT_TRUE(plan.home_agent_down(5, 50.0));
  EXPECT_TRUE(plan.resolver_down(5, 50.0));

  FailurePlan crash_only;
  crash_only.home_agent_crash(5, 0.0, 100.0);
  EXPECT_TRUE(crash_only.home_agent_down(5, 50.0));
  EXPECT_FALSE(crash_only.resolver_down(5, 50.0));
  EXPECT_FALSE(crash_only.as_down(5, 50.0));  // the AS still forwards
  EXPECT_FALSE(crash_only.data_plane_impaired(50.0));
  EXPECT_TRUE(crash_only.any_active(50.0));
}

TEST(FailurePlanTest, MessageLossCoinIsDeterministicAndSeeded) {
  FailurePlan a(42), b(42), c(7);
  for (FailurePlan* plan : {&a, &b, &c}) plan->update_loss(0.5, 0.0, 1000.0);
  bool any_lost = false, any_kept = false, differs_across_seeds = false;
  for (std::uint64_t id = 0; id < 200; ++id) {
    const bool lost = a.control_message_lost(id, 500.0);
    EXPECT_EQ(lost, b.control_message_lost(id, 500.0));  // same seed agrees
    if (lost != c.control_message_lost(id, 500.0)) differs_across_seeds = true;
    any_lost |= lost;
    any_kept |= !lost;
    EXPECT_FALSE(a.control_message_lost(id, 1500.0));  // outside the window
  }
  EXPECT_TRUE(any_lost);
  EXPECT_TRUE(any_kept);
  EXPECT_TRUE(differs_across_seeds);
}

TEST(FailurePlanTest, MessageLossExtremes) {
  FailurePlan certain(1), never(1);
  certain.update_loss(1.0, 0.0, 100.0);
  never.update_loss(0.0, 0.0, 100.0);
  for (std::uint64_t id = 0; id < 50; ++id) {
    EXPECT_TRUE(certain.control_message_lost(id, 50.0));
    EXPECT_FALSE(never.control_message_lost(id, 50.0));
  }
}

TEST(FailurePlanTest, EpochsTrackDataPlaneBoundaries) {
  FailurePlan plan;
  plan.as_outage(1, 100.0, 200.0);
  plan.link_cut(2, 3, 150.0, 300.0);
  plan.resolver_crash(4, 50.0, 400.0);  // control-plane: no epoch boundary
  const std::size_t before = plan.data_plane_epoch(50.0);
  const std::size_t first = plan.data_plane_epoch(120.0);
  const std::size_t both = plan.data_plane_epoch(180.0);
  const std::size_t second_only = plan.data_plane_epoch(250.0);
  const std::size_t after = plan.data_plane_epoch(350.0);
  EXPECT_NE(before, first);
  EXPECT_NE(first, both);
  EXPECT_NE(both, second_only);
  EXPECT_NE(second_only, after);
}

TEST(FailurePlanTest, RepairTimesSortedDistinct) {
  FailurePlan plan;
  plan.as_outage(1, 100.0, 500.0);
  plan.link_cut(2, 3, 0.0, 200.0);
  plan.home_agent_crash(4, 50.0, 200.0);  // duplicate repair instant
  const auto repairs = plan.repair_times();
  ASSERT_EQ(repairs.size(), 2u);
  EXPECT_DOUBLE_EQ(repairs[0], 200.0);
  EXPECT_DOUBLE_EQ(repairs[1], 500.0);
}

TEST(FailurePlanTest, StampChangesOnMutation) {
  FailurePlan plan;
  const auto s0 = plan.stamp();
  plan.as_outage(1, 0.0, 10.0);
  const auto s1 = plan.stamp();
  EXPECT_NE(s0, s1);
  FailurePlan other;
  other.as_outage(1, 0.0, 10.0);
  EXPECT_NE(other.stamp(), s1);  // distinct plans never share a stamp
}

TEST(FailurePlanTest, KindNamesDistinct) {
  EXPECT_NE(failure_kind_name(FailureKind::kAsOutage),
            failure_kind_name(FailureKind::kLinkCut));
  EXPECT_NE(failure_kind_name(FailureKind::kHomeAgentCrash),
            failure_kind_name(FailureKind::kResolverCrash));
}

}  // namespace
}  // namespace lina::sim
