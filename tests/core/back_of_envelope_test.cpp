#include "lina/core/back_of_envelope.hpp"

#include <gtest/gtest.h>

namespace lina::core {
namespace {

TEST(BackOfEnvelopeTest, PaperDeviceMedianNumbers) {
  // §6.2: 2B devices x 3 moves/day x 3% -> ~2.1K updates/sec.
  const UpdateLoadEstimate median = device_scale_estimate();
  EXPECT_NEAR(median.updates_per_second(), 2083.0, 1.0);
}

TEST(BackOfEnvelopeTest, PaperDeviceMeanNumbers) {
  // §6.2: 2B devices x 7 moves/day x 3% -> ~4.8K updates/sec.
  const UpdateLoadEstimate mean = device_scale_estimate(2e9, 7.0, 0.03);
  EXPECT_NEAR(mean.updates_per_second(), 4861.0, 1.0);
}

TEST(BackOfEnvelopeTest, PaperContentNumbers) {
  // §7.3: 1B names x 2/day x 0.5% -> at most ~100 updates/sec.
  const UpdateLoadEstimate content = content_scale_estimate();
  EXPECT_NEAR(content.updates_per_second(), 115.7, 1.0);
  EXPECT_LT(content.updates_per_second(), 120.0);
}

TEST(BackOfEnvelopeTest, DeviceLoadDwarfsContentLoad) {
  // The paper's headline comparison: device mobility is prohibitively
  // expensive for name-based routing, content mobility is not.
  EXPECT_GT(device_scale_estimate().updates_per_second(),
            10.0 * content_scale_estimate().updates_per_second());
}

TEST(BackOfEnvelopeTest, DisplacedEntryFraction) {
  // §6.2: 3% update likelihood x 30% time away -> ~1% extra entries.
  EXPECT_NEAR(displaced_entry_fraction(), 0.009, 1e-12);
  EXPECT_NEAR(displaced_entry_fraction(0.14, 0.3), 0.042, 1e-12);
  EXPECT_DOUBLE_EQ(displaced_entry_fraction(0.0, 0.5), 0.0);
}

TEST(BackOfEnvelopeTest, ScalesLinearly) {
  const double base = device_scale_estimate(1e9, 3.0, 0.03)
                          .updates_per_second();
  EXPECT_NEAR(device_scale_estimate(2e9, 3.0, 0.03).updates_per_second(),
              2.0 * base, 1e-6);
  EXPECT_NEAR(device_scale_estimate(1e9, 6.0, 0.03).updates_per_second(),
              2.0 * base, 1e-6);
  EXPECT_NEAR(device_scale_estimate(1e9, 3.0, 0.06).updates_per_second(),
              2.0 * base, 1e-6);
}

}  // namespace
}  // namespace lina::core
