#include "lina/core/update_cost.hpp"

#include <gtest/gtest.h>

#include "../support/fixtures.hpp"
#include "lina/stats/summary.hpp"

namespace lina::core {
namespace {

using lina::testing::shared_content_catalog;
using lina::testing::shared_device_traces;
using lina::testing::shared_internet;

TEST(RouterUpdateStatsTest, RateHandlesZeroEvents) {
  const RouterUpdateStats empty{"r", 0, 0};
  EXPECT_DOUBLE_EQ(empty.rate(), 0.0);
  const RouterUpdateStats half{"r", 10, 5};
  EXPECT_DOUBLE_EQ(half.rate(), 0.5);
}

TEST(DeviceUpdateCostTest, OneStatsRowPerRouter) {
  const DeviceUpdateCostEvaluator evaluator(shared_internet().vantages());
  const auto stats = evaluator.evaluate(shared_device_traces());
  ASSERT_EQ(stats.size(), shared_internet().vantages().size());
  for (const RouterUpdateStats& s : stats) {
    EXPECT_FALSE(s.router.empty());
    EXPECT_LE(s.updates, s.events);
  }
}

TEST(DeviceUpdateCostTest, AllRoutersSeeSameEventCount) {
  const DeviceUpdateCostEvaluator evaluator(shared_internet().vantages());
  const auto stats = evaluator.evaluate(shared_device_traces());
  for (const RouterUpdateStats& s : stats) {
    EXPECT_EQ(s.events, stats.front().events);
  }
}

TEST(DeviceUpdateCostTest, Figure8Shape) {
  // Paper Figure 8: some routers see double-digit update rates, the median
  // router is low single digits, and distant edge routers are untouched.
  const DeviceUpdateCostEvaluator evaluator(shared_internet().vantages());
  const auto stats = evaluator.evaluate(shared_device_traces());
  double max_rate = 0.0;
  for (const RouterUpdateStats& s : stats) {
    max_rate = std::max(max_rate, s.rate());
    if (s.router == "Mauritius" || s.router == "Tokyo") {
      EXPECT_LT(s.rate(), 0.01) << s.router;
    }
  }
  EXPECT_GT(max_rate, 0.05);
  EXPECT_LT(max_rate, 0.5);
}

TEST(DeviceUpdateCostTest, SameAsMovesNeverUpdate) {
  // A trace that never leaves one AS cannot displace any router.
  stats::Rng rng(1);
  const auto as = shared_internet().edge_ases()[0];
  mobility::DeviceTrace trace(0, 1);
  double clock = 0.0;
  net::Ipv4Address addr = shared_internet().random_address_in(as, rng);
  for (int i = 0; i < 6; ++i) {
    trace.append({clock, 4.0, addr,
                  shared_internet().prefix_of(addr), as, false});
    clock += 4.0;
    addr = shared_internet().random_address_in(as, rng);
  }
  const std::vector<mobility::DeviceTrace> traces{std::move(trace)};
  const DeviceUpdateCostEvaluator evaluator(shared_internet().vantages());
  for (const RouterUpdateStats& s : evaluator.evaluate(traces)) {
    EXPECT_EQ(s.updates, 0u) << s.router;
  }
}

TEST(DeviceUpdateCostTest, PerDayEventsSumToTotal) {
  const DeviceUpdateCostEvaluator evaluator(shared_internet().vantages());
  const auto total = evaluator.evaluate(shared_device_traces());
  std::size_t events = 0, updates = 0;
  for (std::size_t day = 0; day < 7; ++day) {
    const auto daily = evaluator.evaluate_day(shared_device_traces(), day);
    events += daily[0].events;
    updates += daily[0].updates;
  }
  EXPECT_EQ(events, total[0].events);
  EXPECT_EQ(updates, total[0].updates);
}

TEST(DeviceUpdateCostTest, DayToDayRatesAreStable) {
  // §6.2 sensitivity: per-day update rates vary little (paper stddev
  // < 0.5% absolute over 20 days).
  const DeviceUpdateCostEvaluator evaluator(shared_internet().vantages());
  stats::RunningStats oregon;
  for (std::size_t day = 0; day < 7; ++day) {
    const auto daily = evaluator.evaluate_day(shared_device_traces(), day);
    oregon.add(daily.front().rate());
  }
  EXPECT_LT(oregon.stddev(), 0.03);
}

TEST(ContentUpdateCostTest, FloodingAtLeastBestPort) {
  const ContentUpdateCostEvaluator evaluator(shared_internet().vantages());
  const auto flooding = evaluator.evaluate(
      shared_content_catalog().popular,
      strategy::StrategyKind::kControlledFlooding);
  const auto best = evaluator.evaluate(shared_content_catalog().popular,
                                       strategy::StrategyKind::kBestPort);
  ASSERT_EQ(flooding.size(), best.size());
  for (std::size_t i = 0; i < flooding.size(); ++i) {
    EXPECT_EQ(flooding[i].events, best[i].events);
    EXPECT_GE(flooding[i].updates, best[i].updates) << flooding[i].router;
  }
}

TEST(ContentUpdateCostTest, PopularExceedsUnpopular) {
  // Figure 11(b) vs 11(c): unpopular content barely updates routers.
  const ContentUpdateCostEvaluator evaluator(shared_internet().vantages());
  const auto popular = evaluator.evaluate(
      shared_content_catalog().popular,
      strategy::StrategyKind::kControlledFlooding);
  const auto unpopular = evaluator.evaluate(
      shared_content_catalog().unpopular,
      strategy::StrategyKind::kControlledFlooding);
  double popular_max = 0.0, unpopular_max = 0.0;
  for (const auto& s : popular) popular_max = std::max(popular_max, s.rate());
  for (const auto& s : unpopular) {
    unpopular_max = std::max(unpopular_max, s.rate());
  }
  EXPECT_GT(popular_max, unpopular_max);
}

TEST(ContentUpdateCostTest, HistoryUnionCheapestOnRevisitHeavyTraces) {
  // §3.3.3: for a name flitting between two fixed locations, history-union
  // update cost approaches zero while best-port keeps paying.
  mobility::ContentTrace trace(names::ContentName::from_dns("flip.example"),
                               true, false, 1);
  stats::Rng rng(2);
  const auto a = shared_internet().random_address_in(
      shared_internet().edge_ases()[0], rng);
  const auto b = shared_internet().random_address_in(
      shared_internet().edge_ases()[1], rng);
  std::vector<net::Ipv4Address> set_a{a}, set_b{b};
  trace.observe(0.0, set_a);
  for (int t = 1; t < 20; ++t) {
    trace.observe(static_cast<double>(t), (t % 2 == 0) ? set_a : set_b);
  }
  const std::vector<mobility::ContentTrace> traces{std::move(trace)};
  const ContentUpdateCostEvaluator evaluator(shared_internet().vantages());
  const auto history = evaluator.evaluate(
      traces, strategy::StrategyKind::kHistoryUnion);
  const auto best =
      evaluator.evaluate(traces, strategy::StrategyKind::kBestPort);
  for (std::size_t i = 0; i < history.size(); ++i) {
    EXPECT_LE(history[i].updates, 1u) << history[i].router;
    EXPECT_LE(history[i].updates, best[i].updates + 1);
  }
}

TEST(ContentUpdateCostTest, EventCountsMatchTraceEvents) {
  const ContentUpdateCostEvaluator evaluator(shared_internet().vantages());
  std::size_t expected = 0;
  for (const auto& trace : shared_content_catalog().unpopular) {
    expected += trace.events().size();
  }
  const auto stats = evaluator.evaluate(shared_content_catalog().unpopular,
                                        strategy::StrategyKind::kBestPort);
  for (const auto& s : stats) EXPECT_EQ(s.events, expected);
}

}  // namespace
}  // namespace lina::core
