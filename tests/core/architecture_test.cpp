#include "lina/core/architecture.hpp"

#include <gtest/gtest.h>

#include "../support/fixtures.hpp"

namespace lina::core {
namespace {

using lina::testing::shared_content_catalog;
using lina::testing::shared_device_traces;
using lina::testing::shared_internet;

TEST(ArchitectureNameTest, AllKindsNamed) {
  EXPECT_EQ(architecture_name(ArchitectureKind::kIndirectionRouting),
            "indirection routing");
  EXPECT_EQ(architecture_name(ArchitectureKind::kNameResolution),
            "name resolution");
  EXPECT_EQ(architecture_name(ArchitectureKind::kNameBasedRouting),
            "name-based routing");
}

const std::vector<ArchitectureAssessment>& device_assessments() {
  static const std::vector<ArchitectureAssessment> result = [] {
    const ArchitectureComparison comparison(shared_internet(),
                                            shared_internet().vantages());
    return comparison.assess_devices(shared_device_traces());
  }();
  return result;
}

TEST(ArchitectureComparisonTest, ThreeAssessments) {
  ASSERT_EQ(device_assessments().size(), 3u);
  EXPECT_EQ(device_assessments()[0].kind,
            ArchitectureKind::kIndirectionRouting);
  EXPECT_EQ(device_assessments()[1].kind, ArchitectureKind::kNameResolution);
  EXPECT_EQ(device_assessments()[2].kind,
            ArchitectureKind::kNameBasedRouting);
}

TEST(ArchitectureComparisonTest, IndirectionTradesStretchForCheapUpdates) {
  const auto& indirection = device_assessments()[0];
  EXPECT_DOUBLE_EQ(indirection.nodes_updated_per_event, 1.0);
  EXPECT_GT(indirection.mean_extra_delay_ms, 0.0);
  EXPECT_DOUBLE_EQ(indirection.connection_setup_ms, 0.0);
}

TEST(ArchitectureComparisonTest, NameResolutionPaysOnlySetupLatency) {
  const auto& resolution = device_assessments()[1];
  EXPECT_DOUBLE_EQ(resolution.nodes_updated_per_event, 1.0);
  EXPECT_DOUBLE_EQ(resolution.mean_extra_delay_ms, 0.0);
  EXPECT_GT(resolution.connection_setup_ms, 0.0);
}

TEST(ArchitectureComparisonTest, NameBasedPaysUpdatesAndState) {
  const auto& name_based = device_assessments()[2];
  EXPECT_GT(name_based.nodes_updated_per_event, 1.0);
  EXPECT_DOUBLE_EQ(name_based.mean_extra_delay_ms, 0.0);
  EXPECT_DOUBLE_EQ(name_based.connection_setup_ms, 0.0);
  // Extra displaced-device entries on top of the base prefix table.
  EXPECT_GT(name_based.forwarding_entries,
            device_assessments()[0].forwarding_entries);
}

TEST(ArchitectureComparisonTest, ContentAssessmentsFavorNameBased) {
  const ArchitectureComparison comparison(shared_internet(),
                                          shared_internet().vantages());
  const auto content = comparison.assess_content(
      shared_content_catalog().popular, strategy::StrategyKind::kBestPort);
  ASSERT_EQ(content.size(), 3u);
  const auto device_nbr = device_assessments()[2].nodes_updated_per_event;
  const auto content_nbr = content[2].nodes_updated_per_event;
  // Key finding: name-based routing is far cheaper for content than for
  // devices.
  EXPECT_LT(content_nbr, device_nbr);
  // Name-based content tables benefit from LPM aggregation: fewer entries
  // than one per name.
  EXPECT_LT(content[2].forwarding_entries,
            static_cast<double>(shared_content_catalog().popular.size()));
}

TEST(ArchitectureComparisonTest, FloodingCostsMoreThanBestPort) {
  const ArchitectureComparison comparison(shared_internet(),
                                          shared_internet().vantages());
  const auto best = comparison.assess_content(
      shared_content_catalog().popular, strategy::StrategyKind::kBestPort);
  const auto flooding = comparison.assess_content(
      shared_content_catalog().popular,
      strategy::StrategyKind::kControlledFlooding);
  EXPECT_GE(flooding[2].nodes_updated_per_event,
            best[2].nodes_updated_per_event);
}

}  // namespace
}  // namespace lina::core
