#include "lina/core/fib_size.hpp"

#include <gtest/gtest.h>

#include "../support/fixtures.hpp"
#include "lina/core/back_of_envelope.hpp"
#include "lina/core/extent.hpp"
#include "lina/core/update_cost.hpp"

namespace lina::core {
namespace {

using lina::testing::shared_device_traces;
using lina::testing::shared_internet;

TEST(FibSizeTest, RejectsBadInputs) {
  EXPECT_THROW((void)evaluate_displaced_entries(shared_internet().vantages(),
                                                {}, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)evaluate_displaced_entries(
                   shared_internet().vantages(), shared_device_traces(), 0.0),
               std::invalid_argument);
}

TEST(FibSizeTest, OneTimelinePerRouter) {
  const auto timelines = evaluate_displaced_entries(
      shared_internet().vantages(), shared_device_traces(), 6.0);
  ASSERT_EQ(timelines.size(), shared_internet().vantages().size());
  for (const auto& timeline : timelines) {
    EXPECT_EQ(timeline.device_count, shared_device_traces().size());
    EXPECT_FALSE(timeline.samples.empty());
    EXPECT_LE(timeline.peak, timeline.device_count);
    EXPECT_GE(timeline.mean_fraction, 0.0);
    EXPECT_LE(timeline.mean_fraction, 1.0);
  }
}

TEST(FibSizeTest, PeakBoundsEverySample) {
  const auto timelines = evaluate_displaced_entries(
      shared_internet().vantages(), shared_device_traces(), 3.0);
  for (const auto& timeline : timelines) {
    for (const auto& [hour, displaced] : timeline.samples) {
      EXPECT_LE(displaced, timeline.peak);
      EXPECT_GE(hour, 0.0);
    }
  }
}

TEST(FibSizeTest, RemoteRoutersHoldNoExtraState) {
  // Mauritius/Tokyo never see port differences, so never displaced entries.
  const auto timelines = evaluate_displaced_entries(
      shared_internet().vantages(), shared_device_traces(), 6.0);
  for (const auto& timeline : timelines) {
    if (timeline.router == "Mauritius" || timeline.router == "Tokyo") {
      EXPECT_EQ(timeline.peak, 0u) << timeline.router;
      EXPECT_DOUBLE_EQ(timeline.mean_fraction, 0.0);
    }
  }
}

TEST(FibSizeTest, MeanTracksUpdateRateTimesAwayShare) {
  // The §6.2 back-of-the-envelope: displaced fraction ~ update rate x time
  // away from the dominant address. Verify the empirical mean is the same
  // order of magnitude as the estimate at the busiest router.
  const DeviceUpdateCostEvaluator update_eval(shared_internet().vantages());
  const auto update_stats = update_eval.evaluate(shared_device_traces());
  const auto extent = analyze_extent(shared_device_traces());
  const double away = 1.0 - extent.dominant_ip_share.quantile(0.5);

  const auto timelines = evaluate_displaced_entries(
      shared_internet().vantages(), shared_device_traces(), 2.0);
  for (std::size_t i = 0; i < timelines.size(); ++i) {
    const double estimate =
        displaced_entry_fraction(update_stats[i].rate(), away);
    if (estimate < 0.005) continue;  // skip near-zero routers
    EXPECT_GT(timelines[i].mean_fraction, estimate / 6.0)
        << timelines[i].router;
    EXPECT_LT(timelines[i].mean_fraction, estimate * 6.0)
        << timelines[i].router;
  }
}

TEST(FibSizeTest, StationaryPopulationNeverDisplaced) {
  stats::Rng rng(3);
  std::vector<mobility::DeviceTrace> traces;
  for (std::uint32_t u = 0; u < 5; ++u) {
    const auto as = shared_internet().edge_ases()[u];
    const auto addr = shared_internet().random_address_in(as, rng);
    mobility::DeviceTrace trace(u, 2);
    trace.append({0.0, 48.0, addr, shared_internet().prefix_of(addr), as,
                  false});
    traces.push_back(std::move(trace));
  }
  const auto timelines = evaluate_displaced_entries(
      shared_internet().vantages(), traces, 12.0);
  for (const auto& timeline : timelines) {
    EXPECT_EQ(timeline.peak, 0u) << timeline.router;
  }
}

TEST(FibSizeTest, ProjectionScalesLinearly) {
  DisplacedEntryTimeline timeline;
  timeline.mean_fraction = 0.01;
  EXPECT_DOUBLE_EQ(timeline.projected_extra_entries(2e9), 2e7);
}

}  // namespace
}  // namespace lina::core
