// Unit tests for the shared capped exponential backoff (extracted from
// the session simulator; both retrying simulators now consult the same
// arithmetic, so its edge cases are pinned here once).

#include "lina/core/backoff.hpp"

#include <gtest/gtest.h>

namespace lina::core {
namespace {

TEST(BackoffPolicy, FirstRetransmissionWaitsTheBaseDelay) {
  const BackoffPolicy policy{.max_attempts = 4,
                             .backoff_ms = 50.0,
                             .multiplier = 2.0,
                             .max_backoff_ms = 1000.0};
  EXPECT_DOUBLE_EQ(policy.delay_ms(0), 50.0);
}

TEST(BackoffPolicy, DelayGrowsByTheMultiplierPerAttempt) {
  const BackoffPolicy policy{.max_attempts = 8,
                             .backoff_ms = 10.0,
                             .multiplier = 3.0,
                             .max_backoff_ms = 1e9};
  EXPECT_DOUBLE_EQ(policy.delay_ms(1), 30.0);
  EXPECT_DOUBLE_EQ(policy.delay_ms(2), 90.0);
  EXPECT_DOUBLE_EQ(policy.delay_ms(5), 10.0 * 243.0);
}

TEST(BackoffPolicy, CapHoldsForLongOutages) {
  const BackoffPolicy policy{.max_attempts = 32,
                             .backoff_ms = 100.0,
                             .multiplier = 2.0,
                             .max_backoff_ms = 1000.0};
  EXPECT_DOUBLE_EQ(policy.delay_ms(3), 800.0);
  EXPECT_DOUBLE_EQ(policy.delay_ms(4), 1000.0);  // 1600 capped
  EXPECT_DOUBLE_EQ(policy.delay_ms(20), 1000.0);
}

TEST(BackoffPolicy, UnitMultiplierIsConstantCadence) {
  const BackoffPolicy policy{.max_attempts = 8,
                             .backoff_ms = 25.0,
                             .multiplier = 1.0,
                             .max_backoff_ms = 1000.0};
  EXPECT_DOUBLE_EQ(policy.delay_ms(0), 25.0);
  EXPECT_DOUBLE_EQ(policy.delay_ms(7), 25.0);
}

TEST(BackoffPolicy, AttemptsLeftCountsTheFirstTryAsAttemptZero) {
  const BackoffPolicy policy{.max_attempts = 3};
  EXPECT_TRUE(policy.attempts_left(0));   // may retransmit once
  EXPECT_TRUE(policy.attempts_left(1));   // and twice
  EXPECT_FALSE(policy.attempts_left(2));  // third attempt is the last
  EXPECT_FALSE(policy.attempts_left(100));

  const BackoffPolicy single{.max_attempts = 1};
  EXPECT_FALSE(single.attempts_left(0));  // one shot, no retransmissions
}

TEST(BackoffPolicy, ValidityRejectsUnrunnablePolicies) {
  EXPECT_TRUE(BackoffPolicy{}.valid());
  EXPECT_FALSE(BackoffPolicy{.max_attempts = 0}.valid());
  EXPECT_FALSE(BackoffPolicy{.backoff_ms = 0.0}.valid());
  EXPECT_FALSE(BackoffPolicy{.backoff_ms = -1.0}.valid());
  EXPECT_FALSE(BackoffPolicy{.multiplier = 0.5}.valid());
  EXPECT_FALSE(BackoffPolicy{.max_backoff_ms = 0.0}.valid());
}

}  // namespace
}  // namespace lina::core
