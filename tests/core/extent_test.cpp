#include "lina/core/extent.hpp"

#include <gtest/gtest.h>

#include "../support/fixtures.hpp"

namespace lina::core {
namespace {

using mobility::DeviceTrace;
using mobility::DeviceVisit;

DeviceVisit visit(double start, double duration, const char* addr,
                  const char* prefix, topology::AsId as) {
  return DeviceVisit{start, duration, net::Ipv4Address::parse(addr),
                     net::Prefix::parse(prefix), as, false};
}

TEST(ExtentTest, EmptyPopulation) {
  const ExtentOfMobility extent = analyze_extent({});
  EXPECT_TRUE(extent.ips_per_day.empty());
  EXPECT_TRUE(extent.dominant_as_share.empty());
}

TEST(ExtentTest, SingleStationaryUser) {
  DeviceTrace trace(0, 2);
  trace.append(visit(0.0, 48.0, "1.0.0.1", "1.0.0.0/16", 1));
  const std::vector<DeviceTrace> traces{std::move(trace)};
  const ExtentOfMobility extent = analyze_extent(traces);
  EXPECT_DOUBLE_EQ(extent.ips_per_day.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(extent.ip_transitions_per_day.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(extent.dominant_ip_share.quantile(0.5), 1.0);
  // Figure-9 samples are per user-day: two samples.
  EXPECT_EQ(extent.dominant_ip_share.size(), 2u);
  // Figure-6 samples are per user.
  EXPECT_EQ(extent.ips_per_day.size(), 1u);
}

TEST(ExtentTest, AveragesOverDays) {
  // Day 0: two addresses (1 transition); day 1: one address.
  DeviceTrace trace(0, 2);
  trace.append(visit(0.0, 12.0, "1.0.0.1", "1.0.0.0/16", 1));
  trace.append(visit(12.0, 36.0, "2.0.0.1", "2.0.0.0/16", 2));
  const std::vector<DeviceTrace> traces{std::move(trace)};
  const ExtentOfMobility extent = analyze_extent(traces);
  EXPECT_DOUBLE_EQ(extent.ips_per_day.quantile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(extent.ip_transitions_per_day.quantile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(extent.as_transitions_per_day.quantile(0.5), 0.5);
}

TEST(ExtentTest, PopulationInvariants) {
  const ExtentOfMobility extent =
      analyze_extent(lina::testing::shared_device_traces());
  ASSERT_EQ(extent.ips_per_day.size(),
            lina::testing::shared_device_traces().size());
  // Distinct locations per day >= 1 always; shares within (0, 1].
  EXPECT_GE(extent.ips_per_day.min(), 1.0);
  EXPECT_GE(extent.ases_per_day.min(), 1.0);
  EXPECT_GT(extent.dominant_ip_share.min(), 0.0);
  EXPECT_LE(extent.dominant_ip_share.max(), 1.0 + 1e-9);
  // Dominant-AS share dominates dominant-IP share at every quantile.
  for (const double q : {0.1, 0.5, 0.9}) {
    EXPECT_GE(extent.dominant_as_share.quantile(q),
              extent.dominant_prefix_share.quantile(q) - 1e-9);
    EXPECT_GE(extent.dominant_prefix_share.quantile(q),
              extent.dominant_ip_share.quantile(q) - 1e-9);
  }
}

TEST(ExtentTest, SkipsZeroDayTraces) {
  const std::vector<DeviceTrace> traces{DeviceTrace(0, 0)};
  const ExtentOfMobility extent = analyze_extent(traces);
  EXPECT_TRUE(extent.ips_per_day.empty());
}

}  // namespace
}  // namespace lina::core
