#include "lina/core/name_displacement.hpp"

#include <gtest/gtest.h>

#include <set>

#include "../support/fixtures.hpp"

namespace lina::core {
namespace {

using lina::testing::shared_content_catalog;
using lina::testing::shared_internet;

const std::vector<RenameEvent>& events() {
  static const std::vector<RenameEvent> result = [] {
    stats::Rng rng(21, "renames");
    return generate_rename_events(shared_content_catalog().popular, 200,
                                  rng);
  }();
  return result;
}

TEST(RenameGenerationTest, ProducesCrossHierarchyRenames) {
  ASSERT_GT(events().size(), 100u);
  for (const RenameEvent& event : events()) {
    EXPECT_GE(event.from.depth(), 3u);
    EXPECT_EQ(event.to.depth(), 3u);
    // The new parent is a different apex.
    EXPECT_NE(event.from.parent(), event.to.parent());
    // The leaf keeps the content's identity (possibly disambiguated when
    // the new hierarchy already uses that label).
    const std::string from_leaf(event.from.components().back());
    const std::string to_leaf(event.to.components().back());
    EXPECT_EQ(to_leaf.rfind(from_leaf, 0), 0u)
        << from_leaf << " vs " << to_leaf;
  }
}

TEST(RenameGenerationTest, TargetsAreUnique) {
  std::set<names::ContentName> targets;
  for (const RenameEvent& event : events()) targets.insert(event.to);
  EXPECT_EQ(targets.size(), events().size());
}

TEST(RenameGenerationTest, DeterministicForSeed) {
  stats::Rng rng1(21, "renames");
  stats::Rng rng2(21, "renames");
  const auto a =
      generate_rename_events(shared_content_catalog().popular, 50, rng1);
  const auto b =
      generate_rename_events(shared_content_catalog().popular, 50, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].from, b[i].from);
    EXPECT_EQ(a[i].to, b[i].to);
  }
}

TEST(RenameGenerationTest, EmptyCatalog) {
  stats::Rng rng(1);
  EXPECT_TRUE(generate_rename_events({}, 10, rng).empty());
}

TEST(RenameDisplacementTest, PerRouterResults) {
  const auto results = evaluate_rename_displacement(
      shared_internet().vantages(), shared_content_catalog().popular,
      events());
  ASSERT_EQ(results.size(), shared_internet().vantages().size());
  for (const auto& result : results) {
    EXPECT_EQ(result.updates.events, events().size());
    EXPECT_LE(result.updates.updates, result.updates.events);
    // Exceptions are exactly the added entries.
    EXPECT_EQ(result.fib_entries_after - result.fib_entries_before,
              result.updates.updates);
    EXPECT_GT(result.fib_entries_before, 0u);
  }
}

TEST(RenameDisplacementTest, SomeRoutersDisplacedSomeNot) {
  // Cross-hierarchy renames displace routers whose ports differ between
  // the hierarchies; routers with near-uniform port maps (remote edges)
  // are barely touched.
  const auto results = evaluate_rename_displacement(
      shared_internet().vantages(), shared_content_catalog().popular,
      events());
  double max_rate = 0.0, min_rate = 1.0;
  for (const auto& result : results) {
    max_rate = std::max(max_rate, result.updates.rate());
    min_rate = std::min(min_rate, result.updates.rate());
  }
  EXPECT_GT(max_rate, 0.2);
  EXPECT_LT(min_rate, max_rate);
}

TEST(RenameDisplacementTest, NoEventsNoUpdates) {
  const auto results = evaluate_rename_displacement(
      shared_internet().vantages(), shared_content_catalog().popular, {});
  for (const auto& result : results) {
    EXPECT_EQ(result.updates.events, 0u);
    EXPECT_EQ(result.fib_entries_before, result.fib_entries_after);
  }
}

}  // namespace
}  // namespace lina::core
