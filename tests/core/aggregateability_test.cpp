#include "lina/core/aggregateability.hpp"

#include <gtest/gtest.h>

#include "../support/fixtures.hpp"

namespace lina::core {
namespace {

using lina::testing::shared_content_catalog;
using lina::testing::shared_internet;

TEST(AggregateabilityResultTest, RatioArithmetic) {
  const AggregateabilityResult r{"x", 100, 20};
  EXPECT_DOUBLE_EQ(r.ratio(), 5.0);
  const AggregateabilityResult zero{"x", 0, 0};
  EXPECT_DOUBLE_EQ(zero.ratio(), 0.0);
}

TEST(AggregateabilityTest, OneRowPerRouter) {
  const auto results = evaluate_aggregateability(
      shared_internet().vantages(), shared_content_catalog().popular);
  EXPECT_EQ(results.size(), shared_internet().vantages().size());
}

TEST(AggregateabilityTest, CompressedNeverExceedsComplete) {
  const auto results = evaluate_aggregateability(
      shared_internet().vantages(), shared_content_catalog().popular);
  for (const auto& r : results) {
    EXPECT_LE(r.lpm_entries, r.complete_entries) << r.router;
    EXPECT_GE(r.lpm_entries, 1u) << r.router;
  }
}

TEST(AggregateabilityTest, PopularContentAggregatesSubstantially) {
  // Figure 12: aggregateability between 2x and 16x across routers.
  const auto results = evaluate_aggregateability(
      shared_internet().vantages(), shared_content_catalog().popular);
  double max_ratio = 0.0;
  for (const auto& r : results) {
    EXPECT_GT(r.ratio(), 1.0) << r.router;
    max_ratio = std::max(max_ratio, r.ratio());
  }
  EXPECT_GT(max_ratio, 2.0);
}

TEST(AggregateabilityTest, UnpopularContentBarelyAggregates) {
  // §7.3: unpopular domains have hardly any subdomains, so content routers
  // nominally store one entry per name.
  const auto popular = evaluate_aggregateability(
      shared_internet().vantages(), shared_content_catalog().popular);
  const auto unpopular = evaluate_aggregateability(
      shared_internet().vantages(), shared_content_catalog().unpopular);
  for (std::size_t i = 0; i < popular.size(); ++i) {
    EXPECT_GT(popular[i].ratio(), unpopular[i].ratio())
        << popular[i].router;
    EXPECT_LT(unpopular[i].ratio(), 1.6) << unpopular[i].router;
  }
}

TEST(AggregateabilityTest, CompleteTableCountsRoutedNames) {
  const auto results = evaluate_aggregateability(
      shared_internet().vantages(), shared_content_catalog().popular);
  // Every catalog address is announced, so every name must be present.
  for (const auto& r : results) {
    EXPECT_EQ(r.complete_entries, shared_content_catalog().popular.size())
        << r.router;
  }
}

TEST(AggregateabilityTest, EmptyCatalog) {
  const auto results =
      evaluate_aggregateability(shared_internet().vantages(), {});
  for (const auto& r : results) {
    EXPECT_EQ(r.complete_entries, 0u);
    EXPECT_EQ(r.lpm_entries, 0u);
  }
}

}  // namespace
}  // namespace lina::core
