#include "lina/core/latency_model.hpp"

#include <gtest/gtest.h>

#include "../support/fixtures.hpp"

namespace lina::core {
namespace {

using lina::testing::shared_device_traces;
using lina::testing::shared_internet;
using topology::AsId;

const LatencyModel& model() {
  static const LatencyModel instance(shared_internet());
  return instance;
}

TEST(LatencyModelTest, SelfDistanceIsZero) {
  EXPECT_EQ(model().physical_as_hops(3, 3), 0u);
  EXPECT_EQ(model().policy_as_hops(3, 3), 0u);
}

TEST(LatencyModelTest, PhysicalHopsSymmetric) {
  const auto& internet = shared_internet();
  for (AsId a = 0; a < internet.graph().as_count(); a += 37) {
    for (AsId b = 0; b < internet.graph().as_count(); b += 53) {
      EXPECT_EQ(model().physical_as_hops(a, b),
                model().physical_as_hops(b, a));
    }
  }
}

TEST(LatencyModelTest, PolicyAtLeastPhysical) {
  // Policy routes are valley-free, so never shorter than the unrestricted
  // shortest path — the paper's lower-bound argument (§6.3.2).
  const auto& internet = shared_internet();
  for (AsId a = 0; a < internet.graph().as_count(); a += 31) {
    for (AsId b = 0; b < internet.graph().as_count(); b += 41) {
      const auto policy = model().policy_as_hops(a, b);
      ASSERT_TRUE(policy.has_value());
      EXPECT_GE(*policy, model().physical_as_hops(a, b));
    }
  }
}

TEST(LatencyModelTest, AdjacentAsesOneHop) {
  const auto& internet = shared_internet();
  const AsId a = internet.edge_ases()[0];
  const AsId provider = internet.graph().links(a)[0].neighbor;
  EXPECT_EQ(model().physical_as_hops(a, provider), 1u);
}

TEST(LatencyModelTest, DelayIncludesAccessAndHops) {
  const auto& internet = shared_internet();
  const AsId a = internet.edge_ases()[0];
  const AsId b = internet.edge_ases()[1];
  const auto delay = model().one_way_delay_ms(a, b);
  ASSERT_TRUE(delay.has_value());
  // Two access legs at minimum.
  EXPECT_GE(*delay, 2.0 * model().config().access_ms);
}

TEST(LatencyModelTest, FartherMeansSlowerOnAverage) {
  const auto& internet = shared_internet();
  // Compare ASes near the first anchor against one near Sydney.
  const auto near0 = internet.edge_ases_near(topology::metro_anchors()[0], 2);
  const auto near9 = internet.edge_ases_near(topology::metro_anchors()[9], 2);
  const auto close = model().one_way_delay_ms(near0[0], near0[1]);
  const auto far = model().one_way_delay_ms(near0[0], near9[0]);
  ASSERT_TRUE(close.has_value());
  ASSERT_TRUE(far.has_value());
  EXPECT_LT(*close, *far);
}

TEST(LatencyModelTest, OutOfRangeThrows) {
  EXPECT_THROW((void)model().physical_as_hops(0, 1u << 20),
               std::out_of_range);
  EXPECT_THROW((void)model().policy_as_hops(1u << 20, 0), std::out_of_range);
}

TEST(IndirectionStretchTest, FullCoverageSamplesAllPairs) {
  stats::Rng rng(4);
  const auto result = evaluate_indirection_stretch(shared_device_traces(),
                                                   model(), 1.0, rng);
  EXPECT_EQ(result.pairs_sampled, result.pairs_total);
  EXPECT_GT(result.pairs_total, 0u);
  EXPECT_FALSE(result.delay_ms.empty());
  EXPECT_FALSE(result.policy_hops.empty());
}

TEST(IndirectionStretchTest, CoverageSubsamples) {
  // iPlane answered ~5% of queries; the sampler must respect that.
  stats::Rng rng(4);
  const auto result = evaluate_indirection_stretch(shared_device_traces(),
                                                   model(), 0.05, rng);
  EXPECT_LT(result.pairs_sampled, result.pairs_total / 5);
  EXPECT_GT(result.pairs_sampled, 0u);
}

TEST(IndirectionStretchTest, AwayShareWithinBounds) {
  stats::Rng rng(4);
  const auto result = evaluate_indirection_stretch(shared_device_traces(),
                                                   model(), 0.25, rng);
  ASSERT_EQ(result.away_time_share.size(), shared_device_traces().size());
  EXPECT_GE(result.away_time_share.min(), 0.0);
  EXPECT_LE(result.away_time_share.max(), 1.0 + 1e-9);
  // Paper: the median user spends around a quarter of the day two or more
  // AS hops from home.
  EXPECT_GT(result.away_time_share.quantile(0.5), 0.05);
  EXPECT_LT(result.away_time_share.quantile(0.5), 0.6);
}

TEST(IndirectionStretchTest, PolicyHopsDominatePhysicalMedian) {
  stats::Rng rng(4);
  const auto result = evaluate_indirection_stretch(shared_device_traces(),
                                                   model(), 1.0, rng);
  EXPECT_GE(result.policy_hops.quantile(0.5),
            result.physical_hops.quantile(0.5));
}

TEST(IndirectionStretchTest, EmptyTraces) {
  stats::Rng rng(4);
  const auto result =
      evaluate_indirection_stretch({}, model(), 1.0, rng);
  EXPECT_EQ(result.pairs_total, 0u);
  EXPECT_TRUE(result.delay_ms.empty());
}

}  // namespace
}  // namespace lina::core
