#include <gtest/gtest.h>

#include "../support/fixtures.hpp"
#include "lina/core/update_cost.hpp"

namespace lina::core {
namespace {

using lina::testing::shared_device_traces;
using lina::testing::shared_internet;

const std::vector<mobility::MultihomedDeviceTrace>& overlapped_views() {
  static const auto views =
      mobility::multihomed_views(shared_device_traces(), 0.25);
  return views;
}

const std::vector<mobility::MultihomedDeviceTrace>& singleton_views() {
  static const auto views =
      mobility::multihomed_views(shared_device_traces(), 0.0);
  return views;
}

TEST(MultihomedUpdateCostTest, SingletonViewMatchesSingleHomedEvaluator) {
  // With zero overlap the set view degenerates to the single-address
  // trace, so best-port update rates must equal the Figure-8 evaluator's.
  const DeviceUpdateCostEvaluator single_eval(shared_internet().vantages());
  const MultihomedDeviceUpdateCostEvaluator multi_eval(
      shared_internet().vantages());
  const auto single = single_eval.evaluate(shared_device_traces());
  const auto multi = multi_eval.evaluate(singleton_views(),
                                         strategy::StrategyKind::kBestPort);
  ASSERT_EQ(single.size(), multi.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i].events, multi[i].events) << single[i].router;
    // Best-port on singleton sets counts "no route" transitions slightly
    // differently only if addresses are uncovered — they never are here.
    EXPECT_EQ(single[i].updates, multi[i].updates) << single[i].router;
  }
}

TEST(MultihomedUpdateCostTest, OverlapDoublesEventCount) {
  // Make-before-break splits each address change into attach + detach.
  const MultihomedDeviceUpdateCostEvaluator evaluator(
      shared_internet().vantages());
  const auto singleton = evaluator.evaluate(
      singleton_views(), strategy::StrategyKind::kControlledFlooding);
  const auto overlapped = evaluator.evaluate(
      overlapped_views(), strategy::StrategyKind::kControlledFlooding);
  EXPECT_EQ(overlapped.front().events, 2 * singleton.front().events);
}

TEST(MultihomedUpdateCostTest, FloodingAtLeastBestPort) {
  const MultihomedDeviceUpdateCostEvaluator evaluator(
      shared_internet().vantages());
  const auto flooding = evaluator.evaluate(
      overlapped_views(), strategy::StrategyKind::kControlledFlooding);
  const auto best = evaluator.evaluate(overlapped_views(),
                                       strategy::StrategyKind::kBestPort);
  for (std::size_t i = 0; i < flooding.size(); ++i) {
    EXPECT_GE(flooding[i].updates, best[i].updates) << flooding[i].router;
  }
}

TEST(MultihomedUpdateCostTest, RemoteRoutersStillUntouched) {
  const MultihomedDeviceUpdateCostEvaluator evaluator(
      shared_internet().vantages());
  const auto stats = evaluator.evaluate(
      overlapped_views(), strategy::StrategyKind::kControlledFlooding);
  for (const auto& s : stats) {
    if (s.router == "Mauritius" || s.router == "Tokyo") {
      EXPECT_EQ(s.updates, 0u) << s.router;
    }
  }
}

TEST(MultihomedUpdateCostTest, HistoryUnionCheapest) {
  const MultihomedDeviceUpdateCostEvaluator evaluator(
      shared_internet().vantages());
  const auto flooding = evaluator.evaluate(
      overlapped_views(), strategy::StrategyKind::kControlledFlooding);
  const auto history = evaluator.evaluate(
      overlapped_views(), strategy::StrategyKind::kHistoryUnion);
  for (std::size_t i = 0; i < flooding.size(); ++i) {
    EXPECT_LE(history[i].updates, flooding[i].updates)
        << flooding[i].router;
  }
}

}  // namespace
}  // namespace lina::core
