// Exporter checks: the Chrome trace-event JSON passes its own parse-back
// validator (the same check the bench harness runs), counter deltas ride
// in span args, drop accounting is visible, and the folded-stack export
// aggregates parent chains. Runs under the `prof` ctest label.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <string_view>

#include "lina/obs/json.hpp"
#include "lina/obs/metrics.hpp"
#include "lina/obs/registry.hpp"
#include "lina/prof/export.hpp"
#include "lina/prof/prof.hpp"

namespace lina::prof {
namespace {

void reset_all() {
  Profiler::instance().enable(false);
  Profiler::instance().set_ring_capacity(Profiler::kDefaultRingCapacity);
  Profiler::instance().reset();
  obs::Registry::instance().reset();
}

TEST(ProfExportTest, ChromeTraceValidatesAndCarriesStructure) {
  reset_all();
  {
    EnabledScope scope;
    PROF_SPAN("lina.test.export_root");
    { PROF_SPAN("lina.test.export_child"); }
  }
  const ProfileReport report = collect();
  ASSERT_EQ(report.spans.size(), 2u);

  const std::string trace = export_chrome_trace(report);
  EXPECT_EQ(validate_chrome_trace(trace), 2u);

  const obs::Json document = obs::Json::parse(trace);
  const obs::Json& events = *document.find("traceEvents");
  bool saw_child = false;
  for (const obs::Json& event : events.items()) {
    if (!event.at("ph").is_string() || event.at("ph").as_string() != "X")
      continue;
    if (event.at("name").as_string() != "lina.test.export_child") continue;
    saw_child = true;
    const obs::Json& args = event.at("args");
    EXPECT_NE(args.find("span"), nullptr);
    EXPECT_NE(args.find("parent"), nullptr);
    EXPECT_NE(args.find("depth"), nullptr);
    EXPECT_GT(args.at("parent").as_number(), 0.0);
  }
  EXPECT_TRUE(saw_child);
  // Drop accounting is always present, even when zero.
  const obs::Json* other = document.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->at("spans_dropped").as_number(), 0.0);
  reset_all();
}

TEST(ProfExportTest, CounterDeltasAttachToSpans) {
  reset_all();
  // The attributed counters sample through the obs registry, so both
  // switches go on — exactly what Harness --profile does.
  obs::EnabledScope obs_scope;
  {
    EnabledScope scope;
    PROF_SPAN("lina.test.counted_region");
    obs::metric::resolver_lookups().add(7);
  }
  const ProfileReport report = collect();
  ASSERT_FALSE(report.spans.empty());
  const std::string trace = export_chrome_trace(report);
  EXPECT_GE(validate_chrome_trace(trace), 1u);

  const obs::Json document = obs::Json::parse(trace);
  bool saw_delta = false;
  for (const obs::Json& event : document.find("traceEvents")->items()) {
    if (!event.at("ph").is_string() || event.at("ph").as_string() != "X")
      continue;
    if (event.at("name").as_string() != "lina.test.counted_region")
      continue;
    const obs::Json& args = event.at("args");
    const obs::Json* delta = args.find("lina.sim.resolver.lookups");
    ASSERT_NE(delta, nullptr)
        << "counter delta missing from span args";
    EXPECT_EQ(delta->as_number(), 7.0);
    saw_delta = true;
  }
  EXPECT_TRUE(saw_delta);
  reset_all();
}

TEST(ProfExportTest, DroppedSpansAreAccountedInExport) {
  Profiler::instance().enable(false);
  Profiler::instance().set_ring_capacity(2);
  Profiler::instance().reset();
  {
    EnabledScope scope;
    for (int i = 0; i < 6; ++i) {
      PROF_SPAN("lina.test.drop_me");
    }
  }
  const ProfileReport report = collect();
  EXPECT_EQ(report.dropped_total(), 4u);
  const std::string trace = export_chrome_trace(report);
  const obs::Json document = obs::Json::parse(trace);
  EXPECT_EQ(document.find("otherData")->at("spans_dropped").as_number(),
            4.0);
  reset_all();
}

TEST(ProfExportTest, FoldedStacksAggregateParentChains) {
  reset_all();
  {
    EnabledScope scope;
    PROF_SPAN("lina.test.fold_root");
    { PROF_SPAN("lina.test.fold_leaf"); }
    { PROF_SPAN("lina.test.fold_leaf"); }
  }
  const ProfileReport report = collect();
  const std::string folded = export_folded(report);

  // Exactly one aggregated line per distinct stack.
  std::size_t leaf_lines = 0;
  std::size_t root_lines = 0;
  std::istringstream lines(folded);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("lina.test.fold_root;lina.test.fold_leaf ", 0) == 0)
      ++leaf_lines;
    else if (line.rfind("lina.test.fold_root ", 0) == 0)
      ++root_lines;
  }
  EXPECT_EQ(leaf_lines, 1u);
  EXPECT_EQ(root_lines, 1u);
  reset_all();
}

TEST(ProfExportTest, ValidatorRejectsMalformedDocuments) {
  EXPECT_THROW(validate_chrome_trace("[1,2,3]"), std::runtime_error);
  EXPECT_THROW(validate_chrome_trace("{\"notTraceEvents\":[]}"),
               std::runtime_error);
  EXPECT_THROW(
      validate_chrome_trace(
          "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"x\"}]}"),
      std::runtime_error);
  EXPECT_EQ(validate_chrome_trace("{\"traceEvents\":[]}"), 0u);
}

}  // namespace
}  // namespace lina::prof
