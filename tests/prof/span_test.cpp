// Span semantics: disabled spans record nothing, nesting builds the
// parent chain and depth, manual begin/end works for phase-style regions,
// full rings drop-and-count instead of overwriting, and reset() discards
// everything. Runs under the `prof` ctest label (plain, ASan+UBSan and
// TSan presets).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <string_view>

#include "lina/prof/prof.hpp"

namespace lina::prof {
namespace {

/// Fresh profiler state per test: everything buffered is discarded and
/// profiling is left disabled.
void reset_prof() {
  Profiler::instance().enable(false);
  Profiler::instance().set_ring_capacity(Profiler::kDefaultRingCapacity);
  Profiler::instance().reset();
}

std::map<std::string, SpanRecord> by_name(
    const std::vector<SpanRecord>& spans) {
  std::map<std::string, SpanRecord> out;
  for (const SpanRecord& span : spans) out[span.name] = span;
  return out;
}

TEST(ProfSpanTest, DisabledSpansRecordNothing) {
  reset_prof();
  {
    PROF_SPAN("lina.test.disabled_outer");
    PROF_SPAN("lina.test.disabled_inner");
  }
  Span manual;
  manual.begin("lina.test.disabled_manual");
  manual.end();
  EXPECT_TRUE(Profiler::instance().drain().empty());
  EXPECT_EQ(Profiler::instance().dropped(), 0u);
  EXPECT_EQ(current_span_id(), 0u);
}

TEST(ProfSpanTest, NestingBuildsParentChainAndDepth) {
  reset_prof();
  {
    EnabledScope scope;
    PROF_SPAN("lina.test.root");
    {
      PROF_SPAN("lina.test.mid");
      { PROF_SPAN("lina.test.leaf"); }
    }
    { PROF_SPAN("lina.test.sibling"); }
  }
  const auto spans = by_name(Profiler::instance().drain());
  ASSERT_EQ(spans.size(), 4u);
  const SpanRecord& root = spans.at("lina.test.root");
  const SpanRecord& mid = spans.at("lina.test.mid");
  const SpanRecord& leaf = spans.at("lina.test.leaf");
  const SpanRecord& sibling = spans.at("lina.test.sibling");
  EXPECT_EQ(root.parent, 0u);
  EXPECT_EQ(mid.parent, root.id);
  EXPECT_EQ(leaf.parent, mid.id);
  EXPECT_EQ(sibling.parent, root.id);
  EXPECT_EQ(root.depth, 1u);
  EXPECT_EQ(mid.depth, 2u);
  EXPECT_EQ(leaf.depth, 3u);
  EXPECT_EQ(sibling.depth, 2u);
  // Ids are unique and inner spans nest inside their parents' time range.
  EXPECT_NE(root.id, mid.id);
  EXPECT_GE(mid.begin_ns, root.begin_ns);
  EXPECT_LE(mid.end_ns, root.end_ns);
  EXPECT_GE(leaf.begin_ns, mid.begin_ns);
  EXPECT_LE(leaf.end_ns, mid.end_ns);
  reset_prof();
}

TEST(ProfSpanTest, ManualBeginEndAndRestart) {
  reset_prof();
  {
    EnabledScope scope;
    Span span;
    EXPECT_FALSE(span.armed());
    span.begin("lina.test.phase_a");
    EXPECT_TRUE(span.armed());
    EXPECT_EQ(current_span_id(), span.id());
    // begin() on an armed span closes the old region first.
    span.begin("lina.test.phase_b");
    span.end();
    span.end();  // idempotent
    EXPECT_EQ(current_span_id(), 0u);
  }
  const auto spans = Profiler::instance().drain();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "lina.test.phase_a");
  EXPECT_STREQ(spans[1].name, "lina.test.phase_b");
  reset_prof();
}

TEST(ProfSpanTest, FullRingDropsAndCounts) {
  Profiler::instance().enable(false);
  Profiler::instance().set_ring_capacity(4);
  Profiler::instance().reset();
  {
    EnabledScope scope;
    for (int i = 0; i < 10; ++i) {
      PROF_SPAN("lina.test.wrap");
    }
  }
  const auto spans = Profiler::instance().drain();
  std::size_t ours = 0;
  for (const SpanRecord& span : spans) {
    if (std::string_view(span.name) == "lina.test.wrap") ++ours;
  }
  EXPECT_EQ(ours, 4u);
  EXPECT_EQ(Profiler::instance().dropped(), 6u);
  // Per-thread accounting agrees with the aggregate.
  std::uint64_t per_thread_dropped = 0;
  for (const ThreadProfile& t : Profiler::instance().thread_profiles()) {
    per_thread_dropped += t.dropped;
  }
  EXPECT_EQ(per_thread_dropped, 6u);
  reset_prof();
}

TEST(ProfSpanTest, ResetDiscardsBufferedSpansAndDropCounts) {
  Profiler::instance().enable(false);
  Profiler::instance().set_ring_capacity(2);
  Profiler::instance().reset();
  {
    EnabledScope scope;
    for (int i = 0; i < 5; ++i) {
      PROF_SPAN("lina.test.reset");
    }
  }
  EXPECT_FALSE(Profiler::instance().drain().empty());
  EXPECT_GT(Profiler::instance().dropped(), 0u);
  Profiler::instance().set_ring_capacity(Profiler::kDefaultRingCapacity);
  Profiler::instance().reset();
  EXPECT_TRUE(Profiler::instance().drain().empty());
  EXPECT_EQ(Profiler::instance().dropped(), 0u);
}

}  // namespace
}  // namespace lina::prof
