// End-to-end acceptance check: a profiled run that exercises the
// simulator stack yields a Chrome trace that validates on parse-back and
// contains spans from >= 5 instrumented layers (exec, fabric, resolver,
// session, trie) with counter deltas attached. This is the in-tree twin
// of `fig8 --profile out.trace.json`. Runs under the `prof` ctest label.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "../support/fixtures.hpp"
#include "lina/exec/parallel.hpp"
#include "lina/net/frozen_ip_trie.hpp"
#include "lina/net/ip_trie.hpp"
#include "lina/obs/registry.hpp"
#include "lina/prof/export.hpp"
#include "lina/prof/prof.hpp"
#include "lina/sim/resolver_pool.hpp"
#include "lina/sim/session.hpp"
#include "lina/topology/geo.hpp"

namespace lina::prof {
namespace {

using lina::testing::shared_internet;

TEST(ProfE2eTest, FullStackProfileCoversFiveLayersAndValidates) {
  Profiler::instance().enable(false);
  Profiler::instance().set_ring_capacity(Profiler::kDefaultRingCapacity);
  Profiler::instance().reset();
  obs::Registry::instance().reset();

  {
    obs::EnabledScope obs_scope;
    EnabledScope prof_scope;
    PROF_SPAN("lina.test.e2e_run");

    // Sessions over the fabric with a resolver pool: session, resolver
    // and fabric layers.
    const sim::ForwardingFabric fabric(shared_internet());
    sim::SessionConfig config;
    const auto local =
        shared_internet().edge_ases_near(topology::metro_anchors()[0], 3);
    config.correspondent = shared_internet().edge_ases()[0];
    config.schedule = {{0.0, local[0]}, {1500.0, local[1]},
                       {3000.0, local[2]}};
    config.packet_interval_ms = 25.0;
    config.duration_ms = 4000.0;
    config.resolver_ttl_ms = 200.0;
    config.resolver_replicas =
        sim::ResolverPool::metro_placement(shared_internet(), 4);
    for (const auto arch : {sim::SimArchitecture::kIndirection,
                            sim::SimArchitecture::kReplicatedResolution}) {
      (void)sim::simulate_session(fabric, arch, config);
    }

    // Batched LPM over a frozen trie: trie layer plus attributed
    // node-visit counters.
    net::IpTrie<int> trie;
    for (std::uint32_t i = 0; i < 512; ++i) {
      trie.insert(net::Prefix(net::Ipv4Address(i << 20), 16),
                  static_cast<int>(i));
    }
    const net::FrozenIpTrie<int> frozen = trie.freeze();
    std::vector<net::Ipv4Address> addrs;
    for (std::uint32_t i = 0; i < 4096; ++i) {
      addrs.emplace_back(i * 1048573u);
    }
    std::vector<const int*> hits(addrs.size());
    // parallel_for over batches: exec layer, with trie spans attributed
    // to their spawning chunk across threads.
    exec::parallel_for(
        4,
        [&](std::size_t part) {
          const std::size_t begin = part * 1024;
          frozen.lookup_many(
              std::span<const net::Ipv4Address>(addrs).subspan(begin, 1024),
              std::span<const int*>(hits).subspan(begin, 1024));
        },
        4);
  }

  const ProfileReport report = collect();
  ASSERT_FALSE(report.spans.empty());

  // Layer coverage: second dot-component across all span names.
  const std::vector<std::string> layers = span_layers(report);
  const std::set<std::string> layer_set(layers.begin(), layers.end());
  for (const char* required :
       {"exec", "fabric", "resolver", "session", "trie"}) {
    EXPECT_TRUE(layer_set.count(required) == 1)
        << "missing spans from layer '" << required << "'";
  }
  EXPECT_GE(layer_set.size(), 5u);

  // Counter deltas attached: at least one trie span carries LPM visits.
  bool saw_delta = false;
  const auto& names = attributed_counter_names();
  for (const SpanRecord& span : report.spans) {
    if (std::string_view(span.name) != "lina.trie.ip_lookup_many") continue;
    for (std::size_t i = 0; i < kAttributedCounters; ++i) {
      if (std::string_view(names[i]) == "lina.net.ip_trie.lpm_node_visits" &&
          span.counter_deltas[i] > 0) {
        saw_delta = true;
      }
    }
  }
  EXPECT_TRUE(saw_delta) << "no trie span carried an LPM node-visit delta";

  // The export itself validates — the same parse-back self-check the
  // bench harness runs on every --profile write.
  const std::string trace = export_chrome_trace(report);
  EXPECT_EQ(validate_chrome_trace(trace), report.spans.size());

  Profiler::instance().reset();
  obs::Registry::instance().reset();
}

}  // namespace
}  // namespace lina::prof
