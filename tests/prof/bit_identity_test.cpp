// The profiling analogue of tests/obs/off_switch_test.cpp: with the span
// profiler enabled vs. disabled, every architecture's SessionStats must
// be bit-identical — spans observe, they never feed back. Checked serial
// and through the exec pool (worker chunk spans and adopted parents must
// not perturb results either). Runs under the `prof` ctest label, plain,
// ASan+UBSan and TSan presets.

#include <gtest/gtest.h>

#include <vector>

#include "../support/fixtures.hpp"
#include "lina/exec/parallel.hpp"
#include "lina/obs/registry.hpp"
#include "lina/prof/prof.hpp"
#include "lina/sim/resolver_pool.hpp"
#include "lina/sim/session.hpp"
#include "lina/topology/geo.hpp"

namespace lina::sim {
namespace {

using lina::testing::shared_internet;

const ForwardingFabric& fabric() {
  static const ForwardingFabric instance(shared_internet());
  return instance;
}

SessionConfig mobile_config() {
  const auto local =
      shared_internet().edge_ases_near(topology::metro_anchors()[0], 4);
  SessionConfig config;
  config.correspondent = shared_internet().edge_ases()[0];
  config.schedule = {{0.0, local[0]},
                     {2000.0, local[1]},
                     {4000.0, local[2]},
                     {6000.0, local[3]}};
  config.packet_interval_ms = 20.0;
  config.duration_ms = 8000.0;
  config.resolver_ttl_ms = 150.0;
  config.resolver_replicas =
      ResolverPool::metro_placement(shared_internet(), 6);
  return config;
}

void expect_identical(const SessionStats& a, const SessionStats& b) {
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.packets_lost, b.packets_lost);
  EXPECT_EQ(a.control_messages, b.control_messages);
  EXPECT_EQ(a.control_retries, b.control_retries);
  EXPECT_EQ(a.packets_sent_during_failure, b.packets_sent_during_failure);
  EXPECT_EQ(a.packets_delivered_during_failure,
            b.packets_delivered_during_failure);
  EXPECT_EQ(a.delivery_delay_ms.sorted_samples(),
            b.delivery_delay_ms.sorted_samples());
  EXPECT_EQ(a.stretch.sorted_samples(), b.stretch.sorted_samples());
  EXPECT_EQ(a.outage_ms.sorted_samples(), b.outage_ms.sorted_samples());
  EXPECT_EQ(a.recovery_ms.sorted_samples(), b.recovery_ms.sorted_samples());
  EXPECT_EQ(a.stretch_degraded.sorted_samples(),
            b.stretch_degraded.sorted_samples());
}

void reset_everything() {
  prof::Profiler::instance().enable(false);
  prof::Profiler::instance().reset();
  obs::Registry::instance().reset();
}

TEST(ProfBitIdentityTest, SessionStatsBitIdenticalProfilingOnVsOff) {
  const SessionConfig config = mobile_config();
  for (const auto arch :
       {SimArchitecture::kIndirection, SimArchitecture::kNameResolution,
        SimArchitecture::kNameBased,
        SimArchitecture::kReplicatedResolution}) {
    reset_everything();
    const SessionStats off = simulate_session(fabric(), arch, config);
    EXPECT_TRUE(prof::Profiler::instance().drain().empty());

    SessionStats on;
    {
      // Both switches on, as Harness --profile sets them: spans record
      // and carry live counter deltas.
      obs::EnabledScope obs_scope;
      prof::EnabledScope prof_scope;
      on = simulate_session(fabric(), arch, config);
    }
    expect_identical(off, on);
    // The profiled run must have actually recorded spans — the check
    // cannot pass vacuously because profiling went dead.
    EXPECT_FALSE(prof::Profiler::instance().drain().empty());
    reset_everything();
  }
}

TEST(ProfBitIdentityTest, PooledSessionsBitIdenticalProfilingOnVsOff) {
  // Sessions fanned out across the exec pool: worker-side chunk spans and
  // adopted parents are live, and results must still match the serial,
  // unprofiled baseline element for element.
  const SessionConfig config = mobile_config();
  constexpr std::size_t kSessions = 8;
  const auto arch = SimArchitecture::kReplicatedResolution;

  reset_everything();
  std::vector<SessionStats> off;
  off.reserve(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    off.push_back(simulate_session(fabric(), arch, config));
  }

  std::vector<SessionStats> on;
  {
    obs::EnabledScope obs_scope;
    prof::EnabledScope prof_scope;
    PROF_SPAN("lina.test.pooled_sessions");
    on = exec::parallel_map(
        kSessions,
        [&](std::size_t) { return simulate_session(fabric(), arch, config); },
        4);
  }
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t i = 0; i < kSessions; ++i) {
    expect_identical(off[i], on[i]);
  }
  EXPECT_FALSE(prof::Profiler::instance().drain().empty());
  reset_everything();
}

}  // namespace
}  // namespace lina::sim
