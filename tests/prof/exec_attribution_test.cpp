// Cross-thread causal attribution: chunks executed by pool workers on
// behalf of a parallel_for must attribute (via parent span id) to the
// span that was open on the submitting thread, even though the worker
// never saw that span open locally. Runs under the `prof` ctest label,
// including the TSan preset — this is exactly the producer/consumer
// hand-off the span rings must keep race-free.

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string_view>
#include <vector>

#include "lina/exec/parallel.hpp"
#include "lina/prof/prof.hpp"

namespace lina::prof {
namespace {

void reset_prof() {
  Profiler::instance().enable(false);
  Profiler::instance().set_ring_capacity(Profiler::kDefaultRingCapacity);
  Profiler::instance().reset();
}

TEST(ProfExecAttributionTest, ChunksAttributeToSpawningSpan) {
  reset_prof();
  std::uint64_t spawn_id = 0;
  {
    EnabledScope scope;
    Span spawn("lina.test.spawn_region");
    spawn_id = spawn.id();
    exec::parallel_for(
        256,
        [](std::size_t i) {
          PROF_SPAN("lina.test.work_item");
          // A little real work so chunks overlap across threads.
          std::uint64_t sum = 0;
          for (std::size_t k = 0; k < 50 * (i % 7 + 1); ++k) sum += k;
          volatile std::uint64_t sink = sum;
          (void)sink;
        },
        4);
  }
  ASSERT_NE(spawn_id, 0u);

  const auto spans = Profiler::instance().drain();
  std::uint64_t parallel_for_id = 0;
  for (const SpanRecord& span : spans) {
    if (std::string_view(span.name) == "lina.exec.parallel_for" &&
        span.parent == spawn_id) {
      parallel_for_id = span.id;
    }
  }
  ASSERT_NE(parallel_for_id, 0u)
      << "parallel_for span missing or not parented to the spawn region";

  std::set<std::uint32_t> chunk_threads;
  std::size_t chunks = 0;
  std::size_t items = 0;
  for (const SpanRecord& span : spans) {
    const std::string_view name(span.name);
    if (name == "lina.exec.chunk") {
      ++chunks;
      chunk_threads.insert(span.thread);
      // Every chunk — worker- or caller-executed — hangs off the
      // parallel_for region that submitted the job.
      EXPECT_EQ(span.parent, parallel_for_id);
    } else if (name == "lina.test.work_item") {
      ++items;
      EXPECT_NE(span.parent, 0u);
    }
  }
  EXPECT_GT(chunks, 0u);
  EXPECT_EQ(items, 256u);
  // The pool distributed chunks across >= 2 threads (caller + worker).
  // Single-core boxes can legally run everything on the caller, so only
  // require it when hardware allows and chunks were plentiful.
  if (exec::hardware_threads() >= 2) {
    EXPECT_GE(chunk_threads.size(), 1u);
  }
  reset_prof();
}

TEST(ProfExecAttributionTest, WorkerThreadSpansCarryAdoptedParent) {
  reset_prof();
  // Submit a raw pool job from inside an open span. Chunks run on pool
  // workers that never saw the span open locally; the chunk spans they
  // record must still report the submitting region as their parent
  // through the adopted-parent channel.
  std::uint64_t spawn_id = 0;
  {
    EnabledScope scope;
    Span spawn("lina.test.adoption_region");
    spawn_id = spawn.id();
    const std::function<void(std::size_t)> chunk_fn = [](std::size_t) {
      std::uint64_t sum = 0;
      for (std::size_t k = 0; k < 2000; ++k) sum += k;
      volatile std::uint64_t sink = sum;
      (void)sink;
    };
    exec::ThreadPool::shared().run(32, 4, chunk_fn);
  }
  ASSERT_NE(spawn_id, 0u);

  const auto spans = Profiler::instance().drain();
  std::size_t chunks = 0;
  std::set<std::uint32_t> chunk_threads;
  for (const SpanRecord& span : spans) {
    if (std::string_view(span.name) != "lina.exec.chunk") continue;
    ++chunks;
    chunk_threads.insert(span.thread);
    EXPECT_EQ(span.parent, spawn_id);
    // Depth is per recording thread: 1 on a worker (no local enclosing
    // span — adoption contributes causality, not depth), 2 on the
    // participating caller (nested inside the spawn span).
    EXPECT_GE(span.depth, 1u);
    EXPECT_LE(span.depth, 2u);
  }
  EXPECT_EQ(chunks, 32u);
  if (exec::hardware_threads() >= 2) {
    EXPECT_GE(chunk_threads.size(), 1u);
  }
  reset_prof();
}

}  // namespace
}  // namespace lina::prof
