// Shard-boundary edge cases (ISSUE 9): an event landing exactly on the
// window horizon, zero-delay cross-shard hops (lookahead collapses to the
// fallback slice and the re-drain fixpoint carries correctness), and the
// degenerate single-shard topology. All must match the serial engine
// bit-for-bit.

#include <gtest/gtest.h>

#include "../support/fixtures.hpp"
#include "lina/des/engine.hpp"

namespace lina::des {
namespace {

using lina::testing::shared_internet;
using topology::AsId;

const sim::ForwardingFabric& fabric() {
  static const sim::ForwardingFabric instance(shared_internet());
  return instance;
}

AsId edge(std::size_t i) { return shared_internet().edge_ases()[i]; }

PacketModel basic_model(const sim::ForwardingFabric& f,
                        double interval_ms = 20.0) {
  PacketModel model(f, sim::SimArchitecture::kIndirection);
  SessionParams p;
  p.correspondent = edge(3);
  p.schedule = {{0.0, edge(40)}, {300.0, edge(41)}, {600.0, edge(42)}};
  p.interval_ms = interval_ms;
  p.duration_ms = 900.0;
  model.add_session(p);
  SessionParams q;
  q.correspondent = edge(7);
  q.schedule = {{0.0, edge(60)}};
  q.interval_ms = interval_ms;
  q.duration_ms = 900.0;
  model.add_session(q);
  return model;
}

TEST(DesEdgeCaseTest, EventExactlyAtWindowHorizon) {
  // interval == window width, emissions start at 0: packet k's emit lands
  // exactly at k * window_ms, i.e. precisely on the window horizon. The
  // conservative rule is strict-less-than: a horizon-exact event belongs
  // to the *next* window, and the digest must not care either way.
  const double window = 8.0;
  PacketModel model = basic_model(fabric(), window);
  const RunStats serial = run_serial(model);
  for (const std::size_t shards : {4u, 16u}) {
    const ShardMap map = ShardMap::from_topology(shared_internet(), shards);
    EngineConfig config;
    config.shard_count = shards;
    config.window_ms = window;
    ShardedEngine engine(model, map, config);
    const RunStats stats = engine.run();
    EXPECT_EQ(stats.digest, serial.digest) << "shards=" << shards;
    EXPECT_EQ(stats.events, serial.events);
    EXPECT_GT(stats.windows, 1u);
  }
}

TEST(DesEdgeCaseTest, ZeroDelayCrossShardHops) {
  // A fabric where every link has zero delay: the auto lookahead is zero,
  // the engine falls back to its minimum positive slice, and every
  // cross-shard hop lands *inside* the still-open window. Only the
  // re-drain fixpoint keeps such hops executing at their exact timestamp.
  sim::FabricConfig zero;
  zero.per_hop_ms = 0.0;
  zero.inflation = 0.0;
  zero.min_link_ms = 0.0;
  const sim::ForwardingFabric flat(shared_internet(), zero);
  ASSERT_EQ(flat.link_delay_ms(edge(3), shared_internet()
                                            .graph()
                                            .links(edge(3))
                                            .front()
                                            .neighbor),
            0.0);
  PacketModel model = basic_model(flat);
  const RunStats serial = run_serial(model);
  for (const std::size_t shards : {4u, 16u}) {
    const ShardMap map = ShardMap::from_topology(shared_internet(), shards);
    EngineConfig config;
    config.shard_count = shards;
    ShardedEngine engine(model, map, config);
    const RunStats stats = engine.run();
    EXPECT_EQ(stats.digest, serial.digest) << "shards=" << shards;
    EXPECT_EQ(stats.events, serial.events);
    // Zero-delay handoffs must have forced at least one extra
    // intra-window pass somewhere.
    EXPECT_GT(stats.handoffs, 0u);
    EXPECT_GT(stats.redrain_passes, 0u);
  }
}

TEST(DesEdgeCaseTest, SingleShardDegenerateTopology) {
  PacketModel model = basic_model(fabric());
  const RunStats serial = run_serial(model);
  const ShardMap map = ShardMap::from_topology(shared_internet(), 1);
  EngineConfig config;
  config.shard_count = 1;
  ShardedEngine engine(model, map, config);
  const RunStats stats = engine.run();
  EXPECT_EQ(stats.digest, serial.digest);
  EXPECT_EQ(stats.events, serial.events);
  // One shard: every hop is shard-local, nothing ever crosses a mailbox.
  EXPECT_EQ(stats.handoffs, 0u);
}

TEST(DesEdgeCaseTest, MoreShardsThanMetrosStillExact) {
  // Shard count far above the metro-anchor count leaves some shards
  // permanently empty; the window loop must not stall or drop events.
  PacketModel model = basic_model(fabric());
  const RunStats serial = run_serial(model);
  const ShardMap map = ShardMap::from_topology(shared_internet(), 64);
  EngineConfig config;
  config.shard_count = 64;
  ShardedEngine engine(model, map, config);
  const RunStats stats = engine.run();
  EXPECT_EQ(stats.digest, serial.digest);
  EXPECT_EQ(stats.events, serial.events);
}

}  // namespace
}  // namespace lina::des
