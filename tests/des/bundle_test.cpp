// EventBundle / BundleChain: layout guarantees, append/drain order,
// and the arena-recycling contract (steady state allocates nothing once
// a chain has seen its peak window).

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "lina/des/bundle.hpp"

namespace lina::des {
namespace {

EventRecord record_at(std::uint32_t i) {
  EventRecord r;
  r.time_ms = static_cast<double>(i);
  r.session = i;
  r.packet = i * 7;
  r.at = i % 97;
  r.dest = (i * 3) % 97;
  r.hops = static_cast<std::uint16_t>(i % 11);
  r.type = (i % 2) == 0 ? EventType::kEmit : EventType::kHop;
  return r;
}

TEST(EventBundleTest, TilesWholeCacheLines) {
  // 21 × 48 B records + the count word pad to exactly 1 KiB under the
  // cache-line alignment — the layout DESIGN.md §4j commits to.
  EXPECT_EQ(sizeof(EventBundle), 1024u);
  EXPECT_EQ(alignof(EventBundle), 64u);
  EXPECT_EQ(EventBundle::kRecords, 21u);
}

TEST(BundleChainTest, DrainsInAppendOrder) {
  BundleChain chain;
  EXPECT_TRUE(chain.empty());
  // Enough records to span several bundles, including one partial tail.
  const std::size_t n = EventBundle::kRecords * 3 + 5;
  for (std::uint32_t i = 0; i < n; ++i) chain.append(record_at(i));
  EXPECT_FALSE(chain.empty());
  EXPECT_EQ(chain.pending_records(), n);
  EXPECT_EQ(chain.pending_bundles(), 4u);

  std::vector<EventRecord> seen;
  const std::size_t drained =
      chain.drain([&](const EventRecord& r) { seen.push_back(r); });
  EXPECT_EQ(drained, n);
  ASSERT_EQ(seen.size(), n);
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_TRUE(same_event(seen[i], record_at(i))) << "i=" << i;
  }
  EXPECT_TRUE(chain.empty());
  EXPECT_EQ(chain.pending_records(), 0u);
  EXPECT_EQ(chain.pending_bundles(), 0u);
}

TEST(BundleChainTest, EmptyDrainIsANoOp) {
  BundleChain chain;
  std::size_t calls = 0;
  EXPECT_EQ(chain.drain([&](const EventRecord&) { ++calls; }), 0u);
  EXPECT_EQ(calls, 0u);
}

TEST(BundleChainTest, RecyclesArenaAcrossWindows) {
  BundleChain chain;
  const std::size_t peak = EventBundle::kRecords * 5;
  for (std::uint32_t i = 0; i < peak; ++i) chain.append(record_at(i));
  chain.drain([](const EventRecord&) {});
  const std::size_t arena = chain.capacity_bundles();
  EXPECT_EQ(arena, 5u);

  // Windows at or below the high-water mark must reuse the arena: the
  // bundle count never grows again.
  for (int window = 0; window < 8; ++window) {
    for (std::uint32_t i = 0; i < peak; ++i) chain.append(record_at(i));
    EXPECT_EQ(chain.capacity_bundles(), arena) << "window=" << window;
    std::size_t drained = 0;
    chain.drain([&](const EventRecord&) { ++drained; });
    EXPECT_EQ(drained, peak);
  }

  // A partial window reuses the first bundle only.
  chain.append(record_at(1));
  EXPECT_EQ(chain.pending_bundles(), 1u);
  EXPECT_EQ(chain.capacity_bundles(), arena);
}

}  // namespace
}  // namespace lina::des
