// Optimistic (rollback) sync mode (DESIGN.md §4j): the dedicated
// straggler test — an oversized speculation window forces cross-shard
// arrivals below the destination shard's speculative clock, so rollback
// provably fires and the digest still matches the serial reference —
// plus the undo-log / digest-inversion algebra and config validation.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "../support/fixtures.hpp"
#include "lina/des/engine.hpp"
#include "lina/des/optimistic.hpp"

namespace lina::des {
namespace {

using lina::testing::shared_internet;
using topology::AsId;

const sim::ForwardingFabric& fabric() {
  static const sim::ForwardingFabric instance(shared_internet());
  return instance;
}

AsId edge(std::size_t i) { return shared_internet().edge_ases()[i]; }

/// Sessions whose correspondents and mobiles sit in different metros, so
/// packets keep crossing shard boundaries while every shard also has
/// dense local emissions to speculate through.
PacketModel cross_metro_model() {
  PacketModel model(fabric(), sim::SimArchitecture::kIndirection);
  for (std::size_t i = 0; i < 6; ++i) {
    SessionParams p;
    p.correspondent = edge(i * 11);
    p.schedule = {{0.0, edge(60 + i * 7)}, {400.0, edge(20 + i * 9)}};
    p.interval_ms = 15.0;
    p.duration_ms = 1200.0;
    model.add_session(p);
  }
  return model;
}

TEST(DesOptimisticTest, StragglerRollbackFiresAndMatchesSerial) {
  // window_ms far above the true minimum cross-shard delay makes the
  // speculation bound (gvt + 4 windows) overrun in-flight cross-shard
  // packets by design: when a staged hop is finally released, the
  // destination's speculative clock has moved past its timestamp — the
  // straggler path. Conservative mode survives this via the re-drain
  // fixpoint; optimistic mode must roll back, and the digest must not
  // show a trace of it.
  PacketModel model = cross_metro_model();
  const RunStats serial = run_serial(model);
  ASSERT_GT(serial.digest.delivered, 0u);
  for (const std::size_t shards : {4u, 16u}) {
    const ShardMap map = ShardMap::from_topology(shared_internet(), shards);
    for (const std::size_t threads : {1u, 8u}) {
      EngineConfig config;
      config.shard_count = shards;
      config.threads = threads;
      config.window_ms = 50.0;
      config.sync = SyncMode::kOptimistic;
      ShardedEngine engine(model, map, config);
      const RunStats stats = engine.run();
      EXPECT_EQ(stats.digest, serial.digest)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(stats.events, serial.events);
      EXPECT_GT(stats.rollbacks, 0u)
          << "straggler construction failed to trigger a rollback";
      EXPECT_GT(stats.rolled_back_events, 0u);
      EXPECT_GT(stats.handoffs, 0u);
      EXPECT_GT(stats.bundles, 0u);
    }
  }
}

TEST(DesOptimisticTest, RollbackCountersAreThreadInvariant) {
  // Every rollback decision happens in barrier-sequenced per-shard serial
  // code on deterministic data, so the behaviour counters — not just the
  // digest — must be identical at any thread count.
  PacketModel model = cross_metro_model();
  const ShardMap map = ShardMap::from_topology(shared_internet(), 4);
  RunStats runs[2];
  const std::size_t threads[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    EngineConfig config;
    config.shard_count = 4;
    config.threads = threads[i];
    config.window_ms = 50.0;
    config.sync = SyncMode::kOptimistic;
    runs[i] = ShardedEngine(model, map, config).run();
  }
  EXPECT_EQ(runs[0].rollbacks, runs[1].rollbacks);
  EXPECT_EQ(runs[0].rolled_back_events, runs[1].rolled_back_events);
  EXPECT_EQ(runs[0].windows, runs[1].windows);
  EXPECT_EQ(runs[0].handoffs, runs[1].handoffs);
  EXPECT_EQ(runs[0].bundles, runs[1].bundles);
  EXPECT_EQ(runs[0].shard_events, runs[1].shard_events);
}

TEST(DesOptimisticTest, ZeroDelayFabricStillExact) {
  // All-zero link delays put every event of a packet's life at the same
  // instant: nothing can arrive strictly below a speculative clock, so
  // no rollback is even possible — but the equal-time speculation must
  // still fold to the serial digest.
  sim::FabricConfig zero;
  zero.per_hop_ms = 0.0;
  zero.inflation = 0.0;
  zero.min_link_ms = 0.0;
  const sim::ForwardingFabric flat(shared_internet(), zero);
  PacketModel model(flat, sim::SimArchitecture::kIndirection);
  SessionParams p;
  p.correspondent = edge(3);
  p.schedule = {{0.0, edge(40)}, {300.0, edge(41)}, {600.0, edge(42)}};
  p.interval_ms = 20.0;
  p.duration_ms = 900.0;
  model.add_session(p);
  const RunStats serial = run_serial(model);
  for (const std::size_t shards : {4u, 16u}) {
    const ShardMap map = ShardMap::from_topology(shared_internet(), shards);
    EngineConfig config;
    config.shard_count = shards;
    config.sync = SyncMode::kOptimistic;
    ShardedEngine engine(model, map, config);
    const RunStats stats = engine.run();
    EXPECT_EQ(stats.digest, serial.digest) << "shards=" << shards;
    EXPECT_EQ(stats.events, serial.events);
    EXPECT_GT(stats.handoffs, 0u);
  }
}

TEST(DesOptimisticTest, SingleShardNeverRollsBack) {
  PacketModel model = cross_metro_model();
  const RunStats serial = run_serial(model);
  const ShardMap map = ShardMap::from_topology(shared_internet(), 1);
  EngineConfig config;
  config.shard_count = 1;
  config.sync = SyncMode::kOptimistic;
  ShardedEngine engine(model, map, config);
  const RunStats stats = engine.run();
  EXPECT_EQ(stats.digest, serial.digest);
  EXPECT_EQ(stats.events, serial.events);
  EXPECT_EQ(stats.handoffs, 0u);
  EXPECT_EQ(stats.rollbacks, 0u);
  EXPECT_EQ(stats.rolled_back_events, 0u);
}

TEST(DesOptimisticTest, RejectsBadSpeculationWindows) {
  PacketModel model(fabric(), sim::SimArchitecture::kIndirection);
  const ShardMap map = ShardMap::from_topology(shared_internet(), 4);
  EngineConfig config;
  config.sync = SyncMode::kOptimistic;
  config.speculation_windows = 0.0;
  EXPECT_THROW(ShardedEngine(model, map, config), std::invalid_argument);
  config.speculation_windows = -2.0;
  EXPECT_THROW(ShardedEngine(model, map, config), std::invalid_argument);
  config.speculation_windows = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(ShardedEngine(model, map, config), std::invalid_argument);
  config.speculation_windows = std::numeric_limits<double>::infinity();
  EXPECT_THROW(ShardedEngine(model, map, config), std::invalid_argument);
}

TEST(DesDigestTest, SubtractInvertsCombine) {
  DeliveryDigest base;
  base.add_delivered(1, 2, 30.0, 10.0, 5, 7);
  base.add_delivered(9, 0, 55.0, 40.0, 2, 3);
  base.sent = 4;
  base.lost = 1;
  base.hop_events = 11;
  DeliveryDigest delta;
  delta.add_delivered(3, 1, 90.0, 70.0, 6, 2);
  delta.sent = 2;
  delta.hop_events = 5;
  DeliveryDigest folded = base;
  folded.combine(delta);
  ASSERT_NE(folded, base);
  folded.subtract(delta);
  EXPECT_EQ(folded, base);
  EXPECT_EQ(folded.fingerprint(), base.fingerprint());
}

TEST(DesUndoLogTest, CommitAndRewindSemantics) {
  UndoLog log;
  EXPECT_TRUE(log.empty());
  for (std::uint32_t i = 0; i < 6; ++i) {
    EventRecord r;
    r.time_ms = static_cast<double>(i * 10);  // 0, 10, ..., 50
    r.session = i;
    log.push(r);
  }
  EXPECT_EQ(log.uncommitted(), 6u);
  EXPECT_DOUBLE_EQ(log.back().time_ms, 50.0);

  // Commit through 25: entries at 0/10/20 become final.
  log.commit_through(25.0);
  EXPECT_EQ(log.uncommitted(), 3u);

  // A straggler at 35 pops exactly the entries above it.
  EXPECT_DOUBLE_EQ(log.pop_back().time_ms, 50.0);
  EXPECT_DOUBLE_EQ(log.pop_back().time_ms, 40.0);
  EXPECT_DOUBLE_EQ(log.back().time_ms, 30.0);
  EXPECT_EQ(log.uncommitted(), 1u);

  // Full commit reclaims everything.
  log.commit_through(100.0);
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.uncommitted(), 0u);
}

}  // namespace
}  // namespace lina::des
