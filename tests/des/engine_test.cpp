// Engine basics: deterministic shard mapping, model validation, digest
// algebra, and the out-of-core trace replay path (serial vs sharded,
// batch-size invariance).

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "../support/fixtures.hpp"
#include "../trace/trace_test_util.hpp"
#include "lina/des/replay.hpp"
#include "lina/mobility/device_workload.hpp"
#include "lina/trace/streaming.hpp"

namespace lina::des {
namespace {

using lina::testing::shared_internet;
using topology::AsId;

const sim::ForwardingFabric& fabric() {
  static const sim::ForwardingFabric instance(shared_internet());
  return instance;
}

AsId edge(std::size_t i) { return shared_internet().edge_ases()[i]; }

TEST(ShardMapTest, DeterministicAndBounded) {
  const ShardMap a = ShardMap::from_topology(shared_internet(), 8);
  const ShardMap b = ShardMap::from_topology(shared_internet(), 8);
  EXPECT_EQ(a.shard_count(), 8u);
  const std::size_t as_count = shared_internet().graph().as_count();
  for (AsId as = 0; as < as_count; ++as) {
    EXPECT_LT(a.shard_of(as), 8u);
    EXPECT_EQ(a.shard_of(as), b.shard_of(as)) << "as=" << as;
  }
}

TEST(ShardMapTest, NearestAnchorBreaksTiesTowardLowestIndex) {
  // The documented tie-break (engine.hpp): strict less-than comparison,
  // so among equidistant anchors the lowest index wins. Pinned here so
  // shard assignment can never drift across platforms or refactors —
  // a drift would silently re-home every AS and change which links count
  // as cross-shard (and therefore the auto lookahead window).
  const topology::GeoPoint at{10.0, 20.0};
  const topology::GeoPoint same{48.0, 2.0};
  const topology::GeoPoint far{-30.0, 150.0};
  {
    // Bitwise-identical anchors: a guaranteed exact distance tie.
    const topology::GeoPoint anchors[] = {same, same, same};
    EXPECT_EQ(ShardMap::nearest_anchor(at, anchors), 0u);
  }
  {
    const topology::GeoPoint anchors[] = {far, same, same};
    EXPECT_EQ(ShardMap::nearest_anchor(at, anchors), 1u);
  }
  {
    // A duplicated best candidate: the later copy computes the exact
    // same distance and must NOT displace the earlier one.
    const topology::GeoPoint near{12.0, 21.0};
    const topology::GeoPoint anchors[] = {far, near, far, near};
    EXPECT_EQ(ShardMap::nearest_anchor(at, anchors), 1u)
        << "equidistant candidates must keep the first";
  }
  // And a strictly closer later anchor must still win.
  {
    const topology::GeoPoint close{10.0, 20.5};
    const topology::GeoPoint anchors[] = {same, far, close};
    EXPECT_EQ(ShardMap::nearest_anchor(at, anchors), 2u);
  }
}

TEST(ShardMapTest, ZeroShardsClampsToOne) {
  const ShardMap map = ShardMap::from_topology(shared_internet(), 0);
  EXPECT_EQ(map.shard_count(), 1u);
}

TEST(DesModelTest, ValidatesSessions) {
  PacketModel model(fabric(), sim::SimArchitecture::kIndirection);
  SessionParams good;
  good.correspondent = edge(0);
  good.schedule = {{0.0, edge(1)}};
  EXPECT_EQ(model.add_session(good), 0u);

  SessionParams p = good;
  p.schedule.clear();
  EXPECT_THROW(model.add_session(p), std::invalid_argument);

  p = good;
  p.schedule = {{5.0, edge(1)}};  // first step must be at 0
  EXPECT_THROW(model.add_session(p), std::invalid_argument);

  p = good;
  p.schedule = {{0.0, edge(1)}, {200.0, edge(2)}, {100.0, edge(3)}};
  EXPECT_THROW(model.add_session(p), std::invalid_argument);

  p = good;
  p.interval_ms = 0.0;
  EXPECT_THROW(model.add_session(p), std::invalid_argument);

  p = good;
  p.duration_ms = -1.0;
  EXPECT_THROW(model.add_session(p), std::invalid_argument);

  p = good;
  p.correspondent = static_cast<AsId>(1u << 30);  // out of range
  EXPECT_THROW(model.add_session(p), std::invalid_argument);

  PacketModel resolution(fabric(), sim::SimArchitecture::kNameResolution);
  p = good;  // no resolver_as
  EXPECT_THROW(resolution.add_session(p), std::invalid_argument);
  p.resolver_as = edge(5);
  EXPECT_EQ(resolution.add_session(p), 0u);

  PacketModel replicated(fabric(),
                         sim::SimArchitecture::kReplicatedResolution);
  p = good;  // no replicas
  EXPECT_THROW(replicated.add_session(p), std::invalid_argument);
  p.resolver_replicas = {edge(5), edge(6)};
  EXPECT_EQ(replicated.add_session(p), 0u);
}

TEST(DesModelTest, InitialEventShape) {
  PacketModel model(fabric(), sim::SimArchitecture::kIndirection);
  SessionParams p;
  p.correspondent = edge(0);
  p.schedule = {{0.0, edge(1)}};
  p.start_ms = 125.0;
  model.add_session(p);
  const EventRecord first = model.initial_event(0);
  EXPECT_EQ(first.type, EventType::kEmit);
  EXPECT_DOUBLE_EQ(first.time_ms, 125.0);
  EXPECT_EQ(first.session, 0u);
  EXPECT_EQ(first.packet, 0u);
  EXPECT_EQ(first.at, edge(0));
}

TEST(DesModelTest, SerialAccounting) {
  PacketModel model(fabric(), sim::SimArchitecture::kIndirection);
  SessionParams p;
  p.correspondent = edge(0);
  p.schedule = {{0.0, edge(1)}};
  p.interval_ms = 20.0;
  p.duration_ms = 900.0;  // emits at 0, 20, ..., 880 -> 45 packets
  model.add_session(p);
  const RunStats stats = run_serial(model);
  EXPECT_EQ(stats.digest.sent, 45u);
  EXPECT_EQ(stats.digest.sent, stats.digest.delivered + stats.digest.lost);
  EXPECT_GE(stats.digest.hop_events, stats.digest.delivered);
  EXPECT_GT(stats.events, stats.digest.sent);
}

TEST(DesEngineTest, RejectsBadWindow) {
  PacketModel model(fabric(), sim::SimArchitecture::kIndirection);
  const ShardMap map = ShardMap::from_topology(shared_internet(), 4);
  EngineConfig config;
  config.window_ms = -1.0;
  EXPECT_THROW(ShardedEngine(model, map, config), std::invalid_argument);
  config.window_ms = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(ShardedEngine(model, map, config), std::invalid_argument);
}

TEST(DesEngineTest, EmptyModelRunsToNothing) {
  PacketModel model(fabric(), sim::SimArchitecture::kIndirection);
  const ShardMap map = ShardMap::from_topology(shared_internet(), 4);
  ShardedEngine engine(model, map);
  const RunStats stats = engine.run();
  EXPECT_EQ(stats.events, 0u);
  EXPECT_EQ(stats.digest, DeliveryDigest{});
  EXPECT_EQ(stats.windows, 0u);
}

TEST(DesDigestTest, CombineIsCommutative) {
  DeliveryDigest a;
  a.add_delivered(1, 2, 30.0, 10.0, 5, 7);
  a.add_delivered(1, 3, 50.0, 30.0, 4, 7);
  DeliveryDigest b;
  b.add_delivered(2, 0, 12.0, 2.0, 3, 9);
  DeliveryDigest ab = a;
  ab.combine(b);
  DeliveryDigest ba = b;
  ba.combine(a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.fingerprint(), ba.fingerprint());
  EXPECT_NE(ab.fingerprint(), a.fingerprint());
}

TEST(DesReplayTest, StreamedReplayIdentityAcrossBatchAndShards) {
  // 12 users / 3 trace shards out of the shared workload; the digest must
  // be invariant across engine shard counts and batch sizes, and equal to
  // the serial reference.
  lina::testing::TempTraceDir dir("des-replay");
  mobility::DeviceWorkloadConfig workload;
  workload.user_count = 12;
  workload.days = 3;
  const mobility::DeviceWorkloadGenerator generator(shared_internet(),
                                                    workload);
  trace::StreamingWorkloadConfig stream;
  stream.users_per_shard = 5;
  const trace::ShardSet set =
      trace::StreamingWorkload(generator, stream).write_shards(dir.path());

  PacketReplayConfig config;
  config.architecture = sim::SimArchitecture::kReplicatedResolution;
  config.hours = 24.0;
  config.interval_ms = 400.0;
  config.correspondent = edge(0);
  config.replicas = {edge(1), edge(2), edge(3)};
  config.serial = true;
  const PacketReplayStats serial =
      replay_packets_streamed(fabric(), set, config);
  EXPECT_EQ(serial.sessions, 12u);
  EXPECT_GT(serial.digest.sent, 0u);

  config.serial = false;
  for (const std::size_t shards : {1u, 4u}) {
    for (const std::size_t batch : {3u, 12u}) {
      for (const SyncMode sync :
           {SyncMode::kConservative, SyncMode::kOptimistic}) {
        config.engine.shard_count = shards;
        config.engine.sync = sync;
        config.batch_users = batch;
        const PacketReplayStats streamed =
            replay_packets_streamed(fabric(), set, config);
        EXPECT_EQ(streamed.digest, serial.digest)
            << "shards=" << shards << " batch=" << batch
            << " sync=" << static_cast<int>(sync);
        EXPECT_EQ(streamed.sessions, serial.sessions);
        EXPECT_EQ(streamed.events, serial.events);
        EXPECT_EQ(streamed.shard_events.size(), shards);
      }
    }
  }
}

}  // namespace
}  // namespace lina::des
