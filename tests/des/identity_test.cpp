// The acceptance gate of DESIGN.md §4i/§4j: both sharded sync modes'
// delivered-packet digests must equal the serial sim::EventQueue loop's
// digest bit-for-bit for every architecture, at shard counts {1, 4, 16}
// and thread counts {1, 8}, with and without an active FailurePlan.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../support/fixtures.hpp"
#include "lina/des/engine.hpp"

namespace lina::des {
namespace {

using lina::testing::shared_internet;
using topology::AsId;

const sim::ForwardingFabric& fabric() {
  static const sim::ForwardingFabric instance(shared_internet());
  return instance;
}

AsId edge(std::size_t i) { return shared_internet().edge_ases()[i]; }

std::vector<AsId> metro_locals(std::size_t anchor, std::size_t k) {
  return shared_internet().edge_ases_near(topology::metro_anchors()[anchor],
                                          k);
}

/// A small mixed population: stationary, metro-local roamers, and one
/// cross-metro mover, so every belief path (stale resolver answers,
/// wavefront re-aiming, triangle re-addressing) fires.
void add_population(PacketModel& model) {
  const std::vector<AsId> near0 = metro_locals(0, 4);
  const std::vector<AsId> near1 = metro_locals(1, 3);
  {
    SessionParams p;
    p.correspondent = edge(0);
    p.schedule = {{0.0, edge(25)}};
    p.interval_ms = 40.0;
    p.duration_ms = 1600.0;
    p.resolver_as = edge(10);
    p.resolver_replicas = {edge(10), edge(30), edge(50)};
    model.add_session(p);
  }
  {
    SessionParams p;
    p.correspondent = edge(1);
    p.schedule = {{0.0, near0[0]},
                  {400.0, near0[1]},
                  {800.0, near0[2]},
                  {1200.0, near0[3]}};
    p.interval_ms = 25.0;
    p.duration_ms = 1600.0;
    p.resolver_ttl_ms = 120.0;
    p.resolver_as = edge(10);
    p.resolver_replicas = {edge(10), edge(30), edge(50)};
    model.add_session(p);
  }
  {
    SessionParams p;
    p.correspondent = edge(2);
    p.schedule = {{0.0, near0[1]}, {700.0, near1[0]}, {1300.0, near1[1]}};
    p.interval_ms = 30.0;
    p.duration_ms = 1500.0;
    p.resolver_ttl_ms = 90.0;
    p.resolver_as = edge(30);
    p.resolver_replicas = {edge(30), edge(50)};
    p.update_scope_hops = 3;  // §8 scoped flooding
    model.add_session(p);
  }
}

sim::FailurePlan faulty_plan() {
  sim::FailurePlan plan(7);
  // A transit outage and a link cut mid-run impair the data plane; a
  // resolver crash and a home-agent crash hit the control processes the
  // resolution / indirection architectures depend on.
  plan.as_outage(shared_internet().graph().ases_of_tier(
                     topology::AsTier::kTier2)[0],
                 300.0, 700.0);
  plan.link_cut(edge(25), shared_internet()
                              .graph()
                              .links(edge(25))
                              .front()
                              .neighbor,
                500.0, 900.0);
  plan.resolver_crash(edge(10), 200.0, 600.0);
  plan.home_agent_crash(edge(25), 800.0, 1100.0);
  return plan;
}

constexpr sim::SimArchitecture kAll[] = {
    sim::SimArchitecture::kIndirection,
    sim::SimArchitecture::kNameResolution,
    sim::SimArchitecture::kReplicatedResolution,
    sim::SimArchitecture::kNameBased,
};

TEST(DesIdentityTest, ShardedMatchesSerialAcrossMatrix) {
  for (const bool with_faults : {false, true}) {
    const sim::FailurePlan plan = faulty_plan();
    for (const sim::SimArchitecture arch : kAll) {
      PacketModel model(fabric(), arch, with_faults ? &plan : nullptr);
      add_population(model);
      const RunStats serial = run_serial(model);
      ASSERT_GT(serial.digest.sent, 0u);
      ASSERT_GT(serial.digest.delivered, 0u);
      EXPECT_EQ(serial.digest.sent,
                serial.digest.delivered + serial.digest.lost);
      for (const std::size_t shards : {1u, 4u, 16u}) {
        const ShardMap map =
            ShardMap::from_topology(shared_internet(), shards);
        for (const std::size_t threads : {1u, 8u}) {
          for (const SyncMode sync :
               {SyncMode::kConservative, SyncMode::kOptimistic}) {
            EngineConfig config;
            config.shard_count = shards;
            config.threads = threads;
            config.sync = sync;
            ShardedEngine engine(model, map, config);
            const RunStats sharded = engine.run();
            EXPECT_EQ(sharded.digest, serial.digest)
                << "arch=" << static_cast<int>(arch)
                << " shards=" << shards << " threads=" << threads
                << " sync=" << static_cast<int>(sync)
                << " faults=" << with_faults;
            EXPECT_EQ(sharded.events, serial.events);
            EXPECT_EQ(sharded.shard_events.size(), shards);
            std::uint64_t across = 0;
            for (const std::uint64_t count : sharded.shard_events) {
              across += count;
            }
            EXPECT_EQ(across, sharded.events);
            if (sharded.events > 0) {
              EXPECT_GE(sharded.shard_imbalance, 1.0 - 1e-9);
            }
          }
        }
      }
    }
  }
}

TEST(DesIdentityTest, DigestIsThreadAndShardInvariantButFaultSensitive) {
  const sim::FailurePlan plan = faulty_plan();
  PacketModel healthy(fabric(), sim::SimArchitecture::kIndirection);
  PacketModel faulted(fabric(), sim::SimArchitecture::kIndirection, &plan);
  add_population(healthy);
  add_population(faulted);
  // Faults must change the digest (otherwise the with-faults arm of the
  // matrix proves nothing).
  EXPECT_NE(run_serial(healthy).digest, run_serial(faulted).digest);
}

}  // namespace
}  // namespace lina::des
