#include "lina/names/interner.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "lina/names/content_name.hpp"

namespace {

using lina::names::ComponentInterner;
using lina::names::ContentName;

TEST(ComponentInternerTest, SameSpellingSameId) {
  ComponentInterner interner;
  const auto a = interner.intern("yahoo");
  const auto b = interner.intern("travel");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.intern("yahoo"), a);
  EXPECT_EQ(interner.intern("travel"), b);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(ComponentInternerTest, SpellingRoundTrips) {
  ComponentInterner interner;
  const auto id = interner.intern("com");
  EXPECT_EQ(interner.spelling(id), "com");
  EXPECT_THROW((void)interner.spelling(id + 1), std::out_of_range);
}

TEST(ComponentInternerTest, BytesGrowWithVocabulary) {
  ComponentInterner interner;
  const auto before = interner.bytes();
  interner.intern("a-reasonably-long-component");
  EXPECT_GT(interner.bytes(), before);
}

TEST(ComponentInternerTest, ConcurrentInterningConverges) {
  ComponentInterner interner;
  constexpr int kThreads = 8;
  constexpr int kWords = 64;
  std::vector<std::vector<std::uint32_t>> ids(kThreads);
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&interner, &ids, t] {
        for (int w = 0; w < kWords; ++w) {
          ids[static_cast<std::size_t>(t)].push_back(
              interner.intern("w" + std::to_string(w)));
        }
      });
    }
  }
  // Every thread resolved every word to the same id, and the vocabulary
  // holds exactly the distinct words.
  EXPECT_EQ(interner.size(), static_cast<std::size_t>(kWords));
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[static_cast<std::size_t>(t)], ids[0]);
  }
  for (int w = 0; w < kWords; ++w) {
    EXPECT_EQ(interner.spelling(ids[0][static_cast<std::size_t>(w)]),
              "w" + std::to_string(w));
  }
}

TEST(ComponentInternerTest, ContentNamesShareTheGlobalVocabulary) {
  const ContentName a = ContentName::from_dns("travel.yahoo.com");
  const ContentName b = ContentName::from_dns("mail.yahoo.com");
  ASSERT_EQ(a.component_ids().size(), 3u);
  ASSERT_EQ(b.component_ids().size(), 3u);
  // Shared components ("com", "yahoo") resolve to identical ids.
  EXPECT_EQ(a.component_ids()[0], b.component_ids()[0]);
  EXPECT_EQ(a.component_ids()[1], b.component_ids()[1]);
  EXPECT_NE(a.component_ids()[2], b.component_ids()[2]);
  EXPECT_EQ(ComponentInterner::global().spelling(a.component_ids()[2]),
            "travel");
}

}  // namespace
