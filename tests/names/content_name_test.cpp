#include "lina/names/content_name.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace lina::names {
namespace {

TEST(ContentNameTest, FromDnsReversesLabels) {
  const ContentName n = ContentName::from_dns("travel.yahoo.com");
  ASSERT_EQ(n.depth(), 3u);
  EXPECT_EQ(n.components()[0], "com");
  EXPECT_EQ(n.components()[1], "yahoo");
  EXPECT_EQ(n.components()[2], "travel");
  EXPECT_EQ(n.to_dns(), "travel.yahoo.com");
}

TEST(ContentNameTest, FromUriKeepsOrder) {
  const ContentName n = ContentName::from_uri("/Disney/StarWarsIV");
  ASSERT_EQ(n.depth(), 2u);
  EXPECT_EQ(n.components()[0], "Disney");
  EXPECT_EQ(n.components()[1], "StarWarsIV");
  EXPECT_EQ(n.to_uri(), "/Disney/StarWarsIV");
}

TEST(ContentNameTest, FromUriWithoutLeadingSlash) {
  EXPECT_EQ(ContentName::from_uri("a/b"), ContentName::from_uri("/a/b"));
}

TEST(ContentNameTest, RejectsMalformed) {
  EXPECT_THROW((void)ContentName::from_dns(""), std::invalid_argument);
  EXPECT_THROW((void)ContentName::from_dns("a..b"), std::invalid_argument);
  EXPECT_THROW((void)ContentName::from_dns(".a"), std::invalid_argument);
  EXPECT_THROW((void)ContentName::from_dns("a."), std::invalid_argument);
  EXPECT_THROW((void)ContentName::from_uri("/"), std::invalid_argument);
  EXPECT_THROW((void)ContentName::from_uri("//a"), std::invalid_argument);
  EXPECT_THROW(ContentName({"a", ""}), std::invalid_argument);
}

TEST(ContentNameTest, ParentAndChild) {
  const ContentName n = ContentName::from_dns("travel.yahoo.com");
  EXPECT_EQ(n.parent(), ContentName::from_dns("yahoo.com"));
  EXPECT_EQ(n.parent().child("travel"), n);
  EXPECT_THROW((void)ContentName().parent(), std::logic_error);
}

TEST(ContentNameTest, PrefixRelation) {
  const ContentName apex = ContentName::from_dns("yahoo.com");
  const ContentName sub = ContentName::from_dns("travel.yahoo.com");
  const ContentName other = ContentName::from_dns("cnn.com");
  EXPECT_TRUE(apex.is_prefix_of(sub));
  EXPECT_TRUE(apex.is_prefix_of(apex));
  EXPECT_FALSE(sub.is_prefix_of(apex));
  EXPECT_FALSE(apex.is_prefix_of(other));
}

TEST(ContentNameTest, StrictSubnameMatchesPaperNotation) {
  // The paper's d1 < d2: travel.yahoo.com is a strict subdomain of
  // yahoo.com.
  const ContentName d1 = ContentName::from_dns("travel.yahoo.com");
  const ContentName d2 = ContentName::from_dns("yahoo.com");
  EXPECT_TRUE(d1.is_strict_subname_of(d2));
  EXPECT_FALSE(d2.is_strict_subname_of(d1));
  EXPECT_FALSE(d1.is_strict_subname_of(d1));
}

TEST(ContentNameTest, LabelBoundaryNotStringPrefix) {
  // "notyahoo.com" must not be treated as under "yahoo.com".
  const ContentName apex = ContentName::from_dns("yahoo.com");
  const ContentName trick = ContentName::from_dns("x.notyahoo.com");
  EXPECT_FALSE(apex.is_prefix_of(trick));
}

TEST(ContentNameTest, EmptyName) {
  const ContentName n;
  EXPECT_TRUE(n.empty());
  EXPECT_EQ(n.depth(), 0u);
  EXPECT_TRUE(n.is_prefix_of(ContentName::from_dns("a.b")));
  EXPECT_EQ(n.to_uri(), "/");
}

TEST(ContentNameTest, OrderingAndEquality) {
  const ContentName a = ContentName::from_dns("a.com");
  const ContentName b = ContentName::from_dns("b.com");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, ContentName::from_dns("a.com"));
}

TEST(ContentNameTest, Hashable) {
  std::unordered_set<ContentName> set;
  set.insert(ContentName::from_dns("a.com"));
  set.insert(ContentName::from_dns("a.com"));
  set.insert(ContentName::from_dns("b.a.com"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(ContentNameTest, DistributionRightsTransferExample) {
  // Figure 2 right: /20thCenturyFox/StarWarsIV moving to
  // /Disney/StarWarsIV changes the name's hierarchical prefix.
  const ContentName before = ContentName::from_uri("/20thCenturyFox/StarWarsIV");
  const ContentName after = ContentName::from_uri("/Disney/StarWarsIV");
  EXPECT_TRUE(ContentName::from_uri("/20thCenturyFox").is_prefix_of(before));
  EXPECT_FALSE(ContentName::from_uri("/20thCenturyFox").is_prefix_of(after));
  EXPECT_TRUE(ContentName::from_uri("/Disney").is_prefix_of(after));
}

}  // namespace
}  // namespace lina::names
