#include "lina/names/name_trie.hpp"

#include <gtest/gtest.h>

#include <map>

#include "lina/stats/rng.hpp"

namespace lina::names {
namespace {

ContentName dns(const char* text) { return ContentName::from_dns(text); }

TEST(NameTrieTest, EmptyLookup) {
  NameTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.lookup(dns("a.com")), std::nullopt);
}

TEST(NameTrieTest, ExactAndOverwrite) {
  NameTrie<int> trie;
  EXPECT_TRUE(trie.insert(dns("yahoo.com"), 2));
  EXPECT_FALSE(trie.insert(dns("yahoo.com"), 3));
  EXPECT_EQ(trie.size(), 1u);
  ASSERT_NE(trie.exact(dns("yahoo.com")), nullptr);
  EXPECT_EQ(*trie.exact(dns("yahoo.com")), 3);
  EXPECT_EQ(trie.exact(dns("travel.yahoo.com")), nullptr);
}

TEST(NameTrieTest, LongestMatchingPrefix) {
  NameTrie<int> trie;
  trie.insert(dns("com"), 1);
  trie.insert(dns("yahoo.com"), 2);
  trie.insert(dns("sports.yahoo.com"), 5);

  auto hit = trie.lookup(dns("sports.yahoo.com"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->second, 5);
  EXPECT_EQ(hit->first, dns("sports.yahoo.com"));

  hit = trie.lookup(dns("travel.yahoo.com"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->second, 2);
  EXPECT_EQ(hit->first, dns("yahoo.com"));

  hit = trie.lookup(dns("deep.travel.yahoo.com"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->second, 2);

  hit = trie.lookup(dns("cnn.com"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->second, 1);
}

TEST(NameTrieTest, NoMatchOutsideHierarchy) {
  NameTrie<int> trie;
  trie.insert(dns("yahoo.com"), 2);
  EXPECT_EQ(trie.lookup(dns("mit.edu")), std::nullopt);
  EXPECT_EQ(trie.lookup(dns("com")), std::nullopt);
}

TEST(NameTrieTest, RootEntryCatchesAll) {
  NameTrie<int> trie;
  trie.insert(ContentName(), 42);
  EXPECT_EQ(trie.lookup(dns("anything.example"))->second, 42);
}

TEST(NameTrieTest, EraseKeepsDescendants) {
  NameTrie<int> trie;
  trie.insert(dns("yahoo.com"), 2);
  trie.insert(dns("travel.yahoo.com"), 7);
  EXPECT_TRUE(trie.erase(dns("yahoo.com")));
  EXPECT_FALSE(trie.erase(dns("yahoo.com")));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.lookup(dns("travel.yahoo.com"))->second, 7);
  EXPECT_EQ(trie.lookup(dns("sports.yahoo.com")), std::nullopt);
}

TEST(NameTrieTest, VisitInOrder) {
  NameTrie<int> trie;
  trie.insert(dns("cnn.com"), 1);
  trie.insert(dns("yahoo.com"), 2);
  trie.insert(dns("travel.yahoo.com"), 3);
  std::map<std::string, int> seen;
  trie.visit([&seen](const ContentName& n, const int& v) {
    seen[n.to_dns()] = v;
  });
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen["travel.yahoo.com"], 3);
}

TEST(NameTrieTest, Figure3Aggregateability) {
  // Figure 3: [yahoo.com 2], [travel.yahoo.com 2] (subsumed),
  // [sports.yahoo.com 5], [cnn.com 2], [mit.edu 4].
  NameTrie<int> trie;
  trie.insert(dns("yahoo.com"), 2);
  trie.insert(dns("travel.yahoo.com"), 2);
  trie.insert(dns("sports.yahoo.com"), 5);
  trie.insert(dns("cnn.com"), 2);
  trie.insert(dns("mit.edu"), 4);
  EXPECT_EQ(trie.size(), 5u);
  // travel.yahoo.com is subsumed by yahoo.com; nothing else collapses
  // (cnn.com shares the port but not the hierarchy).
  EXPECT_EQ(trie.lpm_compressed_size(), 4u);
}

TEST(NameTrieTest, AggregateabilityDeepChains) {
  NameTrie<int> trie;
  trie.insert(dns("com"), 9);
  trie.insert(dns("a.com"), 9);
  trie.insert(dns("b.a.com"), 9);
  trie.insert(dns("c.b.a.com"), 1);
  trie.insert(dns("d.c.b.a.com"), 9);
  EXPECT_EQ(trie.size(), 5u);
  // com kept; a.com, b.a.com subsumed; c.b.a.com kept; d.c... kept
  // (its nearest stored ancestor c.b.a.com has value 1).
  EXPECT_EQ(trie.lpm_compressed_size(), 3u);
}

TEST(NameTrieTest, ClearResets) {
  NameTrie<int> trie;
  trie.insert(dns("a.com"), 1);
  trie.clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.lookup(dns("a.com")), std::nullopt);
}

// Property test: trie lookups agree with brute force over random
// hierarchical names.
class NameTriePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NameTriePropertyTest, AgreesWithBruteForce) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const auto random_name = [&rng]() {
    const std::size_t depth = 1 + rng.index(4);
    std::vector<std::string> parts;
    for (std::size_t d = 0; d < depth; ++d) {
      parts.push_back("c" + std::to_string(rng.index(4)));
    }
    return ContentName(parts);
  };

  NameTrie<int> trie;
  std::map<ContentName, int> reference;
  for (int i = 0; i < 120; ++i) {
    const ContentName name = random_name();
    trie.insert(name, i);
    reference[name] = i;
  }
  EXPECT_EQ(trie.size(), reference.size());

  for (int q = 0; q < 300; ++q) {
    const ContentName query = random_name();
    std::optional<std::pair<ContentName, int>> expected;
    for (const auto& [name, value] : reference) {
      if (name.is_prefix_of(query) &&
          (!expected.has_value() ||
           name.depth() > expected->first.depth())) {
        expected = {name, value};
      }
    }
    const auto actual = trie.lookup(query);
    ASSERT_EQ(actual.has_value(), expected.has_value());
    if (actual.has_value()) {
      EXPECT_EQ(actual->first, expected->first);
      EXPECT_EQ(actual->second, expected->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomNames, NameTriePropertyTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace lina::names
