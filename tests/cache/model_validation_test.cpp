// Validates the measured TTL+LRU hit rate against the Coras/Che analytic
// model (lina::analytic::lru_cache_model) on the model's own reference
// stream: Poisson aggregate lookups over a Zipf catalog (IRM) with
// per-mapping Poisson churn invalidations. The acceptance bound is the
// ISSUE's: within 5% absolute across the sweep grid. The same stream is
// what bench/cache_sweep's model_validation phase runs at larger scale.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "lina/analytic/cache_model.hpp"
#include "lina/cache/mapping_cache.hpp"
#include "lina/stats/distributions.hpp"
#include "lina/stats/rng.hpp"

namespace lina::cache {
namespace {

struct StreamResult {
  double hit_rate = 0.0;
  CacheStats stats;
};

/// Drives one IRM request stream with per-item Poisson churn through a
/// MappingCache. Requests arrive as an aggregate Poisson process; churn
/// events per catalog item fire from a global min-heap so every item's
/// invalidation process is exactly Poisson(churn_rate), matching the
/// model's assumptions (not an approximation of them).
StreamResult run_stream(Policy policy, std::size_t capacity, double ttl_ms,
                        std::size_t catalog, double zipf_exponent,
                        double request_rate_per_ms,
                        double churn_rate_per_ms, std::size_t requests,
                        stats::Rng rng) {
  CacheConfig config;
  config.policy = policy;
  config.capacity = capacity;
  config.ttl_ms = ttl_ms;
  MappingCache<std::uint64_t, std::uint32_t> mapping(config);
  stats::Zipf zipf(catalog, zipf_exponent);

  using ChurnEvent = std::pair<double, std::uint64_t>;  // (time, key)
  std::priority_queue<ChurnEvent, std::vector<ChurnEvent>,
                      std::greater<ChurnEvent>>
      churn;
  if (churn_rate_per_ms > 0.0) {
    for (std::uint64_t key = 1; key <= catalog; ++key)
      churn.emplace(rng.exponential(churn_rate_per_ms), key);
  }

  double now = 0.0;
  for (std::size_t i = 0; i < requests; ++i) {
    now += rng.exponential(request_rate_per_ms);
    while (!churn.empty() && churn.top().first <= now) {
      const auto [time, key] = churn.top();
      churn.pop();
      mapping.invalidate(key);
      churn.emplace(time + rng.exponential(churn_rate_per_ms), key);
    }
    const auto key = static_cast<std::uint64_t>(zipf.sample(rng));
    if (!mapping.probe(key, now).has_value())
      mapping.insert(key, static_cast<std::uint32_t>(key), now);
  }
  return {mapping.stats().hit_rate(), mapping.stats()};
}

constexpr std::size_t kCatalog = 2048;
constexpr double kZipf = 1.0;
constexpr double kRate = 1.0;       // requests per ms
constexpr double kChurn = 2e-5;     // invalidations per mapping per ms
constexpr std::size_t kRequests = 120000;

TEST(CacheModelValidationTest, LruHitRateWithinFivePercentAcrossCapacities) {
  stats::Rng rng(31, "cache-model-validation");
  std::uint64_t cell = 0;
  for (const std::size_t capacity : {64u, 256u, 1024u}) {
    SCOPED_TRACE(::testing::Message() << "capacity " << capacity);
    analytic::CacheModelInput input;
    input.catalog = kCatalog;
    input.zipf_exponent = kZipf;
    input.capacity = capacity;
    input.ttl_ms = 0.0;  // unbounded: capacity pressure alone
    input.request_rate_per_ms = kRate;
    input.churn_rate_per_ms = kChurn;
    const auto predicted = analytic::lru_cache_model(input);
    const auto measured = run_stream(
        Policy::kTtlLru, capacity, std::numeric_limits<double>::infinity(),
        kCatalog, kZipf, kRate, kChurn, kRequests, rng.split(cell++));
    EXPECT_LT(std::abs(measured.hit_rate - predicted.hit_rate), 0.05)
        << "measured " << measured.hit_rate << " vs predicted "
        << predicted.hit_rate;
    // The constraint the characteristic time solves for: steady-state
    // occupancy fills the cache when the catalog pressure exceeds it.
    EXPECT_EQ(measured.stats.evictions > 0,
              std::isfinite(predicted.characteristic_time_ms));
  }
}

TEST(CacheModelValidationTest, LruHitRateWithinFivePercentAcrossTtls) {
  stats::Rng rng(32, "cache-model-validation-ttl");
  std::uint64_t cell = 0;
  for (const double ttl_ms : {50.0, 200.0, 1000.0}) {
    SCOPED_TRACE(::testing::Message() << "ttl " << ttl_ms);
    analytic::CacheModelInput input;
    input.catalog = kCatalog;
    input.zipf_exponent = kZipf;
    input.capacity = 256;
    input.ttl_ms = ttl_ms;
    input.request_rate_per_ms = kRate;
    input.churn_rate_per_ms = kChurn;
    const auto predicted = analytic::lru_cache_model(input);
    const auto measured =
        run_stream(Policy::kTtlLru, 256, ttl_ms, kCatalog, kZipf, kRate,
                   kChurn, kRequests, rng.split(cell++));
    EXPECT_LT(std::abs(measured.hit_rate - predicted.hit_rate), 0.05)
        << "measured " << measured.hit_rate << " vs predicted "
        << predicted.hit_rate;
  }
}

TEST(CacheModelValidationTest, ChurnDepressesHitRateAsModelled) {
  // Heavy churn must show up in both the model and the measurement — and
  // they must still agree. mu = 1e-3/ms invalidates each mapping about
  // every 1000 ms, comparable to the head's inter-request gaps.
  analytic::CacheModelInput input;
  input.catalog = kCatalog;
  input.zipf_exponent = kZipf;
  input.capacity = 256;
  input.ttl_ms = 0.0;
  input.request_rate_per_ms = kRate;
  input.churn_rate_per_ms = 1e-3;
  const auto churned = analytic::lru_cache_model(input);
  input.churn_rate_per_ms = 0.0;
  const auto calm = analytic::lru_cache_model(input);
  EXPECT_LT(churned.hit_rate, calm.hit_rate);

  stats::Rng rng(33, "cache-model-churn");
  const auto measured = run_stream(
      Policy::kTtlLru, 256, std::numeric_limits<double>::infinity(),
      kCatalog, kZipf, kRate, 1e-3, kRequests, rng.split(0));
  EXPECT_LT(std::abs(measured.hit_rate - churned.hit_rate), 0.05)
      << "measured " << measured.hit_rate << " vs predicted "
      << churned.hit_rate;
  EXPECT_GT(measured.stats.invalidations, 0u);
}

TEST(CacheModelValidationTest, LfuAndTwoQBeatOrMatchLruOnIrm) {
  // Not a model identity (the Che model is LRU-specific) but the ranking
  // the policies exist for: under a stationary Zipf stream, frequency-
  // aware policies should not lose to plain LRU by more than noise.
  stats::Rng rng(34, "cache-policy-ranking");
  const auto lru = run_stream(Policy::kTtlLru, 256,
                              std::numeric_limits<double>::infinity(),
                              kCatalog, kZipf, kRate, kChurn, kRequests,
                              rng.split(0));
  const auto lfu = run_stream(Policy::kLfu, 256,
                              std::numeric_limits<double>::infinity(),
                              kCatalog, kZipf, kRate, kChurn, kRequests,
                              rng.split(1));
  const auto two_q = run_stream(Policy::kTwoQ, 256,
                                std::numeric_limits<double>::infinity(),
                                kCatalog, kZipf, kRate, kChurn, kRequests,
                                rng.split(2));
  EXPECT_GT(lfu.hit_rate, lru.hit_rate - 0.02);
  EXPECT_GT(two_q.hit_rate, lru.hit_rate - 0.02);
}

}  // namespace
}  // namespace lina::cache
