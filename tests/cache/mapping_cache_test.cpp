#include "lina/cache/mapping_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <stdexcept>

namespace lina::cache {
namespace {

using Cache = MappingCache<std::uint64_t, std::uint32_t>;

CacheConfig config_for(Policy policy, std::size_t capacity,
                       double ttl_ms = 1000.0) {
  CacheConfig config;
  config.policy = policy;
  config.capacity = capacity;
  config.ttl_ms = ttl_ms;
  return config;
}

TEST(CachePolicyTest, NamesRoundTrip) {
  for (const Policy policy :
       {Policy::kOff, Policy::kTtlLru, Policy::kLfu, Policy::kTwoQ}) {
    const auto parsed = parse_policy(policy_name(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
}

TEST(CachePolicyTest, RejectsUnknownSpellings) {
  EXPECT_FALSE(parse_policy("").has_value());
  EXPECT_FALSE(parse_policy("LRU").has_value());
  EXPECT_FALSE(parse_policy("arc").has_value());
  EXPECT_FALSE(parse_policy("2Q").has_value());
  // The fail-fast diagnostic lists every accepted spelling.
  const std::string known = known_policies();
  for (const char* name : {"off", "lru", "lfu", "2q"})
    EXPECT_NE(known.find(name), std::string::npos) << known;
}

TEST(CacheConfigTest, EnabledNeedsPolicyAndCapacity) {
  EXPECT_FALSE(config_for(Policy::kOff, 64).enabled());
  EXPECT_FALSE(config_for(Policy::kTtlLru, 0).enabled());
  EXPECT_TRUE(config_for(Policy::kTtlLru, 1).enabled());
}

TEST(CacheConfigTest, NonPositiveTtlThrows) {
  EXPECT_THROW(Cache(config_for(Policy::kTtlLru, 4, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(Cache(config_for(Policy::kTtlLru, 4, -1.0)),
               std::invalid_argument);
}

TEST(MappingCacheTest, DisabledCacheIsInertAndEmpty) {
  for (const CacheConfig& config :
       {config_for(Policy::kOff, 64), config_for(Policy::kTtlLru, 0)}) {
    Cache cache(config);
    EXPECT_FALSE(cache.enabled());
    EXPECT_EQ(cache.arena_bytes(), 0u);
    EXPECT_FALSE(cache.probe(7, 0.0).has_value());
    EXPECT_FALSE(cache.insert(7, 1, 0.0).inserted);
    EXPECT_FALSE(cache.invalidate(7));
    EXPECT_FALSE(cache.refresh(7, 2, 0.0));
    cache.churn(7, 2, 0.0);
    cache.invalidate_all();
    EXPECT_FALSE(cache.contains(7));
    EXPECT_EQ(cache.size(), 0u);
    // Bit-identity contract: a disabled cache never counts anything.
    EXPECT_EQ(cache.stats(), CacheStats{});
  }
}

TEST(MappingCacheTest, ProbeInsertProbe) {
  Cache cache(config_for(Policy::kTtlLru, 4));
  EXPECT_FALSE(cache.probe(1, 0.0).has_value());
  const auto result = cache.insert(1, 42, 0.0);
  EXPECT_TRUE(result.inserted);
  EXPECT_FALSE(result.evicted.has_value());
  const auto hit = cache.probe(1, 10.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 42u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

TEST(MappingCacheTest, InsertingPresentKeyUpdatesInPlace) {
  Cache cache(config_for(Policy::kTtlLru, 4));
  cache.insert(1, 42, 0.0);
  const auto again = cache.insert(1, 43, 1.0);
  EXPECT_FALSE(again.inserted);
  EXPECT_FALSE(again.evicted.has_value());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(*cache.probe(1, 2.0), 43u);
}

TEST(MappingCacheTest, IdleTtlExpiresOnProbe) {
  Cache cache(config_for(Policy::kTtlLru, 4, /*ttl_ms=*/100.0));
  cache.insert(1, 42, 0.0);
  EXPECT_TRUE(cache.probe(1, 100.0).has_value());  // boundary: still live
  // The hit at t=100 re-armed the TTL to t=200 (sliding idle bound).
  EXPECT_TRUE(cache.probe(1, 200.0).has_value());
  EXPECT_FALSE(cache.probe(1, 300.1).has_value());
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.stats().ttl_expiries, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(MappingCacheTest, ChurnInvalidateDropsWithoutEvictionCount) {
  Cache cache(config_for(Policy::kTtlLru, 4));
  cache.insert(1, 42, 0.0);
  EXPECT_TRUE(cache.invalidate(1));
  EXPECT_FALSE(cache.invalidate(1));  // already gone
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(MappingCacheTest, ChurnRefreshOverwritesInPlace) {
  Cache cache(config_for(Policy::kTtlLru, 4));
  cache.insert(1, 42, 0.0);
  EXPECT_TRUE(cache.refresh(1, 99, 5.0));
  EXPECT_FALSE(cache.refresh(2, 7, 5.0));  // absent keys are not installed
  EXPECT_FALSE(cache.contains(2));
  EXPECT_EQ(*cache.probe(1, 6.0), 99u);
  EXPECT_EQ(cache.stats().refreshes, 1u);
  EXPECT_EQ(cache.stats().invalidations, 0u);
}

TEST(MappingCacheTest, ChurnDispatchesOnConfiguredAction) {
  CacheConfig refresh_config = config_for(Policy::kTtlLru, 4);
  refresh_config.churn = ChurnAction::kRefresh;
  Cache refreshing(refresh_config);
  refreshing.insert(1, 42, 0.0);
  refreshing.churn(1, 99, 1.0);
  EXPECT_EQ(*refreshing.probe(1, 2.0), 99u);
  EXPECT_EQ(refreshing.stats().refreshes, 1u);

  Cache invalidating(config_for(Policy::kTtlLru, 4));
  invalidating.insert(1, 42, 0.0);
  invalidating.churn(1, 99, 1.0);
  EXPECT_FALSE(invalidating.contains(1));
  EXPECT_EQ(invalidating.stats().invalidations, 1u);
}

TEST(MappingCacheTest, InvalidateAllDropsEverythingAndStaysUsable) {
  for (const Policy policy : {Policy::kTtlLru, Policy::kLfu, Policy::kTwoQ}) {
    SCOPED_TRACE(policy_name(policy));
    Cache cache(config_for(policy, 8));
    for (std::uint64_t key = 0; key < 8; ++key)
      cache.insert(key, static_cast<std::uint32_t>(key), 0.0);
    cache.invalidate_all();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().invalidations, 8u);
    EXPECT_EQ(cache.stats().evictions, 0u);
    // The arena must be fully reusable after the wipe.
    for (std::uint64_t key = 100; key < 108; ++key)
      EXPECT_TRUE(cache.insert(key, 1, 1.0).inserted);
    EXPECT_EQ(cache.size(), 8u);
    for (std::uint64_t key = 100; key < 108; ++key)
      EXPECT_TRUE(cache.contains(key));
  }
}

TEST(MappingCacheTest, LruEvictsLeastRecentlyUsed) {
  Cache cache(config_for(Policy::kTtlLru, 3));
  cache.insert(1, 1, 0.0);
  cache.insert(2, 2, 0.0);
  cache.insert(3, 3, 0.0);
  cache.probe(1, 1.0);  // 1 becomes MRU; LRU order is now 2, 3, 1
  const auto result = cache.insert(4, 4, 2.0);
  ASSERT_TRUE(result.evicted.has_value());
  EXPECT_EQ(*result.evicted, 2u);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(MappingCacheTest, LfuProtectsFrequentKeys) {
  Cache cache(config_for(Policy::kLfu, 3));
  cache.insert(1, 1, 0.0);
  cache.insert(2, 2, 0.0);
  cache.insert(3, 3, 0.0);
  cache.probe(1, 1.0);
  cache.probe(1, 2.0);
  cache.probe(2, 3.0);
  // Frequencies: 1 -> 3, 2 -> 2, 3 -> 1. The one-hit wonder pays.
  const auto result = cache.insert(4, 4, 4.0);
  ASSERT_TRUE(result.evicted.has_value());
  EXPECT_EQ(*result.evicted, 3u);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(MappingCacheTest, LfuBreaksFrequencyTiesLru) {
  Cache cache(config_for(Policy::kLfu, 2));
  cache.insert(1, 1, 0.0);
  cache.insert(2, 2, 0.0);  // both at frequency 1; 1 is older in its bucket
  const auto result = cache.insert(3, 3, 1.0);
  ASSERT_TRUE(result.evicted.has_value());
  EXPECT_EQ(*result.evicted, 1u);
}

TEST(MappingCacheTest, TwoQReadmitsGhostsToProtectedQueue) {
  // Capacity 8: kin = 2, ghost capacity = 4. Cold keys stream through the
  // probation FIFO; a key that returns while its ghost is remembered is
  // admitted to the protected queue and survives further streaming.
  Cache cache(config_for(Policy::kTwoQ, 8));
  for (std::uint64_t key = 0; key < 11; ++key)
    cache.insert(key, static_cast<std::uint32_t>(key), 0.0);
  // Keys 0..2 were demoted from probation into the ghost queue.
  EXPECT_FALSE(cache.contains(0));
  EXPECT_EQ(cache.stats().evictions, 3u);
  EXPECT_TRUE(cache.insert(2, 2, 1.0).inserted);  // ghost hit -> Am
  // Stream more cold keys than the probation queue holds: the readmitted
  // key sits in the protected queue and outlives all of them.
  for (std::uint64_t key = 100; key < 110; ++key)
    cache.insert(key, static_cast<std::uint32_t>(key), 2.0);
  EXPECT_TRUE(cache.contains(2));
}

TEST(MappingCacheTest, TwoQProbationHitsDoNotPromote) {
  // The 2Q correlated-reference guard: hitting a probation entry must not
  // shield it from FIFO demotion.
  Cache cache(config_for(Policy::kTwoQ, 8));
  for (std::uint64_t key = 0; key < 8; ++key)
    cache.insert(key, static_cast<std::uint32_t>(key), 0.0);
  EXPECT_TRUE(cache.probe(0, 1.0).has_value());  // oldest probation entry
  const auto result = cache.insert(50, 50, 2.0);
  ASSERT_TRUE(result.evicted.has_value());
  EXPECT_EQ(*result.evicted, 0u);  // still evicted FIFO despite the hit
}

TEST(MappingCacheTest, ArenaBytesIsStableAfterConstruction) {
  Cache cache(config_for(Policy::kTwoQ, 256));
  const std::size_t before = cache.arena_bytes();
  EXPECT_GT(before, 0u);
  for (std::uint64_t key = 0; key < 4096; ++key)
    cache.insert(key, static_cast<std::uint32_t>(key), 0.0);
  // Flat arena: churn through 16x capacity allocates nothing new.
  EXPECT_EQ(cache.arena_bytes(), before);
}

}  // namespace
}  // namespace lina::cache
