// Randomized differential replay of MappingCache against O(n) reference
// policy models, plus the churn-coherence oracle the sim wiring relies
// on: an infinite-capacity cache that is invalidated (or refreshed) on
// every mapping update must answer exactly like direct resolution.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "lina/cache/mapping_cache.hpp"
#include "lina/stats/rng.hpp"

namespace lina::cache {
namespace {

using Cache = MappingCache<std::uint64_t, std::uint32_t>;

CacheConfig config_for(Policy policy, std::size_t capacity, double ttl_ms,
                       ChurnAction churn = ChurnAction::kInvalidate) {
  CacheConfig config;
  config.policy = policy;
  config.capacity = capacity;
  config.ttl_ms = ttl_ms;
  config.churn = churn;
  return config;
}

constexpr Policy kPolicies[] = {Policy::kTtlLru, Policy::kLfu,
                               Policy::kTwoQ};

// ---------------------------------------------------------------------
// Coherence oracle: with capacity >= keyspace (no capacity pressure), an
// unbounded TTL and churn applied on every mapping update, a probe hit
// must always return what direct resolution would. 100k randomized ops.
// ---------------------------------------------------------------------

void run_coherence(Policy policy, ChurnAction churn) {
  constexpr std::size_t kKeys = 512;
  Cache cache(config_for(policy, kKeys,
                         std::numeric_limits<double>::infinity(), churn));
  std::unordered_map<std::uint64_t, std::uint32_t> authoritative;
  stats::Rng rng(2024, "cache-coherence");
  std::uint32_t next_value = 1;
  double now = 0.0;
  for (std::size_t op = 0; op < 100000; ++op) {
    now += 0.25;
    const std::uint64_t key = rng.index(kKeys);
    if (rng.index(4) == 0) {  // mapping churn: the endpoint moved
      authoritative[key] = next_value++;
      cache.churn(key, authoritative[key], now);
      continue;
    }
    // Demand lookup: probe, resolve on miss, install.
    const auto cached = cache.probe(key, now);
    const auto it = authoritative.find(key);
    const std::uint32_t truth =
        it != authoritative.end() ? it->second : (authoritative[key] =
                                                      next_value++);
    if (cached.has_value()) {
      ASSERT_EQ(*cached, truth) << "stale hit for key " << key;
    } else {
      const auto result = cache.insert(key, truth, now);
      ASSERT_FALSE(result.evicted.has_value())
          << "capacity eviction despite capacity == keyspace";
    }
  }
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().ttl_expiries, 0u);
  EXPECT_GT(cache.stats().hits, 0u);
  EXPECT_GT(cache.stats().misses, 0u);
}

TEST(CacheCoherenceTest, InvalidatedCacheMatchesDirectResolution) {
  for (const Policy policy : kPolicies) {
    SCOPED_TRACE(policy_name(policy));
    run_coherence(policy, ChurnAction::kInvalidate);
  }
}

TEST(CacheCoherenceTest, RefreshedCacheMatchesDirectResolution) {
  for (const Policy policy : kPolicies) {
    SCOPED_TRACE(policy_name(policy));
    run_coherence(policy, ChurnAction::kRefresh);
  }
}

// ---------------------------------------------------------------------
// Reference model: an O(n) transliteration of the documented policy
// semantics (policy.hpp / mapping_cache.hpp) with none of the arena /
// intrusive-list / open-addressing machinery. Every probe outcome,
// insert outcome (including the evicted key), churn outcome and counter
// must match the production cache exactly.
// ---------------------------------------------------------------------

class ReferenceCache {
 public:
  explicit ReferenceCache(const CacheConfig& config) : config_(config) {
    if (config.policy == Policy::kTwoQ) {
      kin_ = std::max<std::size_t>(1, config.capacity / 4);
      ghost_capacity_ = std::max<std::size_t>(1, config.capacity / 2);
    }
  }

  std::optional<std::uint32_t> probe(std::uint64_t key, double now_ms) {
    const auto it = find(key);
    if (it == entries_.end()) return miss();
    if (it->expire_ms < now_ms) {
      entries_.erase(it);
      ++stats_.ttl_expiries;
      return miss();
    }
    it->expire_ms = now_ms + config_.ttl_ms;
    touch(*it);
    ++stats_.hits;
    return it->value;
  }

  Cache::InsertResult insert(std::uint64_t key, std::uint32_t value,
                             double now_ms) {
    Cache::InsertResult result;
    const auto existing = find(key);
    if (existing != entries_.end()) {
      existing->value = value;
      existing->expire_ms = now_ms + config_.ttl_ms;
      return result;
    }
    bool to_main = false;
    if (config_.policy == Policy::kTwoQ) {
      const auto ghost = std::find(ghosts_.begin(), ghosts_.end(), key);
      if (ghost != ghosts_.end()) {
        ghosts_.erase(ghost);
        to_main = true;
      }
    }
    if (entries_.size() == config_.capacity) {
      const auto victim = pick_victim();
      result.evicted = victim->key;
      if (config_.policy == Policy::kTwoQ && victim->probation)
        ghost_insert(victim->key);
      entries_.erase(victim);
      ++stats_.evictions;
    }
    Entry entry;
    entry.key = key;
    entry.value = value;
    entry.expire_ms = now_ms + config_.ttl_ms;
    entry.freq = 1;
    entry.stamp = ++clock_;
    entry.probation = config_.policy == Policy::kTwoQ && !to_main;
    entries_.push_back(entry);
    ++stats_.insertions;
    result.inserted = true;
    return result;
  }

  bool invalidate(std::uint64_t key) {
    const auto it = find(key);
    if (it == entries_.end()) return false;
    entries_.erase(it);
    ++stats_.invalidations;
    return true;
  }

  bool refresh(std::uint64_t key, std::uint32_t value, double now_ms) {
    const auto it = find(key);
    if (it == entries_.end()) return false;
    it->value = value;
    it->expire_ms = now_ms + config_.ttl_ms;
    ++stats_.refreshes;
    return true;
  }

  void invalidate_all() {
    stats_.invalidations += entries_.size();
    entries_.clear();  // the ghost queue survives (admission history)
  }

  [[nodiscard]] bool contains(std::uint64_t key) const {
    return std::any_of(entries_.begin(), entries_.end(),
                       [key](const Entry& e) { return e.key == key; });
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::uint32_t value = 0;
    double expire_ms = 0.0;
    std::uint64_t freq = 0;   // LFU reference count
    std::uint64_t stamp = 0;  // recency / bucket-entry order
    bool probation = false;   // 2Q A1in membership
  };

  std::optional<std::uint32_t> miss() {
    ++stats_.misses;
    return std::nullopt;
  }

  std::vector<Entry>::iterator find(std::uint64_t key) {
    return std::find_if(entries_.begin(), entries_.end(),
                        [key](const Entry& e) { return e.key == key; });
  }

  void touch(Entry& entry) {
    switch (config_.policy) {
      case Policy::kTtlLru:
        entry.stamp = ++clock_;
        break;
      case Policy::kLfu:
        ++entry.freq;
        entry.stamp = ++clock_;  // entered the f+1 bucket now
        break;
      case Policy::kTwoQ:
        // Probation hits do not promote; protected hits refresh recency.
        if (!entry.probation) entry.stamp = ++clock_;
        break;
      case Policy::kOff:
        break;
    }
  }

  std::vector<Entry>::iterator pick_victim() {
    switch (config_.policy) {
      case Policy::kTtlLru:
        return min_stamp(entries_.begin(), entries_.end(),
                         [](const Entry&) { return true; });
      case Policy::kLfu: {
        std::uint64_t min_freq = std::numeric_limits<std::uint64_t>::max();
        for (const Entry& e : entries_) min_freq = std::min(min_freq, e.freq);
        return min_stamp(entries_.begin(), entries_.end(),
                         [min_freq](const Entry& e) {
                           return e.freq == min_freq;
                         });
      }
      case Policy::kTwoQ: {
        const std::size_t in_size = static_cast<std::size_t>(
            std::count_if(entries_.begin(), entries_.end(),
                          [](const Entry& e) { return e.probation; }));
        const bool main_empty = in_size == entries_.size();
        const bool from_probation = in_size > kin_ || main_empty;
        return min_stamp(entries_.begin(), entries_.end(),
                         [from_probation](const Entry& e) {
                           return e.probation == from_probation;
                         });
      }
      case Policy::kOff:
        break;
    }
    return entries_.end();
  }

  template <typename Pred>
  std::vector<Entry>::iterator min_stamp(std::vector<Entry>::iterator first,
                                         std::vector<Entry>::iterator last,
                                         Pred pred) {
    auto best = last;
    for (auto it = first; it != last; ++it) {
      if (!pred(*it)) continue;
      if (best == last || it->stamp < best->stamp) best = it;
    }
    return best;
  }

  void ghost_insert(std::uint64_t key) {
    if (ghosts_.size() == ghost_capacity_) ghosts_.pop_back();
    ghosts_.push_front(key);  // front = newest, back = oldest
  }

  CacheConfig config_;
  CacheStats stats_;
  std::vector<Entry> entries_;
  std::deque<std::uint64_t> ghosts_;
  std::size_t kin_ = 0;
  std::size_t ghost_capacity_ = 0;
  std::uint64_t clock_ = 0;
};

void run_differential(Policy policy, std::size_t capacity, double ttl_ms,
                      std::uint64_t seed) {
  constexpr std::size_t kKeys = 160;  // 5x capacity at the default 32
  Cache cache(config_for(policy, capacity, ttl_ms));
  ReferenceCache reference(config_for(policy, capacity, ttl_ms));
  stats::Rng rng(seed, "cache-differential");
  std::uint32_t next_value = 1;
  double now = 0.0;
  for (std::size_t op = 0; op < 20000; ++op) {
    now += static_cast<double>(rng.index(8));  // repeats + TTL pressure
    const std::uint64_t key = rng.index(kKeys);
    switch (rng.index(16)) {
      case 0: {  // churn invalidation
        ASSERT_EQ(cache.invalidate(key), reference.invalidate(key));
        break;
      }
      case 1: {  // churn refresh
        const std::uint32_t value = next_value++;
        ASSERT_EQ(cache.refresh(key, value, now),
                  reference.refresh(key, value, now));
        break;
      }
      case 2: {  // blind insert (exercises the update-in-place path)
        const std::uint32_t value = next_value++;
        const auto a = cache.insert(key, value, now);
        const auto b = reference.insert(key, value, now);
        ASSERT_EQ(a.inserted, b.inserted);
        ASSERT_EQ(a.evicted, b.evicted);
        break;
      }
      case 3: {  // shared-origin wipe, rarely
        if (rng.index(50) == 0) {
          cache.invalidate_all();
          reference.invalidate_all();
        } else {
          ASSERT_EQ(cache.contains(key), reference.contains(key));
        }
        break;
      }
      default: {  // demand lookup: probe, install on miss
        const auto a = cache.probe(key, now);
        const auto b = reference.probe(key, now);
        ASSERT_EQ(a, b) << "probe divergence at op " << op;
        if (!a.has_value()) {
          const std::uint32_t value = next_value++;
          const auto ra = cache.insert(key, value, now);
          const auto rb = reference.insert(key, value, now);
          ASSERT_EQ(ra.inserted, rb.inserted);
          ASSERT_EQ(ra.evicted, rb.evicted)
              << "eviction-order divergence at op " << op;
        }
        break;
      }
    }
    ASSERT_EQ(cache.size(), reference.size());
  }
  // The whole operation history agreed; the counters must too.
  EXPECT_EQ(cache.stats(), reference.stats());
  EXPECT_GT(cache.stats().evictions, 0u);
  // Tiny arenas evict entries long before they can idle out, so only the
  // full-size runs are required to have exercised the expiry path.
  if (capacity >= 16) EXPECT_GT(cache.stats().ttl_expiries, 0u);
  for (std::uint64_t key = 0; key < kKeys; ++key)
    ASSERT_EQ(cache.contains(key), reference.contains(key));
}

TEST(CacheDifferentialTest, LruMatchesReferenceModel) {
  run_differential(Policy::kTtlLru, 32, 40.0, 11);
}

TEST(CacheDifferentialTest, LfuMatchesReferenceModel) {
  run_differential(Policy::kLfu, 32, 40.0, 12);
}

TEST(CacheDifferentialTest, TwoQMatchesReferenceModel) {
  run_differential(Policy::kTwoQ, 32, 40.0, 13);
}

TEST(CacheDifferentialTest, TinyCapacitiesMatchReferenceModel) {
  // Degenerate arenas (capacity 1..4) stress victim selection, the 2Q
  // kin/ghost floors and the backward-shift index deletes.
  for (const Policy policy : kPolicies) {
    for (const std::size_t capacity : {1u, 2u, 3u, 4u}) {
      SCOPED_TRACE(::testing::Message() << policy_name(policy) << " c"
                                        << capacity);
      run_differential(policy, capacity, 25.0, 900 + capacity);
    }
  }
}

}  // namespace
}  // namespace lina::cache
