// The bit-identity contract of the sim wiring: a disabled mapping cache
// (policy off, or any policy at capacity zero) must leave every
// architecture's SessionStats — and the content simulator's stats —
// bit-identical to a config that never mentions the cache, with or
// without a FailurePlan attached. Plus smoke checks that an enabled
// cache actually engages on each wired hot path.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "lina/cache/policy.hpp"
#include "lina/sim/content_session.hpp"
#include "lina/sim/failure_plan.hpp"
#include "lina/sim/resolver_pool.hpp"
#include "lina/sim/session.hpp"

#include "../support/fixtures.hpp"

namespace lina::sim {
namespace {

using lina::testing::shared_internet;
using topology::AsId;

const ForwardingFabric& fabric() {
  static const ForwardingFabric instance(shared_internet());
  return instance;
}

AsId edge(std::size_t i) { return shared_internet().edge_ases()[i]; }

constexpr SimArchitecture kAll[] = {
    SimArchitecture::kIndirection, SimArchitecture::kNameResolution,
    SimArchitecture::kNameBased, SimArchitecture::kReplicatedResolution};

SessionConfig mobile_config() {
  static const std::vector<AsId> local =
      shared_internet().edge_ases_near(topology::metro_anchors()[0], 4);
  SessionConfig config;
  config.correspondent = edge(0);
  config.schedule = {{0.0, local[0]},
                     {2000.0, local[1]},
                     {4000.0, local[2]},
                     {6000.0, local[3]}};
  config.packet_interval_ms = 20.0;
  config.duration_ms = 8000.0;
  config.resolver_ttl_ms = 150.0;
  config.resolver_replicas =
      ResolverPool::metro_placement(shared_internet(), 6);
  return config;
}

ContentSessionConfig content_config() {
  ContentSessionConfig config;
  config.consumer = edge(0);
  config.publisher_schedule = {
      {0.0, edge(40)}, {4000.0, edge(41)}, {8000.0, edge(42)}};
  config.duration_ms = 12000.0;
  config.request_interval_ms = 10.0;
  config.catalog_segments = 500;
  config.cache_capacity = 32;
  config.seed = 7;
  return config;
}

void expect_identical(const SessionStats& a, const SessionStats& b) {
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.packets_lost, b.packets_lost);
  EXPECT_EQ(a.control_messages, b.control_messages);
  EXPECT_EQ(a.control_retries, b.control_retries);
  EXPECT_EQ(a.packets_sent_during_failure, b.packets_sent_during_failure);
  EXPECT_EQ(a.packets_delivered_during_failure,
            b.packets_delivered_during_failure);
  // Bit-identical sample sets, not just close: the cache layer must be
  // zero-cost when disabled.
  EXPECT_EQ(a.delivery_delay_ms.sorted_samples(),
            b.delivery_delay_ms.sorted_samples());
  EXPECT_EQ(a.stretch.sorted_samples(), b.stretch.sorted_samples());
  EXPECT_EQ(a.outage_ms.sorted_samples(), b.outage_ms.sorted_samples());
  EXPECT_EQ(a.recovery_ms.sorted_samples(), b.recovery_ms.sorted_samples());
  EXPECT_EQ(a.stretch_degraded.sorted_samples(),
            b.stretch_degraded.sorted_samples());
  EXPECT_EQ(a.mapping_cache, b.mapping_cache);
}

void expect_identical(const ContentSessionStats& a,
                      const ContentSessionStats& b) {
  EXPECT_EQ(a.interests_sent, b.interests_sent);
  EXPECT_EQ(a.satisfied_from_cache, b.satisfied_from_cache);
  EXPECT_EQ(a.satisfied_from_publisher, b.satisfied_from_publisher);
  EXPECT_EQ(a.unsatisfied, b.unsatisfied);
  EXPECT_EQ(a.interest_retries, b.interest_retries);
  EXPECT_EQ(a.cache_guided_interests, b.cache_guided_interests);
  EXPECT_EQ(a.retrieval_delay_ms.sorted_samples(),
            b.retrieval_delay_ms.sorted_samples());
  EXPECT_EQ(a.mapping_cache, b.mapping_cache);
}

TEST(CacheSessionIdentityTest, DisabledCacheIsBitIdentical) {
  const SessionConfig baseline = mobile_config();
  for (const auto arch : kAll) {
    SCOPED_TRACE(sim_architecture_name(arch));
    const SessionStats reference = simulate_session(fabric(), arch, baseline);
    // All-zero counters in the baseline: the cache never engaged.
    EXPECT_EQ(reference.mapping_cache, cache::CacheStats{});

    SessionConfig off_policy = baseline;
    off_policy.mapping_cache.policy = cache::Policy::kOff;
    off_policy.mapping_cache.capacity = 4096;
    expect_identical(reference,
                     simulate_session(fabric(), arch, off_policy));

    SessionConfig zero_capacity = baseline;
    zero_capacity.mapping_cache.policy = cache::Policy::kTtlLru;
    zero_capacity.mapping_cache.capacity = 0;
    expect_identical(reference,
                     simulate_session(fabric(), arch, zero_capacity));
  }
}

TEST(CacheSessionIdentityTest, DisabledCacheIsBitIdenticalUnderFaults) {
  SessionConfig baseline = mobile_config();
  FailurePlan plan;
  plan.as_outage(baseline.schedule[1].as, 2500.0, 3500.0);
  baseline.failures = &plan;
  for (const auto arch : kAll) {
    SCOPED_TRACE(sim_architecture_name(arch));
    const SessionStats reference = simulate_session(fabric(), arch, baseline);
    SessionConfig off = baseline;
    off.mapping_cache.policy = cache::Policy::kOff;
    off.mapping_cache.capacity = 64;
    expect_identical(reference, simulate_session(fabric(), arch, off));
  }
}

TEST(CacheSessionIdentityTest, DisabledContentCacheIsBitIdentical) {
  const ContentSessionConfig baseline = content_config();
  const ContentSessionStats reference =
      simulate_content_session(fabric(), baseline);
  EXPECT_EQ(reference.cache_guided_interests, 0u);
  EXPECT_EQ(reference.mapping_cache, cache::CacheStats{});

  ContentSessionConfig off_policy = baseline;
  off_policy.mapping_cache.policy = cache::Policy::kOff;
  off_policy.mapping_cache.capacity = 256;
  expect_identical(reference, simulate_content_session(fabric(), off_policy));

  ContentSessionConfig zero_capacity = baseline;
  zero_capacity.mapping_cache.policy = cache::Policy::kTwoQ;
  zero_capacity.mapping_cache.capacity = 0;
  expect_identical(reference,
                   simulate_content_session(fabric(), zero_capacity));
}

TEST(CacheSessionIdentityTest, EnabledCacheEngagesOnEveryWiredHotPath) {
  SessionConfig config = mobile_config();
  config.mapping_cache.policy = cache::Policy::kTtlLru;
  config.mapping_cache.capacity = 16;
  config.mapping_cache.ttl_ms = 2000.0;
  for (const auto arch :
       {SimArchitecture::kIndirection, SimArchitecture::kNameResolution,
        SimArchitecture::kReplicatedResolution}) {
    SCOPED_TRACE(sim_architecture_name(arch));
    const SessionStats stats = simulate_session(fabric(), arch, config);
    EXPECT_GT(stats.mapping_cache.probes(), 0u);
    EXPECT_GT(stats.mapping_cache.hits, 0u);
    EXPECT_GT(stats.mapping_cache.insertions, 0u);
    // Mobility churn reached the correspondent's cache as invalidations,
    // never as capacity evictions (capacity 16 >> one device binding).
    EXPECT_GT(stats.mapping_cache.invalidations, 0u);
    EXPECT_EQ(stats.mapping_cache.evictions, 0u);
    EXPECT_GT(stats.packets_delivered, 0u);
  }
  // Name-based routing has no resolution step: the cache is ignored.
  const SessionStats name_based =
      simulate_session(fabric(), SimArchitecture::kNameBased, config);
  EXPECT_EQ(name_based.mapping_cache, cache::CacheStats{});
}

TEST(CacheSessionIdentityTest, EnabledContentCacheGuidesInterests) {
  ContentSessionConfig config = content_config();
  config.mapping_cache.policy = cache::Policy::kTtlLru;
  config.mapping_cache.capacity = 64;
  const ContentSessionStats stats =
      simulate_content_session(fabric(), config);
  EXPECT_GT(stats.mapping_cache.probes(), 0u);
  EXPECT_GT(stats.mapping_cache.hits, 0u);
  EXPECT_GT(stats.cache_guided_interests, 0u);
  // The name-update wavefront wiped the FIB cache on each publisher move.
  EXPECT_GT(stats.mapping_cache.invalidations, 0u);
  EXPECT_GT(stats.satisfied(), 0u);
}

TEST(CacheSessionIdentityTest, RejectsNonPositiveCacheTtl) {
  SessionConfig config = mobile_config();
  config.mapping_cache.policy = cache::Policy::kTtlLru;
  config.mapping_cache.capacity = 16;
  config.mapping_cache.ttl_ms = 0.0;
  EXPECT_THROW(
      simulate_session(fabric(), SimArchitecture::kIndirection, config),
      std::invalid_argument);
  ContentSessionConfig content = content_config();
  content.mapping_cache.ttl_ms = -1.0;
  EXPECT_THROW(simulate_content_session(fabric(), content),
               std::invalid_argument);
}

}  // namespace
}  // namespace lina::sim
