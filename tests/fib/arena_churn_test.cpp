// Memory-stabilization regression tests for the arena tries: erase must
// recycle pruned nodes through the free-list so that repeated
// insert/erase churn reuses slots instead of growing the arena without
// bound (the pre-arena IpTrie left dead interior chains behind forever).

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "lina/names/content_name.hpp"
#include "lina/names/name_trie.hpp"
#include "lina/net/ip_trie.hpp"
#include "lina/net/ipv4.hpp"

namespace {

using lina::names::ContentName;
using lina::names::NameTrie;
using lina::net::IpTrie;
using lina::net::Ipv4Address;
using lina::net::Prefix;

std::vector<Prefix> churn_prefixes(std::uint64_t seed, std::size_t count) {
  std::mt19937_64 rng(seed);
  std::vector<Prefix> prefixes;
  prefixes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const unsigned length = 8 + static_cast<unsigned>(rng() % 17);
    prefixes.emplace_back(
        Ipv4Address(static_cast<std::uint32_t>(rng())), length);
  }
  return prefixes;
}

TEST(IpTrieArenaChurnTest, EraseReclaimsNodesToFreeList) {
  IpTrie<int> trie;
  const auto prefixes = churn_prefixes(99, 512);
  for (const Prefix& p : prefixes) trie.insert(p, 1);
  const std::size_t loaded_live = trie.live_nodes();
  for (const Prefix& p : prefixes) trie.erase(p);
  EXPECT_EQ(trie.size(), 0u);
  // Everything except the permanent root has been pruned and recycled.
  EXPECT_EQ(trie.live_nodes(), 1u);
  EXPECT_GE(trie.free_nodes(), loaded_live - 1);
}

TEST(IpTrieArenaChurnTest, RepeatedChurnDoesNotGrowTheArena) {
  IpTrie<int> trie;
  const auto prefixes = churn_prefixes(7, 1024);
  std::size_t settled_bytes = 0;
  for (int cycle = 0; cycle < 8; ++cycle) {
    for (const Prefix& p : prefixes) trie.insert(p, cycle);
    for (const Prefix& p : prefixes) trie.erase(p);
    if (cycle == 0) {
      settled_bytes = trie.arena_bytes();
    } else {
      // Later cycles replay the same shapes out of the free-list: the
      // arena footprint must stay exactly where cycle 0 left it.
      EXPECT_EQ(trie.arena_bytes(), settled_bytes) << "cycle " << cycle;
    }
  }
}

TEST(IpTrieArenaChurnTest, LiveNodesStayWithinStructuralBound) {
  IpTrie<int> trie;
  std::mt19937_64 rng(3);
  const auto prefixes = churn_prefixes(3, 2048);
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    trie.insert(prefixes[i], static_cast<int>(i % 5));
    if (rng() % 3 == 0) trie.erase(prefixes[rng() % (i + 1)]);
    ASSERT_LE(trie.live_nodes(), 2 * trie.size() + 1);
  }
}

std::vector<ContentName> churn_names(std::uint64_t seed, std::size_t count) {
  std::mt19937_64 rng(seed);
  std::vector<ContentName> names;
  names.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t depth = 1 + rng() % 5;
    std::vector<std::string> parts;
    for (std::size_t d = 0; d < depth; ++d) {
      parts.push_back("n" + std::to_string(rng() % 32));
    }
    names.emplace_back(std::move(parts));
  }
  return names;
}

TEST(NameTrieArenaChurnTest, EraseReclaimsNodesToFreeList) {
  NameTrie<int> trie;
  const auto names = churn_names(42, 512);
  for (const ContentName& n : names) trie.insert(n, 1);
  const std::size_t loaded_live = trie.live_nodes();
  for (const ContentName& n : names) trie.erase(n);
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_EQ(trie.live_nodes(), 1u);
  EXPECT_GE(trie.free_nodes(), loaded_live - 1);
}

TEST(NameTrieArenaChurnTest, RepeatedChurnDoesNotGrowTheArena) {
  NameTrie<int> trie;
  const auto names = churn_names(5, 1024);
  std::size_t settled_nodes = 0;
  for (int cycle = 0; cycle < 8; ++cycle) {
    for (const ContentName& n : names) trie.insert(n, cycle);
    for (const ContentName& n : names) trie.erase(n);
    const std::size_t total = trie.live_nodes() + trie.free_nodes();
    if (cycle == 0) {
      settled_nodes = total;
    } else {
      EXPECT_EQ(total, settled_nodes) << "cycle " << cycle;
    }
  }
}

}  // namespace
