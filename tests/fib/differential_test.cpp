// Randomized differential suite for the arena-backed LPM engines: replays
// seeded operation streams against the production tries and the reference
// (pre-optimisation) implementations in tests/support/reference_tries.hpp
// and asserts every observable agrees — lookups, exact matches, erases,
// visitation order, and the incrementally-maintained
// lpm_compressed_size() against both the recursive recount and the
// reference's recount. Frozen snapshots are checked against their source
// tables, including the batched lookup_many path.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "lina/names/content_name.hpp"
#include "lina/names/name_trie.hpp"
#include "lina/net/ip_trie.hpp"
#include "lina/net/ipv4.hpp"
#include "reference_tries.hpp"

namespace {

using lina::names::ContentName;
using lina::names::NameTrie;
using lina::net::IpTrie;
using lina::net::Ipv4Address;
using lina::net::Prefix;
using lina::testref::LegacyIpTrie;
using lina::testref::LegacyNameTrie;

constexpr std::size_t kOps = 100000;
constexpr std::size_t kAuditEvery = 4096;  // full-table audits are O(n)

Prefix random_prefix(std::mt19937_64& rng) {
  // Lengths cluster around /16../24 like real tables; a narrow address
  // pool forces nesting, overwrites and erase collisions.
  const unsigned length = 8 + static_cast<unsigned>(rng() % 17);
  const auto addr = static_cast<std::uint32_t>(rng() % (1u << 20)) << 12;
  return Prefix(Ipv4Address(addr), length);
}

Ipv4Address random_addr(std::mt19937_64& rng) {
  return Ipv4Address(static_cast<std::uint32_t>(rng() % (1u << 20)) << 12);
}

class IpTrieDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

void audit_ip(const IpTrie<int>& trie, const LegacyIpTrie<int>& ref) {
  ASSERT_EQ(trie.size(), ref.size());
  ASSERT_EQ(trie.lpm_compressed_size(), trie.lpm_compressed_size_recursive());
  ASSERT_EQ(trie.lpm_compressed_size(), ref.lpm_compressed_size());
  // Structural bound: a path-compressed trie with n entries has at most
  // n leaves + n-1 branch points + the root.
  ASSERT_LE(trie.live_nodes(), 2 * trie.size() + 1);

  std::vector<std::pair<Prefix, int>> got;
  std::vector<std::pair<Prefix, int>> want;
  trie.visit([&](const Prefix& p, int v) { got.emplace_back(p, v); });
  ref.visit([&](const Prefix& p, int v) { want.emplace_back(p, v); });
  ASSERT_EQ(got, want);

  const auto frozen = trie.freeze();
  ASSERT_EQ(frozen.size(), trie.size());
  std::vector<Ipv4Address> addrs;
  std::mt19937_64 probe_rng(trie.size() * 2654435761u + 17);
  for (int i = 0; i < 64; ++i) addrs.push_back(random_addr(probe_rng));
  std::vector<const int*> batch(addrs.size());
  frozen.lookup_many(addrs, batch);
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    const auto live = trie.lookup(addrs[i]);
    const auto one = frozen.lookup(addrs[i]);
    ASSERT_EQ(live, one);
    ASSERT_EQ(live, ref.lookup(addrs[i]));
    if (live.has_value()) {
      ASSERT_NE(batch[i], nullptr);
      ASSERT_EQ(*batch[i], live->second);
    } else {
      ASSERT_EQ(batch[i], nullptr);
    }
  }
}

TEST_P(IpTrieDifferentialTest, MatchesReferenceOverRandomOps) {
  std::mt19937_64 rng(GetParam());
  IpTrie<int> trie;
  LegacyIpTrie<int> ref;

  for (std::size_t op = 0; op < kOps; ++op) {
    const auto kind = rng() % 10;
    if (kind < 5) {
      const Prefix p = random_prefix(rng);
      // Few distinct values so ancestors frequently subsume descendants.
      const int value = static_cast<int>(rng() % 4);
      ASSERT_EQ(trie.insert(p, value), ref.insert(p, value));
    } else if (kind < 7) {
      const Prefix p = random_prefix(rng);
      ASSERT_EQ(trie.erase(p), ref.erase(p));
    } else if (kind < 9) {
      const Ipv4Address a = random_addr(rng);
      ASSERT_EQ(trie.lookup(a), ref.lookup(a));
    } else {
      const Prefix p = random_prefix(rng);
      const int* got = trie.exact(p);
      const int* want = ref.exact(p);
      ASSERT_EQ(got != nullptr, want != nullptr);
      if (got != nullptr) ASSERT_EQ(*got, *want);
    }
    ASSERT_EQ(trie.size(), ref.size());
    if ((op + 1) % kAuditEvery == 0) audit_ip(trie, ref);
  }
  audit_ip(trie, ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IpTrieDifferentialTest,
                         ::testing::Values(1u, 7u, 1337u));

ContentName random_name(std::mt19937_64& rng) {
  // ~40 distinct components over depth 1..4: deep nesting and frequent
  // shared prefixes, so subsumption and pruning both get exercised.
  const std::size_t depth = 1 + rng() % 4;
  std::vector<std::string> parts;
  parts.reserve(depth);
  for (std::size_t i = 0; i < depth; ++i) {
    parts.push_back("c" + std::to_string(rng() % 10 + 10 * i));
  }
  return ContentName(std::move(parts));
}

class NameTrieDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

void audit_name(const NameTrie<int>& trie, const LegacyNameTrie<int>& ref) {
  ASSERT_EQ(trie.size(), ref.size());
  ASSERT_EQ(trie.lpm_compressed_size(), trie.lpm_compressed_size_recursive());
  ASSERT_EQ(trie.lpm_compressed_size(), ref.lpm_compressed_size());

  std::vector<std::pair<ContentName, int>> got;
  std::vector<std::pair<ContentName, int>> want;
  trie.visit([&](const ContentName& n, int v) { got.emplace_back(n, v); });
  ref.visit([&](const ContentName& n, int v) { want.emplace_back(n, v); });
  ASSERT_EQ(got, want);

  const auto frozen = trie.freeze();
  ASSERT_EQ(frozen.size(), trie.size());
  std::vector<ContentName> names;
  std::mt19937_64 probe_rng(trie.size() * 2654435761u + 29);
  for (int i = 0; i < 64; ++i) names.push_back(random_name(probe_rng));
  std::vector<const int*> batch(names.size());
  frozen.lookup_many(names, batch);
  for (std::size_t i = 0; i < names.size(); ++i) {
    const int* live = trie.lookup_value(names[i]);
    const int* one = frozen.lookup_value(names[i]);
    const int* want_value = ref.lookup_value(names[i]);
    // Frozen snapshots copy the payloads, so compare values, not pointers.
    ASSERT_EQ(live != nullptr, want_value != nullptr);
    ASSERT_EQ(live != nullptr, one != nullptr);
    ASSERT_EQ(batch[i], one);  // batch and scalar walk the same snapshot
    if (live != nullptr) {
      ASSERT_EQ(*live, *want_value);
      ASSERT_EQ(*live, *one);
    }
  }
}

TEST_P(NameTrieDifferentialTest, MatchesReferenceOverRandomOps) {
  std::mt19937_64 rng(GetParam());
  NameTrie<int> trie;
  LegacyNameTrie<int> ref;

  for (std::size_t op = 0; op < kOps; ++op) {
    const auto kind = rng() % 10;
    if (kind < 5) {
      const ContentName n = random_name(rng);
      const int value = static_cast<int>(rng() % 4);
      ASSERT_EQ(trie.insert(n, value), ref.insert(n, value));
    } else if (kind < 7) {
      const ContentName n = random_name(rng);
      ASSERT_EQ(trie.erase(n), ref.erase(n));
    } else if (kind < 9) {
      const ContentName n = random_name(rng);
      ASSERT_EQ(trie.lookup(n), ref.lookup(n));
    } else {
      const ContentName n = random_name(rng);
      const int* got = trie.exact(n);
      const int* want = ref.exact(n);
      ASSERT_EQ(got != nullptr, want != nullptr);
      if (got != nullptr) ASSERT_EQ(*got, *want);
    }
    ASSERT_EQ(trie.size(), ref.size());
    if ((op + 1) % kAuditEvery == 0) audit_name(trie, ref);
  }
  audit_name(trie, ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NameTrieDifferentialTest,
                         ::testing::Values(2u, 11u, 4242u));

}  // namespace
