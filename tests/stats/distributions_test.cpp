#include "lina/stats/distributions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace lina::stats {
namespace {

TEST(LogNormalTest, MedianMatches) {
  Rng rng(1);
  const LogNormal dist(3.0, 1.2);
  std::vector<double> samples;
  for (int i = 0; i < 40000; ++i) samples.push_back(dist.sample(rng));
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], 3.0, 0.15);
}

TEST(LogNormalTest, CdfAtMedianIsHalf) {
  const LogNormal dist(3.0, 1.2);
  EXPECT_NEAR(dist.cdf(3.0), 0.5, 1e-9);
}

TEST(LogNormalTest, CdfMonotone) {
  const LogNormal dist(5.0, 0.8);
  double prev = 0.0;
  for (double x = 0.1; x < 100.0; x *= 1.5) {
    const double c = dist.cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_EQ(dist.cdf(0.0), 0.0);
  EXPECT_EQ(dist.cdf(-1.0), 0.0);
}

TEST(LogNormalTest, TailCalibration) {
  // The paper anchor: with median 3 and a wide sigma, >15% of users exceed
  // 10 transitions/day.
  const LogNormal dist(3.4, 1.45);
  EXPECT_GT(1.0 - dist.cdf(10.0), 0.15);
}

TEST(LogNormalTest, RejectsBadParameters) {
  EXPECT_THROW(LogNormal(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogNormal(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogNormal(1.0, 0.0), std::invalid_argument);
}

TEST(BoundedParetoTest, SamplesWithinBounds) {
  Rng rng(2);
  const BoundedPareto dist(1.1, 2.0, 50.0);
  for (int i = 0; i < 5000; ++i) {
    const double x = dist.sample(rng);
    EXPECT_GE(x, 2.0);
    EXPECT_LE(x, 50.0);
  }
}

TEST(BoundedParetoTest, HeavyTail) {
  Rng rng(3);
  const BoundedPareto dist(0.8, 1.0, 1000.0);
  int above_100 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (dist.sample(rng) > 100.0) ++above_100;
  }
  // A bounded Pareto with alpha < 1 puts noticeable mass near the top.
  EXPECT_GT(above_100, n / 100);
}

TEST(BoundedParetoTest, RejectsBadParameters) {
  EXPECT_THROW(BoundedPareto(0.0, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(BoundedPareto(1.0, 0.0, 2.0), std::invalid_argument);
  EXPECT_THROW(BoundedPareto(1.0, 3.0, 2.0), std::invalid_argument);
}

TEST(ZipfTest, PmfSumsToOne) {
  const Zipf zipf(100, 1.0);
  double sum = 0.0;
  for (std::size_t k = 1; k <= 100; ++k) sum += zipf.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, RankOneMostLikely) {
  const Zipf zipf(50, 1.2);
  for (std::size_t k = 2; k <= 50; ++k) {
    EXPECT_GT(zipf.pmf(1), zipf.pmf(k));
  }
}

TEST(ZipfTest, SampleFrequenciesMatchPmf) {
  Rng rng(5);
  const Zipf zipf(10, 1.0);
  std::vector<int> counts(11, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.pmf(k), 0.01);
  }
}

TEST(ZipfTest, PmfRangeChecks) {
  const Zipf zipf(10, 1.0);
  EXPECT_THROW((void)zipf.pmf(0), std::out_of_range);
  EXPECT_THROW((void)zipf.pmf(11), std::out_of_range);
}

TEST(ZipfTest, RejectsEmpty) {
  EXPECT_THROW(Zipf(0, 1.0), std::invalid_argument);
}

TEST(WeightedIndexTest, RespectsWeights) {
  Rng rng(7);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[weighted_index(rng, weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(WeightedIndexTest, Rejections) {
  Rng rng(7);
  EXPECT_THROW((void)weighted_index(rng, {}), std::invalid_argument);
  EXPECT_THROW((void)weighted_index(rng, {0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)weighted_index(rng, {1.0, -1.0}), std::invalid_argument);
}

TEST(RandomPartitionTest, SumsToTotal) {
  Rng rng(11);
  for (const std::size_t total : {0u, 1u, 24u, 1000u}) {
    for (const std::size_t parts : {1u, 2u, 7u}) {
      const auto partition = random_partition(rng, total, parts);
      EXPECT_EQ(partition.size(), parts);
      EXPECT_EQ(std::accumulate(partition.begin(), partition.end(),
                                std::size_t{0}),
                total);
    }
  }
}

TEST(RandomPartitionTest, RejectsZeroParts) {
  Rng rng(11);
  EXPECT_THROW((void)random_partition(rng, 10, 0), std::invalid_argument);
}

}  // namespace
}  // namespace lina::stats
