#include "lina/stats/cdf.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace lina::stats {
namespace {

EmpiricalCdf make_cdf(std::initializer_list<double> values) {
  std::vector<double> v(values);
  return EmpiricalCdf(v);
}

TEST(EmpiricalCdfTest, EmptyBehaviour) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.size(), 0u);
  EXPECT_THROW((void)cdf.at(0.0), std::logic_error);
  EXPECT_THROW((void)cdf.quantile(0.5), std::logic_error);
  EXPECT_THROW((void)cdf.min(), std::logic_error);
  EXPECT_THROW((void)cdf.max(), std::logic_error);
  EXPECT_TRUE(cdf.curve().empty());
}

TEST(EmpiricalCdfTest, SingleSample) {
  auto cdf = make_cdf({5.0});
  EXPECT_EQ(cdf.quantile(0.0), 5.0);
  EXPECT_EQ(cdf.quantile(0.5), 5.0);
  EXPECT_EQ(cdf.quantile(1.0), 5.0);
  EXPECT_EQ(cdf.at(4.9), 0.0);
  EXPECT_EQ(cdf.at(5.0), 1.0);
}

TEST(EmpiricalCdfTest, AtIsFractionAtMost) {
  auto cdf = make_cdf({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdfTest, QuantileInterpolates) {
  auto cdf = make_cdf({0.0, 10.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 2.5);
}

TEST(EmpiricalCdfTest, MedianOfOddSample) {
  auto cdf = make_cdf({9, 1, 5});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 5.0);
}

TEST(EmpiricalCdfTest, QuantileRejectsOutOfRange) {
  auto cdf = make_cdf({1, 2});
  EXPECT_THROW((void)cdf.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)cdf.quantile(1.1), std::invalid_argument);
}

TEST(EmpiricalCdfTest, AddThenQuery) {
  EmpiricalCdf cdf;
  cdf.add(3.0);
  cdf.add(1.0);
  cdf.add(2.0);
  EXPECT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.0);
  cdf.add(0.5);  // re-sorts lazily
  EXPECT_DOUBLE_EQ(cdf.min(), 0.5);
}

TEST(EmpiricalCdfTest, FractionAbove) {
  auto cdf = make_cdf({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(cdf.fraction_above(3.0), 0.4);
  EXPECT_DOUBLE_EQ(cdf.fraction_above(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_above(5.0), 0.0);
}

TEST(EmpiricalCdfTest, CurveIsMonotone) {
  EmpiricalCdf cdf;
  for (int i = 100; i > 0; --i) cdf.add(static_cast<double>(i % 17));
  const auto curve = cdf.curve(16);
  ASSERT_FALSE(curve.empty());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(EmpiricalCdfTest, CurveRespectsMaxPoints) {
  auto cdf = make_cdf({1, 2, 3});
  EXPECT_EQ(cdf.curve(10).size(), 3u);
  EXPECT_EQ(cdf.curve(2).size(), 2u);
}

TEST(EmpiricalCdfTest, SortedSamplesAreSorted) {
  EmpiricalCdf cdf;
  cdf.add(5);
  cdf.add(-1);
  cdf.add(3);
  const auto& s = cdf.sorted_samples();
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
}

}  // namespace
}  // namespace lina::stats
