#include "lina/stats/correlation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "lina/stats/rng.hpp"

namespace lina::stats {
namespace {

TEST(CorrelationTest, PerfectPositive) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
}

TEST(CorrelationTest, PerfectNegative) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(x, y), -1.0, 1e-12);
}

TEST(CorrelationTest, ShiftAndScaleInvariant) {
  const std::vector<double> x{0.3, 1.7, -2.0, 5.5, 0.0};
  std::vector<double> y;
  for (const double v : x) y.push_back(100.0 - 7.0 * v);
  EXPECT_NEAR(pearson_correlation(x, y), -1.0, 1e-12);
}

TEST(CorrelationTest, IndependentNearZero) {
  Rng rng(13);
  std::vector<double> x, y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.uniform());
    y.push_back(rng.uniform());
  }
  EXPECT_NEAR(pearson_correlation(x, y), 0.0, 0.03);
}

TEST(CorrelationTest, NoisyPositiveIsHigh) {
  // Mimics the paper's §6.2 sensitivity check: two workloads producing
  // similar per-router rates should correlate strongly (paper: 0.88).
  Rng rng(17);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    const double base = rng.uniform();
    x.push_back(base);
    y.push_back(base + rng.normal(0.0, 0.15));
  }
  EXPECT_GT(pearson_correlation(x, y), 0.8);
}

TEST(CorrelationTest, Rejections) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{1, 2};
  const std::vector<double> one{1.0};
  const std::vector<double> empty;
  const std::vector<double> constant{5, 5, 5};
  EXPECT_THROW((void)pearson_correlation(a, b), std::invalid_argument);
  EXPECT_THROW((void)pearson_correlation(empty, empty),
               std::invalid_argument);
  EXPECT_THROW((void)pearson_correlation(one, one), std::invalid_argument);
  EXPECT_THROW((void)pearson_correlation(a, constant), std::invalid_argument);
}

}  // namespace
}  // namespace lina::stats
