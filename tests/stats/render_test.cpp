#include "lina/stats/render.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace lina::stats {
namespace {

TEST(RenderTest, FmtTrimsTrailingZeros) {
  EXPECT_EQ(fmt(1.5), "1.5");
  EXPECT_EQ(fmt(2.0), "2");
  EXPECT_EQ(fmt(0.125, 3), "0.125");
  EXPECT_EQ(fmt(0.1004, 2), "0.1");
  EXPECT_EQ(fmt(0.0), "0");
}

TEST(RenderTest, PctFormatsFractions) {
  EXPECT_EQ(pct(0.137, 1), "13.7%");
  EXPECT_EQ(pct(1.0, 0), "100%");
  EXPECT_EQ(pct(0.0), "0%");
}

TEST(RenderTest, HeadingUnderlinesTitle) {
  const std::string h = heading("Figure 8");
  EXPECT_NE(h.find("Figure 8"), std::string::npos);
  EXPECT_NE(h.find("========"), std::string::npos);
}

TEST(RenderTest, BarChartContainsLabelsAndValues) {
  const std::vector<std::pair<std::string, double>> rows{
      {"Oregon-1", 14.0}, {"Tokyo", 0.0}};
  const std::string chart = bar_chart(rows, "%");
  EXPECT_NE(chart.find("Oregon-1"), std::string::npos);
  EXPECT_NE(chart.find("Tokyo"), std::string::npos);
  EXPECT_NE(chart.find("14%"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(RenderTest, BarChartEmpty) {
  EXPECT_EQ(bar_chart({}), "(no data)\n");
}

TEST(RenderTest, BarChartScalesToMax) {
  const std::vector<std::pair<std::string, double>> rows{{"a", 10.0},
                                                         {"b", 5.0}};
  const std::string chart = bar_chart(rows, "", 0.0, 10);
  // Row a gets 10 bars, row b gets 5.
  EXPECT_NE(chart.find(std::string(10, '#')), std::string::npos);
  EXPECT_EQ(chart.find(std::string(11, '#')), std::string::npos);
}

TEST(RenderTest, CdfTableHasHeaderAndRows) {
  EmpiricalCdf cdf;
  for (int i = 1; i <= 50; ++i) cdf.add(i);
  const std::string table = cdf_table(cdf, "delay (ms)", 8);
  EXPECT_NE(table.find("delay (ms)"), std::string::npos);
  EXPECT_NE(table.find("CDF"), std::string::npos);
  EXPECT_NE(table.find("100%"), std::string::npos);
}

TEST(RenderTest, MultiCdfTableColumnsPerSeries) {
  EmpiricalCdf a, b;
  for (int i = 1; i <= 10; ++i) {
    a.add(i);
    b.add(i * 2);
  }
  const std::vector<std::pair<std::string, const EmpiricalCdf*>> series{
      {"IP", &a}, {"AS", &b}};
  const std::string table = multi_cdf_table(series, "per day", 5);
  EXPECT_NE(table.find("IP (per day)"), std::string::npos);
  EXPECT_NE(table.find("AS (per day)"), std::string::npos);
}

TEST(RenderTest, TextTableAlignsColumns) {
  const std::vector<std::vector<std::string>> rows{
      {"router", "rate"}, {"Oregon-1", "14%"}, {"x", "0.1%"}};
  const std::string table = text_table(rows);
  EXPECT_NE(table.find("router"), std::string::npos);
  EXPECT_NE(table.find("Oregon-1"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(table.find("---"), std::string::npos);
}

TEST(RenderTest, TextTableEmpty) {
  EXPECT_EQ(text_table({}), "(no data)\n");
}

TEST(RenderTest, DisplayWidthCountsCodePointsNotBytes) {
  EXPECT_EQ(display_width("abc"), 3u);
  EXPECT_EQ(display_width(""), 0u);
  EXPECT_EQ(display_width("µs"), 2u);     // 2-byte µ
  EXPECT_EQ(display_width("≈1.5"), 4u);   // 3-byte ≈
  EXPECT_EQ(display_width("Zürich"), 6u);
}

TEST(RenderTest, TextTableAlignsMultiByteAndNaNCells) {
  const std::vector<std::vector<std::string>> rows{
      {"city", "delay (µs)"},
      {"Zürich", "12.5"},
      {"Oregon", "NaN"}};
  const std::string table = text_table(rows);
  // With display-width padding the µ/ü bytes add length but not width,
  // so every line renders at the same terminal column count even though
  // raw byte lengths differ.
  std::istringstream is(table);
  std::string header, sep, zurich, oregon;
  std::getline(is, header);
  std::getline(is, sep);
  std::getline(is, zurich);
  std::getline(is, oregon);
  EXPECT_EQ(display_width(header), display_width(zurich));
  EXPECT_EQ(display_width(zurich), display_width(oregon));
  // ...and the second column starts at the same display column in both
  // data rows (byte offsets differ because of the two-byte ü).
  EXPECT_EQ(display_width(zurich.substr(0, zurich.find("12.5"))),
            display_width(oregon.substr(0, oregon.find("NaN"))));
}

TEST(RenderTest, FmtHandlesNonFiniteValues) {
  EXPECT_EQ(fmt(std::nan("")), "NaN");
  EXPECT_EQ(fmt(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(fmt(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(pct(std::nan("")), "NaN%");
}

TEST(RenderTest, TableBuilderFormatsDoubleRows) {
  Table table;
  table.header({"arch", "stretch", "cost"});
  const double a[] = {1.0, 2.5};
  const double b[] = {std::nan(""), 0.126};
  table.append_row("indirection", a, 2).append_row("resolution", b, 2);
  EXPECT_EQ(table.rows(), 3u);
  const std::string out = table.str();
  EXPECT_NE(out.find("indirection"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  EXPECT_NE(out.find("NaN"), std::string::npos);
  EXPECT_NE(out.find("0.13"), std::string::npos);  // precision 2 applied
}

TEST(RenderTest, TableBuilderHeaderReplacesExistingHeader) {
  Table table;
  table.header({"a"});
  table.append_row({"1"});
  table.header({"b", "c"});
  EXPECT_EQ(table.rows(), 2u);
  const std::string out = table.str();
  EXPECT_EQ(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("b"), std::string::npos);
}

}  // namespace
}  // namespace lina::stats
