#include "lina/stats/render.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace lina::stats {
namespace {

TEST(RenderTest, FmtTrimsTrailingZeros) {
  EXPECT_EQ(fmt(1.5), "1.5");
  EXPECT_EQ(fmt(2.0), "2");
  EXPECT_EQ(fmt(0.125, 3), "0.125");
  EXPECT_EQ(fmt(0.1004, 2), "0.1");
  EXPECT_EQ(fmt(0.0), "0");
}

TEST(RenderTest, PctFormatsFractions) {
  EXPECT_EQ(pct(0.137, 1), "13.7%");
  EXPECT_EQ(pct(1.0, 0), "100%");
  EXPECT_EQ(pct(0.0), "0%");
}

TEST(RenderTest, HeadingUnderlinesTitle) {
  const std::string h = heading("Figure 8");
  EXPECT_NE(h.find("Figure 8"), std::string::npos);
  EXPECT_NE(h.find("========"), std::string::npos);
}

TEST(RenderTest, BarChartContainsLabelsAndValues) {
  const std::vector<std::pair<std::string, double>> rows{
      {"Oregon-1", 14.0}, {"Tokyo", 0.0}};
  const std::string chart = bar_chart(rows, "%");
  EXPECT_NE(chart.find("Oregon-1"), std::string::npos);
  EXPECT_NE(chart.find("Tokyo"), std::string::npos);
  EXPECT_NE(chart.find("14%"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(RenderTest, BarChartEmpty) {
  EXPECT_EQ(bar_chart({}), "(no data)\n");
}

TEST(RenderTest, BarChartScalesToMax) {
  const std::vector<std::pair<std::string, double>> rows{{"a", 10.0},
                                                         {"b", 5.0}};
  const std::string chart = bar_chart(rows, "", 0.0, 10);
  // Row a gets 10 bars, row b gets 5.
  EXPECT_NE(chart.find(std::string(10, '#')), std::string::npos);
  EXPECT_EQ(chart.find(std::string(11, '#')), std::string::npos);
}

TEST(RenderTest, CdfTableHasHeaderAndRows) {
  EmpiricalCdf cdf;
  for (int i = 1; i <= 50; ++i) cdf.add(i);
  const std::string table = cdf_table(cdf, "delay (ms)", 8);
  EXPECT_NE(table.find("delay (ms)"), std::string::npos);
  EXPECT_NE(table.find("CDF"), std::string::npos);
  EXPECT_NE(table.find("100%"), std::string::npos);
}

TEST(RenderTest, MultiCdfTableColumnsPerSeries) {
  EmpiricalCdf a, b;
  for (int i = 1; i <= 10; ++i) {
    a.add(i);
    b.add(i * 2);
  }
  const std::vector<std::pair<std::string, const EmpiricalCdf*>> series{
      {"IP", &a}, {"AS", &b}};
  const std::string table = multi_cdf_table(series, "per day", 5);
  EXPECT_NE(table.find("IP (per day)"), std::string::npos);
  EXPECT_NE(table.find("AS (per day)"), std::string::npos);
}

TEST(RenderTest, TextTableAlignsColumns) {
  const std::vector<std::vector<std::string>> rows{
      {"router", "rate"}, {"Oregon-1", "14%"}, {"x", "0.1%"}};
  const std::string table = text_table(rows);
  EXPECT_NE(table.find("router"), std::string::npos);
  EXPECT_NE(table.find("Oregon-1"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(table.find("---"), std::string::npos);
}

TEST(RenderTest, TextTableEmpty) {
  EXPECT_EQ(text_table({}), "(no data)\n");
}

}  // namespace
}  // namespace lina::stats
