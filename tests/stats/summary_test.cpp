#include "lina/stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace lina::stats {
namespace {

TEST(SummaryTest, BasicStatistics) {
  const std::vector<double> data{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(data);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(SummaryTest, OddMedian) {
  const std::vector<double> data{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(summarize(data).median, 2.0);
}

TEST(SummaryTest, SingleElement) {
  const std::vector<double> data{42.0};
  const Summary s = summarize(data);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.median, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(SummaryTest, ThrowsOnEmpty) {
  EXPECT_THROW((void)summarize({}), std::invalid_argument);
}

TEST(RunningStatsTest, MatchesBatchSummary) {
  const std::vector<double> data{1.5, -2.0, 0.0, 7.25, 3.0, 3.0};
  RunningStats acc;
  for (const double x : data) acc.add(x);
  const Summary s = summarize(data);
  EXPECT_EQ(acc.count(), s.count);
  EXPECT_NEAR(acc.mean(), s.mean, 1e-12);
  EXPECT_NEAR(acc.stddev(), s.stddev, 1e-12);
}

TEST(RunningStatsTest, EmptyThrows) {
  RunningStats acc;
  EXPECT_THROW((void)acc.mean(), std::logic_error);
  EXPECT_THROW((void)acc.variance(), std::logic_error);
}

TEST(RunningStatsTest, NumericallyStableOnLargeOffsets) {
  RunningStats acc;
  for (int i = 0; i < 1000; ++i) acc.add(1e9 + (i % 2));
  EXPECT_NEAR(acc.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(acc.variance(), 0.25, 1e-6);
}

}  // namespace
}  // namespace lina::stats
