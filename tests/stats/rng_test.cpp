#include "lina/stats/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace lina::stats {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, LabelSeparatesStreams) {
  Rng a(7, "device");
  Rng b(7, "content");
  EXPECT_NE(a(), b());
}

TEST(RngTest, SameLabelSameStream) {
  Rng a(7, "device");
  Rng b(7, "device");
  EXPECT_EQ(a(), b());
}

TEST(RngTest, ForkIsIndependentOfParentContinuation) {
  Rng parent(11);
  Rng child = parent.fork("child");
  // The child must not replay the parent's stream.
  Rng parent2(11);
  (void)parent2.fork("child");
  EXPECT_EQ(child(), Rng(11).fork("child")());
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(5, 5), 5u);
}

TEST(RngTest, UniformIntThrowsOnInvertedRange) {
  Rng rng(3);
  EXPECT_THROW((void)rng.uniform_int(6, 5), std::invalid_argument);
}

TEST(RngTest, IndexCoversRange) {
  Rng rng(5);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.index(4));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.rbegin(), 3u);
}

TEST(RngTest, IndexThrowsOnZero) {
  Rng rng(5);
  EXPECT_THROW((void)rng.index(0), std::invalid_argument);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(1);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_FALSE(rng.chance(-1.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_TRUE(rng.chance(2.0));
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(23);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalParameterized) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ExponentialThrowsOnBadRate) {
  Rng rng(29);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.exponential(-1.0), std::invalid_argument);
}

TEST(RngTest, PoissonMeanAndZero) {
  Rng rng(31);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(RngTest, PoissonThrowsOnNegativeMean) {
  Rng rng(31);
  EXPECT_THROW((void)rng.poisson(-0.1), std::invalid_argument);
}

}  // namespace
}  // namespace lina::stats
