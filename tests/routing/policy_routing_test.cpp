#include "lina/routing/policy_routing.hpp"

#include <gtest/gtest.h>

#include <array>
#include <deque>

#include "lina/topology/as_graph.hpp"

namespace lina::routing {
namespace {

using topology::AsGraph;
using topology::AsId;
using topology::AsRelationship;
using topology::AsTier;

// A small reference topology:
//
//        T1a ---peer--- T1b
//        /  \            |
//      T2a  T2b ~~peer~ T2c     (~~ = lateral tier-2 peering)
//      /      \          |
//    S1        S2        S3
//
struct ReferenceTopology {
  AsGraph g;
  AsId t1a, t1b, t2a, t2b, t2c, s1, s2, s3;

  ReferenceTopology() {
    t1a = g.add_as(AsTier::kTier1, {});
    t1b = g.add_as(AsTier::kTier1, {});
    t2a = g.add_as(AsTier::kTier2, {});
    t2b = g.add_as(AsTier::kTier2, {});
    t2c = g.add_as(AsTier::kTier2, {});
    s1 = g.add_as(AsTier::kStub, {});
    s2 = g.add_as(AsTier::kStub, {});
    s3 = g.add_as(AsTier::kStub, {});
    g.add_peer_link(t1a, t1b);
    g.add_provider_link(t2a, t1a);
    g.add_provider_link(t2b, t1a);
    g.add_provider_link(t2c, t1b);
    g.add_peer_link(t2b, t2c);
    g.add_provider_link(s1, t2a);
    g.add_provider_link(s2, t2b);
    g.add_provider_link(s3, t2c);
  }
};

TEST(PolicyRoutesTest, CustomerRoutesFollowCustomerCone) {
  const ReferenceTopology ref;
  const PolicyRoutes routes(ref.g, ref.s1);
  // s1's transit ancestors get customer routes; distance counts hops.
  EXPECT_EQ(routes.distance(ref.t2a, RouteClass::kCustomer), 1u);
  EXPECT_EQ(routes.distance(ref.t1a, RouteClass::kCustomer), 2u);
  // t1b is not an ancestor of s1: no customer route.
  EXPECT_EQ(routes.distance(ref.t1b, RouteClass::kCustomer), std::nullopt);
  // Destination itself: distance 0.
  EXPECT_EQ(routes.distance(ref.s1, RouteClass::kCustomer), 0u);
}

TEST(PolicyRoutesTest, PeerRoutesOneLateralHop) {
  const ReferenceTopology ref;
  const PolicyRoutes routes(ref.g, ref.s1);
  // t1b peers with t1a which has a customer route (2) -> peer dist 3.
  EXPECT_EQ(routes.distance(ref.t1b, RouteClass::kPeer), 3u);
  // t2b/t2c have no peer with a customer route to s1... t2b peers t2c
  // (no customer route to s1) so no peer route.
  EXPECT_EQ(routes.distance(ref.t2b, RouteClass::kPeer), std::nullopt);
}

TEST(PolicyRoutesTest, ProviderRoutesClimb) {
  const ReferenceTopology ref;
  const PolicyRoutes routes(ref.g, ref.s1);
  // s3 -> t2c (provider), t2c -> t1b (provider), t1b peers t1a, down to s1:
  // s3's provider route = 1 + t2c's best. t2c best: peer via t2b? t2b has
  // no customer route to s1. t2c provider route via t1b = 1 + t1b best
  // (peer 3) = 4; so s3 = 5.
  EXPECT_EQ(routes.best_distance(ref.s3), 5u);
  EXPECT_EQ(routes.best_class(ref.s3), RouteClass::kProvider);
}

TEST(PolicyRoutesTest, ClassPreferenceOverLength) {
  // Gao-Rexford: a longer customer route is preferred over a shorter peer
  // or provider route.
  const ReferenceTopology ref;
  const PolicyRoutes routes(ref.g, ref.s1);
  EXPECT_EQ(routes.best_class(ref.t1a), RouteClass::kCustomer);
  EXPECT_EQ(routes.best_distance(ref.t1a), 2u);
}

TEST(PolicyRoutesTest, PathReconstructionValid) {
  const ReferenceTopology ref;
  const PolicyRoutes routes(ref.g, ref.s1);
  for (AsId u = 0; u < ref.g.as_count(); ++u) {
    if (u == ref.s1) continue;
    const auto path = routes.best_path(u);
    ASSERT_TRUE(path.has_value()) << "AS " << u;
    EXPECT_TRUE(path->loop_free());
    EXPECT_EQ(path->origin(), ref.s1);
    EXPECT_EQ(path->length(), routes.best_distance(u));
    // Consecutive hops must be adjacent; the first hop adjacent to u.
    AsId prev = u;
    for (const AsId hop : path->hops()) {
      EXPECT_TRUE(ref.g.relationship(prev, hop).has_value())
          << prev << " -> " << hop;
      prev = hop;
    }
  }
}

TEST(PolicyRoutesTest, PathsAreValleyFree) {
  const ReferenceTopology ref;
  for (const AsId dest : {ref.s1, ref.s2, ref.s3}) {
    const PolicyRoutes routes(ref.g, dest);
    for (AsId u = 0; u < ref.g.as_count(); ++u) {
      if (u == dest) continue;
      const auto path = routes.best_path(u);
      if (!path.has_value()) continue;
      // Phases: up (provider), then at most one peer, then down (customer).
      int phase = 0;  // 0=up, 1=peered, 2=down
      AsId prev = u;
      for (const AsId hop : path->hops()) {
        const auto rel = ref.g.relationship(prev, hop);
        ASSERT_TRUE(rel.has_value());
        switch (*rel) {
          case AsRelationship::kProvider:
            EXPECT_EQ(phase, 0) << "uphill after descent";
            break;
          case AsRelationship::kPeer:
            EXPECT_LT(phase, 1) << "second lateral step";
            phase = 1;
            break;
          case AsRelationship::kCustomer:
            phase = 2;
            break;
        }
        prev = hop;
      }
    }
  }
}

TEST(PolicyRoutesTest, DestinationHasEmptyBestPath) {
  const ReferenceTopology ref;
  const PolicyRoutes routes(ref.g, ref.s1);
  const auto path = routes.best_path(ref.s1);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->empty());
}

TEST(PolicyRoutesTest, OutOfRangeDestinationThrows) {
  const ReferenceTopology ref;
  EXPECT_THROW(PolicyRoutes(ref.g, 99), std::out_of_range);
  const PolicyRoutes routes(ref.g, ref.s1);
  EXPECT_THROW((void)routes.best_class(99), std::out_of_range);
}

// Property test on generated topologies: every AS reaches every stub, all
// paths valley-free and loop-free.
class PolicyRoutesPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PolicyRoutesPropertyTest, UniversalValleyFreeReachability) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()));
  topology::InternetConfig config;
  config.tier1_count = 5;
  config.tier2_count = 15;
  config.stub_count = 60;
  const AsGraph graph = topology::make_hierarchical_internet(config, rng);

  for (AsId dest = 0; dest < graph.as_count();
       dest += 1 + graph.as_count() / 8) {
    const PolicyRoutes routes(graph, dest);
    for (AsId u = 0; u < graph.as_count(); ++u) {
      if (u == dest) continue;
      const auto path = routes.best_path(u);
      ASSERT_TRUE(path.has_value())
          << "AS " << u << " cannot reach " << dest;
      EXPECT_TRUE(path->loop_free());
      EXPECT_EQ(path->origin(), dest);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyRoutesPropertyTest,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace lina::routing

namespace lina::routing {
namespace {

using topology::AsGraph;
using topology::AsId;
using topology::AsRelationship;

// Independent reference: forward BFS over the (node, phase) product graph.
// Valley-free paths have shape up* peer? down*; the route class is fixed by
// the first step. Returns kUnreachable when no such path exists.
std::size_t brute_force_distance(const AsGraph& graph, AsId source,
                                 AsId dest, RouteClass cls) {
  constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);
  if (source == dest) return cls == RouteClass::kCustomer ? 0 : kUnreachable;
  enum Phase { kUp = 0, kPeered = 1, kDown = 2 };
  const std::size_t n = graph.as_count();
  std::vector<std::array<std::size_t, 3>> dist(
      n, {kUnreachable, kUnreachable, kUnreachable});
  std::deque<std::pair<AsId, Phase>> queue;

  // Seed with the class-defining first step.
  for (const AsGraph::Link& link : graph.links(source)) {
    Phase phase;
    switch (link.rel) {
      case AsRelationship::kCustomer:
        phase = kDown;
        if (cls != RouteClass::kCustomer) continue;
        break;
      case AsRelationship::kPeer:
        phase = kPeered;
        if (cls != RouteClass::kPeer) continue;
        break;
      case AsRelationship::kProvider:
        phase = kUp;
        if (cls != RouteClass::kProvider) continue;
        break;
      default:
        continue;
    }
    if (dist[link.neighbor][phase] == kUnreachable) {
      dist[link.neighbor][phase] = 1;
      queue.emplace_back(link.neighbor, phase);
    }
  }

  std::size_t best = kUnreachable;
  while (!queue.empty()) {
    const auto [u, phase] = queue.front();
    queue.pop_front();
    const std::size_t d = dist[u][phase];
    if (u == dest) best = std::min(best, d);
    for (const AsGraph::Link& link : graph.links(u)) {
      Phase next_phase;
      if (link.rel == AsRelationship::kCustomer) {
        next_phase = kDown;  // down is always allowed
      } else if (link.rel == AsRelationship::kPeer) {
        if (phase != kUp) continue;  // at most one lateral step
        next_phase = kPeered;
      } else {  // provider (up)
        if (phase != kUp) continue;  // no climbing after peer/descent
        next_phase = kUp;
      }
      if (dist[link.neighbor][next_phase] == kUnreachable) {
        dist[link.neighbor][next_phase] = d + 1;
        queue.emplace_back(link.neighbor, next_phase);
      }
    }
  }
  return best;
}

class PolicyRoutesOptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(PolicyRoutesOptimalityTest, DistancesMatchBruteForce) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  topology::InternetConfig config;
  config.tier1_count = 4;
  config.tier2_count = 8;
  config.stub_count = 20;
  const AsGraph graph = topology::make_hierarchical_internet(config, rng);

  for (AsId dest = 0; dest < graph.as_count(); dest += 3) {
    const PolicyRoutes routes(graph, dest);
    for (AsId u = 0; u < graph.as_count(); ++u) {
      if (u == dest) continue;
      for (const RouteClass cls :
           {RouteClass::kCustomer, RouteClass::kPeer,
            RouteClass::kProvider}) {
        const std::size_t expected =
            brute_force_distance(graph, u, dest, cls);
        const auto actual = routes.distance(u, cls);
        if (expected == static_cast<std::size_t>(-1)) {
          EXPECT_EQ(actual, std::nullopt)
              << "u=" << u << " d=" << dest << " cls=" << static_cast<int>(cls);
        } else {
          ASSERT_TRUE(actual.has_value())
              << "u=" << u << " d=" << dest << " cls=" << static_cast<int>(cls);
          EXPECT_EQ(*actual, expected)
              << "u=" << u << " d=" << dest << " cls=" << static_cast<int>(cls);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyRoutesOptimalityTest,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace lina::routing
