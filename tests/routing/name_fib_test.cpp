#include "lina/routing/name_fib.hpp"

#include <gtest/gtest.h>

namespace lina::routing {
namespace {

names::ContentName uri(const char* text) {
  return names::ContentName::from_uri(text);
}

TEST(NameFibTest, AnnounceAndLookup) {
  NameFib fib;
  fib.announce(uri("/Disney"), 3);
  fib.announce(uri("/20thCenturyFox"), 5);
  EXPECT_EQ(fib.size(), 2u);
  EXPECT_EQ(fib.port_for(uri("/Disney/Frozen")), 3u);
  EXPECT_EQ(fib.port_for(uri("/20thCenturyFox/StarWarsIV")), 5u);
  EXPECT_EQ(fib.port_for(uri("/Paramount/TopGun")), std::nullopt);
}

TEST(NameFibTest, WithdrawRemovesEntry) {
  NameFib fib;
  fib.announce(uri("/Disney"), 3);
  EXPECT_TRUE(fib.withdraw(uri("/Disney")));
  EXPECT_FALSE(fib.withdraw(uri("/Disney")));
  EXPECT_EQ(fib.port_for(uri("/Disney/Frozen")), std::nullopt);
}

TEST(NameFibTest, PaperFigure2bExample) {
  // Router Q: /20thCenturyFox/* -> 5, /Disney/* -> 3. The rights transfer
  // renames /20thCenturyFox/StarWarsIV to /Disney/StarWarsIV; Q must pin
  // [/Disney/StarWarsIV -> 5] because the LPM ports differ.
  NameFib q;
  q.announce(uri("/20thCenturyFox"), 5);
  q.announce(uri("/Disney"), 3);

  EXPECT_TRUE(q.process_rename(uri("/20thCenturyFox/StarWarsIV"),
                               uri("/Disney/StarWarsIV")));
  EXPECT_EQ(q.exception_count(), 1u);
  EXPECT_EQ(q.size(), 3u);
  // Requests under the new name still reach port 5; siblings under
  // /Disney are unaffected.
  EXPECT_EQ(q.port_for(uri("/Disney/StarWarsIV")), 5u);
  EXPECT_EQ(q.port_for(uri("/Disney/Frozen")), 3u);
}

TEST(NameFibTest, RenameWithEqualPortsIsFree) {
  // A router whose prefixes for both hierarchies share the output port is
  // not displaced by the rename (the §3.1 condition).
  NameFib r;
  r.announce(uri("/20thCenturyFox"), 7);
  r.announce(uri("/Disney"), 7);
  EXPECT_FALSE(r.process_rename(uri("/20thCenturyFox/StarWarsIV"),
                                uri("/Disney/StarWarsIV")));
  EXPECT_EQ(r.exception_count(), 0u);
  EXPECT_EQ(r.size(), 2u);
}

TEST(NameFibTest, RenameToUncoveredNameInstallsException) {
  NameFib fib;
  fib.announce(uri("/20thCenturyFox"), 5);
  EXPECT_TRUE(fib.process_rename(uri("/20thCenturyFox/StarWarsIV"),
                                 uri("/Lucasfilm/StarWarsIV")));
  EXPECT_EQ(fib.port_for(uri("/Lucasfilm/StarWarsIV")), 5u);
  // Unrelated names under the new hierarchy stay uncovered.
  EXPECT_EQ(fib.port_for(uri("/Lucasfilm/Willow")), std::nullopt);
}

TEST(NameFibTest, RenameOfUnroutedNameThrows) {
  NameFib fib;
  fib.announce(uri("/Disney"), 3);
  EXPECT_THROW((void)fib.process_rename(uri("/Unknown/Item"),
                                        uri("/Disney/Item")),
               std::invalid_argument);
}

TEST(NameFibTest, ChainedRenamesAccumulateExceptions) {
  NameFib fib;
  fib.announce(uri("/a"), 1);
  fib.announce(uri("/b"), 2);
  fib.announce(uri("/c"), 3);
  EXPECT_TRUE(fib.process_rename(uri("/a/x"), uri("/b/x")));
  EXPECT_TRUE(fib.process_rename(uri("/b/x"), uri("/c/x")));
  EXPECT_EQ(fib.exception_count(), 2u);
  // The second rename preserves reachability of the *current* location,
  // which the first exception pinned to port 1.
  EXPECT_EQ(fib.port_for(uri("/c/x")), 1u);
}

TEST(NameFibTest, LpmCompression) {
  NameFib fib;
  fib.announce(uri("/com"), 1);
  fib.announce(uri("/com/yahoo"), 1);   // subsumed
  fib.announce(uri("/com/cnn"), 2);
  EXPECT_EQ(fib.size(), 3u);
  EXPECT_EQ(fib.lpm_compressed_size(), 2u);
}

}  // namespace
}  // namespace lina::routing
