#include "lina/routing/rib.hpp"

#include <gtest/gtest.h>

namespace lina::routing {
namespace {

RibRoute make_route(const char* prefix, std::vector<topology::AsId> hops,
                    RouteClass cls, std::uint32_t med = 0,
                    std::uint32_t local_pref = 0) {
  return RibRoute{.prefix = net::Prefix::parse(prefix),
                  .as_path = AsPath(std::move(hops)),
                  .route_class = cls,
                  .local_pref = local_pref,
                  .med = med};
}

TEST(RoutePreferenceTest, LocalPrefDominates) {
  // Rule 1: higher local-preference wins even over a customer route.
  const RibRoute low = make_route("1.0.0.0/16", {1}, RouteClass::kCustomer,
                                  0, /*local_pref=*/0);
  const RibRoute high = make_route("1.0.0.0/16", {2, 3, 4, 5},
                                   RouteClass::kProvider, 9, 100);
  EXPECT_TRUE(route_preferred(high, low));
  EXPECT_FALSE(route_preferred(low, high));
}

TEST(RoutePreferenceTest, CustomerOverPeerOverProvider) {
  // Rule 1 with uniform local-pref: customer > peer > provider, even when
  // the less-preferred class has a shorter path (the paper's §6.2.1 rule 1
  // precedes rule 2).
  const RibRoute customer =
      make_route("1.0.0.0/16", {1, 2, 3}, RouteClass::kCustomer);
  const RibRoute peer = make_route("1.0.0.0/16", {4, 5}, RouteClass::kPeer);
  const RibRoute provider =
      make_route("1.0.0.0/16", {6}, RouteClass::kProvider);
  EXPECT_TRUE(route_preferred(customer, peer));
  EXPECT_TRUE(route_preferred(peer, provider));
  EXPECT_TRUE(route_preferred(customer, provider));
}

TEST(RoutePreferenceTest, ShorterPathWithinClass) {
  const RibRoute shorter = make_route("1.0.0.0/16", {1, 2}, RouteClass::kPeer);
  const RibRoute longer =
      make_route("1.0.0.0/16", {3, 4, 5}, RouteClass::kPeer);
  EXPECT_TRUE(route_preferred(shorter, longer));
}

TEST(RoutePreferenceTest, SmallerMedBreaksLengthTie) {
  const RibRoute a = make_route("1.0.0.0/16", {1, 2}, RouteClass::kPeer, 3);
  const RibRoute b = make_route("1.0.0.0/16", {4, 2}, RouteClass::kPeer, 7);
  EXPECT_TRUE(route_preferred(a, b));
}

TEST(RoutePreferenceTest, NextHopIdFinalTieBreak) {
  const RibRoute a = make_route("1.0.0.0/16", {1, 2}, RouteClass::kPeer, 3);
  const RibRoute b = make_route("1.0.0.0/16", {4, 2}, RouteClass::kPeer, 3);
  EXPECT_TRUE(route_preferred(a, b));
  EXPECT_FALSE(route_preferred(b, a));
}

TEST(RibTest, AddAndQuery) {
  Rib rib;
  rib.add(make_route("1.0.0.0/16", {1, 9}, RouteClass::kProvider));
  rib.add(make_route("1.0.0.0/16", {2, 9}, RouteClass::kCustomer));
  rib.add(make_route("2.0.0.0/16", {3, 8}, RouteClass::kPeer));
  EXPECT_EQ(rib.prefix_count(), 2u);
  EXPECT_EQ(rib.route_count(), 3u);
  EXPECT_EQ(rib.candidates(net::Prefix::parse("1.0.0.0/16")).size(), 2u);
  EXPECT_TRUE(rib.candidates(net::Prefix::parse("9.0.0.0/16")).empty());
}

TEST(RibTest, BestAppliesRanking) {
  Rib rib;
  rib.add(make_route("1.0.0.0/16", {1, 9}, RouteClass::kProvider));
  rib.add(make_route("1.0.0.0/16", {2, 5, 9}, RouteClass::kCustomer));
  rib.add(make_route("1.0.0.0/16", {3, 9}, RouteClass::kPeer));
  const auto best = rib.best(net::Prefix::parse("1.0.0.0/16"));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->route_class, RouteClass::kCustomer);
  EXPECT_EQ(best->port(), 2u);
}

TEST(RibTest, BestOfUnknownPrefix) {
  Rib rib;
  EXPECT_EQ(rib.best(net::Prefix::parse("1.0.0.0/16")), std::nullopt);
}

TEST(RibTest, PrefixesEnumeration) {
  Rib rib;
  rib.add(make_route("1.0.0.0/16", {1, 9}, RouteClass::kPeer));
  rib.add(make_route("2.0.0.0/16", {1, 8}, RouteClass::kPeer));
  EXPECT_EQ(rib.prefixes().size(), 2u);
}

TEST(RibTest, RejectsInvalidRoutes) {
  Rib rib;
  EXPECT_THROW(rib.add(make_route("1.0.0.0/16", {}, RouteClass::kPeer)),
               std::invalid_argument);
  EXPECT_THROW(rib.add(make_route("1.0.0.0/16", {1, 2, 1}, RouteClass::kPeer)),
               std::invalid_argument);
}

}  // namespace
}  // namespace lina::routing
