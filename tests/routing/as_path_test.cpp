#include "lina/routing/as_path.hpp"

#include <gtest/gtest.h>

namespace lina::routing {
namespace {

TEST(AsPathTest, EmptyPath) {
  const AsPath path;
  EXPECT_TRUE(path.empty());
  EXPECT_EQ(path.length(), 0u);
  EXPECT_TRUE(path.loop_free());
  EXPECT_EQ(path.to_string(), "");
}

TEST(AsPathTest, Accessors) {
  const AsPath path({701, 3356, 15169});
  EXPECT_EQ(path.length(), 3u);
  EXPECT_EQ(path.next_hop(), 701u);
  EXPECT_EQ(path.origin(), 15169u);
  EXPECT_TRUE(path.contains(3356));
  EXPECT_FALSE(path.contains(7018));
  EXPECT_EQ(path.to_string(), "701 3356 15169");
}

TEST(AsPathTest, LoopDetection) {
  EXPECT_TRUE(AsPath({1, 2, 3}).loop_free());
  EXPECT_FALSE(AsPath({1, 2, 1}).loop_free());
  EXPECT_FALSE(AsPath({5, 5}).loop_free());
  EXPECT_TRUE(AsPath({7}).loop_free());
}

TEST(AsPathTest, Equality) {
  EXPECT_EQ(AsPath({1, 2}), AsPath({1, 2}));
  EXPECT_NE(AsPath({1, 2}), AsPath({2, 1}));
  EXPECT_NE(AsPath({1}), AsPath({1, 2}));
}

}  // namespace
}  // namespace lina::routing
