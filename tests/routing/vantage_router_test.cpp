#include "lina/routing/vantage_router.hpp"

#include <gtest/gtest.h>

namespace lina::routing {
namespace {

RibRoute route(const char* prefix, std::vector<topology::AsId> hops,
               RouteClass cls) {
  return RibRoute{.prefix = net::Prefix::parse(prefix),
                  .as_path = AsPath(std::move(hops)),
                  .route_class = cls,
                  .local_pref = 0,
                  .med = 0};
}

TEST(VantageRouterTest, MetadataAccessors) {
  const VantageRouter router("test", 42, {10.0, 20.0});
  EXPECT_EQ(router.name(), "test");
  EXPECT_EQ(router.as_number(), 42u);
  EXPECT_DOUBLE_EQ(router.location().latitude_deg, 10.0);
  EXPECT_EQ(router.fib().size(), 0u);
  EXPECT_EQ(router.port_for(net::Ipv4Address::parse("1.2.3.4")),
            std::nullopt);
}

TEST(VantageRouterTest, FibRebuiltAfterLaterInstall) {
  VantageRouter router("test", 42, {});
  router.install(route("1.0.0.0/16", {7, 99}, RouteClass::kProvider));
  // Force a FIB build, then install a better route: lookups must see it.
  EXPECT_EQ(router.port_for(net::Ipv4Address::parse("1.0.0.1")), 7u);
  router.install(route("1.0.0.0/16", {8, 99}, RouteClass::kCustomer));
  EXPECT_EQ(router.port_for(net::Ipv4Address::parse("1.0.0.1")), 8u);
  EXPECT_EQ(router.rib().route_count(), 2u);
  EXPECT_EQ(router.fib().size(), 1u);
}

TEST(VantageRouterTest, RouteForReturnsMatchedPrefix) {
  VantageRouter router("test", 42, {});
  router.install(route("10.0.0.0/8", {1, 9}, RouteClass::kPeer));
  router.install(route("10.1.0.0/16", {2, 9}, RouteClass::kPeer));
  const auto hit = router.route_for(net::Ipv4Address::parse("10.1.0.7"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, net::Prefix::parse("10.1.0.0/16"));
  EXPECT_EQ(hit->second.port, 2u);
}

TEST(VantageRouterTest, NextHopDegree) {
  VantageRouter router("test", 42, {});
  router.install(route("1.0.0.0/16", {7, 99}, RouteClass::kPeer));
  router.install(route("2.0.0.0/16", {7, 88}, RouteClass::kPeer));
  router.install(route("3.0.0.0/16", {9, 77}, RouteClass::kPeer));
  EXPECT_EQ(router.next_hop_degree(), 2u);
}

}  // namespace
}  // namespace lina::routing
