#include "lina/routing/inference.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "lina/routing/policy_routing.hpp"
#include "lina/topology/as_graph.hpp"

namespace lina::routing {
namespace {

using topology::AsRelationship;

TEST(InferenceTest, SimpleUphillDownhill) {
  // Path 1 -> 2 -> 3 where 2 has the highest degree: 2 provides transit to
  // both 1 and 3.
  const std::vector<AsPath> paths{
      AsPath({1, 2, 3}),
      AsPath({4, 2, 5}),
      AsPath({1, 2, 5}),
  };
  const AsRelationshipInference inference(paths, /*peer_degree_ratio=*/1.0);
  EXPECT_EQ(inference.relationship(1, 2), AsRelationship::kProvider);
  EXPECT_EQ(inference.relationship(2, 1), AsRelationship::kCustomer);
  EXPECT_EQ(inference.relationship(3, 2), AsRelationship::kProvider);
  EXPECT_EQ(inference.observed_degree(2), 4u);
  EXPECT_EQ(inference.observed_degree(1), 1u);
}

TEST(InferenceTest, UnseenPairIsNullopt) {
  const std::vector<AsPath> paths{AsPath({1, 2})};
  const AsRelationshipInference inference(paths);
  EXPECT_EQ(inference.relationship(1, 3), std::nullopt);
}

TEST(InferenceTest, PeerDetectedBetweenSimilarDegreeTops) {
  // Two high-degree ASes adjacent at the top of paths -> peering.
  const std::vector<AsPath> paths{
      AsPath({1, 10, 20, 2}), AsPath({3, 10, 20, 4}),
      AsPath({5, 10, 6}),     AsPath({7, 20, 8}),
  };
  const AsRelationshipInference inference(paths, /*peer_degree_ratio=*/2.0);
  EXPECT_EQ(inference.relationship(10, 20), AsRelationship::kPeer);
}

TEST(InferenceTest, EmptyInput) {
  const AsRelationshipInference inference(std::vector<AsPath>{});
  EXPECT_EQ(inference.classified_pair_count(), 0u);
  EXPECT_EQ(inference.observed_degree(1), 0u);
}

TEST(InferenceTest, SingleHopPathsIgnored) {
  const std::vector<AsPath> paths{AsPath({1})};
  const AsRelationshipInference inference(paths);
  EXPECT_EQ(inference.classified_pair_count(), 0u);
}

// End-to-end accuracy check against ground truth: generate a synthetic
// AS graph, compute valley-free best paths toward many destinations, feed
// the paths to the inference, and compare inferred vs true relationships.
// Gao reports ~90%+ accuracy on transit edges; our generator is cleaner, so
// demand 80% over all classified edges.
TEST(InferenceTest, RecoversSyntheticGroundTruth) {
  stats::Rng rng(77);
  topology::InternetConfig config;
  config.tier1_count = 6;
  config.tier2_count = 30;
  config.stub_count = 150;
  const topology::AsGraph graph =
      topology::make_hierarchical_internet(config, rng);

  std::vector<AsPath> observed;
  for (topology::AsId d = 0; d < graph.as_count(); d += 5) {
    const PolicyRoutes routes(graph, d);
    for (topology::AsId u = 0; u < graph.as_count(); u += 7) {
      if (u == d) continue;
      const auto path = routes.best_path(u);
      if (path.has_value() && path->length() >= 2) {
        observed.push_back(*path);
      }
    }
  }
  ASSERT_GT(observed.size(), 200u);

  const AsRelationshipInference inference(observed);
  std::size_t checked = 0, correct = 0;
  for (topology::AsId a = 0; a < graph.as_count(); ++a) {
    for (const auto& link : graph.links(a)) {
      if (link.neighbor < a) continue;  // each edge once
      const auto inferred = inference.relationship(a, link.neighbor);
      if (!inferred.has_value()) continue;  // edge never observed
      ++checked;
      if (*inferred == link.rel) ++correct;
    }
  }
  ASSERT_GT(checked, 100u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(checked), 0.8)
      << "inference accuracy too low: " << correct << "/" << checked;
}

}  // namespace
}  // namespace lina::routing
