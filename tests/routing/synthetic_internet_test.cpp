#include "lina/routing/synthetic_internet.hpp"

#include <gtest/gtest.h>

#include <set>

namespace lina::routing {
namespace {

using topology::AsId;
using topology::AsTier;

// Shared small instance: constructing the Internet is the expensive part.
const SyntheticInternet& small_internet() {
  static const SyntheticInternet internet = [] {
    SyntheticInternetConfig config;
    config.topology.tier1_count = 8;
    config.topology.tier2_count = 30;
    config.topology.stub_count = 200;
    return SyntheticInternet(config);
  }();
  return internet;
}

TEST(VantageSpecsTest, PaperRouterSets) {
  const auto rv = routeviews_vantage_specs();
  ASSERT_EQ(rv.size(), 12u);
  EXPECT_EQ(rv.front().name, "Oregon-1");
  EXPECT_EQ(rv.back().name, "Sydney");
  const auto ripe = ripe_vantage_specs();
  EXPECT_EQ(ripe.size(), 13u);
}

TEST(SyntheticInternetTest, TwelveNamedVantages) {
  const auto& internet = small_internet();
  EXPECT_EQ(internet.vantages().size(), 12u);
  EXPECT_EQ(internet.vantage("Oregon-1").name(), "Oregon-1");
  EXPECT_EQ(internet.vantage("Tokyo").name(), "Tokyo");
  EXPECT_THROW((void)internet.vantage("Mars"), std::invalid_argument);
}

TEST(SyntheticInternetTest, VantagesUseDistinctAses) {
  const auto& internet = small_internet();
  std::set<AsId> ases;
  for (const VantageRouter& v : internet.vantages()) {
    ases.insert(v.as_number());
  }
  EXPECT_EQ(ases.size(), internet.vantages().size());
}

TEST(SyntheticInternetTest, EveryVantageCoversAllPrefixes) {
  const auto& internet = small_internet();
  for (const VantageRouter& v : internet.vantages()) {
    EXPECT_EQ(v.fib().size(), internet.all_prefixes().size())
        << v.name() << " is missing routes";
  }
}

TEST(SyntheticInternetTest, PrefixOwnershipConsistent) {
  const auto& internet = small_internet();
  for (const AsId as : internet.edge_ases()) {
    for (const net::Prefix& prefix : internet.prefixes_of(as)) {
      EXPECT_EQ(internet.owner_of(prefix.network()), as);
      EXPECT_EQ(internet.prefix_of(prefix.network()), prefix);
    }
  }
}

TEST(SyntheticInternetTest, Tier1sAnnounceNothing) {
  const auto& internet = small_internet();
  for (const AsId t1 : internet.graph().ases_of_tier(AsTier::kTier1)) {
    EXPECT_TRUE(internet.prefixes_of(t1).empty());
  }
}

TEST(SyntheticInternetTest, EdgeAsesAllAnnounce) {
  const auto& internet = small_internet();
  for (const AsId as : internet.edge_ases()) {
    EXPECT_FALSE(internet.prefixes_of(as).empty());
  }
}

TEST(SyntheticInternetTest, RandomAddressWithinOwner) {
  const auto& internet = small_internet();
  stats::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const AsId as =
        internet.edge_ases()[rng.index(internet.edge_ases().size())];
    const net::Ipv4Address addr = internet.random_address_in(as, rng);
    EXPECT_EQ(internet.owner_of(addr), as);
  }
}

TEST(SyntheticInternetTest, RandomAddressInPrefixStaysInside) {
  stats::Rng rng(6);
  const net::Prefix prefix = net::Prefix::parse("10.20.0.0/16");
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(
        prefix.contains(SyntheticInternet::random_address_in(prefix, rng)));
  }
}

TEST(SyntheticInternetTest, RandomAddressRejectsTinyPrefix) {
  stats::Rng rng(6);
  EXPECT_THROW((void)SyntheticInternet::random_address_in(
                   net::Prefix::parse("1.2.3.4/32"), rng),
               std::invalid_argument);
}

TEST(SyntheticInternetTest, OwnerOfUnknownAddressThrows) {
  const auto& internet = small_internet();
  EXPECT_THROW((void)internet.owner_of(net::Ipv4Address::parse("250.0.0.1")),
               std::invalid_argument);
}

TEST(SyntheticInternetTest, CoreVantagesHaveHigherNextHopDegree) {
  // The paper's explanation of Figure 8: Oregon-like routers have high
  // next-hop degree, the Georgia-like router much lower, and the remote
  // edge routers nearly none.
  const auto& internet = small_internet();
  const std::size_t oregon = internet.vantage("Oregon-1").next_hop_degree();
  const std::size_t georgia = internet.vantage("Georgia").next_hop_degree();
  const std::size_t mauritius =
      internet.vantage("Mauritius").next_hop_degree();
  EXPECT_GT(oregon, georgia);
  EXPECT_GT(georgia, mauritius);
  EXPECT_LE(mauritius, 2u);
}

TEST(SyntheticInternetTest, RibsContainMultipleCandidates) {
  // A measurement router hears several routes per prefix ("typically,
  // there are several routes to any given prefix", §6.2.1).
  const auto& internet = small_internet();
  const VantageRouter& oregon = internet.vantage("Oregon-1");
  EXPECT_GT(oregon.rib().route_count(), oregon.rib().prefix_count());
}

TEST(SyntheticInternetTest, RibRoutesAreLoopFreeAndOriginate) {
  const auto& internet = small_internet();
  const VantageRouter& v = internet.vantage("Virginia");
  for (const net::Prefix& prefix : v.rib().prefixes()) {
    const AsId owner = internet.owner_of(prefix.network());
    for (const RibRoute& route : v.rib().candidates(prefix)) {
      EXPECT_TRUE(route.as_path.loop_free());
      EXPECT_EQ(route.as_path.origin(), owner);
      if (owner == v.as_number()) {
        // Self route: local delivery encoded as the one-hop path {v}.
        EXPECT_EQ(route.as_path.length(), 1u);
      } else {
        EXPECT_FALSE(route.as_path.contains(v.as_number()));
      }
    }
  }
}

TEST(SyntheticInternetTest, EdgeAsesNearReturnsSortedByDistance) {
  const auto& internet = small_internet();
  const auto anchor = topology::metro_anchors()[0];
  const auto near = internet.edge_ases_near(anchor, 10);
  ASSERT_EQ(near.size(), 10u);
  double prev = 0.0;
  for (const AsId as : near) {
    const double d =
        topology::great_circle_km(anchor, internet.graph().location(as));
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(SyntheticInternetTest, BuildVantagesForRipeSet) {
  const auto& internet = small_internet();
  const auto ripe = internet.build_vantages(ripe_vantage_specs());
  EXPECT_EQ(ripe.size(), 13u);
  for (const VantageRouter& v : ripe) {
    EXPECT_EQ(v.fib().size(), internet.all_prefixes().size());
  }
}

TEST(SyntheticInternetTest, DeterministicAcrossConstruction) {
  SyntheticInternetConfig config;
  config.topology.tier1_count = 4;
  config.topology.tier2_count = 10;
  config.topology.stub_count = 40;
  config.seed = 123;
  const SyntheticInternet a(config);
  const SyntheticInternet b(config);
  ASSERT_EQ(a.all_prefixes().size(), b.all_prefixes().size());
  for (std::size_t i = 0; i < a.vantages().size(); ++i) {
    EXPECT_EQ(a.vantages()[i].as_number(), b.vantages()[i].as_number());
    EXPECT_EQ(a.vantages()[i].fib().next_hop_degree(),
              b.vantages()[i].fib().next_hop_degree());
  }
}

TEST(VantageRouterTest, SelfRouteUsesLocalPort) {
  const auto& internet = small_internet();
  // Mauritius/Tokyo are stub vantages announcing their own prefixes.
  const VantageRouter& tokyo = internet.vantage("Tokyo");
  const auto own = internet.prefixes_of(tokyo.as_number());
  ASSERT_FALSE(own.empty());
  const auto port = tokyo.port_for(own.front().network());
  ASSERT_TRUE(port.has_value());
  EXPECT_EQ(*port, tokyo.as_number());
}

}  // namespace
}  // namespace lina::routing
