#include "lina/routing/fib.hpp"

#include <gtest/gtest.h>

namespace lina::routing {
namespace {

TEST(EntryPreferenceTest, OrderingRules) {
  const FibEntry customer{.port = 9,
                          .route_class = RouteClass::kCustomer,
                          .path_length = 5,
                          .med = 9};
  const FibEntry peer_short{
      .port = 1, .route_class = RouteClass::kPeer, .path_length = 1, .med = 0};
  EXPECT_TRUE(entry_preferred(customer, peer_short));

  const FibEntry peer_longer{
      .port = 0, .route_class = RouteClass::kPeer, .path_length = 2, .med = 0};
  EXPECT_TRUE(entry_preferred(peer_short, peer_longer));

  const FibEntry peer_same_med9{
      .port = 0, .route_class = RouteClass::kPeer, .path_length = 1, .med = 9};
  EXPECT_TRUE(entry_preferred(peer_short, peer_same_med9));

  const FibEntry peer_tie_port2{
      .port = 2, .route_class = RouteClass::kPeer, .path_length = 1, .med = 0};
  EXPECT_TRUE(entry_preferred(peer_short, peer_tie_port2));
}

TEST(FibTest, FromRibSelectsBestPerPrefix) {
  Rib rib;
  rib.add(RibRoute{.prefix = net::Prefix::parse("1.0.0.0/16"),
                   .as_path = AsPath({10, 99}),
                   .route_class = RouteClass::kProvider});
  rib.add(RibRoute{.prefix = net::Prefix::parse("1.0.0.0/16"),
                   .as_path = AsPath({20, 99}),
                   .route_class = RouteClass::kCustomer});
  rib.add(RibRoute{.prefix = net::Prefix::parse("2.0.0.0/16"),
                   .as_path = AsPath({30, 88}),
                   .route_class = RouteClass::kPeer});
  const Fib fib = Fib::from_rib(rib);
  EXPECT_EQ(fib.size(), 2u);
  EXPECT_EQ(fib.port_for(net::Ipv4Address::parse("1.0.5.5")), 20u);
  EXPECT_EQ(fib.port_for(net::Ipv4Address::parse("2.0.5.5")), 30u);
  EXPECT_EQ(fib.port_for(net::Ipv4Address::parse("9.0.0.1")), std::nullopt);

  const auto entry = fib.lookup(net::Ipv4Address::parse("1.0.5.5"));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->first, net::Prefix::parse("1.0.0.0/16"));
  EXPECT_EQ(entry->second.route_class, RouteClass::kCustomer);
  EXPECT_EQ(entry->second.path_length, 2u);
}

TEST(FibTest, LongestPrefixWins) {
  Fib fib;
  fib.insert(net::Prefix::parse("10.0.0.0/8"),
             FibEntry{.port = 1, .route_class = RouteClass::kPeer});
  fib.insert(net::Prefix::parse("10.1.0.0/16"),
             FibEntry{.port = 2, .route_class = RouteClass::kPeer});
  EXPECT_EQ(fib.port_for(net::Ipv4Address::parse("10.1.0.1")), 2u);
  EXPECT_EQ(fib.port_for(net::Ipv4Address::parse("10.2.0.1")), 1u);
}

TEST(FibTest, NextHopDegreeCountsDistinctPorts) {
  Fib fib;
  fib.insert(net::Prefix::parse("1.0.0.0/16"), FibEntry{.port = 7});
  fib.insert(net::Prefix::parse("2.0.0.0/16"), FibEntry{.port = 7});
  fib.insert(net::Prefix::parse("3.0.0.0/16"), FibEntry{.port = 9});
  EXPECT_EQ(fib.next_hop_degree(), 2u);
}

TEST(FibTest, LpmCompressedSize) {
  Fib fib;
  const FibEntry port7{.port = 7};
  const FibEntry port9{.port = 9};
  fib.insert(net::Prefix::parse("10.0.0.0/8"), port7);
  fib.insert(net::Prefix::parse("10.1.0.0/16"), port7);  // subsumed
  fib.insert(net::Prefix::parse("10.2.0.0/16"), port9);
  EXPECT_EQ(fib.size(), 3u);
  EXPECT_EQ(fib.lpm_compressed_size(), 2u);
}

TEST(FibTest, VisitEnumerates) {
  Fib fib;
  fib.insert(net::Prefix::parse("1.0.0.0/16"), FibEntry{.port = 1});
  fib.insert(net::Prefix::parse("2.0.0.0/16"), FibEntry{.port = 2});
  std::size_t count = 0;
  fib.visit([&count](const net::Prefix&, const FibEntry&) { ++count; });
  EXPECT_EQ(count, 2u);
}

}  // namespace
}  // namespace lina::routing
