#include "lina/routing/rib_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "lina/routing/synthetic_internet.hpp"

namespace lina::routing {
namespace {

Rib sample_rib() {
  Rib rib;
  rib.add(RibRoute{.prefix = net::Prefix::parse("1.0.0.0/16"),
                   .as_path = AsPath({7, 12, 99}),
                   .route_class = RouteClass::kCustomer,
                   .local_pref = 0,
                   .med = 3});
  rib.add(RibRoute{.prefix = net::Prefix::parse("1.0.0.0/16"),
                   .as_path = AsPath({8, 99}),
                   .route_class = RouteClass::kPeer,
                   .local_pref = 0,
                   .med = 0});
  rib.add(RibRoute{.prefix = net::Prefix::parse("2.5.0.0/16"),
                   .as_path = AsPath({9, 44, 55}),
                   .route_class = RouteClass::kProvider,
                   .local_pref = 100,
                   .med = 9});
  return rib;
}

TEST(RibIoTest, RoundTrip) {
  const Rib original = sample_rib();
  std::stringstream buffer;
  write_rib(buffer, original);
  const Rib parsed = read_rib(buffer);
  EXPECT_EQ(parsed.prefix_count(), original.prefix_count());
  EXPECT_EQ(parsed.route_count(), original.route_count());
  const auto best = parsed.best(net::Prefix::parse("1.0.0.0/16"));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->route_class, RouteClass::kCustomer);
  EXPECT_EQ(best->as_path, AsPath({7, 12, 99}));
  EXPECT_EQ(best->med, 3u);
}

TEST(RibIoTest, ParsesHandWrittenDump) {
  std::istringstream input(
      "PREFIX|NEXT_HOP_AS|LOCAL_PREF|MED|REL|AS_PATH\n"
      "10.0.0.0/8|701|0|5|peer|701 3356 15169\n");
  const Rib rib = read_rib(input);
  EXPECT_EQ(rib.route_count(), 1u);
  const auto best = rib.best(net::Prefix::parse("10.0.0.0/8"));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->port(), 701u);
  EXPECT_EQ(best->route_class, RouteClass::kPeer);
}

TEST(RibIoTest, RejectsMalformedRows) {
  const auto expect_throw = [](const char* text) {
    std::istringstream input(text);
    EXPECT_THROW((void)read_rib(input), std::invalid_argument) << text;
  };
  expect_throw("1.0.0.0/16|7|0|3|customer\n");            // missing field
  expect_throw("1.0.0.0/16|7|0|3|friend|7 99\n");         // bad relationship
  expect_throw("1.0.0.0/99|7|0|3|customer|7 99\n");       // bad prefix
  expect_throw("1.0.0.0/16|7|0|3|customer|\n");           // empty path
  expect_throw("1.0.0.0/16|8|0|3|customer|7 99\n");       // hop mismatch
  expect_throw("1.0.0.0/16|7|0|3|customer|7 99 7\n");     // looped path
}

TEST(RibIoTest, MalformedRowErrorsNameTheDumpAndLine) {
  // The header counts as line 1, the good row as line 2; the bad row —
  // non-numeric MED — is line 3 and the error must say so.
  std::istringstream input(
      "PREFIX|NEXT_HOP_AS|LOCAL_PREF|MED|REL|AS_PATH\n"
      "10.0.0.0/8|701|0|5|peer|701 3356\n"
      "10.1.0.0/16|701|0|lots|peer|701 3356\n");
  try {
    (void)read_rib(input, "rib-2026-08.dump");
    FAIL() << "malformed MED must throw";
  } catch (const RibIoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rib-2026-08.dump:line 3"), std::string::npos)
        << what;
    EXPECT_NE(what.find("med"), std::string::npos) << what;
    EXPECT_NE(what.find("lots"), std::string::npos) << what;
  }
}

TEST(RibIoTest, FieldCountErrorsReportTheCount) {
  std::istringstream input("1.0.0.0/16|7|0|3\n");
  try {
    (void)read_rib(input);
    FAIL() << "short row must throw";
  } catch (const RibIoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("<rib>:line 1"), std::string::npos) << what;
    EXPECT_NE(what.find("6 |-separated fields, got 4"), std::string::npos)
        << what;
  }
}

TEST(RibIoTest, NextHopMismatchErrorIsNamed) {
  std::istringstream input("1.0.0.0/16|8|0|3|customer|7 99\n");
  try {
    (void)read_rib(input, "mismatch.dump");
    FAIL() << "next-hop mismatch must throw";
  } catch (const RibIoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("mismatch.dump:line 1"), std::string::npos) << what;
    EXPECT_NE(what.find("NEXT_HOP_AS"), std::string::npos) << what;
    // The offending row rides along for grep-ability.
    EXPECT_NE(what.find("1.0.0.0/16|8|0|3|customer|7 99"),
              std::string::npos)
        << what;
  }
}

TEST(RibIoTest, RibIoErrorIsStillAnInvalidArgument) {
  // Callers that predate RibIoError catch std::invalid_argument; the
  // refinement must not break them.
  std::istringstream input("garbage row\n");
  EXPECT_THROW((void)read_rib(input), std::invalid_argument);
}

TEST(RibIoTest, VantageFromDumpBuildsWorkingFib) {
  std::stringstream buffer;
  write_rib(buffer, sample_rib());
  const VantageRouter router =
      vantage_from_dump(buffer, "dump-router", 42, {0.0, 0.0});
  EXPECT_EQ(router.name(), "dump-router");
  EXPECT_EQ(router.fib().size(), 2u);
  EXPECT_EQ(router.port_for(net::Ipv4Address::parse("1.0.5.5")), 7u);
  EXPECT_EQ(router.port_for(net::Ipv4Address::parse("2.5.9.9")), 9u);
}

TEST(RibIoTest, SyntheticVantageRoundTrip) {
  // The full pipeline: dump a synthetic vantage's RIB, re-read it, and
  // verify the rebuilt router forwards identically.
  routing::SyntheticInternetConfig config;
  config.topology.tier1_count = 5;
  config.topology.tier2_count = 12;
  config.topology.stub_count = 60;
  const SyntheticInternet internet(config);
  const VantageRouter& original = internet.vantage("Oregon-1");

  std::stringstream buffer;
  write_rib(buffer, original.rib());
  const VantageRouter rebuilt = vantage_from_dump(
      buffer, std::string(original.name()), original.as_number(),
      original.location());

  EXPECT_EQ(rebuilt.fib().size(), original.fib().size());
  stats::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto as =
        internet.edge_ases()[rng.index(internet.edge_ases().size())];
    const auto addr = internet.random_address_in(as, rng);
    EXPECT_EQ(rebuilt.port_for(addr), original.port_for(addr));
  }
}

}  // namespace
}  // namespace lina::routing
