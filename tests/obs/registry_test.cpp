// lina::obs core: registry semantics, concurrency, histogram quantile
// edge cases, scoped timers, and the trace ring. Runs under the `obs`
// ctest label.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "lina/obs/registry.hpp"
#include "lina/obs/timer.hpp"
#include "lina/obs/trace.hpp"

namespace lina::obs {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::instance().reset();
    Registry::instance().enable(false);
    TraceRing::instance().clear();
  }
  void TearDown() override {
    Registry::instance().enable(false);
    Registry::instance().reset();
    TraceRing::instance().clear();
  }
};

TEST_F(RegistryTest, DisabledCounterIsANoOp) {
  Counter c = Registry::instance().counter("test.counter.disabled");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_TRUE(Registry::instance().snapshot().empty());
}

TEST_F(RegistryTest, EnabledCounterAccumulates) {
  EnabledScope scope;
  Counter c = Registry::instance().counter("test.counter.enabled");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST_F(RegistryTest, RegistrationDeduplicatesByName) {
  EnabledScope scope;
  Counter a = Registry::instance().counter("test.counter.shared");
  Counter b = Registry::instance().counter("test.counter.shared");
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(b.value(), 7u);
  const Snapshot snapshot = Registry::instance().snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters.front().first, "test.counter.shared");
  EXPECT_EQ(snapshot.counters.front().second, 7u);
}

TEST_F(RegistryTest, ConcurrentCounterAddsLoseNothing) {
  EnabledScope scope;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&go] {
      // Each thread registers its own handle, exercising concurrent
      // registration of the same name alongside concurrent adds.
      Counter c = Registry::instance().counter("test.counter.concurrent");
      Histogram h = Registry::instance().histogram("test.hist.concurrent");
      while (!go.load()) {
      }
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) {
        c.add();
        h.record(1.0);
      }
    });
  }
  go.store(true);
  for (auto& w : workers) w.join();
  Counter c = Registry::instance().counter("test.counter.concurrent");
  EXPECT_EQ(c.value(), kThreads * kAddsPerThread);
  Histogram h = Registry::instance().histogram("test.hist.concurrent");
  EXPECT_EQ(h.count(), kThreads * kAddsPerThread);
}

TEST_F(RegistryTest, GaugeTracksLastValueAndRunningMax) {
  EnabledScope scope;
  Gauge g = Registry::instance().gauge("test.gauge.depth");
  g.set(5.0);
  g.set(9.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 9.0);
  g.record_max(1.0);  // never lowers the max
  EXPECT_DOUBLE_EQ(g.max(), 9.0);
}

TEST_F(RegistryTest, ResetZeroesButKeepsRegistrations) {
  EnabledScope scope;
  Counter c = Registry::instance().counter("test.counter.reset");
  c.add(10);
  Registry::instance().reset();
  EXPECT_EQ(c.value(), 0u);  // same cell, zeroed
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST_F(RegistryTest, SnapshotOmitsUntouchedMetrics) {
  EnabledScope scope;
  Counter touched = Registry::instance().counter("test.counter.touched");
  (void)Registry::instance().counter("test.counter.untouched");
  (void)Registry::instance().histogram("test.hist.untouched");
  touched.add();
  const Snapshot snapshot = Registry::instance().snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters.front().first, "test.counter.touched");
  EXPECT_TRUE(snapshot.histograms.empty());
}

// --- Histogram quantile edge cases -----------------------------------

HistogramSnapshot snapshot_of(std::string_view name) {
  const Snapshot snapshot = Registry::instance().snapshot();
  for (const auto& [n, h] : snapshot.histograms) {
    if (n == name) return h;
  }
  return {};
}

TEST_F(RegistryTest, EmptyHistogramQuantilesAreZero) {
  HistogramSnapshot empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
}

TEST_F(RegistryTest, SingleSampleHistogramReportsThatSampleEverywhere) {
  EnabledScope scope;
  Histogram h = Registry::instance().histogram("test.hist.single");
  h.record(3.25);
  const HistogramSnapshot s = snapshot_of("test.hist.single");
  ASSERT_EQ(s.count, 1u);
  // Interpolation inside the bucket is clamped to the observed range, so
  // a lone sample reports exactly itself at every quantile.
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 3.25);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.25);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 3.25);
  EXPECT_DOUBLE_EQ(s.min, 3.25);
  EXPECT_DOUBLE_EQ(s.max, 3.25);
}

TEST_F(RegistryTest, OverflowBucketQuantileClampsToObservedMax) {
  EnabledScope scope;
  HistogramOptions options;
  options.first_bound = 1.0;
  options.growth = 2.0;
  options.bucket_count = 4;  // underflow, [1,2), [2,4), overflow [4, inf)
  Histogram h = Registry::instance().histogram("test.hist.overflow", options);
  h.record(1e9);
  h.record(2e9);
  const HistogramSnapshot s = snapshot_of("test.hist.overflow");
  ASSERT_EQ(s.count, 2u);
  ASSERT_FALSE(s.buckets.empty());
  EXPECT_EQ(s.buckets.back(), 2u);  // both landed in the overflow bucket
  // The overflow bucket has no finite upper bound; quantiles must stay
  // inside the observed range rather than reporting infinity.
  EXPECT_GE(s.quantile(0.99), s.min);
  EXPECT_LE(s.quantile(0.99), s.max);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 2e9);
}

TEST_F(RegistryTest, UnderflowSamplesLandInBucketZero) {
  EnabledScope scope;
  HistogramOptions options;
  options.first_bound = 1.0;
  options.bucket_count = 4;
  Histogram h = Registry::instance().histogram("test.hist.underflow", options);
  h.record(0.25);
  const HistogramSnapshot s = snapshot_of("test.hist.underflow");
  ASSERT_EQ(s.count, 1u);
  EXPECT_EQ(s.buckets.front(), 1u);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.25);
}

TEST_F(RegistryTest, QuantilesAreMonotoneOnMultiBucketData) {
  EnabledScope scope;
  Histogram h = Registry::instance().histogram("test.hist.monotone");
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i) * 0.01);
  const HistogramSnapshot s = snapshot_of("test.hist.monotone");
  ASSERT_EQ(s.count, 1000u);
  double previous = s.quantile(0.0);
  for (double q = 0.1; q <= 1.0001; q += 0.1) {
    const double value = s.quantile(q);
    EXPECT_GE(value, previous);
    previous = value;
  }
  EXPECT_NEAR(s.quantile(0.5), 5.0, 2.6);  // coarse buckets, honest range
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
}

// --- ScopedTimer ------------------------------------------------------

TEST_F(RegistryTest, ScopedTimerRecordsOnlyWhenEnabled) {
  Histogram h = Registry::instance().histogram("test.hist.timer");
  { ScopedTimer timer(h); }
  EXPECT_EQ(h.count(), 0u);
  {
    EnabledScope scope;
    ScopedTimer timer(h);
  }
  EXPECT_EQ(h.count(), 1u);
}

// --- TraceRing --------------------------------------------------------

TEST_F(RegistryTest, TraceRingIsNoOpWhileDisabled) {
  TraceRing::instance().record("test.event", 1.0, 2.0);
  EXPECT_EQ(TraceRing::instance().size(), 0u);
}

TEST_F(RegistryTest, TraceRingKeepsArrivalOrder) {
  EnabledScope scope;
  TraceRing::instance().record("a", 1.0, 10.0);
  TraceRing::instance().record("b", 2.0, 20.0);
  const auto events = TraceRing::instance().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_DOUBLE_EQ(events[0].time_ms, 1.0);
  EXPECT_DOUBLE_EQ(events[1].value, 20.0);
}

TEST_F(RegistryTest, TraceRingOverwritesOldestAndCountsDrops) {
  EnabledScope scope;
  TraceRing::instance().set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    TraceRing::instance().record("e", static_cast<double>(i));
  }
  const auto events = TraceRing::instance().events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events.front().time_ms, 6.0);  // oldest surviving
  EXPECT_DOUBLE_EQ(events.back().time_ms, 9.0);
  EXPECT_EQ(TraceRing::instance().dropped(), 6u);
  TraceRing::instance().set_capacity(TraceRing::kDefaultCapacity);
}

}  // namespace
}  // namespace lina::obs
