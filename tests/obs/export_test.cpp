// lina::obs exporters: JSON document model round trips, snapshot ->
// JSON -> snapshot self-check, CSV and JSONL shapes. Runs under the
// `obs` ctest label.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "lina/obs/export.hpp"
#include "lina/obs/json.hpp"
#include "lina/obs/registry.hpp"
#include "lina/obs/trace.hpp"

namespace lina::obs {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::instance().reset();
    Registry::instance().enable(true);
    TraceRing::instance().clear();
  }
  void TearDown() override {
    Registry::instance().enable(false);
    Registry::instance().reset();
    TraceRing::instance().clear();
  }
};

// --- Json document model ---------------------------------------------

TEST_F(ExportTest, JsonParsesScalarsAndContainers) {
  const Json doc = Json::parse(
      R"({"a": 1.5, "b": [true, false, null], "s": "hi\n\"there\"",)"
      R"( "nested": {"k": -2e3}})");
  EXPECT_DOUBLE_EQ(doc.at("a").as_number(), 1.5);
  EXPECT_TRUE(doc.at("b").items()[0].as_bool());
  EXPECT_TRUE(doc.at("b").items()[2].is_null());
  EXPECT_EQ(doc.at("s").as_string(), "hi\n\"there\"");
  EXPECT_DOUBLE_EQ(doc.at("nested").at("k").as_number(), -2000.0);
}

TEST_F(ExportTest, JsonDumpParseRoundTripPreservesStructure) {
  Json doc = Json::object();
  doc["name"] = "bench";
  doc["count"] = std::uint64_t{12345678901234ull};
  doc["pi"] = 3.14159;
  doc["flag"] = true;
  doc["none"] = Json();
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  doc["items"] = std::move(arr);

  for (const int indent : {0, 2}) {
    const Json again = Json::parse(doc.dump(indent));
    EXPECT_EQ(again.at("name").as_string(), "bench");
    EXPECT_DOUBLE_EQ(again.at("count").as_number(), 12345678901234.0);
    EXPECT_DOUBLE_EQ(again.at("pi").as_number(), 3.14159);
    EXPECT_TRUE(again.at("flag").as_bool());
    EXPECT_TRUE(again.at("none").is_null());
    ASSERT_EQ(again.at("items").items().size(), 2u);
    EXPECT_EQ(again.at("items").items()[1].as_string(), "two");
    // Member order survives the round trip (diffable exports).
    EXPECT_EQ(again.members().front().first, "name");
  }
}

TEST_F(ExportTest, JsonParseRejectsMalformedDocuments) {
  EXPECT_THROW((void)Json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{1: 2}"), std::runtime_error);
}

// --- Snapshot round trip ---------------------------------------------

Snapshot make_populated_snapshot() {
  Counter packets = Registry::instance().counter("test.export.packets");
  Gauge depth = Registry::instance().gauge("test.export.depth");
  Histogram delay = Registry::instance().histogram("test.export.delay_ms");
  packets.add(99);
  depth.set(4.0);
  depth.set(2.0);
  for (int i = 1; i <= 32; ++i) delay.record(0.5 * i);
  return Registry::instance().snapshot();
}

void expect_snapshots_equal(const Snapshot& a, const Snapshot& b) {
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(a.counters[i], b.counters[i]);
  }
  ASSERT_EQ(a.gauges.size(), b.gauges.size());
  for (std::size_t i = 0; i < a.gauges.size(); ++i) {
    EXPECT_EQ(a.gauges[i].first, b.gauges[i].first);
    EXPECT_DOUBLE_EQ(a.gauges[i].second.first, b.gauges[i].second.first);
    EXPECT_DOUBLE_EQ(a.gauges[i].second.second, b.gauges[i].second.second);
  }
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  for (std::size_t i = 0; i < a.histograms.size(); ++i) {
    EXPECT_EQ(a.histograms[i].first, b.histograms[i].first);
    const HistogramSnapshot& ha = a.histograms[i].second;
    const HistogramSnapshot& hb = b.histograms[i].second;
    EXPECT_EQ(ha.count, hb.count);
    EXPECT_DOUBLE_EQ(ha.sum, hb.sum);
    EXPECT_DOUBLE_EQ(ha.min, hb.min);
    EXPECT_DOUBLE_EQ(ha.max, hb.max);
    EXPECT_EQ(ha.upper_bounds, hb.upper_bounds);
    EXPECT_EQ(ha.buckets, hb.buckets);
    EXPECT_DOUBLE_EQ(ha.quantile(0.5), hb.quantile(0.5));
  }
}

TEST_F(ExportTest, SnapshotSurvivesJsonRoundTrip) {
  const Snapshot original = make_populated_snapshot();
  ASSERT_FALSE(original.empty());
  const Json doc = snapshot_to_json(original);
  const Snapshot again = parse_snapshot(Json::parse(doc.dump(2)));
  expect_snapshots_equal(original, again);
}

TEST_F(ExportTest, FullRunRecordSurvivesRoundTrip) {
  const Snapshot original = make_populated_snapshot();
  RunInfo info;
  info.name = "export_test";
  info.seed = 20140817;
  info.config.emplace_back("users", "372");
  info.phases.emplace_back("main", 12.5);
  info.results.emplace_back("median_stretch", 1.08);

  const std::string text = export_json(info, original);
  const Json doc = Json::parse(text);
  EXPECT_DOUBLE_EQ(doc.at("schema_version").as_number(), 1.0);
  EXPECT_EQ(doc.at("name").as_string(), "export_test");
  EXPECT_DOUBLE_EQ(doc.at("seed").as_number(), 20140817.0);
  EXPECT_EQ(doc.at("config").at("users").as_string(), "372");
  const auto& phases = doc.at("phases").items();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].at("phase").as_string(), "main");
  EXPECT_DOUBLE_EQ(phases[0].at("wall_ms").as_number(), 12.5);
  EXPECT_DOUBLE_EQ(doc.at("results").at("median_stretch").as_number(), 1.08);
  // parse_snapshot accepts the full record (metrics nested inside).
  expect_snapshots_equal(original, parse_snapshot(doc));
}

TEST_F(ExportTest, ParseSnapshotRejectsCorruptedBuckets) {
  const Snapshot original = make_populated_snapshot();
  Json doc = snapshot_to_json(original);
  // Corrupt one histogram bucket so the bucket sum no longer matches the
  // count; the parser must refuse rather than load silently-wrong data.
  Json& hist = doc["histograms"]["test.export.delay_ms"];
  Json& buckets = hist["buckets"];
  Json bumped = Json::array();
  for (std::size_t i = 0; i < buckets.items().size(); ++i) {
    bumped.push_back(buckets.items()[i].as_number() + 1.0);
  }
  hist["buckets"] = std::move(bumped);
  EXPECT_THROW((void)parse_snapshot(doc), std::runtime_error);
}

// --- CSV / JSONL shapes ----------------------------------------------

TEST_F(ExportTest, CsvCarriesEveryMetricAsRows) {
  const std::string csv = export_csv(make_populated_snapshot());
  std::istringstream is(csv);
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "metric,kind,field,value");
  bool saw_counter = false, saw_gauge = false, saw_p50 = false;
  while (std::getline(is, line)) {
    if (line.find("test.export.packets,counter,value,99") == 0)
      saw_counter = true;
    if (line.find("test.export.depth,gauge,") != std::string::npos)
      saw_gauge = true;
    if (line.find("test.export.delay_ms,histogram,p50,") != std::string::npos)
      saw_p50 = true;
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_p50);
}

TEST_F(ExportTest, TraceJsonlEmitsOneParsableObjectPerLine) {
  TraceRing::instance().record("lina.test.event", 1.25, 7.0);
  TraceRing::instance().record("lina.test.other", 2.5);
  const std::string jsonl =
      export_trace_jsonl(TraceRing::instance().events());
  std::istringstream is(jsonl);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const Json event = Json::parse(line);
    EXPECT_TRUE(event.at("event").is_string());
    EXPECT_TRUE(event.at("t_ms").is_number());
    EXPECT_TRUE(event.at("value").is_number());
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

}  // namespace
}  // namespace lina::obs
