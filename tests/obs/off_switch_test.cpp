// The observability off-switch regression: with the lina::obs registry
// enabled vs. disabled, every architecture's SessionStats must be
// bit-identical — instrumentation observes, it never feeds back. This is
// the obs analogue of the PR 1 empty-FailurePlan bit-identity contract.
// Runs under the `obs` ctest label.

#include <gtest/gtest.h>

#include <vector>

#include "../support/fixtures.hpp"
#include "lina/obs/metrics.hpp"
#include "lina/obs/registry.hpp"
#include "lina/obs/trace.hpp"
#include "lina/sim/failure_plan.hpp"
#include "lina/sim/resolver_pool.hpp"
#include "lina/sim/session.hpp"
#include "lina/topology/geo.hpp"

namespace lina::sim {
namespace {

using lina::testing::shared_internet;
using topology::AsId;

const ForwardingFabric& fabric() {
  static const ForwardingFabric instance(shared_internet());
  return instance;
}

SessionConfig mobile_config() {
  const auto local =
      shared_internet().edge_ases_near(topology::metro_anchors()[0], 4);
  SessionConfig config;
  config.correspondent = shared_internet().edge_ases()[0];
  config.schedule = {{0.0, local[0]},
                     {2000.0, local[1]},
                     {4000.0, local[2]},
                     {6000.0, local[3]}};
  config.packet_interval_ms = 20.0;
  config.duration_ms = 8000.0;
  config.resolver_ttl_ms = 150.0;
  config.resolver_replicas =
      ResolverPool::metro_placement(shared_internet(), 6);
  return config;
}

void expect_identical(const SessionStats& a, const SessionStats& b) {
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.packets_lost, b.packets_lost);
  EXPECT_EQ(a.control_messages, b.control_messages);
  EXPECT_EQ(a.control_retries, b.control_retries);
  EXPECT_EQ(a.packets_sent_during_failure, b.packets_sent_during_failure);
  EXPECT_EQ(a.packets_delivered_during_failure,
            b.packets_delivered_during_failure);
  // Bit-identical sample sets, not just close.
  EXPECT_EQ(a.delivery_delay_ms.sorted_samples(),
            b.delivery_delay_ms.sorted_samples());
  EXPECT_EQ(a.stretch.sorted_samples(), b.stretch.sorted_samples());
  EXPECT_EQ(a.outage_ms.sorted_samples(), b.outage_ms.sorted_samples());
  EXPECT_EQ(a.recovery_ms.sorted_samples(), b.recovery_ms.sorted_samples());
  EXPECT_EQ(a.stretch_degraded.sorted_samples(),
            b.stretch_degraded.sorted_samples());
}

TEST(ObsOffSwitchTest, SessionStatsBitIdenticalWithObservabilityOnVsOff) {
  const SessionConfig config = mobile_config();
  for (const auto arch :
       {SimArchitecture::kIndirection, SimArchitecture::kNameResolution,
        SimArchitecture::kNameBased,
        SimArchitecture::kReplicatedResolution}) {
    obs::Registry::instance().reset();
    obs::Registry::instance().enable(false);
    const SessionStats off = simulate_session(fabric(), arch, config);
    EXPECT_TRUE(obs::Registry::instance().snapshot().empty());

    SessionStats on;
    {
      obs::EnabledScope scope;
      on = simulate_session(fabric(), arch, config);
    }
    expect_identical(off, on);
    // And the instrumented run did actually record something — the
    // regression must not pass vacuously because metrics went dead.
    EXPECT_GE(obs::metric::session_runs().value(), 1u);
    EXPECT_EQ(obs::metric::session_packets_sent().value(),
              static_cast<std::uint64_t>(on.packets_sent));
    obs::Registry::instance().reset();
  }
}

TEST(ObsOffSwitchTest, FaultedSessionIsAlsoBitIdenticalOnVsOff) {
  // The failure paths carry extra instrumentation (control-drop traces,
  // failover counters); they must be observation-only too.
  SessionConfig config = mobile_config();
  FailurePlan plan(20140817u);
  // Cut the correspondent's first hop toward the second attachment; the
  // two endpoints are always distinct (a node is never its own next hop).
  plan.link_cut(config.correspondent,
                *fabric().next_hop(config.correspondent,
                                   config.schedule[1].as),
                2000.0, 5000.0);
  plan.update_loss(0.4, 1000.0, 6000.0);
  config.failures = &plan;

  for (const auto arch :
       {SimArchitecture::kIndirection, SimArchitecture::kNameResolution,
        SimArchitecture::kReplicatedResolution}) {
    obs::Registry::instance().reset();
    obs::Registry::instance().enable(false);
    obs::TraceRing::instance().clear();
    const SessionStats off = simulate_session(fabric(), arch, config);
    EXPECT_EQ(obs::TraceRing::instance().size(), 0u);

    SessionStats on;
    {
      obs::EnabledScope scope;
      on = simulate_session(fabric(), arch, config);
    }
    expect_identical(off, on);
    obs::Registry::instance().reset();
    obs::TraceRing::instance().clear();
  }
}

}  // namespace
}  // namespace lina::sim
