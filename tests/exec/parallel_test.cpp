#include "lina/exec/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "lina/exec/memo.hpp"
#include "lina/exec/thread_pool.hpp"
#include "lina/stats/rng.hpp"

namespace lina::exec {
namespace {

TEST(ThreadPoolTest, DefaultThreadsFollowsOverride) {
  set_default_threads(3);
  EXPECT_EQ(default_threads(), 3u);
  set_default_threads(0);  // back to hardware default
  EXPECT_EQ(default_threads(), hardware_threads());
  EXPECT_GE(hardware_threads(), 1u);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kItems = 997;
  std::vector<std::atomic<int>> visits(kItems);
  parallel_for(
      kItems, [&](std::size_t i) { visits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << i;
  }
}

TEST(ParallelForTest, ZeroItemsIsANoOp) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; }, 4);
}

TEST(ParallelMapTest, ResultsLandInItemOrder) {
  const auto out = parallel_map(
      500, [](std::size_t i) { return i * i; }, 8);
  ASSERT_EQ(out.size(), 500u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i) << i;
  }
}

TEST(ParallelMapTest, MoveOnlyResultsWork) {
  const auto out = parallel_map(
      64, [](std::size_t i) { return std::to_string(i); }, 4);
  ASSERT_EQ(out.size(), 64u);
  EXPECT_EQ(out[63], "63");
}

TEST(ParallelMapTest, MatchesSerialAtEveryThreadCount) {
  const auto expected =
      parallel_map(301, [](std::size_t i) { return 3 * i + 1; }, 1);
  for (const std::size_t threads : {2u, 5u, 8u}) {
    EXPECT_EQ(parallel_map(
                  301, [](std::size_t i) { return 3 * i + 1; }, threads),
              expected)
        << threads << " threads";
  }
}

TEST(ParallelReduceTest, MatchesSerialAccumulation) {
  const auto serial = [] {
    std::size_t acc = 0;
    for (std::size_t i = 0; i < 1000; ++i) acc += i * 7;
    return acc;
  }();
  const auto parallel = parallel_reduce(
      1000, std::size_t{0}, [](std::size_t i) { return i * 7; },
      [](std::size_t a, std::size_t b) { return a + b; }, 8);
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelForTest, ExceptionsPropagateToCaller) {
  EXPECT_THROW(parallel_for(
                   100,
                   [](std::size_t i) {
                     if (i == 41) throw std::runtime_error("boom");
                   },
                   4),
               std::runtime_error);
  // The pool survives a throwing job and keeps serving work.
  std::atomic<int> count{0};
  parallel_for(10, [&](std::size_t) { count.fetch_add(1); }, 4);
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  std::atomic<int> inner_total{0};
  std::atomic<int> nested_regions{0};
  parallel_for(
      8,
      [&](std::size_t) {
        EXPECT_TRUE(in_parallel_region());
        // A nested region must degrade to an inline serial loop (no
        // re-entry into the single-job pool, which would deadlock).
        parallel_for(
            16, [&](std::size_t) { inner_total.fetch_add(1); }, 4);
        nested_regions.fetch_add(1);
      },
      4);
  EXPECT_FALSE(in_parallel_region());
  EXPECT_EQ(nested_regions.load(), 8);
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(MemoTest, BuildsEachKeyExactlyOnceUnderContention) {
  Memo<std::size_t, std::size_t> memo;
  std::atomic<std::size_t> builds{0};
  constexpr std::size_t kKeys = 17;
  // 40 queries per key race through the memo; every hit must observe the
  // one value built for that key.
  parallel_for(
      kKeys * 40,
      [&](std::size_t i) {
        const std::size_t key = i % kKeys;
        const std::size_t& value = memo.get_or_build(key, [&] {
          builds.fetch_add(1);
          return key * 1000;
        });
        EXPECT_EQ(value, key * 1000);
      },
      8);
  EXPECT_EQ(builds.load(), kKeys);
  EXPECT_EQ(memo.size(), kKeys);
}

TEST(MemoTest, FindAndClear) {
  Memo<int, int> memo;
  EXPECT_EQ(memo.find(7), nullptr);
  memo.get_or_build(7, [] { return 70; });
  ASSERT_NE(memo.find(7), nullptr);
  EXPECT_EQ(*memo.find(7), 70);
  memo.clear();
  EXPECT_EQ(memo.find(7), nullptr);
  EXPECT_EQ(memo.size(), 0u);
}

TEST(MemoTest, TupleKeysHashAndCompare) {
  Memo<std::tuple<std::uint64_t, std::size_t, int>, int, TupleHash> memo;
  const auto key_a = std::make_tuple(std::uint64_t{1}, std::size_t{2}, 3);
  const auto key_b = std::make_tuple(std::uint64_t{1}, std::size_t{2}, 4);
  EXPECT_EQ(memo.get_or_build(key_a, [] { return 10; }), 10);
  EXPECT_EQ(memo.get_or_build(key_b, [] { return 20; }), 20);
  EXPECT_EQ(memo.get_or_build(key_a, [] { return 99; }), 10);  // cached
  Memo<std::pair<std::uint64_t, std::size_t>, int, TupleHash> pair_memo;
  EXPECT_EQ(pair_memo.get_or_build({5, 6}, [] { return 56; }), 56);
}

TEST(RngSplitTest, SubstreamIsPureFunctionOfSeedAndIndex) {
  stats::Rng a(12345);
  stats::Rng b(12345);
  // Drain draws from one parent only: split() must not care.
  for (int i = 0; i < 100; ++i) (void)b.uniform();
  for (const std::uint64_t index : {0ull, 1ull, 63ull, 1'000'000ull}) {
    stats::Rng child_a = a.split(index);
    stats::Rng child_b = b.split(index);
    for (int draw = 0; draw < 16; ++draw) {
      EXPECT_EQ(child_a(), child_b()) << "index " << index;
    }
  }
}

TEST(RngSplitTest, DistinctIndicesGiveDistinctStreams) {
  const stats::Rng parent(777);
  stats::Rng s0 = parent.split(0);
  stats::Rng s1 = parent.split(1);
  int equal = 0;
  for (int draw = 0; draw < 16; ++draw) {
    if (s0() == s1()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace lina::exec
