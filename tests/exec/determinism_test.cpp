// Serial-vs-parallel bit-identity: the lina::exec contract (DESIGN.md §4c)
// is that every parallelized pipeline returns byte-for-byte the same result
// at any thread count. These tests pin that for the workload generator, the
// session simulator (all four architectures), the indirection-stretch
// pipeline, and the update-cost evaluator, and check the fabric's memoized
// degraded graph builds exactly once per (plan, epoch) key.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "../support/fixtures.hpp"
#include "lina/core/latency_model.hpp"
#include "lina/core/update_cost.hpp"
#include "lina/exec/parallel.hpp"
#include "lina/exec/thread_pool.hpp"
#include "lina/mobility/device_workload.hpp"
#include "lina/obs/metrics.hpp"
#include "lina/obs/registry.hpp"
#include "lina/sim/fabric.hpp"
#include "lina/sim/failure_plan.hpp"
#include "lina/sim/session.hpp"
#include "lina/stats/rng.hpp"

namespace lina {
namespace {

using lina::testing::shared_device_traces;
using lina::testing::shared_internet;
using topology::AsId;

/// Restores the ambient worker-count override on scope exit so these
/// tests cannot leak a 1-thread default into the rest of the binary.
class ThreadCountGuard {
 public:
  ThreadCountGuard() = default;
  ~ThreadCountGuard() { exec::set_default_threads(0); }
};

void expect_same_cdf(const stats::EmpiricalCdf& a,
                     const stats::EmpiricalCdf& b, const char* what) {
  ASSERT_EQ(a.sorted_samples().size(), b.sorted_samples().size()) << what;
  for (std::size_t i = 0; i < a.sorted_samples().size(); ++i) {
    // Exact double equality on purpose: the contract is bit-identity,
    // not tolerance.
    ASSERT_EQ(a.sorted_samples()[i], b.sorted_samples()[i])
        << what << " sample " << i;
  }
}

void expect_same_traces(const std::vector<mobility::DeviceTrace>& a,
                        const std::vector<mobility::DeviceTrace>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t u = 0; u < a.size(); ++u) {
    ASSERT_EQ(a[u].user_id(), b[u].user_id());
    const auto va = a[u].visits();
    const auto vb = b[u].visits();
    ASSERT_EQ(va.size(), vb.size()) << "user " << u;
    for (std::size_t i = 0; i < va.size(); ++i) {
      ASSERT_EQ(va[i].start_hour, vb[i].start_hour) << u << ":" << i;
      ASSERT_EQ(va[i].duration_hours, vb[i].duration_hours) << u << ":" << i;
      ASSERT_EQ(va[i].address.value(), vb[i].address.value()) << u << ":" << i;
      ASSERT_EQ(va[i].as, vb[i].as) << u << ":" << i;
      ASSERT_EQ(va[i].cellular, vb[i].cellular) << u << ":" << i;
    }
  }
}

TEST(WorkloadDeterminismTest, BitIdenticalAtOneTwoAndEightThreads) {
  ThreadCountGuard guard;
  mobility::DeviceWorkloadConfig config;
  config.user_count = 40;
  config.days = 3;
  const mobility::DeviceWorkloadGenerator generator(shared_internet(),
                                                    config);
  exec::set_default_threads(1);
  const auto serial = generator.generate();
  for (const std::size_t threads : {2u, 8u}) {
    exec::set_default_threads(threads);
    expect_same_traces(serial, generator.generate());
  }
}

sim::SessionConfig determinism_session_config() {
  const auto& edges = shared_internet().edge_ases();
  sim::SessionConfig config;
  config.correspondent = edges[0];
  config.schedule = {{0.0, edges[5]}, {1500.0, edges[6]}};
  config.packet_interval_ms = 50.0;
  config.duration_ms = 4000.0;
  config.resolver_ttl_ms = 200.0;
  config.resolver_as = edges[40];
  config.resolver_replicas = {edges[40], edges[41], edges[42]};
  return config;
}

void expect_same_session_stats(const sim::SessionStats& a,
                               const sim::SessionStats& b) {
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.packets_lost, b.packets_lost);
  EXPECT_EQ(a.control_messages, b.control_messages);
  EXPECT_EQ(a.control_retries, b.control_retries);
  expect_same_cdf(a.delivery_delay_ms, b.delivery_delay_ms, "delay");
  expect_same_cdf(a.stretch, b.stretch, "stretch");
  expect_same_cdf(a.outage_ms, b.outage_ms, "outage");
  expect_same_cdf(a.recovery_ms, b.recovery_ms, "recovery");
}

TEST(SessionDeterminismTest, AllArchitecturesBitIdenticalSerialVsParallel) {
  ThreadCountGuard guard;
  const sim::ForwardingFabric fabric(shared_internet());
  const std::vector<sim::SimArchitecture> architectures{
      sim::SimArchitecture::kIndirection,
      sim::SimArchitecture::kNameResolution,
      sim::SimArchitecture::kNameBased,
      sim::SimArchitecture::kReplicatedResolution,
  };
  const auto config = determinism_session_config();

  exec::set_default_threads(1);
  std::vector<sim::SessionStats> serial;
  for (const auto arch : architectures) {
    serial.push_back(sim::simulate_session(fabric, arch, config));
  }
  for (const std::size_t threads : {2u, 8u}) {
    exec::set_default_threads(threads);
    // A fresh fabric per thread count: its memoized route tables must
    // fill to the same values no matter how many workers race to build
    // them.
    const sim::ForwardingFabric parallel_fabric(shared_internet());
    const auto parallel = exec::parallel_map(
        architectures.size(), [&](std::size_t i) {
          return sim::simulate_session(parallel_fabric, architectures[i],
                                       config);
        });
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      expect_same_session_stats(serial[i], parallel[i]);
    }
  }
}

TEST(StretchDeterminismTest, PipelineBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const core::LatencyModel model(shared_internet());
  const auto run = [&](std::size_t threads) {
    exec::set_default_threads(threads);
    stats::Rng rng(99);  // fresh seed per run: coverage coins must match
    return core::evaluate_indirection_stretch(shared_device_traces(), model,
                                              0.3, rng);
  };
  const auto serial = run(1);
  EXPECT_GT(serial.pairs_total, 0u);
  for (const std::size_t threads : {2u, 8u}) {
    const auto parallel = run(threads);
    EXPECT_EQ(parallel.pairs_total, serial.pairs_total);
    EXPECT_EQ(parallel.pairs_sampled, serial.pairs_sampled);
    expect_same_cdf(parallel.delay_ms, serial.delay_ms, "delay");
    expect_same_cdf(parallel.policy_hops, serial.policy_hops, "policy");
    expect_same_cdf(parallel.physical_hops, serial.physical_hops,
                    "physical");
    expect_same_cdf(parallel.away_time_share, serial.away_time_share,
                    "away");
  }
}

TEST(UpdateCostDeterminismTest, RatesBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const auto run = [&](std::size_t threads) {
    exec::set_default_threads(threads);
    const core::DeviceUpdateCostEvaluator evaluator(
        shared_internet().vantages());
    return evaluator.evaluate(shared_device_traces());
  };
  const auto serial = run(1);
  for (const std::size_t threads : {2u, 8u}) {
    const auto parallel = run(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t r = 0; r < serial.size(); ++r) {
      EXPECT_EQ(parallel[r].router, serial[r].router);
      EXPECT_EQ(parallel[r].events, serial[r].events);
      EXPECT_EQ(parallel[r].updates, serial[r].updates);
    }
  }
}

TEST(FabricMemoTest, DegradedGraphBuildsOncePerPlanEpoch) {
  obs::Registry::instance().reset();
  const obs::EnabledScope scope;
  const sim::ForwardingFabric fabric(shared_internet());
  const auto& edges = shared_internet().edge_ases();
  const AsId from = edges[1];
  const AsId dest = edges[10];
  // Take down the first transit hop of the policy route so every
  // failure-aware query inside the window needs the degraded graph.
  const AsId transit = *fabric.next_hop(from, dest);
  sim::FailurePlan plan(7);
  plan.as_outage(transit, 500.0, 3000.0);

  // Repeated queries (serially and racing across workers) within one
  // fault epoch: the memoizer must build the surviving-topology graph
  // exactly once, not once per query as a per-call cache would.
  for (double t = 600.0; t < 2900.0; t += 100.0) {
    (void)fabric.next_hop(from, dest, plan, t);
    (void)fabric.path_delay_ms(from, dest, plan, t);
  }
  exec::parallel_for(
      64,
      [&](std::size_t i) {
        (void)fabric.next_hop(from, dest, plan,
                              600.0 + static_cast<double>(i % 23) * 100.0);
      },
      8);
  EXPECT_EQ(obs::metric::fabric_degraded_graph_builds().value(), 1u);
  obs::Registry::instance().enable(false);
}

}  // namespace
}  // namespace lina
