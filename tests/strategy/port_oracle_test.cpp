#include "lina/strategy/port_oracle.hpp"

#include <gtest/gtest.h>

namespace lina::strategy {
namespace {

using net::Ipv4Address;
using net::Prefix;
using routing::Fib;
using routing::FibEntry;

Fib make_fib() {
  Fib fib;
  fib.insert(Prefix::parse("10.0.0.0/8"), FibEntry{.port = 7});
  fib.insert(Prefix::parse("10.1.0.0/16"), FibEntry{.port = 9});
  return fib;
}

TEST(FibOracleTest, MatchesFibLookups) {
  const Fib fib = make_fib();
  const FibOracle oracle(fib);
  EXPECT_EQ(oracle.port_for(Ipv4Address::parse("10.1.0.1")), 9u);
  EXPECT_EQ(oracle.port_for(Ipv4Address::parse("10.9.0.1")), 7u);
  EXPECT_EQ(oracle.port_for(Ipv4Address::parse("11.0.0.1")), std::nullopt);
  const auto entry = oracle.entry_for(Ipv4Address::parse("10.1.0.1"));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->port, 9u);
}

TEST(CachingFibOracleTest, AgreesWithDirectOracle) {
  const Fib fib = make_fib();
  const FibOracle direct(fib);
  const CachingFibOracle cached(fib);
  for (const char* addr : {"10.1.0.1", "10.2.0.1", "11.0.0.1", "10.1.0.1"}) {
    EXPECT_EQ(cached.entry_for(Ipv4Address::parse(addr)),
              direct.entry_for(Ipv4Address::parse(addr)))
        << addr;
  }
}

TEST(CachingFibOracleTest, CachesDistinctAddressesOnly) {
  const Fib fib = make_fib();
  const CachingFibOracle cached(fib);
  EXPECT_EQ(cached.cached_addresses(), 0u);
  (void)cached.entry_for(Ipv4Address::parse("10.1.0.1"));
  (void)cached.entry_for(Ipv4Address::parse("10.1.0.1"));
  (void)cached.entry_for(Ipv4Address::parse("10.2.0.1"));
  EXPECT_EQ(cached.cached_addresses(), 2u);
}

TEST(CachingFibOracleTest, CachesNegativeResults) {
  const Fib fib = make_fib();
  const CachingFibOracle cached(fib);
  EXPECT_EQ(cached.entry_for(Ipv4Address::parse("200.0.0.1")), std::nullopt);
  EXPECT_EQ(cached.entry_for(Ipv4Address::parse("200.0.0.1")), std::nullopt);
  EXPECT_EQ(cached.cached_addresses(), 1u);
}

}  // namespace
}  // namespace lina::strategy
