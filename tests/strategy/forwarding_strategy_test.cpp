#include "lina/strategy/forwarding_strategy.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lina::strategy {
namespace {

using net::Ipv4Address;
using net::Prefix;
using routing::Fib;
using routing::FibEntry;
using routing::RouteClass;

// A FIB with three prefixes on three ports; 2.x is the most preferred
// (customer), 1.x is a peer route, 3.x is a provider route.
Fib make_fib() {
  Fib fib;
  fib.insert(Prefix::parse("1.0.0.0/16"),
             FibEntry{.port = 11, .route_class = RouteClass::kPeer,
                      .path_length = 2, .med = 0});
  fib.insert(Prefix::parse("2.0.0.0/16"),
             FibEntry{.port = 22, .route_class = RouteClass::kCustomer,
                      .path_length = 3, .med = 0});
  fib.insert(Prefix::parse("3.0.0.0/16"),
             FibEntry{.port = 33, .route_class = RouteClass::kProvider,
                      .path_length = 1, .med = 0});
  return fib;
}

std::vector<Ipv4Address> addrs(std::initializer_list<const char*> list) {
  std::vector<Ipv4Address> out;
  for (const char* a : list) out.push_back(Ipv4Address::parse(a));
  return out;
}

TEST(StrategyNameTest, AllKindsNamed) {
  EXPECT_EQ(strategy_name(StrategyKind::kBestPort), "best-port");
  EXPECT_EQ(strategy_name(StrategyKind::kControlledFlooding),
            "controlled-flooding");
  EXPECT_EQ(strategy_name(StrategyKind::kHistoryUnion), "history-union");
}

TEST(EligiblePortsTest, CollectsPortsOfRoutedAddresses) {
  const Fib fib = make_fib();
  const FibOracle oracle(fib);
  const auto ports = eligible_ports(
      oracle, addrs({"1.0.0.1", "2.0.0.1", "9.9.9.9"}));
  EXPECT_EQ(ports, (std::set<routing::Port>{11, 22}));
}

TEST(EligiblePortsTest, EmptyForUnroutedSet) {
  const Fib fib = make_fib();
  const FibOracle oracle(fib);
  EXPECT_TRUE(eligible_ports(oracle, addrs({"9.9.9.9"})).empty());
  EXPECT_TRUE(eligible_ports(oracle, {}).empty());
}

TEST(BestEntryTest, PicksMostPreferredAcrossAddresses) {
  const Fib fib = make_fib();
  const FibOracle oracle(fib);
  const auto best = best_entry(
      oracle, addrs({"1.0.0.1", "2.0.0.1", "3.0.0.1"}));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->port, 22u);  // customer route wins
}

TEST(BestEntryTest, NulloptWhenNothingRouted) {
  const Fib fib = make_fib();
  const FibOracle oracle(fib);
  EXPECT_EQ(best_entry(oracle, addrs({"9.9.9.9"})), std::nullopt);
}

TEST(BestPortStrategyTest, FirstObservationNeverCounts) {
  const Fib fib = make_fib();
  const FibOracle oracle(fib);
  const auto strat = make_strategy(StrategyKind::kBestPort);
  EXPECT_FALSE(strat->observe(oracle, addrs({"1.0.0.1"})));
  EXPECT_EQ(strat->current_ports(), (std::set<routing::Port>{11}));
}

TEST(BestPortStrategyTest, UpdatesOnlyWhenBestPortChanges) {
  const Fib fib = make_fib();
  const FibOracle oracle(fib);
  const auto strat = make_strategy(StrategyKind::kBestPort);
  strat->observe(oracle, addrs({"2.0.0.1", "3.0.0.1"}));  // best = 22
  // Losing the provider replica does not move the best port.
  EXPECT_FALSE(strat->observe(oracle, addrs({"2.0.0.1"})));
  // Losing the customer replica does.
  EXPECT_TRUE(strat->observe(oracle, addrs({"3.0.0.1"})));
  EXPECT_EQ(strat->current_ports(), (std::set<routing::Port>{33}));
}

TEST(BestPortStrategyTest, AddressChurnWithinBestPrefixIsFree) {
  // The paper's key best-port observation: replica churn that keeps the
  // preferred location does not update the router.
  const Fib fib = make_fib();
  const FibOracle oracle(fib);
  const auto strat = make_strategy(StrategyKind::kBestPort);
  strat->observe(oracle, addrs({"2.0.0.1", "1.0.0.1"}));
  EXPECT_FALSE(strat->observe(oracle, addrs({"2.0.0.99", "1.0.0.7"})));
  EXPECT_FALSE(strat->observe(oracle, addrs({"2.0.55.1"})));
}

TEST(BestPortStrategyTest, TransitionToUnroutedCounts) {
  const Fib fib = make_fib();
  const FibOracle oracle(fib);
  const auto strat = make_strategy(StrategyKind::kBestPort);
  strat->observe(oracle, addrs({"1.0.0.1"}));
  EXPECT_TRUE(strat->observe(oracle, addrs({"9.9.9.9"})));
  EXPECT_TRUE(strat->current_ports().empty());
}

TEST(ControlledFloodingStrategyTest, UpdatesOnAnyEligibleSetChange) {
  const Fib fib = make_fib();
  const FibOracle oracle(fib);
  const auto strat = make_strategy(StrategyKind::kControlledFlooding);
  strat->observe(oracle, addrs({"1.0.0.1", "2.0.0.1"}));  // {11, 22}
  // Same ports, different addresses: no update.
  EXPECT_FALSE(strat->observe(oracle, addrs({"1.0.0.2", "2.0.0.9"})));
  // Extra port appears: update.
  EXPECT_TRUE(strat->observe(oracle, addrs({"1.0.0.2", "2.0.0.9", "3.0.0.1"})));
  EXPECT_EQ(strat->current_ports(), (std::set<routing::Port>{11, 22, 33}));
  // Port disappears: update.
  EXPECT_TRUE(strat->observe(oracle, addrs({"1.0.0.2"})));
}

TEST(ControlledFloodingStrategyTest, AtLeastAsCostlyAsBestPort) {
  // §3.3.3: controlled flooding's update cost is at least best-port's.
  const Fib fib = make_fib();
  const FibOracle oracle(fib);
  const auto flood = make_strategy(StrategyKind::kControlledFlooding);
  const auto best = make_strategy(StrategyKind::kBestPort);
  const std::vector<std::vector<Ipv4Address>> snapshots{
      addrs({"1.0.0.1", "2.0.0.1"}), addrs({"1.0.0.1", "2.0.0.1", "3.0.0.1"}),
      addrs({"2.0.0.1", "3.0.0.1"}), addrs({"3.0.0.1"}),
      addrs({"1.0.0.1", "3.0.0.1"}), addrs({"2.0.0.5"}),
  };
  int flood_updates = 0, best_updates = 0;
  for (const auto& snapshot : snapshots) {
    if (flood->observe(oracle, snapshot)) ++flood_updates;
    if (best->observe(oracle, snapshot)) ++best_updates;
  }
  EXPECT_GE(flood_updates, best_updates);
}

TEST(HistoryUnionStrategyTest, RevisitsAreFree) {
  // §3.3.3: once a location has been seen, flitting back and forth across
  // known locations never updates the router.
  const Fib fib = make_fib();
  const FibOracle oracle(fib);
  const auto strat = make_strategy(StrategyKind::kHistoryUnion);
  strat->observe(oracle, addrs({"1.0.0.1"}));
  EXPECT_TRUE(strat->observe(oracle, addrs({"2.0.0.1"})));   // new port
  EXPECT_FALSE(strat->observe(oracle, addrs({"1.0.0.1"})));  // revisit
  EXPECT_FALSE(strat->observe(oracle, addrs({"2.0.0.1"})));  // revisit
  // Port set is the union of history.
  EXPECT_EQ(strat->current_ports(), (std::set<routing::Port>{11, 22}));
}

TEST(HistoryUnionStrategyTest, OnlyTrulyNewLocationsCost) {
  const Fib fib = make_fib();
  const FibOracle oracle(fib);
  const auto strat = make_strategy(StrategyKind::kHistoryUnion);
  strat->observe(oracle, addrs({"1.0.0.1"}));
  // New address, same prefix/port: union grows but ports unchanged.
  EXPECT_FALSE(strat->observe(oracle, addrs({"1.0.0.2"})));
  EXPECT_TRUE(strat->observe(oracle, addrs({"3.0.0.1"})));
}

TEST(StrategyResetTest, ResetForgetsEverything) {
  const Fib fib = make_fib();
  const FibOracle oracle(fib);
  for (const auto kind :
       {StrategyKind::kBestPort, StrategyKind::kControlledFlooding,
        StrategyKind::kHistoryUnion}) {
    const auto strat = make_strategy(kind);
    strat->observe(oracle, addrs({"1.0.0.1"}));
    strat->reset();
    EXPECT_TRUE(strat->current_ports().empty());
    // Post-reset first observation initializes again without counting.
    EXPECT_FALSE(strat->observe(oracle, addrs({"3.0.0.1"})));
  }
}

TEST(StrategyFactoryTest, KindsRoundTrip) {
  for (const auto kind :
       {StrategyKind::kBestPort, StrategyKind::kControlledFlooding,
        StrategyKind::kHistoryUnion}) {
    EXPECT_EQ(make_strategy(kind)->kind(), kind);
  }
}

}  // namespace
}  // namespace lina::strategy
