// Churn property tests: the trie agrees with a reference map under long
// interleaved insert/overwrite/erase sequences, and compression stays
// consistent after erasures.

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "lina/net/ip_trie.hpp"
#include "lina/stats/rng.hpp"

namespace lina::net {
namespace {

Prefix random_prefix(stats::Rng& rng) {
  const auto addr =
      Ipv4Address(static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffff)));
  // Bias toward a small universe so operations collide.
  const auto length = static_cast<unsigned>(8 + rng.index(9));
  return Prefix(Ipv4Address(addr.value() & 0xff000000u), length);
}

class IpTrieChurnTest : public ::testing::TestWithParam<int> {};

TEST_P(IpTrieChurnTest, AgreesWithReferenceUnderChurn) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) + 77);
  IpTrie<int> trie;
  std::map<Prefix, int> reference;

  for (int step = 0; step < 3000; ++step) {
    const double op = rng.uniform();
    if (op < 0.55 || reference.empty()) {
      const Prefix p = random_prefix(rng);
      const int value = static_cast<int>(rng.index(100));
      trie.insert(p, value);
      reference[p] = value;
    } else if (op < 0.85) {
      // Erase a random existing prefix.
      auto it = reference.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng.index(reference.size())));
      EXPECT_TRUE(trie.erase(it->first));
      reference.erase(it);
    } else {
      // Erase a likely-absent prefix: results must agree.
      const Prefix p = random_prefix(rng);
      EXPECT_EQ(trie.erase(p), reference.erase(p) > 0);
    }
    ASSERT_EQ(trie.size(), reference.size());
  }

  // Final: LPM agrees with brute force on random queries.
  for (int q = 0; q < 400; ++q) {
    const auto addr = Ipv4Address(
        static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffff)));
    std::optional<std::pair<Prefix, int>> expected;
    for (const auto& [prefix, value] : reference) {
      if (prefix.contains(addr) &&
          (!expected.has_value() ||
           prefix.length() > expected->first.length())) {
        expected = {prefix, value};
      }
    }
    EXPECT_EQ(trie.lookup(addr), expected);
  }

  // Compression invariant: 1 <= compressed <= size.
  if (!reference.empty()) {
    const std::size_t compressed = trie.lpm_compressed_size();
    EXPECT_GE(compressed, 1u);
    EXPECT_LE(compressed, trie.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IpTrieChurnTest, ::testing::Range(0, 4));

TEST(IpTrieChurnTest, EraseThenReinsertRestoresLookup) {
  IpTrie<int> trie;
  const Prefix outer = Prefix::parse("10.0.0.0/8");
  const Prefix inner = Prefix::parse("10.1.0.0/16");
  trie.insert(outer, 1);
  trie.insert(inner, 2);
  trie.erase(inner);
  EXPECT_EQ(trie.lookup(Ipv4Address::parse("10.1.2.3"))->second, 1);
  trie.insert(inner, 3);
  EXPECT_EQ(trie.lookup(Ipv4Address::parse("10.1.2.3"))->second, 3);
  EXPECT_EQ(trie.size(), 2u);
}

}  // namespace
}  // namespace lina::net
