#include "lina/net/ipv4.hpp"

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>

namespace lina::net {
namespace {

TEST(Ipv4AddressTest, ParseRoundTrip) {
  for (const std::string text :
       {"0.0.0.0", "255.255.255.255", "192.0.2.1", "10.1.2.3", "1.0.0.1"}) {
    EXPECT_EQ(Ipv4Address::parse(text).to_string(), text);
  }
}

TEST(Ipv4AddressTest, ParseValue) {
  EXPECT_EQ(Ipv4Address::parse("1.2.3.4").value(), 0x01020304u);
  EXPECT_EQ(Ipv4Address::parse("0.0.0.1").value(), 1u);
}

TEST(Ipv4AddressTest, OctetConstructor) {
  EXPECT_EQ(Ipv4Address(192, 0, 2, 1), Ipv4Address::parse("192.0.2.1"));
}

class Ipv4ParseErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(Ipv4ParseErrorTest, Rejects) {
  EXPECT_THROW((void)Ipv4Address::parse(GetParam()), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Malformed, Ipv4ParseErrorTest,
                         ::testing::Values("", "1.2.3", "1.2.3.4.5", "256.0.0.1",
                                           "1.2.3.400", "a.b.c.d", "1..2.3",
                                           "1.2.3.4 ", " 1.2.3.4", "1,2,3,4",
                                           "999.1.1.1", "1.2.3.-4"));

TEST(Ipv4AddressTest, BitExtraction) {
  const Ipv4Address addr(0x80000001u);  // 128.0.0.1
  EXPECT_TRUE(addr.bit(0));
  EXPECT_FALSE(addr.bit(1));
  EXPECT_FALSE(addr.bit(30));
  EXPECT_TRUE(addr.bit(31));
}

TEST(Ipv4AddressTest, Ordering) {
  EXPECT_LT(Ipv4Address::parse("1.0.0.0"), Ipv4Address::parse("2.0.0.0"));
  EXPECT_EQ(Ipv4Address::parse("9.9.9.9"), Ipv4Address::parse("9.9.9.9"));
}

TEST(Ipv4AddressTest, Hashable) {
  std::unordered_set<Ipv4Address> set;
  set.insert(Ipv4Address::parse("1.2.3.4"));
  set.insert(Ipv4Address::parse("1.2.3.4"));
  set.insert(Ipv4Address::parse("4.3.2.1"));
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace lina::net
