#include <gtest/gtest.h>

#include <unordered_set>

#include "lina/net/ipv4.hpp"

namespace lina::net {
namespace {

TEST(PrefixTest, ParseAndFormat) {
  const Prefix p = Prefix::parse("192.168.0.0/16");
  EXPECT_EQ(p.length(), 16u);
  EXPECT_EQ(p.to_string(), "192.168.0.0/16");
}

TEST(PrefixTest, HostBitsMasked) {
  const Prefix p(Ipv4Address::parse("192.168.77.12"), 16);
  EXPECT_EQ(p.network(), Ipv4Address::parse("192.168.0.0"));
  EXPECT_EQ(p, Prefix::parse("192.168.0.0/16"));
}

TEST(PrefixTest, ZeroLengthCoversEverything) {
  const Prefix def(Ipv4Address(0), 0);
  EXPECT_TRUE(def.contains(Ipv4Address::parse("0.0.0.0")));
  EXPECT_TRUE(def.contains(Ipv4Address::parse("255.255.255.255")));
}

TEST(PrefixTest, HostPrefix) {
  const Prefix host = Prefix::host(Ipv4Address::parse("1.2.3.4"));
  EXPECT_EQ(host.length(), 32u);
  EXPECT_TRUE(host.contains(Ipv4Address::parse("1.2.3.4")));
  EXPECT_FALSE(host.contains(Ipv4Address::parse("1.2.3.5")));
}

TEST(PrefixTest, ContainsAddress) {
  const Prefix p = Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(p.contains(Ipv4Address::parse("10.255.0.1")));
  EXPECT_FALSE(p.contains(Ipv4Address::parse("11.0.0.0")));
}

TEST(PrefixTest, ContainsPrefixNesting) {
  const Prefix outer = Prefix::parse("10.0.0.0/8");
  const Prefix inner = Prefix::parse("10.1.0.0/16");
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(outer));
}

TEST(PrefixTest, DisjointPrefixes) {
  const Prefix a = Prefix::parse("10.0.0.0/8");
  const Prefix b = Prefix::parse("11.0.0.0/8");
  EXPECT_FALSE(a.contains(b));
  EXPECT_FALSE(b.contains(a));
}

TEST(PrefixTest, Halves) {
  const Prefix p = Prefix::parse("10.0.0.0/8");
  EXPECT_EQ(p.left_half(), Prefix::parse("10.0.0.0/9"));
  EXPECT_EQ(p.right_half(), Prefix::parse("10.128.0.0/9"));
  EXPECT_TRUE(p.contains(p.left_half()));
  EXPECT_TRUE(p.contains(p.right_half()));
}

TEST(PrefixTest, HalvesOfHostThrow) {
  const Prefix host = Prefix::host(Ipv4Address(1));
  EXPECT_THROW((void)host.left_half(), std::logic_error);
  EXPECT_THROW((void)host.right_half(), std::logic_error);
}

TEST(PrefixTest, RejectsBadLength) {
  EXPECT_THROW(Prefix(Ipv4Address(0), 33), std::invalid_argument);
  EXPECT_THROW((void)Prefix::parse("1.2.3.4/33"), std::invalid_argument);
  EXPECT_THROW((void)Prefix::parse("1.2.3.4"), std::invalid_argument);
  EXPECT_THROW((void)Prefix::parse("1.2.3.4/x"), std::invalid_argument);
  EXPECT_THROW((void)Prefix::parse("1.2.3.4/8y"), std::invalid_argument);
}

TEST(PrefixTest, MaskValues) {
  EXPECT_EQ(prefix_mask(0), 0u);
  EXPECT_EQ(prefix_mask(8), 0xff000000u);
  EXPECT_EQ(prefix_mask(32), 0xffffffffu);
}

TEST(PrefixTest, Hashable) {
  std::unordered_set<Prefix> set;
  set.insert(Prefix::parse("10.0.0.0/8"));
  set.insert(Prefix::parse("10.0.0.0/8"));
  set.insert(Prefix::parse("10.0.0.0/9"));
  EXPECT_EQ(set.size(), 2u);
}

// Property sweep: every address drawn inside a prefix is contained; the
// /32 of that address is contained; siblings are disjoint.
class PrefixPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PrefixPropertyTest, ContainmentInvariants) {
  const unsigned length = GetParam();
  const Prefix p(Ipv4Address::parse("203.0.113.77"), length);
  // The masked network address is always contained.
  EXPECT_TRUE(p.contains(p.network()));
  if (length < 32) {
    const Prefix left = p.left_half();
    const Prefix right = p.right_half();
    EXPECT_FALSE(left.contains(right));
    EXPECT_FALSE(right.contains(left));
    EXPECT_TRUE(p.contains(left));
    EXPECT_TRUE(p.contains(right));
  }
}

INSTANTIATE_TEST_SUITE_P(AllLengths, PrefixPropertyTest,
                         ::testing::Values(0u, 1u, 7u, 8u, 15u, 16u, 23u, 24u,
                                           31u, 32u));

}  // namespace
}  // namespace lina::net
