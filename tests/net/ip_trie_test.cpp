#include "lina/net/ip_trie.hpp"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "lina/stats/rng.hpp"

namespace lina::net {
namespace {

TEST(IpTrieTest, EmptyLookup) {
  IpTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.lookup(Ipv4Address::parse("1.2.3.4")), std::nullopt);
}

TEST(IpTrieTest, InsertAndExact) {
  IpTrie<int> trie;
  EXPECT_TRUE(trie.insert(Prefix::parse("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.insert(Prefix::parse("10.0.0.0/8"), 2));  // overwrite
  EXPECT_EQ(trie.size(), 1u);
  ASSERT_NE(trie.exact(Prefix::parse("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.exact(Prefix::parse("10.0.0.0/8")), 2);
  EXPECT_EQ(trie.exact(Prefix::parse("10.0.0.0/9")), nullptr);
}

TEST(IpTrieTest, LongestPrefixMatchPrefersSpecific) {
  IpTrie<int> trie;
  trie.insert(Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(Prefix::parse("10.1.0.0/16"), 16);
  trie.insert(Prefix::parse("10.1.2.0/24"), 24);

  const auto hit24 = trie.lookup(Ipv4Address::parse("10.1.2.3"));
  ASSERT_TRUE(hit24.has_value());
  EXPECT_EQ(hit24->second, 24);
  EXPECT_EQ(hit24->first, Prefix::parse("10.1.2.0/24"));

  const auto hit16 = trie.lookup(Ipv4Address::parse("10.1.3.1"));
  ASSERT_TRUE(hit16.has_value());
  EXPECT_EQ(hit16->second, 16);

  const auto hit8 = trie.lookup(Ipv4Address::parse("10.200.0.1"));
  ASSERT_TRUE(hit8.has_value());
  EXPECT_EQ(hit8->second, 8);

  EXPECT_EQ(trie.lookup(Ipv4Address::parse("11.0.0.0")), std::nullopt);
}

TEST(IpTrieTest, PaperDisplacementExample) {
  // Figure 2 left: 22.33.44.0/24 -> port 5, 22.33.0.0/16 -> port 3. An
  // endpoint at 22.33.44.55 moving to 22.33.88.55 is displaced (ports 5 vs
  // 3); inserting a /32 exception restores correctness.
  IpTrie<int> fib;
  fib.insert(Prefix::parse("22.33.44.0/24"), 5);
  fib.insert(Prefix::parse("22.33.0.0/16"), 3);
  EXPECT_EQ(fib.lookup(Ipv4Address::parse("22.33.44.55"))->second, 5);
  EXPECT_EQ(fib.lookup(Ipv4Address::parse("22.33.88.55"))->second, 3);

  fib.insert(Prefix::host(Ipv4Address::parse("22.33.44.55")), 3);
  EXPECT_EQ(fib.lookup(Ipv4Address::parse("22.33.44.55"))->second, 3);
  EXPECT_EQ(fib.lookup(Ipv4Address::parse("22.33.44.56"))->second, 5);
}

TEST(IpTrieTest, DefaultRouteMatchesEverything) {
  IpTrie<int> trie;
  trie.insert(Prefix(Ipv4Address(0), 0), 99);
  EXPECT_EQ(trie.lookup(Ipv4Address::parse("255.255.255.255"))->second, 99);
  EXPECT_EQ(trie.lookup(Ipv4Address::parse("0.0.0.0"))->second, 99);
}

TEST(IpTrieTest, EraseRemovesEntryKeepsDescendants) {
  IpTrie<int> trie;
  trie.insert(Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(Prefix::parse("10.1.0.0/16"), 16);
  EXPECT_TRUE(trie.erase(Prefix::parse("10.0.0.0/8")));
  EXPECT_FALSE(trie.erase(Prefix::parse("10.0.0.0/8")));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.lookup(Ipv4Address::parse("10.200.0.1")), std::nullopt);
  EXPECT_EQ(trie.lookup(Ipv4Address::parse("10.1.0.1"))->second, 16);
}

TEST(IpTrieTest, VisitEnumeratesAll) {
  IpTrie<int> trie;
  trie.insert(Prefix::parse("0.0.0.0/0"), 0);
  trie.insert(Prefix::parse("128.0.0.0/1"), 1);
  trie.insert(Prefix::parse("10.0.0.0/8"), 2);
  trie.insert(Prefix::host(Ipv4Address::parse("1.1.1.1")), 3);
  std::map<Prefix, int> seen;
  trie.visit([&seen](const Prefix& p, const int& v) { seen[p] = v; });
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[Prefix::parse("10.0.0.0/8")], 2);
  EXPECT_EQ(seen[Prefix::host(Ipv4Address::parse("1.1.1.1"))], 3);
}

TEST(IpTrieTest, LpmCompressionSubsumesEqualChild) {
  // Figure 3 analogue on IP tables: a child entry equal to its ancestor is
  // redundant under longest-prefix matching.
  IpTrie<int> trie;
  trie.insert(Prefix::parse("10.0.0.0/8"), 2);
  trie.insert(Prefix::parse("10.1.0.0/16"), 2);   // subsumed
  trie.insert(Prefix::parse("10.2.0.0/16"), 5);   // kept
  trie.insert(Prefix::parse("10.2.3.0/24"), 2);   // kept (ancestor is 5)
  EXPECT_EQ(trie.size(), 4u);
  EXPECT_EQ(trie.lpm_compressed_size(), 3u);
}

TEST(IpTrieTest, LpmCompressionDeepChain) {
  IpTrie<int> trie;
  trie.insert(Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(Prefix::parse("10.0.0.0/16"), 1);
  trie.insert(Prefix::parse("10.0.0.0/24"), 1);
  trie.insert(Prefix::parse("10.0.0.0/32"), 1);
  EXPECT_EQ(trie.lpm_compressed_size(), 1u);
  trie.insert(Prefix::parse("10.0.0.0/20"), 9);
  // Chain now 1,1,(9),1,1: the /24 and /32 under the /20 differ from it.
  // /8 kept, /16 subsumed, /20 kept, /24 kept (!= 9), /32 subsumed by /24.
  EXPECT_EQ(trie.lpm_compressed_size(), 3u);
}

TEST(IpTrieTest, ClearResets) {
  IpTrie<int> trie;
  trie.insert(Prefix::parse("10.0.0.0/8"), 1);
  trie.clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.lookup(Ipv4Address::parse("10.0.0.1")), std::nullopt);
}

TEST(IpTrieTest, MoveSemantics) {
  IpTrie<int> trie;
  trie.insert(Prefix::parse("10.0.0.0/8"), 7);
  IpTrie<int> moved = std::move(trie);
  EXPECT_EQ(moved.lookup(Ipv4Address::parse("10.0.0.1"))->second, 7);
}

// Property test: the trie agrees with a brute-force longest-prefix scan on
// random tables, across densities.
class IpTriePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(IpTriePropertyTest, AgreesWithBruteForce) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()));
  IpTrie<int> trie;
  std::map<Prefix, int> reference;
  const int entries = 50 + GetParam() * 40;
  for (int i = 0; i < entries; ++i) {
    const auto addr =
        Ipv4Address(static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffff)));
    const auto length = static_cast<unsigned>(rng.uniform_int(0, 32));
    const Prefix prefix(addr, length);
    trie.insert(prefix, i);
    reference[prefix] = i;
  }
  EXPECT_EQ(trie.size(), reference.size());

  for (int q = 0; q < 500; ++q) {
    const auto addr =
        Ipv4Address(static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffff)));
    std::optional<std::pair<Prefix, int>> expected;
    for (const auto& [prefix, value] : reference) {
      if (prefix.contains(addr) &&
          (!expected.has_value() ||
           prefix.length() > expected->first.length())) {
        expected = {prefix, value};
      }
    }
    const auto actual = trie.lookup(addr);
    ASSERT_EQ(actual.has_value(), expected.has_value());
    if (actual.has_value()) {
      EXPECT_EQ(actual->first, expected->first);
      EXPECT_EQ(actual->second, expected->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTables, IpTriePropertyTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace lina::net
