// Integration tests exercising the full pipeline: synthetic Internet ->
// workload generation -> evaluation, including the paper's sensitivity
// analyses (§6.2) that cut across modules.

#include <gtest/gtest.h>

#include <algorithm>

#include "../support/fixtures.hpp"
#include "lina/core/lina.hpp"
#include "lina/stats/correlation.hpp"

namespace lina {
namespace {

using lina::testing::shared_content_catalog;
using lina::testing::shared_device_traces;
using lina::testing::shared_internet;

TEST(EndToEndTest, HeadlineFinding1DeviceUpdateCostHigh) {
  // Finding 1: with pure name-based routing, some routers are impacted by
  // a double-digit percentage of device mobility events.
  const core::DeviceUpdateCostEvaluator evaluator(
      shared_internet().vantages());
  const auto stats = evaluator.evaluate(shared_device_traces());
  double max_rate = 0.0;
  for (const auto& s : stats) max_rate = std::max(max_rate, s.rate());
  EXPECT_GT(max_rate, 0.08);
}

TEST(EndToEndTest, HeadlineFinding3ContentUpdateCostLow) {
  // Finding 3: with best-port forwarding, popular-content mobility impacts
  // routers far less than device mobility, and the long tail of unpopular
  // content barely at all.
  const core::DeviceUpdateCostEvaluator device_eval(
      shared_internet().vantages());
  const core::ContentUpdateCostEvaluator content_eval(
      shared_internet().vantages());

  const auto device = device_eval.evaluate(shared_device_traces());
  const auto popular = content_eval.evaluate(
      shared_content_catalog().popular, strategy::StrategyKind::kBestPort);
  const auto unpopular = content_eval.evaluate(
      shared_content_catalog().unpopular, strategy::StrategyKind::kBestPort);

  const auto max_rate = [](const auto& stats) {
    double rate = 0.0;
    for (const auto& s : stats) rate = std::max(rate, s.rate());
    return rate;
  };
  EXPECT_GT(max_rate(device), max_rate(popular));
  EXPECT_GT(max_rate(popular), max_rate(unpopular));
  EXPECT_LT(max_rate(unpopular), 0.05);
}

TEST(EndToEndTest, RouterSetSensitivityRipe) {
  // §6.2 sensitivity (2): a RIPE-like second router set yields
  // qualitatively similar conclusions.
  const auto ripe =
      shared_internet().build_vantages(routing::ripe_vantage_specs());
  const core::DeviceUpdateCostEvaluator rv_eval(shared_internet().vantages());
  const core::DeviceUpdateCostEvaluator ripe_eval(ripe);
  const auto rv_stats = rv_eval.evaluate(shared_device_traces());
  const auto ripe_stats = ripe_eval.evaluate(shared_device_traces());

  const auto max_rate = [](const auto& stats) {
    double rate = 0.0;
    for (const auto& s : stats) rate = std::max(rate, s.rate());
    return rate;
  };
  // Same order of magnitude at the top of both sets.
  const double rv_max = max_rate(rv_stats);
  const double ripe_max = max_rate(ripe_stats);
  EXPECT_GT(ripe_max, rv_max / 6.0);
  EXPECT_LT(ripe_max, rv_max * 6.0);
}

TEST(EndToEndTest, WorkloadSensitivityCorrelation) {
  // §6.2 sensitivity (3): update rates under a second, independent workload
  // correlate strongly across routers (paper: 0.88 between NomadLog and
  // IMAP-derived mobility).
  mobility::DeviceWorkloadConfig alt_config;
  alt_config.user_count = 80;
  alt_config.days = 7;
  alt_config.seed = 987654;  // different population
  alt_config.median_daily_transitions = 4.5;  // different intensity
  const auto alt_traces =
      mobility::DeviceWorkloadGenerator(shared_internet(), alt_config)
          .generate();

  const core::DeviceUpdateCostEvaluator evaluator(
      shared_internet().vantages());
  const auto base_stats = evaluator.evaluate(shared_device_traces());
  const auto alt_stats = evaluator.evaluate(alt_traces);

  std::vector<double> base_rates, alt_rates;
  for (const auto& s : base_stats) base_rates.push_back(s.rate());
  for (const auto& s : alt_stats) alt_rates.push_back(s.rate());
  EXPECT_GT(stats::pearson_correlation(base_rates, alt_rates), 0.8);
}

TEST(EndToEndTest, MobilityIntensityPerturbationIsQualitativelyStable) {
  // §8: findings should not change qualitatively if the extent of mobility
  // is perturbed by large factors.
  const core::DeviceUpdateCostEvaluator evaluator(
      shared_internet().vantages());

  mobility::DeviceWorkloadConfig slow;
  slow.user_count = 60;
  slow.days = 5;
  slow.median_daily_transitions = 1.0;
  mobility::DeviceWorkloadConfig fast = slow;
  fast.median_daily_transitions = 12.0;

  const auto slow_stats = evaluator.evaluate(
      mobility::DeviceWorkloadGenerator(shared_internet(), slow).generate());
  const auto fast_stats = evaluator.evaluate(
      mobility::DeviceWorkloadGenerator(shared_internet(), fast).generate());

  std::vector<double> slow_rates, fast_rates;
  for (const auto& s : slow_stats) slow_rates.push_back(s.rate());
  for (const auto& s : fast_stats) fast_rates.push_back(s.rate());
  // Per-event rates stay correlated across routers even when the absolute
  // mobility volume changes by an order of magnitude.
  EXPECT_GT(stats::pearson_correlation(slow_rates, fast_rates), 0.7);
}

TEST(EndToEndTest, Table1AnalyticAgainstSimulation) {
  // The §5 pipeline end to end: closed forms vs Markov simulation on the
  // paper's four toy topologies.
  stats::Rng rng(31337);
  const std::size_t n = 63;
  const auto chain = topology::make_chain(n);
  const analytic::TradeoffAnalyzer analyzer(chain);
  const auto exact = analyzer.exact();
  const auto sim = analyzer.simulate(30000, rng);
  EXPECT_NEAR(exact.name_based_update_cost,
              analytic::chain_name_based_update_cost(n), 1e-9);
  EXPECT_NEAR(sim.name_based_update_cost, exact.name_based_update_cost,
              0.01);
}

TEST(EndToEndTest, ForwardingCorrectnessAfterMobility) {
  // The displacement methodology's premise: after an endpoint moves, a
  // router that updates (or whose LPM port already matched) still reaches
  // the endpoint. Verify on the synthetic Internet that every vantage has
  // a port for every address a device ever uses.
  for (const auto& trace : shared_device_traces()) {
    for (const auto& visit : trace.visits()) {
      for (const auto& vantage : shared_internet().vantages()) {
        EXPECT_TRUE(vantage.port_for(visit.address).has_value())
            << vantage.name();
      }
    }
  }
}

TEST(EndToEndTest, AggregateabilityStableAcrossCatalogScale) {
  // Aggregateability is a ratio; doubling the catalog should not change it
  // wildly at any router.
  mobility::ContentWorkloadConfig big;
  big.popular_domains = 120;
  big.unpopular_domains = 0;
  big.days = 2;
  const auto big_catalog =
      mobility::ContentWorkloadGenerator(shared_internet(), big).generate();

  const auto small_result = core::evaluate_aggregateability(
      shared_internet().vantages(), shared_content_catalog().popular);
  const auto big_result = core::evaluate_aggregateability(
      shared_internet().vantages(), big_catalog.popular);
  for (std::size_t i = 0; i < small_result.size(); ++i) {
    EXPECT_GT(big_result[i].ratio(), small_result[i].ratio() / 4.0);
    EXPECT_LT(big_result[i].ratio(), small_result[i].ratio() * 4.0);
  }
}

}  // namespace
}  // namespace lina
