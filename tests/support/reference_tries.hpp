#pragma once

// Reference (pre-optimisation) trie implementations, kept verbatim minus
// instrumentation: the uncompressed pointer-per-node binary IP trie and the
// std::map-per-node name trie the arena engines replaced. The `fib`
// differential suite replays identical operation streams against these and
// the production tries and asserts observable equality; the micro
// benchmarks report them as the "legacy" baseline.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "lina/names/content_name.hpp"
#include "lina/net/ipv4.hpp"

namespace lina::testref {

/// The original one-node-per-bit binary trie keyed by IP prefixes.
template <typename T>
class LegacyIpTrie {
 public:
  LegacyIpTrie() = default;

  LegacyIpTrie(const LegacyIpTrie&) = delete;
  LegacyIpTrie& operator=(const LegacyIpTrie&) = delete;
  LegacyIpTrie(LegacyIpTrie&&) noexcept = default;
  LegacyIpTrie& operator=(LegacyIpTrie&&) noexcept = default;

  bool insert(const net::Prefix& prefix, T value) {
    Node* node = descend_or_create(prefix);
    const bool created = !node->value.has_value();
    node->value = std::move(value);
    if (created) ++size_;
    return created;
  }

  [[nodiscard]] std::optional<std::pair<net::Prefix, T>> lookup(
      net::Ipv4Address addr) const {
    const Node* best = nullptr;
    net::Prefix best_prefix;
    const Node* node = root_.get();
    net::Prefix path(net::Ipv4Address(0), 0);
    unsigned depth = 0;
    while (node != nullptr) {
      if (node->value.has_value()) {
        best = node;
        best_prefix = path;
      }
      if (depth == 32) break;
      const bool bit = addr.bit(depth);
      path = net::Prefix(addr, depth + 1);
      node = bit ? node->one.get() : node->zero.get();
      ++depth;
    }
    if (best == nullptr) return std::nullopt;
    return std::make_pair(best_prefix, *best->value);
  }

  [[nodiscard]] const T* exact(const net::Prefix& prefix) const {
    const Node* node = descend(prefix);
    return (node != nullptr && node->value.has_value()) ? &*node->value
                                                        : nullptr;
  }

  bool erase(const net::Prefix& prefix) {
    Node* node = const_cast<Node*>(descend(prefix));
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void visit(
      const std::function<void(const net::Prefix&, const T&)>& fn) const {
    visit_node(root_.get(), net::Prefix(net::Ipv4Address(0), 0), fn);
  }

  [[nodiscard]] std::size_t lpm_compressed_size() const {
    return compressed_count(root_.get(), nullptr);
  }

  void clear() {
    root_ = std::make_unique<Node>();
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> zero;
    std::unique_ptr<Node> one;
  };

  const Node* descend(const net::Prefix& prefix) const {
    const Node* node = root_.get();
    for (unsigned depth = 0; depth < prefix.length() && node != nullptr;
         ++depth) {
      node = prefix.network().bit(depth) ? node->one.get() : node->zero.get();
    }
    return node;
  }

  Node* descend_or_create(const net::Prefix& prefix) {
    Node* node = root_.get();
    for (unsigned depth = 0; depth < prefix.length(); ++depth) {
      std::unique_ptr<Node>& child =
          prefix.network().bit(depth) ? node->one : node->zero;
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    return node;
  }

  static void visit_node(
      const Node* node, const net::Prefix& path,
      const std::function<void(const net::Prefix&, const T&)>& fn) {
    if (node == nullptr) return;
    if (node->value.has_value()) fn(path, *node->value);
    if (path.length() == 32) return;
    visit_node(node->zero.get(), path.left_half(), fn);
    visit_node(node->one.get(), path.right_half(), fn);
  }

  static std::size_t compressed_count(const Node* node, const T* inherited) {
    if (node == nullptr) return 0;
    std::size_t count = 0;
    const T* effective = inherited;
    if (node->value.has_value()) {
      if (inherited == nullptr || !(*inherited == *node->value)) ++count;
      effective = &*node->value;
    }
    return count + compressed_count(node->zero.get(), effective) +
           compressed_count(node->one.get(), effective);
  }

  std::unique_ptr<Node> root_ = std::make_unique<Node>();
  std::size_t size_ = 0;
};

/// The original std::map-per-node component trie over content names.
template <typename T>
class LegacyNameTrie {
 public:
  LegacyNameTrie() = default;

  LegacyNameTrie(const LegacyNameTrie&) = delete;
  LegacyNameTrie& operator=(const LegacyNameTrie&) = delete;
  LegacyNameTrie(LegacyNameTrie&&) noexcept = default;
  LegacyNameTrie& operator=(LegacyNameTrie&&) noexcept = default;

  bool insert(const names::ContentName& name, T value) {
    Node* node = &root_;
    for (const auto& component : name.components()) {
      auto& child = node->children[component];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    const bool created = !node->value.has_value();
    node->value = std::move(value);
    if (created) ++size_;
    return created;
  }

  [[nodiscard]] std::optional<std::pair<names::ContentName, T>> lookup(
      const names::ContentName& name) const {
    std::size_t best_depth = 0;
    const Node* best = match(name, best_depth);
    if (best == nullptr) return std::nullopt;
    std::vector<std::string> parts(
        name.components().begin(),
        name.components().begin() + static_cast<std::ptrdiff_t>(best_depth));
    return std::make_pair(names::ContentName(std::move(parts)), *best->value);
  }

  /// LPM payload only — the reference for NameTrie::lookup_value.
  [[nodiscard]] const T* lookup_value(const names::ContentName& name) const {
    std::size_t best_depth = 0;
    const Node* best = match(name, best_depth);
    return best == nullptr ? nullptr : &*best->value;
  }

  [[nodiscard]] const T* exact(const names::ContentName& name) const {
    const Node* node = descend(name);
    return (node != nullptr && node->value.has_value()) ? &*node->value
                                                        : nullptr;
  }

  bool erase(const names::ContentName& name) {
    Node* node = const_cast<Node*>(descend(name));
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void visit(const std::function<void(const names::ContentName&, const T&)>&
                 fn) const {
    std::vector<std::string> path;
    visit_node(&root_, path, fn);
  }

  [[nodiscard]] std::size_t lpm_compressed_size() const {
    return compressed_count(&root_, nullptr);
  }

  void clear() {
    root_ = Node{};
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<T> value;
    std::map<std::string, std::unique_ptr<Node>> children;
  };

  const Node* match(const names::ContentName& name,
                    std::size_t& best_depth) const {
    const Node* node = &root_;
    const Node* best = root_.value.has_value() ? &root_ : nullptr;
    std::size_t depth = 0;
    best_depth = 0;
    for (const auto& component : name.components()) {
      const auto it = node->children.find(component);
      if (it == node->children.end()) break;
      node = it->second.get();
      ++depth;
      if (node->value.has_value()) {
        best = node;
        best_depth = depth;
      }
    }
    return best;
  }

  const Node* descend(const names::ContentName& name) const {
    const Node* node = &root_;
    for (const auto& component : name.components()) {
      const auto it = node->children.find(component);
      if (it == node->children.end()) return nullptr;
      node = it->second.get();
    }
    return node;
  }

  static void visit_node(
      const Node* node, std::vector<std::string>& path,
      const std::function<void(const names::ContentName&, const T&)>& fn) {
    if (node->value.has_value()) fn(names::ContentName(path), *node->value);
    for (const auto& [component, child] : node->children) {
      path.push_back(component);
      visit_node(child.get(), path, fn);
      path.pop_back();
    }
  }

  static std::size_t compressed_count(const Node* node, const T* inherited) {
    std::size_t count = 0;
    const T* effective = inherited;
    if (node->value.has_value()) {
      if (inherited == nullptr || !(*inherited == *node->value)) ++count;
      effective = &*node->value;
    }
    for (const auto& [_, child] : node->children) {
      count += compressed_count(child.get(), effective);
    }
    return count;
  }

  Node root_;
  std::size_t size_ = 0;
};

}  // namespace lina::testref
