#pragma once

// Shared, lazily constructed test fixtures. Building a SyntheticInternet
// and workloads takes ~100 ms; tests within one binary share one instance.

#include "lina/mobility/content_workload.hpp"
#include "lina/mobility/device_workload.hpp"
#include "lina/routing/synthetic_internet.hpp"

namespace lina::testing {

inline const routing::SyntheticInternet& shared_internet() {
  static const routing::SyntheticInternet instance = [] {
    routing::SyntheticInternetConfig config;
    config.topology.tier1_count = 8;
    config.topology.tier2_count = 30;
    config.topology.stub_count = 250;
    return routing::SyntheticInternet(config);
  }();
  return instance;
}

inline const std::vector<mobility::DeviceTrace>& shared_device_traces() {
  static const std::vector<mobility::DeviceTrace> traces = [] {
    mobility::DeviceWorkloadConfig config;
    config.user_count = 80;
    config.days = 7;
    return mobility::DeviceWorkloadGenerator(shared_internet(), config)
        .generate();
  }();
  return traces;
}

inline const mobility::ContentCatalog& shared_content_catalog() {
  static const mobility::ContentCatalog catalog = [] {
    mobility::ContentWorkloadConfig config;
    config.popular_domains = 60;
    config.unpopular_domains = 60;
    config.days = 5;
    return mobility::ContentWorkloadGenerator(shared_internet(), config)
        .generate();
  }();
  return catalog;
}

}  // namespace lina::testing
