// Seeded corruption fuzzing for the trace store: a small shard is
// truncated at *every* byte offset and bombarded with random byte flips,
// and the reader stack (validate_shard, TraceReader, TraceCursor) must
// always either decode correctly or throw a named TraceFormatError —
// never crash, never return garbage silently. Runs under the sanitize
// preset via `ctest -L trace`, where any out-of-bounds decode would trip
// ASan/UBSan rather than luck its way through.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <random>
#include <vector>

#include "../support/fixtures.hpp"
#include "lina/trace/cursor.hpp"
#include "lina/trace/reader.hpp"
#include "lina/trace/streaming.hpp"
#include "lina/trace/writer.hpp"
#include "trace_test_util.hpp"

namespace lina::trace {
namespace {

using lina::testing::read_file;
using lina::testing::shared_device_traces;
using lina::testing::TempTraceDir;
using lina::testing::write_file;

/// A deliberately small shard (3 users) so exhaustive per-offset
/// truncation stays fast while still covering header, user-block,
/// event-section and footer bytes.
std::filesystem::path write_small_shard(const TempTraceDir& dir) {
  const auto& traces = shared_device_traces();
  constexpr std::uint32_t kUsers = 3;
  ShardMeta meta;
  meta.seed = 7;
  meta.shard_index = 0;
  meta.shard_count = 1;
  meta.first_user = traces.front().user_id();
  meta.user_count = kUsers;
  meta.day_count = static_cast<std::uint32_t>(traces.front().day_count());
  const auto path = dir.path() / shard_file_name(0);
  TraceWriter writer(path, meta);
  for (std::uint32_t i = 0; i < kUsers; ++i) writer.append(traces[i]);
  (void)writer.finish();
  return path;
}

/// Runs the full read stack over one (possibly corrupt) shard file.
/// Returns the number of decoded users+events on success; throws
/// TraceFormatError when the corruption is detected. Anything else —
/// another exception type, a crash, a sanitizer report — fails the test.
std::size_t drain_shard(const std::filesystem::path& dir,
                        const std::filesystem::path& path) {
  std::size_t decoded = 0;
  const ShardHeader header = validate_shard(path, Validate::kCrc);
  TraceReader reader(ShardInfo{path, header});
  while (reader.next().has_value()) ++decoded;
  const ShardSet set = ShardSet::discover(dir, Validate::kCrc);
  TraceCursor cursor(set, 4 * 1024);
  TraceEvent event;
  while (cursor.next(event)) ++decoded;
  return decoded;
}

TEST(TraceCorruptionFuzzTest, TruncationAtEveryOffsetIsDetected) {
  TempTraceDir dir("fuzz-truncate");
  const auto path = write_small_shard(dir);
  const std::vector<char> pristine = read_file(path);
  const std::size_t whole = drain_shard(dir.path(), path);
  ASSERT_GT(whole, 0u);

  for (std::size_t cut = 0; cut < pristine.size(); ++cut) {
    std::vector<char> bytes = pristine;
    bytes.resize(cut);
    write_file(path, bytes);
    EXPECT_THROW((void)drain_shard(dir.path(), path), TraceFormatError)
        << "truncation to " << cut << " of " << pristine.size()
        << " bytes must be detected";
  }
  write_file(path, pristine);
  EXPECT_EQ(drain_shard(dir.path(), path), whole);
}

TEST(TraceCorruptionFuzzTest, SeededByteFlipsNeverCrashTheReaders) {
  TempTraceDir dir("fuzz-flip");
  const auto path = write_small_shard(dir);
  const std::vector<char> pristine = read_file(path);
  const std::size_t whole = drain_shard(dir.path(), path);

  std::mt19937_64 rng(0x7ace5eedULL);
  std::uniform_int_distribution<std::size_t> pick_offset(
      0, pristine.size() - 1);
  std::uniform_int_distribution<int> pick_xor(1, 255);

  std::size_t detected = 0;
  constexpr int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<char> bytes = pristine;
    const std::size_t offset = pick_offset(rng);
    bytes[offset] = static_cast<char>(
        static_cast<unsigned char>(bytes[offset]) ^ pick_xor(rng));
    write_file(path, bytes);
    try {
      // A flip that survives validation must still decode cleanly (it
      // can only be a no-op under the CRC, i.e. the same bytes).
      EXPECT_EQ(drain_shard(dir.path(), path), whole);
    } catch (const TraceFormatError&) {
      ++detected;  // named rejection, as designed
    }
  }
  // Every byte of a shard is covered by the whole-file CRC, so
  // effectively all flips must have been caught by name.
  EXPECT_EQ(detected, static_cast<std::size_t>(kTrials));
  write_file(path, pristine);
}

}  // namespace
}  // namespace lina::trace
