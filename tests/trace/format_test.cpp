#include "lina/trace/format.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

namespace lina::trace {
namespace {

TEST(TraceFormatTest, ZigzagRoundTrip) {
  const std::int64_t cases[] = {0,
                                1,
                                -1,
                                63,
                                -64,
                                1'000'000,
                                -1'000'000,
                                std::numeric_limits<std::int64_t>::max(),
                                std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t v : cases) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v) << v;
  }
  // Small magnitudes stay small — the point of zigzag before varint.
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
}

TEST(TraceFormatTest, VarintRoundTrip) {
  std::vector<char> buffer;
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 (1ULL << 32) - 1,
                                 1ULL << 32,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : cases) put_varint(buffer, v);
  ByteCursor cursor(buffer.data(), buffer.size(), "varint-test");
  for (const std::uint64_t v : cases) EXPECT_EQ(cursor.varint(), v);
  EXPECT_TRUE(cursor.done());
}

TEST(TraceFormatTest, PrimitivesRoundTripBitExact) {
  std::vector<char> buffer;
  put_u8(buffer, 0xAB);
  put_u16(buffer, 0xBEEF);
  put_u32(buffer, 0xDEADBEEFu);
  put_u64(buffer, 0x0123456789ABCDEFULL);
  const double doubles[] = {0.0, -0.0, 1.0 / 3.0, 5e-324, 1e308, 24.125};
  for (const double d : doubles) put_f64(buffer, d);
  ByteCursor cursor(buffer.data(), buffer.size(), "primitive-test");
  EXPECT_EQ(cursor.u8(), 0xAB);
  EXPECT_EQ(cursor.u16(), 0xBEEF);
  EXPECT_EQ(cursor.u32(), 0xDEADBEEFu);
  EXPECT_EQ(cursor.u64(), 0x0123456789ABCDEFULL);
  for (const double d : doubles) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(cursor.f64()),
              std::bit_cast<std::uint64_t>(d));
  }
  EXPECT_TRUE(cursor.done());
}

TEST(TraceFormatTest, Crc32MatchesKnownVector) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(crc32(0, "123456789", 9), 0xCBF43926u);
  // Incremental == one-shot.
  const std::uint32_t partial = crc32(crc32(0, "1234", 4), "56789", 5);
  EXPECT_EQ(partial, 0xCBF43926u);
}

TEST(TraceFormatTest, ByteCursorOverrunThrowsWithContext) {
  const char data[2] = {0, 0};
  ByteCursor cursor(data, sizeof data, "overrun-test");
  (void)cursor.u16();
  try {
    (void)cursor.u32();
    FAIL() << "expected TraceFormatError";
  } catch (const TraceFormatError& error) {
    EXPECT_NE(std::string(error.what()).find("overrun-test"),
              std::string::npos);
  }
}

ShardHeader sample_header() {
  ShardHeader header;
  header.seed = 7;
  header.shard_index = 2;
  header.shard_count = 5;
  header.first_user = 256;
  header.user_count = 128;
  header.day_count = 30;
  header.visit_count = 999;
  header.event_count = 999;
  header.events_offset = kHeaderBytes + 17;
  return header;
}

TEST(TraceFormatTest, HeaderRoundTrip) {
  std::vector<char> buffer;
  encode_header(buffer, sample_header());
  ASSERT_EQ(buffer.size(), kHeaderBytes);
  buffer.resize(kHeaderBytes + 17 + kFooterBytes);  // room for the offset
  const ShardHeader decoded =
      decode_header(buffer.data(), buffer.size(), "header-test");
  const ShardHeader expected = sample_header();
  EXPECT_EQ(decoded.version, kFormatVersion);
  EXPECT_EQ(decoded.seed, expected.seed);
  EXPECT_EQ(decoded.shard_index, expected.shard_index);
  EXPECT_EQ(decoded.shard_count, expected.shard_count);
  EXPECT_EQ(decoded.first_user, expected.first_user);
  EXPECT_EQ(decoded.user_count, expected.user_count);
  EXPECT_EQ(decoded.day_count, expected.day_count);
  EXPECT_EQ(decoded.visit_count, expected.visit_count);
  EXPECT_EQ(decoded.event_count, expected.event_count);
  EXPECT_EQ(decoded.events_offset, expected.events_offset);
}

TEST(TraceFormatTest, HeaderRejectsBadMagicVersionEndianness) {
  std::vector<char> good;
  encode_header(good, sample_header());
  good.resize(kHeaderBytes + 17 + kFooterBytes);

  std::vector<char> bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_THROW(decode_header(bad_magic.data(), bad_magic.size(), "t"),
               TraceFormatError);

  std::vector<char> bad_version = good;
  bad_version[4] = 99;
  EXPECT_THROW(decode_header(bad_version.data(), bad_version.size(), "t"),
               TraceFormatError);

  // A byte-swapped endianness marker reads as 0xFF00.
  std::vector<char> swapped = good;
  std::swap(swapped[6], swapped[7]);
  EXPECT_THROW(decode_header(swapped.data(), swapped.size(), "t"),
               TraceFormatError);

  EXPECT_THROW(decode_header(good.data(), kHeaderBytes - 1, "t"),
               TraceFormatError);
}

TEST(TraceFormatTest, EventPrecedesIsHourThenUser) {
  TraceEvent a, b;
  a.hour = 1.0;
  b.hour = 2.0;
  EXPECT_TRUE(event_precedes(a, b));
  EXPECT_FALSE(event_precedes(b, a));
  b.hour = 1.0;
  a.user = 3;
  b.user = 4;
  EXPECT_TRUE(event_precedes(a, b));
  EXPECT_FALSE(event_precedes(b, b));  // strict
}

}  // namespace
}  // namespace lina::trace
