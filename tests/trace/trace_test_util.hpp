#pragma once

// Shared helpers for the lina::trace suite: unique scratch directories
// (removed on destruction) and byte-level file surgery for the
// corruption/truncation tests.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace lina::testing {

class TempTraceDir {
 public:
  explicit TempTraceDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("lina-trace-test-" + tag + "-" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempTraceDir() {
    std::error_code ignored;
    std::filesystem::remove_all(path_, ignored);
  }
  TempTraceDir(const TempTraceDir&) = delete;
  TempTraceDir& operator=(const TempTraceDir&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

inline std::vector<char> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

inline void write_file(const std::filesystem::path& path,
                       const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// XORs one byte of the file (default: deep inside the payload).
inline void flip_byte(const std::filesystem::path& path, std::size_t offset) {
  std::vector<char> bytes = read_file(path);
  bytes.at(offset) = static_cast<char>(bytes.at(offset) ^ 0x40);
  write_file(path, bytes);
}

/// Drops the last `n` bytes of the file.
inline void truncate_file(const std::filesystem::path& path, std::size_t n) {
  std::vector<char> bytes = read_file(path);
  bytes.resize(bytes.size() > n ? bytes.size() - n : 0);
  write_file(path, bytes);
}

}  // namespace lina::testing
