// Bit-identity of streamed replay: every evaluator fed from a shard set
// in bounded-memory batches must reproduce its in-memory counterpart
// exactly — same CDF samples, same integer tallies, same per-session
// statistics for all four architectures — at any batch size.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "../support/fixtures.hpp"
#include "lina/core/extent.hpp"
#include "lina/core/latency_model.hpp"
#include "lina/core/update_cost.hpp"
#include "lina/sim/session.hpp"
#include "lina/trace/replay.hpp"
#include "trace_test_util.hpp"

namespace lina::trace {
namespace {

using lina::testing::TempTraceDir;
using lina::testing::shared_device_traces;
using lina::testing::shared_internet;

/// Shards the shared 80-user population (16 users/shard -> 5 shards).
const ShardSet& shared_shards() {
  static TempTraceDir dir("streamed-replay");
  static const ShardSet set = [] {
    mobility::DeviceWorkloadConfig config;
    config.user_count = 80;
    config.days = 7;
    const mobility::DeviceWorkloadGenerator generator(shared_internet(),
                                                      config);
    StreamingWorkloadConfig stream_config;
    stream_config.users_per_shard = 16;
    return StreamingWorkload(generator, stream_config)
        .write_shards(dir.path());
  }();
  return set;
}

void expect_same_samples(const stats::EmpiricalCdf& a,
                         const stats::EmpiricalCdf& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  const auto& sa = a.sorted_samples();
  const auto& sb = b.sorted_samples();
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(sa[i]),
              std::bit_cast<std::uint64_t>(sb[i]))
        << what << " sample " << i;
  }
}

TEST(StreamedReplayTest, ExtentBitIdentical) {
  const auto resident = core::analyze_extent(shared_device_traces());
  // Deliberately awkward batch size: batches straddle shard boundaries.
  const auto streamed = analyze_extent_streamed(shared_shards(), 13);

  expect_same_samples(resident.ips_per_day, streamed.ips_per_day, "ips");
  expect_same_samples(resident.prefixes_per_day, streamed.prefixes_per_day,
                      "prefixes");
  expect_same_samples(resident.ases_per_day, streamed.ases_per_day, "ases");
  expect_same_samples(resident.ip_transitions_per_day,
                      streamed.ip_transitions_per_day, "ip transitions");
  expect_same_samples(resident.as_transitions_per_day,
                      streamed.as_transitions_per_day, "as transitions");
  expect_same_samples(resident.dominant_ip_share, streamed.dominant_ip_share,
                      "dominant ip");
  expect_same_samples(resident.dominant_as_share, streamed.dominant_as_share,
                      "dominant as");
}

TEST(StreamedReplayTest, IndirectionStretchBitIdentical) {
  const core::LatencyModel model(shared_internet());
  stats::Rng resident_rng(99, "stretch-test");
  stats::Rng streamed_rng(99, "stretch-test");

  const auto resident = core::evaluate_indirection_stretch(
      shared_device_traces(), model, 0.05, resident_rng);
  const auto streamed = evaluate_indirection_stretch_streamed(
      shared_shards(), model, 0.05, streamed_rng, 13);

  EXPECT_EQ(resident.pairs_total, streamed.pairs_total);
  EXPECT_EQ(resident.pairs_sampled, streamed.pairs_sampled);
  expect_same_samples(resident.delay_ms, streamed.delay_ms, "delay");
  expect_same_samples(resident.policy_hops, streamed.policy_hops,
                      "policy hops");
  expect_same_samples(resident.physical_hops, streamed.physical_hops,
                      "physical hops");
  expect_same_samples(resident.away_time_share, streamed.away_time_share,
                      "away share");
}

TEST(StreamedReplayTest, DeviceUpdateCostBitIdentical) {
  const core::DeviceUpdateCostEvaluator evaluator(
      shared_internet().vantages());
  const auto resident = evaluator.evaluate(shared_device_traces());
  const auto streamed =
      evaluate_device_update_cost_streamed(evaluator, shared_shards(), 13);

  ASSERT_EQ(resident.size(), streamed.size());
  for (std::size_t r = 0; r < resident.size(); ++r) {
    EXPECT_EQ(resident[r].router, streamed[r].router);
    EXPECT_EQ(resident[r].events, streamed[r].events);
    EXPECT_EQ(resident[r].updates, streamed[r].updates);
  }
}

TEST(StreamedReplayTest, SessionsBitIdenticalForAllArchitectures) {
  // A small population keeps four discrete-event sweeps fast.
  TempTraceDir dir("streamed-sessions");
  mobility::DeviceWorkloadConfig config;
  config.user_count = 12;
  config.days = 3;
  const mobility::DeviceWorkloadGenerator generator(shared_internet(),
                                                    config);
  StreamingWorkloadConfig stream_config;
  stream_config.users_per_shard = 5;  // 3 shards
  const ShardSet set =
      StreamingWorkload(generator, stream_config).write_shards(dir.path());

  const sim::ForwardingFabric fabric(shared_internet());
  sim::SessionConfig base;
  base.correspondent = shared_internet().edge_ases()[0];
  base.resolver_as = shared_internet().edge_ases()[1];
  base.resolver_replicas = {shared_internet().edge_ases()[1],
                            shared_internet().edge_ases()[2],
                            shared_internet().edge_ases()[3]};
  base.packet_interval_ms = 25.0;
  const double hours = 24.0;

  for (const sim::SimArchitecture architecture :
       {sim::SimArchitecture::kIndirection,
        sim::SimArchitecture::kNameResolution,
        sim::SimArchitecture::kReplicatedResolution,
        sim::SimArchitecture::kNameBased}) {
    // In-memory reference: one session per user in user order.
    std::vector<sim::SessionStats> resident;
    for (std::uint32_t u = 0; u < config.user_count; ++u) {
      sim::SessionConfig session = base;
      session.duration_ms = hours * 1000.0;
      session.schedule =
          session_schedule_from_trace(generator.generate_user(u), hours);
      resident.push_back(
          sim::simulate_session(fabric, architecture, session));
    }

    const std::vector<sim::SessionStats> streamed =
        simulate_sessions_streamed(fabric, architecture, base, hours, set,
                                   5);

    ASSERT_EQ(resident.size(), streamed.size());
    for (std::size_t u = 0; u < resident.size(); ++u) {
      EXPECT_EQ(resident[u].packets_sent, streamed[u].packets_sent);
      EXPECT_EQ(resident[u].packets_delivered,
                streamed[u].packets_delivered);
      EXPECT_EQ(resident[u].packets_lost, streamed[u].packets_lost);
      EXPECT_EQ(resident[u].control_messages, streamed[u].control_messages);
      expect_same_samples(resident[u].delivery_delay_ms,
                          streamed[u].delivery_delay_ms, "delivery delay");
      expect_same_samples(resident[u].stretch, streamed[u].stretch,
                          "stretch");
      expect_same_samples(resident[u].outage_ms, streamed[u].outage_ms,
                          "outage");
    }
  }
}

}  // namespace
}  // namespace lina::trace
