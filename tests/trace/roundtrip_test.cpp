// Round-trip and corruption-detection tests for TraceWriter/TraceReader:
// a written shard decodes to bit-identical DeviceTraces, and truncated or
// bit-flipped shards are rejected with clear errors instead of decoding
// into garbage statistics.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>

#include "../support/fixtures.hpp"
#include "lina/trace/reader.hpp"
#include "lina/trace/streaming.hpp"
#include "lina/trace/writer.hpp"
#include "trace_test_util.hpp"

namespace lina::trace {
namespace {

using lina::testing::TempTraceDir;
using lina::testing::shared_device_traces;

ShardMeta whole_population_meta() {
  const auto& traces = shared_device_traces();
  ShardMeta meta;
  meta.seed = 7;
  meta.shard_index = 0;
  meta.shard_count = 1;
  meta.first_user = 0;
  meta.user_count = static_cast<std::uint32_t>(traces.size());
  meta.day_count = static_cast<std::uint32_t>(traces.front().day_count());
  return meta;
}

std::filesystem::path write_population_shard(const TempTraceDir& dir) {
  const auto path = dir.path() / shard_file_name(0);
  TraceWriter writer(path, whole_population_meta());
  for (const auto& trace : shared_device_traces()) writer.append(trace);
  (void)writer.finish();
  return path;
}

void expect_bit_identical(const mobility::DeviceTrace& decoded,
                          const mobility::DeviceTrace& original) {
  EXPECT_EQ(decoded.user_id(), original.user_id());
  EXPECT_EQ(decoded.day_count(), original.day_count());
  ASSERT_EQ(decoded.visits().size(), original.visits().size());
  for (std::size_t i = 0; i < original.visits().size(); ++i) {
    const auto& d = decoded.visits()[i];
    const auto& o = original.visits()[i];
    // Bitwise double comparison: replay must be exact, not approximate.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(d.start_hour),
              std::bit_cast<std::uint64_t>(o.start_hour));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(d.duration_hours),
              std::bit_cast<std::uint64_t>(o.duration_hours));
    EXPECT_EQ(d.address, o.address);
    EXPECT_EQ(d.prefix, o.prefix);
    EXPECT_EQ(d.as, o.as);
    EXPECT_EQ(d.cellular, o.cellular);
  }
}

TEST(TraceRoundTripTest, WriterReaderRoundTripIsBitIdentical) {
  TempTraceDir dir("roundtrip");
  const auto path = write_population_shard(dir);

  TraceReader reader(ShardInfo{path, validate_shard(path)});
  for (const auto& original : shared_device_traces()) {
    const auto decoded = reader.next();
    ASSERT_TRUE(decoded.has_value());
    expect_bit_identical(*decoded, original);
  }
  EXPECT_FALSE(reader.next().has_value());
}

TEST(TraceRoundTripTest, HeaderCountsMatchContent) {
  TempTraceDir dir("counts");
  const auto path = write_population_shard(dir);
  const ShardHeader header = validate_shard(path);
  std::uint64_t visits = 0;
  for (const auto& trace : shared_device_traces()) {
    visits += trace.visits().size();
  }
  EXPECT_EQ(header.user_count, shared_device_traces().size());
  EXPECT_EQ(header.visit_count, visits);
  EXPECT_EQ(header.event_count, visits);  // one attachment per visit
}

TEST(TraceRoundTripTest, TruncatedShardRejected) {
  TempTraceDir dir("truncate");
  const auto path = write_population_shard(dir);
  lina::testing::truncate_file(path, 5);
  try {
    (void)validate_shard(path, Validate::kHeader);
    FAIL() << "expected TraceFormatError";
  } catch (const TraceFormatError& error) {
    EXPECT_NE(std::string(error.what()).find("truncated"),
              std::string::npos)
        << error.what();
  }
}

TEST(TraceRoundTripTest, CorruptPayloadRejectedByCrc) {
  TempTraceDir dir("corrupt");
  const auto path = write_population_shard(dir);
  const auto size = std::filesystem::file_size(path);
  lina::testing::flip_byte(path, size / 2);
  // The header is intact, so the cheap check passes...
  EXPECT_NO_THROW((void)validate_shard(path, Validate::kHeader));
  // ...and the CRC scan names the real problem.
  try {
    (void)validate_shard(path, Validate::kCrc);
    FAIL() << "expected TraceFormatError";
  } catch (const TraceFormatError& error) {
    EXPECT_NE(std::string(error.what()).find("CRC"), std::string::npos)
        << error.what();
  }
}

TEST(TraceRoundTripTest, CorruptHeaderRejected) {
  TempTraceDir dir("corrupt-header");
  const auto path = write_population_shard(dir);
  lina::testing::flip_byte(path, 1);  // inside the magic
  EXPECT_THROW((void)validate_shard(path, Validate::kHeader),
               TraceFormatError);
}

TEST(TraceRoundTripTest, WriterEnforcesUserOrderAndCounts) {
  TempTraceDir dir("order");
  const auto& traces = shared_device_traces();
  {
    TraceWriter writer(dir.path() / shard_file_name(0),
                       whole_population_meta());
    writer.append(traces[0]);
    EXPECT_THROW(writer.append(traces[2]), std::invalid_argument);  // gap
  }
  {
    TraceWriter writer(dir.path() / shard_file_name(1),
                       whole_population_meta());
    writer.append(traces[0]);
    EXPECT_THROW((void)writer.finish(), std::invalid_argument);  // short
  }
  // Abandoned writers must not leave partial files behind.
  EXPECT_FALSE(std::filesystem::exists(dir.path() / shard_file_name(0)));
  EXPECT_FALSE(std::filesystem::exists(dir.path() / shard_file_name(1)));
}

TEST(TraceRoundTripTest, ShardSetRejectsEmptyOrInconsistentDirs) {
  TempTraceDir dir("shardset");
  EXPECT_THROW((void)ShardSet::discover(dir.path()), TraceFormatError);

  // A set whose only shard claims shard_count == 2 is incomplete.
  ShardMeta meta = whole_population_meta();
  meta.shard_count = 2;
  {
    TraceWriter writer(dir.path() / shard_file_name(0), meta);
    for (const auto& trace : shared_device_traces()) writer.append(trace);
    (void)writer.finish();
  }
  EXPECT_THROW((void)ShardSet::discover(dir.path()), TraceFormatError);
}

TEST(TraceRoundTripTest, ShardSetDiscoversStreamedWorkload) {
  TempTraceDir dir("discover");
  mobility::DeviceWorkloadConfig config;
  config.user_count = 50;
  config.days = 5;
  const mobility::DeviceWorkloadGenerator generator(
      lina::testing::shared_internet(), config);
  StreamingWorkloadConfig stream_config;
  stream_config.users_per_shard = 16;  // 50 users -> 4 shards
  const ShardSet written =
      StreamingWorkload(generator, stream_config).write_shards(dir.path());
  EXPECT_EQ(written.shards().size(), 4u);
  EXPECT_EQ(written.user_count(), 50u);
  EXPECT_EQ(written.day_count(), 5u);
  EXPECT_EQ(written.seed(), config.seed);

  const ShardSet rediscovered = ShardSet::discover(dir.path());
  EXPECT_EQ(rediscovered.shards().size(), written.shards().size());
  EXPECT_EQ(rediscovered.visit_count(), written.visit_count());

  // Refuses to mix trace sets in one directory.
  EXPECT_THROW((void)StreamingWorkload(generator, stream_config)
                   .write_shards(dir.path()),
               TraceFormatError);
}

}  // namespace
}  // namespace lina::trace
