// TraceCursor tests: the k-way merge replays every attachment event of a
// multi-shard set in strict global (hour, user) order, independent of how
// the population was sharded, with a heap never deeper than the shard
// count.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "../support/fixtures.hpp"
#include "lina/trace/cursor.hpp"
#include "lina/trace/streaming.hpp"
#include "trace_test_util.hpp"

namespace lina::trace {
namespace {

using lina::testing::TempTraceDir;

mobility::DeviceWorkloadConfig small_config() {
  mobility::DeviceWorkloadConfig config;
  config.user_count = 60;
  config.days = 5;
  return config;
}

ShardSet write_set(const TempTraceDir& dir, std::size_t users_per_shard) {
  const mobility::DeviceWorkloadGenerator generator(
      lina::testing::shared_internet(), small_config());
  StreamingWorkloadConfig config;
  config.users_per_shard = users_per_shard;
  return StreamingWorkload(generator, config).write_shards(dir.path());
}

std::vector<TraceEvent> replay_all(const ShardSet& set) {
  TraceCursor cursor(set);
  std::vector<TraceEvent> events;
  TraceEvent event;
  while (cursor.next(event)) events.push_back(event);
  return events;
}

TEST(TraceCursorTest, GlobalTimeOrderAcrossShards) {
  TempTraceDir dir("cursor-order");
  const ShardSet set = write_set(dir, 16);  // 60 users -> 4 shards
  ASSERT_GE(set.shards().size(), 3u);

  const std::vector<TraceEvent> events = replay_all(set);
  EXPECT_EQ(events.size(), set.event_count());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_TRUE(event_precedes(events[i - 1], events[i]))
        << "order violation at event " << i;
  }
}

TEST(TraceCursorTest, EventsMatchVisitStarts) {
  TempTraceDir dir("cursor-content");
  const ShardSet set = write_set(dir, 16);

  // Rebuild the expected stream straight from the generator.
  const mobility::DeviceWorkloadGenerator generator(
      lina::testing::shared_internet(), small_config());
  std::vector<TraceEvent> expected;
  for (std::uint32_t u = 0; u < small_config().user_count; ++u) {
    const mobility::DeviceTrace trace = generator.generate_user(u);
    bool first = true;
    for (const mobility::DeviceVisit& visit : trace.visits()) {
      TraceEvent event;
      event.hour = visit.start_hour;
      event.user = u;
      event.address = visit.address;
      event.prefix = visit.prefix;
      event.as = visit.as;
      event.cellular = visit.cellular;
      event.initial = first;
      expected.push_back(event);
      first = false;
    }
  }
  std::sort(expected.begin(), expected.end(), event_precedes);

  const std::vector<TraceEvent> replayed = replay_all(set);
  ASSERT_EQ(replayed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(replayed[i], expected[i]) << "at event " << i;
  }
}

TEST(TraceCursorTest, MergedStreamIndependentOfSharding) {
  TempTraceDir coarse_dir("cursor-coarse");
  TempTraceDir fine_dir("cursor-fine");
  const ShardSet coarse = write_set(coarse_dir, 30);  // 2 shards
  const ShardSet fine = write_set(fine_dir, 7);       // 9 shards
  ASSERT_NE(coarse.shards().size(), fine.shards().size());

  const std::vector<TraceEvent> a = replay_all(coarse);
  const std::vector<TraceEvent> b = replay_all(fine);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "at event " << i;
  }
}

TEST(TraceCursorTest, HeapDepthBoundedByShardCount) {
  TempTraceDir dir("cursor-depth");
  const ShardSet set = write_set(dir, 7);
  TraceCursor cursor(set);
  EXPECT_LE(cursor.heap_depth(), set.shards().size());
  TraceEvent event;
  std::size_t max_depth = 0;
  while (cursor.next(event)) {
    max_depth = std::max(max_depth, cursor.heap_depth());
  }
  EXPECT_LE(max_depth, set.shards().size());
  EXPECT_EQ(cursor.heap_depth(), 0u);  // fully drained
  EXPECT_EQ(cursor.events_replayed(), set.event_count());
}

TEST(TraceCursorTest, DetectsOutOfOrderShard) {
  TempTraceDir dir("cursor-bad");
  const ShardSet set = write_set(dir, 16);
  // Swap two event records deep inside one shard's event section. Records
  // vary in size, so instead corrupt the sort key: flip a high byte of an
  // hour field — the CRC would catch it, but the cursor is constructed
  // from header-validated infos only, so the order check must fire.
  const ShardInfo& victim = set.shards()[1];
  const std::uint64_t offset = victim.header.events_offset;
  lina::testing::flip_byte(victim.path, offset + 6);  // hour's high bytes
  const ShardSet reloaded =
      ShardSet::discover(dir.path(), Validate::kHeader);
  TraceCursor cursor(reloaded);
  TraceEvent event;
  EXPECT_THROW(
      {
        while (cursor.next(event)) {
        }
      },
      TraceFormatError);
}

}  // namespace
}  // namespace lina::trace
