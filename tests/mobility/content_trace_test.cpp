#include "lina/mobility/content_trace.hpp"

#include <gtest/gtest.h>

namespace lina::mobility {
namespace {

using net::Ipv4Address;

std::vector<Ipv4Address> addrs(std::initializer_list<const char*> list) {
  std::vector<Ipv4Address> out;
  for (const char* a : list) out.push_back(Ipv4Address::parse(a));
  return out;
}

ContentTrace make_trace() {
  return ContentTrace(names::ContentName::from_dns("a.example.com"),
                      /*popular=*/true, /*cdn_backed=*/false,
                      /*day_count=*/2);
}

TEST(ContentTraceTest, FirstSnapshotMustBeAtHourZero) {
  ContentTrace trace = make_trace();
  EXPECT_THROW(trace.observe(5.0, addrs({"1.0.0.1"})), std::invalid_argument);
  trace.observe(0.0, addrs({"1.0.0.1"}));
  EXPECT_EQ(trace.snapshots().size(), 1u);
}

TEST(ContentTraceTest, UnchangedSetIsNoEvent) {
  ContentTrace trace = make_trace();
  trace.observe(0.0, addrs({"1.0.0.1", "2.0.0.1"}));
  trace.observe(1.0, addrs({"2.0.0.1", "1.0.0.1"}));  // same set, reordered
  trace.observe(2.0, addrs({"1.0.0.1", "2.0.0.1", "1.0.0.1"}));  // dup
  EXPECT_EQ(trace.snapshots().size(), 1u);
  EXPECT_TRUE(trace.events().empty());
}

TEST(ContentTraceTest, ChangeRecordsEvent) {
  ContentTrace trace = make_trace();
  trace.observe(0.0, addrs({"1.0.0.1"}));
  trace.observe(3.0, addrs({"1.0.0.1", "2.0.0.1"}));
  trace.observe(5.0, addrs({"2.0.0.1"}));
  ASSERT_EQ(trace.snapshots().size(), 3u);
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].hour, 3.0);
  EXPECT_EQ(events[0].before.size(), 1u);
  EXPECT_EQ(events[0].after.size(), 2u);
  EXPECT_DOUBLE_EQ(events[1].hour, 5.0);
}

TEST(ContentTraceTest, TimeMustNotGoBackward) {
  ContentTrace trace = make_trace();
  trace.observe(0.0, addrs({"1.0.0.1"}));
  trace.observe(5.0, addrs({"2.0.0.1"}));
  EXPECT_THROW(trace.observe(4.0, addrs({"3.0.0.1"})), std::invalid_argument);
}

TEST(ContentTraceTest, EmptySetsAllowed) {
  ContentTrace trace = make_trace();
  trace.observe(0.0, {});
  trace.observe(1.0, addrs({"1.0.0.1"}));
  trace.observe(2.0, {});
  EXPECT_EQ(trace.snapshots().size(), 3u);
  EXPECT_TRUE(trace.final_addresses().empty());
}

TEST(ContentTraceTest, DailyEventCounts) {
  ContentTrace trace = make_trace();
  trace.observe(0.0, addrs({"1.0.0.1"}));
  trace.observe(2.0, addrs({"2.0.0.1"}));   // day 0
  trace.observe(23.0, addrs({"3.0.0.1"}));  // day 0
  trace.observe(25.0, addrs({"4.0.0.1"}));  // day 1
  const auto counts = trace.daily_event_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_DOUBLE_EQ(trace.events_per_day(), 1.5);
}

TEST(ContentTraceTest, EventsPerDayOfQuietTrace) {
  ContentTrace trace = make_trace();
  trace.observe(0.0, addrs({"1.0.0.1"}));
  EXPECT_DOUBLE_EQ(trace.events_per_day(), 0.0);
}

TEST(ContentTraceTest, FinalAddressesSortedDeduplicated) {
  ContentTrace trace = make_trace();
  trace.observe(0.0, addrs({"9.0.0.1", "1.0.0.1", "9.0.0.1"}));
  const auto final_set = trace.final_addresses();
  ASSERT_EQ(final_set.size(), 2u);
  EXPECT_EQ(final_set[0], Ipv4Address::parse("1.0.0.1"));
  EXPECT_EQ(final_set[1], Ipv4Address::parse("9.0.0.1"));
}

TEST(ContentTraceTest, MetadataAccessors) {
  const ContentTrace trace(names::ContentName::from_dns("x.net"), false,
                           true, 21);
  EXPECT_EQ(trace.name().to_dns(), "x.net");
  EXPECT_FALSE(trace.popular());
  EXPECT_TRUE(trace.cdn_backed());
  EXPECT_EQ(trace.day_count(), 21u);
}

}  // namespace
}  // namespace lina::mobility
