#include "lina/mobility/vantage_merger.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace lina::mobility {
namespace {

using topology::GeoPoint;

TEST(VantagePointMergerTest, RejectsDegenerateConfigs) {
  EXPECT_THROW(VantagePointMerger({}, 3), std::invalid_argument);
  EXPECT_THROW(VantagePointMerger({GeoPoint{0, 0}}, 0),
               std::invalid_argument);
}

TEST(VantagePointMergerTest, SmallReplicaSetsFullyVisible) {
  const VantagePointMerger merger({GeoPoint{0, 0}}, 3);
  const std::vector<GeoPoint> sites{{10, 10}, {20, 20}};
  const auto visible = merger.visible_sites(sites);
  EXPECT_EQ(visible, (std::vector<std::size_t>{0, 1}));
}

TEST(VantagePointMergerTest, SingleVantageSeesOnlyNearest) {
  const VantagePointMerger merger({GeoPoint{0, 0}}, 2);
  const std::vector<GeoPoint> sites{
      {1, 1}, {50, 50}, {2, 2}, {60, 60}};
  const auto visible = merger.visible_sites(sites);
  EXPECT_EQ(visible, (std::vector<std::size_t>{0, 2}));
}

TEST(VantagePointMergerTest, MergedViewIsUnionOfVantages) {
  // Two far-apart vantages each see their own nearby replicas.
  const VantagePointMerger merger({GeoPoint{0, 0}, GeoPoint{0, 179}}, 1);
  const std::vector<GeoPoint> sites{{0, 1}, {0, 178}, {45, 90}};
  const auto visible = merger.visible_sites(sites);
  EXPECT_EQ(visible, (std::vector<std::size_t>{0, 1}));
}

TEST(VantagePointMergerTest, FarReplicaInvisible) {
  // One vantage, k=1: only the single closest replica is observed — the
  // partial-view artifact of the measurement methodology (§7.1).
  const VantagePointMerger merger({GeoPoint{0, 0}}, 1);
  const std::vector<GeoPoint> sites{{1, 1}, {80, 80}};
  const auto visible = merger.visible_sites(sites);
  EXPECT_EQ(visible, (std::vector<std::size_t>{0}));
}

TEST(VantagePointMergerTest, SitesSeenByIsSortedAndBounded) {
  const VantagePointMerger merger(
      {GeoPoint{0, 0}, GeoPoint{10, 10}}, 2);
  const std::vector<GeoPoint> sites{{5, 5}, {1, 1}, {2, 2}, {3, 3}};
  const auto seen = merger.sites_seen_by(0, sites);
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_THROW((void)merger.sites_seen_by(7, sites), std::out_of_range);
}

TEST(VantagePointMergerTest, MoreVantagesSeeMore) {
  stats::Rng rng(3);
  const auto few = VantagePointMerger::worldwide_vantages(4, rng);
  stats::Rng rng2(3);
  const auto many = VantagePointMerger::worldwide_vantages(74, rng2);
  std::vector<GeoPoint> sites;
  stats::Rng site_rng(9);
  for (int i = 0; i < 48; ++i) {
    sites.push_back(
        {site_rng.uniform(-60.0, 60.0), site_rng.uniform(-180.0, 180.0)});
  }
  const VantagePointMerger merger_few(few, 3);
  const VantagePointMerger merger_many(many, 3);
  EXPECT_LE(merger_few.visible_sites(sites).size(),
            merger_many.visible_sites(sites).size());
}

TEST(VantagePointMergerTest, WorldwideVantagesCount) {
  stats::Rng rng(1);
  const auto vantages = VantagePointMerger::worldwide_vantages(74, rng);
  EXPECT_EQ(vantages.size(), 74u);
}

}  // namespace
}  // namespace lina::mobility
