#include "lina/mobility/device_workload.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lina/core/extent.hpp"

namespace lina::mobility {
namespace {

const routing::SyntheticInternet& internet() {
  static const routing::SyntheticInternet instance = [] {
    routing::SyntheticInternetConfig config;
    config.topology.tier1_count = 8;
    config.topology.tier2_count = 30;
    config.topology.stub_count = 250;
    return routing::SyntheticInternet(config);
  }();
  return instance;
}

DeviceWorkloadConfig small_config() {
  DeviceWorkloadConfig config;
  config.user_count = 60;
  config.days = 7;
  return config;
}

TEST(DeviceWorkloadTest, GeneratesRequestedPopulation) {
  const DeviceWorkloadGenerator gen(internet(), small_config());
  const auto traces = gen.generate();
  ASSERT_EQ(traces.size(), 60u);
  for (std::size_t u = 0; u < traces.size(); ++u) {
    EXPECT_EQ(traces[u].user_id(), u);
    EXPECT_EQ(traces[u].day_count(), 7u);
    EXPECT_FALSE(traces[u].visits().empty());
  }
}

TEST(DeviceWorkloadTest, TracesCoverFullPeriodContiguously) {
  const DeviceWorkloadGenerator gen(internet(), small_config());
  const DeviceTrace trace = gen.generate_user(3);
  double clock = 0.0;
  for (const DeviceVisit& visit : trace.visits()) {
    EXPECT_NEAR(visit.start_hour, clock, 1e-6);
    EXPECT_GT(visit.duration_hours, 0.0);
    clock = visit.start_hour + visit.duration_hours;
  }
  EXPECT_NEAR(clock, 7.0 * 24.0, 1e-6);
}

TEST(DeviceWorkloadTest, VisitMetadataConsistent) {
  const DeviceWorkloadGenerator gen(internet(), small_config());
  const DeviceTrace trace = gen.generate_user(5);
  for (const DeviceVisit& visit : trace.visits()) {
    EXPECT_EQ(internet().owner_of(visit.address), visit.as);
    EXPECT_TRUE(visit.prefix.contains(visit.address));
    EXPECT_EQ(internet().prefix_of(visit.address), visit.prefix);
  }
}

TEST(DeviceWorkloadTest, DeterministicPerUser) {
  const DeviceWorkloadGenerator gen(internet(), small_config());
  const DeviceTrace a = gen.generate_user(11);
  const DeviceTrace b = gen.generate_user(11);
  ASSERT_EQ(a.visits().size(), b.visits().size());
  for (std::size_t i = 0; i < a.visits().size(); ++i) {
    EXPECT_EQ(a.visits()[i].address, b.visits()[i].address);
    EXPECT_DOUBLE_EQ(a.visits()[i].start_hour, b.visits()[i].start_hour);
  }
}

TEST(DeviceWorkloadTest, DifferentUsersDiffer) {
  const DeviceWorkloadGenerator gen(internet(), small_config());
  const DeviceTrace a = gen.generate_user(1);
  const DeviceTrace b = gen.generate_user(2);
  EXPECT_NE(a.visits().front().address, b.visits().front().address);
}

TEST(DeviceWorkloadTest, SeedChangesPopulation) {
  DeviceWorkloadConfig config = small_config();
  config.seed = 1;
  const DeviceWorkloadGenerator gen1(internet(), config);
  config.seed = 2;
  const DeviceWorkloadGenerator gen2(internet(), config);
  EXPECT_NE(gen1.generate_user(0).visits().front().address,
            gen2.generate_user(0).visits().front().address);
}

TEST(DeviceWorkloadTest, UsersStartAtHomeAs) {
  const DeviceWorkloadGenerator gen(internet(), small_config());
  // The first visit is the home attachment; for most users the dominant AS
  // over the whole trace is that same home AS (highly mobile users can tip
  // toward work).
  int matches = 0;
  const int sample = 30;
  for (std::uint32_t u = 0; u < sample; ++u) {
    const DeviceTrace trace = gen.generate_user(u);
    if (trace.visits().front().as == trace.dominant_as()) ++matches;
  }
  EXPECT_GT(matches, sample * 2 / 3);
}

// Calibration anchors from the paper (§4, §6.1, Figures 6/7/9), checked on
// the full 372-user population with loose tolerances.
class DeviceWorkloadCalibrationTest : public ::testing::Test {
 protected:
  static const core::ExtentOfMobility& extent() {
    static const core::ExtentOfMobility result = [] {
      DeviceWorkloadConfig config;  // paper-calibrated defaults
      config.days = 21;
      const DeviceWorkloadGenerator gen(internet(), config);
      const auto traces = gen.generate();
      return core::analyze_extent(traces);
    }();
    return result;
  }
};

TEST_F(DeviceWorkloadCalibrationTest, Figure6MedianDistinctLocations) {
  // Paper: medians 3 IPs, 2 prefixes, 2 ASes per day.
  EXPECT_NEAR(extent().ips_per_day.quantile(0.5), 3.0, 1.0);
  EXPECT_NEAR(extent().prefixes_per_day.quantile(0.5), 2.0, 1.0);
  EXPECT_NEAR(extent().ases_per_day.quantile(0.5), 2.0, 0.75);
}

TEST_F(DeviceWorkloadCalibrationTest, Figure7TransitionMedians) {
  // Paper: median ~3 IP transitions and ~1 AS transition per day.
  EXPECT_NEAR(extent().ip_transitions_per_day.quantile(0.5), 3.0, 1.0);
  EXPECT_NEAR(extent().as_transitions_per_day.quantile(0.5), 1.0, 0.75);
}

TEST_F(DeviceWorkloadCalibrationTest, Figure7HeavyTail) {
  // Paper: >20% of users change IP address more than 10 times a day;
  // maximum average AS transition rate ~31.6/day.
  EXPECT_GT(extent().ip_transitions_per_day.fraction_above(10.0), 0.12);
  EXPECT_GT(extent().as_transitions_per_day.max(), 15.0);
  EXPECT_LT(extent().as_transitions_per_day.max(), 50.0);
}

TEST_F(DeviceWorkloadCalibrationTest, Figure9DominantLocation) {
  // Paper: a median-ish user spends ~70% of the day at the dominant IP and
  // ~85% at the dominant AS; the AS share dominates the IP share.
  const double ip_share = extent().dominant_ip_share.quantile(0.5);
  const double as_share = extent().dominant_as_share.quantile(0.5);
  EXPECT_NEAR(ip_share, 0.68, 0.12);
  EXPECT_NEAR(as_share, 0.88, 0.08);
  EXPECT_GT(as_share, ip_share);
}

TEST_F(DeviceWorkloadCalibrationTest, OrderingInvariants) {
  // Distinct prefixes <= distinct IPs; distinct ASes <= prefixes; same for
  // transitions — at every quantile.
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_LE(extent().prefixes_per_day.quantile(q),
              extent().ips_per_day.quantile(q) + 1e-9);
    EXPECT_LE(extent().ases_per_day.quantile(q),
              extent().prefixes_per_day.quantile(q) + 1e-9);
    EXPECT_LE(extent().as_transitions_per_day.quantile(q),
              extent().ip_transitions_per_day.quantile(q) + 1e-9);
  }
}

}  // namespace
}  // namespace lina::mobility
