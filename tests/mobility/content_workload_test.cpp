#include "lina/mobility/content_workload.hpp"

#include <gtest/gtest.h>

#include <set>

#include "lina/stats/cdf.hpp"

namespace lina::mobility {
namespace {

const routing::SyntheticInternet& internet() {
  static const routing::SyntheticInternet instance = [] {
    routing::SyntheticInternetConfig config;
    config.topology.tier1_count = 8;
    config.topology.tier2_count = 30;
    config.topology.stub_count = 250;
    return routing::SyntheticInternet(config);
  }();
  return instance;
}

ContentWorkloadConfig small_config() {
  ContentWorkloadConfig config;
  config.popular_domains = 60;
  config.unpopular_domains = 60;
  config.days = 5;
  return config;
}

const ContentCatalog& small_catalog() {
  static const ContentCatalog catalog =
      ContentWorkloadGenerator(internet(), small_config()).generate();
  return catalog;
}

TEST(ContentWorkloadTest, CdnFootprintSpansRegions) {
  const ContentWorkloadGenerator gen(internet(), small_config());
  EXPECT_GE(gen.cdn_pop_ases().size(), 24u);
  // PoPs are distinct stub ASes announcing prefixes.
  std::set<topology::AsId> distinct(gen.cdn_pop_ases().begin(),
                                    gen.cdn_pop_ases().end());
  EXPECT_EQ(distinct.size(), gen.cdn_pop_ases().size());
  for (const topology::AsId as : gen.cdn_pop_ases()) {
    EXPECT_FALSE(internet().prefixes_of(as).empty());
  }
}

TEST(ContentWorkloadTest, CatalogShape) {
  const ContentCatalog& catalog = small_catalog();
  // Popular: >= 1 name per domain (apex) plus subdomains.
  EXPECT_GT(catalog.popular.size(), 60u * 5u);
  // Unpopular: apex plus at most two subdomains.
  EXPECT_GE(catalog.unpopular.size(), 60u);
  EXPECT_LE(catalog.unpopular.size(), 60u * 3u);
}

TEST(ContentWorkloadTest, NamesAreHierarchicalPerDomain) {
  const ContentCatalog& catalog = small_catalog();
  std::size_t subdomains = 0;
  for (const ContentTrace& trace : catalog.popular) {
    EXPECT_TRUE(trace.popular());
    const auto& name = trace.name();
    ASSERT_GE(name.depth(), 2u);
    EXPECT_EQ(name.components()[0], "com");
    if (name.depth() == 3) ++subdomains;
  }
  EXPECT_GT(subdomains, 0u);
}

TEST(ContentWorkloadTest, EverySnapshotAddressIsAnnounced) {
  const ContentCatalog& catalog = small_catalog();
  for (const ContentTrace& trace : catalog.popular) {
    for (const ContentSnapshot& snapshot : trace.snapshots()) {
      for (const net::Ipv4Address addr : snapshot.addresses) {
        EXPECT_NO_THROW((void)internet().owner_of(addr));
      }
    }
  }
}

TEST(ContentWorkloadTest, InitialSnapshotNonEmpty) {
  const ContentCatalog& catalog = small_catalog();
  for (const ContentTrace& trace : catalog.popular) {
    ASSERT_FALSE(trace.snapshots().empty());
    EXPECT_FALSE(trace.snapshots().front().addresses.empty());
    EXPECT_DOUBLE_EQ(trace.snapshots().front().hour, 0.0);
  }
}

TEST(ContentWorkloadTest, CdnBackedNamesHaveBiggerSets) {
  const ContentCatalog& catalog = small_catalog();
  double cdn_sum = 0.0, cdn_count = 0.0, origin_sum = 0.0, origin_count = 0.0;
  for (const ContentTrace& trace : catalog.popular) {
    const double size =
        static_cast<double>(trace.snapshots().front().addresses.size());
    if (trace.cdn_backed()) {
      cdn_sum += size;
      ++cdn_count;
    } else {
      origin_sum += size;
      ++origin_count;
    }
  }
  ASSERT_GT(cdn_count, 0.0);
  ASSERT_GT(origin_count, 0.0);
  EXPECT_GT(cdn_sum / cdn_count, 2.0 * origin_sum / origin_count);
}

TEST(ContentWorkloadTest, CdnFractionsMatchConfig) {
  // 24.5% of popular vs 1.6% of unpopular domains are CDN-delegated (§7.2):
  // count apex names (depth 2).
  const ContentCatalog& catalog = small_catalog();
  const auto apex_cdn_share = [](const std::vector<ContentTrace>& traces) {
    double cdn = 0.0, total = 0.0;
    for (const ContentTrace& trace : traces) {
      if (trace.name().depth() != 2) continue;
      ++total;
      if (trace.cdn_backed()) ++cdn;
    }
    return cdn / total;
  };
  EXPECT_NEAR(apex_cdn_share(catalog.popular), 0.245, 0.15);
  EXPECT_LT(apex_cdn_share(catalog.unpopular), 0.1);
}

TEST(ContentWorkloadTest, PopularMoreDynamicThanUnpopular) {
  const ContentCatalog& catalog = small_catalog();
  stats::EmpiricalCdf popular_events, unpopular_events;
  for (const ContentTrace& trace : catalog.popular) {
    popular_events.add(trace.events_per_day());
  }
  for (const ContentTrace& trace : catalog.unpopular) {
    unpopular_events.add(trace.events_per_day());
  }
  EXPECT_GT(popular_events.quantile(0.5), unpopular_events.quantile(0.5));
  EXPECT_GT(popular_events.quantile(0.5), 0.5);
  EXPECT_LT(unpopular_events.quantile(0.5), 0.5);
}

TEST(ContentWorkloadTest, EventRateBoundedByHourlySampling) {
  const ContentCatalog& catalog = small_catalog();
  for (const ContentTrace& trace : catalog.popular) {
    EXPECT_LE(trace.events_per_day(), 24.0);
  }
}

TEST(ContentWorkloadTest, DeterministicForSeed) {
  const ContentCatalog a =
      ContentWorkloadGenerator(internet(), small_config()).generate();
  const ContentCatalog b =
      ContentWorkloadGenerator(internet(), small_config()).generate();
  ASSERT_EQ(a.popular.size(), b.popular.size());
  for (std::size_t i = 0; i < a.popular.size(); ++i) {
    EXPECT_EQ(a.popular[i].name(), b.popular[i].name());
    EXPECT_EQ(a.popular[i].snapshots().size(),
              b.popular[i].snapshots().size());
  }
}

TEST(ContentWorkloadTest, UnpopularDomainsHaveFewSubdomains) {
  const ContentCatalog& catalog = small_catalog();
  std::map<std::string, std::size_t> subs_per_domain;
  for (const ContentTrace& trace : catalog.unpopular) {
    if (trace.name().depth() == 3) {
      ++subs_per_domain[std::string(trace.name().components()[1])];
    }
  }
  for (const auto& [domain, count] : subs_per_domain) {
    EXPECT_LE(count, 2u) << domain;
  }
}

}  // namespace
}  // namespace lina::mobility
