#include "lina/mobility/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "lina/mobility/content_workload.hpp"
#include "lina/mobility/device_workload.hpp"

namespace lina::mobility {
namespace {

const routing::SyntheticInternet& internet() {
  static const routing::SyntheticInternet instance = [] {
    routing::SyntheticInternetConfig config;
    config.topology.tier1_count = 6;
    config.topology.tier2_count = 20;
    config.topology.stub_count = 150;
    return routing::SyntheticInternet(config);
  }();
  return instance;
}

TEST(NomadLogCsvTest, RecordsRoundTrip) {
  DeviceWorkloadConfig config;
  config.user_count = 5;
  config.days = 3;
  const auto traces = DeviceWorkloadGenerator(internet(), config).generate();

  std::stringstream buffer;
  write_nomadlog_csv(buffer, traces);
  const auto records = read_nomadlog_csv(buffer);

  std::size_t visit_count = 0;
  for (const auto& trace : traces) visit_count += trace.visits().size();
  ASSERT_EQ(records.size(), visit_count);

  // Spot-check the first record of user 0.
  EXPECT_EQ(records.front().device_id, 0u);
  EXPECT_DOUBLE_EQ(records.front().time_hours, 0.0);
  EXPECT_EQ(records.front().address, traces.front().visits().front().address);
}

TEST(NomadLogCsvTest, TracesReconstructFaithfully) {
  DeviceWorkloadConfig config;
  config.user_count = 6;
  config.days = 3;
  const auto original =
      DeviceWorkloadGenerator(internet(), config).generate();

  std::stringstream buffer;
  write_nomadlog_csv(buffer, original);
  const auto records = read_nomadlog_csv(buffer);
  const InternetAddressResolver resolver(internet());
  // A generous tail keeps even users whose single lease spanned the whole
  // observation window (the log alone cannot prove they stayed a day).
  const auto rebuilt = traces_from_records(records, resolver, 72.0);

  ASSERT_EQ(rebuilt.size(), original.size());
  for (std::size_t u = 0; u < rebuilt.size(); ++u) {
    // Visit sequences must agree on addresses and metadata; the final
    // visit's duration differs (the log has no explicit end).
    ASSERT_EQ(rebuilt[u].visits().size(), original[u].visits().size());
    for (std::size_t i = 0; i < rebuilt[u].visits().size(); ++i) {
      EXPECT_EQ(rebuilt[u].visits()[i].address,
                original[u].visits()[i].address);
      EXPECT_EQ(rebuilt[u].visits()[i].as, original[u].visits()[i].as);
      EXPECT_EQ(rebuilt[u].visits()[i].prefix,
                original[u].visits()[i].prefix);
      EXPECT_EQ(rebuilt[u].visits()[i].cellular,
                original[u].visits()[i].cellular);
      EXPECT_NEAR(rebuilt[u].visits()[i].start_hour,
                  original[u].visits()[i].start_hour, 1e-6);
    }
  }
}

TEST(NomadLogCsvTest, ParsesHandWrittenRows) {
  std::istringstream input(
      "device_id,time_hours,ip_addr,net_type,lat,long\n"
      "7,0,1.2.3.4,wifi,42.3,-72.5\n"
      "7,5.25,5.6.7.8,cellular,,\n");
  const auto records = read_nomadlog_csv(input);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].device_id, 7u);
  EXPECT_TRUE(records[0].has_location);
  EXPECT_DOUBLE_EQ(records[0].latitude_deg, 42.3);
  EXPECT_FALSE(records[0].cellular);
  EXPECT_TRUE(records[1].cellular);
  EXPECT_FALSE(records[1].has_location);
  EXPECT_DOUBLE_EQ(records[1].time_hours, 5.25);
}

TEST(NomadLogCsvTest, RejectsMalformedRows) {
  const auto expect_throw = [](const char* text) {
    std::istringstream input(text);
    EXPECT_THROW((void)read_nomadlog_csv(input), std::invalid_argument)
        << text;
  };
  expect_throw("1,0,1.2.3.4\n");                  // too few fields
  expect_throw("x,0,1.2.3.4,wifi\n");             // bad id
  expect_throw("1,zero,1.2.3.4,wifi\n");          // bad time
  expect_throw("1,0,999.2.3.4,wifi\n");           // bad address
  expect_throw("1,0,1.2.3.4,tachyon\n");          // bad net type
  expect_throw("1,0,1.2.3.4,wifi,abc,1.0\n");     // bad latitude
}

TEST(NomadLogCsvTest, DropsShortAndUnmappableDevices) {
  // Device 1: fine (2 days). Device 2: under a day -> removed (§4).
  // Device 3: address outside the synthetic plane -> unmappable, removed.
  std::istringstream input(
      "1,0,1.0.0.10,wifi\n"
      "1,30,1.5.0.10,wifi\n"
      "2,0,1.0.0.10,wifi\n"
      "2,2,1.5.0.10,wifi\n"
      "3,0,250.1.2.3,wifi\n"
      "3,40,250.1.2.4,wifi\n");
  const auto records = read_nomadlog_csv(input);
  const InternetAddressResolver resolver(internet());
  const auto traces = traces_from_records(records, resolver, 1.0);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces.front().user_id(), 1u);
  EXPECT_EQ(traces.front().day_count(), 2u);
  EXPECT_EQ(traces.front().visits().size(), 2u);
}

TEST(NomadLogCsvTest, SimultaneousEventsKeepLast) {
  std::istringstream input(
      "1,0,1.0.0.10,wifi\n"
      "1,10,1.5.0.10,wifi\n"
      "1,10,1.9.0.10,wifi\n"
      "1,30,1.0.0.10,wifi\n");
  const auto records = read_nomadlog_csv(input);
  const InternetAddressResolver resolver(internet());
  const auto traces = traces_from_records(records, resolver, 1.0);
  ASSERT_EQ(traces.size(), 1u);
  // 4 events, one pair simultaneous -> 3 visits.
  EXPECT_EQ(traces.front().visits().size(), 3u);
  EXPECT_EQ(traces.front().visits()[1].address,
            net::Ipv4Address::parse("1.9.0.10"));
}

TEST(NomadLogCsvTest, TailHoursValidation) {
  const InternetAddressResolver resolver(internet());
  EXPECT_THROW((void)traces_from_records({}, resolver, 0.0),
               std::invalid_argument);
}

TEST(ContentCsvTest, CatalogRoundTrip) {
  ContentWorkloadConfig config;
  config.popular_domains = 8;
  config.unpopular_domains = 4;
  config.days = 2;
  const auto catalog =
      ContentWorkloadGenerator(internet(), config).generate();

  std::stringstream buffer;
  write_content_csv(buffer, catalog.popular);
  const auto rebuilt = read_content_csv(buffer);

  ASSERT_EQ(rebuilt.size(), catalog.popular.size());
  for (std::size_t i = 0; i < rebuilt.size(); ++i) {
    const auto& a = catalog.popular[i];
    const auto& b = rebuilt[i];
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.popular(), b.popular());
    EXPECT_EQ(a.cdn_backed(), b.cdn_backed());
    EXPECT_EQ(a.day_count(), b.day_count());
    ASSERT_EQ(a.snapshots().size(), b.snapshots().size());
    for (std::size_t s = 0; s < a.snapshots().size(); ++s) {
      EXPECT_DOUBLE_EQ(a.snapshots()[s].hour, b.snapshots()[s].hour);
      EXPECT_EQ(a.snapshots()[s].addresses, b.snapshots()[s].addresses);
    }
  }
}

TEST(ContentCsvTest, ParsesHandWrittenRows) {
  std::istringstream input(
      "name,popular,cdn,day_count,hour,addresses\n"
      "a.example.com,1,0,2,0,1.2.3.4|5.6.7.8\n"
      "a.example.com,1,0,2,5,1.2.3.4\n"
      "b.example.net,0,1,2,0,9.9.9.9\n");
  const auto traces = read_content_csv(input);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].name().to_dns(), "a.example.com");
  EXPECT_TRUE(traces[0].popular());
  EXPECT_EQ(traces[0].snapshots().size(), 2u);
  EXPECT_EQ(traces[0].snapshots()[0].addresses.size(), 2u);
  EXPECT_TRUE(traces[1].cdn_backed());
}

TEST(ContentCsvTest, RejectsMalformedRows) {
  std::istringstream bad_fields("a.com,1,0,2,0\n");
  EXPECT_THROW((void)read_content_csv(bad_fields), std::invalid_argument);
  std::istringstream bad_order(
      "a.com,1,0,2,5,1.2.3.4\n"
      "a.com,1,0,2,3,5.6.7.8\n");
  EXPECT_THROW((void)read_content_csv(bad_order), std::invalid_argument);
}

}  // namespace
}  // namespace lina::mobility
