#include "lina/mobility/device_multihoming.hpp"

#include <gtest/gtest.h>

namespace lina::mobility {
namespace {

using net::Ipv4Address;

DeviceTrace simple_trace() {
  DeviceTrace trace(3, 1);
  const auto visit = [](double start, double duration, const char* addr,
                        topology::AsId as) {
    return DeviceVisit{start, duration, Ipv4Address::parse(addr),
                       net::Prefix(Ipv4Address::parse(addr), 16), as, false};
  };
  trace.append(visit(0.0, 8.0, "1.0.0.1", 1));
  trace.append(visit(8.0, 8.0, "2.0.0.1", 2));
  trace.append(visit(16.0, 8.0, "1.0.0.1", 1));
  return trace;
}

TEST(MultihomedDeviceTraceTest, ObserveValidation) {
  MultihomedDeviceTrace trace(1);
  EXPECT_THROW(trace.observe(2.0, {Ipv4Address::parse("1.0.0.1")}),
               std::invalid_argument);
  trace.observe(0.0, {Ipv4Address::parse("1.0.0.1")});
  EXPECT_THROW(trace.observe(-1.0, {Ipv4Address::parse("2.0.0.1")}),
               std::invalid_argument);
}

TEST(MultihomedDeviceTraceTest, DropsNoopsAndNormalizes) {
  MultihomedDeviceTrace trace(1);
  trace.observe(0.0, {Ipv4Address::parse("2.0.0.1"),
                      Ipv4Address::parse("1.0.0.1"),
                      Ipv4Address::parse("2.0.0.1")});
  trace.observe(1.0, {Ipv4Address::parse("1.0.0.1"),
                      Ipv4Address::parse("2.0.0.1")});  // same set
  EXPECT_EQ(trace.snapshots().size(), 1u);
  EXPECT_EQ(trace.snapshots()[0].addresses.size(), 2u);
  EXPECT_EQ(trace.event_count(), 0u);
}

TEST(MultihomedViewTest, BreakBeforeMakeIsSingletonSequence) {
  const auto view = multihomed_view(simple_trace(), 0.0);
  ASSERT_EQ(view.snapshots().size(), 3u);
  for (const auto& snapshot : view.snapshots()) {
    EXPECT_EQ(snapshot.addresses.size(), 1u);
  }
  EXPECT_EQ(view.event_count(), 2u);
  EXPECT_EQ(view.user_id(), 3u);
}

TEST(MultihomedViewTest, MakeBeforeBreakOverlaps) {
  const auto view = multihomed_view(simple_trace(), 1.0);
  // {1}, {1,2}@8, {2}@9, {1,2}@16, {1}@17.
  ASSERT_EQ(view.snapshots().size(), 5u);
  EXPECT_EQ(view.snapshots()[1].addresses.size(), 2u);
  EXPECT_DOUBLE_EQ(view.snapshots()[1].hour, 8.0);
  EXPECT_DOUBLE_EQ(view.snapshots()[2].hour, 9.0);
  EXPECT_EQ(view.snapshots()[2].addresses,
            std::vector<Ipv4Address>{Ipv4Address::parse("2.0.0.1")});
  EXPECT_EQ(view.event_count(), 4u);
}

TEST(MultihomedViewTest, OverlapBoundedByVisitDuration) {
  // Overlap longer than the visit: teardown happens at half the visit.
  const auto view = multihomed_view(simple_trace(), 100.0);
  ASSERT_GE(view.snapshots().size(), 3u);
  EXPECT_DOUBLE_EQ(view.snapshots()[2].hour, 12.0);  // 8 + 8/2
}

TEST(MultihomedViewTest, Validation) {
  EXPECT_THROW((void)multihomed_view(simple_trace(), -1.0),
               std::invalid_argument);
  const DeviceTrace empty(0, 1);
  EXPECT_THROW((void)multihomed_view(empty, 1.0), std::invalid_argument);
}

TEST(MultihomedViewTest, PopulationHelper) {
  std::vector<DeviceTrace> traces;
  traces.push_back(simple_trace());
  traces.push_back(simple_trace());
  const auto views = multihomed_views(traces, 0.5);
  EXPECT_EQ(views.size(), 2u);
}

TEST(MultihomedViewTest, SameAddressBoundaryProducesNoSnapshot) {
  DeviceTrace trace(1, 1);
  const auto addr = Ipv4Address::parse("1.0.0.1");
  const net::Prefix prefix(addr, 16);
  trace.append({0.0, 10.0, addr, prefix, 1, false});
  trace.append({10.0, 14.0, addr, prefix, 1, true});  // same address
  const auto view = multihomed_view(trace, 1.0);
  EXPECT_EQ(view.snapshots().size(), 1u);
}

}  // namespace
}  // namespace lina::mobility
