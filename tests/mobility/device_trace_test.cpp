#include "lina/mobility/device_trace.hpp"

#include <gtest/gtest.h>

namespace lina::mobility {
namespace {

using net::Ipv4Address;
using net::Prefix;

DeviceVisit visit(double start, double duration, const char* addr,
                  const char* prefix, topology::AsId as,
                  bool cellular = false) {
  return DeviceVisit{start, duration, Ipv4Address::parse(addr),
                     Prefix::parse(prefix), as, cellular};
}

// A two-day trace: home (AS 1) -> cellular (AS 2) -> work (AS 3) -> home,
// crossing midnight inside the last home visit.
DeviceTrace make_trace() {
  DeviceTrace trace(7, 2);
  trace.append(visit(0.0, 8.0, "1.0.0.1", "1.0.0.0/16", 1));
  trace.append(visit(8.0, 1.0, "2.0.0.1", "2.0.0.0/16", 2, true));
  trace.append(visit(9.0, 8.0, "3.0.0.1", "3.0.0.0/16", 3));
  trace.append(visit(17.0, 31.0, "1.0.0.1", "1.0.0.0/16", 1));
  return trace;
}

TEST(DeviceTraceTest, AppendEnforcesContiguity) {
  DeviceTrace trace(1, 1);
  trace.append(visit(0.0, 5.0, "1.0.0.1", "1.0.0.0/16", 1));
  EXPECT_THROW(trace.append(visit(6.0, 1.0, "1.0.0.2", "1.0.0.0/16", 1)),
               std::invalid_argument);
  EXPECT_THROW(trace.append(visit(4.0, 1.0, "1.0.0.2", "1.0.0.0/16", 1)),
               std::invalid_argument);
  trace.append(visit(5.0, 1.0, "1.0.0.2", "1.0.0.0/16", 1));
  EXPECT_EQ(trace.visits().size(), 2u);
}

TEST(DeviceTraceTest, AppendRejectsBadFirstVisit) {
  DeviceTrace trace(1, 1);
  EXPECT_THROW(trace.append(visit(1.0, 5.0, "1.0.0.1", "1.0.0.0/16", 1)),
               std::invalid_argument);
  EXPECT_THROW(trace.append(visit(0.0, 0.0, "1.0.0.1", "1.0.0.0/16", 1)),
               std::invalid_argument);
}

TEST(DeviceTraceTest, DayStatsCountsDistinctLocations) {
  const DeviceTrace trace = make_trace();
  const DayStats day0 = trace.day_stats(0);
  EXPECT_EQ(day0.distinct_ips, 3u);
  EXPECT_EQ(day0.distinct_prefixes, 3u);
  EXPECT_EQ(day0.distinct_ases, 3u);
  EXPECT_EQ(day0.ip_transitions, 3u);
  EXPECT_EQ(day0.as_transitions, 3u);

  const DayStats day1 = trace.day_stats(1);
  EXPECT_EQ(day1.distinct_ips, 1u);
  EXPECT_EQ(day1.ip_transitions, 0u);
}

TEST(DeviceTraceTest, DominantShares) {
  const DeviceTrace trace = make_trace();
  const DayStats day0 = trace.day_stats(0);
  // Home IP holds 8 + 7 = 15 of 24 hours of day 0.
  EXPECT_NEAR(day0.dominant_ip_fraction, 15.0 / 24.0, 1e-9);
  EXPECT_NEAR(day0.dominant_as_fraction, 15.0 / 24.0, 1e-9);
  const DayStats day1 = trace.day_stats(1);
  EXPECT_NEAR(day1.dominant_ip_fraction, 1.0, 1e-9);
}

TEST(DeviceTraceTest, SameAddressBoundaryIsNoTransition) {
  DeviceTrace trace(1, 1);
  trace.append(visit(0.0, 5.0, "1.0.0.1", "1.0.0.0/16", 1));
  trace.append(visit(5.0, 19.0, "1.0.0.1", "1.0.0.0/16", 1));
  const DayStats stats = trace.day_stats(0);
  EXPECT_EQ(stats.ip_transitions, 0u);
  EXPECT_EQ(stats.distinct_ips, 1u);
}

TEST(DeviceTraceTest, PrefixTransitionWithinAs) {
  DeviceTrace trace(1, 1);
  trace.append(visit(0.0, 5.0, "1.0.0.1", "1.0.0.0/16", 1));
  trace.append(visit(5.0, 19.0, "1.1.0.1", "1.1.0.0/16", 1));
  const DayStats stats = trace.day_stats(0);
  EXPECT_EQ(stats.ip_transitions, 1u);
  EXPECT_EQ(stats.prefix_transitions, 1u);
  EXPECT_EQ(stats.as_transitions, 0u);
  EXPECT_EQ(stats.distinct_ases, 1u);
}

TEST(DeviceTraceTest, EventsOnlyAtAddressChanges) {
  const DeviceTrace trace = make_trace();
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].from, Ipv4Address::parse("1.0.0.1"));
  EXPECT_EQ(events[0].to, Ipv4Address::parse("2.0.0.1"));
  EXPECT_DOUBLE_EQ(events[0].hour, 8.0);
  EXPECT_EQ(events[2].to, Ipv4Address::parse("1.0.0.1"));
}

TEST(DeviceTraceTest, DominantAsAndAddress) {
  const DeviceTrace trace = make_trace();
  EXPECT_EQ(trace.dominant_as(), 1u);
  EXPECT_EQ(trace.dominant_address(), Ipv4Address::parse("1.0.0.1"));
  // Home AS holds 39 of 48 hours.
  EXPECT_NEAR(trace.dominant_as_share(), 39.0 / 48.0, 1e-9);
}

TEST(DeviceTraceTest, EmptyTraceThrows) {
  const DeviceTrace trace(1, 1);
  EXPECT_THROW((void)trace.dominant_as(), std::logic_error);
  EXPECT_THROW((void)trace.dominant_address(), std::logic_error);
  EXPECT_THROW((void)trace.dominant_as_share(), std::logic_error);
  EXPECT_TRUE(trace.events().empty());
}

TEST(DeviceTraceTest, DayStatsOutOfRange) {
  const DeviceTrace trace = make_trace();
  EXPECT_THROW((void)trace.day_stats(2), std::out_of_range);
}

TEST(DeviceTraceTest, MidnightSpanningVisitCountsBothDays) {
  const DeviceTrace trace = make_trace();
  // The last visit spans 17h..48h; day 1 sees it for all 24 hours.
  const DayStats day1 = trace.day_stats(1);
  EXPECT_EQ(day1.distinct_ases, 1u);
  EXPECT_NEAR(day1.dominant_as_fraction, 1.0, 1e-9);
}

}  // namespace
}  // namespace lina::mobility
