#include "lina/analytic/closed_forms.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lina::analytic {
namespace {

TEST(ClosedFormsTest, ChainStretchExactFormula) {
  // (n^2 - 1) / 3n from §5.1.1; asymptotically n/3.
  EXPECT_NEAR(chain_indirection_stretch(2), 0.5, 1e-12);
  EXPECT_NEAR(chain_indirection_stretch(10), 3.3, 1e-12);
  EXPECT_NEAR(chain_indirection_stretch(1000), 1000.0 / 3.0, 0.2);
}

TEST(ClosedFormsTest, ChainUpdateCostExactFormula) {
  // Asymptotically 1/3 (paper §5.1.2); exact per-router-consistent form
  // (n^2 + 3n - 4) / 3n^2 — see closed_forms.cpp for the 1/n^2 erratum.
  EXPECT_NEAR(chain_name_based_update_cost(1000), 1.0 / 3.0, 0.002);
  // n = 2: (4 + 6 - 4) / 12 = 0.5.
  EXPECT_NEAR(chain_name_based_update_cost(2), 0.5, 1e-12);
}

TEST(ClosedFormsTest, RejectsZero) {
  EXPECT_THROW((void)chain_indirection_stretch(0), std::invalid_argument);
  EXPECT_THROW((void)chain_name_based_update_cost(0), std::invalid_argument);
  EXPECT_THROW((void)paper_table1(1), std::invalid_argument);
}

TEST(ClosedFormsTest, Table1RowsAndValues) {
  const auto table = paper_table1(1023);
  ASSERT_EQ(table.size(), 4u);

  EXPECT_EQ(table[0].topology, "chain");
  EXPECT_NEAR(table[0].indirection_stretch, 1023.0 / 3.0, 0.5);
  EXPECT_NEAR(table[0].indirection_update_cost, 1.0 / 1023.0, 1e-9);
  EXPECT_DOUBLE_EQ(table[0].name_based_stretch, 0.0);
  EXPECT_NEAR(table[0].name_based_update_cost, 1.0 / 3.0, 0.01);

  EXPECT_EQ(table[1].topology, "clique");
  EXPECT_DOUBLE_EQ(table[1].indirection_stretch, 1.0);
  EXPECT_DOUBLE_EQ(table[1].name_based_update_cost, 1.0);

  EXPECT_EQ(table[2].topology, "binary tree");
  EXPECT_NEAR(table[2].indirection_stretch, 2.0 * std::log2(1023.0), 1e-9);
  EXPECT_NEAR(table[2].name_based_update_cost,
              2.0 * std::log2(1023.0) / 1022.0, 1e-9);

  EXPECT_EQ(table[3].topology, "star");
  EXPECT_DOUBLE_EQ(table[3].indirection_stretch, 2.0);
  EXPECT_NEAR(table[3].name_based_update_cost, 1.0 / 1024.0, 1e-9);
}

TEST(ClosedFormsTest, AllRowsIndirectionUpdateIsOneRouter) {
  for (const std::size_t n : {15u, 63u, 255u}) {
    for (const Table1Row& row : paper_table1(n)) {
      EXPECT_NEAR(row.indirection_update_cost, 1.0 / static_cast<double>(n),
                  1e-12)
          << row.topology;
      EXPECT_DOUBLE_EQ(row.name_based_stretch, 0.0) << row.topology;
    }
  }
}

TEST(ClosedFormsTest, TradeoffDirectionHolds) {
  // The table's qualitative content: indirection trades stretch for cheap
  // updates; name-based routing trades updates for zero stretch.
  for (const Table1Row& row : paper_table1(255)) {
    EXPECT_GT(row.indirection_stretch, row.name_based_stretch)
        << row.topology;
    EXPECT_GT(row.name_based_update_cost, 0.0) << row.topology;
  }
}

}  // namespace
}  // namespace lina::analytic
