#include "lina/analytic/compact_routing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lina/topology/generators.hpp"

namespace lina::analytic {
namespace {

using topology::NodeId;

TEST(CompactRoutingTest, RejectsBadGraphs) {
  topology::Graph disconnected(3);
  disconnected.add_edge(0, 1);
  EXPECT_THROW(CompactRoutingScheme{disconnected}, std::invalid_argument);
  EXPECT_THROW(CompactRoutingScheme{topology::Graph{}},
               std::invalid_argument);
}

TEST(CompactRoutingTest, LandmarkCountDefaultsToSqrtScale) {
  const auto graph = topology::make_grid(10, 10);
  const CompactRoutingScheme scheme(graph);
  const double expected =
      std::sqrt(100.0 * std::log(100.0));
  EXPECT_NEAR(static_cast<double>(scheme.landmarks().size()), expected, 2.0);
  for (const NodeId l : scheme.landmarks()) {
    EXPECT_TRUE(scheme.is_landmark(l));
  }
}

TEST(CompactRoutingTest, NearestLandmarkIsNearest) {
  stats::Rng rng(2);
  const auto graph = topology::make_erdos_renyi(60, 0.08, rng);
  const CompactRoutingScheme scheme(graph);
  const topology::AllPairsShortestPaths paths(graph);
  for (NodeId v = 0; v < graph.node_count(); v += 7) {
    const double to_nearest = paths.distance(v, scheme.nearest_landmark(v));
    for (const NodeId l : scheme.landmarks()) {
      EXPECT_LE(to_nearest, paths.distance(v, l));
    }
  }
}

TEST(CompactRoutingTest, RoutingReachesEveryDestination) {
  stats::Rng rng(3);
  const auto graph = topology::make_erdos_renyi(50, 0.1, rng);
  const CompactRoutingScheme scheme(graph);
  for (NodeId u = 0; u < graph.node_count(); u += 3) {
    for (NodeId v = 0; v < graph.node_count(); v += 5) {
      if (u == v) {
        EXPECT_EQ(scheme.route_length(u, v), 0u);
        continue;
      }
      EXPECT_GE(scheme.route_length(u, v), 1u);
    }
  }
}

// The headline property: worst-case multiplicative stretch <= 3.
class CompactRoutingStretchTest : public ::testing::TestWithParam<int> {};

TEST_P(CompactRoutingStretchTest, StretchAtMostThree) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) + 10);
  const auto graph = topology::make_erdos_renyi(70, 0.06, rng);
  const CompactRoutingScheme scheme(
      graph, {.landmark_count = 0,
              .seed = static_cast<std::uint64_t>(GetParam())});
  const topology::AllPairsShortestPaths paths(graph);
  for (NodeId u = 0; u < graph.node_count(); u += 2) {
    for (NodeId v = 0; v < graph.node_count(); v += 3) {
      if (u == v) continue;
      EXPECT_LE(static_cast<double>(scheme.route_length(u, v)),
                3.0 * paths.distance(u, v) + 1e-9)
          << u << " -> " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactRoutingStretchTest,
                         ::testing::Range(0, 4));

TEST(CompactRoutingTest, TablesAreCompact) {
  stats::Rng rng(5);
  const auto graph = topology::make_barabasi_albert(300, 2, rng);
  const CompactRoutingScheme scheme(graph);
  // Far fewer than n entries on average (the whole point of §2.1).
  EXPECT_LT(scheme.average_table_size(),
            static_cast<double>(graph.node_count()) / 2.0);
  EXPECT_GE(scheme.average_table_size(),
            static_cast<double>(scheme.landmarks().size()));
}

TEST(CompactRoutingTest, UpdateFractionIsSubLinear) {
  stats::Rng rng(6);
  const auto graph = topology::make_barabasi_albert(300, 2, rng);
  const CompactRoutingScheme scheme(graph);
  const auto summary = scheme.evaluate(400, rng);
  // Mobility touches far fewer routers than pure name-based routing's
  // global update, but more than a home agent's single node.
  EXPECT_LT(summary.avg_update_fraction, 0.5);
  EXPECT_GT(summary.avg_update_fraction, 1.0 / 300.0);
  EXPECT_LE(summary.max_stretch, 3.0 + 1e-9);
  EXPECT_GE(summary.avg_stretch, 1.0);
}

TEST(CompactRoutingTest, AllLandmarksDegeneratesToShortestPath) {
  const auto graph = topology::make_grid(6, 6);
  const CompactRoutingScheme scheme(graph, {.landmark_count = 36, .seed = 1});
  const topology::AllPairsShortestPaths paths(graph);
  for (NodeId u = 0; u < 36; u += 5) {
    for (NodeId v = 0; v < 36; v += 7) {
      if (u == v) continue;
      EXPECT_DOUBLE_EQ(static_cast<double>(scheme.route_length(u, v)),
                       paths.distance(u, v));
    }
  }
}

TEST(CompactRoutingTest, EvaluateRejectsZeroSamples) {
  const auto graph = topology::make_grid(4, 4);
  const CompactRoutingScheme scheme(graph);
  stats::Rng rng(1);
  EXPECT_THROW((void)scheme.evaluate(0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace lina::analytic
