#include "lina/analytic/mobility_models.hpp"

#include <gtest/gtest.h>

#include <map>

#include "lina/analytic/tradeoff.hpp"
#include "lina/topology/generators.hpp"

namespace lina::analytic {
namespace {

using topology::NodeId;

std::vector<NodeId> nodes(std::size_t n) {
  std::vector<NodeId> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<NodeId>(i);
  return out;
}

TEST(MobilityModelsTest, UniformJumpCoversAllAttachments) {
  const auto model = make_uniform_jump_model();
  EXPECT_EQ(model->name(), "uniform-jump");
  stats::Rng rng(1);
  const auto attachments = nodes(5);
  std::map<NodeId, int> counts;
  NodeId current = model->initial(attachments, rng);
  for (int i = 0; i < 5000; ++i) {
    current = model->next(current, attachments, rng);
    ++counts[current];
  }
  ASSERT_EQ(counts.size(), 5u);
  for (const auto& [_, count] : counts) {
    EXPECT_NEAR(count / 5000.0, 0.2, 0.03);
  }
}

TEST(MobilityModelsTest, StickyStaysAtConfiguredRate) {
  const auto model = make_sticky_model(0.8);
  stats::Rng rng(2);
  const auto attachments = nodes(10);
  NodeId current = model->initial(attachments, rng);
  int stays = 0;
  const int steps = 10000;
  for (int i = 0; i < steps; ++i) {
    const NodeId next = model->next(current, attachments, rng);
    if (next == current) ++stays;
    current = next;
  }
  // stay prob 0.8 plus 0.2 * 1/10 accidental self-jumps.
  EXPECT_NEAR(static_cast<double>(stays) / steps, 0.82, 0.02);
}

TEST(MobilityModelsTest, StickyRejectsBadStay) {
  EXPECT_THROW((void)make_sticky_model(-0.1), std::invalid_argument);
  EXPECT_THROW((void)make_sticky_model(1.0), std::invalid_argument);
}

TEST(MobilityModelsTest, PreferentialFavorsLowRanks) {
  const auto model = make_preferential_model(1.2);
  stats::Rng rng(3);
  const auto attachments = nodes(8);
  std::map<NodeId, int> counts;
  for (int i = 0; i < 10000; ++i) {
    ++counts[model->next(0, attachments, rng)];
  }
  EXPECT_GT(counts[0], counts[7] * 3);
}

TEST(MobilityModelsTest, PreferentialRejectsNegativeExponent) {
  EXPECT_THROW((void)make_preferential_model(-1.0), std::invalid_argument);
}

TEST(MobilityModelsTest, NeighborWalkMovesAlongEdges) {
  const auto graph = topology::make_chain(6);
  const auto model = make_neighbor_walk_model(graph);
  stats::Rng rng(4);
  const auto attachments = nodes(6);
  NodeId current = 2;
  for (int i = 0; i < 200; ++i) {
    const NodeId next = model->next(current, attachments, rng);
    EXPECT_TRUE(graph.has_edge(current, next));
    current = next;
  }
}

TEST(MobilityModelsTest, NeighborWalkStaysWhenIsolated) {
  const auto graph = topology::make_chain(6);
  const auto model = make_neighbor_walk_model(graph);
  stats::Rng rng(4);
  // Only node 0 is an attachment point: from 0, no attached neighbor.
  const std::vector<NodeId> only_zero{0};
  EXPECT_EQ(model->next(0, only_zero, rng), 0u);
}

TEST(MobilityModelsTest, EmptyAttachmentsThrow) {
  stats::Rng rng(5);
  EXPECT_THROW((void)make_uniform_jump_model()->initial({}, rng),
               std::invalid_argument);
}

TEST(SimulateWithModelsTest, UniformJumpMatchesPlainSimulate) {
  const analytic::TradeoffAnalyzer analyzer(topology::make_chain(21));
  stats::Rng rng1(9);
  stats::Rng rng2(9);
  const auto plain = analyzer.simulate(8000, rng1);
  const auto with_model =
      analyzer.simulate_with(*make_uniform_jump_model(), 8000, rng2);
  EXPECT_DOUBLE_EQ(plain.name_based_update_cost,
                   with_model.name_based_update_cost);
}

TEST(SimulateWithModelsTest, StickyReducesPerEventCost) {
  // Self-transitions never displace a router, so per-event update cost
  // falls as the stay probability rises.
  const analytic::TradeoffAnalyzer analyzer(topology::make_chain(31));
  stats::Rng rng(11);
  const auto jumpy =
      analyzer.simulate_with(*make_uniform_jump_model(), 20000, rng);
  const auto sticky =
      analyzer.simulate_with(*make_sticky_model(0.8), 20000, rng);
  EXPECT_LT(sticky.name_based_update_cost,
            jumpy.name_based_update_cost / 2.0);
}

TEST(SimulateWithModelsTest, NeighborWalkCostsLessThanTeleporting) {
  // Adjacent moves displace only routers near the boundary; uniform jumps
  // displace everything between two random points.
  const auto graph = topology::make_chain(41);
  const analytic::TradeoffAnalyzer analyzer(graph);
  stats::Rng rng(13);
  const auto teleport =
      analyzer.simulate_with(*make_uniform_jump_model(), 20000, rng);
  const auto walk =
      analyzer.simulate_with(*make_neighbor_walk_model(graph), 20000, rng);
  EXPECT_LT(walk.name_based_update_cost, teleport.name_based_update_cost);
}

}  // namespace
}  // namespace lina::analytic
