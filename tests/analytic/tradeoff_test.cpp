#include "lina/analytic/tradeoff.hpp"

#include <gtest/gtest.h>

#include "lina/analytic/closed_forms.hpp"
#include "lina/topology/generators.hpp"

#include <cmath>

namespace lina::analytic {
namespace {

using topology::Graph;
using topology::NodeId;

TEST(TradeoffAnalyzerTest, RejectsBadInputs) {
  const Graph chain = topology::make_chain(4);
  EXPECT_THROW(TradeoffAnalyzer(chain, {}), std::invalid_argument);
  EXPECT_THROW(TradeoffAnalyzer(chain, {9}), std::out_of_range);
  Graph disconnected(3);
  disconnected.add_edge(0, 1);
  EXPECT_THROW(TradeoffAnalyzer{disconnected}, std::invalid_argument);
}

TEST(TradeoffAnalyzerTest, ChainMatchesPaperClosedForms) {
  // The §5.1 derivation exactly: stretch (n^2-1)/3n, aggregate update cost
  // (n^3+3n^2-n)/3n^3.
  for (const std::size_t n : {2u, 5u, 16u, 64u}) {
    const TradeoffAnalyzer analyzer(topology::make_chain(n));
    const TradeoffResult exact = analyzer.exact();
    EXPECT_NEAR(exact.indirection_stretch, chain_indirection_stretch(n),
                1e-9)
        << "n=" << n;
    EXPECT_NEAR(exact.name_based_update_cost,
                chain_name_based_update_cost(n), 1e-9)
        << "n=" << n;
    EXPECT_DOUBLE_EQ(exact.name_based_stretch, 0.0);
    EXPECT_NEAR(exact.indirection_update_cost, 1.0 / static_cast<double>(n),
                1e-12);
  }
}

TEST(TradeoffAnalyzerTest, ChainPerRouterFormula) {
  // §5.1.2: E[update_k] = (k-1)(n-k+1)/n^2 + (n-1)/n^2 + (n-k)k/n^2 with
  // 1-based k.
  const std::size_t n = 9;
  const TradeoffAnalyzer analyzer(topology::make_chain(n));
  const double nd = static_cast<double>(n);
  for (std::size_t k1 = 1; k1 <= n; ++k1) {
    const double k = static_cast<double>(k1);
    const double expected = ((k - 1) * (nd - k + 1) + (nd - 1) +
                             (nd - k) * k) /
                            (nd * nd);
    EXPECT_NEAR(analyzer.expected_update_cost_at(
                    static_cast<NodeId>(k1 - 1)),
                expected, 1e-9)
        << "k=" << k1;
  }
}

TEST(TradeoffAnalyzerTest, CliqueValues) {
  const std::size_t n = 12;
  const TradeoffAnalyzer analyzer(topology::make_clique(n));
  const TradeoffResult exact = analyzer.exact();
  const double nd = static_cast<double>(n);
  // E[dist] = P(H != L) * 1 = (n-1)/n, asymptotically the paper's 1.
  EXPECT_NEAR(exact.indirection_stretch, (nd - 1.0) / nd, 1e-9);
  // Every real move updates every router: P(move) = (n-1)/n, the paper's 1.
  EXPECT_NEAR(exact.name_based_update_cost, (nd - 1.0) / nd, 1e-9);
}

TEST(TradeoffAnalyzerTest, StarHubUpdatesAlmostAlways) {
  const std::size_t n = 21;
  const TradeoffAnalyzer analyzer(topology::make_star(n));
  // Hub (node 0) has a distinct port per endpoint: updates unless the
  // location repeats: 1 - 1/n.
  EXPECT_NEAR(analyzer.expected_update_cost_at(0),
              1.0 - 1.0 / static_cast<double>(n), 1e-9);
  // A leaf only distinguishes "me" vs "via hub": 2 * (1/n) * (n-1)/n.
  const double nd = static_cast<double>(n);
  EXPECT_NEAR(analyzer.expected_update_cost_at(1),
              2.0 * (nd - 1.0) / (nd * nd), 1e-9);
  // Star stretch: two random leaves are 2 apart; expectation
  // = P(H!=L) adjusted for hub attachment.
  const TradeoffResult exact = analyzer.exact();
  EXPECT_GT(exact.indirection_stretch, 1.5);
  EXPECT_LT(exact.indirection_stretch, 2.0);
}

TEST(TradeoffAnalyzerTest, BinaryTreeAggregateCostOrder) {
  // Paper Table 1: ~2 log2(n) / (n-1) with endpoints at all nodes the
  // constant differs slightly, but the 1/n-order scaling must hold and the
  // stretch must be near 2 log2 n.
  const std::size_t n = 255;
  const TradeoffAnalyzer analyzer(topology::make_binary_tree(n));
  const TradeoffResult exact = analyzer.exact();
  EXPECT_LT(exact.name_based_update_cost, 0.2);
  EXPECT_GT(exact.name_based_update_cost, 0.01);
  // The paper's 2 log2 n is the deep-leaf-to-deep-leaf approximation; the
  // exact expectation over uniform node pairs is somewhat below it.
  EXPECT_GT(exact.indirection_stretch, std::log2(n));
  EXPECT_LT(exact.indirection_stretch, 2.0 * std::log2(n));
}

TEST(TradeoffAnalyzerTest, SimulationMatchesExact) {
  stats::Rng rng(99);
  for (const auto& graph :
       {topology::make_chain(15), topology::make_clique(10),
        topology::make_star(15), topology::make_binary_tree(15)}) {
    const TradeoffAnalyzer analyzer(graph);
    const TradeoffResult exact = analyzer.exact();
    const TradeoffResult sim = analyzer.simulate(20000, rng);
    EXPECT_NEAR(sim.name_based_update_cost, exact.name_based_update_cost,
                0.02);
    // Simulated stretch uses one random home; averaged over a long walk it
    // concentrates near E[dist(H, .)] which varies with H, so use a loose
    // bound against the diameter-scaled exact value.
    EXPECT_LT(sim.indirection_stretch,
              2.5 * exact.indirection_stretch + 1.0);
  }
}

TEST(TradeoffAnalyzerTest, SimulateRejectsZeroEvents) {
  const TradeoffAnalyzer analyzer(topology::make_chain(4));
  stats::Rng rng(1);
  EXPECT_THROW((void)analyzer.simulate(0, rng), std::invalid_argument);
}

TEST(TradeoffAnalyzerTest, ForwardingAttainsShortestPaths) {
  // Name-based routing's zero-stretch claim: hop-by-hop forwarding along
  // next_hop() reaches the destination in exactly distance() hops.
  for (const auto& graph :
       {topology::make_chain(12), topology::make_binary_tree(31),
        topology::make_grid(4, 5)}) {
    const TradeoffAnalyzer analyzer(graph);
    for (NodeId u = 0; u < graph.node_count(); u += 3) {
      for (NodeId v = 0; v < graph.node_count(); v += 2) {
        EXPECT_EQ(static_cast<double>(analyzer.forwarding_path_length(u, v)),
                  analyzer.paths().distance(u, v));
      }
    }
  }
}

TEST(TradeoffAnalyzerTest, AttachmentSubsetRestrictsMobility) {
  // Endpoints confined to the two ends of a chain: every interior router
  // lies between them, so only endpoint-adjacent ports matter.
  const Graph chain = topology::make_chain(10);
  const TradeoffAnalyzer analyzer(chain, {0, 9});
  const TradeoffResult exact = analyzer.exact();
  // E[dist] over uniform H, L in {0, 9}: 0.5 * 9 = 4.5.
  EXPECT_NEAR(exact.indirection_stretch, 4.5, 1e-9);
  // Interior routers' ports flip whenever the endpoint crosses sides:
  // P = 0.5; end routers flip local/remote with P = 0.5 as well.
  EXPECT_NEAR(exact.name_based_update_cost, 0.5, 1e-9);
}

TEST(TradeoffAnalyzerTest, MonteCarloOnGrid) {
  stats::Rng rng(5);
  const TradeoffAnalyzer analyzer(topology::make_grid(5, 5));
  const TradeoffResult exact = analyzer.exact();
  const TradeoffResult sim = analyzer.simulate(30000, rng);
  EXPECT_NEAR(sim.name_based_update_cost, exact.name_based_update_cost,
              0.015);
}

}  // namespace
}  // namespace lina::analytic
