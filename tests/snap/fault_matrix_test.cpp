// The fault-injection matrix for the lina::snap durability contract:
// every injected write fault, crash point, truncation, and bit flip is
// either detected at save time (named SnapIoError, durable state
// untouched) or detected at load time (named SnapFormatError), and
// load_or_rebuild always recovers to lookups bit-identical to the live
// table. Never UB, never a silently wrong answer.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lina/obs/metrics.hpp"
#include "lina/snap/fault.hpp"
#include "lina/snap/store.hpp"
#include "snap_test_util.hpp"

namespace lina::snap {
namespace {

using lina::testing::expect_ip_identical;
using lina::testing::expect_name_identical;
using lina::testing::make_ip_fib;
using lina::testing::make_name_fib;
using lina::testing::probe_addresses;
using lina::testing::probe_names;
using lina::testing::read_file;
using lina::testing::TempSnapDir;
using lina::testing::write_file;

/// Shared fixture: a committed generation-1 snapshot ("the good state"),
/// against which every fault's recovery is checked.
class FaultMatrix : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempSnapDir>("fault-matrix");
    live_v1_ = make_ip_fib(31, 220);
    live_v2_ = make_ip_fib(32, 260);
    probes_ = probe_addresses(33, 2048);
    SnapshotStore clean(dir_->path());
    good_ = clean.save_ip_fib("device", live_v1_.freeze());
  }

  /// Asserts the store still serves generation 1 bit-identically — the
  /// recovery contract after any failed save of v2.
  void expect_previous_generation_intact() {
    SnapshotStore reader(dir_->path());
    const Manifest manifest = reader.manifest();
    EXPECT_EQ(manifest.generation, 1u);
    ASSERT_NE(manifest.find("device"), nullptr);
    EXPECT_EQ(manifest.find("device")->generation, 1u);
    expect_ip_identical(live_v1_.freeze(), reader.load_ip_fib("device"),
                        probes_);
  }

  /// A clean save of v2 must succeed after the fault — no poisoned state.
  void expect_clean_save_recovers() {
    SnapshotStore clean(dir_->path());
    clean.save_ip_fib("device", live_v2_.freeze());
    expect_ip_identical(live_v2_.freeze(), clean.load_ip_fib("device"),
                        probes_);
  }

  std::unique_ptr<TempSnapDir> dir_;
  routing::Fib live_v1_;
  routing::Fib live_v2_;
  std::vector<net::Ipv4Address> probes_;
  SavedInfo good_;
};

TEST_F(FaultMatrix, ShortWritesFailTheSaveAndKeepThePreviousGeneration) {
  for (const std::uint64_t budget :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{17},
        good_.bytes / 2, good_.bytes - 1}) {
    FaultPlan plan;
    plan.fail_write_after = budget;
    SnapshotStore faulty(dir_->path(), plan);
    try {
      faulty.save_ip_fib("device", live_v2_.freeze());
      FAIL() << "short write at " << budget << " bytes must fail the save";
    } catch (const SnapIoError& e) {
      EXPECT_NE(std::string(e.what()).find("ENOSPC"), std::string::npos)
          << e.what();
    }
    expect_previous_generation_intact();
  }
  expect_clean_save_recovers();
}

TEST_F(FaultMatrix, FailedFsyncKeepsThePreviousGeneration) {
  FaultPlan plan;
  plan.fail_fsync = true;
  SnapshotStore faulty(dir_->path(), plan);
  EXPECT_THROW(faulty.save_ip_fib("device", live_v2_.freeze()), SnapIoError);
  expect_previous_generation_intact();
  expect_clean_save_recovers();
}

TEST_F(FaultMatrix, FailedRenameKeepsThePreviousGeneration) {
  FaultPlan plan;
  plan.fail_rename = true;
  SnapshotStore faulty(dir_->path(), plan);
  EXPECT_THROW(faulty.save_ip_fib("device", live_v2_.freeze()), SnapIoError);
  expect_previous_generation_intact();
  expect_clean_save_recovers();
}

TEST_F(FaultMatrix, CrashBeforeRenameLeavesOnlyATempFile) {
  FaultPlan plan;
  plan.crash_before_rename = true;
  SnapshotStore faulty(dir_->path(), plan);
  EXPECT_THROW(faulty.save_ip_fib("device", live_v2_.freeze()), SnapIoError);
  // The would-be generation-2 file never appeared.
  SnapshotStore reader(dir_->path());
  EXPECT_FALSE(std::filesystem::exists(reader.table_path("device", 2)));
  expect_previous_generation_intact();
  expect_clean_save_recovers();
}

TEST_F(FaultMatrix, CrashBeforeManifestKeepsLoadingThePreviousGeneration) {
  FaultPlan plan;
  plan.crash_before_manifest = true;
  SnapshotStore faulty(dir_->path(), plan);
  EXPECT_THROW(faulty.save_ip_fib("device", live_v2_.freeze()), SnapIoError);

  // The generation-2 data file hit the disk, but the manifest still names
  // generation 1 — exactly the crash window the protocol defends.
  SnapshotStore reader(dir_->path());
  EXPECT_TRUE(std::filesystem::exists(reader.table_path("device", 2)));
  expect_previous_generation_intact();
  expect_clean_save_recovers();
}

/// Truncation at every interesting byte count: file start, inside the
/// header, every section boundary (and one byte either side), the footer
/// edge, and one byte short of complete. All must load as a named error
/// and recover through load_or_rebuild.
TEST_F(FaultMatrix, TruncationAtEverySectionBoundaryIsDetectedAndRecovered) {
  const std::vector<char> pristine = read_file(good_.path);
  ASSERT_EQ(pristine.size(), good_.bytes);

  std::set<std::uint64_t> cuts = {0,
                                  1,
                                  kSnapHeaderBytes - 1,
                                  kSnapHeaderBytes,
                                  good_.bytes - kSnapFooterBytes,
                                  good_.bytes - 1};
  for (const SectionRecord& section : good_.sections) {
    cuts.insert(section.offset - 1);
    cuts.insert(section.offset);
    cuts.insert(section.offset + 1);
    cuts.insert(section.offset + section.bytes - 1);
    cuts.insert(section.offset + section.bytes);
  }

  obs::EnabledScope recording;  // count the fallbacks the matrix forces
  const std::uint64_t fallbacks_before =
      obs::metric::snap_fallback_rebuilds().value();
  std::uint64_t cases = 0;
  for (const std::uint64_t cut : cuts) {
    ASSERT_LT(cut, good_.bytes);
    std::vector<char> bytes = pristine;
    bytes.resize(cut);
    write_file(good_.path, bytes);

    SnapshotStore reader(dir_->path());
    EXPECT_THROW((void)reader.load_ip_fib("device"), SnapFormatError)
        << "truncation to " << cut << " bytes must be detected";

    const routing::FrozenFib recovered =
        routing::FrozenFib::load_or_rebuild(dir_->path(), "device", live_v1_);
    expect_ip_identical(live_v1_.freeze(), recovered, probes_);
    ++cases;
  }
  write_file(good_.path, pristine);  // restore for any later reader

  EXPECT_EQ(obs::metric::snap_fallback_rebuilds().value(),
            fallbacks_before + cases);
}

TEST_F(FaultMatrix, PostCommitTruncationViaThePlanIsDetected) {
  FaultPlan plan;
  plan.truncate_to = kSnapHeaderBytes + 3;
  SnapshotStore faulty(dir_->path(), plan);
  // The save commits (the corruption models later media loss)...
  faulty.save_ip_fib("device", live_v2_.freeze());
  // ...and the next load sees the torn file and names it.
  SnapshotStore reader(dir_->path());
  EXPECT_THROW((void)reader.load_ip_fib("device"), SnapFormatError);
  const routing::FrozenFib recovered =
      routing::FrozenFib::load_or_rebuild(dir_->path(), "device", live_v2_);
  expect_ip_identical(live_v2_.freeze(), recovered, probes_);
}

TEST_F(FaultMatrix, PostCommitBitFlipsViaThePlanAreDetected) {
  FaultPlan plan;
  plan.flip_bits = {8 * kSnapHeaderBytes + 5,  // inside the section table
                    8 * (good_.bytes / 2),     // deep in a payload
                    8 * (good_.bytes - 6)};    // inside the footer
  SnapshotStore faulty(dir_->path(), plan);
  faulty.save_ip_fib("device", live_v2_.freeze());
  SnapshotStore reader(dir_->path());
  EXPECT_THROW((void)reader.load_ip_fib("device"), SnapFormatError);
  const routing::FrozenFib recovered =
      routing::FrozenFib::load_or_rebuild(dir_->path(), "device", live_v2_);
  expect_ip_identical(live_v2_.freeze(), recovered, probes_);
}

/// Seeded single-bit rot anywhere in the file: with every byte covered by
/// a CRC (header and toc by the file CRC, payloads by section CRCs, the
/// footer fields by the size/magic checks), a flipped bit either loads as
/// a named error or — if some check were ever relaxed — must still
/// produce bit-identical lookups. Silently wrong answers are the one
/// outcome the format must never allow.
TEST_F(FaultMatrix, SeededBitFlipsNeverProduceWrongLookups) {
  const std::vector<char> pristine = read_file(good_.path);
  const routing::FrozenFib expect = live_v1_.freeze();
  std::mt19937_64 rng(0xfeedfaceULL);
  std::uniform_int_distribution<std::uint64_t> pick(0,
                                                    good_.bytes * 8 - 1);
  std::size_t detected = 0;
  constexpr int kTrials = 256;
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::uint64_t bit = pick(rng);
    std::vector<char> bytes = pristine;
    bytes[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(bytes[bit / 8]) ^ (1u << (bit % 8)));
    write_file(good_.path, bytes);

    SnapshotStore reader(dir_->path());
    try {
      const routing::FrozenFib loaded = reader.load_ip_fib("device");
      expect_ip_identical(expect, loaded, probes_);
    } catch (const SnapFormatError&) {
      ++detected;  // named, as designed
    }

    const routing::FrozenFib recovered =
        routing::FrozenFib::load_or_rebuild(dir_->path(), "device", live_v1_);
    expect_ip_identical(expect, recovered, probes_);
  }
  write_file(good_.path, pristine);
  // Every byte of the file is under a checksum, so every flip must have
  // been caught by name.
  EXPECT_EQ(detected, static_cast<std::size_t>(kTrials));
}

/// The same matrix holds for name-FIB snapshots: truncate at every
/// section boundary and flip seeded bits; always a named error plus a
/// bit-identical rebuild.
TEST(FaultMatrixNames, CorruptNameSnapshotsAreDetectedAndRecovered) {
  TempSnapDir dir("fault-names");
  const routing::NameFib live = make_name_fib(41, 180);
  const std::vector<names::ContentName> probes = probe_names(42, 1024);
  SnapshotStore store(dir.path());
  const SavedInfo good = store.save_name_fib("names", live.freeze());
  const std::vector<char> pristine = read_file(good.path);

  std::set<std::uint64_t> cuts = {0, kSnapHeaderBytes,
                                  good.bytes - kSnapFooterBytes,
                                  good.bytes - 1};
  for (const SectionRecord& section : good.sections) {
    cuts.insert(section.offset);
    cuts.insert(section.offset + section.bytes - 1);
  }
  for (const std::uint64_t cut : cuts) {
    std::vector<char> bytes = pristine;
    bytes.resize(cut);
    write_file(good.path, bytes);
    EXPECT_THROW((void)store.load_name_fib("names"), SnapFormatError)
        << "truncation to " << cut;
    const routing::FrozenNameFib recovered =
        routing::FrozenNameFib::load_or_rebuild(dir.path(), "names", live);
    expect_name_identical(live.freeze(), recovered, probes);
  }

  std::mt19937_64 rng(0xabadcafeULL);
  std::uniform_int_distribution<std::uint64_t> pick(0, good.bytes * 8 - 1);
  for (int trial = 0; trial < 128; ++trial) {
    const std::uint64_t bit = pick(rng);
    std::vector<char> bytes = pristine;
    bytes[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(bytes[bit / 8]) ^ (1u << (bit % 8)));
    write_file(good.path, bytes);
    EXPECT_THROW((void)store.load_name_fib("names"), SnapFormatError)
        << "flipped bit " << bit;
    const routing::FrozenNameFib recovered =
        routing::FrozenNameFib::load_or_rebuild(dir.path(), "names", live);
    expect_name_identical(live.freeze(), recovered, probes);
  }
}

}  // namespace
}  // namespace lina::snap
