// Roundtrip and format-validation tests for the lina::snap snapshot
// store: saved tables load back with bit-identical lookups, repeated
// saves are byte-deterministic, the manifest generation protocol holds,
// and every structural violation surfaces as a named SnapFormatError.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lina/snap/format.hpp"
#include "lina/snap/store.hpp"
#include "snap_test_util.hpp"

namespace lina::snap {
namespace {

using lina::testing::expect_ip_identical;
using lina::testing::expect_name_identical;
using lina::testing::make_ip_fib;
using lina::testing::make_name_fib;
using lina::testing::probe_addresses;
using lina::testing::probe_names;
using lina::testing::read_file;
using lina::testing::TempSnapDir;
using lina::testing::write_file;

TEST(SnapFormat, IpRoundtripIsBitIdentical) {
  TempSnapDir dir("ip-roundtrip");
  const routing::Fib live = make_ip_fib(1, 500);
  const routing::FrozenFib frozen = live.freeze();

  SnapshotStore store(dir.path());
  const SavedInfo info = store.save_ip_fib("device", frozen);
  EXPECT_EQ(info.generation, 1u);
  EXPECT_EQ(info.bytes, std::filesystem::file_size(info.path));
  ASSERT_EQ(info.sections.size(), 2u);
  EXPECT_EQ(info.sections[0].id, SectionId::kIpNodes);
  EXPECT_EQ(info.sections[1].id, SectionId::kIpValues);

  const routing::FrozenFib loaded = store.load_ip_fib("device");
  expect_ip_identical(frozen, loaded, probe_addresses(7, 4096));
}

TEST(SnapFormat, NameRoundtripIsBitIdentical) {
  TempSnapDir dir("name-roundtrip");
  const routing::NameFib live = make_name_fib(2, 300);
  const routing::FrozenNameFib frozen = live.freeze();

  SnapshotStore store(dir.path());
  const SavedInfo info = store.save_name_fib("names", frozen);
  ASSERT_EQ(info.sections.size(), 3u);
  EXPECT_EQ(info.sections[0].id, SectionId::kComponents);
  EXPECT_EQ(info.sections[1].id, SectionId::kNameEdges);
  EXPECT_EQ(info.sections[2].id, SectionId::kNameValues);

  const routing::FrozenNameFib loaded = store.load_name_fib("names");
  expect_name_identical(frozen, loaded, probe_names(9, 2048));
}

TEST(SnapFormat, EmptyTablesRoundtrip) {
  TempSnapDir dir("empty");
  SnapshotStore store(dir.path());
  store.save_ip_fib("ip", routing::Fib().freeze());
  store.save_name_fib("names", routing::NameFib().freeze());

  const routing::FrozenFib ip = store.load_ip_fib("ip");
  EXPECT_EQ(ip.size(), 0u);
  EXPECT_EQ(ip.entry_for(net::Ipv4Address(0x01020304u)), nullptr);
  const routing::FrozenNameFib names = store.load_name_fib("names");
  EXPECT_EQ(names.size(), 0u);
}

TEST(SnapFormat, RepeatedSavesAreByteDeterministic) {
  TempSnapDir dir_a("det-a");
  TempSnapDir dir_b("det-b");
  const routing::FrozenFib ip = make_ip_fib(3, 400).freeze();
  const routing::FrozenNameFib names = make_name_fib(4, 200).freeze();

  SnapshotStore a(dir_a.path());
  SnapshotStore b(dir_b.path());
  const SavedInfo ip_a = a.save_ip_fib("t", ip);
  const SavedInfo ip_b = b.save_ip_fib("t", ip);
  EXPECT_EQ(read_file(ip_a.path), read_file(ip_b.path));

  const SavedInfo nm_a = a.save_name_fib("n", names);
  const SavedInfo nm_b = b.save_name_fib("n", names);
  EXPECT_EQ(read_file(nm_a.path), read_file(nm_b.path));
}

TEST(SnapFormat, ManifestTracksGenerationsAndDropsStaleFiles) {
  TempSnapDir dir("manifest");
  SnapshotStore store(dir.path());
  EXPECT_EQ(store.manifest().generation, 0u);
  EXPECT_TRUE(store.manifest().tables.empty());

  const routing::Fib v1 = make_ip_fib(5, 100);
  const SavedInfo first = store.save_ip_fib("device", v1.freeze());
  store.save_name_fib("names", make_name_fib(6, 50).freeze());

  const routing::Fib v2 = make_ip_fib(55, 120);
  const SavedInfo third = store.save_ip_fib("device", v2.freeze());

  const Manifest manifest = store.manifest();
  EXPECT_EQ(manifest.generation, 3u);
  ASSERT_NE(manifest.find("device"), nullptr);
  EXPECT_EQ(manifest.find("device")->generation, 3u);
  EXPECT_EQ(manifest.find("device")->kind, SnapKind::kIpFib);
  ASSERT_NE(manifest.find("names"), nullptr);
  EXPECT_EQ(manifest.find("names")->generation, 2u);
  EXPECT_EQ(manifest.find("names")->kind, SnapKind::kNameFib);

  // The superseded generation-1 file is garbage-collected.
  EXPECT_FALSE(std::filesystem::exists(first.path));
  EXPECT_TRUE(std::filesystem::exists(third.path));

  // And the load reflects the latest committed table, not the first.
  expect_ip_identical(v2.freeze(), store.load_ip_fib("device"),
                      probe_addresses(11, 1024));
}

TEST(SnapFormat, MissingTableThrowsNamedError) {
  TempSnapDir dir("missing");
  SnapshotStore store(dir.path());
  store.save_ip_fib("present", make_ip_fib(8, 20).freeze());
  try {
    (void)store.load_ip_fib("absent");
    FAIL() << "load of a missing table must throw";
  } catch (const SnapFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("no committed snapshot"),
              std::string::npos)
        << e.what();
  }
}

TEST(SnapFormat, WrongKindLoadThrows) {
  TempSnapDir dir("kind");
  SnapshotStore store(dir.path());
  store.save_ip_fib("t", make_ip_fib(9, 20).freeze());
  EXPECT_THROW((void)store.load_name_fib("t"), SnapFormatError);

  store.save_name_fib("n", make_name_fib(10, 20).freeze());
  EXPECT_THROW((void)store.load_ip_fib("n"), SnapFormatError);
}

TEST(SnapFormat, RejectsBadTableNames) {
  TempSnapDir dir("names-valid");
  SnapshotStore store(dir.path());
  const routing::FrozenFib fib = make_ip_fib(12, 10).freeze();
  EXPECT_THROW(store.save_ip_fib("", fib), SnapFormatError);
  EXPECT_THROW(store.save_ip_fib("../escape", fib), SnapFormatError);
  EXPECT_THROW(store.save_ip_fib("a/b", fib), SnapFormatError);
  EXPECT_THROW(store.save_ip_fib(".hidden", fib), SnapFormatError);
}

// Byte offsets inside the fixed header (see encode_header): magic at 0,
// version u16 at 4, endianness marker u16 at 6, kind u16 at 8.
class HeaderTamper : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempSnapDir>("tamper");
    store_ = std::make_unique<SnapshotStore>(dir_->path());
    info_ = store_->save_ip_fib("t", make_ip_fib(13, 50).freeze());
    pristine_ = read_file(info_.path);
  }

  void expect_load_fails_with(std::size_t offset, char value,
                              const std::string& needle) {
    std::vector<char> bytes = pristine_;
    bytes.at(offset) = value;
    write_file(info_.path, bytes);
    try {
      (void)store_->load_ip_fib("t");
      FAIL() << "tampered header byte " << offset << " must fail the load";
    } catch (const SnapFormatError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "offset " << offset << ": " << e.what();
    }
  }

  std::unique_ptr<TempSnapDir> dir_;
  std::unique_ptr<SnapshotStore> store_;
  SavedInfo info_;
  std::vector<char> pristine_;
};

TEST_F(HeaderTamper, BadMagicIsNamed) {
  expect_load_fails_with(0, 'X', "magic");
}

TEST_F(HeaderTamper, UnsupportedVersionIsNamed) {
  expect_load_fails_with(4, 2, "version");
}

TEST_F(HeaderTamper, ByteSwappedEndianMarkerIsNamed) {
  // 0x00FF stored little-endian is {0xFF, 0x00}; swapping the bytes
  // simulates a snapshot written by an opposite-endian host.
  std::vector<char> bytes = pristine_;
  bytes.at(6) = 0;
  bytes.at(7) = static_cast<char>(0xFF);
  write_file(info_.path, bytes);
  try {
    (void)store_->load_ip_fib("t");
    FAIL() << "byte-swapped endian marker must fail the load";
  } catch (const SnapFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("endian"), std::string::npos)
        << e.what();
  }
}

TEST_F(HeaderTamper, UnknownKindFieldIsNamed) {
  expect_load_fails_with(8, 7, "kind");
}

TEST_F(HeaderTamper, ValidButSwappedKindIsCaughtByChecksum) {
  // Flipping kIpFib to kNameFib passes the header's range check but the
  // header is under the section-table CRC, so the tamper is still named.
  expect_load_fails_with(8, 2, "CRC");
}

TEST(SnapFormat, LoadOrRebuildPrefersSnapshot) {
  TempSnapDir dir("warm");
  const routing::Fib live = make_ip_fib(14, 300);
  SnapshotStore store(dir.path());
  store.save_ip_fib("device", live.freeze());

  const routing::FrozenFib warm =
      routing::FrozenFib::load_or_rebuild(dir.path(), "device", live);
  expect_ip_identical(live.freeze(), warm, probe_addresses(15, 2048));

  const routing::NameFib name_live = make_name_fib(16, 150);
  store.save_name_fib("names", name_live.freeze());
  const routing::FrozenNameFib name_warm =
      routing::FrozenNameFib::load_or_rebuild(dir.path(), "names", name_live);
  expect_name_identical(name_live.freeze(), name_warm, probe_names(17, 1024));
}

TEST(SnapFormat, LoadOrRebuildFallsBackWhenStoreIsEmpty) {
  TempSnapDir dir("cold");
  const routing::Fib live = make_ip_fib(18, 200);
  const routing::FrozenFib rebuilt =
      routing::FrozenFib::load_or_rebuild(dir.path(), "device", live);
  expect_ip_identical(live.freeze(), rebuilt, probe_addresses(19, 1024));

  const routing::NameFib name_live = make_name_fib(20, 100);
  const routing::FrozenNameFib name_rebuilt =
      routing::FrozenNameFib::load_or_rebuild(dir.path(), "names", name_live);
  expect_name_identical(name_live.freeze(), name_rebuilt,
                        probe_names(21, 512));
}

TEST(SnapFormat, CorruptManifestIsNamedNeverCrashes) {
  TempSnapDir dir("manifest-corrupt");
  SnapshotStore store(dir.path());
  store.save_ip_fib("t", make_ip_fib(22, 40).freeze());

  std::vector<char> bytes = read_file(store.manifest_path());
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);  // break the CRC
  write_file(store.manifest_path(), bytes);

  EXPECT_THROW((void)store.manifest(), SnapFormatError);
  EXPECT_THROW((void)store.load_ip_fib("t"), SnapFormatError);

  // The save path resets a corrupt manifest and keeps working.
  const routing::Fib live = make_ip_fib(23, 60);
  store.save_ip_fib("t", live.freeze());
  expect_ip_identical(live.freeze(), store.load_ip_fib("t"),
                      probe_addresses(24, 1024));
}

TEST(SnapFormat, VarintRejectsOverlongEncodings) {
  // 10 continuation bytes would shift past 63 bits.
  std::vector<char> overlong(10, static_cast<char>(0x80));
  overlong.push_back(0x01);
  ByteCursor cursor(overlong.data(), overlong.size(), "overlong");
  EXPECT_THROW((void)cursor.varint(), SnapFormatError);
}

TEST(SnapFormat, BitRoundtripAcrossByteBoundaries) {
  BitWriter writer;
  writer.bits(0x2Au, 6);
  writer.bit(true);
  writer.varint(0);
  writer.varint(127);
  writer.varint(128);
  writer.varint(0x0123456789abcdefull);
  writer.bits(0x1FFFFu, 17);
  const std::vector<char> packed = writer.finish();

  BitReader reader(packed.data(), packed.size(), "bits");
  EXPECT_EQ(reader.bits(6), 0x2Au);
  EXPECT_TRUE(reader.bit());
  EXPECT_EQ(reader.varint(), 0u);
  EXPECT_EQ(reader.varint(), 127u);
  EXPECT_EQ(reader.varint(), 128u);
  EXPECT_EQ(reader.varint(), 0x0123456789abcdefull);
  EXPECT_EQ(reader.bits(17), 0x1FFFFu);
  EXPECT_THROW((void)reader.bits(32), SnapFormatError);  // past the end
}

}  // namespace
}  // namespace lina::snap
