// Thread-safety of the snapshot read path: many threads load the same
// committed tables (separate SnapshotStore handles, shared directory) and
// run batched lookups concurrently. Run under the tsan preset, this pins
// the load path — mmap, validation, decode, interner re-interning — as
// data-race free.

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "lina/snap/store.hpp"
#include "snap_test_util.hpp"

namespace lina::snap {
namespace {

using lina::testing::expect_ip_identical;
using lina::testing::expect_name_identical;
using lina::testing::make_ip_fib;
using lina::testing::make_name_fib;
using lina::testing::probe_addresses;
using lina::testing::probe_names;
using lina::testing::TempSnapDir;

TEST(SnapConcurrency, ParallelLoadsAgreeWithTheLiveTables) {
  TempSnapDir dir("concurrent");
  const routing::Fib ip_live = make_ip_fib(51, 400);
  const routing::NameFib name_live = make_name_fib(52, 200);
  {
    SnapshotStore store(dir.path());
    store.save_ip_fib("device", ip_live.freeze());
    store.save_name_fib("names", name_live.freeze());
  }

  const routing::FrozenFib ip_expect = ip_live.freeze();
  const routing::FrozenNameFib name_expect = name_live.freeze();
  const std::vector<net::Ipv4Address> addr_probes = probe_addresses(53, 1024);
  const std::vector<names::ContentName> name_probes = probe_names(54, 512);

  constexpr int kThreads = 8;
  constexpr int kRounds = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        SnapshotStore store(dir.path());
        const routing::FrozenFib ip = store.load_ip_fib("device");
        expect_ip_identical(ip_expect, ip, addr_probes);
        const routing::FrozenNameFib names = store.load_name_fib("names");
        expect_name_identical(name_expect, names, name_probes);
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

TEST(SnapConcurrency, SharedFrozenTablesServeParallelReaders) {
  TempSnapDir dir("shared-readers");
  const routing::Fib ip_live = make_ip_fib(55, 300);
  SnapshotStore store(dir.path());
  store.save_ip_fib("device", ip_live.freeze());

  // One load, many readers — the post-decode FrozenFib must be freely
  // shareable, exactly like a freshly frozen table.
  const routing::FrozenFib shared = store.load_ip_fib("device");
  const routing::FrozenFib expect = ip_live.freeze();
  const std::vector<net::Ipv4Address> probes = probe_addresses(56, 2048);

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&] { expect_ip_identical(expect, shared, probes); });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace
}  // namespace lina::snap
