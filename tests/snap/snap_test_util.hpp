#pragma once

// Shared helpers for the lina::snap suite: unique scratch directories,
// byte-level file surgery, deterministic fixture tables, and the
// bit-identity assertions the roundtrip/fault-matrix tests are built on.

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <random>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lina/names/content_name.hpp"
#include "lina/net/ipv4.hpp"
#include "lina/routing/fib.hpp"
#include "lina/routing/name_fib.hpp"

namespace lina::testing {

class TempSnapDir {
 public:
  explicit TempSnapDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("lina-snap-test-" + tag + "-" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempSnapDir() {
    std::error_code ignored;
    std::filesystem::remove_all(path_, ignored);
  }
  TempSnapDir(const TempSnapDir&) = delete;
  TempSnapDir& operator=(const TempSnapDir&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

inline std::vector<char> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

inline void write_file(const std::filesystem::path& path,
                       const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A deterministic pseudo-random IP FIB: `entries` prefixes of mixed
/// length with varied entry attributes (all three route classes, nonzero
/// path lengths and MEDs) so every value field takes the serializer's
/// non-trivial paths.
inline routing::Fib make_ip_fib(std::uint64_t seed, std::size_t entries) {
  std::mt19937_64 rng(seed);
  routing::Fib fib;
  while (fib.size() < entries) {
    const auto len = static_cast<std::uint8_t>(8 + rng() % 17);  // /8../24
    const net::Prefix prefix(
        net::Ipv4Address(static_cast<std::uint32_t>(rng())), len);
    routing::FibEntry entry;
    entry.port = static_cast<routing::Port>(rng() % 4096);
    entry.route_class = static_cast<routing::RouteClass>(rng() % 3);
    entry.path_length = static_cast<std::uint32_t>(1 + rng() % 9);
    entry.med = static_cast<std::uint32_t>(rng() % 1000);
    fib.insert(prefix, entry);
  }
  return fib;
}

/// Deterministic probe addresses: half uniform (mostly uncovered), half
/// biased into the low /8s where make_ip_fib's short prefixes cluster.
inline std::vector<net::Ipv4Address> probe_addresses(std::uint64_t seed,
                                                     std::size_t count) {
  std::mt19937_64 rng(seed);
  std::vector<net::Ipv4Address> addrs;
  addrs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t bits = static_cast<std::uint32_t>(rng());
    if (i % 2 == 0) bits &= 0x3fffffffu;
    addrs.emplace_back(bits);
  }
  return addrs;
}

/// A deterministic hierarchical name FIB over a small vocabulary, with
/// names of depth 1..4 so the edge table has real shared-prefix structure.
inline routing::NameFib make_name_fib(std::uint64_t seed,
                                      std::size_t entries) {
  static const std::vector<std::string> kTlds = {"com", "net", "org", "edu"};
  static const std::vector<std::string> kBrands = {
      "alpha", "bravo", "chi", "delta", "echo", "foxtrot", "golf", "hotel"};
  static const std::vector<std::string> kSubs = {"video", "img",  "static",
                                                 "cdn",   "live", "beta"};
  std::mt19937_64 rng(seed);
  routing::NameFib fib;
  while (fib.size() < entries) {
    std::vector<std::string> parts = {kTlds[rng() % kTlds.size()],
                                      kBrands[rng() % kBrands.size()]};
    const std::size_t depth = 1 + rng() % 4;
    while (parts.size() < depth) parts.push_back(kSubs[rng() % kSubs.size()]);
    fib.announce(names::ContentName(std::move(parts)),
                 static_cast<routing::Port>(rng() % 512));
  }
  return fib;
}

/// Probe names drawn from the same vocabulary (likely hits at every
/// depth) plus extensions below announced leaves and sure misses.
inline std::vector<names::ContentName> probe_names(std::uint64_t seed,
                                                   std::size_t count) {
  std::mt19937_64 rng(seed);
  std::vector<names::ContentName> names;
  names.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    static const std::vector<std::string> kTlds = {"com", "net", "org",
                                                   "edu", "gov"};
    static const std::vector<std::string> kBrands = {
        "alpha", "bravo", "chi",  "delta", "echo",
        "foxtrot", "golf", "hotel", "india"};
    static const std::vector<std::string> kSubs = {
        "video", "img", "static", "cdn", "live", "beta", "deep", "x"};
    std::vector<std::string> parts = {kTlds[rng() % kTlds.size()],
                                      kBrands[rng() % kBrands.size()]};
    const std::size_t depth = 1 + rng() % 6;
    while (parts.size() < depth) parts.push_back(kSubs[rng() % kSubs.size()]);
    names.emplace_back(std::move(parts));
  }
  return names;
}

/// Asserts `got` answers every probe bit-identically to `expect`.
inline void expect_ip_identical(const routing::FrozenFib& expect,
                                const routing::FrozenFib& got,
                                std::span<const net::Ipv4Address> probes) {
  ASSERT_EQ(expect.size(), got.size());
  std::vector<const routing::FibEntry*> want(probes.size());
  std::vector<const routing::FibEntry*> have(probes.size());
  expect.entries_for_many(probes, want);
  got.entries_for_many(probes, have);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(want[i] == nullptr, have[i] == nullptr)
        << "coverage diverged at probe " << i;
    if (want[i] != nullptr) {
      ASSERT_EQ(*want[i], *have[i]) << "entry diverged at probe " << i;
    }
    // The full lookup must agree on the matched prefix too.
    const auto a = expect.lookup(probes[i]);
    const auto b = got.lookup(probes[i]);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a.has_value()) {
      ASSERT_EQ(a->first.to_string(), b->first.to_string());
      ASSERT_EQ(a->second, b->second);
    }
  }
}

/// Asserts `got` answers every probe name bit-identically to `expect`.
inline void expect_name_identical(
    const routing::FrozenNameFib& expect, const routing::FrozenNameFib& got,
    std::span<const names::ContentName> probes) {
  ASSERT_EQ(expect.size(), got.size());
  std::vector<const routing::Port*> want(probes.size());
  std::vector<const routing::Port*> have(probes.size());
  expect.ports_for_many(probes, want);
  got.ports_for_many(probes, have);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(want[i] == nullptr, have[i] == nullptr)
        << "coverage diverged at probe " << i;
    if (want[i] != nullptr) {
      ASSERT_EQ(*want[i], *have[i]) << "port diverged at probe " << i;
    }
  }
}

}  // namespace lina::testing
