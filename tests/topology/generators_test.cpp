#include "lina/topology/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace lina::topology {
namespace {

TEST(GeneratorsTest, ChainStructure) {
  const Graph g = make_chain(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.degree(4), 1u);
  EXPECT_TRUE(g.connected());
}

TEST(GeneratorsTest, ChainOfOne) {
  const Graph g = make_chain(1);
  EXPECT_EQ(g.node_count(), 1u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(GeneratorsTest, CliqueStructure) {
  const Graph g = make_clique(6);
  EXPECT_EQ(g.node_count(), 6u);
  EXPECT_EQ(g.edge_count(), 15u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
}

TEST(GeneratorsTest, StarStructure) {
  const Graph g = make_star(7);
  EXPECT_EQ(g.node_count(), 7u);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
  for (NodeId v = 1; v < 7; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(GeneratorsTest, BinaryTreeStructure) {
  const Graph g = make_binary_tree(7);  // perfect tree of depth 2
  EXPECT_EQ(g.node_count(), 7u);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(g.degree(0), 2u);   // root
  EXPECT_EQ(g.degree(1), 3u);   // internal
  EXPECT_EQ(g.degree(3), 1u);   // leaf
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_TRUE(g.has_edge(2, 6));
}

TEST(GeneratorsTest, GridStructure) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  // Edges: 3 rows x 3 horizontal + 2 x 4 vertical = 17.
  EXPECT_EQ(g.edge_count(), 17u);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.degree(0), 2u);  // corner
}

TEST(GeneratorsTest, ErdosRenyiConnectedAtAnyDensity) {
  stats::Rng rng(1);
  for (const double p : {0.0, 0.05, 0.5}) {
    const Graph g = make_erdos_renyi(40, p, rng);
    EXPECT_EQ(g.node_count(), 40u);
    EXPECT_TRUE(g.connected());
    EXPECT_GE(g.edge_count(), 39u);  // spanning tree at minimum
  }
}

TEST(GeneratorsTest, ErdosRenyiFullDensityIsClique) {
  stats::Rng rng(2);
  const Graph g = make_erdos_renyi(10, 1.0, rng);
  EXPECT_EQ(g.edge_count(), 45u);
}

TEST(GeneratorsTest, BarabasiAlbertStructure) {
  stats::Rng rng(3);
  const Graph g = make_barabasi_albert(100, 2, rng);
  EXPECT_EQ(g.node_count(), 100u);
  EXPECT_TRUE(g.connected());
  // m edges per new node after the seed star of size m+1.
  EXPECT_EQ(g.edge_count(), 2u + (100u - 3u) * 2u);
  // Preferential attachment produces hubs.
  std::size_t max_degree = 0;
  for (NodeId v = 0; v < 100; ++v) {
    max_degree = std::max(max_degree, g.degree(v));
  }
  EXPECT_GT(max_degree, 10u);
}

TEST(GeneratorsTest, Rejections) {
  stats::Rng rng(4);
  EXPECT_THROW((void)make_chain(0), std::invalid_argument);
  EXPECT_THROW((void)make_clique(0), std::invalid_argument);
  EXPECT_THROW((void)make_star(0), std::invalid_argument);
  EXPECT_THROW((void)make_binary_tree(0), std::invalid_argument);
  EXPECT_THROW((void)make_grid(0, 3), std::invalid_argument);
  EXPECT_THROW((void)make_erdos_renyi(5, 1.5, rng), std::invalid_argument);
  EXPECT_THROW((void)make_barabasi_albert(3, 0, rng), std::invalid_argument);
  EXPECT_THROW((void)make_barabasi_albert(2, 2, rng), std::invalid_argument);
}

}  // namespace
}  // namespace lina::topology
