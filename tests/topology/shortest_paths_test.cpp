#include "lina/topology/shortest_paths.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lina/topology/generators.hpp"

namespace lina::topology {
namespace {

TEST(DijkstraTest, ChainDistances) {
  const Graph g = make_chain(5);
  const SsspTree tree = dijkstra(g, 0);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ(tree.distance[v], static_cast<double>(v));
  }
  EXPECT_EQ(tree.first_hop[0], 0u);  // local
  EXPECT_EQ(tree.first_hop[4], 1u);  // toward the chain
  EXPECT_EQ(tree.parent[4], 3u);
}

TEST(DijkstraTest, WeightedShortcut) {
  Graph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 1, 1.0);
  const SsspTree tree = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(tree.distance[1], 2.0);
  EXPECT_EQ(tree.first_hop[1], 2u);
}

TEST(DijkstraTest, UnreachableIsInfinite) {
  Graph g(3);
  g.add_edge(0, 1);
  const SsspTree tree = dijkstra(g, 0);
  EXPECT_TRUE(std::isinf(tree.distance[2]));
  EXPECT_EQ(tree.first_hop[2], kNoNode);
  EXPECT_EQ(tree.parent[2], kNoNode);
}

TEST(DijkstraTest, DeterministicTieBreakPrefersLowerParent) {
  // Two equal-cost paths 0-1-3 and 0-2-3: parent of 3 must be 1.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const SsspTree tree = dijkstra(g, 0);
  EXPECT_EQ(tree.parent[3], 1u);
  EXPECT_EQ(tree.first_hop[3], 1u);
}

TEST(DijkstraTest, SourceOutOfRange) {
  const Graph g = make_chain(3);
  EXPECT_THROW((void)dijkstra(g, 7), std::out_of_range);
}

TEST(AllPairsTest, SymmetricDistances) {
  stats::Rng rng(5);
  const Graph g = make_erdos_renyi(30, 0.1, rng);
  const AllPairsShortestPaths apsp(g);
  for (NodeId u = 0; u < 30; u += 3) {
    for (NodeId v = 0; v < 30; v += 3) {
      EXPECT_DOUBLE_EQ(apsp.distance(u, v), apsp.distance(v, u));
    }
  }
}

TEST(AllPairsTest, NextHopIsLocalAtSelf) {
  const Graph g = make_star(5);
  const AllPairsShortestPaths apsp(g);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(apsp.next_hop(v, v), v);
}

TEST(AllPairsTest, NextHopAdvancesTowardDestination) {
  const Graph g = make_binary_tree(15);
  const AllPairsShortestPaths apsp(g);
  for (NodeId u = 0; u < 15; ++u) {
    for (NodeId v = 0; v < 15; ++v) {
      if (u == v) continue;
      const NodeId hop = apsp.next_hop(u, v);
      ASSERT_NE(hop, kNoNode);
      EXPECT_TRUE(g.has_edge(u, hop));
      EXPECT_DOUBLE_EQ(apsp.distance(hop, v), apsp.distance(u, v) - 1.0);
    }
  }
}

TEST(AllPairsTest, ChainDiameter) {
  const AllPairsShortestPaths apsp(make_chain(10));
  EXPECT_DOUBLE_EQ(apsp.diameter(), 9.0);
}

TEST(AllPairsTest, CliqueDiameterIsOne) {
  const AllPairsShortestPaths apsp(make_clique(6));
  EXPECT_DOUBLE_EQ(apsp.diameter(), 1.0);
}

TEST(AllPairsTest, OutOfRangeQueries) {
  const AllPairsShortestPaths apsp(make_chain(3));
  EXPECT_THROW((void)apsp.distance(0, 9), std::out_of_range);
  EXPECT_THROW((void)apsp.next_hop(9, 0), std::out_of_range);
}

}  // namespace
}  // namespace lina::topology
