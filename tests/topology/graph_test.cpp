#include "lina/topology/graph.hpp"

#include <gtest/gtest.h>

namespace lina::topology {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.connected());
}

TEST(GraphTest, AddNodesAndEdges) {
  Graph g(3);
  EXPECT_EQ(g.node_count(), 3u);
  g.add_edge(0, 1);
  g.add_edge(1, 2, 2.5);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));  // undirected
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 2), 2.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(2, 1), 2.5);
}

TEST(GraphTest, AddNodeReturnsId) {
  Graph g;
  EXPECT_EQ(g.add_node(), 0u);
  EXPECT_EQ(g.add_node(), 1u);
  EXPECT_EQ(g.node_count(), 2u);
}

TEST(GraphTest, DegreesAndNeighbors) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.neighbors(0).size(), 3u);
}

TEST(GraphTest, RejectsInvalidEdges) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);          // self-loop
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);              // bad id
  EXPECT_THROW(g.add_edge(0, 1, 0.0), std::invalid_argument);     // weight
  EXPECT_THROW(g.add_edge(0, 1, -1.0), std::invalid_argument);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);          // duplicate
}

TEST(GraphTest, EdgeWeightThrowsOnMissing) {
  Graph g(2);
  EXPECT_THROW((void)g.edge_weight(0, 1), std::invalid_argument);
}

TEST(GraphTest, Connectivity) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.connected());
}

TEST(GraphTest, SingleNodeConnected) {
  Graph g(1);
  EXPECT_TRUE(g.connected());
}

}  // namespace
}  // namespace lina::topology
