#include "lina/topology/geo.hpp"

#include <gtest/gtest.h>

namespace lina::topology {
namespace {

TEST(GeoTest, ZeroDistanceAtSamePoint) {
  const GeoPoint p{40.0, -74.0};
  EXPECT_NEAR(great_circle_km(p, p), 0.0, 1e-9);
}

TEST(GeoTest, KnownDistanceNewYorkLondon) {
  const GeoPoint nyc{40.71, -74.01};
  const GeoPoint london{51.51, -0.13};
  const double d = great_circle_km(nyc, london);
  EXPECT_NEAR(d, 5570.0, 100.0);  // ~5,570 km
}

TEST(GeoTest, Symmetric) {
  const GeoPoint a{10.0, 20.0};
  const GeoPoint b{-30.0, 140.0};
  EXPECT_DOUBLE_EQ(great_circle_km(a, b), great_circle_km(b, a));
}

TEST(GeoTest, AntipodalIsHalfCircumference) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, 180.0};
  EXPECT_NEAR(great_circle_km(a, b), 20015.0, 30.0);
}

TEST(GeoTest, PropagationDelayScalesWithDistance) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint near{0.0, 1.0};
  const GeoPoint far{0.0, 90.0};
  EXPECT_LT(propagation_delay_ms(a, near), propagation_delay_ms(a, far));
}

TEST(GeoTest, PropagationDelayMatchesFiberSpeed) {
  // 2000 km at 200 km/ms with inflation 1.0 -> 10 ms one way.
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, 17.9864};  // ~2000 km along the equator
  EXPECT_NEAR(propagation_delay_ms(a, b, 1.0), 10.0, 0.3);
}

TEST(GeoTest, InflationMultiplies) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{10.0, 10.0};
  EXPECT_NEAR(propagation_delay_ms(a, b, 2.0),
              2.0 * propagation_delay_ms(a, b, 1.0), 1e-9);
}

}  // namespace
}  // namespace lina::topology
