#include "lina/topology/as_graph.hpp"

#include <gtest/gtest.h>

#include <set>

namespace lina::topology {
namespace {

TEST(AsGraphTest, AddAsesAndLinks) {
  AsGraph g;
  const AsId t1 = g.add_as(AsTier::kTier1, {0, 0});
  const AsId t2 = g.add_as(AsTier::kTier2, {1, 1});
  const AsId stub = g.add_as(AsTier::kStub, {2, 2});
  g.add_provider_link(/*customer=*/t2, /*provider=*/t1);
  g.add_provider_link(stub, t2);
  EXPECT_EQ(g.as_count(), 3u);
  EXPECT_EQ(g.link_count(), 2u);
  EXPECT_EQ(g.degree(t2), 2u);
}

TEST(AsGraphTest, RelationshipPerspectives) {
  AsGraph g;
  const AsId a = g.add_as(AsTier::kTier2, {});
  const AsId b = g.add_as(AsTier::kStub, {});
  const AsId c = g.add_as(AsTier::kTier2, {});
  g.add_provider_link(/*customer=*/b, /*provider=*/a);
  g.add_peer_link(a, c);
  // From b's perspective a is a provider; from a's, b is a customer.
  EXPECT_EQ(g.relationship(b, a), AsRelationship::kProvider);
  EXPECT_EQ(g.relationship(a, b), AsRelationship::kCustomer);
  EXPECT_EQ(g.relationship(a, c), AsRelationship::kPeer);
  EXPECT_EQ(g.relationship(c, a), AsRelationship::kPeer);
  EXPECT_EQ(g.relationship(b, c), std::nullopt);
}

TEST(AsGraphTest, RejectsBadLinks) {
  AsGraph g;
  const AsId a = g.add_as(AsTier::kTier1, {});
  const AsId b = g.add_as(AsTier::kTier2, {});
  EXPECT_THROW(g.add_peer_link(a, a), std::invalid_argument);
  EXPECT_THROW(g.add_provider_link(a, 99), std::out_of_range);
  g.add_provider_link(b, a);
  EXPECT_THROW(g.add_peer_link(a, b), std::invalid_argument);  // duplicate
}

TEST(AsGraphTest, TierAndLocationAccessors) {
  AsGraph g;
  const AsId a = g.add_as(AsTier::kStub, {12.5, -30.0});
  EXPECT_EQ(g.tier(a), AsTier::kStub);
  EXPECT_DOUBLE_EQ(g.location(a).latitude_deg, 12.5);
  EXPECT_THROW((void)g.tier(42), std::out_of_range);
}

TEST(AsGraphTest, AsesOfTier) {
  AsGraph g;
  g.add_as(AsTier::kTier1, {});
  g.add_as(AsTier::kStub, {});
  g.add_as(AsTier::kStub, {});
  EXPECT_EQ(g.ases_of_tier(AsTier::kTier1).size(), 1u);
  EXPECT_EQ(g.ases_of_tier(AsTier::kStub).size(), 2u);
  EXPECT_EQ(g.ases_of_tier(AsTier::kTier2).size(), 0u);
}

TEST(MetroAnchorsTest, TwelveWorldRegions) {
  const auto anchors = metro_anchors();
  EXPECT_EQ(anchors.size(), 12u);
  for (const GeoPoint& p : anchors) {
    EXPECT_GE(p.latitude_deg, -90.0);
    EXPECT_LE(p.latitude_deg, 90.0);
    EXPECT_GE(p.longitude_deg, -180.0);
    EXPECT_LE(p.longitude_deg, 180.0);
  }
}

class HierarchicalInternetTest : public ::testing::Test {
 protected:
  static const AsGraph& graph() {
    static const AsGraph g = [] {
      stats::Rng rng(42);
      InternetConfig config;
      config.tier1_count = 8;
      config.tier2_count = 40;
      config.stub_count = 200;
      return make_hierarchical_internet(config, rng);
    }();
    return g;
  }
};

TEST_F(HierarchicalInternetTest, TierCounts) {
  EXPECT_EQ(graph().as_count(), 8u + 40u + 200u);
  EXPECT_EQ(graph().ases_of_tier(AsTier::kTier1).size(), 8u);
  EXPECT_EQ(graph().ases_of_tier(AsTier::kTier2).size(), 40u);
  EXPECT_EQ(graph().ases_of_tier(AsTier::kStub).size(), 200u);
}

TEST_F(HierarchicalInternetTest, Tier1FullPeerMesh) {
  const auto tier1 = graph().ases_of_tier(AsTier::kTier1);
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) {
      EXPECT_EQ(graph().relationship(tier1[i], tier1[j]),
                AsRelationship::kPeer);
    }
  }
}

TEST_F(HierarchicalInternetTest, EveryNonTier1HasAProvider) {
  for (AsId as = 0; as < graph().as_count(); ++as) {
    if (graph().tier(as) == AsTier::kTier1) continue;
    bool has_provider = false;
    for (const AsGraph::Link& link : graph().links(as)) {
      if (link.rel == AsRelationship::kProvider) has_provider = true;
    }
    EXPECT_TRUE(has_provider) << "AS " << as;
  }
}

TEST_F(HierarchicalInternetTest, StubsBuyFromTier2Only) {
  for (const AsId stub : graph().ases_of_tier(AsTier::kStub)) {
    for (const AsGraph::Link& link : graph().links(stub)) {
      EXPECT_EQ(link.rel, AsRelationship::kProvider);
      EXPECT_EQ(graph().tier(link.neighbor), AsTier::kTier2);
    }
  }
}

TEST_F(HierarchicalInternetTest, Tier2ProvidersAreTier1) {
  for (const AsId t2 : graph().ases_of_tier(AsTier::kTier2)) {
    for (const AsGraph::Link& link : graph().links(t2)) {
      if (link.rel == AsRelationship::kProvider) {
        EXPECT_EQ(graph().tier(link.neighbor), AsTier::kTier1);
      }
    }
  }
}

TEST_F(HierarchicalInternetTest, MultihomingWithinBounds) {
  for (const AsId stub : graph().ases_of_tier(AsTier::kStub)) {
    std::size_t providers = 0;
    for (const AsGraph::Link& link : graph().links(stub)) {
      if (link.rel == AsRelationship::kProvider) ++providers;
    }
    EXPECT_GE(providers, 1u);
    EXPECT_LE(providers, 2u);
  }
}

TEST_F(HierarchicalInternetTest, DeterministicForSeed) {
  stats::Rng rng1(7);
  stats::Rng rng2(7);
  InternetConfig config;
  config.tier1_count = 4;
  config.tier2_count = 10;
  config.stub_count = 30;
  const AsGraph a = make_hierarchical_internet(config, rng1);
  const AsGraph b = make_hierarchical_internet(config, rng2);
  ASSERT_EQ(a.as_count(), b.as_count());
  ASSERT_EQ(a.link_count(), b.link_count());
  for (AsId as = 0; as < a.as_count(); ++as) {
    EXPECT_EQ(a.degree(as), b.degree(as));
  }
}

TEST(HierarchicalInternetConfigTest, RejectsBadConfigs) {
  stats::Rng rng(1);
  InternetConfig config;
  config.tier1_count = 0;
  EXPECT_THROW((void)make_hierarchical_internet(config, rng),
               std::invalid_argument);
  config = {};
  config.stub_min_providers = 3;
  config.stub_max_providers = 2;
  EXPECT_THROW((void)make_hierarchical_internet(config, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace lina::topology
