# Empty dependencies file for lina_mobility.
# This may be replaced when dependencies are built.
