
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/src/content_trace.cpp" "src/mobility/CMakeFiles/lina_mobility.dir/src/content_trace.cpp.o" "gcc" "src/mobility/CMakeFiles/lina_mobility.dir/src/content_trace.cpp.o.d"
  "/root/repo/src/mobility/src/content_workload.cpp" "src/mobility/CMakeFiles/lina_mobility.dir/src/content_workload.cpp.o" "gcc" "src/mobility/CMakeFiles/lina_mobility.dir/src/content_workload.cpp.o.d"
  "/root/repo/src/mobility/src/device_multihoming.cpp" "src/mobility/CMakeFiles/lina_mobility.dir/src/device_multihoming.cpp.o" "gcc" "src/mobility/CMakeFiles/lina_mobility.dir/src/device_multihoming.cpp.o.d"
  "/root/repo/src/mobility/src/device_trace.cpp" "src/mobility/CMakeFiles/lina_mobility.dir/src/device_trace.cpp.o" "gcc" "src/mobility/CMakeFiles/lina_mobility.dir/src/device_trace.cpp.o.d"
  "/root/repo/src/mobility/src/device_workload.cpp" "src/mobility/CMakeFiles/lina_mobility.dir/src/device_workload.cpp.o" "gcc" "src/mobility/CMakeFiles/lina_mobility.dir/src/device_workload.cpp.o.d"
  "/root/repo/src/mobility/src/trace_io.cpp" "src/mobility/CMakeFiles/lina_mobility.dir/src/trace_io.cpp.o" "gcc" "src/mobility/CMakeFiles/lina_mobility.dir/src/trace_io.cpp.o.d"
  "/root/repo/src/mobility/src/vantage_merger.cpp" "src/mobility/CMakeFiles/lina_mobility.dir/src/vantage_merger.cpp.o" "gcc" "src/mobility/CMakeFiles/lina_mobility.dir/src/vantage_merger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/lina_net.dir/DependInfo.cmake"
  "/root/repo/build/src/names/CMakeFiles/lina_names.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/lina_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/lina_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lina_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
