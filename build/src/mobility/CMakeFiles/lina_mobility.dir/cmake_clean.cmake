file(REMOVE_RECURSE
  "CMakeFiles/lina_mobility.dir/src/content_trace.cpp.o"
  "CMakeFiles/lina_mobility.dir/src/content_trace.cpp.o.d"
  "CMakeFiles/lina_mobility.dir/src/content_workload.cpp.o"
  "CMakeFiles/lina_mobility.dir/src/content_workload.cpp.o.d"
  "CMakeFiles/lina_mobility.dir/src/device_multihoming.cpp.o"
  "CMakeFiles/lina_mobility.dir/src/device_multihoming.cpp.o.d"
  "CMakeFiles/lina_mobility.dir/src/device_trace.cpp.o"
  "CMakeFiles/lina_mobility.dir/src/device_trace.cpp.o.d"
  "CMakeFiles/lina_mobility.dir/src/device_workload.cpp.o"
  "CMakeFiles/lina_mobility.dir/src/device_workload.cpp.o.d"
  "CMakeFiles/lina_mobility.dir/src/trace_io.cpp.o"
  "CMakeFiles/lina_mobility.dir/src/trace_io.cpp.o.d"
  "CMakeFiles/lina_mobility.dir/src/vantage_merger.cpp.o"
  "CMakeFiles/lina_mobility.dir/src/vantage_merger.cpp.o.d"
  "liblina_mobility.a"
  "liblina_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lina_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
