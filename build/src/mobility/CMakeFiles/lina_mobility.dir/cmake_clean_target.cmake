file(REMOVE_RECURSE
  "liblina_mobility.a"
)
