# Empty dependencies file for lina_net.
# This may be replaced when dependencies are built.
