file(REMOVE_RECURSE
  "liblina_net.a"
)
