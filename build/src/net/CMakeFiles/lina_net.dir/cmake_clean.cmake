file(REMOVE_RECURSE
  "CMakeFiles/lina_net.dir/src/ipv4.cpp.o"
  "CMakeFiles/lina_net.dir/src/ipv4.cpp.o.d"
  "liblina_net.a"
  "liblina_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lina_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
