# Empty compiler generated dependencies file for lina_sim.
# This may be replaced when dependencies are built.
