file(REMOVE_RECURSE
  "CMakeFiles/lina_sim.dir/src/content_session.cpp.o"
  "CMakeFiles/lina_sim.dir/src/content_session.cpp.o.d"
  "CMakeFiles/lina_sim.dir/src/content_store.cpp.o"
  "CMakeFiles/lina_sim.dir/src/content_store.cpp.o.d"
  "CMakeFiles/lina_sim.dir/src/event_queue.cpp.o"
  "CMakeFiles/lina_sim.dir/src/event_queue.cpp.o.d"
  "CMakeFiles/lina_sim.dir/src/fabric.cpp.o"
  "CMakeFiles/lina_sim.dir/src/fabric.cpp.o.d"
  "CMakeFiles/lina_sim.dir/src/resolver_pool.cpp.o"
  "CMakeFiles/lina_sim.dir/src/resolver_pool.cpp.o.d"
  "CMakeFiles/lina_sim.dir/src/session.cpp.o"
  "CMakeFiles/lina_sim.dir/src/session.cpp.o.d"
  "liblina_sim.a"
  "liblina_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lina_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
