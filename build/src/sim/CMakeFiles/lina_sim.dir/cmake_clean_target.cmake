file(REMOVE_RECURSE
  "liblina_sim.a"
)
