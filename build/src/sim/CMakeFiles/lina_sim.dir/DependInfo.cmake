
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/src/content_session.cpp" "src/sim/CMakeFiles/lina_sim.dir/src/content_session.cpp.o" "gcc" "src/sim/CMakeFiles/lina_sim.dir/src/content_session.cpp.o.d"
  "/root/repo/src/sim/src/content_store.cpp" "src/sim/CMakeFiles/lina_sim.dir/src/content_store.cpp.o" "gcc" "src/sim/CMakeFiles/lina_sim.dir/src/content_store.cpp.o.d"
  "/root/repo/src/sim/src/event_queue.cpp" "src/sim/CMakeFiles/lina_sim.dir/src/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/lina_sim.dir/src/event_queue.cpp.o.d"
  "/root/repo/src/sim/src/fabric.cpp" "src/sim/CMakeFiles/lina_sim.dir/src/fabric.cpp.o" "gcc" "src/sim/CMakeFiles/lina_sim.dir/src/fabric.cpp.o.d"
  "/root/repo/src/sim/src/resolver_pool.cpp" "src/sim/CMakeFiles/lina_sim.dir/src/resolver_pool.cpp.o" "gcc" "src/sim/CMakeFiles/lina_sim.dir/src/resolver_pool.cpp.o.d"
  "/root/repo/src/sim/src/session.cpp" "src/sim/CMakeFiles/lina_sim.dir/src/session.cpp.o" "gcc" "src/sim/CMakeFiles/lina_sim.dir/src/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/lina_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/lina_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lina_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lina_net.dir/DependInfo.cmake"
  "/root/repo/build/src/names/CMakeFiles/lina_names.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
