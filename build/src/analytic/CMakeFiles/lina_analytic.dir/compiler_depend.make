# Empty compiler generated dependencies file for lina_analytic.
# This may be replaced when dependencies are built.
