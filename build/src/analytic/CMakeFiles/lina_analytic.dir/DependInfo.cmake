
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytic/src/closed_forms.cpp" "src/analytic/CMakeFiles/lina_analytic.dir/src/closed_forms.cpp.o" "gcc" "src/analytic/CMakeFiles/lina_analytic.dir/src/closed_forms.cpp.o.d"
  "/root/repo/src/analytic/src/compact_routing.cpp" "src/analytic/CMakeFiles/lina_analytic.dir/src/compact_routing.cpp.o" "gcc" "src/analytic/CMakeFiles/lina_analytic.dir/src/compact_routing.cpp.o.d"
  "/root/repo/src/analytic/src/mobility_models.cpp" "src/analytic/CMakeFiles/lina_analytic.dir/src/mobility_models.cpp.o" "gcc" "src/analytic/CMakeFiles/lina_analytic.dir/src/mobility_models.cpp.o.d"
  "/root/repo/src/analytic/src/tradeoff.cpp" "src/analytic/CMakeFiles/lina_analytic.dir/src/tradeoff.cpp.o" "gcc" "src/analytic/CMakeFiles/lina_analytic.dir/src/tradeoff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/lina_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lina_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
