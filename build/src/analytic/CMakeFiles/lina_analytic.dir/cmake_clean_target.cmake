file(REMOVE_RECURSE
  "liblina_analytic.a"
)
