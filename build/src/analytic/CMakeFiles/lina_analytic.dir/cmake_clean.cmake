file(REMOVE_RECURSE
  "CMakeFiles/lina_analytic.dir/src/closed_forms.cpp.o"
  "CMakeFiles/lina_analytic.dir/src/closed_forms.cpp.o.d"
  "CMakeFiles/lina_analytic.dir/src/compact_routing.cpp.o"
  "CMakeFiles/lina_analytic.dir/src/compact_routing.cpp.o.d"
  "CMakeFiles/lina_analytic.dir/src/mobility_models.cpp.o"
  "CMakeFiles/lina_analytic.dir/src/mobility_models.cpp.o.d"
  "CMakeFiles/lina_analytic.dir/src/tradeoff.cpp.o"
  "CMakeFiles/lina_analytic.dir/src/tradeoff.cpp.o.d"
  "liblina_analytic.a"
  "liblina_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lina_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
