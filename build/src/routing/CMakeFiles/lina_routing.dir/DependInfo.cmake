
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/src/fib.cpp" "src/routing/CMakeFiles/lina_routing.dir/src/fib.cpp.o" "gcc" "src/routing/CMakeFiles/lina_routing.dir/src/fib.cpp.o.d"
  "/root/repo/src/routing/src/inference.cpp" "src/routing/CMakeFiles/lina_routing.dir/src/inference.cpp.o" "gcc" "src/routing/CMakeFiles/lina_routing.dir/src/inference.cpp.o.d"
  "/root/repo/src/routing/src/name_fib.cpp" "src/routing/CMakeFiles/lina_routing.dir/src/name_fib.cpp.o" "gcc" "src/routing/CMakeFiles/lina_routing.dir/src/name_fib.cpp.o.d"
  "/root/repo/src/routing/src/policy_routing.cpp" "src/routing/CMakeFiles/lina_routing.dir/src/policy_routing.cpp.o" "gcc" "src/routing/CMakeFiles/lina_routing.dir/src/policy_routing.cpp.o.d"
  "/root/repo/src/routing/src/rib.cpp" "src/routing/CMakeFiles/lina_routing.dir/src/rib.cpp.o" "gcc" "src/routing/CMakeFiles/lina_routing.dir/src/rib.cpp.o.d"
  "/root/repo/src/routing/src/rib_io.cpp" "src/routing/CMakeFiles/lina_routing.dir/src/rib_io.cpp.o" "gcc" "src/routing/CMakeFiles/lina_routing.dir/src/rib_io.cpp.o.d"
  "/root/repo/src/routing/src/synthetic_internet.cpp" "src/routing/CMakeFiles/lina_routing.dir/src/synthetic_internet.cpp.o" "gcc" "src/routing/CMakeFiles/lina_routing.dir/src/synthetic_internet.cpp.o.d"
  "/root/repo/src/routing/src/vantage_router.cpp" "src/routing/CMakeFiles/lina_routing.dir/src/vantage_router.cpp.o" "gcc" "src/routing/CMakeFiles/lina_routing.dir/src/vantage_router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/lina_net.dir/DependInfo.cmake"
  "/root/repo/build/src/names/CMakeFiles/lina_names.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/lina_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lina_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
