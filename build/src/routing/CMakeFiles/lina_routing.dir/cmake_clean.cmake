file(REMOVE_RECURSE
  "CMakeFiles/lina_routing.dir/src/fib.cpp.o"
  "CMakeFiles/lina_routing.dir/src/fib.cpp.o.d"
  "CMakeFiles/lina_routing.dir/src/inference.cpp.o"
  "CMakeFiles/lina_routing.dir/src/inference.cpp.o.d"
  "CMakeFiles/lina_routing.dir/src/name_fib.cpp.o"
  "CMakeFiles/lina_routing.dir/src/name_fib.cpp.o.d"
  "CMakeFiles/lina_routing.dir/src/policy_routing.cpp.o"
  "CMakeFiles/lina_routing.dir/src/policy_routing.cpp.o.d"
  "CMakeFiles/lina_routing.dir/src/rib.cpp.o"
  "CMakeFiles/lina_routing.dir/src/rib.cpp.o.d"
  "CMakeFiles/lina_routing.dir/src/rib_io.cpp.o"
  "CMakeFiles/lina_routing.dir/src/rib_io.cpp.o.d"
  "CMakeFiles/lina_routing.dir/src/synthetic_internet.cpp.o"
  "CMakeFiles/lina_routing.dir/src/synthetic_internet.cpp.o.d"
  "CMakeFiles/lina_routing.dir/src/vantage_router.cpp.o"
  "CMakeFiles/lina_routing.dir/src/vantage_router.cpp.o.d"
  "liblina_routing.a"
  "liblina_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lina_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
