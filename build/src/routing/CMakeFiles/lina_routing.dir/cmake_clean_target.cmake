file(REMOVE_RECURSE
  "liblina_routing.a"
)
