# Empty dependencies file for lina_routing.
# This may be replaced when dependencies are built.
