# Empty dependencies file for lina_core.
# This may be replaced when dependencies are built.
