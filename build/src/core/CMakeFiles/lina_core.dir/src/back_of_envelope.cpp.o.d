src/core/CMakeFiles/lina_core.dir/src/back_of_envelope.cpp.o: \
 /root/repo/src/core/src/back_of_envelope.cpp /usr/include/stdc-predef.h \
 /root/repo/src/core/include/lina/core/back_of_envelope.hpp
