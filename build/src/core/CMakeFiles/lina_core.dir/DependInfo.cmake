
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/src/aggregateability.cpp" "src/core/CMakeFiles/lina_core.dir/src/aggregateability.cpp.o" "gcc" "src/core/CMakeFiles/lina_core.dir/src/aggregateability.cpp.o.d"
  "/root/repo/src/core/src/architecture.cpp" "src/core/CMakeFiles/lina_core.dir/src/architecture.cpp.o" "gcc" "src/core/CMakeFiles/lina_core.dir/src/architecture.cpp.o.d"
  "/root/repo/src/core/src/back_of_envelope.cpp" "src/core/CMakeFiles/lina_core.dir/src/back_of_envelope.cpp.o" "gcc" "src/core/CMakeFiles/lina_core.dir/src/back_of_envelope.cpp.o.d"
  "/root/repo/src/core/src/extent.cpp" "src/core/CMakeFiles/lina_core.dir/src/extent.cpp.o" "gcc" "src/core/CMakeFiles/lina_core.dir/src/extent.cpp.o.d"
  "/root/repo/src/core/src/fib_size.cpp" "src/core/CMakeFiles/lina_core.dir/src/fib_size.cpp.o" "gcc" "src/core/CMakeFiles/lina_core.dir/src/fib_size.cpp.o.d"
  "/root/repo/src/core/src/latency_model.cpp" "src/core/CMakeFiles/lina_core.dir/src/latency_model.cpp.o" "gcc" "src/core/CMakeFiles/lina_core.dir/src/latency_model.cpp.o.d"
  "/root/repo/src/core/src/name_displacement.cpp" "src/core/CMakeFiles/lina_core.dir/src/name_displacement.cpp.o" "gcc" "src/core/CMakeFiles/lina_core.dir/src/name_displacement.cpp.o.d"
  "/root/repo/src/core/src/update_cost.cpp" "src/core/CMakeFiles/lina_core.dir/src/update_cost.cpp.o" "gcc" "src/core/CMakeFiles/lina_core.dir/src/update_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/lina_net.dir/DependInfo.cmake"
  "/root/repo/build/src/names/CMakeFiles/lina_names.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/lina_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/lina_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/strategy/CMakeFiles/lina_strategy.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/lina_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/lina_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lina_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
