file(REMOVE_RECURSE
  "CMakeFiles/lina_core.dir/src/aggregateability.cpp.o"
  "CMakeFiles/lina_core.dir/src/aggregateability.cpp.o.d"
  "CMakeFiles/lina_core.dir/src/architecture.cpp.o"
  "CMakeFiles/lina_core.dir/src/architecture.cpp.o.d"
  "CMakeFiles/lina_core.dir/src/back_of_envelope.cpp.o"
  "CMakeFiles/lina_core.dir/src/back_of_envelope.cpp.o.d"
  "CMakeFiles/lina_core.dir/src/extent.cpp.o"
  "CMakeFiles/lina_core.dir/src/extent.cpp.o.d"
  "CMakeFiles/lina_core.dir/src/fib_size.cpp.o"
  "CMakeFiles/lina_core.dir/src/fib_size.cpp.o.d"
  "CMakeFiles/lina_core.dir/src/latency_model.cpp.o"
  "CMakeFiles/lina_core.dir/src/latency_model.cpp.o.d"
  "CMakeFiles/lina_core.dir/src/name_displacement.cpp.o"
  "CMakeFiles/lina_core.dir/src/name_displacement.cpp.o.d"
  "CMakeFiles/lina_core.dir/src/update_cost.cpp.o"
  "CMakeFiles/lina_core.dir/src/update_cost.cpp.o.d"
  "liblina_core.a"
  "liblina_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lina_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
