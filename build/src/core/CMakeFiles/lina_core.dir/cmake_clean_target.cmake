file(REMOVE_RECURSE
  "liblina_core.a"
)
