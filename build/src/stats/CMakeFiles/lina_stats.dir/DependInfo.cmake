
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/src/cdf.cpp" "src/stats/CMakeFiles/lina_stats.dir/src/cdf.cpp.o" "gcc" "src/stats/CMakeFiles/lina_stats.dir/src/cdf.cpp.o.d"
  "/root/repo/src/stats/src/correlation.cpp" "src/stats/CMakeFiles/lina_stats.dir/src/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/lina_stats.dir/src/correlation.cpp.o.d"
  "/root/repo/src/stats/src/distributions.cpp" "src/stats/CMakeFiles/lina_stats.dir/src/distributions.cpp.o" "gcc" "src/stats/CMakeFiles/lina_stats.dir/src/distributions.cpp.o.d"
  "/root/repo/src/stats/src/render.cpp" "src/stats/CMakeFiles/lina_stats.dir/src/render.cpp.o" "gcc" "src/stats/CMakeFiles/lina_stats.dir/src/render.cpp.o.d"
  "/root/repo/src/stats/src/rng.cpp" "src/stats/CMakeFiles/lina_stats.dir/src/rng.cpp.o" "gcc" "src/stats/CMakeFiles/lina_stats.dir/src/rng.cpp.o.d"
  "/root/repo/src/stats/src/summary.cpp" "src/stats/CMakeFiles/lina_stats.dir/src/summary.cpp.o" "gcc" "src/stats/CMakeFiles/lina_stats.dir/src/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
