# Empty compiler generated dependencies file for lina_stats.
# This may be replaced when dependencies are built.
