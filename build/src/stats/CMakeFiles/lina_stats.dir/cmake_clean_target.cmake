file(REMOVE_RECURSE
  "liblina_stats.a"
)
