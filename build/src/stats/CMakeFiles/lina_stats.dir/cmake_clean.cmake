file(REMOVE_RECURSE
  "CMakeFiles/lina_stats.dir/src/cdf.cpp.o"
  "CMakeFiles/lina_stats.dir/src/cdf.cpp.o.d"
  "CMakeFiles/lina_stats.dir/src/correlation.cpp.o"
  "CMakeFiles/lina_stats.dir/src/correlation.cpp.o.d"
  "CMakeFiles/lina_stats.dir/src/distributions.cpp.o"
  "CMakeFiles/lina_stats.dir/src/distributions.cpp.o.d"
  "CMakeFiles/lina_stats.dir/src/render.cpp.o"
  "CMakeFiles/lina_stats.dir/src/render.cpp.o.d"
  "CMakeFiles/lina_stats.dir/src/rng.cpp.o"
  "CMakeFiles/lina_stats.dir/src/rng.cpp.o.d"
  "CMakeFiles/lina_stats.dir/src/summary.cpp.o"
  "CMakeFiles/lina_stats.dir/src/summary.cpp.o.d"
  "liblina_stats.a"
  "liblina_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lina_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
