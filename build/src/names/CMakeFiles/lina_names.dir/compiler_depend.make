# Empty compiler generated dependencies file for lina_names.
# This may be replaced when dependencies are built.
