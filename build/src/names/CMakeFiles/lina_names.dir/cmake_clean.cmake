file(REMOVE_RECURSE
  "CMakeFiles/lina_names.dir/src/content_name.cpp.o"
  "CMakeFiles/lina_names.dir/src/content_name.cpp.o.d"
  "liblina_names.a"
  "liblina_names.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lina_names.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
