file(REMOVE_RECURSE
  "liblina_names.a"
)
