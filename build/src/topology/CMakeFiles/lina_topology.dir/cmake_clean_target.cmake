file(REMOVE_RECURSE
  "liblina_topology.a"
)
