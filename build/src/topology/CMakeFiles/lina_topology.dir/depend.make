# Empty dependencies file for lina_topology.
# This may be replaced when dependencies are built.
