
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/src/as_graph.cpp" "src/topology/CMakeFiles/lina_topology.dir/src/as_graph.cpp.o" "gcc" "src/topology/CMakeFiles/lina_topology.dir/src/as_graph.cpp.o.d"
  "/root/repo/src/topology/src/generators.cpp" "src/topology/CMakeFiles/lina_topology.dir/src/generators.cpp.o" "gcc" "src/topology/CMakeFiles/lina_topology.dir/src/generators.cpp.o.d"
  "/root/repo/src/topology/src/geo.cpp" "src/topology/CMakeFiles/lina_topology.dir/src/geo.cpp.o" "gcc" "src/topology/CMakeFiles/lina_topology.dir/src/geo.cpp.o.d"
  "/root/repo/src/topology/src/graph.cpp" "src/topology/CMakeFiles/lina_topology.dir/src/graph.cpp.o" "gcc" "src/topology/CMakeFiles/lina_topology.dir/src/graph.cpp.o.d"
  "/root/repo/src/topology/src/shortest_paths.cpp" "src/topology/CMakeFiles/lina_topology.dir/src/shortest_paths.cpp.o" "gcc" "src/topology/CMakeFiles/lina_topology.dir/src/shortest_paths.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/lina_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
