file(REMOVE_RECURSE
  "CMakeFiles/lina_topology.dir/src/as_graph.cpp.o"
  "CMakeFiles/lina_topology.dir/src/as_graph.cpp.o.d"
  "CMakeFiles/lina_topology.dir/src/generators.cpp.o"
  "CMakeFiles/lina_topology.dir/src/generators.cpp.o.d"
  "CMakeFiles/lina_topology.dir/src/geo.cpp.o"
  "CMakeFiles/lina_topology.dir/src/geo.cpp.o.d"
  "CMakeFiles/lina_topology.dir/src/graph.cpp.o"
  "CMakeFiles/lina_topology.dir/src/graph.cpp.o.d"
  "CMakeFiles/lina_topology.dir/src/shortest_paths.cpp.o"
  "CMakeFiles/lina_topology.dir/src/shortest_paths.cpp.o.d"
  "liblina_topology.a"
  "liblina_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lina_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
