file(REMOVE_RECURSE
  "CMakeFiles/lina_strategy.dir/src/forwarding_strategy.cpp.o"
  "CMakeFiles/lina_strategy.dir/src/forwarding_strategy.cpp.o.d"
  "liblina_strategy.a"
  "liblina_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lina_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
