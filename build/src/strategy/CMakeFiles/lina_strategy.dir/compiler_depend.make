# Empty compiler generated dependencies file for lina_strategy.
# This may be replaced when dependencies are built.
