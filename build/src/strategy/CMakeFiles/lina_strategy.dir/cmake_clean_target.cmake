file(REMOVE_RECURSE
  "liblina_strategy.a"
)
