# Empty dependencies file for fig8_device_update_cost.
# This may be replaced when dependencies are built.
