file(REMOVE_RECURSE
  "CMakeFiles/fig8_device_update_cost.dir/fig8_device_update_cost.cpp.o"
  "CMakeFiles/fig8_device_update_cost.dir/fig8_device_update_cost.cpp.o.d"
  "fig8_device_update_cost"
  "fig8_device_update_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_device_update_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
