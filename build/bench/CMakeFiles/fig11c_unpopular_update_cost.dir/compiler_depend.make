# Empty compiler generated dependencies file for fig11c_unpopular_update_cost.
# This may be replaced when dependencies are built.
