file(REMOVE_RECURSE
  "CMakeFiles/fig11c_unpopular_update_cost.dir/fig11c_unpopular_update_cost.cpp.o"
  "CMakeFiles/fig11c_unpopular_update_cost.dir/fig11c_unpopular_update_cost.cpp.o.d"
  "fig11c_unpopular_update_cost"
  "fig11c_unpopular_update_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11c_unpopular_update_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
