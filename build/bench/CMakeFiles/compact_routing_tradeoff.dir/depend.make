# Empty dependencies file for compact_routing_tradeoff.
# This may be replaced when dependencies are built.
