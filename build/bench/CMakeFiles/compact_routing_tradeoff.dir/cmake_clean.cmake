file(REMOVE_RECURSE
  "CMakeFiles/compact_routing_tradeoff.dir/compact_routing_tradeoff.cpp.o"
  "CMakeFiles/compact_routing_tradeoff.dir/compact_routing_tradeoff.cpp.o.d"
  "compact_routing_tradeoff"
  "compact_routing_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compact_routing_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
