# Empty compiler generated dependencies file for fig11a_content_mobility.
# This may be replaced when dependencies are built.
