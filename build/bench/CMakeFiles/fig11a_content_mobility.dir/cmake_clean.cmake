file(REMOVE_RECURSE
  "CMakeFiles/fig11a_content_mobility.dir/fig11a_content_mobility.cpp.o"
  "CMakeFiles/fig11a_content_mobility.dir/fig11a_content_mobility.cpp.o.d"
  "fig11a_content_mobility"
  "fig11a_content_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_content_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
