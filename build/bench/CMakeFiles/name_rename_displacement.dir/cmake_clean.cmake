file(REMOVE_RECURSE
  "CMakeFiles/name_rename_displacement.dir/name_rename_displacement.cpp.o"
  "CMakeFiles/name_rename_displacement.dir/name_rename_displacement.cpp.o.d"
  "name_rename_displacement"
  "name_rename_displacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/name_rename_displacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
