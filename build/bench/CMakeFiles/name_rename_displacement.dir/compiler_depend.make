# Empty compiler generated dependencies file for name_rename_displacement.
# This may be replaced when dependencies are built.
