# Empty dependencies file for tablesize_device_fib.
# This may be replaced when dependencies are built.
