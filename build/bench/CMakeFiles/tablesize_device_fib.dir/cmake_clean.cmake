file(REMOVE_RECURSE
  "CMakeFiles/tablesize_device_fib.dir/tablesize_device_fib.cpp.o"
  "CMakeFiles/tablesize_device_fib.dir/tablesize_device_fib.cpp.o.d"
  "tablesize_device_fib"
  "tablesize_device_fib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tablesize_device_fib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
