# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tablesize_device_fib.
