# Empty compiler generated dependencies file for fig10_path_stretch.
# This may be replaced when dependencies are built.
