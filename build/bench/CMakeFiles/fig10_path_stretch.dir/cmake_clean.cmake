file(REMOVE_RECURSE
  "CMakeFiles/fig10_path_stretch.dir/fig10_path_stretch.cpp.o"
  "CMakeFiles/fig10_path_stretch.dir/fig10_path_stretch.cpp.o.d"
  "fig10_path_stretch"
  "fig10_path_stretch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_path_stretch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
