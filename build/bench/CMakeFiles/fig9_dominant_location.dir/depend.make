# Empty dependencies file for fig9_dominant_location.
# This may be replaced when dependencies are built.
