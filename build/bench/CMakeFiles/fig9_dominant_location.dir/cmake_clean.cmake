file(REMOVE_RECURSE
  "CMakeFiles/fig9_dominant_location.dir/fig9_dominant_location.cpp.o"
  "CMakeFiles/fig9_dominant_location.dir/fig9_dominant_location.cpp.o.d"
  "fig9_dominant_location"
  "fig9_dominant_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_dominant_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
