
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig9_dominant_location.cpp" "bench/CMakeFiles/fig9_dominant_location.dir/fig9_dominant_location.cpp.o" "gcc" "bench/CMakeFiles/fig9_dominant_location.dir/fig9_dominant_location.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lina_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lina_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/strategy/CMakeFiles/lina_strategy.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/lina_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/lina_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/lina_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lina_net.dir/DependInfo.cmake"
  "/root/repo/build/src/names/CMakeFiles/lina_names.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/lina_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lina_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
