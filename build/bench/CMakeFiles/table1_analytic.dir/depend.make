# Empty dependencies file for table1_analytic.
# This may be replaced when dependencies are built.
