file(REMOVE_RECURSE
  "CMakeFiles/table1_analytic.dir/table1_analytic.cpp.o"
  "CMakeFiles/table1_analytic.dir/table1_analytic.cpp.o.d"
  "table1_analytic"
  "table1_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
