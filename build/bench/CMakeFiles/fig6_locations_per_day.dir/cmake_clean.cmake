file(REMOVE_RECURSE
  "CMakeFiles/fig6_locations_per_day.dir/fig6_locations_per_day.cpp.o"
  "CMakeFiles/fig6_locations_per_day.dir/fig6_locations_per_day.cpp.o.d"
  "fig6_locations_per_day"
  "fig6_locations_per_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_locations_per_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
