# Empty dependencies file for fig6_locations_per_day.
# This may be replaced when dependencies are built.
