# Empty compiler generated dependencies file for fig12_aggregateability.
# This may be replaced when dependencies are built.
