file(REMOVE_RECURSE
  "CMakeFiles/fig12_aggregateability.dir/fig12_aggregateability.cpp.o"
  "CMakeFiles/fig12_aggregateability.dir/fig12_aggregateability.cpp.o.d"
  "fig12_aggregateability"
  "fig12_aggregateability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_aggregateability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
