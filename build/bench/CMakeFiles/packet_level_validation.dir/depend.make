# Empty dependencies file for packet_level_validation.
# This may be replaced when dependencies are built.
