file(REMOVE_RECURSE
  "CMakeFiles/packet_level_validation.dir/packet_level_validation.cpp.o"
  "CMakeFiles/packet_level_validation.dir/packet_level_validation.cpp.o.d"
  "packet_level_validation"
  "packet_level_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_level_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
