file(REMOVE_RECURSE
  "CMakeFiles/fig7_transitions_per_day.dir/fig7_transitions_per_day.cpp.o"
  "CMakeFiles/fig7_transitions_per_day.dir/fig7_transitions_per_day.cpp.o.d"
  "fig7_transitions_per_day"
  "fig7_transitions_per_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_transitions_per_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
