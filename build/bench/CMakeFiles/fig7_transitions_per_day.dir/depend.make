# Empty dependencies file for fig7_transitions_per_day.
# This may be replaced when dependencies are built.
