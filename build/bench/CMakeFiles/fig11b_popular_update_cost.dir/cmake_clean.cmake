file(REMOVE_RECURSE
  "CMakeFiles/fig11b_popular_update_cost.dir/fig11b_popular_update_cost.cpp.o"
  "CMakeFiles/fig11b_popular_update_cost.dir/fig11b_popular_update_cost.cpp.o.d"
  "fig11b_popular_update_cost"
  "fig11b_popular_update_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_popular_update_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
