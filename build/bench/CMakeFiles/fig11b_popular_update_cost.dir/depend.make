# Empty dependencies file for fig11b_popular_update_cost.
# This may be replaced when dependencies are built.
