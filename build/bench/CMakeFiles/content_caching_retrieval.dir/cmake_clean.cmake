file(REMOVE_RECURSE
  "CMakeFiles/content_caching_retrieval.dir/content_caching_retrieval.cpp.o"
  "CMakeFiles/content_caching_retrieval.dir/content_caching_retrieval.cpp.o.d"
  "content_caching_retrieval"
  "content_caching_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/content_caching_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
