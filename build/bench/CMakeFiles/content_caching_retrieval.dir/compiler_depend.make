# Empty compiler generated dependencies file for content_caching_retrieval.
# This may be replaced when dependencies are built.
