# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/stats_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/names_tests[1]_include.cmake")
include("/root/repo/build/tests/topology_tests[1]_include.cmake")
include("/root/repo/build/tests/routing_tests[1]_include.cmake")
include("/root/repo/build/tests/strategy_tests[1]_include.cmake")
include("/root/repo/build/tests/mobility_tests[1]_include.cmake")
include("/root/repo/build/tests/analytic_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
