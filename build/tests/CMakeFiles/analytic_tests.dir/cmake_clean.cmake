file(REMOVE_RECURSE
  "CMakeFiles/analytic_tests.dir/analytic/closed_forms_test.cpp.o"
  "CMakeFiles/analytic_tests.dir/analytic/closed_forms_test.cpp.o.d"
  "CMakeFiles/analytic_tests.dir/analytic/compact_routing_test.cpp.o"
  "CMakeFiles/analytic_tests.dir/analytic/compact_routing_test.cpp.o.d"
  "CMakeFiles/analytic_tests.dir/analytic/mobility_models_test.cpp.o"
  "CMakeFiles/analytic_tests.dir/analytic/mobility_models_test.cpp.o.d"
  "CMakeFiles/analytic_tests.dir/analytic/tradeoff_test.cpp.o"
  "CMakeFiles/analytic_tests.dir/analytic/tradeoff_test.cpp.o.d"
  "analytic_tests"
  "analytic_tests.pdb"
  "analytic_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytic_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
