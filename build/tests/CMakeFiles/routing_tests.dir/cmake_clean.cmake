file(REMOVE_RECURSE
  "CMakeFiles/routing_tests.dir/routing/as_path_test.cpp.o"
  "CMakeFiles/routing_tests.dir/routing/as_path_test.cpp.o.d"
  "CMakeFiles/routing_tests.dir/routing/fib_test.cpp.o"
  "CMakeFiles/routing_tests.dir/routing/fib_test.cpp.o.d"
  "CMakeFiles/routing_tests.dir/routing/inference_test.cpp.o"
  "CMakeFiles/routing_tests.dir/routing/inference_test.cpp.o.d"
  "CMakeFiles/routing_tests.dir/routing/name_fib_test.cpp.o"
  "CMakeFiles/routing_tests.dir/routing/name_fib_test.cpp.o.d"
  "CMakeFiles/routing_tests.dir/routing/policy_routing_test.cpp.o"
  "CMakeFiles/routing_tests.dir/routing/policy_routing_test.cpp.o.d"
  "CMakeFiles/routing_tests.dir/routing/rib_io_test.cpp.o"
  "CMakeFiles/routing_tests.dir/routing/rib_io_test.cpp.o.d"
  "CMakeFiles/routing_tests.dir/routing/rib_test.cpp.o"
  "CMakeFiles/routing_tests.dir/routing/rib_test.cpp.o.d"
  "CMakeFiles/routing_tests.dir/routing/synthetic_internet_test.cpp.o"
  "CMakeFiles/routing_tests.dir/routing/synthetic_internet_test.cpp.o.d"
  "CMakeFiles/routing_tests.dir/routing/vantage_router_test.cpp.o"
  "CMakeFiles/routing_tests.dir/routing/vantage_router_test.cpp.o.d"
  "routing_tests"
  "routing_tests.pdb"
  "routing_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
