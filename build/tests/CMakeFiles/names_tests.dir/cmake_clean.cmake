file(REMOVE_RECURSE
  "CMakeFiles/names_tests.dir/names/content_name_test.cpp.o"
  "CMakeFiles/names_tests.dir/names/content_name_test.cpp.o.d"
  "CMakeFiles/names_tests.dir/names/name_trie_test.cpp.o"
  "CMakeFiles/names_tests.dir/names/name_trie_test.cpp.o.d"
  "names_tests"
  "names_tests.pdb"
  "names_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/names_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
