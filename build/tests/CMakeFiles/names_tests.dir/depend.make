# Empty dependencies file for names_tests.
# This may be replaced when dependencies are built.
