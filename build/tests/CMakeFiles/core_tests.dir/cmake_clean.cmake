file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/aggregateability_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/aggregateability_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/architecture_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/architecture_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/back_of_envelope_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/back_of_envelope_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/extent_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/extent_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/fib_size_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/fib_size_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/latency_model_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/latency_model_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/multihomed_update_cost_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/multihomed_update_cost_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/name_displacement_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/name_displacement_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/update_cost_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/update_cost_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
