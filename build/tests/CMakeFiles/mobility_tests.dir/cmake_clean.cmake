file(REMOVE_RECURSE
  "CMakeFiles/mobility_tests.dir/mobility/content_trace_test.cpp.o"
  "CMakeFiles/mobility_tests.dir/mobility/content_trace_test.cpp.o.d"
  "CMakeFiles/mobility_tests.dir/mobility/content_workload_test.cpp.o"
  "CMakeFiles/mobility_tests.dir/mobility/content_workload_test.cpp.o.d"
  "CMakeFiles/mobility_tests.dir/mobility/device_multihoming_test.cpp.o"
  "CMakeFiles/mobility_tests.dir/mobility/device_multihoming_test.cpp.o.d"
  "CMakeFiles/mobility_tests.dir/mobility/device_trace_test.cpp.o"
  "CMakeFiles/mobility_tests.dir/mobility/device_trace_test.cpp.o.d"
  "CMakeFiles/mobility_tests.dir/mobility/device_workload_test.cpp.o"
  "CMakeFiles/mobility_tests.dir/mobility/device_workload_test.cpp.o.d"
  "CMakeFiles/mobility_tests.dir/mobility/trace_io_test.cpp.o"
  "CMakeFiles/mobility_tests.dir/mobility/trace_io_test.cpp.o.d"
  "CMakeFiles/mobility_tests.dir/mobility/vantage_merger_test.cpp.o"
  "CMakeFiles/mobility_tests.dir/mobility/vantage_merger_test.cpp.o.d"
  "mobility_tests"
  "mobility_tests.pdb"
  "mobility_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
