# Empty dependencies file for mobility_tests.
# This may be replaced when dependencies are built.
