file(REMOVE_RECURSE
  "CMakeFiles/strategy_tests.dir/strategy/forwarding_strategy_test.cpp.o"
  "CMakeFiles/strategy_tests.dir/strategy/forwarding_strategy_test.cpp.o.d"
  "CMakeFiles/strategy_tests.dir/strategy/port_oracle_test.cpp.o"
  "CMakeFiles/strategy_tests.dir/strategy/port_oracle_test.cpp.o.d"
  "strategy_tests"
  "strategy_tests.pdb"
  "strategy_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
