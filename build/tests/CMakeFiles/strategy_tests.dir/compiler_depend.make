# Empty compiler generated dependencies file for strategy_tests.
# This may be replaced when dependencies are built.
