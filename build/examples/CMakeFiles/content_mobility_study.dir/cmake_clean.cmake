file(REMOVE_RECURSE
  "CMakeFiles/content_mobility_study.dir/content_mobility_study.cpp.o"
  "CMakeFiles/content_mobility_study.dir/content_mobility_study.cpp.o.d"
  "content_mobility_study"
  "content_mobility_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/content_mobility_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
