# Empty dependencies file for content_mobility_study.
# This may be replaced when dependencies are built.
