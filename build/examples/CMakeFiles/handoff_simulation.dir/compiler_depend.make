# Empty compiler generated dependencies file for handoff_simulation.
# This may be replaced when dependencies are built.
