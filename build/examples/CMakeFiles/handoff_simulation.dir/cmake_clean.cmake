file(REMOVE_RECURSE
  "CMakeFiles/handoff_simulation.dir/handoff_simulation.cpp.o"
  "CMakeFiles/handoff_simulation.dir/handoff_simulation.cpp.o.d"
  "handoff_simulation"
  "handoff_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handoff_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
