file(REMOVE_RECURSE
  "CMakeFiles/architecture_tradeoffs.dir/architecture_tradeoffs.cpp.o"
  "CMakeFiles/architecture_tradeoffs.dir/architecture_tradeoffs.cpp.o.d"
  "architecture_tradeoffs"
  "architecture_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/architecture_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
