# Empty compiler generated dependencies file for architecture_tradeoffs.
# This may be replaced when dependencies are built.
