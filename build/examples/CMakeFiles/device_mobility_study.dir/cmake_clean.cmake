file(REMOVE_RECURSE
  "CMakeFiles/device_mobility_study.dir/device_mobility_study.cpp.o"
  "CMakeFiles/device_mobility_study.dir/device_mobility_study.cpp.o.d"
  "device_mobility_study"
  "device_mobility_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_mobility_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
