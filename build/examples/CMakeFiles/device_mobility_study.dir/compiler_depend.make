# Empty compiler generated dependencies file for device_mobility_study.
# This may be replaced when dependencies are built.
