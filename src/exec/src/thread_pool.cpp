#include "lina/exec/thread_pool.hpp"

#include <atomic>
#include <algorithm>

#include "lina/prof/prof.hpp"

namespace lina::exec {

namespace {

std::atomic<std::size_t>& configured_threads() {
  static std::atomic<std::size_t> value{0};  // 0 = hardware default
  return value;
}

thread_local bool tls_in_parallel_region = false;

/// Scope guard marking the current thread as inside a parallel region.
struct RegionScope {
  RegionScope() : previous(tls_in_parallel_region) {
    tls_in_parallel_region = true;
  }
  ~RegionScope() { tls_in_parallel_region = previous; }
  bool previous;
};

// Workers that ever existed are capped; jobs requesting more threads than
// this simply share the cap. Far above any sane oversubscription in tests.
constexpr std::size_t kMaxWorkers = 64;

}  // namespace

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void set_default_threads(std::size_t threads) {
  configured_threads().store(threads, std::memory_order_relaxed);
}

std::size_t default_threads() {
  const std::size_t configured =
      configured_threads().load(std::memory_order_relaxed);
  return configured == 0 ? hardware_threads() : configured;
}

bool in_parallel_region() { return tls_in_parallel_region; }

struct ThreadPool::Job {
  std::size_t count = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::uint64_t parent_span = 0;     // submitter's open prof span (0 = none)
  std::atomic<std::size_t> next{0};  // next unclaimed chunk index
  std::size_t active = 0;            // threads inside (guarded by pool mutex)
  std::exception_ptr error;          // first failure (guarded by pool mutex)
};

ThreadPool& ThreadPool::shared() {
  static ThreadPool* instance = new ThreadPool();  // leaked: process-lifetime
  return *instance;
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::worker_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

void ThreadPool::ensure_workers(std::size_t count) {
  // Caller holds mutex_.
  while (workers_.size() < std::min(count, kMaxWorkers)) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t last_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (job_ != nullptr && job_generation_ != last_generation);
    });
    if (stop_) return;
    Job* job = job_;
    last_generation = job_generation_;
    ++job->active;
    lock.unlock();

    {
      RegionScope region;
      // Spans opened in this job's chunks attribute to the region that
      // submitted the job, even though it lives on another thread.
      prof::AdoptedParentScope causal_parent(job->parent_span);
      for (;;) {
        const std::size_t chunk =
            job->next.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= job->count) break;
        try {
          PROF_SPAN("lina.exec.chunk");
          (*job->fn)(chunk);
        } catch (...) {
          const std::lock_guard<std::mutex> error_lock(mutex_);
          if (!job->error) job->error = std::current_exception();
        }
      }
    }

    lock.lock();
    if (--job->active == 0) done_cv_.notify_all();
  }
}

void ThreadPool::run(std::size_t chunk_count, std::size_t threads,
                     const std::function<void(std::size_t)>& chunk_fn) {
  if (chunk_count == 0) return;
  Job job;
  job.count = chunk_count;
  job.fn = &chunk_fn;
  job.parent_span = prof::current_span_id();

  // One job at a time; later top-level callers queue here.
  const std::lock_guard<std::mutex> run_lock(run_mutex_);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t helpers =
        std::min(threads > 0 ? threads - 1 : 0, chunk_count - 1);
    ensure_workers(helpers);
    job_ = &job;
    ++job_generation_;
  }
  work_cv_.notify_all();

  // The caller participates instead of idling.
  {
    RegionScope region;
    for (;;) {
      const std::size_t chunk =
          job.next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= chunk_count) break;
      try {
        PROF_SPAN("lina.exec.chunk");
        chunk_fn(chunk);
      } catch (...) {
        const std::lock_guard<std::mutex> error_lock(mutex_);
        if (!job.error) job.error = std::current_exception();
      }
    }
  }

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return job.active == 0; });
  job_ = nullptr;
  const std::exception_ptr error = job.error;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace lina::exec
