#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lina::exec {

/// Sets the process-wide default worker count used by parallel_for /
/// parallel_map when no explicit count is given. 0 restores the hardware
/// default (std::thread::hardware_concurrency, at least 1).
void set_default_threads(std::size_t threads);

/// The resolved default worker count (>= 1).
[[nodiscard]] std::size_t default_threads();

/// std::thread::hardware_concurrency clamped to >= 1.
[[nodiscard]] std::size_t hardware_threads();

/// True while the calling thread is executing inside a parallel region —
/// nested parallel_for / parallel_map calls detect this and run inline
/// (serially) instead of deadlocking on the shared pool.
[[nodiscard]] bool in_parallel_region();

/// A fixed-size pool of sleeping workers shared by the parallel
/// primitives. One job runs at a time (concurrent top-level submissions
/// queue on an internal mutex); the submitting thread participates in the
/// job, so `threads == 1` never touches a worker. Workers are spawned
/// lazily up to the largest count any job has requested and persist for
/// the process lifetime.
///
/// Determinism contract: the pool only distributes *chunk indices*; which
/// thread executes a chunk is scheduling noise that callers must not (and
/// with the parallel_* wrappers cannot) observe.
class ThreadPool {
 public:
  /// The process-wide shared pool.
  [[nodiscard]] static ThreadPool& shared();

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Executes chunk_fn(0) ... chunk_fn(chunk_count - 1), each exactly
  /// once, across up to `threads` threads (including the caller). Blocks
  /// until every chunk has finished. The first exception thrown by any
  /// chunk is rethrown in the caller once the job has drained.
  void run(std::size_t chunk_count, std::size_t threads,
           const std::function<void(std::size_t)>& chunk_fn);

  /// Workers currently alive (grows on demand; for tests/telemetry).
  [[nodiscard]] std::size_t worker_count() const;

 private:
  ThreadPool() = default;

  struct Job;

  void ensure_workers(std::size_t count);
  void worker_loop();

  mutable std::mutex mutex_;            // guards job_, workers_, stop_
  std::condition_variable work_cv_;     // workers wait for a job
  std::condition_variable done_cv_;     // caller waits for completion
  std::mutex run_mutex_;                // serializes top-level jobs
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;
  std::uint64_t job_generation_ = 0;
  bool stop_ = false;
};

}  // namespace lina::exec
