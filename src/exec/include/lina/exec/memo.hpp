#pragma once

// Striped-shared-mutex memoizer: the thread-safe replacement for the
// `mutable std::map` lazy caches that made ForwardingFabric and
// LatencyModel read paths thread-hostile. Values are built at most once
// per key (the build runs under the owning stripe's exclusive lock), and
// lookups after the first take only a shared lock on one stripe, so
// readers of distinct stripes never contend.
//
// References returned by get_or_build stay valid for the memo's lifetime:
// per-stripe std::unordered_map never invalidates element references on
// insert, and the memo never erases (clear() is the only invalidator and
// is documented single-threaded).

#include <array>
#include <cstddef>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

namespace lina::exec {

/// Combines a hash into a seed (boost-style avalanche).
inline std::size_t hash_combine(std::size_t seed, std::size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hash for pair/tuple cache keys (the ForwardingFabric degraded-graph and
/// detour caches key on (plan stamp, epoch[, destination])).
struct TupleHash {
  template <typename... Ts>
  std::size_t operator()(const std::tuple<Ts...>& key) const {
    return std::apply(
        [](const Ts&... parts) {
          std::size_t seed = 0;
          ((seed = hash_combine(seed, std::hash<Ts>{}(parts))), ...);
          return seed;
        },
        key);
  }
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& key) const {
    return hash_combine(std::hash<A>{}(key.first),
                        std::hash<B>{}(key.second));
  }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>,
          std::size_t StripeCount = 16>
class Memo {
  static_assert(StripeCount > 0);

 public:
  Memo() = default;
  Memo(const Memo&) = delete;
  Memo& operator=(const Memo&) = delete;

  /// Returns the cached value for `key`, building it via `build()` (under
  /// the stripe's exclusive lock, so exactly once per key) on first use.
  template <typename Build>
  const Value& get_or_build(const Key& key, Build&& build) const {
    Stripe& stripe = stripe_for(key);
    {
      std::shared_lock<std::shared_mutex> lock(stripe.mutex);
      const auto it = stripe.map.find(key);
      if (it != stripe.map.end()) return it->second;
    }
    std::unique_lock<std::shared_mutex> lock(stripe.mutex);
    auto it = stripe.map.find(key);
    if (it == stripe.map.end()) {
      it = stripe.map.emplace(key, build()).first;
    }
    return it->second;
  }

  /// The cached value, or nullptr when absent (never builds).
  const Value* find(const Key& key) const {
    Stripe& stripe = stripe_for(key);
    std::shared_lock<std::shared_mutex> lock(stripe.mutex);
    const auto it = stripe.map.find(key);
    return it == stripe.map.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const Stripe& stripe : stripes_) {
      std::shared_lock<std::shared_mutex> lock(stripe.mutex);
      total += stripe.map.size();
    }
    return total;
  }

  /// Drops every entry. NOT safe concurrently with get_or_build callers
  /// that still hold returned references.
  void clear() {
    for (Stripe& stripe : stripes_) {
      std::unique_lock<std::shared_mutex> lock(stripe.mutex);
      stripe.map.clear();
    }
  }

 private:
  struct Stripe {
    mutable std::shared_mutex mutex;
    std::unordered_map<Key, Value, Hash> map;
  };

  Stripe& stripe_for(const Key& key) const {
    return stripes_[Hash{}(key) % StripeCount];
  }

  mutable std::array<Stripe, StripeCount> stripes_;
};

}  // namespace lina::exec
