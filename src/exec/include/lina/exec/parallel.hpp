#pragma once

// Deterministic data-parallel primitives over the shared ThreadPool.
//
// Determinism contract (DESIGN.md §4c): work is addressed by *item index*.
// parallel_for(n, fn) calls fn(i) exactly once for every i in [0, n);
// parallel_map returns results in item-index order regardless of which
// thread computed what. As long as fn(i) depends only on i (give each item
// its own RNG substream via stats::Rng::split(i)), the output is
// bit-identical to the serial loop at any thread count. Reductions happen
// on the caller's thread in item order after the parallel phase.
//
// Nested calls (fn itself calling a parallel primitive) execute inline and
// serially on the calling thread — correct, never deadlocking, just not
// extra-parallel.

#include <algorithm>
#include <cstddef>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "lina/exec/thread_pool.hpp"
#include "lina/prof/prof.hpp"

namespace lina::exec {

namespace detail {

/// Chunk layout: enough chunks to load-balance (a few per thread) without
/// drowning in scheduling overhead. Layout is invisible to callers — the
/// per-item functions observe only their item index.
struct ChunkPlan {
  std::size_t chunk_count = 0;
  std::size_t chunk_size = 0;
};

inline ChunkPlan plan_chunks(std::size_t items, std::size_t threads) {
  ChunkPlan plan;
  if (items == 0) return plan;
  const std::size_t target = threads * 4;  // ~4 chunks per thread
  plan.chunk_size = items / target + (items % target != 0 ? 1 : 0);
  if (plan.chunk_size == 0) plan.chunk_size = 1;
  plan.chunk_count = (items + plan.chunk_size - 1) / plan.chunk_size;
  return plan;
}

}  // namespace detail

/// Calls fn(i) exactly once for each i in [0, n), across up to `threads`
/// threads (0 = default_threads()). Runs inline serially when threads
/// resolves to 1, when n < 2, or when already inside a parallel region.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, std::size_t threads = 0) {
  if (n == 0) return;
  PROF_SPAN("lina.exec.parallel_for");
  if (threads == 0) threads = default_threads();
  if (threads <= 1 || n < 2 || in_parallel_region()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const detail::ChunkPlan plan = detail::plan_chunks(n, threads);
  const std::function<void(std::size_t)> chunk_fn =
      [&fn, &plan, n](std::size_t chunk) {
        const std::size_t begin = chunk * plan.chunk_size;
        const std::size_t end = std::min(begin + plan.chunk_size, n);
        for (std::size_t i = begin; i < end; ++i) fn(i);
      };
  ThreadPool::shared().run(plan.chunk_count, threads, chunk_fn);
}

/// Computes [fn(0), fn(1), ..., fn(n - 1)] in parallel and returns the
/// results in item order. fn's result type needs only a move constructor.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, std::size_t threads = 0)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
  using R = std::decay_t<decltype(fn(std::size_t{0}))>;
  std::vector<std::optional<R>> slots(n);
  parallel_for(
      n, [&](std::size_t i) { slots[i].emplace(fn(i)); }, threads);
  std::vector<R> results;
  results.reserve(n);
  for (std::optional<R>& slot : slots) results.push_back(std::move(*slot));
  return results;
}

/// parallel_map followed by an ordered fold: `acc = reduce(acc, result_i)`
/// runs on the calling thread for i = 0, 1, ..., n - 1, so the accumulator
/// sees results in exactly the serial order (no reassociation).
template <typename Acc, typename Fn, typename Reduce>
Acc parallel_reduce(std::size_t n, Acc init, Fn&& fn, Reduce&& reduce,
                    std::size_t threads = 0) {
  auto partials = parallel_map(n, std::forward<Fn>(fn), threads);
  Acc acc = std::move(init);
  for (auto& partial : partials) {
    acc = reduce(std::move(acc), std::move(partial));
  }
  return acc;
}

}  // namespace lina::exec
