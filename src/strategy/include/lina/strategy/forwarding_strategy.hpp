#pragma once

#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string_view>
#include <unordered_set>

#include "lina/net/ipv4.hpp"
#include "lina/routing/fib.hpp"
#include "lina/strategy/port_oracle.hpp"

namespace lina::strategy {

/// Which §3.3.1 forwarding strategy a content router runs.
enum class StrategyKind : std::uint8_t {
  kBestPort,           // forward on the single most-preferred eligible port
  kControlledFlooding, // forward on every eligible port
  kHistoryUnion,       // §3.3.3: eligible ports of the union of all past
                       // addresses — trades forwarding traffic for updates
};

[[nodiscard]] std::string_view strategy_name(StrategyKind kind);

/// Tracks one router's forwarding state for one principal (device or content
/// name) across its sequence of address-set observations, and reports
/// whether each observation changed the state — i.e. the per-event update
/// cost of §3.3.1 (1 if changed, 0 otherwise).
///
/// Usage: construct one instance per (router, principal) series, then call
/// `observe` once per snapshot in time order. The first observation
/// initializes state and never counts as an update.
class ForwardingStrategy {
 public:
  virtual ~ForwardingStrategy() = default;

  ForwardingStrategy(const ForwardingStrategy&) = delete;
  ForwardingStrategy& operator=(const ForwardingStrategy&) = delete;

  [[nodiscard]] virtual StrategyKind kind() const = 0;
  [[nodiscard]] std::string_view name() const {
    return strategy_name(kind());
  }

  /// Observes the principal's address set at the next instant; returns true
  /// iff the router must update its forwarding state for this principal.
  virtual bool observe(const PortOracle& oracle,
                       std::span<const net::Ipv4Address> addrs) = 0;

  /// The ports the router currently forwards on for this principal
  /// (singleton for best-port; empty before any observation or when no
  /// address has a route).
  [[nodiscard]] virtual const std::set<routing::Port>& current_ports()
      const = 0;

  /// Forgets all state.
  virtual void reset() = 0;

 protected:
  ForwardingStrategy() = default;
};

/// Factory for the three strategies.
[[nodiscard]] std::unique_ptr<ForwardingStrategy> make_strategy(
    StrategyKind kind);

/// Computes the set of eligible ports for an address set at a router: the
/// FIB ports of each address that has a route (§3.3.1, F(R,d,t)).
[[nodiscard]] std::set<routing::Port> eligible_ports(
    const PortOracle& oracle, std::span<const net::Ipv4Address> addrs);

/// Picks the most-preferred eligible entry: best(FIB(R,d,t)). Returns
/// nullopt when no address has a route.
[[nodiscard]] std::optional<routing::FibEntry> best_entry(
    const PortOracle& oracle, std::span<const net::Ipv4Address> addrs);

}  // namespace lina::strategy
