#pragma once

#include <optional>
#include <unordered_map>

#include "lina/net/ipv4.hpp"
#include "lina/routing/fib.hpp"

namespace lina::strategy {

/// Answers "which forwarding entry does this router use for this address" —
/// the only question forwarding strategies ask. Abstracting it lets the
/// evaluation harnesses memoize longest-prefix-match lookups across the
/// millions of repeated addresses in a content catalog.
class PortOracle {
 public:
  virtual ~PortOracle() = default;

  /// The router's selected entry for `addr`, or nullopt if no prefix covers
  /// it.
  [[nodiscard]] virtual std::optional<routing::FibEntry> entry_for(
      net::Ipv4Address addr) const = 0;

  /// Convenience: just the output port.
  [[nodiscard]] std::optional<routing::Port> port_for(
      net::Ipv4Address addr) const {
    const auto entry = entry_for(addr);
    if (!entry.has_value()) return std::nullopt;
    return entry->port;
  }

 protected:
  PortOracle() = default;
};

/// Direct (uncached) oracle over a FIB.
class FibOracle final : public PortOracle {
 public:
  explicit FibOracle(const routing::Fib& fib) : fib_(&fib) {}

  [[nodiscard]] std::optional<routing::FibEntry> entry_for(
      net::Ipv4Address addr) const override {
    const auto hit = fib_->lookup(addr);
    if (!hit.has_value()) return std::nullopt;
    return hit->second;
  }

 private:
  const routing::Fib* fib_;
};

/// Memoizing oracle: each distinct address triggers one trie walk, after
/// which lookups are O(1). Correct because FIBs are immutable during an
/// evaluation pass.
class CachingFibOracle final : public PortOracle {
 public:
  explicit CachingFibOracle(const routing::Fib& fib) : fib_(&fib) {}

  [[nodiscard]] std::optional<routing::FibEntry> entry_for(
      net::Ipv4Address addr) const override {
    const auto [it, inserted] = cache_.try_emplace(addr.value());
    if (inserted) {
      const auto hit = fib_->lookup(addr);
      if (hit.has_value()) it->second = hit->second;
    }
    return it->second;
  }

  [[nodiscard]] std::size_t cached_addresses() const { return cache_.size(); }

 private:
  const routing::Fib* fib_;
  mutable std::unordered_map<std::uint32_t, std::optional<routing::FibEntry>>
      cache_;
};

/// Memoizing oracle over a frozen FIB snapshot: one flat-arena trie walk
/// per distinct address, O(1) after. For read-mostly phases that can
/// afford a freeze() up front (aggregateability scans, snapshot series).
class FrozenFibOracle final : public PortOracle {
 public:
  explicit FrozenFibOracle(const routing::Fib& fib) : fib_(fib.freeze()) {}
  explicit FrozenFibOracle(routing::FrozenFib fib) : fib_(std::move(fib)) {}

  [[nodiscard]] std::optional<routing::FibEntry> entry_for(
      net::Ipv4Address addr) const override {
    const auto [it, inserted] = cache_.try_emplace(addr.value());
    if (inserted) {
      const routing::FibEntry* e = fib_.entry_for(addr);
      if (e != nullptr) it->second = *e;
    }
    return it->second;
  }

  [[nodiscard]] const routing::FrozenFib& fib() const { return fib_; }
  [[nodiscard]] std::size_t cached_addresses() const { return cache_.size(); }

 private:
  routing::FrozenFib fib_;
  mutable std::unordered_map<std::uint32_t, std::optional<routing::FibEntry>>
      cache_;
};

}  // namespace lina::strategy
