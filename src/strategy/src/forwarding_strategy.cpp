#include "lina/strategy/forwarding_strategy.hpp"

#include <stdexcept>
#include <vector>

namespace lina::strategy {

std::string_view strategy_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kBestPort:
      return "best-port";
    case StrategyKind::kControlledFlooding:
      return "controlled-flooding";
    case StrategyKind::kHistoryUnion:
      return "history-union";
  }
  throw std::invalid_argument("strategy_name: unknown kind");
}

std::set<routing::Port> eligible_ports(
    const PortOracle& oracle, std::span<const net::Ipv4Address> addrs) {
  std::set<routing::Port> ports;
  for (const net::Ipv4Address addr : addrs) {
    const auto port = oracle.port_for(addr);
    if (port.has_value()) ports.insert(*port);
  }
  return ports;
}

std::optional<routing::FibEntry> best_entry(
    const PortOracle& oracle, std::span<const net::Ipv4Address> addrs) {
  std::optional<routing::FibEntry> best;
  for (const net::Ipv4Address addr : addrs) {
    const auto hit = oracle.entry_for(addr);
    if (!hit.has_value()) continue;
    if (!best.has_value() || routing::entry_preferred(*hit, *best)) {
      best = *hit;
    }
  }
  return best;
}

namespace {

class BestPortStrategy final : public ForwardingStrategy {
 public:
  [[nodiscard]] StrategyKind kind() const override {
    return StrategyKind::kBestPort;
  }

  bool observe(const PortOracle& oracle,
               std::span<const net::Ipv4Address> addrs) override {
    const auto best = best_entry(oracle, addrs);
    std::set<routing::Port> ports;
    if (best.has_value()) ports.insert(best->port);
    const bool changed = initialized_ && ports != ports_;
    ports_ = std::move(ports);
    initialized_ = true;
    return changed;
  }

  [[nodiscard]] const std::set<routing::Port>& current_ports()
      const override {
    return ports_;
  }

  void reset() override {
    ports_.clear();
    initialized_ = false;
  }

 private:
  std::set<routing::Port> ports_;
  bool initialized_ = false;
};

class ControlledFloodingStrategy final : public ForwardingStrategy {
 public:
  [[nodiscard]] StrategyKind kind() const override {
    return StrategyKind::kControlledFlooding;
  }

  bool observe(const PortOracle& oracle,
               std::span<const net::Ipv4Address> addrs) override {
    std::set<routing::Port> ports = eligible_ports(oracle, addrs);
    const bool changed = initialized_ && ports != ports_;
    ports_ = std::move(ports);
    initialized_ = true;
    return changed;
  }

  [[nodiscard]] const std::set<routing::Port>& current_ports()
      const override {
    return ports_;
  }

  void reset() override {
    ports_.clear();
    initialized_ = false;
  }

 private:
  std::set<routing::Port> ports_;
  bool initialized_ = false;
};

class HistoryUnionStrategy final : public ForwardingStrategy {
 public:
  [[nodiscard]] StrategyKind kind() const override {
    return StrategyKind::kHistoryUnion;
  }

  bool observe(const PortOracle& oracle,
               std::span<const net::Ipv4Address> addrs) override {
    // FIB state is computed over the union of every address ever observed
    // (§3.3.3), so the port set can only grow; an update happens only when
    // a genuinely new network location adds a new port.
    for (const net::Ipv4Address addr : addrs) history_.insert(addr.value());
    std::set<routing::Port> ports;
    for (const std::uint32_t raw : history_) {
      const auto port = oracle.port_for(net::Ipv4Address(raw));
      if (port.has_value()) ports.insert(*port);
    }
    const bool changed = initialized_ && ports != ports_;
    ports_ = std::move(ports);
    initialized_ = true;
    return changed;
  }

  [[nodiscard]] const std::set<routing::Port>& current_ports()
      const override {
    return ports_;
  }

  void reset() override {
    history_.clear();
    ports_.clear();
    initialized_ = false;
  }

 private:
  std::unordered_set<std::uint32_t> history_;
  std::set<routing::Port> ports_;
  bool initialized_ = false;
};

}  // namespace

std::unique_ptr<ForwardingStrategy> make_strategy(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kBestPort:
      return std::make_unique<BestPortStrategy>();
    case StrategyKind::kControlledFlooding:
      return std::make_unique<ControlledFloodingStrategy>();
    case StrategyKind::kHistoryUnion:
      return std::make_unique<HistoryUnionStrategy>();
  }
  throw std::invalid_argument("make_strategy: unknown kind");
}

}  // namespace lina::strategy
