#pragma once

#include <cstdint>
#include <vector>

#include "lina/sim/fabric.hpp"
#include "lina/sim/session.hpp"
#include "lina/stats/cdf.hpp"
#include "lina/stats/rng.hpp"

namespace lina::sim {

/// An NDN-style content-retrieval session: a consumer issues interests for
/// Zipf-popular segments of a named catalog; routers forward interests
/// toward their current belief of the publisher's attachment (flooded
/// name-update wavefront, as in name-based routing); data returns along
/// the interest path, leaving copies in per-router LRU content stores.
///
/// This exercises the paper's §8 discussion: on-path caching absorbs the
/// popular head even across publisher mobility, but "does not suffice to
/// ensure reachability to at least one copy" — uncached segments are lost
/// while router beliefs are stale.
struct ContentSessionConfig {
  topology::AsId consumer = 0;
  std::vector<MobilityStep> publisher_schedule;  // first step at 0

  std::size_t catalog_segments = 1000;
  double zipf_exponent = 1.0;

  double request_interval_ms = 10.0;
  double duration_ms = 20000.0;

  std::size_t cache_capacity = 64;  // per router; 0 disables caching
  double update_hop_ms = 5.0;       // name-update wavefront speed
  std::size_t interest_ttl_hops = 64;

  std::uint64_t seed = 1;

  /// Fault injection. nullptr or an empty plan leaves every result
  /// bit-identical to the failure-free simulator; with faults active,
  /// interests route around dead ASes / cut links (a copy in an on-path
  /// content store still satisfies them — caching as resilience, §8) and
  /// die at a dark publisher. The plan must outlive the call.
  const FailurePlan* failures = nullptr;

  /// Consumer-side interest retransmission under injected faults: an
  /// interest that dies (dark AS, no route, stale belief at a publisher
  /// that moved) is reissued from the consumer on this backoff, probing
  /// for fault repair or belief convergence. Only consulted when a
  /// non-empty FailurePlan is attached — the failure-free simulator's
  /// staleness losses (the §8 phenomenon) are left untouched.
  RetryPolicy retry;

  /// Consumer-side FIB-miss resolution cache, keyed by segment. Off by
  /// default (bit-identical to the pre-cache simulator). When enabled, a
  /// publisher-satisfied retrieval installs segment -> publisher location
  /// at data arrival; a later interest for a cached segment skips belief
  /// forwarding and routes straight toward the cached location (content
  /// stores on the way still answer). A stale entry (publisher moved) is
  /// invalidated when the directed interest finds nobody home. The name-
  /// update wavefront is the churn stream: when a move's flood reaches the
  /// consumer, every cached location is invalidated (the whole catalog
  /// moved, so ChurnAction is ignored — invalidation is the only correct
  /// response). Activity lands in ContentSessionStats::mapping_cache.
  cache::CacheConfig mapping_cache;
};

struct ContentSessionStats {
  std::size_t interests_sent = 0;
  std::size_t satisfied_from_cache = 0;
  std::size_t satisfied_from_publisher = 0;
  std::size_t unsatisfied = 0;

  /// Interest retransmissions under faults (attempts beyond the first per
  /// requested segment); always 0 without a FailurePlan.
  std::size_t interest_retries = 0;

  /// Interests routed by a mapping-cache hit instead of router beliefs;
  /// always 0 when ContentSessionConfig::mapping_cache is off.
  std::size_t cache_guided_interests = 0;

  stats::EmpiricalCdf retrieval_delay_ms;

  /// Consumer FIB-cache counters; all zero when the cache is disabled.
  cache::CacheStats mapping_cache;

  [[nodiscard]] std::size_t satisfied() const {
    return satisfied_from_cache + satisfied_from_publisher;
  }
  [[nodiscard]] double reachability() const {
    return interests_sent == 0
               ? 0.0
               : static_cast<double>(satisfied()) /
                     static_cast<double>(interests_sent);
  }
  [[nodiscard]] double cache_hit_ratio() const {
    return satisfied() == 0
               ? 0.0
               : static_cast<double>(satisfied_from_cache) /
                     static_cast<double>(satisfied());
  }
};

/// Runs one consumer->publisher content session over the fabric.
/// Throws std::invalid_argument on malformed configs.
[[nodiscard]] ContentSessionStats simulate_content_session(
    const ForwardingFabric& fabric, const ContentSessionConfig& config);

}  // namespace lina::sim
