#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "lina/cache/policy.hpp"
#include "lina/core/backoff.hpp"
#include "lina/sim/fabric.hpp"
#include "lina/sim/failure_plan.hpp"
#include "lina/stats/cdf.hpp"

namespace lina::sim {

/// Which location-independence machinery carries the session's packets.
enum class SimArchitecture : std::uint8_t {
  kIndirection,          // home agent registration + triangle forwarding
  kNameResolution,       // resolver + TTL-cached direct sending
  kNameBased,            // per-router belief updated by a flooding wavefront
  kReplicatedResolution, // GNS-style geo-replicated resolver pool [49]
};

[[nodiscard]] std::string_view sim_architecture_name(SimArchitecture arch);

/// One attachment change of the mobile endpoint.
struct MobilityStep {
  double time_ms = 0.0;  // first step must be at 0 (initial attachment)
  topology::AsId as = 0;
};

/// Exponential-backoff retransmission policy for control-plane operations
/// (registrations, lookups, update relays). Only consulted when a
/// FailurePlan injects faults; the failure-free simulator never retries
/// because nothing ever fails.
using RetryPolicy = core::BackoffPolicy;

/// A correspondent streaming constant-bit-rate packets at a mobile device.
struct SessionConfig {
  topology::AsId correspondent = 0;
  std::vector<MobilityStep> schedule;  // time-ordered, first at 0
  double packet_interval_ms = 20.0;
  double duration_ms = 10000.0;

  /// Indirection: the home agent AS (defaults to the initial attachment).
  std::optional<topology::AsId> home_as;

  /// Name resolution: resolver AS and the correspondent's cache lifetime.
  std::optional<topology::AsId> resolver_as;
  double resolver_ttl_ms = 500.0;

  /// Replicated resolution: replica ASes of the GNS-style pool (must be
  /// non-empty for kReplicatedResolution).
  std::vector<topology::AsId> resolver_replicas;

  /// Name-based routing: the per-AS-hop latency of the update wavefront
  /// that re-points router beliefs after a move.
  double update_hop_ms = 5.0;

  /// Name-based routing: flooding scope in physical AS hops around the new
  /// attachment (§8's hybrid direction). Routers beyond the scope keep
  /// routing toward the initial (globally announced) attachment, so scoped
  /// flooding suits metro-local mobility. SIZE_MAX = global flooding.
  std::size_t update_scope_hops = SIZE_MAX;

  /// Packets are dropped after this many forwarding hops (transient loops
  /// during name-based convergence).
  std::size_t packet_ttl_hops = 64;

  /// Fault injection. nullptr or an empty plan is the failure-free
  /// simulator: every code path (and therefore every result) is
  /// bit-identical to a config without the field. The plan must outlive
  /// the simulate_session call.
  const FailurePlan* failures = nullptr;

  /// Control-plane retry behaviour under injected faults.
  RetryPolicy retry;

  /// Correspondent-side loc/ID mapping cache (DESIGN.md §4h). Off by
  /// default — a disabled cache leaves every architecture bit-identical
  /// to the pre-cache simulator. When enabled:
  ///  - indirection: a Mobile-IPv6-style binding cache. A hit sends the
  ///    packet straight to the cached care-of AS (no triangle); a miss
  ///    goes via the home agent, which pushes a binding update back to
  ///    the correspondent. Registrations landing at the home agent push
  ///    churn notifications that invalidate/refresh the cached binding.
  ///  - name resolution / replicated resolution: the periodic TTL
  ///    re-resolution loop is replaced by demand resolution. A hit sends
  ///    immediately to the cached location; a miss makes the packet ride
  ///    a resolver round trip, installs the answer, then sends. Location
  ///    updates landing at the (lookup) resolver push churn
  ///    notifications down the update stream.
  ///  - name-based routing has no resolution step, so the cache is
  ///    ignored there.
  /// Churn notifications count as control messages; cache activity is
  /// reported in SessionStats::mapping_cache.
  cache::CacheConfig mapping_cache;
};

/// Delivery metrics of one simulated session.
struct SessionStats {
  std::size_t packets_sent = 0;
  std::size_t packets_delivered = 0;
  std::size_t packets_lost = 0;
  std::size_t control_messages = 0;  // registrations / resolutions / updates

  stats::EmpiricalCdf delivery_delay_ms;
  /// Delivered delay divided by the direct-path delay at delivery time —
  /// the multiplicative data-path stretch.
  stats::EmpiricalCdf stretch;
  /// Per mobility event: time until the first post-move delivery.
  stats::EmpiricalCdf outage_ms;

  // Resilience metrics; all zero / empty when no FailurePlan is attached.

  /// Control retransmissions (attempts beyond the first per operation);
  /// the control-message amplification a failure causes is
  /// control_retries / (control_messages - control_retries).
  std::size_t control_retries = 0;
  /// Packets whose send instant fell inside any active fault window.
  std::size_t packets_sent_during_failure = 0;
  /// ...and how many of those still made it (delayed / degraded rather
  /// than lost — e.g. over a detour route).
  std::size_t packets_delivered_during_failure = 0;
  /// Per repair instant: time until the first subsequent delivery — the
  /// architecture's time-to-recover.
  stats::EmpiricalCdf recovery_ms;
  /// Stretch of packets sent while a fault was active — degraded-mode
  /// routing quality (compare against `stretch`).
  stats::EmpiricalCdf stretch_degraded;

  /// Correspondent mapping-cache counters; all zero when the cache is
  /// disabled (SessionConfig::mapping_cache).
  cache::CacheStats mapping_cache;

  [[nodiscard]] double delivery_ratio() const {
    return packets_sent == 0
               ? 0.0
               : static_cast<double>(packets_delivered) /
                     static_cast<double>(packets_sent);
  }

  /// Fraction of packets sent during fault windows that were lost.
  [[nodiscard]] double failure_loss_fraction() const {
    return packets_sent_during_failure == 0
               ? 0.0
               : 1.0 - static_cast<double>(packets_delivered_during_failure) /
                           static_cast<double>(packets_sent_during_failure);
  }
};

/// Runs one correspondent->mobile session under the chosen architecture on
/// a packet-by-packet discrete-event simulation over the fabric. Validates
/// the §2/§5 trade-offs dynamically: indirection pays stretch, name
/// resolution pays staleness on mobility, name-based routing pays
/// convergence (and router updates) but no steady-state stretch.
/// Throws std::invalid_argument on malformed configs.
[[nodiscard]] SessionStats simulate_session(const ForwardingFabric& fabric,
                                            SimArchitecture architecture,
                                            const SessionConfig& config);

}  // namespace lina::sim
