#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace lina::sim {

/// A discrete-event simulation clock and queue.
///
/// Events are callbacks scheduled at absolute times (milliseconds of
/// simulated time); equal-time events fire in scheduling order. The queue
/// owns the clock: `now()` is the time of the event currently (or most
/// recently) executing.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `callback` at absolute time `time_ms` (>= now()); throws on
  /// attempts to schedule in the past or at a NaN/infinite time (a NaN
  /// would silently corrupt the heap order).
  void schedule(double time_ms, Callback callback);

  /// Schedules `callback` `delay_ms` (>= 0, finite) after now(); throws
  /// on negative or NaN delays.
  void schedule_in(double delay_ms, Callback callback);

  /// Runs the earliest event; returns false if the queue is empty.
  bool run_next();

  /// Runs until the queue drains or `max_events` have executed; returns
  /// the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  [[nodiscard]] double now() const { return now_ms_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Entry {
    double time_ms;
    std::uint64_t sequence;  // FIFO tie-break
    Callback callback;
    double scheduled_at_ms;  // now() at schedule time, for dwell metrics
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time_ms != b.time_ms) return a.time_ms > b.time_ms;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  double now_ms_ = 0.0;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace lina::sim
