#pragma once

#include <optional>
#include <vector>

#include "lina/exec/memo.hpp"
#include "lina/sim/fabric.hpp"
#include "lina/sim/failure_plan.hpp"

namespace lina::sim {

/// A geo-replicated name-resolution service — the paper's proposed
/// augmentation for device mobility ("a next-generation name resolution
/// service [49]", MobilityFirst's GNS). Replicas hold copies of a mobile
/// endpoint's location record; clients query their nearest replica;
/// updates land at the replica nearest the device and propagate to the
/// rest with network delay. More replicas cut lookup latency and spread
/// update load, at the price of wider (but still O(replicas), not
/// O(routers)) update fan-out.
class ResolverPool {
 public:
  /// Throws if `replicas` is empty or contains out-of-range ASes.
  /// Duplicate replica ASes are deduplicated (first occurrence kept):
  /// a pool is a set of resolver sites, and duplicates would silently
  /// inflate update_message_count() and the propagation fan-out.
  ResolverPool(const ForwardingFabric& fabric,
               std::vector<topology::AsId> replicas);

  [[nodiscard]] std::span<const topology::AsId> replicas() const {
    return replicas_;
  }

  /// Index into replicas() of `replica`; throws std::invalid_argument if
  /// the AS hosts no replica.
  [[nodiscard]] std::size_t replica_index(topology::AsId replica) const;

  /// The nearest replica and its one-way delay, as one cached record.
  /// Both nearest_replica() and nearest_replica_delay_ms() route through
  /// this lookup, so the per-replica delay scan runs once per client per
  /// pool instead of once per call (sessions probe their resolver every
  /// packet). delay_ms is +inf when no replica is reachable.
  struct NearestReplica {
    topology::AsId replica = 0;
    double delay_ms = 0.0;
  };

  /// The replica with the lowest path delay from `client`.
  [[nodiscard]] topology::AsId nearest_replica(topology::AsId client) const;

  /// The *live* replica (per `failures` at `time_ms`) with the lowest
  /// failure-aware path delay from `client`; nullopt when every replica is
  /// down or unreachable. This is the failover target a client retries
  /// against after its preferred replica stops answering.
  [[nodiscard]] std::optional<topology::AsId> nearest_live_replica(
      topology::AsId client, const FailurePlan& failures,
      double time_ms) const;

  /// One-way delay from `client` to its nearest replica.
  [[nodiscard]] double nearest_replica_delay_ms(topology::AsId client) const;

  /// Per-replica record-arrival times for an update issued at
  /// `update_time_ms` from `device_as`: the update reaches the nearest
  /// replica first and is relayed from there to every other replica.
  /// Result is indexed like replicas().
  [[nodiscard]] std::vector<double> propagation_times_ms(
      topology::AsId device_as, double update_time_ms) const;

  /// Messages one update costs: one device->primary message plus
  /// replicas() - 1 primary->secondary relays, i.e. exactly replicas()
  /// messages. A single-replica pool therefore costs exactly 1 (the
  /// device->primary message; there is nothing to relay). Replicas are
  /// deduplicated at construction, so duplicates never inflate this.
  [[nodiscard]] std::size_t update_message_count() const {
    return replicas_.size();
  }

  /// Places `count` replicas on the prefix-announcing ASes nearest the
  /// world metro anchors (round-robin), the natural GNS deployment.
  [[nodiscard]] static std::vector<topology::AsId> metro_placement(
      const routing::SyntheticInternet& internet, std::size_t count);

 private:
  /// The memoized scan behind nearest_replica / nearest_replica_delay_ms.
  [[nodiscard]] const NearestReplica& nearest(topology::AsId client) const;

  const ForwardingFabric* fabric_;
  std::vector<topology::AsId> replicas_;
  // Striped-shared-mutex memo (the ForwardingFabric cache idiom): pools
  // are shared across lina::exec bench cells, and the scan result is a
  // pure function of (pool, client), so caching is thread-safe and
  // thread-count-invariant.
  exec::Memo<topology::AsId, NearestReplica> nearest_cache_;
};

}  // namespace lina::sim
