#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "lina/routing/synthetic_internet.hpp"
#include "lina/topology/as_graph.hpp"

namespace lina::sim {

struct FabricConfig {
  double per_hop_ms = 2.0;   // per-AS processing/queueing
  double inflation = 1.6;    // geographic route inflation
  double min_link_ms = 0.2;  // floor for intra-metro links
};

/// The packet-forwarding substrate: per-destination next hops along the
/// synthetic Internet's valley-free policy routes, and per-link delays
/// from AS geography. All architecture simulators forward through this
/// fabric; they differ only in *which destination* each element of the
/// network believes the mobile endpoint is at.
class ForwardingFabric {
 public:
  explicit ForwardingFabric(const routing::SyntheticInternet& internet,
                            FabricConfig config = {});

  /// Next hop from `at` toward destination AS `dest`; `at` itself when
  /// at == dest; nullopt if the policy plane has no route.
  [[nodiscard]] std::optional<topology::AsId> next_hop(
      topology::AsId at, topology::AsId dest) const;

  /// One-hop delay across the (a, b) link.
  [[nodiscard]] double link_delay_ms(topology::AsId a,
                                     topology::AsId b) const;

  /// End-to-end delay along the policy route, or nullopt if unroutable.
  [[nodiscard]] std::optional<double> path_delay_ms(topology::AsId from,
                                                    topology::AsId to) const;

  /// Hop count of the policy route, or nullopt.
  [[nodiscard]] std::optional<std::size_t> path_hops(
      topology::AsId from, topology::AsId to) const;

  /// Physical (policy-free) AS-hop distance; used for update wavefronts.
  [[nodiscard]] std::size_t physical_hops(topology::AsId from,
                                          topology::AsId to) const;

  [[nodiscard]] const routing::SyntheticInternet& internet() const {
    return *internet_;
  }
  [[nodiscard]] const FabricConfig& config() const { return config_; }

 private:
  const std::vector<topology::AsId>& next_hops_toward(
      topology::AsId dest) const;
  const std::vector<std::size_t>& bfs_from(topology::AsId source) const;

  const routing::SyntheticInternet* internet_;
  FabricConfig config_;
  mutable std::unordered_map<topology::AsId, std::vector<topology::AsId>>
      next_hop_cache_;
  mutable std::unordered_map<topology::AsId, std::vector<std::size_t>>
      bfs_cache_;
};

}  // namespace lina::sim
