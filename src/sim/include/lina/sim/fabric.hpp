#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "lina/exec/memo.hpp"
#include "lina/routing/synthetic_internet.hpp"
#include "lina/topology/as_graph.hpp"

namespace lina::sim {

class FailurePlan;

struct FabricConfig {
  double per_hop_ms = 2.0;   // per-AS processing/queueing
  double inflation = 1.6;    // geographic route inflation
  double min_link_ms = 0.2;  // floor for intra-metro links
};

/// The packet-forwarding substrate: per-destination next hops along the
/// synthetic Internet's valley-free policy routes, and per-link delays
/// from AS geography. All architecture simulators forward through this
/// fabric; they differ only in *which destination* each element of the
/// network believes the mobile endpoint is at.
///
/// Thread-safe: one fabric may be shared by any number of concurrent
/// sessions / query threads (lina::exec workers). The per-destination
/// route tables, BFS distance rows, degraded graphs, and detour tables
/// are memoized behind striped shared mutexes, and each entry is built
/// exactly once per key — so the cached values, and every query result,
/// are bit-identical whether the fabric is driven by one thread or many.
class ForwardingFabric {
 public:
  explicit ForwardingFabric(const routing::SyntheticInternet& internet,
                            FabricConfig config = {});

  /// Next hop from `at` toward destination AS `dest`; `at` itself when
  /// at == dest; nullopt if the policy plane has no route.
  [[nodiscard]] std::optional<topology::AsId> next_hop(
      topology::AsId at, topology::AsId dest) const;

  /// One-hop delay across the (a, b) link.
  [[nodiscard]] double link_delay_ms(topology::AsId a,
                                     topology::AsId b) const;

  /// End-to-end delay along the policy route, or nullopt if unroutable.
  [[nodiscard]] std::optional<double> path_delay_ms(topology::AsId from,
                                                    topology::AsId to) const;

  /// Hop count of the policy route, or nullopt.
  [[nodiscard]] std::optional<std::size_t> path_hops(
      topology::AsId from, topology::AsId to) const;

  /// Physical (policy-free) AS-hop distance; used for update wavefronts.
  [[nodiscard]] std::size_t physical_hops(topology::AsId from,
                                          topology::AsId to) const;

  // Failure-aware forwarding (the FailurePlan layer). When no data-plane
  // fault is active at `time_ms` these delegate to the base queries and
  // return bit-identical results; when the policy route is broken by an
  // active fault they fall back to the valley-free policy route recomputed
  // on the surviving topology (dead ASes and cut links removed), modelling
  // BGP reconvergence — detours stay policy-compliant, they do not become
  // delay-optimal shortcuts. Unroutable (nullopt) when the fault kills an
  // endpoint or no valley-free route survives.

  /// Failure-aware next hop from `at` toward `dest`.
  [[nodiscard]] std::optional<topology::AsId> next_hop(
      topology::AsId at, topology::AsId dest, const FailurePlan& failures,
      double time_ms) const;

  /// Failure-aware end-to-end delay.
  [[nodiscard]] std::optional<double> path_delay_ms(
      topology::AsId from, topology::AsId to, const FailurePlan& failures,
      double time_ms) const;

  /// True when the policy route from -> to traverses an AS or link that a
  /// fault has taken down at `time_ms` (or no policy route exists while
  /// the data plane is impaired).
  [[nodiscard]] bool policy_path_impaired(topology::AsId from,
                                          topology::AsId to,
                                          const FailurePlan& failures,
                                          double time_ms) const;

  [[nodiscard]] const routing::SyntheticInternet& internet() const {
    return *internet_;
  }
  [[nodiscard]] const FabricConfig& config() const { return config_; }

 private:
  const std::vector<topology::AsId>& next_hops_toward(
      topology::AsId dest) const;
  const std::vector<std::size_t>& bfs_from(topology::AsId source) const;
  /// The AS graph with dead ASes isolated and cut links removed at the
  /// plan's data-plane epoch covering `time_ms`; same dense AS ids as the
  /// healthy graph. Cached per (plan stamp, epoch).
  const topology::AsGraph& degraded_graph(const FailurePlan& failures,
                                          double time_ms) const;
  /// Valley-free next hops toward `dest` on the degraded graph (post-
  /// reconvergence routes); cached per (plan stamp, epoch, dest).
  const std::vector<topology::AsId>& detour_hops_toward(
      topology::AsId dest, const FailurePlan& failures, double time_ms) const;

  const routing::SyntheticInternet* internet_;
  FabricConfig config_;
  // Striped-shared-mutex memoizers (lina::exec): lazy like the original
  // std::map caches, but safely shareable across workers. The degraded /
  // detour keys are hashed tuples instead of ordered tuple-keyed maps —
  // O(1) lookups on the failure-aware hot path.
  exec::Memo<topology::AsId, std::vector<topology::AsId>> next_hop_cache_;
  exec::Memo<topology::AsId, std::vector<std::size_t>> bfs_cache_;
  exec::Memo<std::pair<std::uint64_t, std::size_t>, topology::AsGraph,
             exec::TupleHash>
      degraded_graph_cache_;
  exec::Memo<std::tuple<std::uint64_t, std::size_t, topology::AsId>,
             std::vector<topology::AsId>, exec::TupleHash>
      detour_cache_;
};

}  // namespace lina::sim
