#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

namespace lina::sim {

/// An NDN-style router content store: an LRU cache of content segments.
/// Capacity 0 disables caching (every lookup misses).
class ContentStore {
 public:
  explicit ContentStore(std::size_t capacity) : capacity_(capacity) {}

  /// True iff the segment is cached; a hit refreshes its recency.
  bool lookup(std::uint64_t segment);

  /// Inserts (or refreshes) a segment, evicting the least recently used
  /// entry when full.
  void insert(std::uint64_t segment);

  [[nodiscard]] bool contains(std::uint64_t segment) const {
    return index_.contains(segment);
  }
  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::list<std::uint64_t> recency_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
      index_;
};

}  // namespace lina::sim
