#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "lina/topology/as_graph.hpp"

namespace lina::sim {

/// What breaks. AS outages and link cuts impair the data plane (packets
/// must route around them or are lost); home-agent and resolver crashes
/// kill one architecture's control-plane process while its hosting AS
/// keeps forwarding transit traffic; update loss drops individual control
/// messages with a seeded coin.
enum class FailureKind : std::uint8_t {
  kAsOutage,        // the whole AS goes dark: no transit, no delivery
  kLinkCut,         // one inter-AS adjacency down (both directions)
  kHomeAgentCrash,  // the indirection home agent hosted at `element`
  kResolverCrash,   // the resolver / GNS replica hosted at `element`
  kUpdateLoss,      // control messages dropped w.p. loss_probability
};

[[nodiscard]] std::string_view failure_kind_name(FailureKind kind);

/// One scheduled fault, active over [start_ms, end_ms); end_ms is the
/// repair instant.
struct FailureEvent {
  FailureKind kind = FailureKind::kAsOutage;
  double start_ms = 0.0;
  double end_ms = 0.0;
  topology::AsId element = 0;    // the AS (outage / crash) or link end a
  topology::AsId element_b = 0;  // link end b (kLinkCut only)
  double loss_probability = 1.0;  // kUpdateLoss only
};

/// A deterministic, seedable schedule of faults injected into a session.
///
/// The plan is pure data plus point-in-time queries; the simulators and
/// the ForwardingFabric consult it at every forwarding and control-plane
/// decision. An empty plan is the contract for "failure-free": simulators
/// take bit-identical code paths to the pre-failure-layer implementation.
class FailurePlan {
 public:
  FailurePlan() = default;
  /// `seed` drives only the kUpdateLoss coin; everything else is exact.
  explicit FailurePlan(std::uint64_t seed) : seed_(seed) {}

  /// Adds one fault. Throws std::invalid_argument on end <= start,
  /// negative start, a self-loop link cut, or a loss probability outside
  /// [0, 1].
  FailurePlan& add(const FailureEvent& event);

  FailurePlan& as_outage(topology::AsId as, double start_ms, double end_ms);
  FailurePlan& link_cut(topology::AsId a, topology::AsId b, double start_ms,
                        double end_ms);
  FailurePlan& home_agent_crash(topology::AsId as, double start_ms,
                                double end_ms);
  FailurePlan& resolver_crash(topology::AsId as, double start_ms,
                              double end_ms);
  FailurePlan& update_loss(double probability, double start_ms,
                           double end_ms);

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] const std::vector<FailureEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Identity stamp for route caches: distinct across plans with distinct
  /// fault sets (bumped on every add). Copies share the stamp until
  /// modified, which is sound — equal fault sets imply equal routes.
  [[nodiscard]] std::uint64_t stamp() const { return stamp_; }

  [[nodiscard]] bool as_down(topology::AsId as, double time_ms) const;
  [[nodiscard]] bool link_down(topology::AsId a, topology::AsId b,
                               double time_ms) const;
  /// Crash queries include kAsOutage of the hosting AS: a dark AS takes
  /// its control-plane processes with it.
  [[nodiscard]] bool home_agent_down(topology::AsId as, double time_ms) const;
  [[nodiscard]] bool resolver_down(topology::AsId as, double time_ms) const;

  /// Any fault of any kind active at `time_ms` (used to classify packets
  /// as sent "during failure").
  [[nodiscard]] bool any_active(double time_ms) const;

  /// An AS outage or link cut is active: forwarding decisions must consult
  /// the failure-aware fabric paths.
  [[nodiscard]] bool data_plane_impaired(double time_ms) const;

  /// Seeded, order-independent coin for a session's `message_id`-th
  /// control message sent at `time_ms`: true iff an active kUpdateLoss
  /// window drops it. With overlapping windows the drop probability
  /// composes as 1 - prod(1 - p_i).
  [[nodiscard]] bool control_message_lost(std::uint64_t message_id,
                                          double time_ms) const;

  /// Index of the piecewise-constant interval of "which data-plane
  /// elements are dead" containing `time_ms`; a stable cache key for
  /// failure-aware route trees.
  [[nodiscard]] std::size_t data_plane_epoch(double time_ms) const;

  /// Sorted distinct repair instants (event end times) of every fault;
  /// sessions use these to measure time-to-recover.
  [[nodiscard]] std::vector<double> repair_times() const;

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t stamp_ = 0;
  std::vector<FailureEvent> events_;
  std::vector<double> data_plane_boundaries_;  // sorted starts/ends
};

}  // namespace lina::sim
