#include "lina/sim/failure_plan.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "lina/obs/metrics.hpp"
#include "lina/obs/trace.hpp"

namespace lina::sim {

using topology::AsId;

namespace {

std::uint64_t next_stamp() {
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;
}

/// splitmix64: a strong 64->64 mixer, so the loss coin for message n is
/// independent of the coins before it (and of event-execution order).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool active(const FailureEvent& event, double time_ms) {
  return event.start_ms <= time_ms && time_ms < event.end_ms;
}

bool is_data_plane(FailureKind kind) {
  return kind == FailureKind::kAsOutage || kind == FailureKind::kLinkCut;
}

}  // namespace

std::string_view failure_kind_name(FailureKind kind) {
  switch (kind) {
    case FailureKind::kAsOutage:
      return "AS outage";
    case FailureKind::kLinkCut:
      return "link cut";
    case FailureKind::kHomeAgentCrash:
      return "home-agent crash";
    case FailureKind::kResolverCrash:
      return "resolver crash";
    case FailureKind::kUpdateLoss:
      return "update-message loss";
  }
  throw std::invalid_argument("failure_kind_name: unknown kind");
}

FailurePlan& FailurePlan::add(const FailureEvent& event) {
  if (event.start_ms < 0.0 || event.end_ms <= event.start_ms)
    throw std::invalid_argument("FailurePlan: window must satisfy 0 <= start < end");
  if (event.kind == FailureKind::kLinkCut && event.element == event.element_b)
    throw std::invalid_argument("FailurePlan: link cut needs two distinct ASes");
  if (event.kind == FailureKind::kUpdateLoss &&
      (event.loss_probability < 0.0 || event.loss_probability > 1.0))
    throw std::invalid_argument("FailurePlan: loss probability outside [0, 1]");
  events_.push_back(event);
  stamp_ = next_stamp();
  obs::metric::failure_plan_events().add();
  if (is_data_plane(event.kind)) {
    data_plane_boundaries_.push_back(event.start_ms);
    data_plane_boundaries_.push_back(event.end_ms);
    std::sort(data_plane_boundaries_.begin(), data_plane_boundaries_.end());
    data_plane_boundaries_.erase(
        std::unique(data_plane_boundaries_.begin(),
                    data_plane_boundaries_.end()),
        data_plane_boundaries_.end());
  }
  return *this;
}

FailurePlan& FailurePlan::as_outage(AsId as, double start_ms, double end_ms) {
  return add({FailureKind::kAsOutage, start_ms, end_ms, as, 0, 1.0});
}

FailurePlan& FailurePlan::link_cut(AsId a, AsId b, double start_ms,
                                   double end_ms) {
  return add({FailureKind::kLinkCut, start_ms, end_ms, a, b, 1.0});
}

FailurePlan& FailurePlan::home_agent_crash(AsId as, double start_ms,
                                           double end_ms) {
  return add({FailureKind::kHomeAgentCrash, start_ms, end_ms, as, 0, 1.0});
}

FailurePlan& FailurePlan::resolver_crash(AsId as, double start_ms,
                                         double end_ms) {
  return add({FailureKind::kResolverCrash, start_ms, end_ms, as, 0, 1.0});
}

FailurePlan& FailurePlan::update_loss(double probability, double start_ms,
                                      double end_ms) {
  return add({FailureKind::kUpdateLoss, start_ms, end_ms, 0, 0, probability});
}

bool FailurePlan::as_down(AsId as, double time_ms) const {
  for (const FailureEvent& event : events_) {
    if (event.kind == FailureKind::kAsOutage && event.element == as &&
        active(event, time_ms))
      return true;
  }
  return false;
}

bool FailurePlan::link_down(AsId a, AsId b, double time_ms) const {
  for (const FailureEvent& event : events_) {
    if (event.kind != FailureKind::kLinkCut || !active(event, time_ms))
      continue;
    if ((event.element == a && event.element_b == b) ||
        (event.element == b && event.element_b == a))
      return true;
  }
  return false;
}

bool FailurePlan::home_agent_down(AsId as, double time_ms) const {
  for (const FailureEvent& event : events_) {
    if (event.kind == FailureKind::kHomeAgentCrash && event.element == as &&
        active(event, time_ms))
      return true;
  }
  return as_down(as, time_ms);
}

bool FailurePlan::resolver_down(AsId as, double time_ms) const {
  for (const FailureEvent& event : events_) {
    if (event.kind == FailureKind::kResolverCrash && event.element == as &&
        active(event, time_ms))
      return true;
  }
  return as_down(as, time_ms);
}

bool FailurePlan::any_active(double time_ms) const {
  for (const FailureEvent& event : events_) {
    if (active(event, time_ms)) return true;
  }
  return false;
}

bool FailurePlan::data_plane_impaired(double time_ms) const {
  for (const FailureEvent& event : events_) {
    if (is_data_plane(event.kind) && active(event, time_ms)) return true;
  }
  return false;
}

bool FailurePlan::control_message_lost(std::uint64_t message_id,
                                       double time_ms) const {
  double survive = 1.0;
  for (const FailureEvent& event : events_) {
    if (event.kind == FailureKind::kUpdateLoss && active(event, time_ms))
      survive *= 1.0 - event.loss_probability;
  }
  if (survive >= 1.0) return false;
  const double coin =
      static_cast<double>(mix64(seed_ ^ mix64(message_id)) >> 11) *
      0x1.0p-53;  // uniform in [0, 1)
  const bool lost = coin >= survive;
  if (lost) {
    obs::metric::failure_control_drops().add();
    obs::TraceRing::instance().record("lina.sim.failure.control_drop",
                                      time_ms,
                                      static_cast<double>(message_id));
  }
  return lost;
}

std::size_t FailurePlan::data_plane_epoch(double time_ms) const {
  return static_cast<std::size_t>(
      std::upper_bound(data_plane_boundaries_.begin(),
                       data_plane_boundaries_.end(), time_ms) -
      data_plane_boundaries_.begin());
}

std::vector<double> FailurePlan::repair_times() const {
  std::vector<double> times;
  times.reserve(events_.size());
  for (const FailureEvent& event : events_) times.push_back(event.end_ms);
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

}  // namespace lina::sim
