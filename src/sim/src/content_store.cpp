#include "lina/sim/content_store.hpp"

namespace lina::sim {

bool ContentStore::lookup(std::uint64_t segment) {
  const auto it = index_.find(segment);
  if (it == index_.end()) return false;
  recency_.splice(recency_.begin(), recency_, it->second);
  return true;
}

void ContentStore::insert(std::uint64_t segment) {
  if (capacity_ == 0) return;
  const auto it = index_.find(segment);
  if (it != index_.end()) {
    recency_.splice(recency_.begin(), recency_, it->second);
    return;
  }
  if (index_.size() == capacity_) {
    index_.erase(recency_.back());
    recency_.pop_back();
  }
  recency_.push_front(segment);
  index_[segment] = recency_.begin();
}

}  // namespace lina::sim
