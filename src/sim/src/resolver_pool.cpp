#include "lina/sim/resolver_pool.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "lina/obs/metrics.hpp"
#include "lina/obs/trace.hpp"
#include "lina/prof/prof.hpp"

namespace lina::sim {

using topology::AsId;

ResolverPool::ResolverPool(const ForwardingFabric& fabric,
                           std::vector<AsId> replicas)
    : fabric_(&fabric), replicas_(std::move(replicas)) {
  if (replicas_.empty())
    throw std::invalid_argument("ResolverPool: no replicas");
  for (const AsId replica : replicas_) {
    if (replica >= fabric.internet().graph().as_count())
      throw std::out_of_range("ResolverPool: replica AS out of range");
  }
  // Deduplicate, keeping first occurrences in order: duplicates would
  // silently inflate update_message_count() and the relay fan-out.
  std::vector<AsId> unique;
  unique.reserve(replicas_.size());
  for (const AsId replica : replicas_) {
    if (std::find(unique.begin(), unique.end(), replica) == unique.end())
      unique.push_back(replica);
  }
  replicas_ = std::move(unique);
}

std::size_t ResolverPool::replica_index(AsId replica) const {
  const auto it = std::find(replicas_.begin(), replicas_.end(), replica);
  if (it == replicas_.end())
    throw std::invalid_argument("ResolverPool: AS hosts no replica");
  return static_cast<std::size_t>(it - replicas_.begin());
}

const ResolverPool::NearestReplica& ResolverPool::nearest(
    AsId client) const {
  return nearest_cache_.get_or_build(client, [&]() -> NearestReplica {
    PROF_SPAN("lina.resolver.lookup");
    NearestReplica entry{replicas_.front(),
                         std::numeric_limits<double>::infinity()};
    for (const AsId replica : replicas_) {
      const auto delay = fabric_->path_delay_ms(client, replica);
      if (delay.has_value() && *delay < entry.delay_ms) {
        entry.delay_ms = *delay;
        entry.replica = replica;
      }
    }
    if (entry.delay_ms < std::numeric_limits<double>::infinity())
      obs::metric::resolver_lookup_delay_ms().record(entry.delay_ms);
    return entry;
  });
}

AsId ResolverPool::nearest_replica(AsId client) const {
  obs::metric::resolver_lookups().add();
  return nearest(client).replica;
}

std::optional<AsId> ResolverPool::nearest_live_replica(
    AsId client, const FailurePlan& failures, double time_ms) const {
  PROF_SPAN("lina.resolver.failover_lookup");
  obs::metric::resolver_failover_lookups().add();
  obs::TraceRing::instance().record("lina.sim.resolver.failover_lookup",
                                    time_ms, static_cast<double>(client));
  std::optional<AsId> best;
  double best_delay = std::numeric_limits<double>::infinity();
  for (const AsId replica : replicas_) {
    if (failures.resolver_down(replica, time_ms)) continue;
    const auto delay =
        fabric_->path_delay_ms(client, replica, failures, time_ms);
    if (delay.has_value() && *delay < best_delay) {
      best_delay = *delay;
      best = replica;
    }
  }
  return best;
}

double ResolverPool::nearest_replica_delay_ms(AsId client) const {
  obs::metric::resolver_lookups().add();
  return nearest(client).delay_ms;
}

std::vector<double> ResolverPool::propagation_times_ms(
    AsId device_as, double update_time_ms) const {
  PROF_SPAN("lina.resolver.update_propagate");
  obs::metric::resolver_updates().add();
  const AsId primary = nearest_replica(device_as);
  const double at_primary =
      update_time_ms +
      fabric_->path_delay_ms(device_as, primary).value_or(0.0);
  std::vector<double> times;
  times.reserve(replicas_.size());
  for (const AsId replica : replicas_) {
    if (replica == primary) {
      times.push_back(at_primary);
    } else {
      times.push_back(at_primary +
                      fabric_->path_delay_ms(primary, replica).value_or(0.0));
    }
  }
  return times;
}

std::vector<AsId> ResolverPool::metro_placement(
    const routing::SyntheticInternet& internet, std::size_t count) {
  std::vector<AsId> out;
  const auto anchors = topology::metro_anchors();
  std::size_t anchor = 0;
  while (out.size() < count) {
    const auto near =
        internet.edge_ases_near(anchors[anchor % anchors.size()],
                                1 + anchor / anchors.size());
    const AsId candidate = near.back();
    if (std::find(out.begin(), out.end(), candidate) == out.end()) {
      out.push_back(candidate);
    }
    ++anchor;
    if (anchor > count * anchors.size() + anchors.size()) break;  // safety
  }
  return out;
}

}  // namespace lina::sim
