#include "lina/sim/fabric.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

#include "lina/routing/policy_routing.hpp"
#include "lina/topology/geo.hpp"
#include "lina/topology/graph.hpp"

namespace lina::sim {

using topology::AsId;

namespace {
constexpr std::size_t kUnreached = std::numeric_limits<std::size_t>::max();
}

ForwardingFabric::ForwardingFabric(const routing::SyntheticInternet& internet,
                                   FabricConfig config)
    : internet_(&internet), config_(config) {}

const std::vector<AsId>& ForwardingFabric::next_hops_toward(AsId dest) const {
  const auto it = next_hop_cache_.find(dest);
  if (it != next_hop_cache_.end()) return it->second;

  const auto& graph = internet_->graph();
  const routing::PolicyRoutes routes(graph, dest);
  std::vector<AsId> hops(graph.as_count(), topology::kNoNode);
  hops[dest] = dest;
  for (AsId u = 0; u < graph.as_count(); ++u) {
    if (u == dest) continue;
    const auto path = routes.best_path(u);
    if (path.has_value() && !path->empty()) hops[u] = path->next_hop();
  }
  return next_hop_cache_.emplace(dest, std::move(hops)).first->second;
}

std::optional<AsId> ForwardingFabric::next_hop(AsId at, AsId dest) const {
  if (at >= internet_->graph().as_count() ||
      dest >= internet_->graph().as_count())
    throw std::out_of_range("ForwardingFabric::next_hop");
  const AsId hop = next_hops_toward(dest)[at];
  if (hop == topology::kNoNode) return std::nullopt;
  return hop;
}

double ForwardingFabric::link_delay_ms(AsId a, AsId b) const {
  const double propagation = topology::propagation_delay_ms(
      internet_->graph().location(a), internet_->graph().location(b),
      config_.inflation);
  return std::max(config_.min_link_ms, propagation + config_.per_hop_ms);
}

std::optional<double> ForwardingFabric::path_delay_ms(AsId from,
                                                      AsId to) const {
  double total = 0.0;
  AsId current = from;
  std::size_t guard = 0;
  while (current != to) {
    const auto hop = next_hop(current, to);
    if (!hop.has_value()) return std::nullopt;
    total += link_delay_ms(current, *hop);
    current = *hop;
    if (++guard > internet_->graph().as_count())
      throw std::logic_error("ForwardingFabric: routing loop");
  }
  return total;
}

std::optional<std::size_t> ForwardingFabric::path_hops(AsId from,
                                                       AsId to) const {
  std::size_t hops = 0;
  AsId current = from;
  while (current != to) {
    const auto hop = next_hop(current, to);
    if (!hop.has_value()) return std::nullopt;
    current = *hop;
    if (++hops > internet_->graph().as_count())
      throw std::logic_error("ForwardingFabric: routing loop");
  }
  return hops;
}

const std::vector<std::size_t>& ForwardingFabric::bfs_from(
    AsId source) const {
  const auto it = bfs_cache_.find(source);
  if (it != bfs_cache_.end()) return it->second;
  const auto& graph = internet_->graph();
  std::vector<std::size_t> dist(graph.as_count(), kUnreached);
  dist[source] = 0;
  std::deque<AsId> queue{source};
  while (!queue.empty()) {
    const AsId u = queue.front();
    queue.pop_front();
    for (const auto& link : graph.links(u)) {
      if (dist[link.neighbor] == kUnreached) {
        dist[link.neighbor] = dist[u] + 1;
        queue.push_back(link.neighbor);
      }
    }
  }
  return bfs_cache_.emplace(source, std::move(dist)).first->second;
}

std::size_t ForwardingFabric::physical_hops(AsId from, AsId to) const {
  if (from >= internet_->graph().as_count() ||
      to >= internet_->graph().as_count())
    throw std::out_of_range("ForwardingFabric::physical_hops");
  const std::size_t d = bfs_from(from)[to];
  if (d == kUnreached)
    throw std::logic_error("ForwardingFabric: disconnected AS graph");
  return d;
}

}  // namespace lina::sim
