#include "lina/sim/fabric.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>
#include <utility>

#include "lina/obs/metrics.hpp"
#include "lina/obs/trace.hpp"
#include "lina/prof/prof.hpp"
#include "lina/routing/policy_routing.hpp"
#include "lina/sim/failure_plan.hpp"
#include "lina/topology/geo.hpp"
#include "lina/topology/graph.hpp"

namespace lina::sim {

using topology::AsId;

namespace {
constexpr std::size_t kUnreached = std::numeric_limits<std::size_t>::max();
}

ForwardingFabric::ForwardingFabric(const routing::SyntheticInternet& internet,
                                   FabricConfig config)
    : internet_(&internet), config_(config) {}

const std::vector<AsId>& ForwardingFabric::next_hops_toward(AsId dest) const {
  return next_hop_cache_.get_or_build(dest, [&] {
    PROF_SPAN("lina.fabric.route_build");
    const auto& graph = internet_->graph();
    const routing::PolicyRoutes routes(graph, dest);
    std::vector<AsId> hops(graph.as_count(), topology::kNoNode);
    hops[dest] = dest;
    for (AsId u = 0; u < graph.as_count(); ++u) {
      if (u == dest) continue;
      const auto path = routes.best_path(u);
      if (path.has_value() && !path->empty()) hops[u] = path->next_hop();
    }
    return hops;
  });
}

std::optional<AsId> ForwardingFabric::next_hop(AsId at, AsId dest) const {
  if (at >= internet_->graph().as_count() ||
      dest >= internet_->graph().as_count())
    throw std::out_of_range("ForwardingFabric::next_hop");
  obs::metric::fabric_next_hop_queries().add();
  const AsId hop = next_hops_toward(dest)[at];
  if (hop == topology::kNoNode) return std::nullopt;
  return hop;
}

double ForwardingFabric::link_delay_ms(AsId a, AsId b) const {
  const double propagation = topology::propagation_delay_ms(
      internet_->graph().location(a), internet_->graph().location(b),
      config_.inflation);
  return std::max(config_.min_link_ms, propagation + config_.per_hop_ms);
}

std::optional<double> ForwardingFabric::path_delay_ms(AsId from,
                                                      AsId to) const {
  double total = 0.0;
  AsId current = from;
  std::size_t guard = 0;
  while (current != to) {
    const auto hop = next_hop(current, to);
    if (!hop.has_value()) return std::nullopt;
    total += link_delay_ms(current, *hop);
    current = *hop;
    if (++guard > internet_->graph().as_count())
      throw std::logic_error("ForwardingFabric: routing loop");
  }
  return total;
}

std::optional<std::size_t> ForwardingFabric::path_hops(AsId from,
                                                       AsId to) const {
  std::size_t hops = 0;
  AsId current = from;
  while (current != to) {
    const auto hop = next_hop(current, to);
    if (!hop.has_value()) return std::nullopt;
    current = *hop;
    if (++hops > internet_->graph().as_count())
      throw std::logic_error("ForwardingFabric: routing loop");
  }
  return hops;
}

const std::vector<std::size_t>& ForwardingFabric::bfs_from(
    AsId source) const {
  return bfs_cache_.get_or_build(source, [&] {
    PROF_SPAN("lina.fabric.bfs_row");
    const auto& graph = internet_->graph();
    std::vector<std::size_t> dist(graph.as_count(), kUnreached);
    dist[source] = 0;
    std::deque<AsId> queue{source};
    while (!queue.empty()) {
      const AsId u = queue.front();
      queue.pop_front();
      for (const auto& link : graph.links(u)) {
        if (dist[link.neighbor] == kUnreached) {
          dist[link.neighbor] = dist[u] + 1;
          queue.push_back(link.neighbor);
        }
      }
    }
    return dist;
  });
}

bool ForwardingFabric::policy_path_impaired(AsId from, AsId to,
                                            const FailurePlan& failures,
                                            double time_ms) const {
  if (!failures.data_plane_impaired(time_ms)) return false;
  obs::metric::fabric_impaired_path_checks().add();
  if (failures.as_down(from, time_ms) || failures.as_down(to, time_ms))
    return true;
  const auto& hops = next_hops_toward(to);
  AsId current = from;
  std::size_t guard = 0;
  while (current != to) {
    const AsId hop = hops[current];
    if (hop == topology::kNoNode) return true;  // no policy route: detour
    if (failures.as_down(hop, time_ms) ||
        failures.link_down(current, hop, time_ms))
      return true;
    current = hop;
    if (++guard > internet_->graph().as_count())
      throw std::logic_error("ForwardingFabric: routing loop");
  }
  return false;
}

const topology::AsGraph& ForwardingFabric::degraded_graph(
    const FailurePlan& failures, double time_ms) const {
  const auto key =
      std::make_pair(failures.stamp(), failures.data_plane_epoch(time_ms));
  return degraded_graph_cache_.get_or_build(key, [&] {
    PROF_SPAN("lina.fabric.degraded_graph_build");
    obs::metric::fabric_degraded_graph_builds().add();

    // Rebuild the AS graph without the elements the plan has taken down.
    // Every AS keeps its dense id (dead ones just lose all adjacencies), so
    // routes computed on the copy index directly into the healthy graph.
    const auto& graph = internet_->graph();
    topology::AsGraph degraded;
    for (AsId as = 0; as < graph.as_count(); ++as)
      degraded.add_as(graph.tier(as), graph.location(as));
    for (AsId u = 0; u < graph.as_count(); ++u) {
      if (failures.as_down(u, time_ms)) continue;
      for (const auto& link : graph.links(u)) {
        const AsId v = link.neighbor;
        if (v < u) continue;  // each undirected link once
        if (failures.as_down(v, time_ms) || failures.link_down(u, v, time_ms))
          continue;
        switch (link.rel) {  // role of v relative to u
          case topology::AsRelationship::kProvider:
            degraded.add_provider_link(u, v);
            break;
          case topology::AsRelationship::kCustomer:
            degraded.add_provider_link(v, u);
            break;
          case topology::AsRelationship::kPeer:
            degraded.add_peer_link(u, v);
            break;
        }
      }
    }
    return degraded;
  });
}

const std::vector<AsId>& ForwardingFabric::detour_hops_toward(
    AsId dest, const FailurePlan& failures, double time_ms) const {
  const auto key = std::make_tuple(failures.stamp(),
                                   failures.data_plane_epoch(time_ms), dest);
  return detour_cache_.get_or_build(key, [&] {
    PROF_SPAN("lina.fabric.detour_build");
    obs::metric::fabric_detour_route_builds().add();
    obs::TraceRing::instance().record("lina.sim.fabric.reconverge", time_ms,
                                      static_cast<double>(dest));

    // BGP reconvergence: valley-free policy routes on the surviving
    // topology. Detours therefore obey the same export rules as healthy
    // routes — a failure can only lengthen (or sever) a path, never grant a
    // cheaper one than policy allows.
    const auto& graph = degraded_graph(failures, time_ms);
    std::vector<AsId> hops(graph.as_count(), topology::kNoNode);
    if (!failures.as_down(dest, time_ms)) {
      const routing::PolicyRoutes routes(graph, dest);
      hops[dest] = dest;
      for (AsId u = 0; u < graph.as_count(); ++u) {
        if (u == dest || failures.as_down(u, time_ms)) continue;
        const auto path = routes.best_path(u);
        if (path.has_value() && !path->empty()) hops[u] = path->next_hop();
      }
    }
    return hops;
  });
}

std::optional<AsId> ForwardingFabric::next_hop(AsId at, AsId dest,
                                               const FailurePlan& failures,
                                               double time_ms) const {
  if (!failures.data_plane_impaired(time_ms)) return next_hop(at, dest);
  if (failures.as_down(at, time_ms) || failures.as_down(dest, time_ms))
    return std::nullopt;
  if (at == dest) return at;
  if (!policy_path_impaired(at, dest, failures, time_ms))
    return next_hop(at, dest);
  obs::metric::fabric_detour_hops().add();
  const AsId hop = detour_hops_toward(dest, failures, time_ms)[at];
  if (hop == topology::kNoNode) return std::nullopt;
  return hop;
}

std::optional<double> ForwardingFabric::path_delay_ms(
    AsId from, AsId to, const FailurePlan& failures, double time_ms) const {
  if (!failures.data_plane_impaired(time_ms))
    return path_delay_ms(from, to);
  if (failures.as_down(from, time_ms) || failures.as_down(to, time_ms))
    return std::nullopt;
  if (!policy_path_impaired(from, to, failures, time_ms))
    return path_delay_ms(from, to);
  const auto& hops = detour_hops_toward(to, failures, time_ms);
  double total = 0.0;
  AsId current = from;
  std::size_t guard = 0;
  while (current != to) {
    const AsId hop = hops[current];
    if (hop == topology::kNoNode) return std::nullopt;  // partitioned
    total += link_delay_ms(current, hop);
    current = hop;
    if (++guard > internet_->graph().as_count())
      throw std::logic_error("ForwardingFabric: detour loop");
  }
  return total;
}

std::size_t ForwardingFabric::physical_hops(AsId from, AsId to) const {
  if (from >= internet_->graph().as_count() ||
      to >= internet_->graph().as_count())
    throw std::out_of_range("ForwardingFabric::physical_hops");
  const std::size_t d = bfs_from(from)[to];
  if (d == kUnreached)
    throw std::logic_error("ForwardingFabric: disconnected AS graph");
  return d;
}

}  // namespace lina::sim
