#include "lina/sim/event_queue.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "lina/obs/metrics.hpp"

namespace lina::sim {

void EventQueue::schedule(double time_ms, Callback callback) {
  // Negated comparison so NaN is rejected too: a NaN time compares false
  // against everything, which would otherwise slip past a `<` check and
  // silently corrupt the heap order.
  if (!(time_ms >= now_ms_) || !std::isfinite(time_ms))
    throw std::invalid_argument(
        "EventQueue::schedule: time in the past or not finite");
  if (!callback)
    throw std::invalid_argument("EventQueue::schedule: empty callback");
  queue_.push({time_ms, next_sequence_++, std::move(callback), now_ms_});
  obs::metric::event_queue_scheduled().add();
  obs::metric::event_queue_depth().set(
      static_cast<double>(queue_.size()));
}

void EventQueue::schedule_in(double delay_ms, Callback callback) {
  if (!(delay_ms >= 0.0))
    throw std::invalid_argument(
        "EventQueue::schedule_in: negative or NaN delay");
  schedule(now_ms_ + delay_ms, std::move(callback));
}

bool EventQueue::run_next() {
  if (queue_.empty()) return false;
  // Copy out before popping: the callback may schedule new events.
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ms_ = entry.time_ms;
  obs::metric::event_queue_executed().add();
  obs::metric::event_queue_dwell_ms().record(entry.time_ms -
                                             entry.scheduled_at_ms);
  entry.callback();
  return true;
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && run_next()) ++executed;
  return executed;
}

}  // namespace lina::sim
