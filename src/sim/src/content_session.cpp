#include "lina/sim/content_session.hpp"

#include <stdexcept>
#include <unordered_map>

#include "lina/cache/mapping_cache.hpp"
#include "lina/prof/prof.hpp"
#include "lina/sim/content_store.hpp"
#include "lina/sim/event_queue.hpp"
#include "lina/stats/distributions.hpp"

namespace lina::sim {

using topology::AsId;

namespace {

class ContentSessionRunner {
 public:
  ContentSessionRunner(const ForwardingFabric& fabric,
                       const ContentSessionConfig& config)
      : fabric_(fabric),
        config_(config),
        plan_(config.failures),
        faults_(plan_ != nullptr && !plan_->empty()),
        zipf_(config.catalog_segments, config.zipf_exponent),
        rng_(config.seed, "content-session"),
        fib_(config.mapping_cache),
        fib_cached_(fib_.enabled()) {
    if (config.publisher_schedule.empty() ||
        config.publisher_schedule.front().time_ms != 0.0)
      throw std::invalid_argument(
          "simulate_content_session: publisher schedule must start at 0");
    for (std::size_t i = 1; i < config.publisher_schedule.size(); ++i) {
      if (config.publisher_schedule[i].time_ms <=
          config.publisher_schedule[i - 1].time_ms)
        throw std::invalid_argument(
            "simulate_content_session: schedule times must increase");
    }
    if (config.request_interval_ms <= 0.0 || config.duration_ms <= 0.0 ||
        config.update_hop_ms <= 0.0 || config.catalog_segments == 0)
      throw std::invalid_argument(
          "simulate_content_session: non-positive parameter");
    if (!config.retry.valid())
      throw std::invalid_argument(
          "simulate_content_session: malformed retry policy");
    if (!config.mapping_cache.valid())
      throw std::invalid_argument(
          "simulate_content_session: non-positive cache TTL");
    const std::size_t as_count = fabric.internet().graph().as_count();
    if (config.consumer >= as_count)
      throw std::out_of_range("simulate_content_session: consumer AS");
    for (const MobilityStep& step : config.publisher_schedule) {
      if (step.as >= as_count)
        throw std::out_of_range("simulate_content_session: publisher AS");
    }
  }

  ContentSessionStats run() {
    for (double t = 0.0; t < config_.duration_ms;
         t += config_.request_interval_ms) {
      queue_.schedule(t, [this] {
        ++stats_.interests_sent;
        const auto segment =
            static_cast<std::uint64_t>(zipf_.sample(rng_));
        issue(segment, queue_.now(), 0);
      });
    }
    if (fib_cached_) {
      // The name-update wavefront is the cache's churn stream: when a
      // move's flood reaches the consumer, every cached publisher location
      // is stale (the whole catalog moved) and is invalidated wholesale.
      for (std::size_t i = 1; i < config_.publisher_schedule.size(); ++i) {
        const MobilityStep& step = config_.publisher_schedule[i];
        const double arrival =
            step.time_ms +
            static_cast<double>(
                fabric_.physical_hops(config_.consumer, step.as)) *
                config_.update_hop_ms;
        if (arrival >= config_.duration_ms) continue;
        queue_.schedule(arrival, [this] { fib_.invalidate_all(); });
      }
    }
    queue_.run();
    stats_.unsatisfied =
        stats_.interests_sent - stats_.satisfied();
    stats_.mapping_cache = fib_.stats();
    return std::move(stats_);
  }

 private:
  [[nodiscard]] AsId publisher_location(double time_ms) const {
    AsId location = config_.publisher_schedule.front().as;
    for (const MobilityStep& step : config_.publisher_schedule) {
      if (step.time_ms > time_ms) break;
      location = step.as;
    }
    return location;
  }

  /// The publisher attachment router `at` currently believes in (flooded
  /// update wavefront at update_hop_ms per physical AS hop).
  [[nodiscard]] AsId belief(AsId at, double time_ms) const {
    for (auto it = config_.publisher_schedule.rbegin();
         it != config_.publisher_schedule.rend(); ++it) {
      const double arrival =
          it->time_ms + static_cast<double>(fabric_.physical_hops(
                            at, it->as)) *
                            config_.update_hop_ms;
      if (arrival <= time_ms) return it->as;
    }
    return config_.publisher_schedule.front().as;
  }

  ContentStore& store_at(AsId as) {
    const auto it = stores_.find(as);
    if (it != stores_.end()) return it->second;
    return stores_.emplace(as, ContentStore(config_.cache_capacity))
        .first->second;
  }

  void satisfy(std::uint64_t segment, double send_time_ms,
               double forward_delay_ms, const std::vector<AsId>& path,
               bool from_cache) {
    // Data retraces the interest path; every on-path store keeps a copy
    // (leave-copy-everywhere).
    const double return_delay = forward_delay_ms;
    queue_.schedule_in(return_delay, [this, segment, send_time_ms, path,
                                      from_cache] {
      for (const AsId as : path) store_at(as).insert(segment);
      if (from_cache) {
        ++stats_.satisfied_from_cache;
      } else {
        ++stats_.satisfied_from_publisher;
        // A publisher-satisfied retrieval resolves the segment's location:
        // install it when the data arrives back at the consumer.
        if (fib_cached_) fib_.insert(segment, path.back(), queue_.now());
      }
      stats_.retrieval_delay_ms.add(queue_.now() - send_time_ms);
    });
  }

  /// Launches one interest from the consumer: a mapping-cache hit routes
  /// it straight toward the cached publisher location, a miss (or a
  /// disabled cache) falls back to belief forwarding.
  void issue(std::uint64_t segment, double send_time_ms,
             std::size_t attempt) {
    if (fib_cached_) {
      const auto hit = fib_.probe(segment, queue_.now());
      if (hit.has_value()) {
        ++stats_.cache_guided_interests;
        hop_directed(config_.consumer, *hit, segment, send_time_ms, 0.0,
                     {}, 0, attempt);
        return;
      }
    }
    std::vector<AsId> path;
    hop(config_.consumer, segment, send_time_ms, 0.0, path, 0, attempt);
  }

  /// Reissues a dead interest from the consumer on the retry backoff.
  /// Only the faulty simulator probes this way; the failure-free
  /// simulator's staleness losses are the §8 phenomenon itself and stay
  /// untouched (bit-identical results without a plan).
  void retransmit(std::uint64_t segment, double send_time_ms,
                  std::size_t attempt) {
    if (!faults_ || !config_.retry.attempts_left(attempt)) return;
    queue_.schedule_in(
        config_.retry.delay_ms(attempt),
        [this, segment, send_time_ms, attempt] {
          ++stats_.interest_retries;
          issue(segment, send_time_ms, attempt + 1);
        });
  }

  /// Interest forwarding toward a fixed cached location instead of router
  /// beliefs. Content stores on the way still answer; at the destination a
  /// vanished publisher means the cached entry was stale — it is
  /// invalidated so the next interest re-resolves via beliefs.
  void hop_directed(AsId at, AsId dest, std::uint64_t segment,
                    double send_time_ms, double forward_delay_ms,
                    std::vector<AsId> path, std::size_t hops,
                    std::size_t attempt) {
    if (hops > config_.interest_ttl_hops) {
      retransmit(segment, send_time_ms, attempt);
      return;
    }
    if (faults_ && plan_->as_down(at, queue_.now())) {
      retransmit(segment, send_time_ms, attempt);
      return;
    }
    path.push_back(at);
    if (store_at(at).lookup(segment)) {
      satisfy(segment, send_time_ms, forward_delay_ms, path, true);
      return;
    }
    if (at == dest) {
      if (publisher_location(queue_.now()) == at) {
        satisfy(segment, send_time_ms, forward_delay_ms, path, false);
      } else {
        fib_.invalidate(segment);
        retransmit(segment, send_time_ms, attempt);
      }
      return;
    }
    const auto next = faults_
                          ? fabric_.next_hop(at, dest, *plan_, queue_.now())
                          : fabric_.next_hop(at, dest);
    if (!next.has_value()) {
      retransmit(segment, send_time_ms, attempt);
      return;
    }
    const double link = fabric_.link_delay_ms(at, *next);
    queue_.schedule_in(
        link, [this, next = *next, dest, segment, send_time_ms,
               forward_delay_ms, link, path = std::move(path), hops,
               attempt]() mutable {
          hop_directed(next, dest, segment, send_time_ms,
                       forward_delay_ms + link, std::move(path), hops + 1,
                       attempt);
        });
  }

  void hop(AsId at, std::uint64_t segment, double send_time_ms,
           double forward_delay_ms, std::vector<AsId> path,
           std::size_t hops, std::size_t attempt) {
    if (hops > config_.interest_ttl_hops) {  // interest dies
      retransmit(segment, send_time_ms, attempt);
      return;
    }
    // A dark AS forwards nothing and serves nothing (not even its cache).
    if (faults_ && plan_->as_down(at, queue_.now())) {
      retransmit(segment, send_time_ms, attempt);
      return;
    }
    path.push_back(at);

    // Content-store check (skip the consumer's own node for the first
    // lookup realism; keeping it is also defensible — we check everywhere).
    if (store_at(at).lookup(segment)) {
      satisfy(segment, send_time_ms, forward_delay_ms, path, true);
      return;
    }

    const AsId dest = belief(at, queue_.now());
    if (at == dest) {
      if (publisher_location(queue_.now()) == at) {
        satisfy(segment, send_time_ms, forward_delay_ms, path, false);
      } else {
        // Stale belief and no cached copy — unreachable now (§8); a
        // retransmission may find a converged belief or a repaired fault.
        retransmit(segment, send_time_ms, attempt);
      }
      return;
    }
    const auto next = faults_
                          ? fabric_.next_hop(at, dest, *plan_, queue_.now())
                          : fabric_.next_hop(at, dest);
    if (!next.has_value()) {
      retransmit(segment, send_time_ms, attempt);
      return;
    }
    const double link = fabric_.link_delay_ms(at, *next);
    queue_.schedule_in(
        link, [this, next = *next, segment, send_time_ms, forward_delay_ms,
               link, path = std::move(path), hops, attempt]() mutable {
          hop(next, segment, send_time_ms, forward_delay_ms + link,
              std::move(path), hops + 1, attempt);
        });
  }

  const ForwardingFabric& fabric_;
  const ContentSessionConfig& config_;
  const FailurePlan* plan_;
  const bool faults_;
  stats::Zipf zipf_;
  stats::Rng rng_;
  EventQueue queue_;
  ContentSessionStats stats_;
  std::unordered_map<AsId, ContentStore> stores_;
  /// Consumer FIB-miss resolution cache, segment -> publisher location
  /// (ContentSessionConfig doc). Disabled = zero state, no new code paths.
  cache::MappingCache<std::uint64_t, AsId> fib_;
  const bool fib_cached_;
};

}  // namespace

ContentSessionStats simulate_content_session(
    const ForwardingFabric& fabric, const ContentSessionConfig& config) {
  PROF_SPAN("lina.session.content");
  return ContentSessionRunner(fabric, config).run();
}

}  // namespace lina::sim
