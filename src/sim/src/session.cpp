#include "lina/sim/session.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "lina/cache/mapping_cache.hpp"
#include "lina/obs/metrics.hpp"
#include "lina/obs/timer.hpp"
#include "lina/obs/trace.hpp"
#include "lina/prof/prof.hpp"
#include "lina/sim/event_queue.hpp"
#include "lina/sim/resolver_pool.hpp"

namespace lina::sim {

using topology::AsId;

std::string_view sim_architecture_name(SimArchitecture arch) {
  switch (arch) {
    case SimArchitecture::kIndirection:
      return "indirection (home agent)";
    case SimArchitecture::kNameResolution:
      return "name resolution (resolver)";
    case SimArchitecture::kNameBased:
      return "name-based routing";
    case SimArchitecture::kReplicatedResolution:
      return "replicated resolution (GNS)";
  }
  throw std::invalid_argument("sim_architecture_name: unknown architecture");
}

namespace {

void validate(const SessionConfig& config, const ForwardingFabric& fabric,
              SimArchitecture architecture) {
  if (config.schedule.empty())
    throw std::invalid_argument("simulate_session: empty mobility schedule");
  if (config.schedule.front().time_ms != 0.0)
    throw std::invalid_argument(
        "simulate_session: schedule must start at time 0");
  for (std::size_t i = 1; i < config.schedule.size(); ++i) {
    if (config.schedule[i].time_ms <= config.schedule[i - 1].time_ms)
      throw std::invalid_argument(
          "simulate_session: schedule times must increase");
  }
  if (config.packet_interval_ms <= 0.0 || config.duration_ms <= 0.0)
    throw std::invalid_argument("simulate_session: non-positive timing");
  if (config.update_hop_ms <= 0.0 || config.resolver_ttl_ms <= 0.0)
    throw std::invalid_argument("simulate_session: non-positive delays");
  if (architecture == SimArchitecture::kReplicatedResolution &&
      config.resolver_replicas.empty())
    throw std::invalid_argument(
        "simulate_session: kReplicatedResolution needs resolver_replicas");
  if (!config.retry.valid())
    throw std::invalid_argument("simulate_session: malformed retry policy");
  if (!config.mapping_cache.valid())
    throw std::invalid_argument("simulate_session: non-positive cache TTL");
  const std::size_t as_count = fabric.internet().graph().as_count();
  if (config.correspondent >= as_count)
    throw std::out_of_range("simulate_session: correspondent AS");
  for (const MobilityStep& step : config.schedule) {
    if (step.as >= as_count)
      throw std::out_of_range("simulate_session: schedule AS");
  }
  if (config.failures != nullptr) {
    for (const FailureEvent& event : config.failures->events()) {
      if (event.element >= as_count ||
          (event.kind == FailureKind::kLinkCut && event.element_b >= as_count))
        throw std::out_of_range("simulate_session: failure-plan AS");
    }
  }
}

/// Shared session machinery; architecture subclasses provide the control
/// plane (on_move) and the data plane (send_packet).
///
/// Fault injection contract: `faults_` is false when no FailurePlan is
/// attached or the plan is empty, and every subclass guards its
/// failure-aware logic behind it so the failure-free simulation is
/// bit-identical to the pre-failure-layer implementation.
class SessionRunner {
 public:
  SessionRunner(const ForwardingFabric& fabric, const SessionConfig& config)
      : fabric_(fabric),
        config_(config),
        plan_(config.failures),
        faults_(plan_ != nullptr && !plan_->empty()),
        binding_(config.mapping_cache),
        cached_(binding_.enabled()) {}
  virtual ~SessionRunner() = default;

  SessionStats run() {
    // Mobility events.
    for (std::size_t i = 1; i < config_.schedule.size(); ++i) {
      const MobilityStep& step = config_.schedule[i];
      queue_.schedule(step.time_ms, [this, step] {
        obs::TraceRing::instance().record("lina.sim.session.move",
                                          queue_.now(),
                                          static_cast<double>(step.as));
        if (move_pending_) {
          // The previous move never saw a delivery: record the censored
          // outage up to this move.
          stats_.outage_ms.add(queue_.now() - last_move_ms_);
        }
        last_move_ms_ = queue_.now();
        move_pending_ = true;
        on_move(step.as);
      });
    }
    // Repair markers: the first delivery after each repair measures the
    // architecture's time-to-recover.
    if (faults_) {
      for (const double repair_ms : plan_->repair_times()) {
        if (repair_ms <= 0.0 || repair_ms >= config_.duration_ms) continue;
        queue_.schedule(repair_ms,
                        [this, repair_ms] { awaiting_recovery_ = repair_ms; });
      }
    }
    // Packet generation.
    for (double t = 0.0; t < config_.duration_ms;
         t += config_.packet_interval_ms) {
      queue_.schedule(t, [this] {
        ++stats_.packets_sent;
        if (faults_ && plan_->any_active(queue_.now()))
          ++stats_.packets_sent_during_failure;
        send_packet(queue_.now());
      });
    }
    queue_.run();
    stats_.packets_lost = stats_.packets_sent - stats_.packets_delivered;
    stats_.mapping_cache = binding_.stats();
    return std::move(stats_);
  }

 protected:
  virtual void on_move(AsId new_as) = 0;
  virtual void send_packet(double send_time_ms) = 0;

  [[nodiscard]] AsId device_location(double time_ms) const {
    AsId location = config_.schedule.front().as;
    for (const MobilityStep& step : config_.schedule) {
      if (step.time_ms > time_ms) break;
      location = step.as;
    }
    return location;
  }

  void deliver(double send_time_ms) {
    ++stats_.packets_delivered;
    const double delay = queue_.now() - send_time_ms;
    stats_.delivery_delay_ms.add(delay);
    const double direct =
        fabric_.path_delay_ms(config_.correspondent,
                              device_location(queue_.now()))
            .value_or(delay);
    const double stretch =
        delay / std::max(direct, fabric_.config().min_link_ms);
    stats_.stretch.add(stretch);
    if (move_pending_) {
      stats_.outage_ms.add(queue_.now() - last_move_ms_);
      move_pending_ = false;
    }
    if (faults_) {
      if (plan_->any_active(send_time_ms)) {
        ++stats_.packets_delivered_during_failure;
        stats_.stretch_degraded.add(stretch);
      }
      if (awaiting_recovery_.has_value()) {
        stats_.recovery_ms.add(queue_.now() - *awaiting_recovery_);
        awaiting_recovery_.reset();
      }
    }
  }

  void count_control(std::size_t messages) {
    stats_.control_messages += messages;
  }

  /// Accounts one control-plane attempt (retransmissions beyond the first
  /// attempt also count toward the amplification metric).
  void count_attempt(std::size_t attempt) {
    count_control(1);
    if (attempt > 0) ++stats_.control_retries;
  }

  /// Delay before retransmission number `attempt` + 1 (capped exponential,
  /// so long outages keep being probed at a steady cadence).
  [[nodiscard]] double backoff_ms(std::size_t attempt) const {
    return config_.retry.delay_ms(attempt);
  }

  [[nodiscard]] bool attempts_left(std::size_t attempt) const {
    return config_.retry.attempts_left(attempt);
  }

  /// Seeded coin: is this session's next control message dropped by an
  /// active update-loss window? Only called on the faulty path.
  [[nodiscard]] bool control_lost() {
    return plan_->control_message_lost(message_id_++, queue_.now());
  }

  /// The single mobile endpoint's key in the correspondent mapping cache.
  static constexpr std::uint64_t kDeviceKey = 0;

  /// Failure-aware when a plan is active, plain otherwise. Only the cached
  /// data/control paths call this; the uncached paths keep their original
  /// inline calls so the cache-off simulation stays bit-identical.
  [[nodiscard]] std::optional<double> leg_delay(AsId from, AsId to) const {
    return faults_ ? fabric_.path_delay_ms(from, to, *plan_, queue_.now())
                   : fabric_.path_delay_ms(from, to);
  }

  const ForwardingFabric& fabric_;
  const SessionConfig& config_;
  const FailurePlan* plan_;
  const bool faults_;
  EventQueue queue_;
  SessionStats stats_;
  /// Correspondent-side loc/ID mapping cache (SessionConfig doc); disabled
  /// (no storage, every probe a no-op) unless config.mapping_cache enables
  /// it. `cached_` gates every new code path.
  cache::MappingCache<std::uint64_t, AsId> binding_;
  const bool cached_;

 private:
  double last_move_ms_ = 0.0;
  bool move_pending_ = false;
  std::uint64_t message_id_ = 0;
  std::optional<double> awaiting_recovery_;
};

class IndirectionRunner final : public SessionRunner {
 public:
  IndirectionRunner(const ForwardingFabric& fabric,
                    const SessionConfig& config)
      : SessionRunner(fabric, config),
        home_(config.home_as.value_or(config.schedule.front().as)),
        registry_(config.schedule.front().as) {}

 private:
  void on_move(AsId new_as) override { register_with_home(new_as, 0); }

  /// Registration message travels from the new location to the home agent;
  /// under faults it retries with backoff while the agent is dead or the
  /// message is lost, abandoning once a newer move supersedes it.
  void register_with_home(AsId new_as, std::size_t attempt) {
    count_attempt(attempt);
    if (!faults_) {
      const auto delay = fabric_.path_delay_ms(new_as, home_);
      if (!delay.has_value()) return;
      queue_.schedule_in(*delay, [this, new_as] {
        registry_ = new_as;
        if (cached_) notify_churn(new_as);
      });
      return;
    }
    const auto delay =
        fabric_.path_delay_ms(new_as, home_, *plan_, queue_.now());
    if (control_lost() || !delay.has_value()) {
      retry_registration(new_as, attempt);
      return;
    }
    queue_.schedule_in(*delay, [this, new_as, attempt] {
      if (plan_->home_agent_down(home_, queue_.now())) {
        retry_registration(new_as, attempt);
        return;
      }
      registry_ = new_as;
      if (cached_) notify_churn(new_as);
    });
  }

  /// A registration landing at the home agent pushes a churn notification
  /// to the correspondent's binding cache (invalidate or refresh per the
  /// cache config) — one control message, in flight for the home->
  /// correspondent delay.
  void notify_churn(AsId new_as) {
    count_control(1);
    if (faults_ && control_lost()) return;
    const auto back = leg_delay(home_, config_.correspondent);
    if (!back.has_value()) return;
    queue_.schedule_in(*back, [this, new_as] {
      binding_.churn(kDeviceKey, new_as, queue_.now());
    });
  }

  /// Binding cache enabled: a hit sends the packet straight to the cached
  /// care-of AS (Mobile-IPv6 route optimisation — no triangle); a miss
  /// goes through the home agent, which answers with a binding update so
  /// later packets go direct.
  void send_packet_cached(double send_time_ms) {
    const auto hit = binding_.probe(kDeviceKey, queue_.now());
    if (hit.has_value()) {
      const AsId target = *hit;
      const auto delay = leg_delay(config_.correspondent, target);
      if (!delay.has_value()) return;
      queue_.schedule_in(*delay, [this, send_time_ms, target] {
        if (device_location(queue_.now()) == target) deliver(send_time_ms);
      });
      return;
    }
    const auto to_home = leg_delay(config_.correspondent, home_);
    if (!to_home.has_value()) return;
    queue_.schedule_in(*to_home, [this, send_time_ms] {
      if (faults_ && plan_->home_agent_down(home_, queue_.now())) return;
      const AsId target = registry_;
      push_binding(target);
      const auto to_target = leg_delay(home_, target);
      if (!to_target.has_value()) return;
      queue_.schedule_in(*to_target, [this, send_time_ms, target] {
        if (device_location(queue_.now()) == target) deliver(send_time_ms);
      });
    });
  }

  /// Home agent -> correspondent binding update triggered by a cache-miss
  /// packet transiting the home agent.
  void push_binding(AsId care_of) {
    count_control(1);
    if (faults_ && control_lost()) return;
    const auto back = leg_delay(home_, config_.correspondent);
    if (!back.has_value()) return;
    queue_.schedule_in(*back, [this, care_of] {
      binding_.insert(kDeviceKey, care_of, queue_.now());
    });
  }

  void retry_registration(AsId new_as, std::size_t attempt) {
    // Registrations are soft state: once the exponential burst is spent
    // the device keeps probing at the backoff cap (Mobile-IP-style
    // lifetime renewal) instead of abandoning the binding, so it survives
    // outages longer than one burst. The chain ends when a probe lands,
    // a newer move supersedes it, or the session runs out.
    if (queue_.now() >= config_.duration_ms) return;
    const std::size_t next = attempts_left(attempt) ? attempt + 1 : 0;
    queue_.schedule_in(backoff_ms(attempt), [this, new_as, next] {
      if (device_location(queue_.now()) != new_as) return;  // superseded
      register_with_home(new_as, next);
    });
  }

  void send_packet(double send_time_ms) override {
    if (cached_) {
      send_packet_cached(send_time_ms);
      return;
    }
    if (!faults_) {
      // Leg 1: correspondent -> home agent.
      const auto to_home =
          fabric_.path_delay_ms(config_.correspondent, home_);
      if (!to_home.has_value()) return;  // lost
      queue_.schedule_in(*to_home, [this, send_time_ms] {
        // Leg 2: home agent -> registered care-of location.
        const AsId target = registry_;
        const auto to_target = fabric_.path_delay_ms(home_, target);
        if (!to_target.has_value()) return;
        queue_.schedule_in(*to_target, [this, send_time_ms, target] {
          if (device_location(queue_.now()) == target) {
            deliver(send_time_ms);
          }
        });
      });
      return;
    }
    const auto to_home = fabric_.path_delay_ms(config_.correspondent, home_,
                                               *plan_, queue_.now());
    if (!to_home.has_value()) return;  // lost: home unreachable
    queue_.schedule_in(*to_home, [this, send_time_ms] {
      // A dead home agent swallows every packet for the whole outage:
      // indirection's single point of failure.
      if (plan_->home_agent_down(home_, queue_.now())) return;
      const AsId target = registry_;
      const auto to_target =
          fabric_.path_delay_ms(home_, target, *plan_, queue_.now());
      if (!to_target.has_value()) return;
      queue_.schedule_in(*to_target, [this, send_time_ms, target] {
        if (device_location(queue_.now()) == target) {
          deliver(send_time_ms);
        }
      });
    });
  }

  AsId home_;
  AsId registry_;
};

class ResolutionRunner final : public SessionRunner {
 public:
  ResolutionRunner(const ForwardingFabric& fabric,
                   const SessionConfig& config)
      : SessionRunner(fabric, config),
        resolver_(config.resolver_as.value_or(config.correspondent)),
        registry_(config.schedule.front().as),
        cache_(config.schedule.front().as) {
    // Periodic re-resolution; the initial resolution happened at setup.
    // With a mapping cache the correspondent resolves on demand (per
    // cache-miss packet) instead of on a TTL clock.
    if (!cached_) {
      for (double t = config.resolver_ttl_ms; t < config.duration_ms;
           t += config.resolver_ttl_ms) {
        queue_.schedule(t, [this] { resolve(0); });
      }
    }
  }

 private:
  void resolve(std::size_t attempt) {
    count_attempt(attempt);
    if (!faults_) {
      const auto to_resolver =
          fabric_.path_delay_ms(config_.correspondent, resolver_);
      if (!to_resolver.has_value()) return;
      queue_.schedule_in(*to_resolver, [this] {
        const AsId answer = registry_;
        const auto back =
            fabric_.path_delay_ms(resolver_, config_.correspondent);
        if (!back.has_value()) return;
        queue_.schedule_in(*back, [this, answer] { cache_ = answer; });
      });
      return;
    }
    const auto to_resolver = fabric_.path_delay_ms(
        config_.correspondent, resolver_, *plan_, queue_.now());
    if (control_lost() || !to_resolver.has_value()) {
      retry_resolve(attempt);
      return;
    }
    queue_.schedule_in(*to_resolver, [this, attempt] {
      // A single resolver has nowhere to fail over to: a dead resolver
      // times the lookup out and the client can only retry it.
      if (plan_->resolver_down(resolver_, queue_.now())) {
        retry_resolve(attempt);
        return;
      }
      const AsId answer = registry_;
      const auto back = fabric_.path_delay_ms(
          resolver_, config_.correspondent, *plan_, queue_.now());
      if (!back.has_value()) return;
      queue_.schedule_in(*back, [this, answer] { cache_ = answer; });
    });
  }

  void retry_resolve(std::size_t attempt) {
    if (!attempts_left(attempt)) return;  // the next TTL tick re-resolves
    queue_.schedule_in(backoff_ms(attempt),
                       [this, attempt] { resolve(attempt + 1); });
  }

  void on_move(AsId new_as) override { register_location(new_as, 0); }

  /// The device updates the resolver (one message; retried under faults).
  void register_location(AsId new_as, std::size_t attempt) {
    count_attempt(attempt);
    if (!faults_) {
      const auto delay = fabric_.path_delay_ms(new_as, resolver_);
      if (!delay.has_value()) return;
      queue_.schedule_in(*delay, [this, new_as] {
        registry_ = new_as;
        if (cached_) notify_churn(new_as);
      });
      return;
    }
    const auto delay =
        fabric_.path_delay_ms(new_as, resolver_, *plan_, queue_.now());
    if (control_lost() || !delay.has_value()) {
      retry_registration(new_as, attempt);
      return;
    }
    queue_.schedule_in(*delay, [this, new_as, attempt] {
      if (plan_->resolver_down(resolver_, queue_.now())) {
        retry_registration(new_as, attempt);
        return;
      }
      registry_ = new_as;
      if (cached_) notify_churn(new_as);
    });
  }

  /// A location update landing at the resolver pushes a churn notification
  /// down the update stream to the correspondent's mapping cache.
  void notify_churn(AsId new_as) {
    count_control(1);
    if (faults_ && control_lost()) return;
    const auto back = leg_delay(resolver_, config_.correspondent);
    if (!back.has_value()) return;
    queue_.schedule_in(*back, [this, new_as] {
      binding_.churn(kDeviceKey, new_as, queue_.now());
    });
  }

  void retry_registration(AsId new_as, std::size_t attempt) {
    // Soft-state renewal, as in IndirectionRunner: keep probing at the
    // backoff cap past the burst until the registration lands, a newer
    // move supersedes it, or the session ends.
    if (queue_.now() >= config_.duration_ms) return;
    const std::size_t next = attempts_left(attempt) ? attempt + 1 : 0;
    queue_.schedule_in(backoff_ms(attempt), [this, new_as, next] {
      if (device_location(queue_.now()) != new_as) return;  // superseded
      register_location(new_as, next);
    });
  }

  /// Mapping cache enabled: a hit sends the packet straight to the cached
  /// location; a miss makes the packet ride a full resolver round trip
  /// (demand resolution — one control message), install the answer, then
  /// forward. No retries under faults: a lost query loses the packet and
  /// the next miss re-resolves.
  void send_packet_cached(double send_time_ms) {
    const auto hit = binding_.probe(kDeviceKey, queue_.now());
    if (hit.has_value()) {
      forward_cached(send_time_ms, *hit);
      return;
    }
    count_control(1);
    if (faults_ && control_lost()) return;
    const auto to_resolver = leg_delay(config_.correspondent, resolver_);
    if (!to_resolver.has_value()) return;
    queue_.schedule_in(*to_resolver, [this, send_time_ms] {
      if (faults_ && plan_->resolver_down(resolver_, queue_.now())) return;
      const AsId answer = registry_;
      const auto back = leg_delay(resolver_, config_.correspondent);
      if (!back.has_value()) return;
      queue_.schedule_in(*back, [this, send_time_ms, answer] {
        binding_.insert(kDeviceKey, answer, queue_.now());
        forward_cached(send_time_ms, answer);
      });
    });
  }

  void forward_cached(double send_time_ms, AsId target) {
    const auto delay = leg_delay(config_.correspondent, target);
    if (!delay.has_value()) return;
    queue_.schedule_in(*delay, [this, send_time_ms, target] {
      if (device_location(queue_.now()) == target) deliver(send_time_ms);
    });
  }

  void send_packet(double send_time_ms) override {
    if (cached_) {
      send_packet_cached(send_time_ms);
      return;
    }
    const AsId target = cache_;
    if (!faults_) {
      const auto delay = fabric_.path_delay_ms(config_.correspondent, target);
      if (!delay.has_value()) return;
      queue_.schedule_in(*delay, [this, send_time_ms, target] {
        if (device_location(queue_.now()) == target) {
          deliver(send_time_ms);
        }
      });
      return;
    }
    const auto delay = fabric_.path_delay_ms(config_.correspondent, target,
                                             *plan_, queue_.now());
    if (!delay.has_value()) return;
    queue_.schedule_in(*delay, [this, send_time_ms, target] {
      if (device_location(queue_.now()) == target) {
        deliver(send_time_ms);
      }
    });
  }

  AsId resolver_;
  AsId registry_;  // the resolver's authoritative record
  AsId cache_;     // the correspondent's cached answer
};

class ReplicatedResolutionRunner final : public SessionRunner {
 public:
  ReplicatedResolutionRunner(const ForwardingFabric& fabric,
                             const SessionConfig& config)
      : SessionRunner(fabric, config),
        pool_(fabric, config.resolver_replicas),
        records_(pool_.replicas().size(), config.schedule.front().as),
        cache_(config.schedule.front().as) {
    // The correspondent always queries its nearest replica.
    lookup_replica_ = 0;
    for (std::size_t i = 0; i < pool_.replicas().size(); ++i) {
      if (pool_.replicas()[i] == pool_.nearest_replica(config.correspondent)) {
        lookup_replica_ = i;
      }
    }
    // Demand resolution replaces the TTL clock when a mapping cache is on,
    // exactly as in ResolutionRunner.
    if (!cached_) {
      for (double t = config.resolver_ttl_ms; t < config.duration_ms;
           t += config.resolver_ttl_ms) {
        queue_.schedule(t, [this] { resolve(0); });
      }
    }
    if (faults_) {
      // Anti-entropy: at each repair instant a replica that was down (its
      // process crashed or its AS went dark) pulls the current record from
      // its nearest live peer, so it stops answering with the location it
      // last heard before the crash.
      for (const FailureEvent& event : plan_->events()) {
        if (event.kind != FailureKind::kResolverCrash &&
            event.kind != FailureKind::kAsOutage)
          continue;
        if (event.end_ms >= config.duration_ms) continue;
        const auto& ases = pool_.replicas();
        if (std::find(ases.begin(), ases.end(), event.element) == ases.end())
          continue;
        queue_.schedule(event.end_ms,
                        [this, as = event.element] { resync_replica(as); });
      }
    }
  }

 private:
  /// Recovered-replica anti-entropy pull: request to the nearest live
  /// peer, answer from the peer's record at answer time. Either leg can
  /// be lost or unroutable; the replica then keeps its stale record until
  /// the next device update reaches it.
  void resync_replica(AsId recovered) {
    if (plan_->resolver_down(recovered, queue_.now())) return;  // overlap
    std::optional<AsId> peer;
    double best = 0.0;
    for (const AsId replica : pool_.replicas()) {
      if (replica == recovered ||
          plan_->resolver_down(replica, queue_.now()))
        continue;
      const auto delay =
          fabric_.path_delay_ms(recovered, replica, *plan_, queue_.now());
      if (!delay.has_value()) continue;
      if (!peer.has_value() || *delay < best) {
        peer = replica;
        best = *delay;
      }
    }
    if (!peer.has_value()) return;
    count_control(1);
    if (control_lost()) return;
    // Snapshot the record the pull is refreshing: if a device update lands
    // while the answer is in flight, the (older) answer must not clobber
    // it — the in-flight pull loses to the newer write.
    const AsId before = records_[pool_.replica_index(recovered)];
    queue_.schedule_in(best, [this, recovered, before, peer = *peer] {
      if (plan_->resolver_down(peer, queue_.now())) return;
      const AsId answer = records_[pool_.replica_index(peer)];
      count_control(1);
      if (control_lost()) return;
      const auto back =
          fabric_.path_delay_ms(peer, recovered, *plan_, queue_.now());
      if (!back.has_value()) return;
      queue_.schedule_in(*back, [this, recovered, before, answer] {
        const std::size_t index = pool_.replica_index(recovered);
        auto& record = records_[index];
        if (record == before &&
            !plan_->resolver_down(recovered, queue_.now())) {
          record = answer;
          if (cached_ && index == lookup_replica_) notify_churn(answer);
        }
      });
    });
  }

  void resolve(std::size_t attempt) {
    count_attempt(attempt);
    if (!faults_) {
      const AsId replica = pool_.replicas()[lookup_replica_];
      const auto to_replica =
          fabric_.path_delay_ms(config_.correspondent, replica);
      if (!to_replica.has_value()) return;
      queue_.schedule_in(*to_replica, [this, replica] {
        const AsId answer = records_[lookup_replica_];
        const auto back =
            fabric_.path_delay_ms(replica, config_.correspondent);
        if (!back.has_value()) return;
        queue_.schedule_in(*back, [this, answer] { cache_ = answer; });
      });
      return;
    }
    // Failover: the first attempt goes to the statically nearest replica
    // (the client cannot know it died); once an attempt times out, the
    // retry targets the nearest replica *believed live* at retry time, so
    // service resumes within one backoff of the preferred replica dying.
    AsId replica = pool_.replicas()[lookup_replica_];
    if (attempt > 0) {
      const auto live = pool_.nearest_live_replica(config_.correspondent,
                                                   *plan_, queue_.now());
      if (live.has_value()) replica = *live;
    }
    const auto to_replica = fabric_.path_delay_ms(
        config_.correspondent, replica, *plan_, queue_.now());
    if (control_lost() || !to_replica.has_value()) {
      retry_resolve(attempt);
      return;
    }
    queue_.schedule_in(*to_replica, [this, replica, attempt] {
      if (plan_->resolver_down(replica, queue_.now())) {
        retry_resolve(attempt);
        return;
      }
      // The replica answers from its own (possibly stale) record: a
      // recovered replica serves whatever it last heard.
      const AsId answer = records_[pool_.replica_index(replica)];
      const auto back = fabric_.path_delay_ms(
          replica, config_.correspondent, *plan_, queue_.now());
      if (!back.has_value()) return;
      queue_.schedule_in(*back, [this, answer] { cache_ = answer; });
    });
  }

  void retry_resolve(std::size_t attempt) {
    if (!attempts_left(attempt)) return;  // the next TTL tick re-resolves
    queue_.schedule_in(backoff_ms(attempt),
                       [this, attempt] { resolve(attempt + 1); });
  }

  void on_move(AsId new_as) override { update_replicas(new_as, 0); }

  /// Device -> primary replica, then primary -> every other replica.
  void update_replicas(AsId new_as, std::size_t attempt) {
    if (!faults_) {
      count_control(pool_.update_message_count());
      const auto arrivals = pool_.propagation_times_ms(new_as, queue_.now());
      for (std::size_t i = 0; i < arrivals.size(); ++i) {
        queue_.schedule(arrivals[i], [this, i, new_as] {
          records_[i] = new_as;
          if (cached_ && i == lookup_replica_) notify_churn(new_as);
        });
      }
      return;
    }
    // The device registers with the nearest *live* replica and that
    // primary relays to the surviving rest; replicas that are dead (or
    // whose relay is lost) simply miss this update and serve their stale
    // record until the next one.
    count_attempt(attempt);
    const auto primary =
        pool_.nearest_live_replica(new_as, *plan_, queue_.now());
    const auto to_primary =
        primary.has_value()
            ? fabric_.path_delay_ms(new_as, *primary, *plan_, queue_.now())
            : std::nullopt;
    if (!primary.has_value() || control_lost() || !to_primary.has_value()) {
      retry_update(new_as, attempt);
      return;
    }
    queue_.schedule_in(*to_primary, [this, new_as, primary = *primary,
                                     attempt] {
      if (plan_->resolver_down(primary, queue_.now())) {
        retry_update(new_as, attempt);
        return;
      }
      const std::size_t primary_index = pool_.replica_index(primary);
      records_[primary_index] = new_as;
      if (cached_ && primary_index == lookup_replica_) notify_churn(new_as);
      for (std::size_t i = 0; i < pool_.replicas().size(); ++i) {
        const AsId replica = pool_.replicas()[i];
        if (replica == primary) continue;
        count_control(1);
        const auto relay = fabric_.path_delay_ms(primary, replica, *plan_,
                                                 queue_.now());
        if (control_lost() || !relay.has_value()) continue;
        queue_.schedule_in(*relay, [this, i, new_as] {
          if (!plan_->resolver_down(pool_.replicas()[i], queue_.now())) {
            records_[i] = new_as;
            if (cached_ && i == lookup_replica_) notify_churn(new_as);
          }
        });
      }
    });
  }

  void retry_update(AsId new_as, std::size_t attempt) {
    // Soft-state renewal, as in IndirectionRunner: keep probing at the
    // backoff cap past the burst until an update lands, a newer move
    // supersedes it, or the session ends.
    if (queue_.now() >= config_.duration_ms) return;
    const std::size_t next = attempts_left(attempt) ? attempt + 1 : 0;
    queue_.schedule_in(backoff_ms(attempt), [this, new_as, next] {
      if (device_location(queue_.now()) != new_as) return;  // superseded
      update_replicas(new_as, next);
    });
  }

  /// A record write landing at the correspondent's lookup replica pushes a
  /// churn notification down the update stream to its mapping cache.
  void notify_churn(AsId new_as) {
    count_control(1);
    if (faults_ && control_lost()) return;
    const AsId replica = pool_.replicas()[lookup_replica_];
    const auto back = leg_delay(replica, config_.correspondent);
    if (!back.has_value()) return;
    queue_.schedule_in(*back, [this, new_as] {
      binding_.churn(kDeviceKey, new_as, queue_.now());
    });
  }

  /// Demand resolution against the lookup replica, exactly as in
  /// ResolutionRunner::send_packet_cached.
  void send_packet_cached(double send_time_ms) {
    const auto hit = binding_.probe(kDeviceKey, queue_.now());
    if (hit.has_value()) {
      forward_cached(send_time_ms, *hit);
      return;
    }
    count_control(1);
    if (faults_ && control_lost()) return;
    const AsId replica = pool_.replicas()[lookup_replica_];
    const auto to_replica = leg_delay(config_.correspondent, replica);
    if (!to_replica.has_value()) return;
    queue_.schedule_in(*to_replica, [this, send_time_ms, replica] {
      if (faults_ && plan_->resolver_down(replica, queue_.now())) return;
      const AsId answer = records_[lookup_replica_];
      const auto back = leg_delay(replica, config_.correspondent);
      if (!back.has_value()) return;
      queue_.schedule_in(*back, [this, send_time_ms, answer] {
        binding_.insert(kDeviceKey, answer, queue_.now());
        forward_cached(send_time_ms, answer);
      });
    });
  }

  void forward_cached(double send_time_ms, AsId target) {
    const auto delay = leg_delay(config_.correspondent, target);
    if (!delay.has_value()) return;
    queue_.schedule_in(*delay, [this, send_time_ms, target] {
      if (device_location(queue_.now()) == target) deliver(send_time_ms);
    });
  }

  void send_packet(double send_time_ms) override {
    if (cached_) {
      send_packet_cached(send_time_ms);
      return;
    }
    const AsId target = cache_;
    if (!faults_) {
      const auto delay = fabric_.path_delay_ms(config_.correspondent, target);
      if (!delay.has_value()) return;
      queue_.schedule_in(*delay, [this, send_time_ms, target] {
        if (device_location(queue_.now()) == target) {
          deliver(send_time_ms);
        }
      });
      return;
    }
    const auto delay = fabric_.path_delay_ms(config_.correspondent, target,
                                             *plan_, queue_.now());
    if (!delay.has_value()) return;
    queue_.schedule_in(*delay, [this, send_time_ms, target] {
      if (device_location(queue_.now()) == target) {
        deliver(send_time_ms);
      }
    });
  }

  ResolverPool pool_;
  std::vector<AsId> records_;  // per-replica registered location
  std::size_t lookup_replica_;
  AsId cache_;
};

class NameBasedRunner final : public SessionRunner {
 public:
  NameBasedRunner(const ForwardingFabric& fabric, const SessionConfig& config)
      : SessionRunner(fabric, config) {
    history_.push_back({0.0, config.schedule.front().as});
  }

 private:
  /// The attachment AS router `at` currently believes the name maps to:
  /// the newest move whose flooding wavefront (update_hop_ms per physical
  /// AS hop) has reached `at` by `time_ms`. Scoped flooding (§8 hybrid):
  /// moves are only ever announced within update_scope_hops of the new
  /// attachment; out-of-scope routers fall back to the initial, globally
  /// announced attachment.
  [[nodiscard]] AsId belief(AsId at, double time_ms) const {
    for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
      const std::size_t hops = fabric_.physical_hops(at, it->as);
      const bool announced =
          it == history_.rend() - 1 || hops <= config_.update_scope_hops;
      if (!announced) continue;
      const double arrival =
          it->time_ms +
          static_cast<double>(hops) * config_.update_hop_ms;
      if (arrival <= time_ms) return it->as;
    }
    return history_.front().as;
  }

  void on_move(AsId new_as) override {
    // The flooding wavefront is massively redundant (every router relays),
    // so a lost copy or a dead AS does not stop it: name-based routing has
    // no control-plane single point of failure to crash. Its failure mode
    // is the data plane rerouting around dead elements (stretch).
    history_.push_back({queue_.now(), new_as});
    // Flooding cost: every router within scope (everyone when global).
    const auto& graph = fabric_.internet().graph();
    if (config_.update_scope_hops >= graph.as_count()) {
      count_control(graph.as_count());
    } else {
      std::size_t reached = 0;
      for (AsId as = 0; as < graph.as_count(); ++as) {
        if (fabric_.physical_hops(as, new_as) <= config_.update_scope_hops) {
          ++reached;
        }
      }
      count_control(reached);
    }
  }

  void send_packet(double send_time_ms) override {
    hop(config_.correspondent, send_time_ms, 0);
  }

  void hop(AsId at, double send_time_ms, std::size_t hops) {
    if (hops > config_.packet_ttl_hops) return;  // dropped in a loop
    if (faults_ && plan_->as_down(at, queue_.now())) return;  // router dark
    const AsId dest = belief(at, queue_.now());
    if (at == dest) {
      if (device_location(queue_.now()) == at) deliver(send_time_ms);
      return;  // belief said "here" but the device has left: lost
    }
    const auto next = faults_
                          ? fabric_.next_hop(at, dest, *plan_, queue_.now())
                          : fabric_.next_hop(at, dest);
    if (!next.has_value()) return;
    const double delay = fabric_.link_delay_ms(at, *next);
    queue_.schedule_in(delay, [this, next = *next, send_time_ms, hops] {
      hop(next, send_time_ms, hops + 1);
    });
  }

  std::vector<MobilityStep> history_;
};

}  // namespace

namespace {

/// Mirrors the finished SessionStats into the process-wide registry.
/// Observation only: the stats object itself is never touched, which is
/// what keeps instrumentation-on runs bit-identical to instrumentation-
/// off runs (tests/obs/off_switch_test.cpp).
void mirror_to_registry(const SessionStats& stats) {
  obs::metric::session_runs().add();
  obs::metric::session_packets_sent().add(stats.packets_sent);
  obs::metric::session_packets_delivered().add(stats.packets_delivered);
  obs::metric::session_packets_lost().add(stats.packets_lost);
  obs::metric::session_control_messages().add(stats.control_messages);
  obs::metric::session_control_retries().add(stats.control_retries);
  if (stats.packets_sent_during_failure > 0)
    obs::metric::failure_active_sends().add(
        stats.packets_sent_during_failure);
}

}  // namespace

SessionStats simulate_session(const ForwardingFabric& fabric,
                              SimArchitecture architecture,
                              const SessionConfig& config) {
  validate(config, fabric, architecture);
  obs::ScopedTimer timer(obs::metric::session_run_wall_ms());
  SessionStats stats;
  switch (architecture) {
    case SimArchitecture::kIndirection: {
      PROF_SPAN("lina.session.indirection");
      stats = IndirectionRunner(fabric, config).run();
      break;
    }
    case SimArchitecture::kNameBased: {
      PROF_SPAN("lina.session.name_based");
      stats = NameBasedRunner(fabric, config).run();
      break;
    }
    case SimArchitecture::kNameResolution: {
      PROF_SPAN("lina.session.name_resolution");
      stats = ResolutionRunner(fabric, config).run();
      break;
    }
    case SimArchitecture::kReplicatedResolution: {
      PROF_SPAN("lina.session.replicated_resolution");
      stats = ReplicatedResolutionRunner(fabric, config).run();
      break;
    }
    default:
      throw std::invalid_argument("simulate_session: unknown architecture");
  }
  mirror_to_registry(stats);
  return stats;
}

}  // namespace lina::sim
