#include "lina/sim/session.hpp"

#include <algorithm>
#include <stdexcept>

#include "lina/sim/event_queue.hpp"
#include "lina/sim/resolver_pool.hpp"

namespace lina::sim {

using topology::AsId;

std::string_view sim_architecture_name(SimArchitecture arch) {
  switch (arch) {
    case SimArchitecture::kIndirection:
      return "indirection (home agent)";
    case SimArchitecture::kNameResolution:
      return "name resolution (resolver)";
    case SimArchitecture::kNameBased:
      return "name-based routing";
    case SimArchitecture::kReplicatedResolution:
      return "replicated resolution (GNS)";
  }
  throw std::invalid_argument("sim_architecture_name: unknown architecture");
}

namespace {

void validate(const SessionConfig& config, const ForwardingFabric& fabric,
              SimArchitecture architecture) {
  if (config.schedule.empty())
    throw std::invalid_argument("simulate_session: empty mobility schedule");
  if (config.schedule.front().time_ms != 0.0)
    throw std::invalid_argument(
        "simulate_session: schedule must start at time 0");
  for (std::size_t i = 1; i < config.schedule.size(); ++i) {
    if (config.schedule[i].time_ms <= config.schedule[i - 1].time_ms)
      throw std::invalid_argument(
          "simulate_session: schedule times must increase");
  }
  if (config.packet_interval_ms <= 0.0 || config.duration_ms <= 0.0)
    throw std::invalid_argument("simulate_session: non-positive timing");
  if (config.update_hop_ms <= 0.0 || config.resolver_ttl_ms <= 0.0)
    throw std::invalid_argument("simulate_session: non-positive delays");
  if (architecture == SimArchitecture::kReplicatedResolution &&
      config.resolver_replicas.empty())
    throw std::invalid_argument(
        "simulate_session: kReplicatedResolution needs resolver_replicas");
  const std::size_t as_count = fabric.internet().graph().as_count();
  if (config.correspondent >= as_count)
    throw std::out_of_range("simulate_session: correspondent AS");
  for (const MobilityStep& step : config.schedule) {
    if (step.as >= as_count)
      throw std::out_of_range("simulate_session: schedule AS");
  }
}

/// Shared session machinery; architecture subclasses provide the control
/// plane (on_move) and the data plane (send_packet).
class SessionRunner {
 public:
  SessionRunner(const ForwardingFabric& fabric, const SessionConfig& config)
      : fabric_(fabric), config_(config) {}
  virtual ~SessionRunner() = default;

  SessionStats run() {
    // Mobility events.
    for (std::size_t i = 1; i < config_.schedule.size(); ++i) {
      const MobilityStep& step = config_.schedule[i];
      queue_.schedule(step.time_ms, [this, step] {
        if (move_pending_) {
          // The previous move never saw a delivery: record the censored
          // outage up to this move.
          stats_.outage_ms.add(queue_.now() - last_move_ms_);
        }
        last_move_ms_ = queue_.now();
        move_pending_ = true;
        on_move(step.as);
      });
    }
    // Packet generation.
    for (double t = 0.0; t < config_.duration_ms;
         t += config_.packet_interval_ms) {
      queue_.schedule(t, [this] {
        ++stats_.packets_sent;
        send_packet(queue_.now());
      });
    }
    queue_.run();
    stats_.packets_lost = stats_.packets_sent - stats_.packets_delivered;
    return std::move(stats_);
  }

 protected:
  virtual void on_move(AsId new_as) = 0;
  virtual void send_packet(double send_time_ms) = 0;

  [[nodiscard]] AsId device_location(double time_ms) const {
    AsId location = config_.schedule.front().as;
    for (const MobilityStep& step : config_.schedule) {
      if (step.time_ms > time_ms) break;
      location = step.as;
    }
    return location;
  }

  void deliver(double send_time_ms) {
    ++stats_.packets_delivered;
    const double delay = queue_.now() - send_time_ms;
    stats_.delivery_delay_ms.add(delay);
    const double direct =
        fabric_.path_delay_ms(config_.correspondent,
                              device_location(queue_.now()))
            .value_or(delay);
    stats_.stretch.add(delay /
                       std::max(direct, fabric_.config().min_link_ms));
    if (move_pending_) {
      stats_.outage_ms.add(queue_.now() - last_move_ms_);
      move_pending_ = false;
    }
  }

  void count_control(std::size_t messages) {
    stats_.control_messages += messages;
  }

  const ForwardingFabric& fabric_;
  const SessionConfig& config_;
  EventQueue queue_;
  SessionStats stats_;

 private:
  double last_move_ms_ = 0.0;
  bool move_pending_ = false;
};

class IndirectionRunner final : public SessionRunner {
 public:
  IndirectionRunner(const ForwardingFabric& fabric,
                    const SessionConfig& config)
      : SessionRunner(fabric, config),
        home_(config.home_as.value_or(config.schedule.front().as)),
        registry_(config.schedule.front().as) {}

 private:
  void on_move(AsId new_as) override {
    // Registration message travels from the new location to the home agent.
    count_control(1);
    const auto delay = fabric_.path_delay_ms(new_as, home_);
    if (!delay.has_value()) return;
    queue_.schedule_in(*delay, [this, new_as] { registry_ = new_as; });
  }

  void send_packet(double send_time_ms) override {
    // Leg 1: correspondent -> home agent.
    const auto to_home =
        fabric_.path_delay_ms(config_.correspondent, home_);
    if (!to_home.has_value()) return;  // lost
    queue_.schedule_in(*to_home, [this, send_time_ms] {
      // Leg 2: home agent -> registered care-of location.
      const AsId target = registry_;
      const auto to_target = fabric_.path_delay_ms(home_, target);
      if (!to_target.has_value()) return;
      queue_.schedule_in(*to_target, [this, send_time_ms, target] {
        if (device_location(queue_.now()) == target) {
          deliver(send_time_ms);
        }
      });
    });
  }

  AsId home_;
  AsId registry_;
};

class ResolutionRunner final : public SessionRunner {
 public:
  ResolutionRunner(const ForwardingFabric& fabric,
                   const SessionConfig& config)
      : SessionRunner(fabric, config),
        resolver_(config.resolver_as.value_or(config.correspondent)),
        registry_(config.schedule.front().as),
        cache_(config.schedule.front().as) {
    // Periodic re-resolution; the initial resolution happened at setup.
    for (double t = config.resolver_ttl_ms; t < config.duration_ms;
         t += config.resolver_ttl_ms) {
      queue_.schedule(t, [this] { resolve(); });
    }
  }

 private:
  void resolve() {
    count_control(1);
    const auto to_resolver =
        fabric_.path_delay_ms(config_.correspondent, resolver_);
    if (!to_resolver.has_value()) return;
    queue_.schedule_in(*to_resolver, [this] {
      const AsId answer = registry_;
      const auto back =
          fabric_.path_delay_ms(resolver_, config_.correspondent);
      if (!back.has_value()) return;
      queue_.schedule_in(*back, [this, answer] { cache_ = answer; });
    });
  }

  void on_move(AsId new_as) override {
    // The device updates the resolver (one message).
    count_control(1);
    const auto delay = fabric_.path_delay_ms(new_as, resolver_);
    if (!delay.has_value()) return;
    queue_.schedule_in(*delay, [this, new_as] { registry_ = new_as; });
  }

  void send_packet(double send_time_ms) override {
    const AsId target = cache_;
    const auto delay = fabric_.path_delay_ms(config_.correspondent, target);
    if (!delay.has_value()) return;
    queue_.schedule_in(*delay, [this, send_time_ms, target] {
      if (device_location(queue_.now()) == target) {
        deliver(send_time_ms);
      }
    });
  }

  AsId resolver_;
  AsId registry_;  // the resolver's authoritative record
  AsId cache_;     // the correspondent's cached answer
};

class ReplicatedResolutionRunner final : public SessionRunner {
 public:
  ReplicatedResolutionRunner(const ForwardingFabric& fabric,
                             const SessionConfig& config)
      : SessionRunner(fabric, config),
        pool_(fabric, config.resolver_replicas),
        records_(config.resolver_replicas.size(),
                 config.schedule.front().as),
        cache_(config.schedule.front().as) {
    // The correspondent always queries its nearest replica.
    lookup_replica_ = 0;
    for (std::size_t i = 0; i < pool_.replicas().size(); ++i) {
      if (pool_.replicas()[i] == pool_.nearest_replica(config.correspondent)) {
        lookup_replica_ = i;
      }
    }
    for (double t = config.resolver_ttl_ms; t < config.duration_ms;
         t += config.resolver_ttl_ms) {
      queue_.schedule(t, [this] { resolve(); });
    }
  }

 private:
  void resolve() {
    count_control(1);
    const AsId replica = pool_.replicas()[lookup_replica_];
    const auto to_replica =
        fabric_.path_delay_ms(config_.correspondent, replica);
    if (!to_replica.has_value()) return;
    queue_.schedule_in(*to_replica, [this, replica] {
      const AsId answer = records_[lookup_replica_];
      const auto back = fabric_.path_delay_ms(replica, config_.correspondent);
      if (!back.has_value()) return;
      queue_.schedule_in(*back, [this, answer] { cache_ = answer; });
    });
  }

  void on_move(AsId new_as) override {
    // Device -> primary replica, then primary -> every other replica.
    count_control(pool_.update_message_count());
    const auto arrivals = pool_.propagation_times_ms(new_as, queue_.now());
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      queue_.schedule(arrivals[i], [this, i, new_as] {
        records_[i] = new_as;
      });
    }
  }

  void send_packet(double send_time_ms) override {
    const AsId target = cache_;
    const auto delay = fabric_.path_delay_ms(config_.correspondent, target);
    if (!delay.has_value()) return;
    queue_.schedule_in(*delay, [this, send_time_ms, target] {
      if (device_location(queue_.now()) == target) {
        deliver(send_time_ms);
      }
    });
  }

  ResolverPool pool_;
  std::vector<AsId> records_;  // per-replica registered location
  std::size_t lookup_replica_;
  AsId cache_;
};

class NameBasedRunner final : public SessionRunner {
 public:
  NameBasedRunner(const ForwardingFabric& fabric, const SessionConfig& config)
      : SessionRunner(fabric, config) {
    history_.push_back({0.0, config.schedule.front().as});
  }

 private:
  /// The attachment AS router `at` currently believes the name maps to:
  /// the newest move whose flooding wavefront (update_hop_ms per physical
  /// AS hop) has reached `at` by `time_ms`. Scoped flooding (§8 hybrid):
  /// moves are only ever announced within update_scope_hops of the new
  /// attachment; out-of-scope routers fall back to the initial, globally
  /// announced attachment.
  [[nodiscard]] AsId belief(AsId at, double time_ms) const {
    for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
      const std::size_t hops = fabric_.physical_hops(at, it->as);
      const bool announced =
          it == history_.rend() - 1 || hops <= config_.update_scope_hops;
      if (!announced) continue;
      const double arrival =
          it->time_ms +
          static_cast<double>(hops) * config_.update_hop_ms;
      if (arrival <= time_ms) return it->as;
    }
    return history_.front().as;
  }

  void on_move(AsId new_as) override {
    history_.push_back({queue_.now(), new_as});
    // Flooding cost: every router within scope (everyone when global).
    const auto& graph = fabric_.internet().graph();
    if (config_.update_scope_hops >= graph.as_count()) {
      count_control(graph.as_count());
    } else {
      std::size_t reached = 0;
      for (AsId as = 0; as < graph.as_count(); ++as) {
        if (fabric_.physical_hops(as, new_as) <= config_.update_scope_hops) {
          ++reached;
        }
      }
      count_control(reached);
    }
  }

  void send_packet(double send_time_ms) override {
    hop(config_.correspondent, send_time_ms, 0);
  }

  void hop(AsId at, double send_time_ms, std::size_t hops) {
    if (hops > config_.packet_ttl_hops) return;  // dropped in a loop
    const AsId dest = belief(at, queue_.now());
    if (at == dest) {
      if (device_location(queue_.now()) == at) deliver(send_time_ms);
      return;  // belief said "here" but the device has left: lost
    }
    const auto next = fabric_.next_hop(at, dest);
    if (!next.has_value()) return;
    const double delay = fabric_.link_delay_ms(at, *next);
    queue_.schedule_in(delay, [this, next = *next, send_time_ms, hops] {
      hop(next, send_time_ms, hops + 1);
    });
  }

  std::vector<MobilityStep> history_;
};

}  // namespace

SessionStats simulate_session(const ForwardingFabric& fabric,
                              SimArchitecture architecture,
                              const SessionConfig& config) {
  validate(config, fabric, architecture);
  switch (architecture) {
    case SimArchitecture::kIndirection:
      return IndirectionRunner(fabric, config).run();
    case SimArchitecture::kNameResolution:
      return ResolutionRunner(fabric, config).run();
    case SimArchitecture::kNameBased:
      return NameBasedRunner(fabric, config).run();
    case SimArchitecture::kReplicatedResolution:
      return ReplicatedResolutionRunner(fabric, config).run();
  }
  throw std::invalid_argument("simulate_session: unknown architecture");
}

}  // namespace lina::sim
