#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lina/mobility/device_trace.hpp"
#include "lina/net/ipv4.hpp"

namespace lina::mobility {

/// The set of addresses a multihomed device is simultaneously reachable at,
/// at one instant — the device-side analogue of a content name's
/// Addrs(d, t). §3.3 notes its model "applies to both device and content
/// mobility"; this type carries the device case.
struct DeviceSetSnapshot {
  double hour = 0.0;
  std::vector<net::Ipv4Address> addresses;  // sorted, deduplicated
};

/// A multihomed device's attachment history: a time-ordered sequence of
/// address-set snapshots (recorded only at changes).
class MultihomedDeviceTrace {
 public:
  explicit MultihomedDeviceTrace(std::uint32_t user_id)
      : user_id_(user_id) {}

  /// Records the address set at `hour`; normalizes, drops no-op updates,
  /// requires non-decreasing time with the first snapshot at hour 0.
  void observe(double hour, std::vector<net::Ipv4Address> addresses);

  [[nodiscard]] std::uint32_t user_id() const { return user_id_; }
  [[nodiscard]] std::span<const DeviceSetSnapshot> snapshots() const {
    return snapshots_;
  }

  /// Number of mobility events (set changes after the first snapshot).
  [[nodiscard]] std::size_t event_count() const {
    return snapshots_.empty() ? 0 : snapshots_.size() - 1;
  }

 private:
  std::uint32_t user_id_;
  std::vector<DeviceSetSnapshot> snapshots_;
};

/// Derives a multihomed ("make-before-break") view of a single-homed
/// trace: around each address change, both the old and the new interface
/// are active for `overlap_hours` — a phone holding WiFi and cellular
/// simultaneously during a handoff. With overlap_hours == 0 the snapshots
/// degenerate to singleton sets at each transition (break-before-make).
/// Throws on negative overlap or empty traces.
[[nodiscard]] MultihomedDeviceTrace multihomed_view(const DeviceTrace& trace,
                                                    double overlap_hours);

/// Applies multihomed_view to a population.
[[nodiscard]] std::vector<MultihomedDeviceTrace> multihomed_views(
    std::span<const DeviceTrace> traces, double overlap_hours);

}  // namespace lina::mobility
