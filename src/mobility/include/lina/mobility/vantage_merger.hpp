#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "lina/stats/rng.hpp"
#include "lina/topology/geo.hpp"

namespace lina::mobility {

/// Simulates the paper's distributed measurement (§7.1): each of N vantage
/// points hourly resolves a CDN-delegated name and receives the replicas
/// nearest to it; the controller merges the per-vantage views. The merged
/// view is the union of every vantage's k nearest replica sites — replicas
/// no vantage is near stay invisible, exactly the partial-view artifact the
/// real methodology has.
class VantagePointMerger {
 public:
  /// `vantages`: measurement node locations; `replicas_per_resolution`: how
  /// many nearby replicas a locality-aware resolver returns per query.
  VantagePointMerger(std::vector<topology::GeoPoint> vantages,
                     std::size_t replicas_per_resolution = 3);

  /// Indices into `replica_sites` visible in the merged view (sorted,
  /// unique). With replica sets no larger than the resolver's answer size,
  /// everything is visible.
  [[nodiscard]] std::vector<std::size_t> visible_sites(
      std::span<const topology::GeoPoint> replica_sites) const;

  /// Indices the single vantage `v` sees (its k nearest sites).
  [[nodiscard]] std::vector<std::size_t> sites_seen_by(
      std::size_t v, std::span<const topology::GeoPoint> replica_sites) const;

  [[nodiscard]] std::size_t vantage_count() const { return vantages_.size(); }
  [[nodiscard]] std::size_t replicas_per_resolution() const {
    return replicas_per_resolution_;
  }

  /// Scatters `count` vantage points around the world metro anchors, the
  /// synthetic analogue of "74 Planetlab nodes chosen from as many
  /// different countries as possible".
  [[nodiscard]] static std::vector<topology::GeoPoint> worldwide_vantages(
      std::size_t count, stats::Rng& rng);

 private:
  std::vector<topology::GeoPoint> vantages_;
  std::size_t replicas_per_resolution_;
};

}  // namespace lina::mobility
