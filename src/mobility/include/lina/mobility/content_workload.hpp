#pragma once

#include <cstdint>
#include <vector>

#include "lina/mobility/content_trace.hpp"
#include "lina/mobility/vantage_merger.hpp"
#include "lina/routing/synthetic_internet.hpp"

namespace lina::mobility {

/// Calibration knobs for the PlanetLab-substitute content workload
/// (DESIGN.md §1). Defaults reproduce the paper's §7 anchors: 500 popular
/// domains expanding to ~12K subdomains, 24.5% of popular (1.6% of
/// unpopular) domains CDN-delegated, 21 days of hourly resolution from 74
/// vantage points, and a median of ~2 merged-set changes per day for
/// popular content.
struct ContentWorkloadConfig {
  std::size_t popular_domains = 500;
  std::size_t unpopular_domains = 500;

  double popular_cdn_fraction = 0.245;
  double unpopular_cdn_fraction = 0.016;

  /// Subdomain fan-out of popular domains (log-normal across domains).
  double subdomain_median = 10.0;
  double subdomain_sigma = 1.3;
  std::size_t max_subdomains = 400;

  /// Fraction of a CDN-backed domain's subdomains that are CNAME-aliased
  /// to the CDN (the rest are origin-served).
  double cdn_alias_fraction = 0.7;

  std::size_t days = 21;
  std::size_t vantage_count = 74;
  std::size_t resolved_replicas_per_vantage = 3;

  /// CDN footprint: replica sites ("PoPs") per metro anchor, and the number
  /// of PoPs a CDN-backed domain is provisioned on.
  std::size_t pops_per_anchor = 4;
  std::size_t min_pops_per_domain = 8;
  std::size_t max_pops_per_domain = 40;

  /// Dynamics (per hour unless noted). Rotations stay inside one prefix
  /// (load-balancer pools and PoP subnets), so they change the observed
  /// address set without changing forwarding ports; footprint changes and
  /// migrations are what move ports.
  double cdn_replica_rotate_prob = 0.05;   // per aliased name: one replica
                                           // re-addressed within its PoP
  double cdn_pop_change_prob = 0.02;       // per domain: one PoP swapped
  double popular_origin_rotate_prob = 0.07;  // per origin-served name: DNS
                                             // load-balancing rotation
  double unpopular_origin_rotate_prob = 0.008;
  double popular_migrate_prob_per_day = 0.004;    // whole origin re-hosted
  double unpopular_migrate_prob_per_day = 0.0004;

  /// Fraction of origin-served names hosted in two regions (cloud primary +
  /// secondary); their pools rotate across the two hosting ASes, which is
  /// what moves forwarding ports for non-CDN popular content.
  double popular_multihomed_origin_fraction = 0.45;
  double unpopular_multihomed_origin_fraction = 0.02;
  double secondary_origin_weight = 0.3;  // share of pool drawn secondary

  /// Per-name dynamism mixture: a share of names resolve far more
  /// dynamically (Akamai-style per-query answers), producing the Figure
  /// 11(a) tail up to the 24/day sampling cap.
  double hot_name_fraction = 0.05;      // rotate every hour or two
  double warm_name_fraction = 0.10;     // a few times a day
  double hot_rotate_multiplier = 20.0;
  double warm_rotate_multiplier = 4.0;

  /// Origin-served names resolve to this many addresses.
  std::size_t origin_pool_min = 2;
  std::size_t origin_pool_max = 4;

  std::uint64_t seed = 11;
};

/// The generated catalog: one trace per content name.
struct ContentCatalog {
  std::vector<ContentTrace> popular;    // apex domains and their subdomains
  std::vector<ContentTrace> unpopular;

  [[nodiscard]] std::size_t popular_name_count() const {
    return popular.size();
  }
  [[nodiscard]] std::size_t unpopular_name_count() const {
    return unpopular.size();
  }
};

/// Generates content-mobility traces over a synthetic Internet.
///
/// Model (mirrors §7.1): a worldwide CDN with PoPs in stub ASes near every
/// metro anchor; popular domains "p<i>.com" with heavy-tailed subdomain
/// fan-out, CDN-backed with probability 24.5% (apex and an
/// `cdn_alias_fraction` share of subdomains aliased); unpopular domains
/// "u<i>.net" with almost no subdomains. Hourly, replica addresses rotate
/// within PoPs, PoP footprints occasionally change, and origin-served
/// names rotate through small load-balanced pools; every name's
/// merged-across-vantages address set is recorded on change.
class ContentWorkloadGenerator {
 public:
  ContentWorkloadGenerator(const routing::SyntheticInternet& internet,
                           ContentWorkloadConfig config = {});

  [[nodiscard]] ContentCatalog generate() const;

  [[nodiscard]] const ContentWorkloadConfig& config() const {
    return config_;
  }

  /// The CDN PoP ASes chosen by the generator (exposed for tests).
  [[nodiscard]] std::span<const topology::AsId> cdn_pop_ases() const {
    return pop_ases_;
  }

 private:
  const routing::SyntheticInternet& internet_;
  ContentWorkloadConfig config_;
  std::vector<topology::AsId> pop_ases_;       // CDN replica sites
  std::vector<topology::GeoPoint> pop_sites_;  // their locations
};

}  // namespace lina::mobility
