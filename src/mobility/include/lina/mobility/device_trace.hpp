#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lina/net/ipv4.hpp"
#include "lina/topology/as_graph.hpp"

namespace lina::mobility {

/// One continuous attachment of a device to a network location — the
/// synthetic analogue of the interval between two NomadLog connectivity
/// events (§4).
struct DeviceVisit {
  double start_hour = 0.0;      // hours since trace start
  double duration_hours = 0.0;  // > 0
  net::Ipv4Address address;
  net::Prefix prefix;  // the announced prefix containing `address`
  topology::AsId as = 0;
  bool cellular = false;  // network type: cellular vs WiFi
};

/// An address-change ("mobility") event: the device was reachable at `from`
/// and becomes reachable at `to` at time `hour`.
struct DeviceMobilityEvent {
  double hour = 0.0;
  net::Ipv4Address from;
  net::Ipv4Address to;
};

/// Per-day extent-of-mobility statistics for one user — the raw material of
/// Figures 6, 7 and 9.
struct DayStats {
  std::size_t distinct_ips = 0;
  std::size_t distinct_prefixes = 0;
  std::size_t distinct_ases = 0;
  std::size_t ip_transitions = 0;
  std::size_t prefix_transitions = 0;
  std::size_t as_transitions = 0;
  double dominant_ip_fraction = 0.0;      // time share of the dominant IP
  double dominant_prefix_fraction = 0.0;
  double dominant_as_fraction = 0.0;
};

/// A device's full network-mobility history: a time-ordered sequence of
/// visits covering `day_count` days.
class DeviceTrace {
 public:
  DeviceTrace(std::uint32_t user_id, std::size_t day_count)
      : user_id_(user_id), day_count_(day_count) {}

  /// Appends a visit; must start exactly where the previous one ended
  /// (contiguous coverage) and have positive duration. Throws otherwise.
  void append(DeviceVisit visit);

  [[nodiscard]] std::uint32_t user_id() const { return user_id_; }
  [[nodiscard]] std::size_t day_count() const { return day_count_; }
  [[nodiscard]] std::span<const DeviceVisit> visits() const {
    return visits_;
  }

  /// Statistics for one day (0-based); visits spanning midnight contribute
  /// their in-day portion to each day they touch.
  [[nodiscard]] DayStats day_stats(std::size_t day) const;

  /// All address-change events in time order (one per visit boundary where
  /// the address differs).
  [[nodiscard]] std::vector<DeviceMobilityEvent> events() const;

  /// The AS where the user spends the most total time across the whole
  /// trace — the natural home-agent placement (§6.3.1). Throws if empty.
  [[nodiscard]] topology::AsId dominant_as() const;

  /// The address where the user spends the most total time.
  [[nodiscard]] net::Ipv4Address dominant_address() const;

  /// Total time share spent at the dominant AS across the whole trace.
  [[nodiscard]] double dominant_as_share() const;

 private:
  std::uint32_t user_id_;
  std::size_t day_count_;
  std::vector<DeviceVisit> visits_;
};

}  // namespace lina::mobility
