#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "lina/names/content_name.hpp"
#include "lina/net/ipv4.hpp"

namespace lina::mobility {

/// The resolved address set of a content name at one instant — Addrs(d, t)
/// in the paper's §3.3.1 — as merged across all measurement vantage points.
struct ContentSnapshot {
  double hour = 0.0;
  std::vector<net::Ipv4Address> addresses;  // sorted, deduplicated
};

/// One content mobility event: the merged address set changed between two
/// consecutive hourly observations.
struct ContentMobilityEvent {
  double hour = 0.0;  // when the new set was observed
  std::span<const net::Ipv4Address> before;
  std::span<const net::Ipv4Address> after;
};

/// The observation history of one content name: the initial address set
/// plus a snapshot at every change (storing only changes keeps the
/// 12K-name × 3-week catalog compact).
class ContentTrace {
 public:
  ContentTrace(names::ContentName name, bool popular, bool cdn_backed,
               std::size_t day_count)
      : name_(std::move(name)),
        popular_(popular),
        cdn_backed_(cdn_backed),
        day_count_(day_count) {}

  /// Records the address set observed at `hour`. The set is normalized
  /// (sorted, deduplicated); if it equals the previous snapshot the call is
  /// a no-op (no mobility event happened). Hours must be non-decreasing;
  /// the first snapshot must be at hour 0. Empty sets are allowed
  /// (momentarily unresolvable names).
  void observe(double hour, std::vector<net::Ipv4Address> addresses);

  [[nodiscard]] const names::ContentName& name() const { return name_; }
  [[nodiscard]] bool popular() const { return popular_; }
  [[nodiscard]] bool cdn_backed() const { return cdn_backed_; }
  [[nodiscard]] std::size_t day_count() const { return day_count_; }

  [[nodiscard]] std::span<const ContentSnapshot> snapshots() const {
    return snapshots_;
  }

  /// All mobility events (consecutive snapshot pairs), in time order.
  [[nodiscard]] std::vector<ContentMobilityEvent> events() const;

  /// Number of mobility events per day (size day_count()).
  [[nodiscard]] std::vector<std::size_t> daily_event_counts() const;

  /// Average mobility events per day over the whole trace.
  [[nodiscard]] double events_per_day() const;

  /// The final observed address set (empty if never observed).
  [[nodiscard]] std::span<const net::Ipv4Address> final_addresses() const;

 private:
  names::ContentName name_;
  bool popular_;
  bool cdn_backed_;
  std::size_t day_count_;
  std::vector<ContentSnapshot> snapshots_;
};

}  // namespace lina::mobility
