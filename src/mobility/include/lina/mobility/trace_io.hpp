#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "lina/mobility/content_trace.hpp"
#include "lina/mobility/device_trace.hpp"
#include "lina/routing/synthetic_internet.hpp"

namespace lina::mobility {

/// One NomadLog database record, mirroring the §4 schema
///   device_id | time | ip_addr | net_type | (lat, long)
/// with time in hours since the device's trace start.
struct NomadLogRecord {
  std::uint32_t device_id = 0;
  double time_hours = 0.0;
  net::Ipv4Address address;
  bool cellular = false;
  bool has_location = false;
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;

  friend bool operator==(const NomadLogRecord&,
                         const NomadLogRecord&) = default;
};

/// Serializes traces as NomadLog CSV (`device_id,time_hours,ip_addr,
/// net_type,lat,long`), one row per connectivity event (visit start).
void write_nomadlog_csv(std::ostream& out,
                        std::span<const DeviceTrace> traces);

/// Parses NomadLog CSV; accepts an optional header row and empty lat/long
/// fields. Throws std::invalid_argument on malformed rows.
[[nodiscard]] std::vector<NomadLogRecord> read_nomadlog_csv(std::istream& in);

/// Maps raw logged addresses to routing metadata when reconstructing
/// traces — real deployments would back this with prefix/AS databases;
/// experiments back it with the synthetic Internet.
class AddressResolver {
 public:
  virtual ~AddressResolver() = default;
  [[nodiscard]] virtual net::Prefix prefix_of(net::Ipv4Address addr) const = 0;
  [[nodiscard]] virtual topology::AsId as_of(net::Ipv4Address addr) const = 0;

 protected:
  AddressResolver() = default;
};

/// Resolver backed by a SyntheticInternet's announced prefixes.
class InternetAddressResolver final : public AddressResolver {
 public:
  explicit InternetAddressResolver(const routing::SyntheticInternet& internet)
      : internet_(&internet) {}

  [[nodiscard]] net::Prefix prefix_of(net::Ipv4Address addr) const override {
    return internet_->prefix_of(addr);
  }
  [[nodiscard]] topology::AsId as_of(net::Ipv4Address addr) const override {
    return internet_->owner_of(addr);
  }

 private:
  const routing::SyntheticInternet* internet_;
};

/// Reconstructs per-device traces from connectivity-event records: each
/// device's records are sorted by time and shifted so its first event is
/// hour 0; each record's address holds until the next record; the last
/// holds for `tail_hours`. Records with addresses the resolver cannot map
/// are dropped (the paper logs only usable public addresses). Devices left
/// with no records are omitted, as are devices spanning under one day
/// (§4: "we removed users who ran the app for less than a day").
[[nodiscard]] std::vector<DeviceTrace> traces_from_records(
    std::span<const NomadLogRecord> records, const AddressResolver& resolver,
    double tail_hours = 1.0);

/// Serializes a content catalog's traces as CSV
/// (`name,popular,cdn,day_count,hour,addr|addr|...`), one row per snapshot.
void write_content_csv(std::ostream& out,
                       std::span<const ContentTrace> traces);

/// Parses content CSV written by write_content_csv. Throws on malformed
/// rows or out-of-order snapshots.
[[nodiscard]] std::vector<ContentTrace> read_content_csv(std::istream& in);

}  // namespace lina::mobility
