#pragma once

#include <cstdint>
#include <vector>

#include "lina/mobility/device_trace.hpp"
#include "lina/routing/synthetic_internet.hpp"
#include "lina/stats/rng.hpp"

namespace lina::mobility {

/// Calibration knobs for the NomadLog-substitute workload (DESIGN.md §1).
/// Defaults are tuned so the generated population reproduces the paper's §4
/// and §6 anchors: 372 users, median 3 IP / 2 prefix / 2 AS distinct
/// locations per day, >20% of users above 10 IP transitions/day, maximum
/// average AS-transition rate ≈30/day, ≈40% of users spending ≈70% of the
/// day at the dominant IP and ≈85% at the dominant AS.
struct DeviceWorkloadConfig {
  std::size_t user_count = 372;
  std::size_t days = 30;

  /// Per-user mean daily IP transition rate: log-normal across users.
  double median_daily_transitions = 3.6;
  double transition_sigma = 1.45;
  double min_daily_rate = 0.25;
  double max_daily_rate = 45.0;

  /// Probability a transition crosses to a different AS (per user, the
  /// center of a clamped normal).
  double cross_as_probability_mean = 0.32;
  double cross_as_probability_stddev = 0.15;

  /// Probability the user's mobile carrier is (one of) the home ISP's
  /// upstream transit provider(s) — metro networks share infrastructure,
  /// which is what keeps remote routers' update rates moderate (§6.2).
  double cellular_shares_home_upstream = 0.85;

  /// Probability a within-AS connectivity event at home/work actually
  /// changes the address (DHCP lease change); otherwise the device
  /// reattaches with the same address and no mobility event occurs.
  double lease_change_probability = 0.35;

  /// Fraction of users with a distinct work network.
  double work_probability = 0.85;

  /// Probability the work network is chosen among stubs sharing a transit
  /// provider with the home ISP (same-metro infrastructure).
  double work_shares_home_upstream = 0.6;

  /// Probability the home ISP is a single-homed stub (residential access
  /// networks funnel through one transit).
  double home_single_homed_preference = 0.75;

  /// Extra rarely visited locations per user (coffee shops, travel).
  std::size_t max_extra_locations = 4;

  /// Probability an extra location shares transit with home (same metro).
  double extra_shares_home_upstream = 0.6;

  /// Relative expected dwell time by location type.
  double home_weight = 8.0;
  double work_weight = 4.5;
  double cellular_weight = 0.8;
  double other_weight = 1.0;

  /// Population placement: share of users near US / EU / South-America
  /// metro anchors (the paper's user base).
  double us_share = 0.5;
  double eu_share = 0.3;  // remainder is South America

  std::uint64_t seed = 7;
};

/// Generates per-user device traces over a synthetic Internet.
///
/// Each user has a home stub AS, usually a work stub AS, a cellular
/// provider (a prefix-announcing tier-2), and a few extra locations, all
/// near one metro region. Days are built as visit sequences: transitions
/// either hop across ASes (home/work/cellular/other, weighted) or stay
/// within the AS with a fresh address (DHCP/AP churn). Home and work keep
/// stable addresses; cellular attachments draw fresh addresses per connect.
class DeviceWorkloadGenerator {
 public:
  DeviceWorkloadGenerator(const routing::SyntheticInternet& internet,
                          DeviceWorkloadConfig config = {});

  /// Generates the full population (deterministic for a given config).
  [[nodiscard]] std::vector<DeviceTrace> generate() const;

  /// Generates a single user's trace (user ids give independent streams).
  [[nodiscard]] DeviceTrace generate_user(std::uint32_t user_id) const;

  [[nodiscard]] const DeviceWorkloadConfig& config() const { return config_; }

 private:
  struct UserProfile {
    topology::AsId home_as;
    topology::AsId work_as;  // == home_as when the user has no work network
    topology::AsId cellular_as;
    std::vector<topology::AsId> extra_ases;
    net::Ipv4Address home_address;
    net::Ipv4Address work_address;
    net::Ipv4Address cellular_address;
    double daily_rate = 0.0;
    double cross_as_probability = 0.0;
  };

  [[nodiscard]] UserProfile make_profile(stats::Rng& rng) const;

  const routing::SyntheticInternet& internet_;
  DeviceWorkloadConfig config_;
  // Stub and prefix-announcing tier-2 ASes grouped near each metro anchor.
  std::vector<std::vector<topology::AsId>> stubs_by_anchor_;
  std::vector<std::vector<topology::AsId>> tier2_by_anchor_;
};

}  // namespace lina::mobility
