#include "lina/mobility/content_trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lina::mobility {

void ContentTrace::observe(double hour,
                           std::vector<net::Ipv4Address> addresses) {
  std::sort(addresses.begin(), addresses.end());
  addresses.erase(std::unique(addresses.begin(), addresses.end()),
                  addresses.end());
  if (snapshots_.empty()) {
    if (std::abs(hour) > 1e-9)
      throw std::invalid_argument(
          "ContentTrace::observe: first snapshot must be at hour 0");
  } else {
    if (hour < snapshots_.back().hour - 1e-9)
      throw std::invalid_argument("ContentTrace::observe: time went backward");
    if (addresses == snapshots_.back().addresses) return;  // no change
  }
  snapshots_.push_back({hour, std::move(addresses)});
}

std::vector<ContentMobilityEvent> ContentTrace::events() const {
  std::vector<ContentMobilityEvent> out;
  for (std::size_t i = 1; i < snapshots_.size(); ++i) {
    out.push_back({snapshots_[i].hour, snapshots_[i - 1].addresses,
                   snapshots_[i].addresses});
  }
  return out;
}

std::vector<std::size_t> ContentTrace::daily_event_counts() const {
  std::vector<std::size_t> counts(day_count_, 0);
  for (std::size_t i = 1; i < snapshots_.size(); ++i) {
    const auto day = static_cast<std::size_t>(snapshots_[i].hour / 24.0);
    if (day < counts.size()) ++counts[day];
  }
  return counts;
}

double ContentTrace::events_per_day() const {
  if (day_count_ == 0) return 0.0;
  const std::size_t events =
      snapshots_.empty() ? 0 : snapshots_.size() - 1;
  return static_cast<double>(events) / static_cast<double>(day_count_);
}

std::span<const net::Ipv4Address> ContentTrace::final_addresses() const {
  if (snapshots_.empty()) return {};
  return snapshots_.back().addresses;
}

}  // namespace lina::mobility
