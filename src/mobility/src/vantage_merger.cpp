#include "lina/mobility/vantage_merger.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>

#include "lina/topology/as_graph.hpp"

namespace lina::mobility {

VantagePointMerger::VantagePointMerger(
    std::vector<topology::GeoPoint> vantages,
    std::size_t replicas_per_resolution)
    : vantages_(std::move(vantages)),
      replicas_per_resolution_(replicas_per_resolution) {
  if (vantages_.empty())
    throw std::invalid_argument("VantagePointMerger: no vantages");
  if (replicas_per_resolution_ == 0)
    throw std::invalid_argument(
        "VantagePointMerger: zero replicas per resolution");
}

std::vector<std::size_t> VantagePointMerger::sites_seen_by(
    std::size_t v, std::span<const topology::GeoPoint> replica_sites) const {
  if (v >= vantages_.size())
    throw std::out_of_range("VantagePointMerger::sites_seen_by");
  std::vector<std::size_t> order(replica_sites.size());
  std::iota(order.begin(), order.end(), 0);
  const topology::GeoPoint here = vantages_[v];
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = topology::great_circle_km(here, replica_sites[a]);
    const double db = topology::great_circle_km(here, replica_sites[b]);
    if (da != db) return da < db;
    return a < b;
  });
  order.resize(std::min(replicas_per_resolution_, order.size()));
  std::sort(order.begin(), order.end());
  return order;
}

std::vector<std::size_t> VantagePointMerger::visible_sites(
    std::span<const topology::GeoPoint> replica_sites) const {
  if (replica_sites.size() <= replicas_per_resolution_) {
    std::vector<std::size_t> all(replica_sites.size());
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  std::set<std::size_t> merged;
  for (std::size_t v = 0; v < vantages_.size(); ++v) {
    for (const std::size_t s : sites_seen_by(v, replica_sites)) {
      merged.insert(s);
    }
  }
  return {merged.begin(), merged.end()};
}

std::vector<topology::GeoPoint> VantagePointMerger::worldwide_vantages(
    std::size_t count, stats::Rng& rng) {
  const auto anchors = topology::metro_anchors();
  std::vector<topology::GeoPoint> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const topology::GeoPoint base = anchors[i % anchors.size()];
    out.push_back({base.latitude_deg + rng.uniform(-10.0, 10.0),
                   base.longitude_deg + rng.uniform(-10.0, 10.0)});
  }
  return out;
}

}  // namespace lina::mobility
