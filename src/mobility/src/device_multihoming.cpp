#include "lina/mobility/device_multihoming.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lina::mobility {

void MultihomedDeviceTrace::observe(double hour,
                                    std::vector<net::Ipv4Address> addresses) {
  std::sort(addresses.begin(), addresses.end());
  addresses.erase(std::unique(addresses.begin(), addresses.end()),
                  addresses.end());
  if (snapshots_.empty()) {
    if (std::abs(hour) > 1e-9)
      throw std::invalid_argument(
          "MultihomedDeviceTrace::observe: first snapshot must be at hour 0");
  } else {
    if (hour < snapshots_.back().hour - 1e-9)
      throw std::invalid_argument(
          "MultihomedDeviceTrace::observe: time went backward");
    if (addresses == snapshots_.back().addresses) return;
  }
  snapshots_.push_back({hour, std::move(addresses)});
}

MultihomedDeviceTrace multihomed_view(const DeviceTrace& trace,
                                      double overlap_hours) {
  if (overlap_hours < 0.0)
    throw std::invalid_argument("multihomed_view: negative overlap");
  const auto visits = trace.visits();
  if (visits.empty())
    throw std::invalid_argument("multihomed_view: empty trace");

  MultihomedDeviceTrace out(trace.user_id());
  out.observe(0.0, {visits.front().address});
  for (std::size_t i = 1; i < visits.size(); ++i) {
    const DeviceVisit& previous = visits[i - 1];
    const DeviceVisit& current = visits[i];
    if (previous.address == current.address) continue;
    if (overlap_hours > 0.0) {
      // Make-before-break: both interfaces up across the handoff, until
      // the old one is torn down (bounded by the new visit's duration).
      out.observe(current.start_hour,
                  {previous.address, current.address});
      const double teardown =
          current.start_hour +
          std::min(overlap_hours, current.duration_hours * 0.5);
      out.observe(teardown, {current.address});
    } else {
      out.observe(current.start_hour, {current.address});
    }
  }
  return out;
}

std::vector<MultihomedDeviceTrace> multihomed_views(
    std::span<const DeviceTrace> traces, double overlap_hours) {
  std::vector<MultihomedDeviceTrace> out;
  out.reserve(traces.size());
  for (const DeviceTrace& trace : traces) {
    out.push_back(multihomed_view(trace, overlap_hours));
  }
  return out;
}

}  // namespace lina::mobility
