#include "lina/mobility/trace_io.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace lina::mobility {

namespace {

std::vector<std::string> split_csv_row(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, ',')) fields.push_back(field);
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

double parse_double(const std::string& text, const char* what) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(what);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("trace_io: bad ") + what +
                                " field: '" + text + "'");
  }
}

std::uint32_t parse_u32(const std::string& text, const char* what) {
  try {
    std::size_t pos = 0;
    const unsigned long value = std::stoul(text, &pos);
    if (pos != text.size() || value > 0xffffffffUL)
      throw std::invalid_argument(what);
    return static_cast<std::uint32_t>(value);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("trace_io: bad ") + what +
                                " field: '" + text + "'");
  }
}

}  // namespace

void write_nomadlog_csv(std::ostream& out,
                        std::span<const DeviceTrace> traces) {
  const auto saved_precision = out.precision(12);
  out << "device_id,time_hours,ip_addr,net_type,lat,long\n";
  for (const DeviceTrace& trace : traces) {
    for (const DeviceVisit& visit : trace.visits()) {
      out << trace.user_id() << ',' << visit.start_hour << ','
          << visit.address.to_string() << ','
          << (visit.cellular ? "cellular" : "wifi") << ",,\n";
    }
  }
  out.precision(saved_precision);
}

std::vector<NomadLogRecord> read_nomadlog_csv(std::istream& in) {
  std::vector<NomadLogRecord> records;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line.rfind("device_id", 0) == 0) continue;  // header
    }
    const auto fields = split_csv_row(line);
    if (fields.size() < 4)
      throw std::invalid_argument("trace_io: NomadLog row needs >= 4 fields: '" +
                                  line + "'");
    NomadLogRecord record;
    record.device_id = parse_u32(fields[0], "device_id");
    record.time_hours = parse_double(fields[1], "time_hours");
    record.address = net::Ipv4Address::parse(fields[2]);
    if (fields[3] == "cellular") {
      record.cellular = true;
    } else if (fields[3] == "wifi") {
      record.cellular = false;
    } else {
      throw std::invalid_argument("trace_io: bad net_type '" + fields[3] +
                                  "'");
    }
    if (fields.size() >= 6 && !fields[4].empty() && !fields[5].empty()) {
      record.has_location = true;
      record.latitude_deg = parse_double(fields[4], "lat");
      record.longitude_deg = parse_double(fields[5], "long");
    }
    records.push_back(record);
  }
  return records;
}

std::vector<DeviceTrace> traces_from_records(
    std::span<const NomadLogRecord> records, const AddressResolver& resolver,
    double tail_hours) {
  if (tail_hours <= 0.0)
    throw std::invalid_argument("traces_from_records: tail_hours <= 0");

  std::map<std::uint32_t, std::vector<NomadLogRecord>> by_device;
  for (const NomadLogRecord& record : records) {
    by_device[record.device_id].push_back(record);
  }

  std::vector<DeviceTrace> traces;
  for (auto& [device, events] : by_device) {
    std::stable_sort(events.begin(), events.end(),
                     [](const NomadLogRecord& a, const NomadLogRecord& b) {
                       return a.time_hours < b.time_hours;
                     });
    // Resolve addresses; drop unmappable events (paywalled APs etc. never
    // produced usable addresses in the real system either).
    struct Resolved {
      double time;
      net::Ipv4Address address;
      net::Prefix prefix;
      topology::AsId as;
      bool cellular;
    };
    std::vector<Resolved> resolved;
    for (const NomadLogRecord& event : events) {
      try {
        resolved.push_back({event.time_hours, event.address,
                            resolver.prefix_of(event.address),
                            resolver.as_of(event.address), event.cellular});
      } catch (const std::exception&) {
        continue;  // unmappable address
      }
    }
    if (resolved.empty()) continue;

    const double start = resolved.front().time;
    const double span =
        resolved.back().time - start + tail_hours;
    if (span < 24.0) continue;  // under one day of observation (§4)
    const auto day_count = static_cast<std::size_t>(std::ceil(span / 24.0));

    DeviceTrace trace(device, day_count);
    for (std::size_t i = 0; i < resolved.size(); ++i) {
      const double begin = resolved[i].time - start;
      const double end = (i + 1 < resolved.size())
                             ? resolved[i + 1].time - start
                             : span;
      if (end - begin <= 1e-9) continue;  // simultaneous events: keep last
      trace.append({begin, end - begin, resolved[i].address,
                    resolved[i].prefix, resolved[i].as,
                    resolved[i].cellular});
    }
    if (!trace.visits().empty()) traces.push_back(std::move(trace));
  }
  return traces;
}

void write_content_csv(std::ostream& out,
                       std::span<const ContentTrace> traces) {
  const auto saved_precision = out.precision(12);
  out << "name,popular,cdn,day_count,hour,addresses\n";
  for (const ContentTrace& trace : traces) {
    for (const ContentSnapshot& snapshot : trace.snapshots()) {
      out << trace.name().to_dns() << ','
          << (trace.popular() ? 1 : 0) << ','
          << (trace.cdn_backed() ? 1 : 0) << ','
          << trace.day_count() << ',' << snapshot.hour << ',';
      bool first = true;
      for (const net::Ipv4Address addr : snapshot.addresses) {
        if (!first) out << '|';
        out << addr.to_string();
        first = false;
      }
      out << '\n';
    }
  }
  out.precision(saved_precision);
}

std::vector<ContentTrace> read_content_csv(std::istream& in) {
  std::vector<ContentTrace> traces;
  std::map<std::string, std::size_t> index;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line.rfind("name,", 0) == 0) continue;  // header
    }
    const auto fields = split_csv_row(line);
    if (fields.size() != 6)
      throw std::invalid_argument("trace_io: content row needs 6 fields: '" +
                                  line + "'");
    const std::string& key = fields[0];
    const auto it = index.find(key);
    std::size_t slot;
    if (it == index.end()) {
      slot = traces.size();
      index[key] = slot;
      traces.emplace_back(names::ContentName::from_dns(key),
                          parse_u32(fields[1], "popular") != 0,
                          parse_u32(fields[2], "cdn") != 0,
                          parse_u32(fields[3], "day_count"));
    } else {
      slot = it->second;
    }
    std::vector<net::Ipv4Address> addresses;
    if (!fields[5].empty()) {
      std::istringstream addr_stream(fields[5]);
      std::string token;
      while (std::getline(addr_stream, token, '|')) {
        addresses.push_back(net::Ipv4Address::parse(token));
      }
    }
    traces[slot].observe(parse_double(fields[4], "hour"),
                         std::move(addresses));
  }
  return traces;
}

}  // namespace lina::mobility
