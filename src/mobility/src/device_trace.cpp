#include "lina/mobility/device_trace.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

namespace lina::mobility {

namespace {
constexpr double kEpsilon = 1e-9;
}

void DeviceTrace::append(DeviceVisit visit) {
  if (visit.duration_hours <= 0.0)
    throw std::invalid_argument("DeviceTrace::append: non-positive duration");
  if (!visits_.empty()) {
    const DeviceVisit& last = visits_.back();
    const double expected = last.start_hour + last.duration_hours;
    if (std::abs(visit.start_hour - expected) > 1e-6)
      throw std::invalid_argument("DeviceTrace::append: gap in coverage");
  } else if (std::abs(visit.start_hour) > 1e-6) {
    throw std::invalid_argument("DeviceTrace::append: must start at hour 0");
  }
  visits_.push_back(visit);
}

DayStats DeviceTrace::day_stats(std::size_t day) const {
  if (day >= day_count_)
    throw std::out_of_range("DeviceTrace::day_stats: day out of range");
  const double day_start = static_cast<double>(day) * 24.0;
  const double day_end = day_start + 24.0;

  DayStats stats;
  std::set<std::uint32_t> ips;
  std::set<net::Prefix> prefixes;
  std::set<topology::AsId> ases;
  std::map<std::uint32_t, double> ip_time;
  std::map<net::Prefix, double> prefix_time;
  std::map<topology::AsId, double> as_time;

  const DeviceVisit* previous = nullptr;
  double covered = 0.0;
  for (const DeviceVisit& visit : visits_) {
    const double begin = std::max(visit.start_hour, day_start);
    const double end =
        std::min(visit.start_hour + visit.duration_hours, day_end);
    if (end - begin <= kEpsilon) {
      if (visit.start_hour + visit.duration_hours <= day_start)
        previous = &visit;  // track the last visit ending before the day
      continue;
    }
    ips.insert(visit.address.value());
    prefixes.insert(visit.prefix);
    ases.insert(visit.as);
    ip_time[visit.address.value()] += end - begin;
    prefix_time[visit.prefix] += end - begin;
    as_time[visit.as] += end - begin;
    covered += end - begin;

    // A transition is counted inside this day if the boundary between the
    // previous visit and this one falls within (day_start, day_end].
    if (previous != nullptr && visit.start_hour > day_start - kEpsilon &&
        visit.start_hour < day_end - kEpsilon &&
        visit.start_hour > kEpsilon) {
      if (previous->address != visit.address) ++stats.ip_transitions;
      if (previous->prefix != visit.prefix) ++stats.prefix_transitions;
      if (previous->as != visit.as) ++stats.as_transitions;
    }
    previous = &visit;
  }

  stats.distinct_ips = ips.size();
  stats.distinct_prefixes = prefixes.size();
  stats.distinct_ases = ases.size();

  const auto max_share = [covered](const auto& time_map) {
    double best = 0.0;
    for (const auto& [_, t] : time_map) best = std::max(best, t);
    return covered > 0.0 ? best / covered : 0.0;
  };
  stats.dominant_ip_fraction = max_share(ip_time);
  stats.dominant_prefix_fraction = max_share(prefix_time);
  stats.dominant_as_fraction = max_share(as_time);
  return stats;
}

std::vector<DeviceMobilityEvent> DeviceTrace::events() const {
  std::vector<DeviceMobilityEvent> out;
  for (std::size_t i = 1; i < visits_.size(); ++i) {
    if (visits_[i - 1].address != visits_[i].address) {
      out.push_back({visits_[i].start_hour, visits_[i - 1].address,
                     visits_[i].address});
    }
  }
  return out;
}

topology::AsId DeviceTrace::dominant_as() const {
  if (visits_.empty()) throw std::logic_error("DeviceTrace: empty trace");
  std::map<topology::AsId, double> time;
  for (const DeviceVisit& v : visits_) time[v.as] += v.duration_hours;
  return std::max_element(time.begin(), time.end(),
                          [](const auto& a, const auto& b) {
                            return a.second < b.second;
                          })
      ->first;
}

net::Ipv4Address DeviceTrace::dominant_address() const {
  if (visits_.empty()) throw std::logic_error("DeviceTrace: empty trace");
  std::map<std::uint32_t, double> time;
  for (const DeviceVisit& v : visits_) time[v.address.value()] += v.duration_hours;
  const auto best = std::max_element(time.begin(), time.end(),
                                     [](const auto& a, const auto& b) {
                                       return a.second < b.second;
                                     });
  return net::Ipv4Address(best->first);
}

double DeviceTrace::dominant_as_share() const {
  if (visits_.empty()) throw std::logic_error("DeviceTrace: empty trace");
  std::map<topology::AsId, double> time;
  double total = 0.0;
  for (const DeviceVisit& v : visits_) {
    time[v.as] += v.duration_hours;
    total += v.duration_hours;
  }
  double best = 0.0;
  for (const auto& [_, t] : time) best = std::max(best, t);
  return best / total;
}

}  // namespace lina::mobility
