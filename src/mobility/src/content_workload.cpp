#include "lina/mobility/content_workload.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>

#include "lina/stats/distributions.hpp"

namespace lina::mobility {

using routing::SyntheticInternet;
using topology::AsId;
using topology::AsTier;
using topology::GeoPoint;

ContentWorkloadGenerator::ContentWorkloadGenerator(
    const SyntheticInternet& internet, ContentWorkloadConfig config)
    : internet_(internet), config_(config) {
  // CDN footprint: stub ASes near every metro anchor.
  std::set<AsId> chosen;
  for (const GeoPoint& anchor : topology::metro_anchors()) {
    std::size_t taken = 0;
    for (const AsId as :
         internet.edge_ases_near(anchor, config_.pops_per_anchor * 4)) {
      if (taken == config_.pops_per_anchor) break;
      if (internet.graph().tier(as) != AsTier::kStub) continue;
      if (chosen.insert(as).second) {
        pop_ases_.push_back(as);
        pop_sites_.push_back(internet.graph().location(as));
        ++taken;
      }
    }
  }
  if (pop_ases_.size() < config_.max_pops_per_domain)
    config_.max_pops_per_domain = pop_ases_.size();
  if (config_.min_pops_per_domain > config_.max_pops_per_domain)
    config_.min_pops_per_domain = config_.max_pops_per_domain;
}

namespace {

/// Mutable resolution state of one content name.
struct NameState {
  bool aliased = false;  // CNAME-aliased to the CDN
  double rotate_multiplier = 1.0;
  // Aliased names: one replica address per domain PoP slot.
  std::vector<net::Ipv4Address> replicas;
  // Origin-served names: hosting prefix(es) and the load-balanced pool.
  net::Prefix origin_prefix;
  std::optional<net::Prefix> secondary_prefix;  // second hosting region
  std::vector<net::Ipv4Address> pool;
};

}  // namespace

ContentCatalog ContentWorkloadGenerator::generate() const {
  stats::Rng rng(config_.seed, "content-workload");
  const VantagePointMerger merger(
      VantagePointMerger::worldwide_vantages(config_.vantage_count, rng),
      config_.resolved_replicas_per_vantage);

  const std::size_t hours = config_.days * 24;
  const stats::LogNormal subdomain_dist(config_.subdomain_median,
                                        config_.subdomain_sigma);

  // Each PoP serves replicas out of one subnet, so replica rotation inside
  // a PoP never changes forwarding ports.
  std::vector<net::Prefix> pop_prefixes;
  pop_prefixes.reserve(pop_ases_.size());
  for (const AsId as : pop_ases_) {
    pop_prefixes.push_back(internet_.prefixes_of(as).front());
  }

  const auto pool_draw = [&](const NameState& state) {
    if (state.secondary_prefix.has_value() &&
        rng.chance(config_.secondary_origin_weight)) {
      return SyntheticInternet::random_address_in(*state.secondary_prefix,
                                                  rng);
    }
    return SyntheticInternet::random_address_in(state.origin_prefix, rng);
  };

  const auto fresh_pool = [&](NameState& state) {
    const std::size_t pool_size =
        config_.origin_pool_min +
        rng.index(config_.origin_pool_max - config_.origin_pool_min + 1);
    state.pool.clear();
    for (std::size_t i = 0; i < pool_size; ++i) {
      state.pool.push_back(pool_draw(state));
    }
  };

  const auto random_edge_prefix = [&]() {
    const AsId as =
        internet_.edge_ases()[rng.index(internet_.edge_ases().size())];
    const auto prefixes = internet_.prefixes_of(as);
    return prefixes[rng.index(prefixes.size())];
  };

  const auto rotate_multiplier = [&]() {
    const double u = rng.uniform();
    if (u < config_.hot_name_fraction) return config_.hot_rotate_multiplier;
    if (u < config_.hot_name_fraction + config_.warm_name_fraction)
      return config_.warm_rotate_multiplier;
    return 1.0;
  };

  // Generates all names of one domain and appends their traces to `out`.
  const auto simulate_domain = [&](const names::ContentName& apex,
                                   std::size_t subdomain_count, bool popular,
                                   bool cdn, double origin_rotate_prob,
                                   double migrate_prob_per_day,
                                   double multihomed_fraction,
                                   std::vector<ContentTrace>& out) {
    // Domain-level CDN footprint.
    std::vector<std::size_t> pop_slots;  // indices into pop_ases_
    std::vector<bool> visible;           // per slot: seen by any vantage
    const auto recompute_visibility = [&]() {
      std::vector<GeoPoint> sites;
      sites.reserve(pop_slots.size());
      for (const std::size_t p : pop_slots) sites.push_back(pop_sites_[p]);
      visible.assign(pop_slots.size(), false);
      for (const std::size_t s : merger.visible_sites(sites)) {
        visible[s] = true;
      }
    };
    if (cdn) {
      const std::size_t count =
          config_.min_pops_per_domain +
          rng.index(config_.max_pops_per_domain -
                    config_.min_pops_per_domain + 1);
      std::vector<std::size_t> all(pop_ases_.size());
      for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t pick = i + rng.index(all.size() - i);
        std::swap(all[i], all[pick]);
      }
      pop_slots.assign(all.begin(),
                       all.begin() + static_cast<std::ptrdiff_t>(count));
      recompute_visibility();
    }

    // The whole domain's origin-served names live in one hosting subnet.
    const net::Prefix domain_origin_prefix = random_edge_prefix();

    // Per-name state + traces. Index 0 is the apex.
    std::vector<names::ContentName> domain_names{apex};
    for (std::size_t j = 0; j < subdomain_count; ++j) {
      domain_names.push_back(apex.child("s" + std::to_string(j)));
    }
    std::vector<NameState> states(domain_names.size());
    std::vector<ContentTrace> traces;
    traces.reserve(domain_names.size());

    const auto merged_addresses = [&](const NameState& state) {
      std::vector<net::Ipv4Address> addrs;
      if (state.aliased) {
        for (std::size_t s = 0; s < state.replicas.size(); ++s) {
          if (visible[s]) addrs.push_back(state.replicas[s]);
        }
      } else {
        addrs = state.pool;
      }
      return addrs;
    };

    for (std::size_t k = 0; k < domain_names.size(); ++k) {
      NameState& state = states[k];
      state.aliased =
          cdn && (k == 0 || rng.chance(config_.cdn_alias_fraction));
      state.rotate_multiplier = rotate_multiplier();
      if (state.aliased) {
        state.replicas.reserve(pop_slots.size());
        for (const std::size_t p : pop_slots) {
          state.replicas.push_back(
              SyntheticInternet::random_address_in(pop_prefixes[p], rng));
        }
      } else {
        state.origin_prefix = domain_origin_prefix;
        if (rng.chance(multihomed_fraction)) {
          state.secondary_prefix = random_edge_prefix();
        }
        fresh_pool(state);
      }
      traces.emplace_back(domain_names[k], popular, state.aliased,
                          config_.days);
      traces.back().observe(0.0, merged_addresses(state));
    }

    for (std::size_t t = 1; t < hours; ++t) {
      const double hour = static_cast<double>(t);
      // Domain-level PoP footprint change affects all aliased names.
      bool footprint_changed = false;
      if (cdn && rng.chance(config_.cdn_pop_change_prob) &&
          pop_slots.size() < pop_ases_.size()) {
        const std::size_t slot = rng.index(pop_slots.size());
        std::size_t replacement = rng.index(pop_ases_.size());
        while (std::find(pop_slots.begin(), pop_slots.end(), replacement) !=
               pop_slots.end()) {
          replacement = rng.index(pop_ases_.size());
        }
        pop_slots[slot] = replacement;
        recompute_visibility();
        footprint_changed = true;
        for (NameState& state : states) {
          if (state.aliased) {
            state.replicas[slot] = SyntheticInternet::random_address_in(
                pop_prefixes[replacement], rng);
          }
        }
      }

      for (std::size_t k = 0; k < domain_names.size(); ++k) {
        NameState& state = states[k];
        bool changed = footprint_changed && state.aliased;
        if (state.aliased) {
          const double p = std::min(
              config_.cdn_replica_rotate_prob * state.rotate_multiplier,
              0.95);
          if (rng.chance(p)) {
            const std::size_t slot = rng.index(state.replicas.size());
            state.replicas[slot] = SyntheticInternet::random_address_in(
                pop_prefixes[pop_slots[slot]], rng);
            // A rotation at a replica no vantage sees is not observed.
            changed = changed || visible[slot];
          }
        } else {
          const double p = std::min(
              origin_rotate_prob * state.rotate_multiplier, 0.95);
          if (rng.chance(p)) {
            state.pool[rng.index(state.pool.size())] = pool_draw(state);
            changed = true;
          }
          if (rng.chance(migrate_prob_per_day / 24.0)) {
            state.origin_prefix = random_edge_prefix();
            if (state.secondary_prefix.has_value()) {
              state.secondary_prefix = random_edge_prefix();
            }
            fresh_pool(state);
            changed = true;
          }
        }
        if (changed) traces[k].observe(hour, merged_addresses(state));
      }
    }

    for (ContentTrace& trace : traces) out.push_back(std::move(trace));
  };

  ContentCatalog catalog;

  for (std::size_t i = 0; i < config_.popular_domains; ++i) {
    const names::ContentName apex(
        {std::string("com"), "p" + std::to_string(i)});
    const std::size_t subs = std::clamp<std::size_t>(
        static_cast<std::size_t>(std::llround(subdomain_dist.sample(rng))),
        1, config_.max_subdomains);
    const bool cdn = rng.chance(config_.popular_cdn_fraction);
    simulate_domain(apex, subs, /*popular=*/true, cdn,
                    config_.popular_origin_rotate_prob,
                    config_.popular_migrate_prob_per_day,
                    config_.popular_multihomed_origin_fraction,
                    catalog.popular);
  }

  for (std::size_t i = 0; i < config_.unpopular_domains; ++i) {
    const names::ContentName apex(
        {std::string("net"), "u" + std::to_string(i)});
    // "Unpopular content domain names in our dataset have hardly any
    // subdomains" (§7.3).
    const double u = rng.uniform();
    const std::size_t subs = u < 0.7 ? 0 : (u < 0.9 ? 1 : 2);
    const bool cdn = rng.chance(config_.unpopular_cdn_fraction);
    simulate_domain(apex, subs, /*popular=*/false, cdn,
                    config_.unpopular_origin_rotate_prob,
                    config_.unpopular_migrate_prob_per_day,
                    config_.unpopular_multihomed_origin_fraction,
                    catalog.unpopular);
  }

  return catalog;
}

}  // namespace lina::mobility
