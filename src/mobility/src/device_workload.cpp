#include "lina/mobility/device_workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "lina/exec/parallel.hpp"
#include "lina/prof/prof.hpp"
#include "lina/stats/distributions.hpp"

namespace lina::mobility {

using routing::SyntheticInternet;
using topology::AsId;
using topology::AsTier;

namespace {

// Location kinds drive both transition-target choice and dwell time.
enum class Kind : std::uint8_t { kHome, kWork, kCellular, kOther };

struct Occupant {
  AsId as;
  net::Ipv4Address address;
  Kind kind;
};

}  // namespace

DeviceWorkloadGenerator::DeviceWorkloadGenerator(
    const SyntheticInternet& internet, DeviceWorkloadConfig config)
    : internet_(internet), config_(config) {
  const auto anchors = topology::metro_anchors();
  stubs_by_anchor_.resize(anchors.size());
  tier2_by_anchor_.resize(anchors.size());
  for (std::size_t a = 0; a < anchors.size(); ++a) {
    for (const AsId as : internet.edge_ases_near(anchors[a], 48)) {
      if (internet.graph().tier(as) == AsTier::kStub) {
        if (stubs_by_anchor_[a].size() < 24) stubs_by_anchor_[a].push_back(as);
      } else if (internet.graph().tier(as) == AsTier::kTier2) {
        if (tier2_by_anchor_[a].size() < 8) tier2_by_anchor_[a].push_back(as);
      }
    }
    if (stubs_by_anchor_[a].size() < 2 || tier2_by_anchor_[a].empty())
      throw std::logic_error(
          "DeviceWorkloadGenerator: topology too sparse near an anchor");
  }
}

DeviceWorkloadGenerator::UserProfile DeviceWorkloadGenerator::make_profile(
    stats::Rng& rng) const {
  const auto pick_anchor = [&]() -> std::size_t {
    const double u = rng.uniform();
    if (u < config_.us_share) {
      constexpr std::size_t kUs[] = {0, 1, 2, 3};
      return kUs[rng.index(4)];
    }
    if (u < config_.us_share + config_.eu_share) {
      constexpr std::size_t kEu[] = {5, 6};
      return kEu[rng.index(2)];
    }
    return 4;  // Sao Paulo
  };

  const std::size_t anchor = pick_anchor();
  const auto& stubs = stubs_by_anchor_[anchor];
  const auto& tier2s = tier2_by_anchor_[anchor];

  UserProfile profile;
  profile.home_as = stubs[rng.index(stubs.size())];
  if (rng.chance(config_.home_single_homed_preference)) {
    // Residential ISPs typically funnel through a single transit provider.
    for (int attempts = 0; attempts < 24; ++attempts) {
      if (internet_.graph().degree(profile.home_as) == 1) break;
      profile.home_as = stubs[rng.index(stubs.size())];
    }
  }
  profile.work_as = profile.home_as;
  if (rng.chance(config_.work_probability)) {
    // A different stub near the same anchor, preferring one that shares a
    // transit provider with home (same-metro infrastructure).
    const auto shares_provider = [&](AsId a, AsId b) {
      for (const auto& la : internet_.graph().links(a)) {
        if (la.rel != topology::AsRelationship::kProvider) continue;
        for (const auto& lb : internet_.graph().links(b)) {
          if (lb.rel == topology::AsRelationship::kProvider &&
              la.neighbor == lb.neighbor) {
            return true;
          }
        }
      }
      return false;
    };
    const bool want_shared = rng.chance(config_.work_shares_home_upstream);
    for (int attempts = 0; attempts < 24; ++attempts) {
      const AsId candidate = stubs[rng.index(stubs.size())];
      if (candidate == profile.home_as) continue;
      profile.work_as = candidate;
      if (!want_shared || shares_provider(candidate, profile.home_as)) break;
    }
  }
  // The carrier usually shares the home ISP's upstream (metro transit).
  profile.cellular_as = tier2s[rng.index(tier2s.size())];
  if (rng.chance(config_.cellular_shares_home_upstream)) {
    std::vector<AsId> home_providers;
    for (const auto& link : internet_.graph().links(profile.home_as)) {
      if (link.rel == topology::AsRelationship::kProvider &&
          !internet_.prefixes_of(link.neighbor).empty()) {
        home_providers.push_back(link.neighbor);
      }
    }
    if (!home_providers.empty()) {
      profile.cellular_as = home_providers[rng.index(home_providers.size())];
    }
  }
  const auto shares_provider_with_home = [&](AsId candidate) {
    for (const auto& la : internet_.graph().links(candidate)) {
      if (la.rel != topology::AsRelationship::kProvider) continue;
      for (const auto& lb : internet_.graph().links(profile.home_as)) {
        if (lb.rel == topology::AsRelationship::kProvider &&
            la.neighbor == lb.neighbor) {
          return true;
        }
      }
    }
    return false;
  };
  const std::size_t extras =
      config_.max_extra_locations == 0
          ? 0
          : rng.index(config_.max_extra_locations + 1);
  for (std::size_t i = 0; i < extras; ++i) {
    // Extra locations are usually regional — often on the same metro
    // transit as home — and occasionally anywhere (travel).
    const std::size_t a = rng.chance(0.8) ? anchor : pick_anchor();
    const auto& pool = stubs_by_anchor_[a];
    AsId choice = pool[rng.index(pool.size())];
    if (a == anchor && rng.chance(config_.extra_shares_home_upstream)) {
      for (int attempts = 0; attempts < 16; ++attempts) {
        if (shares_provider_with_home(choice)) break;
        choice = pool[rng.index(pool.size())];
      }
    }
    profile.extra_ases.push_back(choice);
  }

  profile.home_address = internet_.random_address_in(profile.home_as, rng);
  profile.work_address = internet_.random_address_in(profile.work_as, rng);
  profile.cellular_address =
      internet_.random_address_in(profile.cellular_as, rng);

  const stats::LogNormal rate_dist(config_.median_daily_transitions,
                                   config_.transition_sigma);
  profile.daily_rate = std::clamp(rate_dist.sample(rng),
                                  config_.min_daily_rate,
                                  config_.max_daily_rate);
  profile.cross_as_probability =
      std::clamp(rng.normal(config_.cross_as_probability_mean,
                            config_.cross_as_probability_stddev),
                 0.05, 0.9);
  return profile;
}

DeviceTrace DeviceWorkloadGenerator::generate_user(
    std::uint32_t user_id) const {
  stats::Rng rng(config_.seed, "device-user-" + std::to_string(user_id));
  UserProfile profile = make_profile(rng);

  const auto dwell_weight = [this](Kind kind) {
    switch (kind) {
      case Kind::kHome:
        return config_.home_weight;
      case Kind::kWork:
        return config_.work_weight;
      case Kind::kCellular:
        return config_.cellular_weight;
      case Kind::kOther:
        return config_.other_weight;
    }
    return 1.0;
  };

  const auto fresh_address = [&](AsId as) {
    return internet_.random_address_in(as, rng);
  };

  // Pick the next occupant given the current one.
  const auto next_occupant = [&](const Occupant& current) -> Occupant {
    if (!rng.chance(profile.cross_as_probability)) {
      // Within-AS connectivity event. At home/work the DHCP lease usually
      // survives (same address, no mobility event); with
      // lease_change_probability it changes, and the stable address is
      // updated. Cellular reattachment always re-draws from the carrier
      // pool (NAT/pool churn).
      if (current.kind == Kind::kHome || current.kind == Kind::kWork) {
        if (!rng.chance(config_.lease_change_probability)) return current;
        const net::Ipv4Address addr = fresh_address(current.as);
        if (current.kind == Kind::kHome) profile.home_address = addr;
        if (current.kind == Kind::kWork) profile.work_address = addr;
        return {current.as, addr, current.kind};
      }
      if (current.kind == Kind::kCellular) {
        profile.cellular_address = fresh_address(current.as);
        return {current.as, profile.cellular_address, Kind::kCellular};
      }
      return {current.as, fresh_address(current.as), Kind::kOther};
    }
    // Cross-AS move: weighted choice among the other locations.
    struct Target {
      Kind kind;
      double weight;
    };
    std::vector<Target> targets;
    if (current.kind != Kind::kHome) targets.push_back({Kind::kHome, 2.5});
    if (current.kind != Kind::kWork && profile.work_as != profile.home_as)
      targets.push_back({Kind::kWork, 2.0});
    if (current.kind != Kind::kCellular)
      targets.push_back({Kind::kCellular, 3.0});
    if (!profile.extra_ases.empty() && current.kind != Kind::kOther)
      targets.push_back({Kind::kOther, 0.5});
    if (targets.empty()) targets.push_back({Kind::kCellular, 1.0});

    std::vector<double> weights;
    weights.reserve(targets.size());
    for (const Target& t : targets) weights.push_back(t.weight);
    const Kind kind = targets[stats::weighted_index(rng, weights)].kind;
    switch (kind) {
      case Kind::kHome:
        return {profile.home_as, profile.home_address, Kind::kHome};
      case Kind::kWork:
        return {profile.work_as, profile.work_address, Kind::kWork};
      case Kind::kCellular:
        // Carrier-assigned address is sticky across reconnects.
        return {profile.cellular_as, profile.cellular_address,
                Kind::kCellular};
      case Kind::kOther: {
        const AsId as =
            profile.extra_ases[rng.index(profile.extra_ases.size())];
        return {as, fresh_address(as), Kind::kOther};
      }
    }
    throw std::logic_error("unreachable");
  };

  DeviceTrace trace(user_id, config_.days);
  Occupant current{profile.home_as, profile.home_address, Kind::kHome};
  DeviceVisit pending{0.0, 0.0, current.address,
                      internet_.prefix_of(current.address), current.as,
                      current.kind == Kind::kCellular};

  double clock = 0.0;
  for (std::size_t day = 0; day < config_.days; ++day) {
    const std::size_t transitions = rng.poisson(profile.daily_rate);

    // Build the day's occupant sequence, then split the 24 hours among
    // occupants proportional to dwell weight with multiplicative jitter.
    std::vector<Occupant> occupants{current};
    for (std::size_t t = 0; t < transitions; ++t) {
      occupants.push_back(next_occupant(occupants.back()));
    }
    std::vector<double> shares(occupants.size());
    double total = 0.0;
    for (std::size_t i = 0; i < occupants.size(); ++i) {
      shares[i] = dwell_weight(occupants[i].kind) *
                  std::max(rng.uniform(0.3, 1.7), 0.05);
      total += shares[i];
    }

    for (std::size_t i = 0; i < occupants.size(); ++i) {
      const double duration = 24.0 * shares[i] / total;
      if (i == 0) {
        // Continuation of the pending visit across the day boundary.
        pending.duration_hours += duration;
      } else {
        trace.append(pending);
        clock = pending.start_hour + pending.duration_hours;
        pending = DeviceVisit{
            clock, duration, occupants[i].address,
            internet_.prefix_of(occupants[i].address), occupants[i].as,
            occupants[i].kind == Kind::kCellular};
      }
    }
    current = occupants.back();
  }
  trace.append(pending);
  return trace;
}

std::vector<DeviceTrace> DeviceWorkloadGenerator::generate() const {
  PROF_SPAN("lina.mobility.workload_generate");
  // Each user already draws from an independent, id-labelled RNG stream,
  // so the population fans out across the lina::exec pool and comes back
  // in user order — bit-identical to the serial loop at any thread count
  // (pinned by tests/exec/determinism_test.cpp).
  return exec::parallel_map(config_.user_count, [this](std::size_t u) {
    return generate_user(static_cast<std::uint32_t>(u));
  });
}

}  // namespace lina::mobility
