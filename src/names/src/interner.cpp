#include "lina/names/interner.hpp"

#include <mutex>
#include <stdexcept>

namespace lina::names {

std::uint32_t ComponentInterner::intern(std::string_view component) {
  {
    std::shared_lock lock(mutex_);
    const auto it = ids_.find(component);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  const auto it = ids_.find(component);
  if (it != ids_.end()) return it->second;  // raced with another writer
  const auto id = static_cast<std::uint32_t>(spellings_.size());
  spellings_.emplace_back(component);
  ids_.emplace(std::string_view(spellings_.back()), id);
  string_bytes_ += component.size();
  return id;
}

std::string_view ComponentInterner::spelling(std::uint32_t id) const {
  std::shared_lock lock(mutex_);
  if (id >= spellings_.size())
    throw std::out_of_range("ComponentInterner::spelling: unknown id");
  return spellings_[id];
}

std::size_t ComponentInterner::size() const {
  std::shared_lock lock(mutex_);
  return spellings_.size();
}

std::size_t ComponentInterner::bytes() const {
  std::shared_lock lock(mutex_);
  return string_bytes_ + spellings_.size() * sizeof(std::string) +
         ids_.size() *
             (sizeof(std::string_view) + sizeof(std::uint32_t) +
              2 * sizeof(void*));
}

ComponentInterner& ComponentInterner::global() {
  static ComponentInterner instance;
  return instance;
}

}  // namespace lina::names
