#include "lina/names/content_name.hpp"

#include <algorithm>
#include <stdexcept>

#include "lina/names/interner.hpp"

namespace lina::names {

namespace {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    const std::string_view part =
        text.substr(start, end == std::string_view::npos ? std::string_view::npos
                                                         : end - start);
    if (part.empty())
      throw std::invalid_argument("ContentName: empty component");
    parts.emplace_back(part);
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return parts;
}

}  // namespace

ContentName::ContentName(std::vector<std::string> components)
    : components_(std::move(components)) {
  ids_.reserve(components_.size());
  ComponentInterner& interner = ComponentInterner::global();
  for (const auto& c : components_) {
    if (c.empty()) throw std::invalid_argument("ContentName: empty component");
    ids_.push_back(interner.intern(c));
  }
}

ContentName ContentName::from_dns(std::string_view dotted) {
  if (dotted.empty()) throw std::invalid_argument("ContentName: empty name");
  auto parts = split(dotted, '.');
  std::reverse(parts.begin(), parts.end());
  return ContentName(std::move(parts));
}

ContentName ContentName::from_uri(std::string_view uri) {
  if (!uri.empty() && uri.front() == '/') uri.remove_prefix(1);
  if (uri.empty()) throw std::invalid_argument("ContentName: empty name");
  return ContentName(split(uri, '/'));
}

ContentName ContentName::parent() const {
  if (components_.empty())
    throw std::logic_error("ContentName::parent: empty name");
  std::vector<std::string> parts(components_.begin(),
                                 components_.end() - 1);
  return ContentName(std::move(parts));
}

ContentName ContentName::child(std::string_view component) const {
  std::vector<std::string> parts = components_;
  parts.emplace_back(component);
  return ContentName(std::move(parts));
}

bool ContentName::is_prefix_of(const ContentName& other) const {
  if (components_.size() > other.components_.size()) return false;
  return std::equal(components_.begin(), components_.end(),
                    other.components_.begin());
}

bool ContentName::is_strict_subname_of(const ContentName& other) const {
  return other.components_.size() < components_.size() &&
         other.is_prefix_of(*this);
}

std::string ContentName::to_dns() const {
  std::string out;
  for (auto it = components_.rbegin(); it != components_.rend(); ++it) {
    if (!out.empty()) out.push_back('.');
    out += *it;
  }
  return out;
}

std::string ContentName::to_uri() const {
  std::string out;
  for (const auto& c : components_) {
    out.push_back('/');
    out += c;
  }
  return out.empty() ? "/" : out;
}

}  // namespace lina::names
