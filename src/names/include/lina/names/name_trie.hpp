#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lina/names/content_name.hpp"
#include "lina/names/interner.hpp"
#include "lina/obs/metrics.hpp"
#include "lina/prof/prof.hpp"

namespace lina::names {

namespace detail {

/// (parent node, component id) -> child node edge key.
[[nodiscard]] inline std::uint64_t edge_key(std::uint32_t parent,
                                            std::uint32_t label) {
  return (std::uint64_t{parent} << 32) | label;
}

/// splitmix64 finisher: cheap, well-mixed hash for edge keys.
struct EdgeHash {
  std::size_t operator()(std::uint64_t x) const noexcept {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace detail

template <typename T>
class FrozenNameTrie;

/// A component-wise trie over hierarchical content names with
/// longest-matching-prefix lookup — the name-based-routing analogue of the
/// IP FIB (Figure 2 right, Figure 3).
///
/// Nodes live in a contiguous arena addressed by 32-bit indices; child
/// selection is a single integer probe on (node, component-id) pairs in
/// one flat hash table, using the ids hash-consed into every ContentName
/// at construction (ComponentInterner::global()) — no string hashing or
/// lexicographic compares on the lookup path. Erase prunes value-less
/// leaf chains into a free-list so tables stay bounded under churn.
///
/// `lpm_compressed_size()` counts the entries that a router actually needs
/// to store once longest-prefix matching subsumes entries equal to their
/// nearest stored ancestor; `size() / lpm_compressed_size()` is exactly the
/// paper's aggregateability metric (§3.3.2). The count is maintained
/// incrementally on every mutation, so reading it is O(1).
template <typename T>
class NameTrie {
 public:
  NameTrie() { arena_.emplace_back(); }

  NameTrie(const NameTrie&) = delete;
  NameTrie& operator=(const NameTrie&) = delete;
  NameTrie(NameTrie&&) noexcept = default;
  NameTrie& operator=(NameTrie&&) noexcept = default;

  /// Inserts or overwrites the value at `name`. Returns true if a new entry
  /// was created.
  bool insert(const ContentName& name, T value) {
    std::uint32_t idx = 0;
    for (const std::uint32_t id : name.component_ids()) {
      const auto it = edges_.find(detail::edge_key(idx, id));
      idx = (it != edges_.end()) ? it->second : link_child(idx, id);
    }
    const bool created = !arena_[idx].value.has_value();
    assign_value(idx, std::move(value));
    if (created) ++size_;
    obs::metric::name_trie_inserts().add();
    if (!created) obs::metric::name_trie_displacements().add();
    check_compressed_invariant();
    return created;
  }

  /// Longest-matching-prefix lookup: the most specific stored entry whose
  /// name is a hierarchical prefix of `name`.
  [[nodiscard]] std::optional<std::pair<ContentName, T>> lookup(
      const ContentName& name) const {
    std::size_t best_depth = 0;
    const std::uint32_t best = match(name, best_depth);
    if (best == kNil) return std::nullopt;
    const auto components = name.components();
    std::vector<std::string> parts(
        components.begin(),
        components.begin() + static_cast<std::ptrdiff_t>(best_depth));
    return std::make_pair(ContentName(std::move(parts)), *arena_[best].value);
  }

  /// Longest-matching-prefix payload only — no result-name
  /// materialisation; nullptr if uncovered. The per-hop hot path of
  /// NameFib::port_for.
  [[nodiscard]] const T* lookup_value(const ContentName& name) const {
    std::size_t best_depth = 0;
    const std::uint32_t best = match(name, best_depth);
    return best == kNil ? nullptr : &*arena_[best].value;
  }

  /// Exact-match lookup.
  [[nodiscard]] const T* exact(const ContentName& name) const {
    const std::uint32_t idx = descend(name);
    if (idx == kNil || !arena_[idx].value.has_value()) return nullptr;
    return &*arena_[idx].value;
  }

  /// Removes the entry at `name` if present; returns whether it existed.
  /// Value-less leaf chains left behind are pruned into the free-list.
  bool erase(const ContentName& name) {
    const std::uint32_t idx = descend(name);
    if (idx == kNil || !arena_[idx].value.has_value()) return false;
    clear_value(idx);
    --size_;
    obs::metric::name_trie_erases().add();
    prune(idx);
    check_compressed_invariant();
    return true;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Visits every stored (name, value) pair in lexicographic trie order
  /// (ids are resolved back to spellings and sorted, so the order matches
  /// the pre-arena std::map layout and never depends on id assignment).
  void visit(
      const std::function<void(const ContentName&, const T&)>& fn) const {
    std::vector<std::string> path;
    visit_node(0, path, fn);
  }

  /// Entries surviving longest-prefix-match subsumption (see class
  /// comment). O(1): maintained incrementally by insert/assign/erase.
  [[nodiscard]] std::size_t lpm_compressed_size() const {
    return compressed_;
  }

  /// The O(n) recursive recount — the reference the incremental counter is
  /// cross-checked against (debug builds on every mutation, the `fib`
  /// differential suite explicitly).
  [[nodiscard]] std::size_t lpm_compressed_size_recursive() const {
    return compressed_count(0, nullptr);
  }

  void clear() {
    arena_.clear();
    arena_.emplace_back();
    edges_.clear();
    free_.clear();
    size_ = 0;
    compressed_ = 0;
  }

  /// Arena occupancy (excluding free-listed slots).
  [[nodiscard]] std::size_t live_nodes() const {
    return arena_.size() - free_.size();
  }

  [[nodiscard]] std::size_t free_nodes() const { return free_.size(); }

  /// Bytes retained from the allocator (arena capacity + edge table).
  [[nodiscard]] std::size_t arena_bytes() const {
    return arena_.capacity() * sizeof(Node) +
           free_.capacity() * sizeof(std::uint32_t) +
           edges_.size() * (sizeof(std::uint64_t) + sizeof(std::uint32_t) +
                            2 * sizeof(void*));
  }

  /// Deterministic live-table bytes (live nodes × node size + one edge
  /// record per non-root live node) — allocator-growth independent, the
  /// figure the table-size benches report.
  [[nodiscard]] std::size_t table_bytes() const {
    const std::size_t edges = live_nodes() - 1;
    return live_nodes() * sizeof(Node) +
           edges * (sizeof(std::uint64_t) + sizeof(std::uint32_t));
  }

  /// Immutable snapshot with batch lookups; results are bit-identical to
  /// live lookups at freeze time.
  [[nodiscard]] FrozenNameTrie<T> freeze() const;

 private:
  friend class FrozenNameTrie<T>;

  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Node {
    std::uint32_t label = kNil;         // component id on the parent edge
    std::uint32_t parent = kNil;
    std::uint32_t first_child = kNil;
    std::uint32_t next_sibling = kNil;
    std::optional<T> value;
  };

  std::uint32_t link_child(std::uint32_t parent, std::uint32_t id) {
    std::uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
      arena_[idx] = Node{};
    } else {
      idx = static_cast<std::uint32_t>(arena_.size());
      arena_.emplace_back();
    }
    Node& n = arena_[idx];
    n.label = id;
    n.parent = parent;
    n.next_sibling = arena_[parent].first_child;
    arena_[parent].first_child = idx;
    edges_.emplace(detail::edge_key(parent, id), idx);
    return idx;
  }

  [[nodiscard]] std::uint32_t descend(const ContentName& name) const {
    std::uint32_t idx = 0;
    for (const std::uint32_t id : name.component_ids()) {
      const auto it = edges_.find(detail::edge_key(idx, id));
      if (it == edges_.end()) return kNil;
      idx = it->second;
    }
    return idx;
  }

  /// LPM walk; returns the best valued node (kNil on miss) and its depth.
  [[nodiscard]] std::uint32_t match(const ContentName& name,
                                    std::size_t& best_depth) const {
    std::uint32_t idx = 0;
    std::uint32_t best = arena_[0].value.has_value() ? 0 : kNil;
    std::size_t depth = 0;
    std::uint64_t visited = 1;  // the root
    best_depth = 0;
    for (const std::uint32_t id : name.component_ids()) {
      const auto it = edges_.find(detail::edge_key(idx, id));
      if (it == edges_.end()) break;
      idx = it->second;
      ++depth;
      ++visited;
      if (arena_[idx].value.has_value()) {
        best = idx;
        best_depth = depth;
      }
    }
    obs::metric::name_trie_lpm_lookups().add();
    obs::metric::name_trie_lpm_node_visits().add(visited);
    return best;
  }

  /// Unlinks `idx` from its parent's child list and recycles the slot.
  void detach(std::uint32_t idx) {
    Node& n = arena_[idx];
    edges_.erase(detail::edge_key(n.parent, n.label));
    Node& p = arena_[n.parent];
    if (p.first_child == idx) {
      p.first_child = n.next_sibling;
    } else {
      std::uint32_t prev = p.first_child;
      while (arena_[prev].next_sibling != idx) prev = arena_[prev].next_sibling;
      arena_[prev].next_sibling = n.next_sibling;
    }
    arena_[idx] = Node{};
    free_.push_back(idx);
  }

  /// Prunes value-less leaves starting at `idx`, walking toward the root.
  void prune(std::uint32_t idx) {
    while (idx != 0) {
      Node& n = arena_[idx];
      if (n.value.has_value() || n.first_child != kNil) return;
      const std::uint32_t parent = n.parent;
      detach(idx);
      idx = parent;
    }
  }

  // --- incremental lpm_compressed_size maintenance -----------------------

  [[nodiscard]] static std::size_t contribution(const std::optional<T>& value,
                                                const T* above) {
    if (!value.has_value()) return 0;
    return (above == nullptr || !(*above == *value)) ? 1 : 0;
  }

  /// Nearest valued strict ancestor's value (nullptr if none).
  [[nodiscard]] const T* ancestor_value(std::uint32_t idx) const {
    std::uint32_t cur = arena_[idx].parent;
    while (cur != kNil) {
      const Node& n = arena_[cur];
      if (n.value.has_value()) return &*n.value;
      cur = n.parent;
    }
    return nullptr;
  }

  /// Sum of contributions over `idx`'s valued frontier (valued descendants
  /// with no valued node strictly between them and `idx`).
  [[nodiscard]] std::size_t frontier_contribution(std::uint32_t idx,
                                                  const T* above) const {
    std::size_t sum = 0;
    scratch_.clear();
    for (std::uint32_t c = arena_[idx].first_child; c != kNil;
         c = arena_[c].next_sibling) {
      scratch_.push_back(c);
    }
    while (!scratch_.empty()) {
      const std::uint32_t c = scratch_.back();
      scratch_.pop_back();
      const Node& n = arena_[c];
      if (n.value.has_value()) {
        sum += contribution(n.value, above);
        continue;  // deeper entries inherit from this node, not from idx
      }
      for (std::uint32_t g = n.first_child; g != kNil;
           g = arena_[g].next_sibling) {
        scratch_.push_back(g);
      }
    }
    return sum;
  }

  void assign_value(std::uint32_t idx, T value) {
    const T* above = ancestor_value(idx);
    Node& n = arena_[idx];
    const T* effective_before = n.value.has_value() ? &*n.value : above;
    const std::size_t before = contribution(n.value, above) +
                               frontier_contribution(idx, effective_before);
    n.value = std::move(value);
    const std::size_t after =
        contribution(arena_[idx].value, above) +
        frontier_contribution(idx, &*arena_[idx].value);
    compressed_ += after;
    compressed_ -= before;
  }

  void clear_value(std::uint32_t idx) {
    const T* above = ancestor_value(idx);
    Node& n = arena_[idx];
    const std::size_t before = contribution(n.value, above) +
                               frontier_contribution(idx, &*n.value);
    n.value.reset();
    const std::size_t after = frontier_contribution(idx, above);
    compressed_ += after;
    compressed_ -= before;
  }

  void check_compressed_invariant() const {
#ifndef NDEBUG
    assert(compressed_ == lpm_compressed_size_recursive());
#endif
  }

  // --- traversal ---------------------------------------------------------

  /// Children of `idx` sorted by component spelling — id-assignment
  /// independent, matching the old std::map child order.
  [[nodiscard]] std::vector<std::uint32_t> sorted_children(
      std::uint32_t idx) const {
    std::vector<std::uint32_t> children;
    for (std::uint32_t c = arena_[idx].first_child; c != kNil;
         c = arena_[c].next_sibling) {
      children.push_back(c);
    }
    const ComponentInterner& interner = ComponentInterner::global();
    std::sort(children.begin(), children.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return interner.spelling(arena_[a].label) <
                       interner.spelling(arena_[b].label);
              });
    return children;
  }

  void visit_node(std::uint32_t idx, std::vector<std::string>& path,
                  const std::function<void(const ContentName&, const T&)>& fn)
      const {
    const Node& n = arena_[idx];
    if (n.value.has_value()) fn(ContentName(path), *n.value);
    for (const std::uint32_t c : sorted_children(idx)) {
      path.emplace_back(ComponentInterner::global().spelling(arena_[c].label));
      visit_node(c, path, fn);
      path.pop_back();
    }
  }

  [[nodiscard]] std::size_t compressed_count(std::uint32_t idx,
                                             const T* inherited) const {
    const Node& n = arena_[idx];
    std::size_t count = 0;
    const T* effective = inherited;
    if (n.value.has_value()) {
      count = contribution(n.value, inherited);
      effective = &*n.value;
    }
    for (std::uint32_t c = n.first_child; c != kNil;
         c = arena_[c].next_sibling) {
      count += compressed_count(c, effective);
    }
    return count;
  }

  std::vector<Node> arena_;  // [0] is the root
  std::unordered_map<std::uint64_t, std::uint32_t, detail::EdgeHash> edges_;
  std::vector<std::uint32_t> free_;
  std::size_t size_ = 0;
  std::size_t compressed_ = 0;
  mutable std::vector<std::uint32_t> scratch_;  // reused frontier DFS stack
};

/// Immutable longest-prefix-match snapshot of a NameTrie: the same
/// integer-probe descent over a frozen copy of the edge table, plus a
/// batch `lookup_many` for read-mostly phases. Built by NameTrie::freeze().
template <typename T>
class FrozenNameTrie {
 public:
  FrozenNameTrie() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Arena slots (node-id address space; slot 0 is the root). Retired
  /// source-trie slots are carried as value-less, edge-less ids.
  [[nodiscard]] std::size_t node_slots() const { return values_.size(); }

  [[nodiscard]] std::size_t arena_bytes() const {
    return values_.capacity() * sizeof(std::optional<T>) +
           keys_.capacity() * sizeof(std::uint64_t) +
           children_.capacity() * sizeof(std::uint32_t);
  }

  /// Visits every live edge as (parent, component-id, child) in probe-table
  /// order — the serialization view used by lina::snap.
  template <typename Fn>
  void for_each_edge(Fn&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == kEmptyKey) continue;
      fn(static_cast<std::uint32_t>(keys_[i] >> 32),
         static_cast<std::uint32_t>(keys_[i]), children_[i]);
    }
  }

  /// Node-id-indexed payload slots (engaged iff the node stores an entry).
  [[nodiscard]] std::span<const std::optional<T>> raw_values() const {
    return values_;
  }

  /// Rebuilds a frozen trie from its logical contents — the edge list
  /// (edge_key(parent, id) -> child) plus node-id-indexed values. The
  /// loader-side inverse of for_each_edge/raw_values; freeze() routes
  /// through this too, so both paths share the probe-table layout.
  [[nodiscard]] static FrozenNameTrie assemble(
      std::span<const std::pair<std::uint64_t, std::uint32_t>> edges,
      std::vector<std::optional<T>> values, std::size_t size);

  /// LPM payload for `name`; nullptr if uncovered. Identical to the source
  /// trie's lookup_value at freeze time.
  [[nodiscard]] const T* lookup_value(const ContentName& name) const {
    if (values_.empty()) return nullptr;
    std::uint64_t visited = 0;
    const T* best = walk(name, visited);
    obs::metric::name_trie_lpm_lookups().add();
    obs::metric::name_trie_lpm_node_visits().add(visited);
    return best;
  }

  /// Batch LPM: out[i] = lookup_value(names[i]); sizes must match. The
  /// observability counters are bumped once per batch instead of twice
  /// per query.
  void lookup_many(std::span<const ContentName> names,
                   std::span<const T*> out) const {
    PROF_SPAN("lina.trie.name_lookup_many");
    if (values_.empty()) {
      for (std::size_t i = 0; i < names.size(); ++i) out[i] = nullptr;
      return;
    }
    std::uint64_t visited = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
      out[i] = walk(names[i], visited);
    }
    obs::metric::name_trie_lpm_lookups().add(names.size());
    obs::metric::name_trie_lpm_node_visits().add(visited);
  }

 private:
  friend class NameTrie<T>;

  static constexpr std::uint32_t kNil = 0xffffffffu;
  // (0xffffffff << 32 | ...) can never be a live edge key: parents are
  // arena indices and kNil is never a parent.
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  /// Descends the flat probe table; `visited` accrues touched nodes
  /// (root included) so batch and scalar telemetry agree with the live
  /// trie's accounting.
  [[nodiscard]] const T* walk(const ContentName& name,
                              std::uint64_t& visited) const {
    std::uint32_t idx = 0;
    const T* best = values_[0].has_value() ? &*values_[0] : nullptr;
    ++visited;
    for (const std::uint32_t id : name.component_ids()) {
      const std::uint64_t key = detail::edge_key(idx, id);
      std::size_t i = detail::EdgeHash{}(key)&mask_;
      std::uint32_t child = kNil;
      while (true) {
        if (keys_[i] == key) {
          child = children_[i];
          break;
        }
        if (keys_[i] == kEmptyKey) break;
        i = (i + 1) & mask_;
      }
      if (child == kNil) break;
      idx = child;
      ++visited;
      if (values_[idx].has_value()) best = &*values_[idx];
    }
    return best;
  }

  // Open-addressed (parent, component-id) -> child edge table, power-of-2
  // capacity with linear probing at load factor <= 0.5: one cache line
  // per hop on the common hit path, versus the source table's
  // bucket-pointer chase.
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> children_;
  std::size_t mask_ = 0;
  std::vector<std::optional<T>> values_;  // indexed by node id
  std::size_t size_ = 0;
};

template <typename T>
FrozenNameTrie<T> FrozenNameTrie<T>::assemble(
    std::span<const std::pair<std::uint64_t, std::uint32_t>> edges,
    std::vector<std::optional<T>> values, std::size_t size) {
  FrozenNameTrie<T> frozen;
  std::size_t capacity = 2;
  while (capacity < edges.size() * 2) capacity <<= 1;
  frozen.keys_.assign(capacity, kEmptyKey);
  frozen.children_.assign(capacity, kNil);
  frozen.mask_ = capacity - 1;
  for (const auto& [key, child] : edges) {
    std::size_t i = detail::EdgeHash{}(key)&frozen.mask_;
    while (frozen.keys_[i] != kEmptyKey) {
      i = (i + 1) & frozen.mask_;
    }
    frozen.keys_[i] = key;
    frozen.children_[i] = child;
  }
  frozen.values_ = std::move(values);
  frozen.size_ = size;
  return frozen;
}

template <typename T>
FrozenNameTrie<T> NameTrie<T>::freeze() const {
  PROF_SPAN("lina.trie.name_freeze");
  std::vector<std::pair<std::uint64_t, std::uint32_t>> edges(edges_.begin(),
                                                             edges_.end());
  std::vector<std::optional<T>> values;
  values.reserve(arena_.size());
  for (const Node& n : arena_) values.push_back(n.value);
  return FrozenNameTrie<T>::assemble(edges, std::move(values), size_);
}

}  // namespace lina::names
