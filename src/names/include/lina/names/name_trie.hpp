#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "lina/names/content_name.hpp"
#include "lina/obs/metrics.hpp"

namespace lina::names {

/// A component-wise trie over hierarchical content names with
/// longest-matching-prefix lookup — the name-based-routing analogue of the
/// IP FIB (Figure 2 right, Figure 3).
///
/// `lpm_compressed_size()` counts the entries that a router actually needs
/// to store once longest-prefix matching subsumes entries equal to their
/// nearest stored ancestor; `size() / lpm_compressed_size()` is exactly the
/// paper's aggregateability metric (§3.3.2).
template <typename T>
class NameTrie {
 public:
  NameTrie() = default;

  NameTrie(const NameTrie&) = delete;
  NameTrie& operator=(const NameTrie&) = delete;
  NameTrie(NameTrie&&) noexcept = default;
  NameTrie& operator=(NameTrie&&) noexcept = default;

  /// Inserts or overwrites the value at `name`. Returns true if a new entry
  /// was created.
  bool insert(const ContentName& name, T value) {
    Node* node = &root_;
    for (const auto& component : name.components()) {
      auto& child = node->children[component];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    const bool created = !node->value.has_value();
    node->value = std::move(value);
    if (created) ++size_;
    obs::metric::name_trie_inserts().add();
    if (!created) obs::metric::name_trie_displacements().add();
    return created;
  }

  /// Longest-matching-prefix lookup: the most specific stored entry whose
  /// name is a hierarchical prefix of `name`.
  [[nodiscard]] std::optional<std::pair<ContentName, T>> lookup(
      const ContentName& name) const {
    const Node* node = &root_;
    const Node* best = nullptr;
    std::size_t best_depth = 0;
    std::size_t depth = 0;
    std::uint64_t visited = 1;  // the root
    if (node->value.has_value()) best = node;
    for (const auto& component : name.components()) {
      const auto it = node->children.find(component);
      if (it == node->children.end()) break;
      node = it->second.get();
      ++depth;
      ++visited;
      if (node->value.has_value()) {
        best = node;
        best_depth = depth;
      }
    }
    obs::metric::name_trie_lpm_lookups().add();
    obs::metric::name_trie_lpm_node_visits().add(visited);
    if (best == nullptr) return std::nullopt;
    std::vector<std::string> parts(name.components().begin(),
                                   name.components().begin() +
                                       static_cast<std::ptrdiff_t>(best_depth));
    return std::make_pair(ContentName(std::move(parts)), *best->value);
  }

  /// Exact-match lookup.
  [[nodiscard]] const T* exact(const ContentName& name) const {
    const Node* node = descend(name);
    return (node != nullptr && node->value.has_value()) ? &*node->value
                                                        : nullptr;
  }

  /// Removes the entry at `name` if present; returns whether it existed.
  bool erase(const ContentName& name) {
    Node* node = const_cast<Node*>(descend(name));
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    obs::metric::name_trie_erases().add();
    return true;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Visits every stored (name, value) pair in lexicographic trie order.
  void visit(
      const std::function<void(const ContentName&, const T&)>& fn) const {
    std::vector<std::string> path;
    visit_node(&root_, path, fn);
  }

  /// Entries surviving longest-prefix-match subsumption (see class comment).
  [[nodiscard]] std::size_t lpm_compressed_size() const {
    return compressed_count(&root_, nullptr);
  }

  void clear() {
    root_ = Node{};
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<T> value;
    std::map<std::string, std::unique_ptr<Node>> children;
  };

  const Node* descend(const ContentName& name) const {
    const Node* node = &root_;
    for (const auto& component : name.components()) {
      const auto it = node->children.find(component);
      if (it == node->children.end()) return nullptr;
      node = it->second.get();
    }
    return node;
  }

  static void visit_node(
      const Node* node, std::vector<std::string>& path,
      const std::function<void(const ContentName&, const T&)>& fn) {
    if (node->value.has_value()) fn(ContentName(path), *node->value);
    for (const auto& [component, child] : node->children) {
      path.push_back(component);
      visit_node(child.get(), path, fn);
      path.pop_back();
    }
  }

  static std::size_t compressed_count(const Node* node, const T* inherited) {
    std::size_t count = 0;
    const T* effective = inherited;
    if (node->value.has_value()) {
      if (inherited == nullptr || !(*inherited == *node->value)) ++count;
      effective = &*node->value;
    }
    for (const auto& [_, child] : node->children) {
      count += compressed_count(child.get(), effective);
    }
    return count;
  }

  Node root_;
  std::size_t size_ = 0;
};

}  // namespace lina::names
