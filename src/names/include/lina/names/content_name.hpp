#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace lina::names {

/// A hierarchical content name: an ordered list of components with the most
/// significant (root-most) component first.
///
/// Two surface syntaxes are supported, mirroring the two families in the
/// paper:
///  - DNS domain names, least-significant-first on the wire:
///    "travel.yahoo.com" parses to components {com, yahoo, travel};
///  - NDN/TRIAD-style URIs, most-significant-first:
///    "/Disney/StarWarsIV" parses to components {Disney, StarWarsIV}.
///
/// Longest-prefix relationships ("travel.yahoo.com is a subdomain of
/// yahoo.com") become component-wise prefix relationships in this
/// representation, which is what the name trie and the aggregateability
/// metric (§3.3.2) operate on.
class ContentName {
 public:
  ContentName() = default;
  explicit ContentName(std::vector<std::string> components);

  /// Parses a DNS-style dotted name; throws std::invalid_argument on empty
  /// names or empty labels.
  static ContentName from_dns(std::string_view dotted);

  /// Parses an NDN-style slash-separated URI (leading slash optional);
  /// throws std::invalid_argument on empty names or empty components.
  static ContentName from_uri(std::string_view uri);

  [[nodiscard]] std::span<const std::string> components() const {
    return components_;
  }

  /// The components as dense interner ids (ComponentInterner::global()),
  /// hash-consed once at construction: the name tries select children with
  /// integer probes on these instead of hashing strings per hop. Ids are
  /// process-local — never persist or compare them across processes.
  [[nodiscard]] std::span<const std::uint32_t> component_ids() const {
    return ids_;
  }
  [[nodiscard]] std::size_t depth() const { return components_.size(); }
  [[nodiscard]] bool empty() const { return components_.empty(); }

  /// The name with the last component removed; throws on empty names.
  [[nodiscard]] ContentName parent() const;

  /// This name extended by one component.
  [[nodiscard]] ContentName child(std::string_view component) const;

  /// True iff this name is a (non-strict) hierarchical prefix of `other`:
  /// yahoo.com is a prefix of travel.yahoo.com and of itself.
  [[nodiscard]] bool is_prefix_of(const ContentName& other) const;

  /// True iff this name is a *strict* subdomain of `other` (the paper's
  /// d1 ≺ d2 relation): travel.yahoo.com ≺ yahoo.com.
  [[nodiscard]] bool is_strict_subname_of(const ContentName& other) const;

  /// Renders as a DNS dotted name (least significant first).
  [[nodiscard]] std::string to_dns() const;

  /// Renders as an NDN-style URI "/a/b/c".
  [[nodiscard]] std::string to_uri() const;

  // Ordering is decided by components_ alone: ids_ is compared only when
  // the spellings are already equal, and equal spellings imply equal ids.
  friend auto operator<=>(const ContentName&, const ContentName&) = default;

 private:
  std::vector<std::string> components_;
  std::vector<std::uint32_t> ids_;  // parallel to components_
};

}  // namespace lina::names

template <>
struct std::hash<lina::names::ContentName> {
  std::size_t operator()(const lina::names::ContentName& n) const noexcept {
    std::size_t h = 1469598103934665603ULL;
    for (const auto& c : n.components()) {
      h ^= std::hash<std::string>{}(c);
      h *= 1099511628211ULL;
    }
    return h;
  }
};
