#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace lina::names {

/// Hash-consing table for name components: each distinct component string
/// is assigned a dense `uint32_t` id exactly once, after which every
/// per-hop child selection in the name tries is an integer probe instead
/// of string hashing/compares.
///
/// Interning happens once, at ContentName construction; the process-wide
/// instance (`ComponentInterner::global()`) is shared by every name FIB so
/// a name built anywhere can be looked up in any table. Thread-safe:
/// reads (the overwhelmingly common case once the vocabulary is warm) take
/// a shared lock; only a first-ever component takes the exclusive lock.
///
/// Ids are process-local and assignment-order dependent — they must never
/// leak into results (the tries only use them for equality probes; any
/// ordered traversal resolves ids back to spellings first).
class ComponentInterner {
 public:
  ComponentInterner() = default;
  ComponentInterner(const ComponentInterner&) = delete;
  ComponentInterner& operator=(const ComponentInterner&) = delete;

  /// The id for `component`, allocating one on first sight.
  [[nodiscard]] std::uint32_t intern(std::string_view component);

  /// The spelling behind an id; throws std::out_of_range on unknown ids.
  [[nodiscard]] std::string_view spelling(std::uint32_t id) const;

  /// Number of distinct components interned so far.
  [[nodiscard]] std::size_t size() const;

  /// Approximate bytes retained (spellings + index entries).
  [[nodiscard]] std::size_t bytes() const;

  /// The process-wide interner every ContentName and name FIB shares.
  [[nodiscard]] static ComponentInterner& global();

 private:
  mutable std::shared_mutex mutex_;
  // Deque keeps the string objects (and therefore the views in ids_)
  // stable under growth.
  std::deque<std::string> spellings_;
  std::unordered_map<std::string_view, std::uint32_t> ids_;
  std::size_t string_bytes_ = 0;
};

}  // namespace lina::names
