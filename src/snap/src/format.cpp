#include "lina/snap/format.hpp"

#include <cstring>

namespace lina::snap {

std::uint32_t crc32(std::uint32_t crc, const void* data, std::size_t size) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

void put_u8(std::vector<char>& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::vector<char>& out, std::uint16_t v) {
  put_u8(out, static_cast<std::uint8_t>(v));
  put_u8(out, static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<char>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v));
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

void put_u64(std::vector<char>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_varint(std::vector<char>& out, std::uint64_t v) {
  while (v >= 0x80) {
    put_u8(out, static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  put_u8(out, static_cast<std::uint8_t>(v));
}

std::uint8_t ByteCursor::u8() {
  if (remaining() < 1) overrun("u8");
  return static_cast<std::uint8_t>(data_[offset_++]);
}

std::uint16_t ByteCursor::u16() {
  const std::uint16_t lo = u8();
  return static_cast<std::uint16_t>(lo | (std::uint16_t{u8()} << 8));
}

std::uint32_t ByteCursor::u32() {
  const std::uint32_t lo = u16();
  return lo | (std::uint32_t{u16()} << 16);
}

std::uint64_t ByteCursor::u64() {
  const std::uint64_t lo = u32();
  return lo | (std::uint64_t{u32()} << 32);
}

std::uint64_t ByteCursor::varint() {
  std::uint64_t value = 0;
  unsigned shift = 0;
  while (true) {
    const std::uint8_t byte = u8();
    // 64 bits = nine 7-bit groups plus one final bit; anything longer
    // (or wider in the last group) cannot be a canonical encoding.
    if (shift > 63 || (shift == 63 && (byte & 0x7eu) != 0))
      overrun("varint (overlong)");
    value |= std::uint64_t{byte & 0x7fu} << shift;
    if ((byte & 0x80u) == 0) return value;
    shift += 7;
  }
}

void ByteCursor::bytes(void* into, std::size_t n) {
  if (remaining() < n) overrun("bytes");
  std::memcpy(into, data_ + offset_, n);
  offset_ += n;
}

void ByteCursor::overrun(const char* what) const {
  throw SnapFormatError(context_ + ": truncated while reading " + what +
                        " at offset " + std::to_string(offset_) + " of " +
                        std::to_string(size_));
}

void BitWriter::bits(std::uint32_t value, unsigned count) {
  for (unsigned i = count; i > 0; --i) {
    pending_ = static_cast<std::uint8_t>(
        (pending_ << 1) | ((value >> (i - 1)) & 1u));
    if (++pending_bits_ == 8) {
      bytes_.push_back(static_cast<char>(pending_));
      pending_ = 0;
      pending_bits_ = 0;
    }
  }
}

void BitWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    bit(true);
    bits(static_cast<std::uint32_t>(v & 0x7fu), 7);
    v >>= 7;
  }
  bit(false);
  bits(static_cast<std::uint32_t>(v), 7);
}

std::vector<char> BitWriter::finish() {
  if (pending_bits_ > 0) {
    bytes_.push_back(
        static_cast<char>(pending_ << (8 - pending_bits_)));
    pending_ = 0;
    pending_bits_ = 0;
  }
  return std::move(bytes_);
}

std::uint32_t BitReader::bits(unsigned count) {
  std::uint32_t value = 0;
  for (unsigned i = 0; i < count; ++i) {
    const std::size_t byte = bit_offset_ >> 3;
    if (byte >= size_) {
      throw SnapFormatError(context_ + ": truncated bit stream at bit " +
                            std::to_string(bit_offset_));
    }
    const unsigned shift = 7u - (bit_offset_ & 7u);
    value = (value << 1) |
            ((static_cast<std::uint8_t>(data_[byte]) >> shift) & 1u);
    ++bit_offset_;
  }
  return value;
}

std::uint64_t BitReader::varint() {
  std::uint64_t value = 0;
  unsigned shift = 0;
  while (true) {
    const bool more = bit();
    const std::uint64_t group = bits(7);
    if (shift > 63 || (shift == 63 && (group >> 1) != 0)) {
      throw SnapFormatError(context_ + ": overlong bit-varint");
    }
    value |= group << shift;
    if (!more) return value;
    shift += 7;
  }
}

void encode_header(std::vector<char>& out, const SnapHeader& header) {
  const std::size_t start = out.size();
  out.insert(out.end(), kSnapMagic.begin(), kSnapMagic.end());
  put_u16(out, header.version);
  put_u16(out, kSnapEndianMarker);
  put_u16(out, static_cast<std::uint16_t>(header.kind));
  put_u16(out, header.section_count);
  put_u64(out, header.entry_count);
  put_u64(out, header.node_count);
  put_u64(out, header.generation);
  while (out.size() - start < kSnapHeaderBytes) put_u8(out, 0);
}

SnapHeader decode_header(const char* data, std::uint64_t file_size,
                         const std::string& context) {
  if (file_size < kSnapHeaderBytes + kSnapFooterBytes) {
    throw SnapFormatError(context + ": file of " + std::to_string(file_size) +
                          " bytes is shorter than header + footer");
  }
  ByteCursor cursor(data, kSnapHeaderBytes, context);
  std::array<char, 4> magic{};
  cursor.bytes(magic.data(), magic.size());
  if (magic != kSnapMagic) {
    throw SnapFormatError(context + ": bad magic (not a lina::snap file)");
  }
  SnapHeader header;
  header.version = cursor.u16();
  if (header.version != kSnapFormatVersion) {
    throw SnapFormatError(context + ": unsupported format version " +
                          std::to_string(header.version) + " (this build reads " +
                          std::to_string(kSnapFormatVersion) + ")");
  }
  const std::uint16_t endian = cursor.u16();
  if (endian != kSnapEndianMarker) {
    throw SnapFormatError(
        context + ": endianness marker mismatch (file written byte-swapped?)");
  }
  const std::uint16_t kind = cursor.u16();
  if (kind != static_cast<std::uint16_t>(SnapKind::kIpFib) &&
      kind != static_cast<std::uint16_t>(SnapKind::kNameFib)) {
    throw SnapFormatError(context + ": unknown snapshot kind " +
                          std::to_string(kind));
  }
  header.kind = static_cast<SnapKind>(kind);
  header.section_count = cursor.u16();
  header.entry_count = cursor.u64();
  header.node_count = cursor.u64();
  header.generation = cursor.u64();
  const std::uint64_t table_end =
      kSnapHeaderBytes +
      std::uint64_t{header.section_count} * kSectionRecordBytes + 4;
  if (table_end + kSnapFooterBytes > file_size) {
    throw SnapFormatError(context + ": section table (" +
                          std::to_string(header.section_count) +
                          " sections) does not fit in a " +
                          std::to_string(file_size) + "-byte file");
  }
  return header;
}

}  // namespace lina::snap
